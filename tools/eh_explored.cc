/**
 * @file
 * eh_explored — the sharded exploration service (docs/SERVICE.md).
 *
 *   eh_explored serve  --socket S [--cache-dir D] [--workers N]
 *                      [--cache-fsync N] [--heartbeat-timeout-ms MS]
 *                      [--redispatch-limit N] [--supervise]
 *                      [--respawn-limit N] [--respawn-backoff-ms MS]
 *   eh_explored worker --socket S [--heartbeat-ms MS] [--id N]
 *                      [--reconnect-attempts N]
 *                      [--reconnect-backoff-ms MS]
 *                      [--reconnect-backoff-max-ms MS]
 *   eh_explored ping   --socket S
 *   eh_explored drain  --socket S [--timeout-ms MS]
 *   eh_explored chaos-sites
 *
 * `serve` runs the broker: the single writer of the result store,
 * sharding campaign cells across worker processes. `--workers N` forks
 * N supervised workers (they re-exec this binary as `eh_explored
 * worker`); a worker that dies abnormally is reaped with waitpid and
 * respawned under a per-child budget with exponential backoff —
 * never respawned after a clean exit or during a drain. With
 * `--supervise` the broker itself runs as a supervised child and a
 * kill -9 of it is ridden out the same way (clients resume their
 * sessions; the store and quarantine ladder are durable).
 *
 * Signals: the first SIGTERM/SIGINT drains gracefully (pending leases
 * finish, workers are told to exit); a second one stops hard. A serve
 * never steals a live broker's socket — it probes first and exits 5
 * (docs/ROBUSTNESS.md). `chaos-sites` lists the named fault-injection
 * sites accepted by EH_CHAOS (src/util/chaos.hh).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <exception>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cli/options.hh"
#include "obs/export.hh"
#include "obs/trace.hh"
#include "svc/broker.hh"
#include "svc/chaos.hh"
#include "svc/client.hh"
#include "svc/net.hh"
#include "svc/supervise.hh"
#include "svc/worker.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace {

using namespace eh;

svc::Broker *liveBroker = nullptr;
svc::Worker *liveWorker = nullptr;
volatile std::sig_atomic_t signalHits = 0;

void
onSignal(int)
{
    // Every path here is async-signal-safe: atomic stores plus a
    // self-pipe write for the broker, an atomic store for the worker.
    // First signal: graceful drain. Second: hard stop.
    const int hit = ++signalHits;
    if (liveBroker) {
        if (hit <= 1)
            liveBroker->requestDrain();
        else
            liveBroker->requestStop();
    }
    if (liveWorker)
        liveWorker->requestStop();
}

void
installStopHandlers()
{
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
}

std::string
requiredSocket(const cli::Options &opts)
{
    const std::string socket = opts.get("socket", "");
    if (socket.empty())
        fatalf("this subcommand requires --socket PATH");
    return socket;
}

std::string
selfExePath(const std::string &socket)
{
    char self[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    if (n <= 0) {
        fatalf("cannot resolve /proc/self/exe to spawn workers; start "
               "them manually: eh_explored worker --socket ", socket);
    }
    self[n] = '\0';
    return std::string(self);
}

/**
 * Spawn @p count supervised worker children. Each child execs this
 * binary as `worker --id N`, so a respawn is a truly fresh process —
 * and the only thing the forked child does before exec is build argv,
 * which keeps forking safe even when the broker thread is live.
 */
void
spawnWorkers(svc::Supervisor &sup, unsigned count,
             const std::string &socket, const cli::Options &opts)
{
    if (count == 0)
        return;
    const std::string self = selfExePath(socket);
    const bool quiet = opts.getDouble("quiet", 0.0) != 0.0;
    const bool verbose = opts.getDouble("verbose", 0.0) != 0.0;
    for (unsigned i = 0; i < count; ++i) {
        const std::string id = std::to_string(i + 1);
        sup.spawn(
            detail::concat("worker-", i + 1),
            [self, socket, id, quiet, verbose]() -> int {
                std::vector<const char *> argv{
                    self.c_str(), "worker",  "--socket",
                    socket.c_str(), "--id", id.c_str()};
                if (quiet) {
                    argv.push_back("--quiet");
                    argv.push_back("1");
                } else if (verbose) {
                    argv.push_back("--verbose");
                    argv.push_back("1");
                }
                argv.push_back(nullptr);
                ::execv(self.c_str(),
                        const_cast<char *const *>(argv.data()));
                return 127; // exec failed; supervisor sees the status
            },
            /*respawn=*/true);
    }
    inform("svc: spawned ", count, " supervised worker process(es)");
}

svc::BrokerConfig
brokerConfigFrom(const cli::Options &opts)
{
    svc::BrokerConfig config;
    config.socketPath = requiredSocket(opts);
    config.cacheDir = opts.get("cache-dir", "");
    config.cacheFsync =
        static_cast<int>(opts.getDouble("cache-fsync", -1.0));
    config.heartbeatTimeoutMs = static_cast<unsigned>(
        opts.getDouble("heartbeat-timeout-ms", 5000.0));
    config.redispatchLimit = static_cast<unsigned>(
        opts.getDouble("redispatch-limit", 3.0));
    return config;
}

svc::SupervisorConfig
supervisorConfigFrom(const cli::Options &opts)
{
    svc::SupervisorConfig config;
    config.respawnLimit = static_cast<unsigned>(
        opts.getDouble("respawn-limit", 5.0));
    config.backoffBaseMs = static_cast<unsigned>(
        opts.getDouble("respawn-backoff-ms", 100.0));
    return config;
}

/** Drain the supervisor's flock at shutdown: TERM, wait, then KILL. */
void
shutdownChildren(svc::Supervisor &sup)
{
    sup.drain();
    sup.signalAll(SIGTERM);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(2);
    while (sup.poll() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (sup.alive() > 0) {
        warn("svc: ", sup.alive(),
             " child(ren) ignored SIGTERM; killing");
        sup.signalAll(SIGKILL);
        while (sup.poll() > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

/** The broker itself, run as a supervised child (`--supervise`). */
int
brokerChildMain(const svc::BrokerConfig &config)
{
    svc::Broker broker(config);
    liveBroker = &broker;
    installStopHandlers();
    const std::uint64_t results = broker.run();
    liveBroker = nullptr;
    inform("svc: broker served ", results, " result(s)");
    std::cout << broker.statsJson() << "\n";
    return 0;
}

/** Default serve: broker in-process, workers supervised. */
int
serveInProcess(const cli::Options &opts)
{
    svc::Broker broker(brokerConfigFrom(opts));
    liveBroker = &broker;
    installStopHandlers();
    svc::Supervisor sup(supervisorConfigFrom(opts));
    spawnWorkers(sup,
                 static_cast<unsigned>(opts.getDouble("workers", 0.0)),
                 broker.socketPath(), opts);

    std::atomic<bool> brokerDone{false};
    std::exception_ptr brokerError;
    std::uint64_t results = 0;
    std::thread brokerThread([&] {
        try {
            results = broker.run();
        } catch (...) {
            brokerError = std::current_exception();
        }
        brokerDone.store(true, std::memory_order_release);
    });
    while (!brokerDone.load(std::memory_order_acquire)) {
        if (signalHits > 0)
            sup.drain(); // shutting down: crashed workers stay down
        sup.poll();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    brokerThread.join();
    liveBroker = nullptr;
    shutdownChildren(sup);
    if (brokerError)
        std::rethrow_exception(brokerError);
    inform("svc: broker served ", results, " result(s)");
    std::cout << broker.statsJson() << "\n";
    return 0;
}

/** `--supervise`: the broker is a supervised child too. */
int
serveSupervised(const cli::Options &opts)
{
    const svc::BrokerConfig config = brokerConfigFrom(opts);
    // Fail the socket-busy case in the parent with the documented exit
    // code 5; inside a child it would read as a crash and be respawned.
    if (svc::socketHasListener(config.socketPath)) {
        throw SocketBusyError(detail::concat(
            "fatal: a live broker already listens on '",
            config.socketPath,
            "'; refusing to take over its socket (stop it first, or "
            "pick another --socket path)"));
    }
    installStopHandlers();
    svc::Supervisor sup(supervisorConfigFrom(opts));
    sup.spawn("broker", [config]() { return brokerChildMain(config); },
              /*respawn=*/true);
    spawnWorkers(sup,
                 static_cast<unsigned>(opts.getDouble("workers", 0.0)),
                 config.socketPath, opts);

    bool drainSignalled = false;
    while (sup.poll() > 0) {
        if (signalHits > 0 && !drainSignalled) {
            // Forward the graceful stop: the broker child drains
            // (telling workers to exit cleanly); nobody is respawned.
            drainSignalled = true;
            sup.drain();
            sup.signalAll(SIGTERM);
        }
        if (signalHits > 1) {
            sup.signalAll(SIGKILL);
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    shutdownChildren(sup);
    for (const auto &child : sup.children()) {
        if (child.name == "broker" && child.gaveUp) {
            fatalf("broker kept crashing and exhausted its respawn "
                   "budget; see the log above");
        }
    }
    return 0;
}

int
cmdServe(const cli::Options &opts)
{
    if (opts.getDouble("supervise", 0.0) != 0.0)
        return serveSupervised(opts);
    return serveInProcess(opts);
}

int
cmdWorker(const cli::Options &opts)
{
    svc::WorkerConfig config;
    config.socketPath = requiredSocket(opts);
    config.heartbeatMs = static_cast<unsigned>(
        opts.getDouble("heartbeat-ms", 500.0));
    config.reconnectAttempts = static_cast<unsigned>(
        opts.getDouble("reconnect-attempts", 5.0));
    config.reconnectBackoffMs = static_cast<unsigned>(
        opts.getDouble("reconnect-backoff-ms", 200.0));
    config.reconnectBackoffMaxMs = static_cast<unsigned>(
        opts.getDouble("reconnect-backoff-max-ms", 5000.0));
    config.id =
        static_cast<std::uint64_t>(opts.getDouble("id", 0.0));
    svc::Worker worker(config, {});
    liveWorker = &worker;
    installStopHandlers();
    worker.run();
    liveWorker = nullptr;
    return 0;
}

int
cmdPing(const cli::Options &opts)
{
    std::cout << svc::pingBroker(requiredSocket(opts)) << "\n";
    return 0;
}

int
cmdDrain(const cli::Options &opts)
{
    svc::drainBroker(
        requiredSocket(opts),
        static_cast<int>(opts.getDouble("timeout-ms", 60000.0)));
    inform("svc: broker drained and shut down");
    return 0;
}

int
cmdChaosSites()
{
    std::size_t count = 0;
    const char *const *sites = svc::chaosSites(count);
    for (std::size_t i = 0; i < count; ++i)
        std::cout << sites[i] << "\n";
    return 0;
}

void
usage()
{
    std::cout
        << "eh_explored — sharded exploration service "
           "(docs/SERVICE.md)\n\n"
           "  eh_explored serve  --socket S [--cache-dir D] "
           "[--workers N]\n"
           "                     [--cache-fsync N] "
           "[--heartbeat-timeout-ms MS]\n"
           "                     [--redispatch-limit N] [--supervise]\n"
           "                     [--respawn-limit N] "
           "[--respawn-backoff-ms MS]\n"
           "  eh_explored worker --socket S [--heartbeat-ms MS] "
           "[--id N]\n"
           "                     [--reconnect-attempts N] "
           "[--reconnect-backoff-ms MS]\n"
           "                     [--reconnect-backoff-max-ms MS]\n"
           "  eh_explored ping   --socket S\n"
           "  eh_explored drain  --socket S [--timeout-ms MS]\n"
           "  eh_explored chaos-sites\n\n"
           "Campaigns connect with: eh_explore campaign --remote S\n"
           "First SIGTERM/SIGINT drains gracefully; a second stops "
           "hard.\nExit codes: 3 connection failure, 4 "
           "handshake/version mismatch,\n5 socket already served by a "
           "live broker (docs/ROBUSTNESS.md).\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return eh::runMain([&]() -> int {
        const auto opts = cli::Options::parse(args);
        std::string cmd = opts.subcommand();
        // `eh_explored --worker 1` is accepted as an alias so process
        // managers that can't pass subcommands still work.
        if (cmd.empty() && opts.getDouble("worker", 0.0) != 0.0)
            cmd = "worker";
        if (opts.getDouble("quiet", 0.0) != 0.0)
            setLogLevel(LogLevel::Warn);
        else if (opts.getDouble("verbose", 0.0) != 0.0)
            setLogLevel(LogLevel::Debug);
        const std::string tracePath = opts.get("trace", "");
        if (!tracePath.empty()) {
            obs::trace().enable(obs::parseCategories(
                opts.get("trace-categories", "all")));
        }
        const std::string metricsPath = opts.get("metrics-out", "");

        int rc;
        if (cmd == "serve")
            rc = cmdServe(opts);
        else if (cmd == "worker")
            rc = cmdWorker(opts);
        else if (cmd == "ping")
            rc = cmdPing(opts);
        else if (cmd == "drain")
            rc = cmdDrain(opts);
        else if (cmd == "chaos-sites")
            rc = cmdChaosSites();
        else {
            usage();
            return cmd.empty() ? 0 : exitUserError;
        }
        if (!tracePath.empty()) {
            obs::writeChromeTraceFile(tracePath);
            inform("trace written to ", tracePath);
        }
        if (!metricsPath.empty()) {
            obs::writeMetricsFile(metricsPath);
            inform("metrics written to ", metricsPath);
        }
        for (const auto &flag : opts.unusedFlags())
            warn("unused flag --", flag);
        return rc;
    });
}
