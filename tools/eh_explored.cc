/**
 * @file
 * eh_explored — the sharded exploration service (docs/SERVICE.md).
 *
 *   eh_explored serve  --socket S [--cache-dir D] [--workers N]
 *                      [--cache-fsync N] [--heartbeat-timeout-ms MS]
 *                      [--redispatch-limit N]
 *   eh_explored worker --socket S [--heartbeat-ms MS]
 *                      [--reconnect-attempts N]
 *                      [--reconnect-backoff-ms MS]
 *   eh_explored ping   --socket S
 *   eh_explored drain  --socket S [--timeout-ms MS]
 *
 * `serve` runs the broker: the single writer of the result store,
 * sharding campaign cells across worker processes. `--workers N` forks
 * N workers as children (they re-exec this binary as
 * `eh_explored worker`); workers may equally be started by hand on the
 * same socket, including after the broker. SIGTERM/SIGINT stop the
 * broker immediately; `drain` stops it cleanly once pending cells
 * finish. Campaigns connect with `eh_explore campaign --remote S`.
 */

#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cli/options.hh"
#include "obs/export.hh"
#include "obs/trace.hh"
#include "svc/broker.hh"
#include "svc/client.hh"
#include "svc/worker.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace {

using namespace eh;

svc::Broker *liveBroker = nullptr;
svc::Worker *liveWorker = nullptr;

void
onSignal(int)
{
    // Both stop paths are async-signal-safe: a self-pipe write for the
    // broker, an atomic store for the worker.
    if (liveBroker)
        liveBroker->requestStop();
    if (liveWorker)
        liveWorker->requestStop();
}

void
installStopHandlers()
{
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
}

std::string
requiredSocket(const cli::Options &opts)
{
    const std::string socket = opts.get("socket", "");
    if (socket.empty())
        fatalf("this subcommand requires --socket PATH");
    return socket;
}

/** Fork @p count workers that re-exec this binary as `worker`. */
void
spawnWorkers(unsigned count, const std::string &socket,
             const cli::Options &opts)
{
    if (count == 0)
        return;
    char self[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    if (n <= 0) {
        fatalf("cannot resolve /proc/self/exe to spawn workers; start "
               "them manually: eh_explored worker --socket ", socket);
    }
    self[n] = '\0';
    // Children are fire-and-forget: the broker's drain tells them to
    // exit, and SIG_IGN on SIGCHLD lets the kernel reap them.
    std::signal(SIGCHLD, SIG_IGN);
    const bool quiet = opts.getDouble("quiet", 0.0) != 0.0;
    const bool verbose = opts.getDouble("verbose", 0.0) != 0.0;
    for (unsigned i = 0; i < count; ++i) {
        const pid_t pid = ::fork();
        if (pid < 0)
            fatalf("fork failed while spawning worker ", i + 1);
        if (pid != 0)
            continue;
        std::vector<const char *> argv{self, "worker", "--socket",
                                       socket.c_str()};
        if (quiet) {
            argv.push_back("--quiet");
            argv.push_back("1");
        } else if (verbose) {
            argv.push_back("--verbose");
            argv.push_back("1");
        }
        argv.push_back(nullptr);
        ::execv(self, const_cast<char *const *>(argv.data()));
        // Only reached when exec failed; don't run the parent's
        // atexit machinery from the doomed child.
        ::_exit(127);
    }
    inform("svc: spawned ", count, " worker process(es)");
}

int
cmdServe(const cli::Options &opts)
{
    svc::BrokerConfig config;
    config.socketPath = requiredSocket(opts);
    config.cacheDir = opts.get("cache-dir", "");
    config.cacheFsync =
        static_cast<int>(opts.getDouble("cache-fsync", -1.0));
    config.heartbeatTimeoutMs = static_cast<unsigned>(
        opts.getDouble("heartbeat-timeout-ms", 5000.0));
    config.redispatchLimit = static_cast<unsigned>(
        opts.getDouble("redispatch-limit", 3.0));
    svc::Broker broker(config);
    liveBroker = &broker;
    installStopHandlers();
    spawnWorkers(
        static_cast<unsigned>(opts.getDouble("workers", 0.0)),
        config.socketPath, opts);
    const std::uint64_t results = broker.run();
    liveBroker = nullptr;
    inform("svc: broker served ", results, " result(s)");
    std::cout << broker.statsJson() << "\n";
    return 0;
}

int
cmdWorker(const cli::Options &opts)
{
    svc::WorkerConfig config;
    config.socketPath = requiredSocket(opts);
    config.heartbeatMs = static_cast<unsigned>(
        opts.getDouble("heartbeat-ms", 500.0));
    config.reconnectAttempts = static_cast<unsigned>(
        opts.getDouble("reconnect-attempts", 5.0));
    config.reconnectBackoffMs = static_cast<unsigned>(
        opts.getDouble("reconnect-backoff-ms", 200.0));
    svc::Worker worker(config, {});
    liveWorker = &worker;
    installStopHandlers();
    worker.run();
    liveWorker = nullptr;
    return 0;
}

int
cmdPing(const cli::Options &opts)
{
    std::cout << svc::pingBroker(requiredSocket(opts)) << "\n";
    return 0;
}

int
cmdDrain(const cli::Options &opts)
{
    svc::drainBroker(
        requiredSocket(opts),
        static_cast<int>(opts.getDouble("timeout-ms", 60000.0)));
    inform("svc: broker drained and shut down");
    return 0;
}

void
usage()
{
    std::cout
        << "eh_explored — sharded exploration service "
           "(docs/SERVICE.md)\n\n"
           "  eh_explored serve  --socket S [--cache-dir D] "
           "[--workers N]\n"
           "                     [--cache-fsync N] "
           "[--heartbeat-timeout-ms MS]\n"
           "                     [--redispatch-limit N]\n"
           "  eh_explored worker --socket S [--heartbeat-ms MS]\n"
           "                     [--reconnect-attempts N] "
           "[--reconnect-backoff-ms MS]\n"
           "  eh_explored ping   --socket S\n"
           "  eh_explored drain  --socket S [--timeout-ms MS]\n\n"
           "Campaigns connect with: eh_explore campaign --remote S\n"
           "Exit codes: 3 connection failure, 4 handshake/version "
           "mismatch\n(docs/ROBUSTNESS.md).\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return eh::runMain([&]() -> int {
        const auto opts = cli::Options::parse(args);
        std::string cmd = opts.subcommand();
        // `eh_explored --worker 1` is accepted as an alias so process
        // managers that can't pass subcommands still work.
        if (cmd.empty() && opts.getDouble("worker", 0.0) != 0.0)
            cmd = "worker";
        if (opts.getDouble("quiet", 0.0) != 0.0)
            setLogLevel(LogLevel::Warn);
        else if (opts.getDouble("verbose", 0.0) != 0.0)
            setLogLevel(LogLevel::Debug);
        const std::string tracePath = opts.get("trace", "");
        if (!tracePath.empty()) {
            obs::trace().enable(obs::parseCategories(
                opts.get("trace-categories", "all")));
        }
        const std::string metricsPath = opts.get("metrics-out", "");

        int rc;
        if (cmd == "serve")
            rc = cmdServe(opts);
        else if (cmd == "worker")
            rc = cmdWorker(opts);
        else if (cmd == "ping")
            rc = cmdPing(opts);
        else if (cmd == "drain")
            rc = cmdDrain(opts);
        else {
            usage();
            return cmd.empty() ? 0 : exitUserError;
        }
        if (!tracePath.empty()) {
            obs::writeChromeTraceFile(tracePath);
            inform("trace written to ", tracePath);
        }
        if (!metricsPath.empty()) {
            obs::writeMetricsFile(metricsPath);
            inform("metrics written to ", metricsPath);
        }
        for (const auto &flag : opts.unusedFlags())
            warn("unused flag --", flag);
        return rc;
    });
}
