/**
 * @file
 * eh_explore — command-line design-space exploration with the EH model.
 *
 *   eh_explore progress  [params]            p, bounds and the energy split
 *   eh_explore optimal   [params]            Equations 9 / 10 / 11 / 16
 *   eh_explore sweep     --param tauB --from 1 --to 1000 [--points 40]
 *                        [--log 1] [--csv out.csv] [params]
 *   eh_explore simulate  --workload crc --policy clank [--budget 2.5e6]
 *   eh_explore campaign  --grid model|validation|clank|fault|wear
 *                        [--jobs N] [--seed S] [--csv out.csv]
 *                        [--cache-dir DIR] [--fresh 1] [--cache 0]
 *   eh_explore completion --work 2e6 --harvest 4 [params]
 *   eh_explore disasm    --workload crc [--nv 0]
 *   eh_explore traces    --cycles 30000000 [--seed 7] [--dir results]
 *
 * [params]: --preset illustrative|msp430|cortexm0|nvp plus Table I
 * overrides (--E --eps --epsC --tauB --sigmaB --OmegaB --AB --alphaB
 * --sigmaR --OmegaR --AR --alphaR).
 */

#include <cstring>
#include <iostream>
#include <map>
#include <memory>

#include "arch/cpu.hh"
#include "cli/options.hh"
#include "obs/export.hh"
#include "obs/trace.hh"
#include "core/calibration.hh"
#include "core/model.hh"
#include "core/monitoring.hh"
#include "core/optimum.hh"
#include "core/sweep.hh"
#include "core/throughput.hh"
#include "core/variability.hh"
#include "energy/supply.hh"
#include "energy/trace.hh"
#include "explore/campaign.hh"
#include "explore/tasks.hh"
#include "fault/injector.hh"
#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "runtime/hibernus.hh"
#include "runtime/hibernus_pp.hh"
#include "runtime/mementos.hh"
#include "runtime/nvp.hh"
#include "runtime/ratchet.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "svc/client.hh"
#include "util/csv.hh"
#include "util/log.hh"
#include "util/panic.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

namespace {

using namespace eh;

int
cmdProgress(const cli::Options &opts)
{
    const auto params = cli::paramsFromOptions(opts);
    core::Model model(params);
    const auto b = model.breakdown();

    std::cout << "parameters: " << params.describe() << "\n\n";
    Table t({"quantity", "value"});
    t.row({"p (average tau_D, Eq 8)", Table::pct(model.progress())});
    t.row({"p best case (tau_D = 0)",
           Table::pct(model.progress(core::DeadCycleMode::BestCase))});
    t.row({"p worst case (tau_D = tau_B)",
           Table::pct(model.progress(core::DeadCycleMode::WorstCase))});
    t.row({"p single-backup (Eq 12)",
           Table::pct(model.singleBackupProgress())});
    t.row({"tau_P (cycles of useful work)",
           Table::num(b.progressCycles, 1)});
    t.row({"backups per period (n_B)", Table::num(b.backupCount, 2)});
    t.row({"energy: progress", Table::num(b.progressEnergy, 2)});
    t.row({"energy: backups", Table::num(b.backupEnergy, 2)});
    t.row({"energy: dead", Table::num(b.deadEnergy, 2)});
    t.row({"energy: restore", Table::num(b.restoreEnergy, 2)});
    t.row({"p guaranteed in 95% of periods",
           Table::pct(core::tailProgress(params, 0.95))});
    t.row({"expected p over uniform tau_D",
           Table::pct(core::expectedProgressUniformDead(params))});
    t.row({"periods making zero progress",
           Table::pct(core::infeasiblePeriodFraction(params))});
    t.print(std::cout);
    return 0;
}

int
cmdOptimal(const cli::Options &opts)
{
    const auto params = cli::paramsFromOptions(opts);
    Table t({"quantity", "cycles", "p at that tau_B"});
    auto at = [&](double tau) {
        if (tau <= 0.0)
            return std::string("-");
        return Table::pct(
            core::Model(params).withBackupPeriod(tau).progress());
    };
    const double opt = core::optimalBackupPeriod(params);
    const double wc = core::worstCaseOptimalBackupPeriod(params);
    const double bit = core::bitPrecisionOptimalPeriod(params);
    const double be = core::breakEvenBackupPeriodFixedPoint(params);
    t.row({"tau_B,opt (Eq 9, average case)", Table::num(opt, 2),
           at(opt)});
    t.row({"tau_B,opt(wc) (Eq 10, tail latency)", Table::num(wc, 2),
           at(wc)});
    t.row({"tau_B,bit (Eq 16, precision reduction)", Table::num(bit, 2),
           at(bit)});
    t.row({"tau_B,be (Eq 11, backup/restore break-even)",
           Table::num(be, 2), at(be)});
    t.print(std::cout);
    std::cout << "\nBelow tau_B,be optimize the backup path; above it, "
                 "the restore path.\n";
    return 0;
}

/** Apply a named Table I parameter override. */
void
setParam(core::Params &p, const std::string &name, double value)
{
    if (name == "tauB")
        p.backupPeriod = value;
    else if (name == "E")
        p.energyBudget = value;
    else if (name == "eps")
        p.execEnergy = value;
    else if (name == "epsC")
        p.chargeEnergy = value;
    else if (name == "sigmaB")
        p.backupBandwidth = value;
    else if (name == "OmegaB")
        p.backupCost = value;
    else if (name == "AB")
        p.archStateBackup = value;
    else if (name == "alphaB")
        p.appStateRate = value;
    else if (name == "sigmaR")
        p.restoreBandwidth = value;
    else if (name == "OmegaR")
        p.restoreCost = value;
    else if (name == "AR")
        p.archStateRestore = value;
    else if (name == "alphaR")
        p.appRestoreRate = value;
    else
        fatalf("unknown sweep parameter '", name, "'");
}

int
cmdSweep(const cli::Options &opts)
{
    const auto base = cli::paramsFromOptions(opts);
    const std::string param = opts.get("param", "tauB");
    const double from = opts.getDouble("from", 1.0);
    const double to = opts.getDouble("to", 1000.0);
    const auto points =
        static_cast<std::size_t>(opts.getDouble("points", 40.0));
    const bool log_axis = opts.getDouble("log", 1.0) != 0.0;
    const auto xs = log_axis ? core::logspace(from, to, points)
                             : core::linspace(from, to, points);

    Table t({param, "p average", "p best", "p worst"});
    std::unique_ptr<CsvWriter> csv;
    if (opts.has("csv")) {
        csv = std::make_unique<CsvWriter>(
            opts.get("csv"),
            std::vector<std::string>{param, "avg", "best", "worst"});
    }
    for (double x : xs) {
        core::Params p = base;
        setParam(p, param, x);
        core::Model m(p);
        const double avg = m.progress();
        const double best = m.progress(core::DeadCycleMode::BestCase);
        const double worst = m.progress(core::DeadCycleMode::WorstCase);
        t.row({Table::num(x, 3), Table::num(avg, 4), Table::num(best, 4),
               Table::num(worst, 4)});
        if (csv)
            csv->rowNumeric({x, avg, best, worst});
    }
    t.print(std::cout);
    if (csv)
        std::cout << "\nCSV: " << csv->path() << "\n";
    return 0;
}

int
cmdSimulate(const cli::Options &opts)
{
    const std::string workload = opts.get("workload", "crc");
    const std::string policy_name = opts.get("policy", "clank");
    const bool vol = policy_name == "mementos" || policy_name == "dino" ||
                     policy_name == "hibernus" ||
                     policy_name == "hibernus++" ||
                     policy_name == "watchdog";
    const auto layout = vol ? workloads::volatileLayout()
                            : workloads::nonvolatileLayout();
    const auto w = workloads::makeWorkload(workload, layout);

    sim::SimConfig cfg;
    cfg.sramUsedBytes = vol ? w.sramUsedBytes : 64;
    if (!vol)
        cfg.costs = arch::CostModel::cortexM0();
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    const double budget =
        opts.getDouble("budget", std::max(golden.energy / 5.0,
                                          vol ? 3.0e6 : 1.0e6));
    energy::ConstantSupply supply(budget);

    std::unique_ptr<runtime::BackupPolicy> policy;
    const auto sram = cfg.sramUsedBytes;
    if (policy_name == "mementos")
        policy = std::make_unique<runtime::Mementos>(
            runtime::MementosConfig{0.5, 4, 400.0, sram});
    else if (policy_name == "dino")
        policy = std::make_unique<runtime::Dino>(
            runtime::DinoConfig{sram, true});
    else if (policy_name == "hibernus") {
        runtime::HibernusConfig hc;
        hc.sramUsedBytes = sram;
        hc.backupThreshold = std::clamp(
            2.0 * (static_cast<double>(sram) + 68.0) * 75.0 / budget,
            0.15, 0.85);
        policy = std::make_unique<runtime::Hibernus>(hc);
    } else if (policy_name == "hibernus++") {
        runtime::HibernusPPConfig hc;
        hc.sramUsedBytes = sram;
        policy = std::make_unique<runtime::HibernusPP>(hc);
    } else if (policy_name == "watchdog") {
        runtime::WatchdogConfig wc;
        wc.sramUsedBytes = sram;
        wc.periodCycles = static_cast<std::uint64_t>(
            opts.getDouble("tauB", 2000.0));
        policy = std::make_unique<runtime::Watchdog>(wc);
    } else if (policy_name == "clank")
        policy = std::make_unique<runtime::Clank>(runtime::ClankConfig{});
    else if (policy_name == "ratchet")
        policy = std::make_unique<runtime::Ratchet>(
            runtime::RatchetConfig{});
    else if (policy_name == "nvp")
        policy = std::make_unique<runtime::Nvp>(
            runtime::NvpConfig{1, 4});
    else
        fatalf("unknown policy '", policy_name, "'");

    sim::Simulator s(w.program, *policy, supply, cfg);
    std::unique_ptr<fault::FaultInjector> injector;
    if (cli::hasFaultOptions(opts)) {
        injector = std::make_unique<fault::FaultInjector>(
            cli::faultPlanFromOptions(opts));
        s.attachFaultInjector(injector.get());
    }
    const auto stats = s.run();
    std::cout << stats.summary() << "\n";

    bool correct = stats.finished;
    for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
        correct &= s.resultWord(w.resultAddrs[i]) == w.expected[i];
    std::cout << "results vs C++ reference: "
              << (correct ? "exact match" : "MISMATCH") << "\n";

    const auto obs = stats.observe(
        cfg, vol ? arch::Cpu::archStateBytes : 80);
    const auto pred = core::predictFromObservation(obs);
    std::cout << "EH model prediction: "
              << Table::pct(pred.predictedProgress) << " vs measured "
              << Table::pct(pred.measuredProgress) << " (error "
              << Table::pct(pred.relativeError) << ")\n";
    return correct ? 0 : 1;
}

/**
 * Build one of the predefined campaign grids. "model" sweeps a Table I
 * parameter analytically (the sweep flags apply); the other grids are
 * the simulation suites the fig06-09 and ablation benches run.
 */
void
buildCampaignGrid(explore::Campaign &campaign, const std::string &grid,
                  const cli::Options &opts)
{
    if (grid == "model") {
        const std::string preset = opts.get("preset", "illustrative");
        const std::string param = opts.get("param", "tauB");
        const double from = opts.getDouble("from", 1.0);
        const double to = opts.getDouble("to", 1000.0);
        const auto points =
            static_cast<std::size_t>(opts.getDouble("points", 16.0));
        const bool log_axis = opts.getDouble("log", 1.0) != 0.0;
        const auto xs = log_axis ? core::logspace(from, to, points)
                                 : core::linspace(from, to, points);
        for (double x : xs) {
            campaign.add(explore::JobSpec("model")
                             .set("preset", preset)
                             .set(param, x));
        }
    } else if (grid == "validation") {
        for (const auto &w : workloads::tableIINames()) {
            for (const char *p :
                 {"hibernus", "hibernus++", "mementos", "dino"}) {
                campaign.add(explore::JobSpec("validation")
                                 .set("workload", w)
                                 .set("policy", std::string(p)));
            }
        }
    } else if (grid == "clank") {
        for (const auto &w : workloads::mibenchNames()) {
            for (int trace = 0; trace < 3; ++trace) {
                campaign.add(explore::JobSpec("clank")
                                 .set("workload", w)
                                 .set("trace", trace));
            }
        }
    } else if (grid == "fault") {
        const int cells =
            static_cast<int>(opts.getDouble("cells", 5.0));
        for (const char *w : {"crc", "sha"}) {
            for (const char *p : {"dino", "clank", "nvp"}) {
                for (double rate :
                     {0.0, 1.0e-8, 1.0e-7, 1.0e-6, 1.0e-5}) {
                    for (int cell = 0; cell < cells; ++cell) {
                        campaign.add(explore::JobSpec("fault")
                                         .set("workload", std::string(w))
                                         .set("policy", std::string(p))
                                         .set("rate", rate)
                                         .set("cell", cell));
                    }
                }
            }
        }
    } else if (grid == "wear") {
        for (const char *w : {"crc", "sha", "dijkstra"}) {
            for (const char *p : {"clank", "ratchet", "nvp"}) {
                campaign.add(explore::JobSpec("wear")
                                 .set("workload", std::string(w))
                                 .set("policy", std::string(p)));
            }
        }
    } else {
        fatalf("unknown campaign grid '", grid,
               "' (model | validation | clank | fault | wear)");
    }
}

/**
 * Print the campaign health report: containment-status counts, the sim
 * outcome census over Ok cells, the slowest freshly-executed cells, and
 * one line per failed cell.
 */
void
printHealthReport(const explore::Campaign &campaign,
                  const std::vector<explore::JobResult> &results,
                  const explore::CampaignReport &rep)
{
    std::cout << "health: " << rep.total - rep.failures() << " ok, "
              << rep.failed << " failed, " << rep.timedOut
              << " timed out, " << rep.quarantined << " quarantined\n";

    // Census of simulator outcomes across the Ok cells ("outcome" is
    // absent for analytic model cells and pre-outcome cache records).
    std::map<std::string, std::size_t> outcomes;
    for (const auto &r : results) {
        if (r.ok() && r.has("outcome"))
            ++outcomes[r.str("outcome")];
    }
    if (!outcomes.empty()) {
        std::cout << "sim outcomes:";
        for (const auto &[name, count] : outcomes)
            std::cout << ' ' << count << ' ' << name;
        std::cout << "\n";
    }
    if (!rep.slowest.empty()) {
        std::cout << "slowest cells:\n";
        for (const auto &cell : rep.slowest) {
            std::cout << "  " << Table::num(cell.seconds, 2) << " s  "
                      << campaign.jobs()[cell.index].canonical() << "\n";
        }
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) {
            std::cout << "  ["
                      << explore::jobStatusName(results[i].status())
                      << "] " << campaign.jobs()[i].canonical() << ": "
                      << results[i].error() << "\n";
        }
    }
}

int
cmdCampaign(const cli::Options &opts)
{
    const std::string grid = opts.get("grid", "model");
    explore::CampaignConfig cc;
    cc.name = grid;
    cc.jobs = static_cast<unsigned>(opts.getDouble("jobs", 0.0));
    // The fault grid's default seed matches the fault-tolerance bench,
    // so both populate (and reuse) the same cache records.
    cc.seed = static_cast<std::uint64_t>(
        opts.getDouble("seed", grid == "fault" ? 0xAB1 : 1.0));
    cc.cacheDir = opts.get("cache-dir", "");
    cc.cache = opts.getDouble("cache", 1.0) != 0.0;
    cc.fresh = opts.getDouble("fresh", 0.0) != 0.0;
    cc.cacheFsync =
        static_cast<int>(opts.getDouble("cache-fsync", -1.0));
    cc.maxAttempts =
        static_cast<unsigned>(opts.getDouble("retries", 1.0)) + 1;
    cc.jobTimeoutSeconds = opts.getDouble("timeout", 0.0);
    cc.retryFailed = opts.getDouble("retry-failed", 0.0) != 0.0;
    cc.quarantineAfter = static_cast<unsigned>(
        opts.getDouble("quarantine-after", 3.0));
    const bool strict = opts.getDouble("strict", 0.0) != 0.0;
    cc.remoteSocket = opts.get("remote", "");
    cc.remoteResumeAttempts = static_cast<unsigned>(
        opts.getDouble("remote-retries", 8.0));
    if (!cc.remoteSocket.empty() && !cc.cache) {
        fatalf("--cache 0 cannot be combined with --remote; the broker "
               "owns the store (docs/SERVICE.md)");
    }
    explore::Campaign campaign(cc);
    buildCampaignGrid(campaign, grid, opts);

    // Service mode is the same campaign through a broker socket; the
    // in-process engine is the degenerate case (docs/SERVICE.md). The
    // CSV bytes are identical either way.
    std::vector<explore::JobResult> results;
    explore::CampaignReport report;
    if (!cc.remoteSocket.empty()) {
        svc::RemoteRun remote = svc::runCampaign(cc, campaign.jobs());
        results = std::move(remote.results);
        report = std::move(remote.report);
        if (remote.resumes > 0) {
            inform("campaign rode out ", remote.resumes,
                   " broker outage(s) via session resume");
        }
    } else {
        results = campaign.run(explore::evaluateJob);
        report = campaign.report();
    }

    // Physics columns come from the first Ok result (a Failed cell has
    // no fields); status/error columns make every row self-describing.
    std::vector<std::string> cols{"job"};
    for (const auto &r : results) {
        if (r.ok()) {
            for (const auto &[key, value] : r.fields())
                cols.push_back(key);
            break;
        }
    }
    cols.push_back("status");
    cols.push_back("error");
    Table t(cols);
    std::unique_ptr<CsvWriter> csv;
    if (opts.has("csv"))
        csv = std::make_unique<CsvWriter>(opts.get("csv"), cols);
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::vector<std::string> row{campaign.jobs()[i].canonical()};
        for (std::size_t c = 1; c + 2 < cols.size(); ++c)
            row.push_back(results[i].str(cols[c]));
        row.push_back(explore::jobStatusName(results[i].status()));
        row.push_back(results[i].error());
        t.row(row);
        if (csv)
            csv->row(row);
    }
    t.print(std::cout);
    std::cout << report.summary() << "\n";
    printHealthReport(campaign, results, report);
    if (csv)
        std::cout << "CSV: " << csv->path() << "\n";
    if (strict && report.failures() > 0)
        return exitUserError;
    return 0;
}

int
cmdCompletion(const cli::Options &opts)
{
    const auto params = cli::paramsFromOptions(opts);
    const double work = opts.getDouble("work", 1.0e6);
    const double harvest = opts.getDouble("harvest", 0.05);
    const auto est = core::estimateCompletion(params, work, harvest);

    Table t({"quantity", "value"});
    t.row({"useful cycles requested", Table::num(work, 0)});
    t.row({"progress per period", Table::num(est.progressPerPeriod, 1)});
    t.row({"active cycles per period",
           Table::num(est.activePerPeriod, 1)});
    t.row({"charging cycles per period",
           Table::num(est.chargePerPeriod, 1)});
    t.row({"periods needed", Table::num(est.periods, 2)});
    t.row({"total wall-clock cycles", Table::num(est.totalCycles, 0)});
    t.row({"throughput (useful/wall-clock)",
           Table::pct(est.throughput)});
    t.row({"active duty cycle", Table::pct(est.activeDutyCycle)});
    t.print(std::cout);

    const double tau_best =
        core::completionOptimalBackupPeriod(params, work, harvest);
    std::cout << "\nWall-clock-optimal backup period: "
              << Table::num(tau_best, 1) << " cycles\n"
              << "Speculation headroom at the current tau_B: "
              << Table::pct(core::speculationHeadroom(params)) << "\n";
    return 0;
}

int
cmdDisasm(const cli::Options &opts)
{
    const std::string workload = opts.get("workload", "crc");
    const bool nv = opts.getDouble("nv", 1.0) != 0.0;
    const auto layout = nv ? workloads::nonvolatileLayout()
                           : workloads::volatileLayout();
    const auto w = workloads::makeWorkload(workload, layout);
    std::cout << arch::disassemble(w.program);
    std::cout << "; payload region: " << w.sramUsedBytes
              << " bytes; results at:";
    for (auto addr : w.resultAddrs)
        std::cout << ' ' << addr;
    std::cout << "\n";
    return 0;
}

int
cmdTraces(const cli::Options &opts)
{
    const auto cycles = static_cast<std::uint64_t>(
        opts.getDouble("cycles", 30'000'000.0));
    const auto seed =
        static_cast<std::uint64_t>(opts.getDouble("seed", 7.0));
    const std::string dir = opts.get("dir", "results");
    const auto traces = energy::makePaperTraces(seed, cycles);
    for (const auto &trace : traces) {
        const std::string path = dir + "/" + trace.name() + ".csv";
        energy::saveTraceCsv(trace, path);
        std::cout << trace.name() << ": peak "
                  << Table::num(trace.peakVoltage(), 2) << " V, mean "
                  << Table::num(trace.meanVoltage(), 2) << " V -> "
                  << path << "\n";
    }
    return 0;
}

void
usage()
{
    std::cout <<
        "eh_explore — EH model design-space exploration\n"
        "  progress | optimal | sweep | simulate | campaign | completion |"
        " disasm | traces\n"
        "Common parameter flags: --preset illustrative|msp430|cortexm0|"
        "nvp,\n  --E --eps --epsC --tauB --sigmaB --OmegaB --AB --alphaB"
        " --sigmaR --OmegaR --AR --alphaR\n"
        "sweep:    --param tauB --from 1 --to 1000 --points 40 --log 1 "
        "[--csv file]\n"
        "simulate: --workload crc --policy clank|ratchet|nvp|mementos|dino|"
        "hibernus|hibernus++|watchdog [--budget pJ]\n"
        "campaign: --grid model|validation|clank|fault|wear --jobs N "
        "--seed S [--csv file]\n"
        "          [--cache-dir DIR] [--fresh 1] [--cache 0] "
        "[--cache-fsync N]; model grid "
        "takes the sweep\n          flags; fault takes --cells N "
        "(seeded runs per point); EH_JOBS sets the\n          default "
        "worker count\n"
        "          containment: --retries N --timeout SECONDS "
        "--quarantine-after N\n"
        "          --retry-failed 1 (re-run cached failures) --strict 1 "
        "(exit 1 on any\n          failed/timed-out/quarantined cell); "
        "see docs/ROBUSTNESS.md\n"
        "          --remote SOCK runs the campaign through an "
        "eh_explored broker\n          (docs/SERVICE.md); CSV bytes are "
        "identical to an in-process run;\n          --remote-retries N "
        "bounds reconnect attempts per broker outage\n"
        "          fault injection: --fault-seed N --fault-at-cycle C,.. "
        "--fault-at-instr K,..\n"
        "          --fault-backup-prob P --fault-selector-prob P "
        "--fault-restore-prob P --fault-max N\n"
        "          --fault-ckpt-corrupt-prob P --fault-selector-corrupt-"
        "prob P --fault-wear-rate R\n"
        "          --fault-max-bitflips N --fault-transient-restore-prob "
        "P\n"
        "disasm:   --workload crc --nv 1|0 (placement)\n"
        "traces:   --cycles N --seed S --dir results\n"
        "engine:   --engine auto|scalar|block (any subcommand; "
        "docs/PERFORMANCE.md;\n          EH_EXEC_ENGINE overrides)\n"
        "observability (any subcommand; docs/OBSERVABILITY.md):\n"
        "          --trace out.json [--trace-categories sim,campaign,...]"
        " (Perfetto/\n          chrome://tracing JSON) --metrics-out "
        "file.json|.csv --quiet 1 --verbose 1\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return eh::runMain([&]() -> int {
        const auto opts = eh::cli::Options::parse(args);
        const auto &cmd = opts.subcommand();

        // Global observability/verbosity flags (docs/OBSERVABILITY.md),
        // honored by every subcommand.
        if (opts.getDouble("quiet", 0.0) != 0.0)
            eh::setLogLevel(eh::LogLevel::Warn);
        else if (opts.getDouble("verbose", 0.0) != 0.0)
            eh::setLogLevel(eh::LogLevel::Debug);
        const std::string tracePath = opts.get("trace", "");
        if (!tracePath.empty()) {
            eh::obs::trace().enable(eh::obs::parseCategories(
                opts.get("trace-categories", "all")));
        }
        const std::string metricsPath = opts.get("metrics-out", "");

        // Execution-engine selection (docs/PERFORMANCE.md): applies to
        // every simulation this invocation runs, campaign cells
        // included. The flag sets the process default, which
        // resolveExecEngine() consults after EH_EXEC_ENGINE — so the
        // env var still wins over the flag.
        if (opts.has("engine")) {
            eh::sim::setDefaultExecEngine(
                eh::sim::parseExecEngine(opts.get("engine")));
        }

        int rc;
        if (cmd == "progress")
            rc = cmdProgress(opts);
        else if (cmd == "optimal")
            rc = cmdOptimal(opts);
        else if (cmd == "sweep")
            rc = cmdSweep(opts);
        else if (cmd == "simulate")
            rc = cmdSimulate(opts);
        else if (cmd == "campaign")
            rc = cmdCampaign(opts);
        else if (cmd == "completion")
            rc = cmdCompletion(opts);
        else if (cmd == "disasm")
            rc = cmdDisasm(opts);
        else if (cmd == "traces")
            rc = cmdTraces(opts);
        else {
            usage();
            return cmd.empty() ? 0 : eh::exitUserError;
        }
        if (!tracePath.empty()) {
            eh::obs::writeChromeTraceFile(tracePath);
            eh::inform("trace written to ", tracePath,
                       " (load in Perfetto or chrome://tracing)");
        }
        if (!metricsPath.empty()) {
            eh::obs::writeMetricsFile(metricsPath);
            eh::inform("metrics written to ", metricsPath);
        }
        for (const auto &flag : opts.unusedFlags())
            eh::warn("unused flag --", flag);
        return rc;
    });
}
