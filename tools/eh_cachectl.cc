/**
 * @file
 * eh_cachectl — inspect, verify, repair and convert the durable
 * segmented result stores that exploration campaigns write
 * (docs/STORAGE.md).
 *
 *   eh_cachectl stat         [--dir D] [--name N]
 *   eh_cachectl fsck         [--dir D] [--name N] [--repair 1]
 *   eh_cachectl compact      [--dir D] [--name N]
 *   eh_cachectl export-jsonl [--dir D] [--name N] --out file.jsonl
 *   eh_cachectl import-jsonl [--dir D] [--name N] --in file.jsonl
 *   eh_cachectl bench-load   [--dir D] [--records N] [--trials T]
 *
 * --dir defaults to $EH_RESULTS_DIR/cache (or results/cache); --name to
 * "campaign" (campaigns name their store after the grid). `fsck`
 * returns exit code 1 when corruption or stale indexes were found and
 * not repaired, so it can gate CI jobs. A legacy `<name>.jsonl` store
 * is migrated into the segmented format by `compact`/`import-jsonl`
 * (and transparently by any campaign open); `stat`/`fsck` only report
 * its presence.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "cli/options.hh"
#include "explore/cache.hh"
#include "explore/store.hh"
#include "util/hash.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace {

using namespace eh;
using namespace eh::explore;
namespace fs = std::filesystem;

std::string
cacheDirOf(const cli::Options &opts)
{
    const std::string dir = opts.get("dir", "");
    return dir.empty() ? defaultCacheDir() : dir;
}

std::string
storeDirOf(const cli::Options &opts)
{
    return cacheDirOf(opts) + "/" + opts.get("name", "campaign") +
           ".ehc";
}

std::string
legacyPathOf(const cli::Options &opts)
{
    return cacheDirOf(opts) + "/" + opts.get("name", "campaign") +
           ".jsonl";
}

void
noteLegacy(const cli::Options &opts)
{
    const std::string legacy = legacyPathOf(opts);
    if (fs::exists(legacy)) {
        inform("legacy JSONL store present at '", legacy,
               "'; it migrates into the segmented store on the next "
               "campaign open, `compact`, or `import-jsonl`");
    }
}

/** Minimal JSON string escaping (paths can contain anything). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        if (ch == '"' || ch == '\\')
            out += '\\';
        if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(ch));
            out += buf;
            continue;
        }
        out += ch;
    }
    return out;
}

int
cmdStat(const cli::Options &opts)
{
    StoreConfig cfg;
    cfg.readOnly = true;
    SegmentStore store(storeDirOf(opts), cfg);
    const StoreOpenStats &stats = store.openStats();
    std::size_t live = 0;
    store.forEachLive([&](const StoreRecord &) { ++live; });
    if (opts.getDouble("json", 0.0) != 0.0) {
        // Machine-readable variant for scripts and the service-smoke
        // CI job; keys mirror the human-readable lines below.
        std::cout << "{"
                  << "\"store\":\"" << jsonEscape(store.path()) << "\","
                  << "\"segments\":" << stats.segments << ","
                  << "\"record_slots\":" << stats.records << ","
                  << "\"live_records\":" << live << ","
                  << "\"bytes\":" << stats.bytes << ","
                  << "\"indexed_segments\":" << stats.indexedSegments
                  << ","
                  << "\"corrupt_ranges\":" << stats.corruptionEvents
                  << ","
                  << "\"corrupt_bytes\":" << stats.corruptBytes << ","
                  << "\"legacy_jsonl\":"
                  << (fs::exists(legacyPathOf(opts)) ? "true" : "false")
                  << "}\n";
        return 0;
    }
    std::cout << "store:              " << store.path() << "\n"
              << "segments:           " << stats.segments << "\n"
              << "record slots:       " << stats.records << "\n"
              << "live records:       " << live
              << "  (after newest-wins dedup)\n"
              << "bytes:              " << stats.bytes << "\n"
              << "indexed segments:   " << stats.indexedSegments << "\n"
              << "corrupt ranges:     " << stats.corruptionEvents
              << "  (" << stats.corruptBytes << " bytes quarantined)\n";
    noteLegacy(opts);
    return 0;
}

int
cmdFsck(const cli::Options &opts)
{
    const bool repair = opts.getDouble("repair", 0.0) != 0.0;
    StoreConfig cfg;
    cfg.readOnly = !repair;
    SegmentStore store(storeDirOf(opts), cfg);
    const FsckReport report = store.fsck(repair);
    std::cout << "segments:       " << report.segments << "\n"
              << "intact frames:  " << report.intactFrames << "\n"
              << "live records:   " << report.liveRecords << "\n"
              << "stale indexes:  " << report.staleIndexes << "\n"
              << "corrupt ranges: " << report.findings.size() << "\n";
    for (const auto &finding : report.findings) {
        std::cout << "  " << SegmentStore::segmentName(finding.segment)
                  << " +" << finding.offset << " (" << finding.bytes
                  << " bytes): " << finding.reason << "\n";
    }
    if (report.repaired) {
        std::cout << "repaired: corrupt bytes saved as "
                  << report.quarantinedFiles
                  << " quarantine-*.bin file(s), store compacted\n";
    }
    noteLegacy(opts);
    if (report.clean() || report.repaired) {
        std::cout << "status: clean\n";
        return 0;
    }
    std::cout << "status: corrupt (rerun with --repair 1 to quarantine "
                 "and compact)\n";
    return 1;
}

int
cmdCompact(const cli::Options &opts)
{
    // Opening through ResultCache migrates a legacy JSONL store first.
    ResultCache cache(cacheDirOf(opts), opts.get("name", "campaign"));
    const CompactionReport report = cache.segments().compact();
    std::cout << "segments: " << report.segmentsBefore << " -> "
              << report.segmentsAfter << "\n"
              << "bytes:    " << report.bytesBefore << " -> "
              << report.bytesAfter << "\n"
              << "frames:   " << report.framesBefore << " -> "
              << report.recordsAfter << " live records\n"
              << "corrupt ranges dropped: " << report.corruptionEvents
              << "\n";
    return 0;
}

int
cmdExport(const cli::Options &opts)
{
    const std::string out = opts.get("out", "");
    StoreConfig cfg;
    cfg.readOnly = true;
    SegmentStore store(storeDirOf(opts), cfg);
    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!out.empty() && out != "-") {
        file.open(out, std::ios::trunc);
        if (!file)
            fatalf("cannot open '", out, "' for writing");
        os = &file;
    }
    std::size_t n = 0;
    store.forEachLive([&](const StoreRecord &rec) {
        *os << ResultCache::encodeRecordRaw(rec.canonical, rec.hash,
                                            rec.seed, rec.result)
            << '\n';
        ++n;
    });
    os->flush();
    if (os == &file && !file)
        fatalf("short write to '", out, "'");
    inform("exported ", n, " live record", n == 1 ? "" : "s",
           out.empty() || out == "-" ? "" : " to '" + out + "'");
    return 0;
}

int
cmdImport(const cli::Options &opts)
{
    const std::string in_path = opts.get("in", "");
    if (in_path.empty())
        fatalf("import-jsonl requires --in file.jsonl");
    std::ifstream in(in_path);
    if (!in)
        fatalf("cannot open '", in_path, "'");

    // ResultCache open migrates any legacy store of the same name, so
    // the import lands on top of everything already present.
    ResultCache cache(cacheDirOf(opts), opts.get("name", "campaign"));
    SegmentStore &store = cache.segments();

    std::string line;
    std::size_t lineno = 0, imported = 0, duplicates = 0, torn = 0;
    while (std::getline(in, line)) {
        ++lineno;
        StoreRecord rec;
        if (!ResultCache::decodeRecord(line, rec.canonical, rec.hash,
                                       rec.seed, rec.result)) {
            const int v = ResultCache::recordSchemaVersion(line);
            if (v >= 0 && v != cacheSchemaVersion) {
                fatalf("'", in_path, "' line ", lineno,
                       " uses record schema v", v,
                       " but this build reads v", cacheSchemaVersion);
            }
            ++torn;
            continue;
        }
        JobResult existing;
        if (store.lookup(rec.canonical, rec.hash, rec.seed, existing)) {
            ++duplicates;
            continue;
        }
        store.append(rec);
        ++imported;
    }
    store.flush(true);
    if (torn > 0) {
        warn("skipped ", torn, " torn/corrupt line",
             torn == 1 ? "" : "s", " in '", in_path, "'");
    }
    inform("imported ", imported, " record", imported == 1 ? "" : "s",
           " (", duplicates, " already present) into '", store.path(),
           "'");
    return 0;
}

/**
 * Generate a synthetic store twice — legacy JSONL and compacted
 * segments — and time a warm load of each, so the sidecar-index win is
 * a number instead of a claim (recorded in docs/STORAGE.md).
 */
int
cmdBenchLoad(const cli::Options &opts)
{
    using clock = std::chrono::steady_clock;
    const auto records =
        static_cast<std::size_t>(opts.getDouble("records", 100000.0));
    const auto trials =
        static_cast<std::size_t>(opts.getDouble("trials", 3.0));
    const std::string dir = cacheDirOf(opts);
    fs::create_directories(dir);
    const std::string jsonl = dir + "/benchload.jsonl";
    const std::string storeDir = dir + "/benchload.ehc";
    fs::remove(jsonl);
    fs::remove_all(storeDir);

    auto makeRecord = [](std::size_t i) {
        JobSpec spec("bench");
        spec.set("i", static_cast<std::uint64_t>(i));
        spec.set("x", 0.25 * static_cast<double>(i));
        StoreRecord rec;
        rec.canonical = spec.canonical();
        rec.hash = spec.hash();
        rec.seed = 1;
        rec.result.set("t_complete", 1.5 + static_cast<double>(i))
            .set("p", 0.42)
            .set("backups", static_cast<std::uint64_t>(i % 97))
            .set("dead_cycles", static_cast<std::uint64_t>(3 * i));
        return rec;
    };

    {
        std::ofstream out(jsonl, std::ios::trunc);
        for (std::size_t i = 0; i < records; ++i) {
            const StoreRecord rec = makeRecord(i);
            out << ResultCache::encodeRecordRaw(rec.canonical, rec.hash,
                                                rec.seed, rec.result)
                << '\n';
        }
    }
    {
        SegmentStore store(storeDir);
        for (std::size_t i = 0; i < records; ++i)
            store.append(makeRecord(i));
        store.compact(); // one sealed, indexed segment
    }

    // Legacy path: parse every JSONL line and register it, exactly what
    // the pre-segmented cache did on every open.
    auto loadJsonl = [&]() {
        std::ifstream in(jsonl);
        std::unordered_multimap<std::uint64_t, StoreRecord> map;
        map.reserve(records);
        std::string line;
        while (std::getline(in, line)) {
            StoreRecord rec;
            if (ResultCache::decodeRecord(line, rec.canonical, rec.hash,
                                          rec.seed, rec.result)) {
                map.emplace(rec.hash, std::move(rec));
            }
        }
        return map.size();
    };
    auto loadStore = [&]() {
        StoreConfig cfg;
        cfg.readOnly = true;
        SegmentStore store(storeDir, cfg);
        return store.openStats().records;
    };

    double jsonlMs = 1e300, storeMs = 1e300;
    std::size_t jsonlLoaded = 0, storeLoaded = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        auto t0 = clock::now();
        jsonlLoaded = loadJsonl();
        auto t1 = clock::now();
        storeLoaded = loadStore();
        auto t2 = clock::now();
        jsonlMs = std::min(
            jsonlMs,
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        storeMs = std::min(
            storeMs,
            std::chrono::duration<double, std::milli>(t2 - t1).count());
    }
    if (jsonlLoaded != records || storeLoaded != records)
        fatalf("bench-load mismatch: jsonl=", jsonlLoaded, " store=",
               storeLoaded, " expected=", records);

    std::cout << "records:        " << records << "\n"
              << "jsonl load:     " << jsonlMs << " ms\n"
              << "segmented load: " << storeMs << " ms (indexed)\n"
              << "speedup:        " << (jsonlMs / storeMs) << "x\n";

    fs::remove(jsonl);
    fs::remove_all(storeDir);
    return 0;
}

void
usage()
{
    std::cout
        << "eh_cachectl — durable result store maintenance "
           "(docs/STORAGE.md)\n\n"
           "  eh_cachectl stat         [--dir D] [--name N] "
           "[--json 1]\n"
           "  eh_cachectl fsck         [--dir D] [--name N] "
           "[--repair 1]\n"
           "  eh_cachectl compact      [--dir D] [--name N]\n"
           "  eh_cachectl export-jsonl [--dir D] [--name N] "
           "[--out file.jsonl]\n"
           "  eh_cachectl import-jsonl [--dir D] [--name N] "
           "--in file.jsonl\n"
           "  eh_cachectl bench-load   [--dir D] [--records N] "
           "[--trials T]\n\n"
           "--dir defaults to $EH_RESULTS_DIR/cache (results/cache); "
           "--name to\n\"campaign\" (campaigns name stores after their "
           "grid). fsck exits 1 when\ncorruption was found and not "
           "repaired.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return eh::runMain([&]() -> int {
        const auto opts = cli::Options::parse(args);
        const auto &cmd = opts.subcommand();
        if (opts.getDouble("quiet", 0.0) != 0.0)
            setLogLevel(LogLevel::Warn);
        else if (opts.getDouble("verbose", 0.0) != 0.0)
            setLogLevel(LogLevel::Debug);

        int rc;
        if (cmd == "stat")
            rc = cmdStat(opts);
        else if (cmd == "fsck")
            rc = cmdFsck(opts);
        else if (cmd == "compact")
            rc = cmdCompact(opts);
        else if (cmd == "export-jsonl")
            rc = cmdExport(opts);
        else if (cmd == "import-jsonl")
            rc = cmdImport(opts);
        else if (cmd == "bench-load")
            rc = cmdBenchLoad(opts);
        else {
            usage();
            return cmd.empty() ? 0 : exitUserError;
        }
        for (const auto &flag : opts.unusedFlags())
            warn("unused flag --", flag);
        return rc;
    });
}
