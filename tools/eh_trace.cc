/**
 * @file
 * eh_trace — inspect Chrome-trace JSON files written by --trace
 * (docs/OBSERVABILITY.md).
 *
 *   eh_trace validate --in trace.json        structural check (exit 1
 *                                            on a malformed trace)
 *   eh_trace summary  --in trace.json        top spans by total time,
 *                     [--top N]              simulated phase breakdown,
 *                                            per-worker utilization
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "cli/options.hh"
#include "obs/summary.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace {

using namespace eh;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatalf("cannot open trace file '", path, "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

obs::JsonValue
loadTrace(const cli::Options &opts)
{
    const std::string path = opts.get("in", "");
    if (path.empty())
        fatal("missing --in trace.json");
    return obs::parseJson(readFile(path));
}

int
cmdValidate(const cli::Options &opts)
{
    const auto root = loadTrace(opts);
    const auto check = obs::validateTrace(root);
    if (!check.ok) {
        std::cout << "INVALID: " << check.error << "\n";
        return 1;
    }
    std::cout << "ok: " << check.events << " events (" << check.spans
              << " spans, " << check.instants << " instants) on "
              << check.tracks << " tracks\n";
    return 0;
}

int
cmdSummary(const cli::Options &opts)
{
    const auto root = loadTrace(opts);
    const auto top =
        static_cast<std::size_t>(opts.getDouble("top", 10.0));
    std::cout << obs::summarizeTrace(root, top);
    return 0;
}

void
usage()
{
    std::cout <<
        "eh_trace — inspect --trace output (docs/OBSERVABILITY.md)\n"
        "  validate --in trace.json           structural well-formedness\n"
        "  summary  --in trace.json [--top N] top spans, phase breakdown,"
        " worker\n                                     utilization\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return eh::runMain([&]() -> int {
        const auto opts = eh::cli::Options::parse(args);
        const auto &cmd = opts.subcommand();
        int rc;
        if (cmd == "validate")
            rc = cmdValidate(opts);
        else if (cmd == "summary")
            rc = cmdSummary(opts);
        else {
            usage();
            return cmd.empty() ? 0 : eh::exitUserError;
        }
        for (const auto &flag : opts.unusedFlags())
            eh::warn("unused flag --", flag);
        return rc;
    });
}
