/**
 * @file
 * google-benchmark microbenchmarks of the library itself: the paper's
 * pitch is *early, rapid* design-space exploration, so evaluating the
 * model must be orders of magnitude faster than simulating. These
 * numbers quantify that gap on this machine.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/model.hh"
#include "obs/trace.hh"
#include "core/optimum.hh"
#include "core/sensitivity.hh"
#include "core/sweep.hh"
#include "energy/supply.hh"
#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "runtime/hibernus.hh"
#include "runtime/mementos.hh"
#include "runtime/nvp.hh"
#include "runtime/ratchet.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace eh;

static void
BM_ModelProgress(benchmark::State &state)
{
    const core::Model m(core::illustrativeParams());
    for (auto _ : state)
        benchmark::DoNotOptimize(m.progress());
}
BENCHMARK(BM_ModelProgress);

static void
BM_ModelBreakdown(benchmark::State &state)
{
    const core::Model m(core::illustrativeParams());
    for (auto _ : state)
        benchmark::DoNotOptimize(m.breakdown());
}
BENCHMARK(BM_ModelBreakdown);

static void
BM_ClosedFormOptimum(benchmark::State &state)
{
    const auto p = core::illustrativeParams();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::optimalBackupPeriod(p));
}
BENCHMARK(BM_ClosedFormOptimum);

static void
BM_NumericOptimum(benchmark::State &state)
{
    const auto p = core::illustrativeParams();
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::numericOptimalBackupPeriod(
            p, core::DeadCycleMode::Average));
    }
}
BENCHMARK(BM_NumericOptimum);

static void
BM_Sensitivity(benchmark::State &state)
{
    auto p = core::illustrativeParams();
    p.backupPeriod = 30.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(core::progressPerAppStateRate(p));
}
BENCHMARK(BM_Sensitivity);

static void
BM_DesignSpaceSweep1k(benchmark::State &state)
{
    const auto p = core::illustrativeParams();
    const auto taus = core::logspace(1.0, 10000.0, 1000);
    for (auto _ : state) {
        const auto r = core::sweep1D(taus, [&](double tau) {
            return core::Model(p).withBackupPeriod(tau).progress();
        });
        benchmark::DoNotOptimize(r.bestX);
    }
}
BENCHMARK(BM_DesignSpaceSweep1k);

static void
BM_SimulatedCrcRun(benchmark::State &state)
{
    // The comparison point: one full intermittent simulation of crc.
    const auto w =
        workloads::makeWorkload("crc", workloads::volatileLayout());
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.sramUsedBytes = w.sramUsedBytes;
        runtime::Watchdog policy(
            {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
        energy::ConstantSupply supply(4.0e6);
        sim::Simulator s(w.program, policy, supply, cfg);
        benchmark::DoNotOptimize(s.run().measuredProgress());
    }
}
BENCHMARK(BM_SimulatedCrcRun)->Unit(benchmark::kMillisecond);

static void
runCrcOnce(const workloads::Workload &w)
{
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(4.0e6);
    sim::Simulator s(w.program, policy, supply, cfg);
    benchmark::DoNotOptimize(s.run().measuredProgress());
}

static void
BM_SimulatedCrcRunSinkIdle(benchmark::State &state)
{
    // The disabled-tracing cost: the sink has been enabled once (rings
    // exist) but the category mask is zero, so every instrumentation
    // site takes its early-out branch. scripts/trace_overhead.sh
    // asserts this stays within 5% of BM_SimulatedCrcRun.
    const auto w =
        workloads::makeWorkload("crc", workloads::volatileLayout());
    obs::TraceSink::instance().enable(obs::allCategories, 1u << 12);
    obs::TraceSink::instance().disable();
    for (auto _ : state)
        runCrcOnce(w);
}
BENCHMARK(BM_SimulatedCrcRunSinkIdle)->Unit(benchmark::kMillisecond);

static void
BM_SimulatedCrcRunTraced(benchmark::State &state)
{
    // Tracing fully on (all categories, small ring): the simulator
    // emits its whole phase timeline. Runs last so the enabled sink
    // cannot leak into the other benchmarks.
    const auto w =
        workloads::makeWorkload("crc", workloads::volatileLayout());
    obs::TraceSink::instance().enable(obs::allCategories, 1u << 12);
    for (auto _ : state)
        runCrcOnce(w);
    obs::TraceSink::instance().disable();
}
BENCHMARK(BM_SimulatedCrcRunTraced)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Execution-engine comparison (docs/PERFORMANCE.md). Each BM_Engine
// cell runs one full intermittent simulation of a workload x policy
// pair under one engine; scripts/perf_gate.sh pairs the scalar and
// block cells, computes per-cell speedups and writes
// results/BENCH_perf.json — failing the build if the block engine's
// median advantage drops below its floor.

namespace {

std::unique_ptr<runtime::BackupPolicy>
benchPolicy(const std::string &name, std::size_t sram_used)
{
    if (name == "watchdog")
        return std::make_unique<runtime::Watchdog>(runtime::WatchdogConfig{
            .periodCycles = 2000, .sramUsedBytes = sram_used});
    if (name == "mementos") {
        runtime::MementosConfig c;
        c.sramUsedBytes = sram_used;
        c.backupThreshold = 0.5;
        return std::make_unique<runtime::Mementos>(c);
    }
    if (name == "dino") {
        runtime::DinoConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::Dino>(c);
    }
    if (name == "hibernus") {
        runtime::HibernusConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::Hibernus>(c);
    }
    if (name == "clank")
        return std::make_unique<runtime::Clank>(runtime::ClankConfig{});
    if (name == "ratchet")
        return std::make_unique<runtime::Ratchet>(
            runtime::RatchetConfig{.maxSectionCycles = 4000,
                                   .archBytes = 80});
    // nvp
    runtime::NvpConfig c;
    c.backupEveryInstructions = 64;
    return std::make_unique<runtime::Nvp>(c);
}

bool
volatileBenchPolicy(const std::string &name)
{
    return name == "watchdog" || name == "mementos" || name == "dino" ||
           name == "hibernus";
}

double
runEngineCell(const workloads::Workload &w, const std::string &pname,
              sim::ExecEngine engine, double budget)
{
    sim::SimConfig cfg;
    cfg.sramUsedBytes = volatileBenchPolicy(pname) ? w.sramUsedBytes : 64;
    cfg.executionEngine = engine;
    auto policy = benchPolicy(pname, cfg.sramUsedBytes);
    energy::ConstantSupply supply(budget);
    sim::Simulator s(w.program, *policy, supply, cfg);
    return s.run().measuredProgress();
}

void
BM_Engine(benchmark::State &state, const char *wname, const char *pname,
          sim::ExecEngine engine)
{
    const auto w = workloads::makeWorkload(
        wname, volatileBenchPolicy(pname)
                   ? workloads::volatileLayout()
                   : workloads::nonvolatileLayout());
    for (auto _ : state)
        benchmark::DoNotOptimize(runEngineCell(w, pname, engine, 4.0e6));
}

// The perf gate's cells: a workload spread (table II + MiBench-derived)
// x a policy spread covering every capability class — per-cycle
// horizons (watchdog, hibernus), per-instruction horizons (nvp),
// peek-consuming policies (clank, ratchet) and checkpoint/task-based
// ones (mementos, dino).
#define EH_ENGINE_BENCH(w, p)                                            \
    BENCHMARK_CAPTURE(BM_Engine, w##_##p##_scalar, #w, #p,               \
                      sim::ExecEngine::Scalar)                           \
        ->Unit(benchmark::kMillisecond);                                 \
    BENCHMARK_CAPTURE(BM_Engine, w##_##p##_block, #w, #p,                \
                      sim::ExecEngine::Block)                            \
        ->Unit(benchmark::kMillisecond)

EH_ENGINE_BENCH(crc, watchdog);
EH_ENGINE_BENCH(crc, hibernus);
EH_ENGINE_BENCH(crc, mementos);
EH_ENGINE_BENCH(crc, dino);
EH_ENGINE_BENCH(crc, nvp);
EH_ENGINE_BENCH(crc, clank);
EH_ENGINE_BENCH(crc, ratchet);
EH_ENGINE_BENCH(sense, watchdog);
EH_ENGINE_BENCH(sense, nvp);
EH_ENGINE_BENCH(dijkstra, watchdog);
EH_ENGINE_BENCH(dijkstra, hibernus);
EH_ENGINE_BENCH(dijkstra, nvp);
EH_ENGINE_BENCH(fft, watchdog);
EH_ENGINE_BENCH(fft, nvp);

#undef EH_ENGINE_BENCH

/**
 * Campaign-level timing: a budget-sweep grid (the shape of a
 * design-space exploration) of full runs under one engine, i.e. what
 * tools/eh_explore amortizes the one-time program decode across.
 */
void
BM_EngineCampaign(benchmark::State &state, sim::ExecEngine engine)
{
    const auto w =
        workloads::makeWorkload("crc", workloads::volatileLayout());
    const double budgets[] = {2.0e6, 3.0e6, 4.5e6, 7.0e6, 1.1e7};
    const char *policies[] = {"watchdog", "hibernus", "nvp"};
    for (auto _ : state) {
        double acc = 0.0;
        for (const auto budget : budgets)
            for (const auto *pname : policies)
                acc += runEngineCell(w, pname, engine, budget);
        benchmark::DoNotOptimize(acc);
    }
}

BENCHMARK_CAPTURE(BM_EngineCampaign, scalar, sim::ExecEngine::Scalar)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EngineCampaign, block, sim::ExecEngine::Block)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
