/**
 * @file
 * google-benchmark microbenchmarks of the library itself: the paper's
 * pitch is *early, rapid* design-space exploration, so evaluating the
 * model must be orders of magnitude faster than simulating. These
 * numbers quantify that gap on this machine.
 */

#include <benchmark/benchmark.h>

#include "core/model.hh"
#include "obs/trace.hh"
#include "core/optimum.hh"
#include "core/sensitivity.hh"
#include "core/sweep.hh"
#include "energy/supply.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace eh;

static void
BM_ModelProgress(benchmark::State &state)
{
    const core::Model m(core::illustrativeParams());
    for (auto _ : state)
        benchmark::DoNotOptimize(m.progress());
}
BENCHMARK(BM_ModelProgress);

static void
BM_ModelBreakdown(benchmark::State &state)
{
    const core::Model m(core::illustrativeParams());
    for (auto _ : state)
        benchmark::DoNotOptimize(m.breakdown());
}
BENCHMARK(BM_ModelBreakdown);

static void
BM_ClosedFormOptimum(benchmark::State &state)
{
    const auto p = core::illustrativeParams();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::optimalBackupPeriod(p));
}
BENCHMARK(BM_ClosedFormOptimum);

static void
BM_NumericOptimum(benchmark::State &state)
{
    const auto p = core::illustrativeParams();
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::numericOptimalBackupPeriod(
            p, core::DeadCycleMode::Average));
    }
}
BENCHMARK(BM_NumericOptimum);

static void
BM_Sensitivity(benchmark::State &state)
{
    auto p = core::illustrativeParams();
    p.backupPeriod = 30.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(core::progressPerAppStateRate(p));
}
BENCHMARK(BM_Sensitivity);

static void
BM_DesignSpaceSweep1k(benchmark::State &state)
{
    const auto p = core::illustrativeParams();
    const auto taus = core::logspace(1.0, 10000.0, 1000);
    for (auto _ : state) {
        const auto r = core::sweep1D(taus, [&](double tau) {
            return core::Model(p).withBackupPeriod(tau).progress();
        });
        benchmark::DoNotOptimize(r.bestX);
    }
}
BENCHMARK(BM_DesignSpaceSweep1k);

static void
BM_SimulatedCrcRun(benchmark::State &state)
{
    // The comparison point: one full intermittent simulation of crc.
    const auto w =
        workloads::makeWorkload("crc", workloads::volatileLayout());
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.sramUsedBytes = w.sramUsedBytes;
        runtime::Watchdog policy(
            {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
        energy::ConstantSupply supply(4.0e6);
        sim::Simulator s(w.program, policy, supply, cfg);
        benchmark::DoNotOptimize(s.run().measuredProgress());
    }
}
BENCHMARK(BM_SimulatedCrcRun)->Unit(benchmark::kMillisecond);

static void
runCrcOnce(const workloads::Workload &w)
{
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    runtime::Watchdog policy(
        {.periodCycles = 2000, .sramUsedBytes = cfg.sramUsedBytes});
    energy::ConstantSupply supply(4.0e6);
    sim::Simulator s(w.program, policy, supply, cfg);
    benchmark::DoNotOptimize(s.run().measuredProgress());
}

static void
BM_SimulatedCrcRunSinkIdle(benchmark::State &state)
{
    // The disabled-tracing cost: the sink has been enabled once (rings
    // exist) but the category mask is zero, so every instrumentation
    // site takes its early-out branch. scripts/trace_overhead.sh
    // asserts this stays within 5% of BM_SimulatedCrcRun.
    const auto w =
        workloads::makeWorkload("crc", workloads::volatileLayout());
    obs::TraceSink::instance().enable(obs::allCategories, 1u << 12);
    obs::TraceSink::instance().disable();
    for (auto _ : state)
        runCrcOnce(w);
}
BENCHMARK(BM_SimulatedCrcRunSinkIdle)->Unit(benchmark::kMillisecond);

static void
BM_SimulatedCrcRunTraced(benchmark::State &state)
{
    // Tracing fully on (all categories, small ring): the simulator
    // emits its whole phase timeline. Runs last so the enabled sink
    // cannot leak into the other benchmarks.
    const auto w =
        workloads::makeWorkload("crc", workloads::volatileLayout());
    obs::TraceSink::instance().enable(obs::allCategories, 1u << 12);
    for (auto _ : state)
        runCrcOnce(w);
    obs::TraceSink::instance().disable();
}
BENCHMARK(BM_SimulatedCrcRunTraced)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
