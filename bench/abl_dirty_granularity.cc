/**
 * @file
 * Ablation: dirty tracking at block vs byte granularity. The Section
 * VI-A analysis assumes backups flush whole dirty blocks because
 * per-byte metadata is too expensive; this bench quantifies exactly how
 * much backup traffic that costs across block sizes and write strides,
 * using the cache's dual-granularity accounting.
 */

#include <iostream>
#include <vector>

#include "mem/cache.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"

using namespace eh;

namespace {

/** Write 256 4-byte stores at the given byte stride, then flush. */
mem::FlushResult
strideWrites(std::size_t block_bytes, std::size_t stride)
{
    mem::Cache cache(
        mem::CacheGeometry{16384, 8, block_bytes}); // large: no evictions
    for (std::size_t i = 0; i < 256; ++i)
        cache.access(0x1000 + i * stride, 4, true);
    return cache.flushDirty();
}

} // namespace

int
runBench()
{
    bench::banner("Ablation: dirty-tracking granularity",
                  "block-flush bytes vs actually-dirty bytes");

    Table table({"block", "stride", "dirty blocks", "flush bytes (block)",
                 "dirty bytes (exact)", "inflation",
                 "beta_block/beta_store"});
    CsvWriter csv(bench::csvPath("abl_dirty_granularity.csv"),
                  {"block", "stride", "blocks", "bytes_block",
                   "bytes_exact", "inflation", "beta_ratio"});

    bool shape_holds = true;
    for (std::size_t block : {8u, 16u, 32u, 64u}) {
        for (std::size_t stride : {4u, 16u, 64u}) {
            const auto f = strideWrites(block, stride);
            const double inflation =
                static_cast<double>(f.bytesBlock) /
                static_cast<double>(f.bytesExact);
            const double beta_ratio = static_cast<double>(block) / 4.0;
            table.row({std::to_string(block), std::to_string(stride),
                       std::to_string(f.blocks),
                       std::to_string(f.bytesBlock),
                       std::to_string(f.bytesExact),
                       Table::num(inflation, 2),
                       Table::num(beta_ratio, 2)});
            csv.rowNumeric({static_cast<double>(block),
                            static_cast<double>(stride),
                            static_cast<double>(f.blocks),
                            static_cast<double>(f.bytesBlock),
                            static_cast<double>(f.bytesExact), inflation,
                            beta_ratio});
            // Fully strided writes (one store per block) must show the
            // full beta_block/beta_store inflation; dense writes show
            // none.
            if (stride >= block && inflation != beta_ratio)
                shape_holds = false;
            if (stride == 4 && inflation > 1.0 + 1e-9)
                shape_holds = false;
        }
    }
    table.print(std::cout);
    std::cout << "\nShape check (stride >= block -> inflation == "
                 "beta_block/beta_store; dense writes -> 1.0): "
              << (shape_holds ? "HOLDS" : "VIOLATED")
              << "\nThis inflation is precisely the factor Equation 13 "
                 "charges load-major loops with\n(Section VI-A); "
                 "byte-granularity tracking would erase it at the cost "
                 "of per-byte\nmetadata.\nCSV: "
              << bench::csvPath("abl_dirty_granularity.csv") << "\n";
    return shape_holds ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
