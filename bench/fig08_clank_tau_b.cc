/**
 * @file
 * Figure 8: average cycles between backups (tau_B) with standard-error
 * bars for the MiBench-like suite running under Clank on three RF
 * voltage traces (Section V-B).
 *
 * Paper expectations reproduced here: tau_B is far below the 8000-cycle
 * watchdog for store-heavy kernels (lzfx backs up the most often due to
 * its very high store rate); results are nearly identical across the
 * three traces because the per-period energy E is almost constant; the
 * SEM bars are small.
 */

#include <iostream>

#include "support.hh"
#include "util/csv.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

int
main()
{
    bench::banner("Figure 8",
                  "mean tau_B per benchmark across three RF traces "
                  "(Clank)");

    Table table({"benchmark", "trace", "tau_B mean", "SEM", "backups",
                 "violations", "watchdogs", "overflows"});
    CsvWriter csv(bench::csvPath("fig08_clank_tau_b.csv"),
                  {"benchmark", "trace", "tau_b_mean", "tau_b_sem",
                   "backups", "violations", "watchdogs", "overflows"});

    bool all_finished = true;
    double lzfx_tau = 0.0, max_tau = 0.0;
    for (const auto &benchmark : workloads::mibenchNames()) {
        for (int trace = 0; trace < 3; ++trace) {
            const auto r = bench::runClank(benchmark, trace);
            all_finished &= r.finished;
            if (benchmark == "lzfx" && trace == 0)
                lzfx_tau = r.tauBMean;
            max_tau = std::max(max_tau, r.tauBMean);
            table.row({benchmark, r.trace, Table::num(r.tauBMean, 1),
                       Table::num(r.tauBSem, 2),
                       std::to_string(r.backups),
                       std::to_string(r.violations),
                       std::to_string(r.watchdogs),
                       std::to_string(r.overflows)});
            csv.row({benchmark, r.trace, Table::num(r.tauBMean, 3),
                     Table::num(r.tauBSem, 4),
                     std::to_string(r.backups),
                     std::to_string(r.violations),
                     std::to_string(r.watchdogs),
                     std::to_string(r.overflows)});
        }
    }
    table.print(std::cout);
    std::cout << "\nlzfx mean tau_B " << Table::num(lzfx_tau, 1)
              << " vs suite max " << Table::num(max_tau, 1)
              << " — lzfx's high store rate makes it back up the most "
                 "frequently (paper Section V-B).\n"
              << (all_finished ? ""
                               : "WARNING: some runs did not finish!\n")
              << "CSV: " << bench::csvPath("fig08_clank_tau_b.csv")
              << "\n";
    return all_finished ? 0 : 1;
}
