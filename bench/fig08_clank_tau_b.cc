/**
 * @file
 * Figure 8: average cycles between backups (tau_B) with standard-error
 * bars for the MiBench-like suite running under Clank on three RF
 * voltage traces (Section V-B).
 *
 * Paper expectations reproduced here: tau_B is far below the 8000-cycle
 * watchdog for store-heavy kernels (lzfx backs up the most often due to
 * its very high store rate); results are nearly identical across the
 * three traces because the per-period energy E is almost constant; the
 * SEM bars are small.
 */

#include <iostream>

#include "explore/campaign.hh"
#include "explore/tasks.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Figure 8",
                  "mean tau_B per benchmark across three RF traces "
                  "(Clank)");

    Table table({"benchmark", "trace", "tau_B mean", "SEM", "backups",
                 "violations", "watchdogs", "overflows"});
    CsvWriter csv(bench::csvPath("fig08_clank_tau_b.csv"),
                  {"benchmark", "trace", "tau_b_mean", "tau_b_sem",
                   "backups", "violations", "watchdogs", "overflows"});

    // Shared "clank" store: Figure 9 runs the identical grid, so
    // whichever figure runs second is served entirely from cache.
    explore::CampaignConfig cc;
    cc.name = "clank";
    cc.cacheDir = bench::outputDir() + "/cache";
    explore::Campaign campaign(cc);
    for (const auto &benchmark : workloads::mibenchNames()) {
        for (int trace = 0; trace < 3; ++trace) {
            campaign.add(explore::JobSpec("clank")
                             .set("workload", benchmark)
                             .set("trace", trace));
        }
    }
    const auto results = campaign.run(explore::evaluateJob);

    bool all_finished = true;
    double lzfx_tau = 0.0, max_tau = 0.0;
    std::size_t cell = 0;
    for (const auto &benchmark : workloads::mibenchNames()) {
        for (int trace = 0; trace < 3; ++trace) {
            const auto &r = results[cell++];
            const double tau_b_mean = r.num("tau_b_mean");
            all_finished &= r.num("finished") != 0.0;
            if (benchmark == "lzfx" && trace == 0)
                lzfx_tau = tau_b_mean;
            max_tau = std::max(max_tau, tau_b_mean);
            table.row({benchmark, r.str("trace"),
                       Table::num(tau_b_mean, 1),
                       Table::num(r.num("tau_b_sem"), 2),
                       std::to_string(r.uint("backups")),
                       std::to_string(r.uint("violations")),
                       std::to_string(r.uint("watchdogs")),
                       std::to_string(r.uint("overflows"))});
            csv.row({benchmark, r.str("trace"),
                     Table::num(tau_b_mean, 3),
                     Table::num(r.num("tau_b_sem"), 4),
                     std::to_string(r.uint("backups")),
                     std::to_string(r.uint("violations")),
                     std::to_string(r.uint("watchdogs")),
                     std::to_string(r.uint("overflows"))});
        }
    }
    table.print(std::cout);
    std::cout << "campaign: " << campaign.report().summary() << "\n";
    std::cout << "\nlzfx mean tau_B " << Table::num(lzfx_tau, 1)
              << " vs suite max " << Table::num(max_tau, 1)
              << " — lzfx's high store rate makes it back up the most "
                 "frequently (paper Section V-B).\n"
              << (all_finished ? ""
                               : "WARNING: some runs did not finish!\n")
              << "CSV: " << bench::csvPath("fig08_clank_tau_b.csv")
              << "\n";
    return all_finished ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
