/**
 * @file
 * Figure 7: does the model's optimal backup period explain measured
 * performance? For each DINO benchmark we compare the measured forward
 * progress with how close the benchmark's actual mean tau_B comes to
 * the calibrated tau_B,opt of Equation 9 (similarity = min(r, 1/r) for
 * r = tau_B / tau_B,opt).
 *
 * Paper expectation: AR, whose tasks land nearest the optimum (~70% of
 * tau_B,opt), achieves the highest progress; DS and MIDI back up far
 * from optimally and trail. We report the per-benchmark pairs and their
 * rank correlation.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "support.hh"
#include "util/csv.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

int
main()
{
    bench::banner("Figure 7",
                  "correlation of progress with tau_B / tau_B,opt under "
                  "DINO");

    Table table({"benchmark", "measured p", "mean tau_B", "tau_B,opt",
                 "similarity"});
    CsvWriter csv(bench::csvPath("fig07_tauopt_correlation.csv"),
                  {"benchmark", "measured", "tau_b", "tau_b_opt",
                   "similarity"});

    std::vector<double> progress, similarity;
    for (const auto &benchmark : workloads::tableIINames()) {
        const auto r = bench::runValidation(benchmark, "dino");
        const double ratio =
            r.optimalTauB > 0.0 ? r.meanTauB / r.optimalTauB : 0.0;
        const double sim =
            ratio > 0.0 ? std::min(ratio, 1.0 / ratio) : 0.0;
        progress.push_back(r.measuredProgress);
        similarity.push_back(sim);
        table.row({benchmark, Table::pct(r.measuredProgress),
                   Table::num(r.meanTauB, 0),
                   Table::num(r.optimalTauB, 0), Table::num(sim, 3)});
        csv.row({benchmark, Table::num(r.measuredProgress, 6),
                 Table::num(r.meanTauB, 1),
                 Table::num(r.optimalTauB, 1), Table::num(sim, 4)});
    }
    table.print(std::cout);

    const double corr = pearson(similarity, progress);
    std::cout << "\nPearson correlation (similarity vs measured "
                 "progress): " << Table::num(corr, 3)
              << "\nExpected: positive — benchmarks whose task length "
                 "lands near tau_B,opt make the\nmost progress (the "
                 "paper singles out AR as closest and best).\nCSV: "
              << bench::csvPath("fig07_tauopt_correlation.csv") << "\n";
    return 0;
}
