/**
 * @file
 * Figure 7: does the model's optimal backup period explain measured
 * performance? For each DINO benchmark we compare the measured forward
 * progress with how close the benchmark's actual mean tau_B comes to
 * the calibrated tau_B,opt of Equation 9 (similarity = min(r, 1/r) for
 * r = tau_B / tau_B,opt).
 *
 * Paper expectation: AR, whose tasks land nearest the optimum (~70% of
 * tau_B,opt), achieves the highest progress; DS and MIDI back up far
 * from optimally and trail. We report the per-benchmark pairs and their
 * rank correlation.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "explore/campaign.hh"
#include "explore/tasks.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Figure 7",
                  "correlation of progress with tau_B / tau_B,opt under "
                  "DINO");

    Table table({"benchmark", "measured p", "mean tau_B", "tau_B,opt",
                 "similarity"});
    CsvWriter csv(bench::csvPath("fig07_tauopt_correlation.csv"),
                  {"benchmark", "measured", "tau_b", "tau_b_opt",
                   "similarity"});

    // Same cache store as Figure 6: the DINO column of its grid is
    // exactly this figure's job set, so a prior fig06 run makes this
    // one free.
    explore::CampaignConfig cc;
    cc.name = "validation";
    cc.cacheDir = bench::outputDir() + "/cache";
    explore::Campaign campaign(cc);
    for (const auto &benchmark : workloads::tableIINames()) {
        campaign.add(explore::JobSpec("validation")
                         .set("workload", benchmark)
                         .set("policy", std::string("dino")));
    }
    const auto results = campaign.run(explore::evaluateJob);

    std::vector<double> progress, similarity;
    std::size_t cell = 0;
    for (const auto &benchmark : workloads::tableIINames()) {
        const auto &r = results[cell++];
        const double tau_b = r.num("tau_b");
        const double tau_b_opt = r.num("tau_b_opt");
        const double measured = r.num("measured");
        const double ratio = tau_b_opt > 0.0 ? tau_b / tau_b_opt : 0.0;
        const double sim =
            ratio > 0.0 ? std::min(ratio, 1.0 / ratio) : 0.0;
        progress.push_back(measured);
        similarity.push_back(sim);
        table.row({benchmark, Table::pct(measured),
                   Table::num(tau_b, 0),
                   Table::num(tau_b_opt, 0), Table::num(sim, 3)});
        csv.row({benchmark, Table::num(measured, 6),
                 Table::num(tau_b, 1),
                 Table::num(tau_b_opt, 1), Table::num(sim, 4)});
    }
    table.print(std::cout);
    std::cout << "campaign: " << campaign.report().summary() << "\n";

    const double corr = pearson(similarity, progress);
    std::cout << "\nPearson correlation (similarity vs measured "
                 "progress): " << Table::num(corr, 3)
              << "\nExpected: positive — benchmarks whose task length "
                 "lands near tau_B,opt make the\nmost progress (the "
                 "paper singles out AR as closest and best).\nCSV: "
              << bench::csvPath("fig07_tauopt_correlation.csv") << "\n";
    return 0;
}

int
main()
{
    return eh::runMain(runBench);
}
