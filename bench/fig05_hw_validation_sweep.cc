/**
 * @file
 * Figure 5: the hardware-validation experiment. A counter program backs
 * up at fixed intervals (tau_B swept) across four active-period lengths;
 * the measured per-period forward progress must fall inside the EH
 * model's best/worst-case dead-cycle bounds.
 *
 * The paper ran this on an MSP430FR5994 at 16 MHz with periods of
 * 0.125–0.5 s and tau_B of 0.18–7.1 ms. We reproduce it on the simulated
 * platform with time scaled by 1/32 (all dimensionless ratios — tau_B /
 * period, alpha_B, Omega/eps — preserved, so the bounds and their
 * tightness are unchanged). Supply jitter of ±3% recreates the
 * measurement scatter.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/model.hh"
#include "energy/supply.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

namespace {

constexpr double kScale = 1.0 / 32.0;   // time-scale factor vs hardware
constexpr double kClockHz = 16.0e6;
constexpr double kAlphaB = 0.1;         // paper Section V-A setting

struct Sample
{
    double mean, lo, hi;
};

/** Measured per-period progress fraction across jittered supplies. */
Sample
measure(double period_cycles, std::uint64_t tau_b)
{
    const auto layout = workloads::volatileLayout();
    const auto w = workloads::makeWorkload("counter", layout);

    const auto array_bytes = static_cast<std::size_t>(
        std::max(16.0, kAlphaB * static_cast<double>(tau_b)));

    RunningStats progress;
    for (int jitter = 0; jitter < 8; ++jitter) {
        sim::SimConfig cfg;
        cfg.sramUsedBytes = array_bytes;
        cfg.maxActivePeriods = 3;
        const double base_energy = 68.0 * period_cycles;
        const double budget =
            base_energy * (0.97 + 0.0086 * static_cast<double>(jitter));
        energy::ConstantSupply supply(budget);
        runtime::Watchdog policy({.periodCycles = tau_b,
                                  .sramUsedBytes = array_bytes,
                                  .chargeDirtyBytesOnly = false});
        sim::Simulator s(w.program, policy, supply, cfg);
        const auto stats = s.run();
        // Aggregate the per-period progress fractions; mean/min/max feed
        // the scatter range.
        if (stats.periodProgress.count()) {
            progress.add(stats.periodProgress.mean());
            progress.add(stats.periodProgress.min());
            progress.add(stats.periodProgress.max());
        }
    }
    return {progress.mean(), progress.min(), progress.max()};
}

/** EH-model bounds for the same configuration. */
std::pair<double, double>
modelBounds(double period_cycles, std::uint64_t tau_b)
{
    // The experiment's array has a 16-byte floor, so the effective
    // application-state rate is array / tau_B (= kAlphaB above the
    // floor).
    const double array_bytes =
        std::max(16.0, kAlphaB * static_cast<double>(tau_b));
    core::Params p;
    p.energyBudget = 68.0 * period_cycles;
    p.execEnergy = 68.0; // counter-loop average (one store per 8 cycles)
    p.chargeEnergy = 0.0;
    p.backupPeriod = static_cast<double>(tau_b);
    p.backupBandwidth = 1.0;
    p.backupCost = 75.0;
    p.archStateBackup = 68.0;
    p.appStateRate = array_bytes / static_cast<double>(tau_b);
    p.restoreBandwidth = 1.0;
    p.restoreCost = 75.0;
    p.archStateRestore = 68.0 + array_bytes;
    p.appRestoreRate = 0.0;
    core::Model m(p);
    return {m.progress(core::DeadCycleMode::WorstCase),
            m.progress(core::DeadCycleMode::BestCase)};
}

} // namespace

int
runBench()
{
    bench::banner("Figure 5",
                  "multi-backup validation: measured progress vs EH "
                  "bounds");

    const double periods_s[] = {0.5, 0.375, 0.25, 0.125};
    const std::uint64_t taus[] = {90,   180,  355,  710,
                                  1420, 2130, 2840, 3550};

    Table table({"period (s, HW-equiv)", "tau_B (ms, HW-equiv)",
                 "measured p", "[min, max]", "model lower",
                 "model upper", "in bounds"});
    CsvWriter csv(bench::csvPath("fig05_hw_validation_sweep.csv"),
                  {"period_s", "tau_b_ms", "p_mean", "p_min", "p_max",
                   "bound_lo", "bound_hi", "in_bounds"});

    int violations = 0, rows = 0;
    for (double period_s : periods_s) {
        const double period_cycles = period_s * kClockHz * kScale;
        for (auto tau_b : taus) {
            if (static_cast<double>(tau_b) > period_cycles / 4.0)
                continue; // keep several backups per period
            const auto m = measure(period_cycles, tau_b);
            const auto [lo, hi] = modelBounds(period_cycles, tau_b);
            // Bounds up to measurement tolerance of the discrete sim.
            const bool ok = m.lo >= lo - 0.02 && m.hi <= hi + 0.02;
            violations += ok ? 0 : 1;
            ++rows;
            const double tau_ms =
                static_cast<double>(tau_b) / kScale / kClockHz * 1e3;
            table.row({Table::num(period_s, 3), Table::num(tau_ms, 2),
                       Table::num(m.mean, 4),
                       "[" + Table::num(m.lo, 4) + ", " +
                           Table::num(m.hi, 4) + "]",
                       Table::num(lo, 4), Table::num(hi, 4),
                       ok ? "yes" : "NO"});
            csv.rowNumeric({period_s, tau_ms, m.mean, m.lo, m.hi, lo, hi,
                            ok ? 1.0 : 0.0});
        }
    }
    table.print(std::cout);
    std::cout << "\n" << rows - violations << "/" << rows
              << " configurations inside the EH bounds.\n"
              << "Expected: all points within [worst-case, best-case]; "
                 "spread grows with tau_B\n(Section V-A, Figure 5).\n"
              << "CSV: " << csv.path() << "\n";
    return violations == 0 ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
