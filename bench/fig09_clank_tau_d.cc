/**
 * @file
 * Figure 9: average dead cycles (tau_D) with standard-error bars for the
 * MiBench-like suite under Clank on the three RF traces.
 *
 * Paper expectations: tau_D tracks tau_B (it cannot exceed it — a power
 * failure can only kill work since the last backup), so benchmarks with
 * tiny backup intervals also show tiny dead-cycle counts, and results
 * barely move across traces.
 */

#include <iostream>

#include "explore/campaign.hh"
#include "explore/tasks.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Figure 9",
                  "mean tau_D per benchmark across three RF traces "
                  "(Clank)");

    Table table({"benchmark", "trace", "tau_D mean", "SEM",
                 "tau_B mean", "tau_D <= tau_B+slack"});
    CsvWriter csv(bench::csvPath("fig09_clank_tau_d.csv"),
                  {"benchmark", "trace", "tau_d_mean", "tau_d_sem",
                   "tau_b_mean", "bounded"});

    // Identical grid to Figure 8, same "clank" cache store — after
    // either figure has run once the other is a pure cache read.
    explore::CampaignConfig cc;
    cc.name = "clank";
    cc.cacheDir = bench::outputDir() + "/cache";
    explore::Campaign campaign(cc);
    for (const auto &benchmark : workloads::mibenchNames()) {
        for (int trace = 0; trace < 3; ++trace) {
            campaign.add(explore::JobSpec("clank")
                             .set("workload", benchmark)
                             .set("trace", trace));
        }
    }
    const auto results = campaign.run(explore::evaluateJob);

    bool all_bounded = true;
    std::size_t cell = 0;
    for (const auto &benchmark : workloads::mibenchNames()) {
        for (int trace = 0; trace < 3; ++trace) {
            const auto &r = results[cell++];
            const double tau_d_mean = r.num("tau_d_mean");
            const double tau_b_mean = r.num("tau_b_mean");
            // Dead execution cannot exceed the spacing of commit points
            // by more than one instruction + one failed backup.
            const bool bounded =
                tau_d_mean <= std::max(tau_b_mean, 1.0) * 1.25 + 8200.0;
            all_bounded &= bounded;
            table.row({benchmark, r.str("trace"),
                       Table::num(tau_d_mean, 1),
                       Table::num(r.num("tau_d_sem"), 2),
                       Table::num(tau_b_mean, 1),
                       bounded ? "yes" : "NO"});
            csv.row({benchmark, r.str("trace"),
                     Table::num(tau_d_mean, 3),
                     Table::num(r.num("tau_d_sem"), 4),
                     Table::num(tau_b_mean, 3), bounded ? "1" : "0"});
        }
    }
    table.print(std::cout);
    std::cout << "campaign: " << campaign.report().summary() << "\n";
    std::cout << "\nExpected: tau_D scales with tau_B (small backup "
                 "intervals leave little to lose)\nand is stable across "
                 "traces (near-constant per-period energy, Section "
                 "V-B).\nCSV: " << bench::csvPath("fig09_clank_tau_d.csv")
              << "\n";
    return all_bounded ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
