/**
 * @file
 * Section VI-A case study: store-major vs load-major loop ordering on
 * mixed-volatility caches (Equations 13–14). Two parts:
 *
 *  1. Analytic: the overhead ratio and the store-major-wins predicate
 *     across NVM write/read bandwidth ratios (FRAM symmetric through
 *     STT-RAM's ~10x writes) and application write/read footprints.
 *  2. Simulated: the matrix-transpose of Listing 1 driven through the
 *     real cache in both orders, counting dirty-block transfers.
 *
 * Expected: equal footprints + symmetric NVM = a wash; slow writes or
 * write-heavy code favour store-major; the cache shows the
 * beta_block/beta_store traffic inflation for load-major writes.
 */

#include <iostream>
#include <vector>

#include "core/locality.hh"
#include "mem/cache.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Section VI-A case study",
                  "store-major vs load-major cache locality");

    // Part 1: analytic sweep (Equations 13-14).
    std::cout << "Analytic overhead ratio tau_load-major / "
                 "tau_store-major (>1 means store-major wins):\n\n";
    const std::vector<double> write_bw{1.0, 0.5, 0.2, 0.1};
    const std::vector<double> store_rates{0.05, 0.1, 0.2, 0.4};

    std::vector<std::string> header{"alpha_B \\ sigma_B"};
    for (double bw : write_bw)
        header.push_back("sigma_B=" + Table::num(bw, 2));
    Table table(header);
    CsvWriter csv(bench::csvPath("case_store_major.csv"),
                  {"alpha_b", "sigma_b", "ratio", "store_major_wins"});

    for (double rate : store_rates) {
        std::vector<std::string> row{Table::num(rate, 2)};
        for (double bw : write_bw) {
            core::LocalityParams lp;
            lp.blockBytes = 16.0;
            lp.loadBytes = 4.0;
            lp.storeBytes = 4.0;
            lp.loadRate = 0.1;
            lp.appStateRate = rate;
            lp.loadBandwidth = 1.0;
            lp.backupBandwidth = bw;
            lp.progressCycles = 10000.0;
            lp.backupPeriod = 1000.0;
            lp.backupCount = 10.0;
            const double ratio =
                core::loadMajorOverStoreMajorRatio(lp);
            const bool wins = core::storeMajorWins(lp);
            row.push_back(Table::num(ratio, 3) +
                          (wins ? " *" : "  "));
            csv.rowNumeric({rate, bw, ratio, wins ? 1.0 : 0.0});
        }
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "(* = Equation 14 says transform the loop to "
                 "store-major order)\n"
              << "Reference points: equal footprints (alpha_B = 0.1) "
                 "with sigma_B = 1.0 is exactly 1.0\n(a wash); sigma_B "
                 "= 0.1 is the STT-RAM 10x-write case the paper "
                 "highlights.\n\n";

    // Part 2: cache simulation of the Listing 1 transpose.
    std::cout << "Simulated 32x32 word-matrix transpose through a 1 KiB "
                 "/ 4-way / 16 B cache:\n\n";
    constexpr std::size_t dim = 32;
    const mem::CacheGeometry geom{1024, 4, 16};

    auto transpose = [&](bool store_major) {
        mem::Cache cache(geom);
        for (std::size_t i = 0; i < dim; ++i) {
            for (std::size_t j = 0; j < dim; ++j) {
                // store-major: B[i][j] = A[j][i]; load-major mirrors it.
                const std::size_t read_idx =
                    store_major ? j * dim + i : i * dim + j;
                const std::size_t write_idx =
                    store_major ? i * dim + j : j * dim + i;
                cache.access(0x0000 + read_idx * 4, 4, false);
                cache.access(0x4000 + write_idx * 4, 4, true);
            }
        }
        const auto flush = cache.flushDirty();
        return cache.stats().writebacks + flush.blocks;
    };

    const auto sm_transfers = transpose(true);
    const auto lm_transfers = transpose(false);
    Table sim({"ordering", "dirty-block transfers"});
    sim.row({"store-major", std::to_string(sm_transfers)});
    sim.row({"load-major", std::to_string(lm_transfers)});
    sim.print(std::cout);
    const double inflation = static_cast<double>(lm_transfers) /
                             static_cast<double>(sm_transfers);
    std::cout << "\nBackup-traffic inflation of load-major ordering: "
              << Table::num(inflation, 2)
              << "x (analysis predicts ~beta_block/beta_store = 4x).\n"
              << "CSV: " << bench::csvPath("case_store_major.csv")
              << "\n";
    return inflation > 2.0 ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
