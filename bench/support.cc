#include "support.hh"

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <mutex>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace eh::bench {

void
initObservability()
{
    // Env-driven so every figure/ablation bench gets tracing without
    // its own flag plumbing: EH_TRACE=file.json turns the sink on
    // (EH_TRACE_CATEGORIES selects categories) and the trace plus the
    // EH_METRICS_OUT snapshot are written at process exit.
    static std::once_flag once;
    std::call_once(once, [] {
        // Construct the singletons NOW, before registering the atexit
        // writers: statics are torn down in reverse construction/
        // registration order, so a registry first touched later (mid-
        // campaign) would be destroyed before a handler registered
        // here got to read it.
        obs::trace();
        obs::metrics();
        if (const char *path = std::getenv("EH_TRACE");
            path && *path) {
            const char *cats = std::getenv("EH_TRACE_CATEGORIES");
            obs::trace().enable(
                obs::parseCategories(cats ? cats : "all"));
            static std::string tracePath = path;
            std::atexit(
                [] { obs::writeChromeTraceFile(tracePath); });
        }
        if (const char *path = std::getenv("EH_METRICS_OUT");
            path && *path) {
            static std::string metricsPath = path;
            std::atexit([] { obs::writeMetricsFile(metricsPath); });
        }
    });
}

std::string
outputDir()
{
    // Resolved exactly once: concurrent campaign workers (and the
    // figure drivers they host) all funnel through this call, so the
    // env lookup and directory creation must not race.
    static std::once_flag once;
    static std::string dir;
    std::call_once(once, [] {
        const char *env = std::getenv("EH_RESULTS_DIR");
        dir = env ? env : "results";
        std::filesystem::create_directories(dir);
    });
    return dir;
}

void
banner(const std::string &figure_id, const std::string &title)
{
    initObservability();
    std::cout << "\n=== " << figure_id << ": " << title << " ===\n"
              << "(The EH Model, MICRO 2018 — reproduced on the simulated "
                 "substrate; see EXPERIMENTS.md)\n\n";
}

std::string
csvPath(const std::string &name)
{
    return outputDir() + "/" + name;
}

ValidationRun
runValidation(const std::string &workload, const std::string &policy,
              double periods_budget_divisor)
{
    return explore::runValidation(workload, policy,
                                  periods_budget_divisor);
}

std::vector<std::string>
traceNames()
{
    return explore::traceNames();
}

ClankCharacterization
runClank(const std::string &workload, int trace_index,
         std::uint64_t watchdog_cycles)
{
    return explore::runClank(workload, trace_index, watchdog_cycles);
}

} // namespace eh::bench
