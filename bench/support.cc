#include "support.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "arch/cpu.hh"
#include "core/optimum.hh"
#include "energy/supply.hh"
#include "energy/trace.hh"
#include "energy/transducer.hh"
#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "runtime/hibernus.hh"
#include "runtime/hibernus_pp.hh"
#include "runtime/mementos.hh"
#include "util/panic.hh"

namespace eh::bench {

std::string
outputDir()
{
    const char *env = std::getenv("EH_RESULTS_DIR");
    const std::string dir = env ? env : "results";
    std::filesystem::create_directories(dir);
    return dir;
}

void
banner(const std::string &figure_id, const std::string &title)
{
    std::cout << "\n=== " << figure_id << ": " << title << " ===\n"
              << "(The EH Model, MICRO 2018 — reproduced on the simulated "
                 "substrate; see EXPERIMENTS.md)\n\n";
}

std::string
csvPath(const std::string &name)
{
    return outputDir() + "/" + name;
}

namespace {

/** Build the volatile-platform policy used by the validation runs. */
std::unique_ptr<runtime::BackupPolicy>
makeValidationPolicy(const std::string &name, std::size_t sram_used,
                     double budget)
{
    if (name == "hibernus") {
        runtime::HibernusConfig c;
        c.sramUsedBytes = sram_used;
        const double backup_energy =
            (static_cast<double>(sram_used) + 68.0) * 75.0;
        c.backupThreshold =
            std::clamp(2.0 * backup_energy / budget, 0.15, 0.85);
        return std::make_unique<runtime::Hibernus>(c);
    }
    if (name == "hibernus++") {
        runtime::HibernusPPConfig c;
        c.sramUsedBytes = sram_used;
        (void)budget; // the whole point: no platform-specific tuning
        return std::make_unique<runtime::HibernusPP>(c);
    }
    if (name == "mementos") {
        runtime::MementosConfig c;
        c.sramUsedBytes = sram_used;
        c.backupThreshold = 0.5;
        return std::make_unique<runtime::Mementos>(c);
    }
    if (name == "dino") {
        runtime::DinoConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::Dino>(c);
    }
    fatalf("unknown validation policy '", name, "'");
}

} // namespace

ValidationRun
runValidation(const std::string &workload, const std::string &policy,
              double periods_budget_divisor)
{
    const auto layout = workloads::volatileLayout();
    const auto w = workloads::makeWorkload(workload, layout);

    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.maxActivePeriods = 60000;

    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    // The floor keeps several backup+restore round trips per period so
    // single-backup systems retain useful headroom after their snapshot.
    const double round_trip =
        (static_cast<double>(cfg.sramUsedBytes) + 68.0) * 75.0;
    const double floor_budget = 6.0 * round_trip;
    const double budget =
        std::max(floor_budget, golden.energy / periods_budget_divisor);

    energy::ConstantSupply supply(budget);
    auto pol = makeValidationPolicy(policy, cfg.sramUsedBytes, budget);
    sim::Simulator simulator(w.program, *pol, supply, cfg);
    const auto stats = simulator.run();

    ValidationRun out;
    out.workload = workload;
    out.policy = policy;
    out.finished = stats.finished;
    out.measuredProgress = stats.measuredProgress();
    out.meanTauB = stats.tauB.count() ? stats.tauB.mean() : 0.0;
    out.meanTauD = stats.tauD.count() ? stats.tauD.mean() : 0.0;
    out.meanAlphaB = stats.alphaB.count() ? stats.alphaB.mean() : 0.0;

    auto obs = stats.observe(cfg, arch::Cpu::archStateBytes);
    if (policy == "hibernus") {
        // Single-backup system: charged per backup is the full SRAM
        // payload, best-case dead cycles (Section IV-B).
        obs.meanAppStateRate = 0.0;
        obs.archStateBytes = static_cast<double>(cfg.sramUsedBytes) + 68.0;
    }
    const auto pred = core::predictFromObservation(obs);
    out.predictedProgress = pred.predictedProgress;
    out.relativeError = pred.relativeError;
    out.optimalTauB = core::optimalBackupPeriod(pred.params);
    return out;
}

std::vector<std::string>
traceNames()
{
    return {"rf-spiky", "rf-ramp", "rf-multipeak"};
}

ClankCharacterization
runClank(const std::string &workload, int trace_index,
         std::uint64_t watchdog_cycles)
{
    EH_ASSERT(trace_index >= 0 && trace_index < 3,
              "trace index must be 0..2");
    const auto layout = workloads::nonvolatileLayout();
    const auto w = workloads::makeWorkload(workload, layout);

    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.costs = arch::CostModel::cortexM0();
    cfg.maxActivePeriods = 30000;

    // Harvested supply: traces scaled so an active period holds roughly
    // 30-60k cycles — several watchdog periods — and recharging takes a
    // realistic multiple of the active time.
    auto traces = energy::makePaperTraces(0xE40 + trace_index,
                                          30'000'000);
    energy::Transducer tx(0.6, 3000.0, 16.0e6);
    energy::Capacitor cap(0.68e-6, 3.6, 3.0, 2.2);
    energy::HarvestingSupply supply(std::move(traces[trace_index]), tx,
                                    cap);

    runtime::ClankConfig cc;
    cc.watchdogCycles = watchdog_cycles;
    runtime::Clank policy(cc);

    sim::Simulator simulator(w.program, policy, supply, cfg);
    const auto stats = simulator.run();

    ClankCharacterization out;
    out.workload = workload;
    out.trace = traceNames()[static_cast<std::size_t>(trace_index)];
    out.finished = stats.finished;
    out.tauBMean = stats.tauB.count() ? stats.tauB.mean() : 0.0;
    out.tauBSem = stats.tauB.sem();
    out.tauDMean = stats.tauD.count() ? stats.tauD.mean() : 0.0;
    out.tauDSem = stats.tauD.sem();
    out.alphaBMean = stats.alphaB.count() ? stats.alphaB.mean() : 0.0;
    out.backups = stats.backups;
    const auto &ts = policy.tracker().stats();
    out.violations = ts.violations;
    out.watchdogs = ts.watchdogFirings;
    out.overflows = ts.overflows;
    return out;
}

} // namespace eh::bench
