#include "support.hh"

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <mutex>

namespace eh::bench {

std::string
outputDir()
{
    // Resolved exactly once: concurrent campaign workers (and the
    // figure drivers they host) all funnel through this call, so the
    // env lookup and directory creation must not race.
    static std::once_flag once;
    static std::string dir;
    std::call_once(once, [] {
        const char *env = std::getenv("EH_RESULTS_DIR");
        dir = env ? env : "results";
        std::filesystem::create_directories(dir);
    });
    return dir;
}

void
banner(const std::string &figure_id, const std::string &title)
{
    std::cout << "\n=== " << figure_id << ": " << title << " ===\n"
              << "(The EH Model, MICRO 2018 — reproduced on the simulated "
                 "substrate; see EXPERIMENTS.md)\n\n";
}

std::string
csvPath(const std::string &name)
{
    return outputDir() + "/" + name;
}

ValidationRun
runValidation(const std::string &workload, const std::string &policy,
              double periods_budget_divisor)
{
    return explore::runValidation(workload, policy,
                                  periods_budget_divisor);
}

std::vector<std::string>
traceNames()
{
    return explore::traceNames();
}

ClankCharacterization
runClank(const std::string &workload, int trace_index,
         std::uint64_t watchdog_cycles)
{
    return explore::runClank(workload, trace_index, watchdog_cycles);
}

} // namespace eh::bench
