/**
 * @file
 * Section VI-A, end to end: the matrix transpose of Listing 1 actually
 * *executed* on the simulated mixed-volatility platform — a volatile
 * write-back cache in front of nonvolatile memory, with every backup
 * flushing the dirty blocks at block granularity. Both loop orders run
 * under a periodic-backup policy on FRAM (symmetric) and STT-RAM (~10x
 * writes); forward progress per ordering is measured, not derived.
 *
 * Expected: near-parity on FRAM; store-major clearly ahead on STT-RAM —
 * the unconventional loop-ordering rule the analytic case study
 * (Equations 13–14) predicts.
 */

#include <iostream>

#include "arch/assembler.hh"
#include "arch/cpu.hh"
#include "energy/supply.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;
using arch::Reg;

namespace {

constexpr std::uint32_t kDim = 24; // 24x24 word matrix
constexpr std::uint32_t kPasses = 10;

/**
 * Transpose B = A^T, kPasses times. store_major iterates the write
 * array contiguously (B[i][j] = A[j][i]); load-major the read array.
 */
arch::Program
transposeKernel(bool store_major, const workloads::WorkloadLayout &l)
{
    const auto a_base = static_cast<std::int32_t>(l.dataBase);
    const auto b_base =
        static_cast<std::int32_t>(l.dataBase + kDim * kDim * 4);

    arch::Assembler a(store_major ? "transpose-sm" : "transpose-lm");
    // Input matrix contents: a simple deterministic fill written by the
    // program itself (write-first: safe to re-execute).
    a.movi(Reg::R0, 0)
        .movi(Reg::R12, 0); // pass counter
    // init A[i] = i * 2654435761
    a.movi(Reg::R1, 0)
        .movi(Reg::R2, kDim * kDim)
        .movi(Reg::R3, static_cast<std::int32_t>(2654435761u));
    a.label("init")
        .bgeu(Reg::R1, Reg::R2, "initd")
        .mul(Reg::R4, Reg::R1, Reg::R3)
        .lsli(Reg::R5, Reg::R1, 2)
        .movi(Reg::R6, a_base)
        .add(Reg::R5, Reg::R6, Reg::R5)
        .stw(Reg::R4, Reg::R5, 0)
        .addi(Reg::R1, Reg::R1, 1)
        .b("init");
    a.label("initd")
        .checkpoint();
    a.label("pass")
        .movi(Reg::R2, kPasses)
        .bgeu(Reg::R12, Reg::R2, "done")
        .movi(Reg::R1, 0); // i
    a.label("iloop")
        .movi(Reg::R2, kDim)
        .bgeu(Reg::R1, Reg::R2, "passend")
        .movi(Reg::R4, 0); // j
    a.label("jloop")
        .movi(Reg::R2, kDim)
        .bgeu(Reg::R4, Reg::R2, "inext")
        // store-major: read A[j*D+i], write B[i*D+j];
        // load-major:  read A[i*D+j], write B[j*D+i].
        .muli(Reg::R5, store_major ? Reg::R4 : Reg::R1, kDim)
        .add(Reg::R5, Reg::R5,
             store_major ? Reg::R1 : Reg::R4)
        .lsli(Reg::R5, Reg::R5, 2)
        .movi(Reg::R6, a_base)
        .add(Reg::R5, Reg::R6, Reg::R5)
        .ldw(Reg::R7, Reg::R5, 0)
        .muli(Reg::R5, store_major ? Reg::R1 : Reg::R4, kDim)
        .add(Reg::R5, Reg::R5,
             store_major ? Reg::R4 : Reg::R1)
        .lsli(Reg::R5, Reg::R5, 2)
        .movi(Reg::R6, b_base)
        .add(Reg::R5, Reg::R6, Reg::R5)
        .stw(Reg::R7, Reg::R5, 0)
        .addi(Reg::R4, Reg::R4, 1)
        .b("jloop");
    a.label("inext")
        .addi(Reg::R1, Reg::R1, 1)
        .b("iloop");
    a.label("passend")
        .checkpoint()
        .addi(Reg::R12, Reg::R12, 1)
        .b("pass");
    a.label("done")
        // checksum a few B entries as the result
        .movi(Reg::R2, 0)
        .movi(Reg::R1, 0)
        .movi(Reg::R3, kDim * kDim);
    a.label("cs")
        .bgeu(Reg::R1, Reg::R3, "csd")
        .lsli(Reg::R5, Reg::R1, 2)
        .movi(Reg::R6, b_base)
        .add(Reg::R5, Reg::R6, Reg::R5)
        .ldw(Reg::R5, Reg::R5, 0)
        .add(Reg::R2, Reg::R2, Reg::R5)
        .addi(Reg::R1, Reg::R1, 64)
        .b("cs");
    a.label("csd")
        .movi(Reg::R6, static_cast<std::int32_t>(l.resultBase))
        .stw(Reg::R2, Reg::R6, 0)
        .halt();
    return a.assemble();
}

struct E2eResult
{
    double progress;
    double tauB;
    bool finished;
};

E2eResult
run(bool store_major, mem::NvmTech tech)
{
    const auto layout = workloads::nonvolatileLayout();
    const auto prog = transposeKernel(store_major, layout);

    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.nvmTech = tech;
    cfg.costs = arch::CostModel::cortexM0();
    cfg.enableNvmCache = true;
    cfg.cacheGeometry = {1024, 4, 16};
    cfg.maxActivePeriods = 20000;

    runtime::WatchdogConfig wc;
    wc.periodCycles = 3000;
    wc.sramUsedBytes = cfg.sramUsedBytes;
    runtime::Watchdog policy(wc);

    energy::ConstantSupply supply(147.0 * 60000.0);
    sim::Simulator s(prog, policy, supply, cfg);
    const auto stats = s.run();
    return {stats.measuredProgress(),
            stats.tauB.count() ? stats.tauB.mean() : 0.0,
            stats.finished};
}

} // namespace

int
runBench()
{
    bench::banner("Section VI-A, end to end",
                  "transpose loop order on the cached mixed-volatility "
                  "platform");

    Table table({"NVM", "ordering", "measured progress", "finished"});
    CsvWriter csv(bench::csvPath("case_store_major_e2e.csv"),
                  {"tech", "ordering", "progress"});

    double fram_sm = 0, fram_lm = 0, stt_sm = 0, stt_lm = 0;
    for (auto tech : {mem::NvmTech::Fram, mem::NvmTech::SttRam}) {
        for (bool store_major : {true, false}) {
            const auto r = run(store_major, tech);
            const char *order = store_major ? "store-major"
                                            : "load-major";
            table.row({nvmTechName(tech), order, Table::pct(r.progress),
                       r.finished ? "yes" : "NO"});
            csv.row({nvmTechName(tech), order,
                     Table::num(r.progress, 6)});
            if (tech == mem::NvmTech::Fram)
                (store_major ? fram_sm : fram_lm) = r.progress;
            else
                (store_major ? stt_sm : stt_lm) = r.progress;
        }
    }
    table.print(std::cout);

    const double fram_gain = fram_sm / fram_lm;
    const double stt_gain = stt_sm / stt_lm;
    std::cout << "\nStore-major speedup: FRAM "
              << Table::num(fram_gain, 3) << "x, STT-RAM "
              << Table::num(stt_gain, 3) << "x\n"
              << "Expected (Equations 13-14): near parity on symmetric "
                 "FRAM; a clear store-major win\non STT-RAM's ~10x "
                 "writes — measured on real executed code, not just the "
                 "closed form.\nCSV: "
              << bench::csvPath("case_store_major_e2e.csv") << "\n";
    return stt_gain > fram_gain ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
