/**
 * @file
 * Ablation: does the energy-supply model matter for characterization?
 * The paper observes (Section V-B) that the Clank parameters barely move
 * across very different voltage traces because per-period energy E is
 * nearly constant. We push that further: replace the harvested
 * transducer+capacitor supply with an ideal fixed-budget bucket of the
 * same per-period energy and compare the characterized tau_B, tau_D and
 * alpha_B. If the model's "active period = fixed E" abstraction is
 * sound, they should barely move.
 */

#include <cmath>
#include <iostream>

#include "arch/cpu.hh"
#include "energy/supply.hh"
#include "energy/trace.hh"
#include "energy/transducer.hh"
#include "runtime/clank.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

namespace {

struct Characterization
{
    double tauB, tauD, alphaB, periodEnergy;
};

Characterization
runWith(const std::string &workload, bool harvested)
{
    const auto layout = workloads::nonvolatileLayout();
    const auto w = workloads::makeWorkload(workload, layout);
    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.costs = arch::CostModel::cortexM0();
    cfg.maxActivePeriods = 30000;

    runtime::Clank policy({});
    sim::SimStats stats;
    if (harvested) {
        auto traces = energy::makePaperTraces(0xAB1, 30'000'000);
        energy::Transducer tx(0.6, 3000.0, 16.0e6);
        energy::Capacitor cap(0.68e-6, 3.6, 3.0, 2.2);
        energy::HarvestingSupply supply(std::move(traces[2]), tx, cap);
        sim::Simulator s(w.program, policy, supply, cfg);
        stats = s.run();
    } else {
        // Ideal bucket with the capacitor's V_on→V_off budget.
        energy::Capacitor cap(0.68e-6, 3.6, 3.0, 2.2);
        energy::ConstantSupply supply(cap.usableBudget());
        sim::Simulator s(w.program, policy, supply, cfg);
        stats = s.run();
    }
    return {stats.tauB.count() ? stats.tauB.mean() : 0.0,
            stats.tauD.count() ? stats.tauD.mean() : 0.0,
            stats.alphaB.count() ? stats.alphaB.mean() : 0.0,
            stats.periodEnergy.count() ? stats.periodEnergy.mean()
                                       : 0.0};
}

} // namespace

int
runBench()
{
    bench::banner("Ablation: supply model",
                  "harvested capacitor vs ideal fixed-budget bucket");

    Table table({"benchmark", "supply", "tau_B", "tau_D", "alpha_B",
                 "E/period", "tau_B delta"});
    CsvWriter csv(bench::csvPath("abl_supply_model.csv"),
                  {"benchmark", "supply", "tau_b", "tau_d", "alpha_b",
                   "period_energy"});

    double worst_delta = 0.0;
    for (const auto &benchmark :
         {"crc", "qsort", "fft", "lzfx", "dijkstra", "sha"}) {
        const auto harvested = runWith(benchmark, true);
        const auto bucket = runWith(benchmark, false);
        const double delta =
            harvested.tauB > 0.0
                ? std::abs(harvested.tauB - bucket.tauB) /
                      harvested.tauB
                : 0.0;
        worst_delta = std::max(worst_delta, delta);
        table.row({benchmark, "harvested", Table::num(harvested.tauB, 1),
                   Table::num(harvested.tauD, 1),
                   Table::num(harvested.alphaB, 3),
                   Table::num(harvested.periodEnergy, 0), ""});
        table.row({benchmark, "bucket", Table::num(bucket.tauB, 1),
                   Table::num(bucket.tauD, 1),
                   Table::num(bucket.alphaB, 3),
                   Table::num(bucket.periodEnergy, 0),
                   Table::pct(delta)});
        csv.row({benchmark, "harvested", Table::num(harvested.tauB, 3),
                 Table::num(harvested.tauD, 3),
                 Table::num(harvested.alphaB, 4),
                 Table::num(harvested.periodEnergy, 1)});
        csv.row({benchmark, "bucket", Table::num(bucket.tauB, 3),
                 Table::num(bucket.tauD, 3),
                 Table::num(bucket.alphaB, 4),
                 Table::num(bucket.periodEnergy, 1)});
    }
    table.print(std::cout);
    std::cout << "\nWorst tau_B delta across the suite: "
              << Table::pct(worst_delta)
              << "\nExpected: small — backup triggers are driven by the "
                 "program's access pattern, not\nby how the energy "
                 "arrives, which is why the EH model can treat the "
                 "active period as a\nfixed budget (Sections III, "
                 "V-B).\nCSV: "
              << bench::csvPath("abl_supply_model.csv") << "\n";
    return worst_delta < 0.25 ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
