/**
 * @file
 * Ablation: Clank tracking-buffer capacity. The original Clank paper
 * explored buffer designs to minimize forced backups; our default
 * configuration uses the 8-entry read-first/write-first pair the EH
 * paper cites. This bench sweeps the capacity and shows how overflow-
 * forced backups convert into genuine idempotency violations (and
 * eventually watchdog backups), lengthening tau_B toward what
 * range-compressed hardware achieves.
 */

#include <iostream>

#include "arch/cpu.hh"
#include "energy/supply.hh"
#include "runtime/clank.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

namespace {

struct BufferRun
{
    double tauB;
    std::uint64_t violations, overflows, watchdogs;
    bool finished;
};

BufferRun
runWithBuffers(const std::string &workload, std::size_t entries)
{
    const auto layout = workloads::nonvolatileLayout();
    const auto w = workloads::makeWorkload(workload, layout);
    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.costs = arch::CostModel::cortexM0();
    cfg.maxActivePeriods = 30000;

    runtime::ClankConfig cc;
    cc.readBufferEntries = entries;
    cc.writeBufferEntries = entries;
    runtime::Clank policy(cc);
    energy::ConstantSupply supply(147.0 * 50000.0);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    const auto &ts = policy.tracker().stats();
    return {stats.tauB.count() ? stats.tauB.mean() : 0.0, ts.violations,
            ts.overflows, ts.watchdogFirings, stats.finished};
}

} // namespace

int
runBench()
{
    bench::banner("Ablation: Clank tracking-buffer capacity",
                  "backup-trigger mix vs buffer entries");

    Table table({"benchmark", "entries", "tau_B", "violations",
                 "overflows", "watchdogs"});
    CsvWriter csv(bench::csvPath("abl_tracker_buffers.csv"),
                  {"benchmark", "entries", "tau_b", "violations",
                   "overflows", "watchdogs"});

    bool monotone = true;
    for (const auto &benchmark : {"dijkstra", "sha", "stringsearch",
                                  "patricia"}) {
        double last_tau = 0.0;
        for (std::size_t entries : {4u, 8u, 16u, 64u, 256u}) {
            const auto r = runWithBuffers(benchmark, entries);
            monotone &= r.tauB >= last_tau * 0.95; // allow small noise
            last_tau = r.tauB;
            table.row({benchmark, std::to_string(entries),
                       Table::num(r.tauB, 1),
                       std::to_string(r.violations),
                       std::to_string(r.overflows),
                       std::to_string(r.watchdogs)});
            csv.rowNumeric({0.0, static_cast<double>(entries), r.tauB,
                            static_cast<double>(r.violations),
                            static_cast<double>(r.overflows),
                            static_cast<double>(r.watchdogs)});
        }
    }
    table.print(std::cout);
    std::cout << "\ntau_B non-decreasing with buffer capacity: "
              << (monotone ? "YES" : "NO — UNEXPECTED")
              << "\nTakeaway: small buffers overflow before true "
                 "violations occur, forcing early\nbackups; capacity "
                 "buys longer idempotent regions until the program's "
                 "real WAR\ndistance (or the watchdog) becomes the "
                 "limit. This is why our absolute tau_B in\nFig 8 sits "
                 "below the paper's range-compressed hardware.\nCSV: "
              << bench::csvPath("abl_tracker_buffers.csv") << "\n";
    return monotone ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
