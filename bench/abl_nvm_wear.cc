/**
 * @file
 * Ablation: nonvolatile write traffic (wear) per backup policy. NVM
 * endurance is finite, and policies differ enormously in how many bytes
 * they push through the device per unit of committed work: NVP-style
 * per-instruction checkpoints write constantly, Clank only at
 * violations, Ratchet in between. This bench runs the same workload
 * under each nonvolatile-data policy on the same budget and reports
 * total NVM bytes written per committed instruction — an early-stage
 * endurance axis the EH model's energy focus does not capture.
 *
 * The workload x policy grid runs through the exploration campaign
 * engine ("wear" jobs, cached under results/cache/wear.jsonl), so
 * repeat runs are served from cache and the cells execute in parallel.
 */

#include <iostream>
#include <string>

#include "explore/campaign.hh"
#include "explore/tasks.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Ablation: NVM wear per policy",
                  "bytes written per committed cycle, same budget");

    Table table({"benchmark", "policy", "NVM bytes written",
                 "bytes / committed cycle", "progress"});
    CsvWriter csv(bench::csvPath("abl_nvm_wear.csv"),
                  {"benchmark", "policy", "bytes", "bytes_per_cycle",
                   "progress"});

    const std::vector<std::string> benchmarks = {"crc", "sha",
                                                 "dijkstra"};
    const std::vector<std::string> policies = {"clank", "ratchet",
                                               "nvp"};

    explore::CampaignConfig cc;
    cc.name = "wear";
    cc.cacheDir = bench::outputDir() + "/cache";
    explore::Campaign campaign(cc);
    for (const auto &benchmark : benchmarks) {
        for (const auto &policy : policies) {
            campaign.add(explore::JobSpec("wear")
                             .set("workload", benchmark)
                             .set("policy", policy));
        }
    }
    const auto results = campaign.run(explore::evaluateJob);

    bool ordering_holds = true;
    std::size_t cell = 0;
    for (const auto &benchmark : benchmarks) {
        double wear_clank = 0.0, wear_nvp = 0.0;
        for (const auto &policy : policies) {
            const auto &r = results[cell++];
            const double per_cycle = r.num("bytes_per_cycle");
            if (policy == "clank")
                wear_clank = per_cycle;
            if (policy == "nvp")
                wear_nvp = per_cycle;
            table.row({benchmark, policy,
                       std::to_string(r.uint("bytes")),
                       Table::num(per_cycle, 3),
                       Table::pct(r.num("progress"))});
            csv.row({benchmark, policy, std::to_string(r.uint("bytes")),
                     Table::num(per_cycle, 4),
                     Table::num(r.num("progress"), 5)});
        }
        ordering_holds &= wear_nvp > wear_clank;
    }
    table.print(std::cout);
    std::cout << "campaign: " << campaign.report().summary() << "\n";
    std::cout << "\nNVP wears the NVM more than Clank per unit of work: "
              << (ordering_holds ? "CONFIRMED" : "VIOLATED")
              << "\nTakeaway: per-cycle checkpointing trades endurance "
                 "for zero dead cycles — an axis\nto weigh alongside the "
                 "EH model's energy view when choosing an NVP design "
                 "(Section II).\nCSV: "
              << bench::csvPath("abl_nvm_wear.csv") << "\n";
    return ordering_holds ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
