/**
 * @file
 * Ablation: nonvolatile write traffic (wear) per backup policy. NVM
 * endurance is finite, and policies differ enormously in how many bytes
 * they push through the device per unit of committed work: NVP-style
 * per-instruction checkpoints write constantly, Clank only at
 * violations, Ratchet in between. This bench runs the same workload
 * under each nonvolatile-data policy on the same budget and reports
 * total NVM bytes written per committed instruction — an early-stage
 * endurance axis the EH model's energy focus does not capture.
 */

#include <iostream>
#include <memory>

#include "arch/cpu.hh"
#include "energy/supply.hh"
#include "runtime/clank.hh"
#include "runtime/nvp.hh"
#include "runtime/ratchet.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

namespace {

struct WearRun
{
    double bytesPerCommittedInstr;
    double progress;
    std::uint64_t totalWritten;
    bool finished;
};

WearRun
runPolicy(const std::string &workload, runtime::BackupPolicy &policy)
{
    const auto w = workloads::makeWorkload(
        workload, workloads::nonvolatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.costs = arch::CostModel::cortexM0();
    cfg.maxActivePeriods = 60000;
    energy::ConstantSupply supply(147.0 * 50000.0);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    const auto committed =
        stats.meter.cycles(energy::Phase::Progress);
    WearRun r;
    r.totalWritten = s.memory().nvm().bytesWritten();
    r.bytesPerCommittedInstr =
        committed ? static_cast<double>(r.totalWritten) /
                        static_cast<double>(committed)
                  : 0.0;
    r.progress = stats.measuredProgress();
    r.finished = stats.finished;
    return r;
}

} // namespace

int
main()
{
    bench::banner("Ablation: NVM wear per policy",
                  "bytes written per committed cycle, same budget");

    Table table({"benchmark", "policy", "NVM bytes written",
                 "bytes / committed cycle", "progress"});
    CsvWriter csv(bench::csvPath("abl_nvm_wear.csv"),
                  {"benchmark", "policy", "bytes", "bytes_per_cycle",
                   "progress"});

    bool ordering_holds = true;
    for (const auto &benchmark : {"crc", "sha", "dijkstra"}) {
        double wear_clank = 0.0, wear_nvp = 0.0;
        for (const char *policy_name : {"clank", "ratchet", "nvp"}) {
            std::unique_ptr<runtime::BackupPolicy> policy;
            if (std::string(policy_name) == "clank")
                policy = std::make_unique<runtime::Clank>(
                    runtime::ClankConfig{});
            else if (std::string(policy_name) == "ratchet")
                policy = std::make_unique<runtime::Ratchet>(
                    runtime::RatchetConfig{});
            else
                policy = std::make_unique<runtime::Nvp>(
                    runtime::NvpConfig{1, 4});
            const auto r = runPolicy(benchmark, *policy);
            if (std::string(policy_name) == "clank")
                wear_clank = r.bytesPerCommittedInstr;
            if (std::string(policy_name) == "nvp")
                wear_nvp = r.bytesPerCommittedInstr;
            table.row({benchmark, policy_name,
                       std::to_string(r.totalWritten),
                       Table::num(r.bytesPerCommittedInstr, 3),
                       Table::pct(r.progress)});
            csv.row({benchmark, policy_name,
                     std::to_string(r.totalWritten),
                     Table::num(r.bytesPerCommittedInstr, 4),
                     Table::num(r.progress, 5)});
        }
        ordering_holds &= wear_nvp > wear_clank;
    }
    table.print(std::cout);
    std::cout << "\nNVP wears the NVM more than Clank per unit of work: "
              << (ordering_holds ? "CONFIRMED" : "VIOLATED")
              << "\nTakeaway: per-cycle checkpointing trades endurance "
                 "for zero dead cycles — an axis\nto weigh alongside the "
                 "EH model's energy view when choosing an NVP design "
                 "(Section II).\nCSV: "
              << bench::csvPath("abl_nvm_wear.csv") << "\n";
    return ordering_holds ? 0 : 1;
}
