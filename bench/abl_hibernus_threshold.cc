/**
 * @file
 * Ablation: single-backup threshold tuning. Plain Hibernus needs its
 * voltage threshold chosen for the platform: too low and the one backup
 * browns out every period (zero progress forever); too high and usable
 * energy is forfeited asleep. This bench sweeps the threshold to expose
 * the cliff and the waste slope, then shows the adaptive Hibernus++
 * landing near the knee on its own — the motivation for Hibernus++ [5].
 */

#include <iostream>

#include "energy/supply.hh"
#include "runtime/hibernus.hh"
#include "runtime/hibernus_pp.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

namespace {

struct ThresholdRun
{
    double progress;
    bool finished;
    std::uint64_t failedBackups;
};

ThresholdRun
runWithPolicy(runtime::BackupPolicy &policy, double budget,
              const workloads::Workload &w, std::size_t sram_used)
{
    sim::SimConfig cfg;
    cfg.sramUsedBytes = sram_used;
    cfg.maxActivePeriods = 40000;
    energy::ConstantSupply supply(budget);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    return {stats.measuredProgress(), stats.finished,
            stats.failedBackups};
}

} // namespace

int
runBench()
{
    bench::banner("Ablation: Hibernus threshold tuning",
                  "the mis-tuning cliff vs the adaptive policy");

    const auto w =
        workloads::makeWorkload("sense", workloads::volatileLayout());
    const std::size_t sram_used = w.sramUsedBytes;
    // Backup round trip ~ (6144+68)*75 ~ 466k pJ; budget of 8 round
    // trips puts the ideal threshold near 0.15.
    const double budget =
        8.0 * (static_cast<double>(sram_used) + 68.0) * 75.0;

    Table table({"threshold", "progress", "finished", "failed backups"});
    CsvWriter csv(bench::csvPath("abl_hibernus_threshold.csv"),
                  {"threshold", "progress", "finished",
                   "failed_backups"});

    double best_fixed = 0.0;
    for (double threshold :
         {0.05, 0.10, 0.15, 0.20, 0.30, 0.45, 0.60, 0.80}) {
        runtime::HibernusConfig hc;
        hc.sramUsedBytes = sram_used;
        hc.backupThreshold = threshold;
        runtime::Hibernus policy(hc);
        const auto r = runWithPolicy(policy, budget, w, sram_used);
        best_fixed = std::max(best_fixed, r.progress);
        table.row({Table::num(threshold, 2), Table::pct(r.progress),
                   r.finished ? "yes" : "NO (livelock)",
                   std::to_string(r.failedBackups)});
        csv.rowNumeric({threshold, r.progress, r.finished ? 1.0 : 0.0,
                        static_cast<double>(r.failedBackups)});
    }

    runtime::HibernusPPConfig pc;
    pc.sramUsedBytes = sram_used;
    runtime::HibernusPP adaptive(pc);
    const auto adaptive_run =
        runWithPolicy(adaptive, budget, w, sram_used);
    table.row({"adaptive (H++)", Table::pct(adaptive_run.progress),
               adaptive_run.finished ? "yes" : "NO",
               std::to_string(adaptive_run.failedBackups)});
    csv.rowNumeric({-1.0, adaptive_run.progress,
                    adaptive_run.finished ? 1.0 : 0.0,
                    static_cast<double>(adaptive_run.failedBackups)});
    table.print(std::cout);

    std::cout << "\nBest fixed threshold: " << Table::pct(best_fixed)
              << "; adaptive with no tuning: "
              << Table::pct(adaptive_run.progress)
              << " (converged threshold "
              << Table::num(adaptive.threshold(), 3) << ")\n"
              << "Expected: thresholds below the backup's energy share "
                 "livelock (every single\nbackup browns out); high "
                 "thresholds waste the hibernated remainder; the "
                 "adaptive\npolicy reaches within a few percent of the "
                 "best hand-tuned point.\nCSV: "
              << bench::csvPath("abl_hibernus_threshold.csv") << "\n";
    const bool ok =
        adaptive_run.finished &&
        adaptive_run.progress > 0.9 * best_fixed;
    return ok ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
