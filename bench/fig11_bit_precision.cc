/**
 * @file
 * Figure 11: the benefit of reduced bit-precision backups
 * (|dp/dalpha_B|) as a function of tau_B, for susan running on a
 * Clank-configured platform, with one curve per ratio of compulsory
 * architectural energy (Omega_B A_B) to proportional energy
 * (Omega_B alpha_B + eps). The marked optima are Equation 16's
 * tau_B,bit.
 *
 * Paper expectations: larger ratios (big register files / small
 * footprints) peak later and higher; the top curve yields up to ~4.5%
 * progress per bit removed at its optimum. We calibrate alpha_B for
 * susan from the Clank simulation, then vary it to control the ratio.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "core/sensitivity.hh"
#include "core/sweep.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Figure 11",
                  "bit-precision benefit |dp/dalpha_B| vs tau_B for "
                  "susan on Clank");

    // Calibrate susan's application-state rate on the Clank substrate.
    const auto cal = bench::runClank("susan", 0);
    const double alpha_susan = std::max(cal.alphaBMean, 1e-3);
    std::cout << "Calibrated susan on Clank: alpha_B = "
              << Table::num(alpha_susan, 3)
              << " bytes/cycle, mean tau_B = "
              << Table::num(cal.tauBMean, 1) << " cycles\n\n";

    core::Params base = core::cortexM0Params();
    base.appStateRate = alpha_susan;
    base.restoreCost = 0.0;     // figure assumption: Omega_R = 0
    base.archStateRestore = 0.0;
    base.chargeEnergy = 0.0;

    // One curve per architectural/proportional cost ratio. susan's
    // calibrated alpha_B is small, so the ratio is steered through the
    // architectural state per backup (the paper's "large register file"
    // framing): from a tiny dirty-register set to a 4x register file.
    const std::vector<double> arch_bytes{320.0, 160.0, 80.0, 20.0, 4.0};
    const auto taus = core::logspace(10.0, 100000.0, 22);

    std::vector<std::string> header{"tau_B"};
    for (double ab : arch_bytes) {
        core::Params p = base;
        p.archStateBackup = ab;
        const double ratio = p.backupCost * p.archStateBackup /
                             (p.backupCost * p.appStateRate +
                              p.execEnergy);
        header.push_back("|dp/da| r=" + Table::num(ratio, 0));
    }
    Table table(header);
    CsvWriter csv(bench::csvPath("fig11_bit_precision.csv"), header);

    for (double tau : taus) {
        std::vector<std::string> row{Table::num(tau, 0)};
        std::vector<double> csv_row{tau};
        for (double ab : arch_bytes) {
            core::Params p = base;
            p.archStateBackup = ab;
            p.backupPeriod = tau;
            const double mag =
                std::abs(core::progressPerAppStateRate(p));
            row.push_back(Table::num(mag, 5));
            csv_row.push_back(mag);
        }
        table.row(row);
        csv.rowNumeric(csv_row);
    }
    table.print(std::cout);

    std::cout << "\nOptima (Equation 16) and gain from one bit removed "
                 "from 32-bit words (computed at\nsusan's calibrated "
                 "alpha_B, and at the paper's suite-average 0.16 "
                 "B/cycle):\n";
    Table opt({"A_B", "ratio", "tau_B,bit", "|dp/da| at opt",
               "gain/bit (susan)", "gain/bit (alpha=0.16)"});
    for (double ab : arch_bytes) {
        core::Params p = base;
        p.archStateBackup = ab;
        const double tau_bit = core::bitPrecisionOptimalPeriod(p);
        p.backupPeriod = std::max(tau_bit, 1.0);
        const double mag = std::abs(core::progressPerAppStateRate(p));
        const auto gain = core::reducedPrecisionGain(p, 32, 1);
        core::Params q = p;
        q.appStateRate = 0.16;
        q.backupPeriod = std::max(
            core::bitPrecisionOptimalPeriod(q), 1.0);
        const auto gain_paper = core::reducedPrecisionGain(q, 32, 1);
        const double ratio = p.backupCost * p.archStateBackup /
                             (p.backupCost * p.appStateRate +
                              p.execEnergy);
        opt.row({Table::num(ab, 0), Table::num(ratio, 1),
                 Table::num(tau_bit, 0), Table::num(mag, 5),
                 Table::pct(gain.gain, 3),
                 Table::pct(gain_paper.gain, 3)});
    }
    opt.print(std::cout);
    std::cout << "\nExpected: smaller ratios peak at smaller tau_B,bit "
                 "(frequent backups make the\nproportional state "
                 "dominant); the largest-ratio curve shows the biggest "
                 "per-bit gain\n(paper: up to 4.5% for 1 bit at "
                 "tau_B,bit = 315 on its top curve).\nCSV: "
              << bench::csvPath("fig11_bit_precision.csv") << "\n";
    return 0;
}

int
main()
{
    return eh::runMain(runBench);
}
