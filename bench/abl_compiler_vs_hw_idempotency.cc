/**
 * @file
 * Ablation: what is Clank's idempotency-tracking hardware actually worth
 * versus a compiler-only approach? Ratchet [54] must break a section at
 * every *potential* WAR (it cannot compare addresses at runtime); Clank
 * [22] breaks only on *actual* WARs. Both run the full suite here; the
 * gap in backup frequency (tau_B) and forward progress is the value of
 * the hardware, and is exactly the kind of early-stage comparison the EH
 * model exists to frame (Section II's design-space question).
 */

#include <iostream>

#include "arch/cpu.hh"
#include "energy/supply.hh"
#include "runtime/clank.hh"
#include "runtime/ratchet.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

namespace {

struct PolicyRun
{
    double tauB;
    double progress;
    bool finished;
};

template <typename Policy>
PolicyRun
runPolicy(const std::string &workload, Policy &policy)
{
    const auto layout = workloads::nonvolatileLayout();
    const auto w = workloads::makeWorkload(workload, layout);
    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.costs = arch::CostModel::cortexM0();
    cfg.maxActivePeriods = 30000;
    energy::ConstantSupply supply(147.0 * 50000.0);
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    return {stats.tauB.count() ? stats.tauB.mean() : 0.0,
            stats.measuredProgress(), stats.finished};
}

} // namespace

int
runBench()
{
    bench::banner("Ablation: compiler vs hardware idempotency",
                  "Ratchet (conservative sections) vs Clank (runtime "
                  "tracking)");

    Table table({"benchmark", "tau_B ratchet", "tau_B clank8",
                 "tau_B clank256", "p ratchet", "p clank8",
                 "p clank256"});
    CsvWriter csv(bench::csvPath("abl_compiler_vs_hw_idempotency.csv"),
                  {"benchmark", "tau_b_ratchet", "tau_b_clank8",
                   "tau_b_clank256", "p_ratchet", "p_clank8",
                   "p_clank256"});

    std::vector<double> gains8, gains256;
    bool big_never_worse = true;
    for (const auto &benchmark : workloads::mibenchNames()) {
        runtime::Ratchet ratchet({});
        const auto r = runPolicy(benchmark, ratchet);
        runtime::Clank clank8({});
        const auto c8 = runPolicy(benchmark, clank8);
        runtime::ClankConfig big;
        big.readBufferEntries = 256;
        big.writeBufferEntries = 256;
        runtime::Clank clank256(big);
        const auto c256 = runPolicy(benchmark, clank256);

        gains8.push_back(r.progress > 0 ? c8.progress / r.progress : 0);
        gains256.push_back(
            r.progress > 0 ? c256.progress / r.progress : 0);
        big_never_worse &= c256.tauB + 1.0 >= r.tauB * 0.95;
        table.row({benchmark, Table::num(r.tauB, 1),
                   Table::num(c8.tauB, 1), Table::num(c256.tauB, 1),
                   Table::pct(r.progress), Table::pct(c8.progress),
                   Table::pct(c256.progress)});
        csv.row({benchmark, Table::num(r.tauB, 2),
                 Table::num(c8.tauB, 2), Table::num(c256.tauB, 2),
                 Table::num(r.progress, 5), Table::num(c8.progress, 5),
                 Table::num(c256.progress, 5)});
    }
    table.print(std::cout);
    std::cout << "\nGeometric-mean hardware gain over the compiler "
                 "sections: 8-entry buffers "
              << Table::num(geomean(gains8), 3) << "x, 256-entry "
              << Table::num(geomean(gains256), 3) << "x\n"
              << "Ample buffers never checkpoint sooner than the "
                 "compiler rule: "
              << (big_never_worse ? "CONFIRMED" : "VIOLATED — unexpected")
              << "\nFindings: runtime tracking wins big on RMW-dense "
                 "kernels (rijndael, adpcm, lzfx),\nbut the 8-entry "
                 "buffers of the default configuration *overflow* on "
                 "read-heavy\nkernels (dijkstra, patricia) and then "
                 "checkpoint more often than the bufferless\ncompiler "
                 "approach — hardware capacity, not just detection, "
                 "sets the win. This is\nexactly the buffer-sizing "
                 "trade-off the Clank paper explores and the kind of\n"
                 "early-stage comparison the EH model frames.\nCSV: "
              << bench::csvPath("abl_compiler_vs_hw_idempotency.csv")
              << "\n";
    return 0;
}

int
main()
{
    return eh::runMain(runBench);
}
