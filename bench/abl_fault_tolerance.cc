/**
 * @file
 * Ablation: forward progress vs. NVM fault rate. The checkpoint CRC +
 * recovery ladder guarantees detection and recovery for faults inside
 * the checkpoint region, but wear-driven bit errors strike anywhere —
 * live application data included — so beyond some rate correctness
 * degrades no matter what the runtime does. This bench sweeps the
 * wear bit-error rate (plus proportional targeted checkpoint/selector
 * corruption) and records, per workload x policy, how often runs still
 * finish, how often they finish *correctly*, the energy-progress share,
 * and how hard the recovery machinery had to work.
 *
 * The zero-rate column doubles as a regression gate: with no injected
 * faults every run must finish with exact reference results.
 */

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "energy/supply.hh"
#include "fault/injector.hh"
#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "runtime/nvp.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

namespace {

struct RateResult
{
    int runs = 0;
    int finished = 0;
    int correct = 0;
    double progressSum = 0.0;
    std::uint64_t corruptionsDetected = 0;
    std::uint64_t slotFallbacks = 0;
    std::uint64_t restartsFromScratch = 0;
    std::uint64_t bitFlips = 0;
};

std::unique_ptr<runtime::BackupPolicy>
makePolicy(const std::string &name, std::size_t sram_used)
{
    if (name == "dino") {
        runtime::DinoConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::Dino>(c);
    }
    if (name == "clank")
        return std::make_unique<runtime::Clank>(runtime::ClankConfig{});
    return std::make_unique<runtime::Nvp>(runtime::NvpConfig{4, 4});
}

bool
isVolatilePolicy(const std::string &name)
{
    return name == "dino";
}

RateResult
sweepPoint(const std::string &wname, const std::string &pname,
           double rate, int seeds)
{
    const bool vol = isVolatilePolicy(pname);
    const auto w = workloads::makeWorkload(
        wname, vol ? workloads::volatileLayout()
                   : workloads::nonvolatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = vol ? w.sramUsedBytes : 64;
    cfg.maxActivePeriods = 60000;
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    const double budget =
        std::max(vol ? 2.0e6 : 1.0e6, golden.energy / 5.0);

    RateResult agg;
    for (int seed = 0; seed < seeds; ++seed) {
        fault::FaultPlan plan;
        plan.seed = 0xAB1 + static_cast<std::uint64_t>(seed) * 7919;
        plan.wearBitErrorRate = rate;
        // Targeted corruption scales with the same rate so the
        // checkpoint-integrity path is exercised proportionally.
        plan.checkpointCorruptionProb = std::min(0.9, rate * 1.0e5);
        plan.selectorCorruptionProb = std::min(0.5, rate * 3.0e4);
        plan.maxBitFlips = 1ull << 40;

        auto policy = makePolicy(pname, cfg.sramUsedBytes);
        energy::ConstantSupply supply(budget);
        fault::FaultInjector injector(plan);
        sim::Simulator s(w.program, *policy, supply, cfg);
        s.attachFaultInjector(&injector);
        const auto stats = s.run();

        ++agg.runs;
        if (stats.finished) {
            ++agg.finished;
            bool exact = true;
            for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
                exact &= s.resultWord(w.resultAddrs[i]) == w.expected[i];
            if (exact)
                ++agg.correct;
        }
        agg.progressSum += stats.measuredProgress();
        agg.corruptionsDetected += stats.corruptionsDetected;
        agg.slotFallbacks += stats.slotFallbacks;
        agg.restartsFromScratch += stats.restartsFromScratch;
        agg.bitFlips += stats.injectedBitFlips;
    }
    return agg;
}

} // namespace

int
main()
{
    bench::banner("Ablation: fault tolerance",
                  "progress and correctness vs. NVM bit-error rate");

    const std::vector<double> rates = {0.0, 1.0e-8, 1.0e-7, 1.0e-6,
                                       1.0e-5};
    const int seeds = 5;

    Table table({"workload", "policy", "bit error rate", "finished",
                 "correct", "mean progress", "corruptions", "fallbacks",
                 "restarts"});
    CsvWriter csv(bench::csvPath("abl_fault_tolerance.csv"),
                  {"workload", "policy", "rate", "runs", "finished",
                   "correct", "mean_progress", "corruptions_detected",
                   "slot_fallbacks", "restarts_from_scratch",
                   "bit_flips"});

    bool zero_rate_clean = true;
    for (const auto &wname : {"crc", "sha"}) {
        for (const auto &pname : {"dino", "clank", "nvp"}) {
            for (double rate : rates) {
                const auto r = sweepPoint(wname, pname, rate, seeds);
                if (rate == 0.0 && r.correct != r.runs)
                    zero_rate_clean = false;
                const double mean_progress =
                    r.runs ? r.progressSum / r.runs : 0.0;
                table.row({wname, pname, Table::num(rate, 8),
                           std::to_string(r.finished) + "/" +
                               std::to_string(r.runs),
                           std::to_string(r.correct) + "/" +
                               std::to_string(r.runs),
                           Table::pct(mean_progress),
                           std::to_string(r.corruptionsDetected),
                           std::to_string(r.slotFallbacks),
                           std::to_string(r.restartsFromScratch)});
                csv.row({wname, pname, Table::num(rate, 10),
                         std::to_string(r.runs),
                         std::to_string(r.finished),
                         std::to_string(r.correct),
                         Table::num(mean_progress, 5),
                         std::to_string(r.corruptionsDetected),
                         std::to_string(r.slotFallbacks),
                         std::to_string(r.restartsFromScratch),
                         std::to_string(r.bitFlips)});
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nZero-rate runs all finish with exact results: "
              << (zero_rate_clean ? "CONFIRMED" : "VIOLATED")
              << "\nTakeaway: CRC + slot fallback + counted restart keep "
                 "checkpoint faults invisible to\nresults; only "
                 "array-wide wear faults on live data erode correctness, "
                 "and gradually.\nCSV: "
              << bench::csvPath("abl_fault_tolerance.csv") << "\n";
    return zero_rate_clean ? 0 : 1;
}
