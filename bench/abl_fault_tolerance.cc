/**
 * @file
 * Ablation: forward progress vs. NVM fault rate. The checkpoint CRC +
 * recovery ladder guarantees detection and recovery for faults inside
 * the checkpoint region, but wear-driven bit errors strike anywhere —
 * live application data included — so beyond some rate correctness
 * degrades no matter what the runtime does. This bench sweeps the
 * wear bit-error rate (plus proportional targeted checkpoint/selector
 * corruption) and records, per workload x policy, how often runs still
 * finish, how often they finish *correctly*, the energy-progress share,
 * and how hard the recovery machinery had to work.
 *
 * The grid (workload x policy x rate x seed cell) runs through the
 * exploration campaign engine: every seeded run is one cached job, so
 * re-runs only execute cells whose spec changed, and the whole sweep
 * parallelizes across cores. Per-run fault seeds derive from the
 * campaign seed and each job's content hash (Rng::split) instead of
 * the old ad-hoc `base + i * prime` arithmetic.
 *
 * The zero-rate column doubles as a regression gate: with no injected
 * faults every run must finish with exact reference results.
 */

#include <iostream>
#include <string>
#include <vector>

#include "explore/campaign.hh"
#include "explore/tasks.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"

using namespace eh;

namespace {

struct RateResult
{
    int runs = 0;
    int finished = 0;
    int correct = 0;
    double progressSum = 0.0;
    std::uint64_t corruptionsDetected = 0;
    std::uint64_t slotFallbacks = 0;
    std::uint64_t restartsFromScratch = 0;
    std::uint64_t bitFlips = 0;
};

} // namespace

int
runBench()
{
    bench::banner("Ablation: fault tolerance",
                  "progress and correctness vs. NVM bit-error rate");

    const std::vector<std::string> workloads_list = {"crc", "sha"};
    const std::vector<std::string> policies = {"dino", "clank", "nvp"};
    const std::vector<double> rates = {0.0, 1.0e-8, 1.0e-7, 1.0e-6,
                                       1.0e-5};
    const int seeds = 5;

    explore::CampaignConfig cc;
    cc.name = "fault";
    cc.cacheDir = bench::outputDir() + "/cache";
    cc.seed = 0xAB1;
    explore::Campaign campaign(cc);
    for (const auto &wname : workloads_list) {
        for (const auto &pname : policies) {
            for (double rate : rates) {
                for (int cell = 0; cell < seeds; ++cell) {
                    campaign.add(explore::JobSpec("fault")
                                     .set("workload", wname)
                                     .set("policy", pname)
                                     .set("rate", rate)
                                     .set("cell", cell));
                }
            }
        }
    }
    const auto results = campaign.run(explore::evaluateJob);

    Table table({"workload", "policy", "bit error rate", "finished",
                 "correct", "mean progress", "corruptions", "fallbacks",
                 "restarts"});
    CsvWriter csv(bench::csvPath("abl_fault_tolerance.csv"),
                  {"workload", "policy", "rate", "runs", "finished",
                   "correct", "mean_progress", "corruptions_detected",
                   "slot_fallbacks", "restarts_from_scratch",
                   "bit_flips"});

    bool zero_rate_clean = true;
    std::size_t job = 0;
    for (const auto &wname : workloads_list) {
        for (const auto &pname : policies) {
            for (double rate : rates) {
                RateResult r;
                for (int cell = 0; cell < seeds; ++cell) {
                    const auto &run = results[job++];
                    ++r.runs;
                    if (run.num("finished") != 0.0) {
                        ++r.finished;
                        if (run.num("correct") != 0.0)
                            ++r.correct;
                    }
                    r.progressSum += run.num("progress");
                    r.corruptionsDetected += run.uint("corruptions");
                    r.slotFallbacks += run.uint("fallbacks");
                    r.restartsFromScratch += run.uint("restarts");
                    r.bitFlips += run.uint("bit_flips");
                }
                if (rate == 0.0 && r.correct != r.runs)
                    zero_rate_clean = false;
                const double mean_progress =
                    r.runs ? r.progressSum / r.runs : 0.0;
                table.row({wname, pname, Table::num(rate, 8),
                           std::to_string(r.finished) + "/" +
                               std::to_string(r.runs),
                           std::to_string(r.correct) + "/" +
                               std::to_string(r.runs),
                           Table::pct(mean_progress),
                           std::to_string(r.corruptionsDetected),
                           std::to_string(r.slotFallbacks),
                           std::to_string(r.restartsFromScratch)});
                csv.row({wname, pname, Table::num(rate, 10),
                         std::to_string(r.runs),
                         std::to_string(r.finished),
                         std::to_string(r.correct),
                         Table::num(mean_progress, 5),
                         std::to_string(r.corruptionsDetected),
                         std::to_string(r.slotFallbacks),
                         std::to_string(r.restartsFromScratch),
                         std::to_string(r.bitFlips)});
            }
        }
    }
    table.print(std::cout);
    std::cout << "campaign: " << campaign.report().summary() << "\n";
    std::cout << "\nZero-rate runs all finish with exact results: "
              << (zero_rate_clean ? "CONFIRMED" : "VIOLATED")
              << "\nTakeaway: CRC + slot fallback + counted restart keep "
                 "checkpoint faults invisible to\nresults; only "
                 "array-wide wear faults on live data erode correctness, "
                 "and gradually.\nCSV: "
              << bench::csvPath("abl_fault_tolerance.csv") << "\n";
    return zero_rate_clean ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
