/**
 * @file
 * Figure 3: the same sweep as Figure 2 but with no architectural state
 * per backup (A_B = 0). Expected shape: no sweet spot — progress is
 * monotonically non-increasing in tau_B for every backup cost, so
 * backing up as often as possible is optimal (Section IV-A1).
 */

#include <iostream>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/sweep.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Figure 3",
                  "progress vs tau_B with zero architectural state");

    const std::vector<double> omegas{0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
    const auto taus = core::logspace(0.1, 2000.0, 25);

    std::vector<std::string> header{"tau_B"};
    for (double o : omegas)
        header.push_back("p(Omega_B=" + Table::num(o, 2) + ")");
    Table table(header);
    CsvWriter csv(bench::csvPath("fig03_zero_arch_state.csv"), header);

    bool monotone = true;
    std::vector<double> last(omegas.size(), 2.0);
    for (double tau : taus) {
        std::vector<std::string> row{Table::num(tau, 2)};
        std::vector<double> csv_row{tau};
        for (std::size_t i = 0; i < omegas.size(); ++i) {
            core::Params p = core::illustrativeParams();
            p.backupPeriod = tau;
            p.backupCost = omegas[i];
            p.archStateBackup = 0.0;
            const double prog = core::Model(p).progress();
            monotone &= prog <= last[i] + 1e-12;
            last[i] = prog;
            row.push_back(Table::num(prog, 4));
            csv_row.push_back(prog);
        }
        table.row(row);
        csv.rowNumeric(csv_row);
    }
    table.print(std::cout);

    std::cout << "\nMonotonically non-increasing in tau_B for every "
                 "curve: " << (monotone ? "YES" : "NO — UNEXPECTED")
              << "\nEquation 9 optimum with A_B = 0: tau_B,opt = ";
    core::Params p = core::illustrativeParams();
    p.archStateBackup = 0.0;
    std::cout << core::optimalBackupPeriod(p)
              << " (back up as often as possible)\n"
              << "Small-period limit per curve: p -> 1 / (1 + Omega_B "
                 "alpha_B / eps).\nCSV: " << csv.path() << "\n";
    return monotone ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
