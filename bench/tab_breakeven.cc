/**
 * @file
 * Section IV-A3 (Equation 11): where should optimization effort go —
 * backups or restores? We sweep tau_B and compare the marginal benefit
 * of shaving backup energy (dp/de_B) against shaving restore energy
 * (dp/de_R). Below the break-even period the backup lever is stronger;
 * above it the restore lever wins. The observed crossover is checked
 * against the closed form.
 */

#include <cmath>
#include <iostream>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/sweep.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Equation 11 exploration",
                  "backup vs restore optimization break-even");

    core::Params base = core::illustrativeParams();
    base.restoreCost = 0.5;
    base.archStateRestore = 2.0;

    const double tau_be = core::breakEvenBackupPeriodFixedPoint(base);
    const auto taus = core::logspace(1.0, 200.0, 24);

    Table table({"tau_B", "dp/de_B", "dp/de_R", "stronger lever"});
    CsvWriter csv(bench::csvPath("tab_breakeven.csv"),
                  {"tau_b", "dp_deb", "dp_der", "backup_wins"});

    double crossover_lo = 0.0, crossover_hi = 0.0;
    bool prev_backup_wins = true, first = true;
    for (double tau : taus) {
        core::Params p = base;
        p.backupPeriod = tau;
        const double d_b = core::progressPerBackupEnergy(p);
        const double d_r = core::progressPerRestoreEnergy(p);
        const bool backup_wins = d_b < d_r; // more negative = stronger
        if (!first && backup_wins != prev_backup_wins) {
            crossover_hi = tau;
        } else if (backup_wins) {
            crossover_lo = tau;
        }
        prev_backup_wins = backup_wins;
        first = false;
        table.row({Table::num(tau, 1), Table::num(d_b, 6),
                   Table::num(d_r, 6),
                   backup_wins ? "backup" : "restore"});
        csv.rowNumeric({tau, d_b, d_r, backup_wins ? 1.0 : 0.0});
    }
    table.print(std::cout);

    std::cout << "\nClosed-form break-even (Equation 11, fixed point): "
              << Table::num(tau_be, 2) << " cycles\n"
              << "Swept crossover bracket: ("
              << Table::num(crossover_lo, 1) << ", "
              << Table::num(crossover_hi, 1) << ")\n";
    const bool consistent =
        tau_be > crossover_lo * 0.99 && tau_be < crossover_hi * 1.01;
    std::cout << "Closed form inside the bracket: "
              << (consistent ? "YES" : "NO — UNEXPECTED")
              << "\nTakeaway (Section IV-A3): optimize backups below "
                 "tau_B,be, restores above it.\nCSV: "
              << bench::csvPath("tab_breakeven.csv") << "\n";
    return consistent ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
