/**
 * @file
 * Section VI-B case study: circular buffers for idempotency (Equation
 * 15). A kernel repeatedly reads A[(head+i) % N] and writes
 * A[(head+n+i) % N]; growing the ring (N) relative to the logical array
 * (n) postpones the write-after-read violations that force Clank
 * backups, at one violation every N - n + 1 stores.
 *
 * This harness (1) verifies the measured violation-driven tau_B against
 * the formula, and (2) sweeps N to show forward progress peaking near
 * the ring size Equation 15 derives from the model's tau_B,opt.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "arch/assembler.hh"
#include "core/idempotency.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "energy/supply.hh"
#include "runtime/clank.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;
using arch::Reg;

namespace {

constexpr std::uint32_t kArrayLen = 64;   // n (logical entries)
constexpr std::uint32_t kIterations = 20000;

/** Build the ring kernel for a power-of-two ring of @p ring_slots. */
arch::Program
ringKernel(std::uint32_t ring_slots, const workloads::WorkloadLayout &l)
{
    arch::Assembler a("ring" + std::to_string(ring_slots));
    const auto ring_base = static_cast<std::int32_t>(l.dataBase);
    const std::int32_t mask = static_cast<std::int32_t>(ring_slots - 1);
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)
        .movi(Reg::R2, ring_base);
    a.label("loop")
        .movi(Reg::R6, kIterations)
        .bgeu(Reg::R1, Reg::R6, "done")
        // x = A[i & (N-1)]
        .andi(Reg::R3, Reg::R1, mask)
        .lsli(Reg::R3, Reg::R3, 2)
        .add(Reg::R3, Reg::R2, Reg::R3)
        .ldw(Reg::R4, Reg::R3, 0)
        // f(x)
        .muli(Reg::R4, Reg::R4, 3)
        .addi(Reg::R4, Reg::R4, 1)
        // A[(i + n) & (N-1)] = f(x)
        .addi(Reg::R5, Reg::R1, kArrayLen)
        .andi(Reg::R5, Reg::R5, mask)
        .lsli(Reg::R5, Reg::R5, 2)
        .add(Reg::R5, Reg::R2, Reg::R5)
        .stw(Reg::R4, Reg::R5, 0)
        .addi(Reg::R1, Reg::R1, 1)
        .b("loop");
    a.label("done")
        .movi(Reg::R6, static_cast<std::int32_t>(l.resultBase))
        .stw(Reg::R4, Reg::R6, 0)
        .halt();
    return a.assemble();
}

struct RingRun
{
    double tauB;
    double progress;
    double tauStore;
    double epsEffective; ///< measured energy per cycle incl. NVM traffic
    bool finished;
};

RingRun
runRing(std::uint32_t ring_slots)
{
    const auto layout = workloads::nonvolatileLayout();
    const auto prog = ringKernel(ring_slots, layout);

    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.costs = arch::CostModel::cortexM0();
    // Over-long idempotent regions stop committing entirely; a period
    // cap keeps those configurations measurable (progress ~ 0) without
    // spinning forever.
    cfg.maxActivePeriods = 300;

    // Profile tau_store on an uninterrupted run.
    const auto golden = sim::runGolden(prog, cfg, {});
    const double tau_store =
        static_cast<double>(golden.cycles) / kIterations;

    runtime::ClankConfig cc;
    cc.watchdogCycles = 1u << 30; // isolate violation-driven backups
    // Generous tracking buffers stand in for Clank's range-compressed
    // detection hardware: the sequential ring walk would overflow the
    // 8-entry configuration every 8 accesses and mask the violations
    // this case study is about.
    cc.readBufferEntries = 8192;
    cc.writeBufferEntries = 8192;
    runtime::Clank policy(cc);
    energy::ConstantSupply supply(147.0 * 50000.0);
    sim::Simulator s(prog, policy, supply, cfg);
    const auto stats = s.run();

    RingRun out;
    out.tauB = stats.tauB.count() ? stats.tauB.mean() : 0.0;
    out.progress = stats.measuredProgress();
    out.tauStore = tau_store;
    out.epsEffective =
        golden.energy / static_cast<double>(golden.cycles);
    out.finished = stats.finished;
    return out;
}

} // namespace

int
runBench()
{
    bench::banner("Section VI-B case study",
                  "circular-buffer sizing for Clank idempotency");

    Table table({"ring N", "predicted tau_B", "measured tau_B",
                 "match", "measured progress"});
    CsvWriter csv(bench::csvPath("case_circular_buffer.csv"),
                  {"ring", "tau_b_pred", "tau_b_meas", "progress"});

    double best_progress = 0.0;
    std::uint32_t best_ring = 0;
    double tau_store = 0.0, eps_eff = 147.0;
    bool spacing_ok = true;
    for (std::uint32_t ring : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
        const auto r = runRing(ring);
        tau_store = r.tauStore;
        eps_eff = r.epsEffective;
        const double predicted = core::violationCycleInterval(
            ring, kArrayLen, r.tauStore);
        const bool match =
            r.tauB > 0.0 &&
            std::abs(r.tauB - predicted) / predicted < 0.25;
        spacing_ok &= match || ring == kArrayLen; // N==n: every store
        if (r.progress > best_progress) {
            best_progress = r.progress;
            best_ring = ring;
        }
        table.row({std::to_string(ring), Table::num(predicted, 0),
                   Table::num(r.tauB, 0), match ? "yes" : "~",
                   Table::pct(r.progress)});
        csv.rowNumeric({static_cast<double>(ring), predicted, r.tauB,
                        r.progress});
    }
    table.print(std::cout);

    // Model-side sizing: Clank on the Cortex-M0+ platform, alpha_B = 0
    // (data already nonvolatile), A_B = 80 bytes, with the kernel's
    // *measured* energy per cycle (NVM traffic roughly doubles the base
    // core rate).
    core::Params params = core::cortexM0Params();
    params.energyBudget = 147.0 * 50000.0;
    params.execEnergy = eps_eff;
    params.appStateRate = 0.0;
    params.archStateBackup = 80.0;
    params.restoreCost = 0.0;
    params.archStateRestore = 0.0;
    const double tau_opt = core::optimalBackupPeriod(params);
    const double n_opt = core::optimalCircularBufferSize(
        kArrayLen, tau_store, tau_opt);
    const auto n_pow2 =
        core::recommendedBufferSlots(params, kArrayLen, tau_store);
    std::cout << "\nModel tau_B,opt = " << Table::num(tau_opt, 0)
              << " cycles; Equation 15 ring size N_opt = "
              << Table::num(n_opt, 0) << " (next pow2: " << n_pow2
              << ")\nBest measured progress at N = " << best_ring << " ("
              << Table::pct(best_progress) << ")\n"
              << "Expected: measured tau_B tracks (N - n + 1) * "
                 "tau_store, and progress peaks at the\nring size "
                 "nearest N_opt — the programmer can tune idempotent "
                 "region length to the\narchitecture (Section VI-B).\n"
              << "CSV: " << bench::csvPath("case_circular_buffer.csv")
              << "\n";
    return 0;
}

int
main()
{
    return eh::runMain(runBench);
}
