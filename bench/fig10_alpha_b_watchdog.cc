/**
 * @file
 * Figure 10: application state per cycle (alpha_B) for the hypothetical
 * mixed-volatility processor — an unbounded store queue tracks the
 * unique bytes modified within each watchdog period, for periods of
 * 250–3000 cycles in steps of 250 (Section V-B).
 *
 * Paper expectation: alpha_B is low across the suite (average
 * ~0.16 bytes/cycle) and tends to *fall* with longer periods (repeated
 * stores to the same locations stop adding unique bytes).
 */

#include <iostream>
#include <vector>

#include "energy/supply.hh"
#include "runtime/watchdog.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

namespace {

double
alphaFor(const std::string &benchmark, std::uint64_t period)
{
    const auto layout = workloads::volatileLayout();
    const auto w = workloads::makeWorkload(benchmark, layout);
    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    energy::ConstantSupply supply(1.0e12); // uninterrupted: pure profiling
    runtime::Watchdog policy({.periodCycles = period,
                              .sramUsedBytes = cfg.sramUsedBytes,
                              .chargeDirtyBytesOnly = true});
    sim::Simulator s(w.program, policy, supply, cfg);
    const auto stats = s.run();
    return stats.alphaB.count() ? stats.alphaB.mean() : 0.0;
}

} // namespace

int
runBench()
{
    bench::banner("Figure 10",
                  "alpha_B vs watchdog period (mixed-volatility store "
                  "queue)");

    std::vector<std::uint64_t> periods;
    for (std::uint64_t p = 250; p <= 3000; p += 250)
        periods.push_back(p);

    std::vector<std::string> header{"benchmark"};
    for (auto p : periods)
        header.push_back(std::to_string(p));
    header.push_back("mean");
    Table table(header);
    CsvWriter csv(bench::csvPath("fig10_alpha_b_watchdog.csv"), header);

    RunningStats grand;
    for (const auto &benchmark : workloads::mibenchNames()) {
        std::vector<std::string> row{benchmark};
        RunningStats per_bench;
        for (auto p : periods) {
            const double a = alphaFor(benchmark, p);
            per_bench.add(a);
            grand.add(a);
            row.push_back(Table::num(a, 3));
        }
        row.push_back(Table::num(per_bench.mean(), 3));
        table.row(row);
        csv.row(row);
    }
    table.print(std::cout);
    std::cout << "\nSuite-average alpha_B: "
              << Table::num(grand.mean(), 3)
              << " bytes/cycle (paper: ~0.16 on MiBench).\n"
              << "Expected: low values throughout; lzfx highest "
                 "(constant hash-table stores).\nCSV: "
              << bench::csvPath("fig10_alpha_b_watchdog.csv") << "\n";
    return 0;
}

int
main()
{
    return eh::runMain(runBench);
}
