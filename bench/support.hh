/**
 * @file
 * Shared support for the benchmark harnesses that regenerate the paper's
 * figures and tables: banner/output conventions plus aliases for the
 * validation and Clank characterization runs, whose physics now lives in
 * the library's exploration engine (src/explore/tasks.hh) so that both
 * the serial benches and parallel campaigns evaluate identical code.
 */

#ifndef EH_BENCH_SUPPORT_HH
#define EH_BENCH_SUPPORT_HH

#include <string>
#include <vector>

#include "explore/tasks.hh"

namespace eh::bench {

/**
 * Directory for CSV outputs (created once, race-free). Override with
 * the EH_RESULTS_DIR environment variable; the first call pins the
 * value for the process lifetime.
 */
std::string outputDir();

/**
 * Enable tracing/metrics from the environment (once, race-free):
 * EH_TRACE=file.json turns the trace sink on (EH_TRACE_CATEGORIES
 * selects categories, default all) and EH_METRICS_OUT=file.json|.csv
 * snapshots the metrics registry; both files are written at process
 * exit. banner() calls this, so every bench harness inherits the
 * hooks. See docs/OBSERVABILITY.md.
 */
void initObservability();

/** Print the standard figure banner with the paper cross-reference. */
void banner(const std::string &figure_id, const std::string &title);

/** Full path for a CSV in the output directory. */
std::string csvPath(const std::string &name);

/** Outcome of one workload/policy validation run (Figs 6–7). */
using ValidationRun = explore::ValidationRun;

/** @copydoc eh::explore::runValidation */
ValidationRun runValidation(const std::string &workload,
                            const std::string &policy,
                            double periods_budget_divisor = 6.0);

/** One benchmark's Clank characterization on one voltage trace. */
using ClankCharacterization = explore::ClankCharacterization;

/** @copydoc eh::explore::runClank */
ClankCharacterization runClank(const std::string &workload,
                               int trace_index,
                               std::uint64_t watchdog_cycles = 8000);

/** Names of the three synthetic RF traces, in index order. */
std::vector<std::string> traceNames();

} // namespace eh::bench

#endif // EH_BENCH_SUPPORT_HH
