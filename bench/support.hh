/**
 * @file
 * Shared support for the benchmark harnesses that regenerate the paper's
 * figures and tables: banner/output conventions, the simulated-hardware
 * validation runs (Figs 5–7), and the Clank characterization runs
 * (Figs 8–9) reused by multiple binaries.
 */

#ifndef EH_BENCH_SUPPORT_HH
#define EH_BENCH_SUPPORT_HH

#include <string>
#include <vector>

#include "core/calibration.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace eh::bench {

/**
 * Directory for CSV outputs (created on first use). Override with the
 * EH_RESULTS_DIR environment variable.
 */
std::string outputDir();

/** Print the standard figure banner with the paper cross-reference. */
void banner(const std::string &figure_id, const std::string &title);

/** Full path for a CSV in the output directory. */
std::string csvPath(const std::string &name);

/** Outcome of one workload/policy validation run (Figs 6–7). */
struct ValidationRun
{
    std::string workload;
    std::string policy;
    double measuredProgress = 0.0;
    double predictedProgress = 0.0;
    double relativeError = 0.0;
    double meanTauB = 0.0;
    double meanTauD = 0.0;
    double meanAlphaB = 0.0;
    double optimalTauB = 0.0; ///< Equation 9 at the calibrated params
    bool finished = false;
};

/**
 * Run one Table II workload under a named policy ("hibernus",
 * "mementos", "dino") on the simulated MSP430-class platform, then
 * calibrate the EH model from the observed behaviour and score the
 * prediction (the Section V-A methodology).
 *
 * @param periods_budget_divisor The period budget is the uninterrupted
 *        run's energy divided by this, floored at a viable minimum.
 */
ValidationRun runValidation(const std::string &workload,
                            const std::string &policy,
                            double periods_budget_divisor = 6.0);

/** One benchmark's Clank characterization on one voltage trace. */
struct ClankCharacterization
{
    std::string workload;
    std::string trace;
    double tauBMean = 0.0;
    double tauBSem = 0.0;
    double tauDMean = 0.0;
    double tauDSem = 0.0;
    double alphaBMean = 0.0;
    std::uint64_t backups = 0;
    std::uint64_t violations = 0;
    std::uint64_t watchdogs = 0;
    std::uint64_t overflows = 0;
    bool finished = false;
};

/**
 * Run one MiBench-like workload under Clank on a harvested supply driven
 * by @p trace_index (0 = spiky, 1 = ramp, 2 = multi-peak; the Section
 * V-B setup: 8-entry buffers, 8000-cycle watchdog, Cortex-M0+ costs).
 */
ClankCharacterization runClank(const std::string &workload,
                               int trace_index,
                               std::uint64_t watchdog_cycles = 8000);

/** Names of the three synthetic RF traces, in index order. */
std::vector<std::string> traceNames();

} // namespace eh::bench

#endif // EH_BENCH_SUPPORT_HH
