/**
 * @file
 * Extension of the Figure 6 methodology to the nonvolatile (Clank)
 * platform: run every MiBench-like kernel under Clank on a fixed-budget
 * supply, calibrate the EH model from the observed behaviour (mean
 * tau_B, energy-equivalent tau_D, backup bytes), and score the model's
 * progress prediction against the measurement. The paper validates the
 * model on the MSP430 systems only; this closes the loop on the second
 * platform its characterization (Figs 8–10) targets.
 */

#include <iostream>
#include <vector>

#include "energy/supply.hh"
#include "runtime/clank.hh"
#include "sim/simulator.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Extension: model validation on the Clank platform",
                  "measured vs predicted progress, all kernels");

    Table table({"benchmark", "measured p", "predicted p", "rel. error",
                 "mean tau_B", "mean tau_D"});
    CsvWriter csv(bench::csvPath("ext_clank_validation.csv"),
                  {"benchmark", "measured", "predicted", "rel_error",
                   "tau_b", "tau_d"});

    std::vector<double> errors;
    bool all_finished = true;
    for (const auto &benchmark : workloads::mibenchNames()) {
        const auto w = workloads::makeWorkload(
            benchmark, workloads::nonvolatileLayout());
        sim::SimConfig cfg;
        cfg.sramUsedBytes = 64;
        cfg.costs = arch::CostModel::cortexM0();
        cfg.maxActivePeriods = 60000;

        const auto golden =
            sim::runGolden(w.program, cfg, w.resultAddrs);
        const double budget =
            std::max(1.5e6, golden.energy / 6.0);
        energy::ConstantSupply supply(budget);
        runtime::Clank policy({});
        sim::Simulator s(w.program, policy, supply, cfg);
        const auto stats = s.run();
        all_finished &= stats.finished;

        const auto obs = stats.observe(cfg, 80);
        const auto pred = core::predictFromObservation(obs);
        errors.push_back(pred.relativeError);
        table.row({benchmark, Table::pct(pred.measuredProgress),
                   Table::pct(pred.predictedProgress),
                   Table::pct(pred.relativeError),
                   Table::num(obs.meanBackupPeriod, 0),
                   Table::num(obs.meanDeadCycles, 0)});
        csv.row({benchmark, Table::num(pred.measuredProgress, 5),
                 Table::num(pred.predictedProgress, 5),
                 Table::num(pred.relativeError, 5),
                 Table::num(obs.meanBackupPeriod, 1),
                 Table::num(obs.meanDeadCycles, 1)});
    }
    table.print(std::cout);

    const double gm = geomean(errors);
    std::cout << "\nGeometric-mean relative error on the Clank "
                 "platform: " << Table::pct(gm)
              << "\nExpected: the same few-percent regime as the "
                 "paper's MSP430 validation (Fig 6),\nshowing the "
                 "model's parameterization carries across platform "
                 "families.\n"
              << (all_finished ? ""
                               : "WARNING: some runs did not finish!\n")
              << "CSV: " << bench::csvPath("ext_clank_validation.csv")
              << "\n";
    return all_finished && gm < 0.25 ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
