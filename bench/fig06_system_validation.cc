/**
 * @file
 * Figure 6 (and Table II): measured vs model-predicted forward progress
 * for three energy-harvesting systems — Hibernus (single-backup),
 * Mementos and DINO (multi-backup) — across the six Table II benchmarks.
 *
 * The paper reports a geometric-mean error of 1.60% overall, with
 * Mementos higher (6.97%) because its dead cycles depend on the energy
 * left after the post-threshold run to the next checkpoint, and with AR
 * and MIDI elevated under DINO because their backup periods span 17 to
 * >14,000 cycles while the model uses a single mean tau_B. The same
 * structure — low overall error, Mementos and the variable-task
 * benchmarks worst — is what this harness checks for.
 */

#include <iostream>
#include <map>
#include <vector>

#include "explore/campaign.hh"
#include "explore/tasks.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Figure 6 / Table II",
                  "measured vs predicted progress for Hibernus, "
                  "Hibernus++, Mementos and DINO");

    const std::vector<std::string> systems{"hibernus", "hibernus++",
                                           "mementos", "dino"};
    Table table({"benchmark", "system", "measured p", "predicted p",
                 "rel. error", "mean tau_B", "mean tau_D"});
    CsvWriter csv(bench::csvPath("fig06_system_validation.csv"),
                  {"benchmark", "system", "measured", "predicted",
                   "rel_error", "tau_b", "tau_d"});

    // The validation grid runs through the campaign engine: parallel
    // across cores, cached under results/cache/validation.jsonl (shared
    // with Figure 7, which re-reads the DINO column for free).
    explore::CampaignConfig cc;
    cc.name = "validation";
    cc.cacheDir = bench::outputDir() + "/cache";
    explore::Campaign campaign(cc);
    for (const auto &benchmark : workloads::tableIINames()) {
        for (const auto &system : systems) {
            campaign.add(explore::JobSpec("validation")
                             .set("workload", benchmark)
                             .set("policy", system));
        }
    }
    const auto results = campaign.run(explore::evaluateJob);

    std::map<std::string, std::vector<double>> errors_by_system;
    std::vector<double> all_errors;
    bool all_finished = true;

    std::size_t cell = 0;
    for (const auto &benchmark : workloads::tableIINames()) {
        for (const auto &system : systems) {
            const auto &r = results[cell++];
            all_finished &= r.num("finished") != 0.0;
            table.row({benchmark, system,
                       Table::pct(r.num("measured")),
                       Table::pct(r.num("predicted")),
                       Table::pct(r.num("rel_error")),
                       Table::num(r.num("tau_b"), 0),
                       Table::num(r.num("tau_d"), 0)});
            csv.row({benchmark, system,
                     Table::num(r.num("measured"), 6),
                     Table::num(r.num("predicted"), 6),
                     Table::num(r.num("rel_error"), 6),
                     Table::num(r.num("tau_b"), 1),
                     Table::num(r.num("tau_d"), 1)});
            errors_by_system[system].push_back(r.num("rel_error"));
            all_errors.push_back(r.num("rel_error"));
        }
    }
    table.print(std::cout);
    std::cout << "campaign: " << campaign.report().summary() << "\n";

    std::cout << "\nGeometric-mean relative error:\n";
    for (const auto &[system, errs] : errors_by_system) {
        std::cout << "  " << system << ": " << Table::pct(geomean(errs))
                  << "\n";
    }
    std::cout << "  overall: " << Table::pct(geomean(all_errors))
              << "\n\nPaper reference: 1.60% overall geomean error; "
                 "Mementos worst at 6.97% geomean\n(model "
                 "underpredicts it), AR/MIDI elevated under DINO "
                 "(variable task lengths).\n"
              << (all_finished ? ""
                               : "WARNING: some runs did not finish!\n")
              << "CSV: " << bench::csvPath("fig06_system_validation.csv")
              << "\n";
    return all_finished ? 0 : 1;
}

int
main()
{
    return eh::runMain(runBench);
}
