/**
 * @file
 * Figure 6 (and Table II): measured vs model-predicted forward progress
 * for three energy-harvesting systems — Hibernus (single-backup),
 * Mementos and DINO (multi-backup) — across the six Table II benchmarks.
 *
 * The paper reports a geometric-mean error of 1.60% overall, with
 * Mementos higher (6.97%) because its dead cycles depend on the energy
 * left after the post-threshold run to the next checkpoint, and with AR
 * and MIDI elevated under DINO because their backup periods span 17 to
 * >14,000 cycles while the model uses a single mean tau_B. The same
 * structure — low overall error, Mementos and the variable-task
 * benchmarks worst — is what this harness checks for.
 */

#include <iostream>
#include <map>
#include <vector>

#include "support.hh"
#include "util/csv.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

using namespace eh;

int
main()
{
    bench::banner("Figure 6 / Table II",
                  "measured vs predicted progress for Hibernus, "
                  "Hibernus++, Mementos and DINO");

    const std::vector<std::string> systems{"hibernus", "hibernus++",
                                           "mementos", "dino"};
    Table table({"benchmark", "system", "measured p", "predicted p",
                 "rel. error", "mean tau_B", "mean tau_D"});
    CsvWriter csv(bench::csvPath("fig06_system_validation.csv"),
                  {"benchmark", "system", "measured", "predicted",
                   "rel_error", "tau_b", "tau_d"});

    std::map<std::string, std::vector<double>> errors_by_system;
    std::vector<double> all_errors;
    bool all_finished = true;

    for (const auto &benchmark : workloads::tableIINames()) {
        for (const auto &system : systems) {
            const auto r = bench::runValidation(benchmark, system);
            all_finished &= r.finished;
            table.row({benchmark, system,
                       Table::pct(r.measuredProgress),
                       Table::pct(r.predictedProgress),
                       Table::pct(r.relativeError),
                       Table::num(r.meanTauB, 0),
                       Table::num(r.meanTauD, 0)});
            csv.row({benchmark, system,
                     Table::num(r.measuredProgress, 6),
                     Table::num(r.predictedProgress, 6),
                     Table::num(r.relativeError, 6),
                     Table::num(r.meanTauB, 1),
                     Table::num(r.meanTauD, 1)});
            errors_by_system[system].push_back(r.relativeError);
            all_errors.push_back(r.relativeError);
        }
    }
    table.print(std::cout);

    std::cout << "\nGeometric-mean relative error:\n";
    for (const auto &[system, errs] : errors_by_system) {
        std::cout << "  " << system << ": " << Table::pct(geomean(errs))
                  << "\n";
    }
    std::cout << "  overall: " << Table::pct(geomean(all_errors))
              << "\n\nPaper reference: 1.60% overall geomean error; "
                 "Mementos worst at 6.97% geomean\n(model "
                 "underpredicts it), AR/MIDI elevated under DINO "
                 "(variable task lengths).\n"
              << (all_finished ? ""
                               : "WARNING: some runs did not finish!\n")
              << "CSV: " << bench::csvPath("fig06_system_validation.csv")
              << "\n";
    return all_finished ? 0 : 1;
}
