/**
 * @file
 * Figure 4: progress over tau_B for the best-case (tau_D = 0),
 * average (tau_D = tau_B/2) and worst-case (tau_D = tau_B) dead-cycle
 * assumptions. Paper setting: E = 100, Omega_B = A_B = eps = 1,
 * alpha_B = 0.1, no restore or charging.
 *
 * Expected shape: the three curves converge as tau_B -> 0 (frequent
 * backups remove the variability) and fan out at large tau_B; the
 * worst-case optimum (Equation 10) sits left of the average-case
 * optimum (Equation 9).
 */

#include <iostream>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/sweep.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Figure 4",
                  "dead-cycle variability bounds on progress");

    const auto taus = core::logspace(1.0, 2000.0, 25);
    Table table({"tau_B", "p best (tau_D=0)", "p avg (tau_D=tau_B/2)",
                 "p worst (tau_D=tau_B)", "spread"});
    CsvWriter csv(bench::csvPath("fig04_dead_cycle_bounds.csv"),
                  {"tau_B", "best", "avg", "worst", "spread"});

    for (double tau : taus) {
        core::Params p = core::illustrativeParams();
        p.backupPeriod = tau;
        core::Model m(p);
        const double best = m.progress(core::DeadCycleMode::BestCase);
        const double avg = m.progress(core::DeadCycleMode::Average);
        const double worst = m.progress(core::DeadCycleMode::WorstCase);
        table.row({Table::num(tau, 1), Table::num(best, 4),
                   Table::num(avg, 4), Table::num(worst, 4),
                   Table::num(best - worst, 4)});
        csv.rowNumeric({tau, best, avg, worst, best - worst});
    }
    table.print(std::cout);

    const core::Params p = core::illustrativeParams();
    std::cout << "\nOptimal backup periods:\n"
              << "  average case (Equation 9):    "
              << core::optimalBackupPeriod(p) << " cycles\n"
              << "  worst case   (Equation 10):   "
              << core::worstCaseOptimalBackupPeriod(p) << " cycles\n"
              << "The worst-case optimum is always smaller — design for "
                 "tail latency by backing up\nmore often than the "
                 "average case suggests (Section IV-A2).\nCSV: "
              << csv.path() << "\n";
    return 0;
}

int
main()
{
    return eh::runMain(runBench);
}
