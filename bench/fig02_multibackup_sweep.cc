/**
 * @file
 * Figure 2: forward progress p for a multi-backup system as the time
 * between backups (tau_B) and the backup cost (Omega_B, normalized to
 * epsilon) vary. Paper setting: E = 100, eps_C = 0, A_B = eps = 1,
 * alpha_B = 0.1, Omega_R = 0.
 *
 * Expected shape: each Omega_B > 0 curve rises to a sweet spot and
 * falls; cheaper backups shift the sweet spot towards more frequent
 * backups and raise the whole curve. The printed optima are checked
 * against Equation 9.
 */

#include <iostream>

#include "core/model.hh"
#include "core/optimum.hh"
#include "core/sweep.hh"
#include "support.hh"
#include "util/csv.hh"
#include "util/panic.hh"
#include "util/table.hh"

using namespace eh;

int
runBench()
{
    bench::banner("Figure 2",
                  "progress vs tau_B for varying backup cost Omega_B");

    const std::vector<double> omegas{0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
    const auto taus = core::logspace(1.0, 2000.0, 25);

    std::vector<std::string> header{"tau_B"};
    for (double o : omegas)
        header.push_back("p(Omega_B=" + Table::num(o, 2) + ")");
    Table table(header);
    CsvWriter csv(bench::csvPath("fig02_multibackup_sweep.csv"), header);

    for (double tau : taus) {
        std::vector<std::string> row{Table::num(tau, 1)};
        std::vector<double> csv_row{tau};
        for (double omega : omegas) {
            core::Params p = core::illustrativeParams();
            p.backupPeriod = tau;
            p.backupCost = omega;
            const double prog = core::Model(p).progress();
            row.push_back(Table::num(prog, 4));
            csv_row.push_back(prog);
        }
        table.row(row);
        csv.rowNumeric(csv_row);
    }
    table.print(std::cout);

    std::cout << "\nPer-curve optima (closed form, Equation 9) vs swept"
                 " argmax:\n";
    Table opt({"Omega_B", "tau_B,opt (Eq 9)", "sweep argmax",
               "p at optimum"});
    for (double omega : omegas) {
        core::Params p = core::illustrativeParams();
        p.backupCost = omega;
        const double tau_opt = core::optimalBackupPeriod(p);
        const auto sweep = core::sweep1D(taus, [&](double tau) {
            return core::Model(p).withBackupPeriod(tau).progress();
        });
        const double p_opt =
            tau_opt > 0.0
                ? core::Model(p).withBackupPeriod(tau_opt).progress()
                : sweep.bestValue;
        opt.row({Table::num(omega, 2), Table::num(tau_opt, 2),
                 Table::num(sweep.bestX, 2), Table::num(p_opt, 4)});
    }
    opt.print(std::cout);
    std::cout << "\nTakeaways (Section IV-A1): lower backup cost is "
                 "always better; the sweet spot\nmoves left as backups "
                 "get cheaper.\nCSV: " << csv.path() << "\n";
    return 0;
}

int
main()
{
    return eh::runMain(runBench);
}
