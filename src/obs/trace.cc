#include "obs/trace.hh"

#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "util/panic.hh"

namespace eh::obs {

const char *
categoryName(Category category)
{
    switch (category) {
      case Category::Sim:
        return "sim";
      case Category::Policy:
        return "policy";
      case Category::Campaign:
        return "campaign";
      case Category::Pool:
        return "pool";
      case Category::Cache:
        return "cache";
      case Category::Fault:
        return "fault";
      case Category::Energy:
        return "energy";
      case Category::Service:
        return "service";
    }
    return "unknown";
}

std::uint32_t
parseCategories(const std::string &list)
{
    if (list.empty() || list == "all")
        return allCategories;
    std::uint32_t mask = 0;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        bool found = false;
        for (std::uint32_t bit = 1; bit <= allCategories; bit <<= 1) {
            const auto cat = static_cast<Category>(bit);
            if (item == categoryName(cat)) {
                mask |= bit;
                found = true;
                break;
            }
        }
        if (item == "none")
            found = true; // explicit empty selection
        if (!found)
            fatalf("unknown trace category '", item,
                   "' (sim, policy, campaign, pool, cache, fault, "
                   "energy, service, all, none)");
    }
    return mask;
}

/**
 * One thread's event storage. Only the owning thread writes events and
 * bumps head; snapshot() readers synchronize through the head's release
 * store. Rings are owned by the sink and outlive their threads, so a
 * worker that exits before export loses nothing.
 */
struct TraceSink::Ring
{
    explicit Ring(std::size_t capacity) : slots(capacity) {}

    std::vector<TraceEvent> slots;
    std::atomic<std::uint64_t> head{0}; ///< events ever pushed
    std::string threadName;             ///< set via setThreadName()
    std::uint64_t generation = 0;       ///< enable() epoch that made it
};

struct TraceSink::Impl
{
    std::mutex mutex; ///< guards everything below
    std::vector<std::unique_ptr<Ring>> rings;
    std::vector<std::string> virtualNames; ///< index = id - 1
    std::unordered_map<std::string, std::uint32_t> virtualByName;
    std::deque<std::string> internPool;
    std::size_t ringCapacity = 1u << 15;
    std::uint64_t generation = 0; ///< bumped by enable()
    std::uint64_t epochNanos = 0;
};

TraceSink &
TraceSink::instance()
{
    static TraceSink sink;
    return sink;
}

TraceSink::Impl &
TraceSink::impl()
{
    static Impl theImpl;
    return theImpl;
}

namespace {

std::uint64_t
steadyNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Atomic epoch published by enable() so nowNanos() stays lock-free. */
std::atomic<std::uint64_t> traceEpoch{0};

} // namespace

void
TraceSink::enable(std::uint32_t mask, std::size_t ringCapacity)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    // Start a fresh generation: existing rings are emptied (their
    // thread_local pointers stay valid), virtual tracks reset.
    ++im.generation;
    im.ringCapacity = ringCapacity > 0 ? ringCapacity : 1;
    for (auto &ring : im.rings) {
        ring->slots.assign(im.ringCapacity, TraceEvent{});
        ring->head.store(0, std::memory_order_release);
        ring->generation = im.generation;
    }
    im.virtualNames.clear();
    im.virtualByName.clear();
    im.epochNanos = steadyNanos();
    traceEpoch.store(im.epochNanos, std::memory_order_relaxed);
    enabledMask.store(mask & allCategories, std::memory_order_release);
}

void
TraceSink::disable()
{
    enabledMask.store(0, std::memory_order_release);
}

std::uint64_t
TraceSink::nowNanos() const
{
    return steadyNanos() - traceEpoch.load(std::memory_order_relaxed);
}

TraceSink::Ring &
TraceSink::myRing()
{
    thread_local Ring *mine = nullptr;
    Impl &im = impl();
    if (mine) {
        // A new enable() generation resized the ring in place; nothing
        // to re-register. (The pointer is stable for process life.)
        return *mine;
    }
    std::lock_guard<std::mutex> lock(im.mutex);
    im.rings.push_back(std::make_unique<Ring>(im.ringCapacity));
    mine = im.rings.back().get();
    mine->generation = im.generation;
    return *mine;
}

void
TraceSink::push(Ring &ring, const TraceEvent &event)
{
    const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    TraceEvent slot = event;
    slot.seq = head;
    ring.slots[head % ring.slots.size()] = slot;
    ring.head.store(head + 1, std::memory_order_release);
}

void
TraceSink::record(std::uint32_t track, Category category, EventKind kind,
                  const char *name, std::uint64_t start,
                  std::uint64_t dur, const TraceArg *args,
                  std::size_t argCount)
{
    if (!on(category))
        return;
    TraceEvent e;
    e.name = name;
    e.start = start;
    e.dur = dur;
    e.cat = category;
    e.track = track;
    e.kind = kind;
    const std::size_t n =
        argCount < maxTraceArgs ? argCount : maxTraceArgs;
    for (std::size_t i = 0; i < n; ++i)
        e.args[e.argCount++] = args[i];
    push(myRing(), e);
}

void
TraceSink::span(Category category, const char *name, std::uint64_t start,
                std::uint64_t dur, std::initializer_list<TraceArg> args)
{
    record(0, category, EventKind::Span, name, start, dur, args.begin(),
           args.size());
}

void
TraceSink::spanArgs(Category category, const char *name,
                    std::uint64_t start, std::uint64_t dur,
                    const TraceArg *args, std::size_t argCount)
{
    record(0, category, EventKind::Span, name, start, dur, args,
           argCount);
}

void
TraceSink::instant(Category category, const char *name,
                   std::initializer_list<TraceArg> args)
{
    record(0, category, EventKind::Instant, name, nowNanos(), 0,
           args.begin(), args.size());
}

void
TraceSink::spanTicks(std::uint32_t track, Category category,
                     const char *name, std::uint64_t startTicks,
                     std::uint64_t durTicks,
                     std::initializer_list<TraceArg> args)
{
    if (track == 0)
        return; // virtualTrack() declined (tracing off at creation)
    record(track, category, EventKind::Span, name, startTicks, durTicks,
           args.begin(), args.size());
}

void
TraceSink::instantTicks(std::uint32_t track, Category category,
                        const char *name, std::uint64_t ticks,
                        std::initializer_list<TraceArg> args)
{
    if (track == 0)
        return;
    record(track, category, EventKind::Instant, name, ticks, 0,
           args.begin(), args.size());
}

std::uint32_t
TraceSink::virtualTrack(const std::string &name)
{
    if (mask() == 0)
        return 0;
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    auto it = im.virtualByName.find(name);
    if (it != im.virtualByName.end())
        return it->second;
    if (im.virtualNames.size() >= maxVirtualTracks) {
        // Shared catch-all so long loops stay bounded; the exporter
        // keeps the trace structurally valid regardless.
        auto overflow = im.virtualByName.find("overflow");
        if (overflow != im.virtualByName.end())
            return overflow->second;
        im.virtualNames.push_back("overflow");
        const auto id =
            static_cast<std::uint32_t>(im.virtualNames.size());
        im.virtualByName.emplace("overflow", id);
        return id;
    }
    im.virtualNames.push_back(name);
    const auto id = static_cast<std::uint32_t>(im.virtualNames.size());
    im.virtualByName.emplace(name, id);
    return id;
}

void
TraceSink::setThreadName(const std::string &name)
{
    if (mask() == 0)
        return; // don't allocate a ring for an untraced thread
    Ring &ring = myRing();
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    ring.threadName = name;
}

const char *
TraceSink::intern(const std::string &s)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    im.internPool.push_back(s);
    return im.internPool.back().c_str();
}

TraceSnapshot
TraceSink::snapshot()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    TraceSnapshot snap;
    snap.epochNanos = im.epochNanos;

    // Final id space: wall tracks take 0..W-1 (ring registration
    // order); virtual track v (1-based in events) maps to W + v - 1.
    const auto wallTracks = static_cast<std::uint32_t>(im.rings.size());
    for (std::uint32_t w = 0; w < wallTracks; ++w) {
        TrackInfo info;
        info.id = w;
        info.name = !im.rings[w]->threadName.empty()
                        ? im.rings[w]->threadName
                        : "thread-" + std::to_string(w);
        info.virtualClock = false;
        snap.tracks.push_back(info);
    }
    for (std::size_t i = 0; i < im.virtualNames.size(); ++i) {
        TrackInfo info;
        info.id = wallTracks + static_cast<std::uint32_t>(i);
        info.name = im.virtualNames[i];
        info.virtualClock = true;
        snap.tracks.push_back(info);
    }

    for (std::uint32_t w = 0; w < wallTracks; ++w) {
        const Ring &ring = *im.rings[w];
        if (ring.generation != im.generation)
            continue; // registered under an older enable(); no events
        const std::uint64_t head =
            ring.head.load(std::memory_order_acquire);
        const std::uint64_t capacity = ring.slots.size();
        const std::uint64_t kept = head < capacity ? head : capacity;
        snap.dropped += head - kept;
        for (std::uint64_t i = head - kept; i < head; ++i) {
            TraceEvent e = ring.slots[i % capacity];
            e.track = e.track == 0 ? w : wallTracks + e.track - 1;
            snap.events.push_back(e);
        }
    }
    return snap;
}

TraceScope::TraceScope(Category category, const char *name_,
                       std::initializer_list<TraceArg> args_)
    : active(traceEnabled(category)), cat(category), name(name_)
{
    if (!active)
        return;
    for (const TraceArg &a : args_) {
        if (argCount >= maxTraceArgs)
            break;
        args[argCount++] = a;
    }
    start = TraceSink::instance().nowNanos();
}

void
TraceScope::arg(const char *key, double value)
{
    if (!active || argCount >= maxTraceArgs)
        return;
    args[argCount++] = TraceArg{key, value};
}

TraceScope::~TraceScope()
{
    if (!active)
        return;
    TraceSink &sink = TraceSink::instance();
    const std::uint64_t dur = sink.nowNanos() - start;
    sink.spanArgs(cat, name, start, dur, args, argCount);
}

} // namespace eh::obs
