/**
 * @file
 * Trace and metrics exporters (docs/OBSERVABILITY.md). The trace export
 * writes Chrome trace-event JSON — loadable in Perfetto
 * (https://ui.perfetto.dev) and chrome://tracing — with one track per
 * worker thread (pid 1, wall-clock microseconds) and one track per
 * simulated device timeline (pid 2, simulated cycles). Spans are
 * emitted as B/E pairs that are properly nested per track by
 * construction: overlapping spans (possible when repeated runs share a
 * virtual track) are truncated to their enclosing span.
 */

#ifndef EH_OBS_EXPORT_HH
#define EH_OBS_EXPORT_HH

#include <iosfwd>
#include <string>

#include "obs/trace.hh"

namespace eh::obs {

/** Serialize a snapshot as Chrome trace-event JSON. */
void writeChromeTrace(const TraceSnapshot &snapshot, std::ostream &out);

/**
 * Snapshot the global sink and write it to @p path.
 * @throws FatalError when the file cannot be written.
 */
void writeChromeTraceFile(const std::string &path);

/**
 * Write the global metrics registry as JSON to @p path (".json") or as
 * flat CSV when @p path ends in ".csv".
 * @throws FatalError when the file cannot be written.
 */
void writeMetricsFile(const std::string &path);

} // namespace eh::obs

#endif // EH_OBS_EXPORT_HH
