/**
 * @file
 * Named-metric registry for the simulator and the exploration engine
 * (docs/OBSERVABILITY.md): monotonic counters, point-in-time gauges and
 * log2-bucketed histograms, addressable by name from any thread.
 *
 * Determinism contract: counters and histograms must only record
 * quantities that are independent of scheduling — job counts, cache
 * hits, byte sizes, retry tallies — so a registry snapshot is
 * byte-identical between `--jobs 1` and `--jobs 8`. Anything that
 * depends on timing or thread interleaving (wall seconds, steal counts,
 * utilization) belongs in a gauge, which the deterministic snapshot
 * excludes. merge() is commutative, so parallel reductions of
 * per-worker registries are order-independent too.
 */

#ifndef EH_OBS_METRICS_HH
#define EH_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/stats.hh"

namespace eh::obs {

/** Monotonic counter. add() is thread-safe and wait-free. */
class Counter
{
  public:
    void add(std::uint64_t delta = 1)
    {
        value.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t count() const
    {
        return value.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    std::atomic<std::uint64_t> value{0};
};

/** Last-write-wins gauge (timings, utilization — non-deterministic). */
class Gauge
{
  public:
    void set(double v) { value.store(v, std::memory_order_relaxed); }

    /** Accumulate (for summed wall-times across workers). */
    void add(double delta)
    {
        double cur = value.load(std::memory_order_relaxed);
        while (!value.compare_exchange_weak(cur, cur + delta,
                                            std::memory_order_relaxed)) {
        }
    }

    double get() const { return value.load(std::memory_order_relaxed); }

  private:
    friend class MetricsRegistry;
    std::atomic<double> value{0.0};
};

/** Thread-safe wrapper around util Log2Histogram. */
class HistogramMetric
{
  public:
    void add(std::uint64_t value)
    {
        std::lock_guard<std::mutex> lock(mutex);
        hist.add(value);
    }

    /** Copy out a consistent snapshot. */
    Log2Histogram snapshot() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return hist;
    }

  private:
    friend class MetricsRegistry;
    mutable std::mutex mutex;
    Log2Histogram hist;
};

/**
 * The registry: named metrics created on first use. Returned references
 * stay valid for the registry's lifetime, so hot paths can look a
 * metric up once and hold the reference.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry (what --metrics-out snapshots). */
    static MetricsRegistry &global();

    /** Find-or-create. Name style: "layer.metric" ("campaign.jobs"). */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    HistogramMetric &histogram(const std::string &name);

    /**
     * Merge another registry into this one: counters and histograms
     * add, gauges sum (the only merge that keeps "summed worker busy
     * seconds" meaningful). Commutative in the deterministic sections.
     */
    void merge(const MetricsRegistry &other);

    /** Drop every metric (tests; between campaign phases). */
    void clear();

    /**
     * JSON snapshot: {"counters":{...},"gauges":{...},"histograms":
     * {...}} with names sorted and round-trip number formatting.
     * @param deterministicOnly Omit the gauges section, leaving only
     *        the scheduling-independent metrics (see file comment).
     */
    std::string toJson(bool deterministicOnly = false) const;

    /** Flat CSV: name,kind,value (histograms flattened to quantiles). */
    void writeCsv(std::ostream &out) const;

  private:
    mutable std::mutex mutex; ///< guards the maps, not metric updates
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<HistogramMetric>> histograms;
};

/** Convenience accessor for the global registry. */
inline MetricsRegistry &
metrics()
{
    return MetricsRegistry::global();
}

} // namespace eh::obs

#endif // EH_OBS_METRICS_HH
