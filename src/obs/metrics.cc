#include "obs/metrics.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <vector>

namespace eh::obs {

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

HistogramMetric &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<HistogramMetric>();
    return *slot;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    // Snapshot the other registry's names under its lock, then apply
    // through the normal accessors (which take our lock) — never both
    // locks at once, so cross-merges cannot deadlock.
    std::vector<std::pair<std::string, std::uint64_t>> counts;
    std::vector<std::pair<std::string, double>> gaugeVals;
    std::vector<std::pair<std::string, Log2Histogram>> hists;
    {
        std::lock_guard<std::mutex> lock(other.mutex);
        for (const auto &[name, c] : other.counters)
            counts.emplace_back(name, c->count());
        for (const auto &[name, g] : other.gauges)
            gaugeVals.emplace_back(name, g->get());
        for (const auto &[name, h] : other.histograms)
            hists.emplace_back(name, h->snapshot());
    }
    for (const auto &[name, v] : counts)
        counter(name).add(v);
    for (const auto &[name, v] : gaugeVals)
        gauge(name).add(v);
    for (const auto &[name, h] : hists) {
        HistogramMetric &mine = histogram(name);
        std::lock_guard<std::mutex> lock(mine.mutex);
        mine.hist.merge(h);
    }
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    counters.clear();
    gauges.clear();
    histograms.clear();
}

namespace {

/** Round-trip double formatting, deterministic across platforms. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
histogramJson(const Log2Histogram &h)
{
    std::ostringstream oss;
    oss << "{\"count\":" << h.total() << ",\"sum\":" << h.sum()
        << ",\"p50\":" << fmtDouble(h.quantile(0.50))
        << ",\"p95\":" << fmtDouble(h.quantile(0.95))
        << ",\"p99\":" << fmtDouble(h.quantile(0.99)) << ",\"buckets\":[";
    bool first = true;
    for (std::size_t b = 0; b < Log2Histogram::bucketCount; ++b) {
        if (h.bucket(b) == 0)
            continue;
        if (!first)
            oss << ",";
        first = false;
        oss << "[" << Log2Histogram::bucketLo(b) << ","
            << Log2Histogram::bucketHi(b) << "," << h.bucket(b) << "]";
    }
    oss << "]}";
    return oss.str();
}

} // namespace

std::string
MetricsRegistry::toJson(bool deterministicOnly) const
{
    // std::map iteration is already name-sorted; values use integer or
    // round-trip formatting, so equal registries serialize identically.
    std::lock_guard<std::mutex> lock(mutex);
    std::ostringstream oss;
    oss << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters) {
        oss << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
            << "\": " << c->count();
        first = false;
    }
    oss << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        oss << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
            << "\": " << histogramJson(h->snapshot());
        first = false;
    }
    oss << (first ? "" : "\n  ") << "}";
    if (!deterministicOnly) {
        oss << ",\n  \"gauges\": {";
        first = true;
        for (const auto &[name, g] : gauges) {
            oss << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
                << "\": " << fmtDouble(g->get());
            first = false;
        }
        oss << (first ? "" : "\n  ") << "}";
    }
    oss << "\n}\n";
    return oss.str();
}

void
MetricsRegistry::writeCsv(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex);
    out << "name,kind,value\n";
    for (const auto &[name, c] : counters)
        out << name << ",counter," << c->count() << "\n";
    for (const auto &[name, g] : gauges)
        out << name << ",gauge," << fmtDouble(g->get()) << "\n";
    for (const auto &[name, h] : histograms) {
        const Log2Histogram snap = h->snapshot();
        out << name << ".count,histogram," << snap.total() << "\n"
            << name << ".sum,histogram," << snap.sum() << "\n"
            << name << ".p50,histogram," << fmtDouble(snap.quantile(0.5))
            << "\n"
            << name << ".p95,histogram,"
            << fmtDouble(snap.quantile(0.95)) << "\n"
            << name << ".p99,histogram,"
            << fmtDouble(snap.quantile(0.99)) << "\n";
    }
}

} // namespace eh::obs
