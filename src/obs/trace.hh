/**
 * @file
 * Low-overhead tracing for the simulator and the exploration engine
 * (docs/OBSERVABILITY.md). Instrumentation sites create scoped spans or
 * instant events tagged with a category; events land in a per-thread
 * ring buffer (owner-thread writes only, no locks on the hot path) and
 * are exported afterwards as Chrome-trace / Perfetto JSON.
 *
 * Tracing is disabled by default: every emission site first tests one
 * relaxed atomic category mask, so the no-op path is a load, a mask and
 * a branch — no allocation, no clock read, no lock.
 *
 * Two clock domains coexist:
 *  - wall tracks: one per OS thread (campaign workers), timestamped
 *    with the steady clock in nanoseconds;
 *  - virtual tracks: one per simulated device timeline, timestamped in
 *    simulated cycles, so a Simulator::run() lays out its
 *    progress/backup/restore/dead phases on its own row.
 */

#ifndef EH_OBS_TRACE_HH
#define EH_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace eh::obs {

/** Event categories, selectable at runtime (--trace-categories). */
enum class Category : std::uint32_t
{
    Sim = 1u << 0,      ///< simulator phase timeline (virtual tracks)
    Policy = 1u << 1,   ///< backup/restore decision points
    Campaign = 1u << 2, ///< job lifecycle in explore::Campaign
    Pool = 1u << 3,     ///< thread-pool batches and steals
    Cache = 1u << 4,    ///< result-cache hits and misses
    Fault = 1u << 5,    ///< injected faults and recovery actions
    Energy = 1u << 6,   ///< supply/meter events
    Service = 1u << 7,  ///< exploration-service RPCs (docs/SERVICE.md)
};

/** Mask selecting every category. */
constexpr std::uint32_t allCategories = 0xff;

/** Stable lowercase category name ("sim", "campaign", ...). */
const char *categoryName(Category category);

/**
 * Parse a comma-separated category list ("sim,campaign", "all").
 * @throws FatalError on an unknown category name.
 */
std::uint32_t parseCategories(const std::string &list);

/** One named numeric event argument. Keys must be static strings. */
struct TraceArg
{
    const char *key;
    double value;
};

/** Maximum arguments one event can carry (fixed, allocation-free). */
constexpr std::size_t maxTraceArgs = 6;

/** What an event slot records. */
enum class EventKind : std::uint8_t
{
    Span,    ///< duration event (exported as a B/E pair)
    Instant, ///< point event
};

/** One recorded event. POD; lives in the per-thread ring. */
struct TraceEvent
{
    const char *name = nullptr; ///< static or interned string
    std::uint64_t start = 0;    ///< ns (wall) or cycles (virtual)
    std::uint64_t dur = 0;      ///< 0 for instants
    std::uint64_t seq = 0;      ///< per-ring monotonic tiebreaker
    Category cat = Category::Sim;
    std::uint32_t track = 0;    ///< 0 = owning wall track, else virtual id
    EventKind kind = EventKind::Span;
    std::uint8_t argCount = 0;
    TraceArg args[maxTraceArgs] = {};
};

/** Snapshot of one track's identity for the exporter. */
struct TrackInfo
{
    std::uint32_t id = 0;     ///< 0..N-1 wall tracks, then virtual ids
    std::string name;         ///< "worker-0", "sim:crc/clank", ...
    bool virtualClock = false;///< cycles instead of nanoseconds
};

/** Everything an export needs: events plus track identities. */
struct TraceSnapshot
{
    std::vector<TraceEvent> events;  ///< all rings, unordered
    std::vector<TrackInfo> tracks;   ///< wall + virtual tracks
    std::uint64_t dropped = 0;       ///< events lost to ring wraparound
    std::uint64_t epochNanos = 0;    ///< steady-clock origin of ts 0
};

/**
 * The process-wide trace facility. All methods are safe to call from
 * any thread; record() never blocks (it writes the caller's own ring).
 */
class TraceSink
{
  public:
    static TraceSink &instance();

    /**
     * Turn tracing on for the categories in @p mask. Existing events
     * are cleared and the timestamp epoch resets to "now".
     * @param ringCapacity Events retained per thread; older events are
     *        overwritten (and counted as dropped) once a ring is full.
     */
    void enable(std::uint32_t mask = allCategories,
                std::size_t ringCapacity = 1u << 15);

    /** Turn tracing off. Recorded events remain until enable(). */
    void disable();

    /** Currently enabled category mask (0 when disabled). */
    std::uint32_t mask() const
    {
        return enabledMask.load(std::memory_order_relaxed);
    }

    /** True when @p category is being recorded. */
    bool on(Category category) const
    {
        return (mask() & static_cast<std::uint32_t>(category)) != 0;
    }

    /** Nanoseconds since the enable() epoch (steady clock). */
    std::uint64_t nowNanos() const;

    /** Record a wall-clock span on the calling thread's track. */
    void span(Category category, const char *name, std::uint64_t start,
              std::uint64_t dur, std::initializer_list<TraceArg> args = {});

    /** span() with an explicit argument array (for TraceScope). */
    void spanArgs(Category category, const char *name,
                  std::uint64_t start, std::uint64_t dur,
                  const TraceArg *args, std::size_t argCount);

    /** Record a wall-clock instant on the calling thread's track. */
    void instant(Category category, const char *name,
                 std::initializer_list<TraceArg> args = {});

    /** Record a span on a virtual (simulated-cycles) track. */
    void spanTicks(std::uint32_t track, Category category,
                   const char *name, std::uint64_t startTicks,
                   std::uint64_t durTicks,
                   std::initializer_list<TraceArg> args = {});

    /** Record an instant on a virtual track. */
    void instantTicks(std::uint32_t track, Category category,
                      const char *name, std::uint64_t ticks,
                      std::initializer_list<TraceArg> args = {});

    /**
     * Register (or look up) a virtual track by name. Equal names share
     * one track; at most @ref maxVirtualTracks distinct names are kept,
     * after which everything lands on a shared "overflow" track, so a
     * long benchmark loop cannot grow the registry without bound.
     * Returns 0 — meaning "don't trace" — when tracing is disabled.
     */
    std::uint32_t virtualTrack(const std::string &name);

    /** Name the calling thread's wall track ("worker-3"). */
    void setThreadName(const std::string &name);

    /**
     * Copy a static-lifetime version of @p s for use as an event name.
     * Interned strings live until process exit; intended for names that
     * are constructed once per job or per run, not per event.
     */
    const char *intern(const std::string &s);

    /** Snapshot everything recorded so far (any thread; takes locks). */
    TraceSnapshot snapshot();

    /** Distinct virtual-track cap (shared overflow track beyond it). */
    static constexpr std::size_t maxVirtualTracks = 512;

  private:
    TraceSink() = default;
    struct Ring;

    Ring &myRing();
    void push(Ring &ring, const TraceEvent &event);
    void record(std::uint32_t track, Category category, EventKind kind,
                const char *name, std::uint64_t start, std::uint64_t dur,
                const TraceArg *args, std::size_t argCount);

    std::atomic<std::uint32_t> enabledMask{0};
    struct Impl;
    Impl &impl();
};

/** Convenience accessor for the global sink. */
inline TraceSink &
trace()
{
    return TraceSink::instance();
}

/** True when @p category is currently traced. */
inline bool
traceEnabled(Category category)
{
    return TraceSink::instance().on(category);
}

/**
 * RAII wall-clock span: records [construction, destruction) on the
 * calling thread's track. When the category is disabled at
 * construction the object is inert (a bool and a branch).
 */
class TraceScope
{
  public:
    TraceScope(Category category, const char *name,
               std::initializer_list<TraceArg> args = {});

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Attach one more argument (silently dropped past maxTraceArgs). */
    void arg(const char *key, double value);

    ~TraceScope();

  private:
    bool active;
    Category cat;
    const char *name;
    std::uint64_t start = 0;
    std::uint8_t argCount = 0;
    TraceArg args[maxTraceArgs] = {};
};

} // namespace eh::obs

#endif // EH_OBS_TRACE_HH
