/**
 * @file
 * Trace-file reading: a small self-contained JSON parser (enough for
 * the Chrome trace-event format the exporter writes, and for general
 * well-formedness checking), a structural validator (every 'B' has a
 * matching 'E', pairs properly nested per track, timestamps ordered),
 * and the summaries behind the `eh_trace` tool: top spans by total
 * time, phase-time breakdown of the simulated timelines, and
 * per-worker utilization.
 */

#ifndef EH_OBS_SUMMARY_HH
#define EH_OBS_SUMMARY_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace eh::obs {

/** Minimal JSON value (null / bool / number / string / array / object). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** number, or @p fallback when not a Number. */
    double num(double fallback = 0.0) const
    {
        return type == Type::Number ? number : fallback;
    }
};

/**
 * Parse a complete JSON document.
 * @throws FatalError with position information on malformed input.
 */
JsonValue parseJson(const std::string &text);

/** Structural verdict on one trace file. */
struct TraceCheck
{
    bool ok = false;
    std::string error;          ///< first violation, empty when ok
    std::size_t events = 0;     ///< total trace records
    std::size_t spans = 0;      ///< matched B/E pairs
    std::size_t instants = 0;   ///< 'i' records
    std::size_t tracks = 0;     ///< distinct (pid, tid) rows with events
};

/**
 * Validate a parsed Chrome trace: a traceEvents array where, per
 * (pid, tid) track, B/E events match up LIFO with non-decreasing
 * timestamps and every span closes inside its parent.
 */
TraceCheck validateTrace(const JsonValue &root);

/** Human-readable report for `eh_trace summary`. */
std::string summarizeTrace(const JsonValue &root,
                           std::size_t topSpans = 10);

} // namespace eh::obs

#endif // EH_OBS_SUMMARY_HH
