#include "obs/export.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "obs/metrics.hh"
#include "util/panic.hh"

namespace eh::obs {

namespace {

/** Wall tracks render under pid 1, virtual (cycle-clock) under pid 2. */
constexpr int wallPid = 1;
constexpr int virtualPid = 2;

std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; s && *s; ++s) {
        const char c = *s;
        if (c == '"')
            out += "\\\"";
        else if (c == '\\')
            out += "\\\\";
        else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    return jsonEscape(s.c_str());
}

/** Timestamps: wall events ns -> us; virtual events 1 cycle = 1 us. */
double
toMicros(std::uint64_t t, bool virtualClock)
{
    return virtualClock ? static_cast<double>(t)
                        : static_cast<double>(t) / 1000.0;
}

void
writeArgs(std::ostream &out, const TraceEvent &e)
{
    out << "\"args\":{";
    for (std::uint8_t i = 0; i < e.argCount; ++i) {
        if (i)
            out << ",";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", e.args[i].value);
        out << "\"" << jsonEscape(e.args[i].key) << "\":" << buf;
    }
    out << "}";
}

void
writeEventCommon(std::ostream &out, char ph, int pid, std::uint32_t tid,
                 double ts)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", ts);
    out << "{\"ph\":\"" << ph << "\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"ts\":" << buf;
}

} // namespace

void
writeChromeTrace(const TraceSnapshot &snapshot, std::ostream &out)
{
    out << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out << ",\n";
        first = false;
    };

    // Metadata: process and track names.
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << wallPid
        << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
           "\"workers (wall clock, us)\"}}";
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << virtualPid
        << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
           "\"simulated devices (cycles)\"}}";
    for (const TrackInfo &track : snapshot.tracks) {
        sep();
        out << "{\"ph\":\"M\",\"pid\":"
            << (track.virtualClock ? virtualPid : wallPid)
            << ",\"tid\":" << track.id
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << jsonEscape(track.name) << "\"}}";
    }
    if (snapshot.dropped > 0) {
        sep();
        out << "{\"ph\":\"M\",\"pid\":" << wallPid
            << ",\"tid\":0,\"name\":\"trace_dropped_events\",\"args\":"
               "{\"count\":"
            << snapshot.dropped << "}}";
    }

    // Partition events by track.
    std::map<std::uint32_t, std::vector<const TraceEvent *>> spans;
    std::map<std::uint32_t, std::vector<const TraceEvent *>> instants;
    for (const TraceEvent &e : snapshot.events) {
        if (e.kind == EventKind::Span)
            spans[e.track].push_back(&e);
        else
            instants[e.track].push_back(&e);
    }
    auto trackInfo = [&](std::uint32_t id) -> const TrackInfo & {
        // snapshot.tracks is indexed by id by construction.
        EH_ASSERT(id < snapshot.tracks.size(),
                  "trace event on unknown track");
        return snapshot.tracks[id];
    };

    // Spans as properly nested B/E pairs, per track: sort by start
    // (ties: longer span first, then recording order) and walk with a
    // stack, closing every span that ends before the next one begins.
    for (auto &[trackId, list] : spans) {
        const TrackInfo &track = trackInfo(trackId);
        const int pid = track.virtualClock ? virtualPid : wallPid;
        std::sort(list.begin(), list.end(),
                  [](const TraceEvent *a, const TraceEvent *b) {
                      if (a->start != b->start)
                          return a->start < b->start;
                      if (a->dur != b->dur)
                          return a->dur > b->dur;
                      // Equal extent: later-recorded first. A parent
                      // emitted after its children (period spans, RAII
                      // scopes unwinding) must open before them.
                      return a->seq > b->seq;
                  });
        std::vector<std::uint64_t> stack; ///< open spans' end times
        auto close = [&](std::uint64_t end) {
            writeEventCommon(out, 'E', pid, trackId,
                             toMicros(end, track.virtualClock));
            out << "}";
            stack.pop_back();
        };
        for (const TraceEvent *e : list) {
            while (!stack.empty() && stack.back() <= e->start) {
                sep();
                close(stack.back());
            }
            // A sibling overlapping its enclosing span would break
            // nesting; truncate it (only reachable when repeated runs
            // share one virtual track).
            std::uint64_t end = e->start + e->dur;
            if (!stack.empty() && end > stack.back())
                end = stack.back();
            sep();
            writeEventCommon(out, 'B', pid, trackId,
                             toMicros(e->start, track.virtualClock));
            out << ",\"name\":\"" << jsonEscape(e->name)
                << "\",\"cat\":\"" << categoryName(e->cat) << "\",";
            writeArgs(out, *e);
            out << "}";
            stack.push_back(end);
        }
        while (!stack.empty()) {
            sep();
            close(stack.back());
        }
    }

    // Instant events ('i', thread scope).
    for (auto &[trackId, list] : instants) {
        const TrackInfo &track = trackInfo(trackId);
        const int pid = track.virtualClock ? virtualPid : wallPid;
        std::sort(list.begin(), list.end(),
                  [](const TraceEvent *a, const TraceEvent *b) {
                      if (a->start != b->start)
                          return a->start < b->start;
                      return a->seq < b->seq;
                  });
        for (const TraceEvent *e : list) {
            sep();
            writeEventCommon(out, 'i', pid, trackId,
                             toMicros(e->start, track.virtualClock));
            out << ",\"s\":\"t\",\"name\":\"" << jsonEscape(e->name)
                << "\",\"cat\":\"" << categoryName(e->cat) << "\",";
            writeArgs(out, *e);
            out << "}";
        }
    }

    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
writeChromeTraceFile(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatalf("cannot write trace file '", path, "'");
    writeChromeTrace(TraceSink::instance().snapshot(), out);
    if (!out.good())
        fatalf("error while writing trace file '", path, "'");
}

void
writeMetricsFile(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatalf("cannot write metrics file '", path, "'");
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        MetricsRegistry::global().writeCsv(out);
    else
        out << MetricsRegistry::global().toJson();
    if (!out.good())
        fatalf("error while writing metrics file '", path, "'");
}

} // namespace eh::obs
