#include "obs/summary.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/panic.hh"
#include "util/table.hh"

namespace eh::obs {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

/** Recursive-descent JSON parser over a string view of the input. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text_) : text(text_) {}

    JsonValue parse()
    {
        JsonValue v = value();
        skipSpace();
        if (pos != text.size())
            fail("trailing content after the JSON document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &why) const
    {
        fatalf("JSON parse error at byte ", pos, ": ", why);
    }

    void skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    char peek()
    {
        skipSpace();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    JsonValue value()
    {
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
          case 'f':
            return boolean();
          case 'n':
            return null();
          default:
            return number();
        }
    }

    JsonValue object()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            JsonValue key = string();
            expect(':');
            v.object.emplace_back(std::move(key.str), value());
            const char c = peek();
            ++pos;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue array()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.array.push_back(value());
            const char c = peek();
            ++pos;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    JsonValue string()
    {
        expect('"');
        JsonValue v;
        v.type = JsonValue::Type::String;
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return v;
            if (c == '\\') {
                if (pos >= text.size())
                    fail("unterminated escape");
                const char e = text[pos++];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    v.str += e;
                    break;
                  case 'b':
                    v.str += '\b';
                    break;
                  case 'f':
                    v.str += '\f';
                    break;
                  case 'n':
                    v.str += '\n';
                    break;
                  case 'r':
                    v.str += '\r';
                    break;
                  case 't':
                    v.str += '\t';
                    break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad hex digit in \\u escape");
                    }
                    // UTF-8 encode (surrogate pairs not recombined —
                    // our own traces never emit them).
                    if (code < 0x80) {
                        v.str += static_cast<char>(code);
                    } else if (code < 0x800) {
                        v.str += static_cast<char>(0xC0 | (code >> 6));
                        v.str +=
                            static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        v.str += static_cast<char>(0xE0 | (code >> 12));
                        v.str += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F));
                        v.str +=
                            static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape character");
                }
            } else {
                v.str += c;
            }
        }
        fail("unterminated string");
    }

    JsonValue boolean()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (text.compare(pos, 4, "true") == 0) {
            v.boolean = true;
            pos += 4;
        } else if (text.compare(pos, 5, "false") == 0) {
            v.boolean = false;
            pos += 5;
        } else {
            fail("expected 'true' or 'false'");
        }
        return v;
    }

    JsonValue null()
    {
        if (text.compare(pos, 4, "null") != 0)
            fail("expected 'null'");
        pos += 4;
        return JsonValue{};
    }

    JsonValue number()
    {
        const std::size_t begin = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '-' ||
                text[pos] == '+')) {
            ++pos;
        }
        if (pos == begin)
            fail("expected a value");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        char *end = nullptr;
        v.number = std::strtod(text.c_str() + begin, &end);
        if (end != text.c_str() + pos)
            fail("malformed number");
        return v;
    }

    const std::string &text;
    std::size_t pos = 0;
};

/** One open span on a track's validation stack. */
struct OpenSpan
{
    std::string name;
    double ts = 0.0;
};

std::string
eventStr(const JsonValue &e, const std::string &key)
{
    const JsonValue *v = e.find(key);
    return v && v->type == JsonValue::Type::String ? v->str
                                                   : std::string();
}

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

TraceCheck
validateTrace(const JsonValue &root)
{
    TraceCheck check;
    const JsonValue *events = root.find("traceEvents");
    if (!events || events->type != JsonValue::Type::Array) {
        check.error = "missing 'traceEvents' array";
        return check;
    }
    std::map<std::pair<int, int>, std::vector<OpenSpan>> stacks;
    std::map<std::pair<int, int>, double> lastTs;
    for (const JsonValue &e : events->array) {
        if (e.type != JsonValue::Type::Object) {
            check.error = "trace record is not an object";
            return check;
        }
        ++check.events;
        const std::string ph = eventStr(e, "ph");
        if (ph == "M")
            continue; // metadata carries no timeline structure
        const JsonValue *pidV = e.find("pid");
        const JsonValue *tidV = e.find("tid");
        const JsonValue *tsV = e.find("ts");
        if (!pidV || !tidV || !tsV) {
            check.error = "event missing pid/tid/ts";
            return check;
        }
        const std::pair<int, int> track{
            static_cast<int>(pidV->num()),
            static_cast<int>(tidV->num())};
        const double ts = tsV->num();
        auto &stack = stacks[track];
        auto last = lastTs.find(track);
        if (last != lastTs.end() && ph != "i" && ts < last->second) {
            check.error = "timestamps regress on a track";
            return check;
        }
        if (ph != "i")
            lastTs[track] = ts;
        if (ph == "B") {
            stack.push_back(OpenSpan{eventStr(e, "name"), ts});
        } else if (ph == "E") {
            if (stack.empty()) {
                check.error = "'E' with no open 'B' on its track";
                return check;
            }
            if (ts < stack.back().ts) {
                check.error = "span ends before it begins";
                return check;
            }
            stack.pop_back();
            ++check.spans;
        } else if (ph == "i" || ph == "I") {
            ++check.instants;
        } else if (ph == "X") {
            ++check.spans; // complete events carry their own duration
        } else {
            check.error = "unknown event phase '" + ph + "'";
            return check;
        }
    }
    for (const auto &[track, stack] : stacks) {
        if (!stack.empty()) {
            check.error = "unclosed span '" + stack.back().name + "'";
            return check;
        }
    }
    check.tracks = stacks.size();
    check.ok = true;
    return check;
}

std::string
summarizeTrace(const JsonValue &root, std::size_t topSpans)
{
    struct NameStats
    {
        double total = 0.0; ///< us (wall) or cycles (virtual)
        std::size_t count = 0;
        double cycles = 0.0; ///< summed "cycles" args
        double energy = 0.0; ///< summed "energy" args
    };
    struct TrackAccum
    {
        std::string name;
        int pid = 0;
        double busy = 0.0; ///< top-level span time
        double first = 0.0;
        double last = 0.0;
        bool any = false;
        std::vector<std::pair<std::string, double>> open;
    };

    const JsonValue *events = root.find("traceEvents");
    if (!events || events->type != JsonValue::Type::Array)
        fatal("trace has no 'traceEvents' array");

    std::map<std::pair<int, int>, TrackAccum> tracks;
    std::map<std::string, NameStats> wallNames;
    std::map<std::string, NameStats> phaseNames; ///< virtual (pid 2)

    for (const JsonValue &e : events->array) {
        const std::string ph = eventStr(e, "ph");
        const int pid =
            static_cast<int>(e.find("pid") ? e.find("pid")->num() : 0);
        const int tid =
            static_cast<int>(e.find("tid") ? e.find("tid")->num() : 0);
        auto &track = tracks[{pid, tid}];
        track.pid = pid;
        if (ph == "M") {
            if (eventStr(e, "name") == "thread_name") {
                if (const JsonValue *args = e.find("args"))
                    if (const JsonValue *n = args->find("name"))
                        track.name = n->str;
            }
            continue;
        }
        const double ts = e.find("ts") ? e.find("ts")->num() : 0.0;
        if (!track.any || ts < track.first)
            track.first = ts;
        if (!track.any || ts > track.last)
            track.last = ts;
        track.any = true;
        if (ph == "B") {
            track.open.emplace_back(eventStr(e, "name"), ts);
            if (const JsonValue *args = e.find("args")) {
                auto &names =
                    pid == 2 ? phaseNames : wallNames;
                NameStats &ns = names[eventStr(e, "name")];
                if (const JsonValue *c = args->find("cycles"))
                    ns.cycles += c->num();
                if (const JsonValue *en = args->find("energy"))
                    ns.energy += en->num();
            }
        } else if (ph == "E" && !track.open.empty()) {
            const auto [name, began] = track.open.back();
            track.open.pop_back();
            const double dur = ts - began;
            auto &names = pid == 2 ? phaseNames : wallNames;
            NameStats &ns = names[name];
            ns.total += dur;
            ++ns.count;
            // Only top-level spans count as "busy" so nested spans are
            // not double-charged to utilization.
            if (track.open.empty())
                track.busy += dur;
        }
    }

    std::ostringstream oss;

    auto printTop = [&](const char *title,
                        const std::map<std::string, NameStats> &names,
                        const char *unit) {
        if (names.empty())
            return;
        std::vector<std::pair<std::string, NameStats>> sorted(
            names.begin(), names.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.total > b.second.total;
                  });
        if (sorted.size() > topSpans)
            sorted.resize(topSpans);
        oss << title << "\n";
        Table t({"span", std::string("total ") + unit, "count",
                 "cycles", "energy"});
        for (const auto &[name, ns] : sorted) {
            t.row({name, Table::num(ns.total, 1),
                   std::to_string(ns.count), Table::num(ns.cycles, 0),
                   Table::num(ns.energy, 2)});
        }
        t.print(oss);
        oss << "\n";
    };

    printTop("Top wall-clock spans (workers):", wallNames, "us");
    printTop("Simulated phase breakdown (cycles):", phaseNames,
             "cycles");

    bool anyWorker = false;
    Table ut({"worker", "span (us)", "busy (us)", "utilization"});
    for (const auto &[key, track] : tracks) {
        if (track.pid != 1 || !track.any)
            continue;
        anyWorker = true;
        const double span = track.last - track.first;
        ut.row({track.name.empty()
                    ? "tid " + std::to_string(key.second)
                    : track.name,
                Table::num(span, 1), Table::num(track.busy, 1),
                span > 0.0 ? Table::pct(track.busy / span) : "-"});
    }
    if (anyWorker) {
        oss << "Per-worker utilization (top-level span time / track "
               "span):\n";
        ut.print(oss);
    }
    return oss.str();
}

} // namespace eh::obs
