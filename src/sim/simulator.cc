#include "sim/simulator.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/log.hh"
#include "util/panic.hh"

namespace eh::sim {

namespace {

/** Magic word marking a valid checkpoint slot header. */
constexpr std::uint32_t checkpointMagic = 0xE4C0FFEE;

} // namespace

double
SimStats::measuredProgress() const
{
    const double total = meter.totalEnergy();
    if (total <= 0.0)
        return 0.0;
    return meter.energy(energy::Phase::Progress) / total;
}

core::ObservedBehavior
SimStats::observe(const SimConfig &config,
                  std::uint64_t charged_arch_bytes) const
{
    core::ObservedBehavior o;
    o.name = workload + "/" + policy;
    o.energyPerPeriod = periodEnergy.count() ? periodEnergy.mean() : 0.0;

    // Prefer the measured execution energy per committed cycle; fall back
    // to the configured base rate when nothing committed.
    const auto prog_cycles = meter.cycles(energy::Phase::Progress);
    o.execEnergy = prog_cycles
                       ? meter.energy(energy::Phase::Progress) /
                             static_cast<double>(prog_cycles)
                       : config.costs.execEnergyPerCycle;
    o.chargeEnergy = 0.0; // caller overrides for harvesting supplies

    o.meanBackupPeriod = tauB.count() ? tauB.mean() : 1.0;
    // Dead cycles per period, in energy-equivalent terms: execution lost
    // to power failures plus backups that browned out before committing
    // (both are spent without being saved — exactly the model's e_D).
    const double dead_equivalent_energy =
        meter.energy(energy::Phase::Dead) + failedBackupEnergy;
    o.meanDeadCycles =
        periods > 0 && o.execEnergy > 0.0
            ? dead_equivalent_energy / static_cast<double>(periods) /
                  o.execEnergy
            : (tauD.count() ? tauD.mean() : 0.0);
    // alpha_B via ratio of means: the model prices a backup at
    // Omega * (A_B + alpha_B * tauB_mean), so alpha_B must satisfy that
    // identity for the *mean* backup. (A mean of per-backup ratios
    // explodes when a policy occasionally backs up in quick succession.)
    const double mean_backup_bytes =
        backupBytes.count() ? backupBytes.mean() : 0.0;
    o.meanAppStateRate =
        o.meanBackupPeriod > 0.0
            ? std::max(0.0, (mean_backup_bytes -
                             static_cast<double>(charged_arch_bytes)) /
                               o.meanBackupPeriod)
            : 0.0;
    o.archStateBytes = static_cast<double>(charged_arch_bytes);
    o.restoreStateBytes = restoreBytes.count() ? restoreBytes.mean()
                                               : o.archStateBytes;

    const auto costs = mem::defaultCosts(config.nvmTech);
    o.backupCost = costs.writeEnergyPerByte;
    o.restoreCost = costs.readEnergyPerByte;
    o.backupBandwidth = costs.writeBandwidth;
    o.restoreBandwidth = costs.readBandwidth;
    o.measuredProgress = measuredProgress();
    return o;
}

std::string
SimStats::summary() const
{
    std::ostringstream oss;
    oss << workload << " under " << policy << ": " << periods
        << " periods, " << backups << " backups, " << restores
        << " restores, " << powerFailures << " power failures"
        << (finished ? " (finished)" : " (NOT finished)") << "\n"
        << "  progress " << measuredProgress() * 100.0 << "%"
        << ", mean tau_B " << (tauB.count() ? tauB.mean() : 0.0)
        << ", mean tau_D " << (tauD.count() ? tauD.mean() : 0.0)
        << ", mean alpha_B " << (alphaB.count() ? alphaB.mean() : 0.0)
        << "\n";
    if (!triggers.empty()) {
        oss << "  backup triggers:";
        for (const auto &[trigger, count] : triggers)
            oss << ' ' << arch::backupTriggerName(trigger) << '='
                << count;
        oss << "\n";
    }
    oss << meter.report();
    return oss.str();
}

Simulator::Simulator(const arch::Program &program,
                     runtime::BackupPolicy &policy,
                     energy::EnergySupply &supply, const SimConfig &config)
    : prog(program), pol(policy), sup(supply), cfg(config),
      mem_(config.sramBytes, config.nvmBytes, config.nvmTech),
      cpu_(program, mem_, config.costs)
{
    if (cfg.sramUsedBytes > cfg.sramBytes)
        fatalf("Simulator: payload region (", cfg.sramUsedBytes,
               ") exceeds SRAM (", cfg.sramBytes, ")");
    // Checkpoint region: header (8) + arch state + payload capacity,
    // double-buffered, plus a selector word at the very top of NVM.
    slotBytes = 8 + arch::Cpu::archStateBytes + cfg.sramUsedBytes;
    const std::uint64_t region = 2 * slotBytes + 16;
    if (region + 1024 > cfg.nvmBytes)
        fatalf("Simulator: NVM (", cfg.nvmBytes,
               " bytes) too small for the checkpoint region (", region,
               " bytes) plus workload data");
    selectorAddr = cfg.nvmBytes - 8;
    slot0Addr = cfg.nvmBytes - 16 - 2 * slotBytes;
    if (cfg.enableNvmCache)
        mem_.attachNvmCache(cfg.cacheGeometry);
}

runtime::SupplyView
Simulator::view() const
{
    return {sup.storedEnergy(), sup.periodBudget()};
}

void
Simulator::handlePowerFailure()
{
    stats.tauD.add(static_cast<double>(stats.meter.uncommittedCycles()));
    stats.meter.discard();
    ++stats.powerFailures;
    cpu_.powerFail();
    mem_.powerFail();
    pol.onPowerFail();
}

double
Simulator::consumeTracked(double demand, std::uint64_t cycles, bool &ok)
{
    const double before = sup.storedEnergy();
    ok = sup.consume(demand, cycles);
    if (ok)
        return demand;
    return std::max(0.0, before - sup.storedEnergy());
}

Simulator::ActionStatus
Simulator::chargeMonitorOverhead(const runtime::PolicyDecision &d)
{
    if (d.monitorCycles == 0 && d.monitorEnergy == 0.0)
        return ActionStatus::Ok;
    const std::uint64_t cycles = std::max<std::uint64_t>(d.monitorCycles, 1);
    bool ok = false;
    const double spent = consumeTracked(d.monitorEnergy, cycles, ok);
    periodEnergyConsumed += spent;
    stats.meter.add(energy::Phase::Monitor, cycles, spent);
    if (!ok) {
        handlePowerFailure();
        return ActionStatus::BrownOut;
    }
    return ActionStatus::Ok;
}

Simulator::ActionStatus
Simulator::doBackup(arch::BackupTrigger reason)
{
    const std::uint64_t arch_bytes = pol.chargedArchBytes();
    std::uint64_t app_bytes = pol.chargedAppBackupBytes();
    if (mem_.hasNvmCache()) {
        // A mixed-volatility backup must also flush the cache's dirty
        // blocks to NVM, at block granularity (Section VI-A).
        app_bytes += mem_.drainCache().bytesBlock;
    }
    const std::uint64_t charged = arch_bytes + app_bytes;
    const auto wcost = mem_.nvm().writeCost(charged);
    const std::uint64_t cycles = std::max<std::uint64_t>(wcost.cycles, 1);

    bool ok = false;
    const double spent = consumeTracked(wcost.energy, cycles, ok);
    periodEnergyConsumed += spent;
    stats.meter.add(energy::Phase::Backup, cycles, spent);
    if (!ok) {
        ++stats.failedBackups;
        stats.failedBackupEnergy += spent;
        handlePowerFailure(); // old checkpoint slot stays valid
        return ActionStatus::BrownOut;
    }

    // Physically materialize the checkpoint in the inactive slot, then
    // flip the selector (atomic single-word commit).
    const std::uint32_t target = activeSlot == 1 ? 2 : 1;
    const std::uint64_t base = slot0Addr + (target - 1) * slotBytes;
    const std::uint32_t payload_len =
        pol.savesVolatilePayload()
            ? static_cast<std::uint32_t>(cfg.sramUsedBytes)
            : 0;
    mem_.nvm().store32(base, checkpointMagic);
    mem_.nvm().store32(base + 4, payload_len);
    std::uint8_t arch_buf[arch::Cpu::archStateBytes];
    cpu_.saveArchState(arch_buf);
    mem_.nvm().write(base + 8, arch_buf, sizeof(arch_buf));
    if (payload_len > 0) {
        std::vector<std::uint8_t> payload(payload_len);
        mem_.sram().read(0, payload.data(), payload.size());
        mem_.nvm().write(base + 8 + sizeof(arch_buf), payload.data(),
                         payload.size());
    }
    mem_.nvm().store32(selectorAddr, target);
    activeSlot = target;

    ++stats.backups;
    ++stats.triggers[reason];
    if (cyclesSinceBackup > 0) {
        stats.tauB.add(static_cast<double>(cyclesSinceBackup));
        stats.alphaB.add(static_cast<double>(app_bytes) /
                         static_cast<double>(cyclesSinceBackup));
    }
    stats.backupBytes.add(static_cast<double>(charged));
    stats.meter.commit();
    cyclesSinceBackup = 0;
    pol.onBackupCommitted(view());
    return ActionStatus::Ok;
}

Simulator::ActionStatus
Simulator::doRestore()
{
    // The selector word is the authoritative (nonvolatile) record.
    activeSlot = mem_.nvm().load32(selectorAddr);
    if (activeSlot == 0) {
        // First boot (no checkpoint yet): restart from the program image,
        // re-applying initial data — a reboot re-initializes volatile
        // data from the (nonvolatile) program image at no modeled cost.
        cpu_.reset();
        cpu_.applyMemInits();
        return ActionStatus::Ok;
    }
    EH_ASSERT(activeSlot == 1 || activeSlot == 2,
              "corrupt checkpoint selector");
    const std::uint64_t base = slot0Addr + (activeSlot - 1) * slotBytes;
    EH_ASSERT(mem_.nvm().load32(base) == checkpointMagic,
              "active checkpoint slot lacks its magic word");
    const std::uint32_t payload_len = mem_.nvm().load32(base + 4);

    const std::uint64_t charged = pol.chargedArchBytes() + payload_len;
    const auto rcost = mem_.nvm().readCost(charged);
    const std::uint64_t cycles = std::max<std::uint64_t>(rcost.cycles, 1);
    bool ok = false;
    const double spent = consumeTracked(rcost.energy, cycles, ok);
    periodEnergyConsumed += spent;
    stats.meter.add(energy::Phase::Restore, cycles, spent);
    if (!ok) {
        ++stats.failedRestores;
        handlePowerFailure();
        return ActionStatus::BrownOut;
    }

    std::uint8_t arch_buf[arch::Cpu::archStateBytes];
    mem_.nvm().read(base + 8, arch_buf, sizeof(arch_buf));
    cpu_.loadArchState(arch_buf);
    if (payload_len > 0) {
        std::vector<std::uint8_t> payload(payload_len);
        mem_.nvm().read(base + 8 + sizeof(arch_buf), payload.data(),
                        payload.size());
        mem_.sram().write(0, payload.data(), payload.size());
    }
    ++stats.restores;
    stats.restoreBytes.add(static_cast<double>(charged));
    return ActionStatus::Ok;
}

SimStats
Simulator::run()
{
    stats = SimStats{};
    stats.workload = prog.name;
    stats.policy = pol.name();
    cpu_.applyMemInits();

    while (!stats.finished && stats.periods < cfg.maxActivePeriods) {
        const std::uint64_t charged =
            sup.chargeUntilReady(cfg.maxChargeCyclesPerPeriod);
        if (charged == energy::chargeFailed) {
            warn("simulator: supply starved during charging; stopping");
            break;
        }
        stats.chargeCycles.add(static_cast<double>(charged));
        ++stats.periods;
        periodEnergyConsumed = 0.0;
        const auto progress_cycles_at_start =
            stats.meter.cycles(energy::Phase::Progress);
        const auto progress_energy_at_start =
            stats.meter.energy(energy::Phase::Progress);

        if (doRestore() != ActionStatus::Ok) {
            stats.periodEnergy.add(periodEnergyConsumed);
            continue; // died during restore; retry next period
        }
        pol.onRestore();
        cyclesSinceBackup = 0;

        std::uint64_t instrs = 0;
        bool period_ended = false;
        while (!period_ended) {
            if (++instrs > cfg.maxInstructionsPerPeriod) {
                panicf("simulator: period exceeded ",
                       cfg.maxInstructionsPerPeriod,
                       " instructions — runaway program or supply");
            }

            // Pre-step policy consultation (may demand backups).
            const arch::MemPeek peek = cpu_.peek();
            int guard = 0;
            for (;;) {
                const auto d = pol.beforeStep(cpu_, peek, view());
                if (chargeMonitorOverhead(d) != ActionStatus::Ok) {
                    period_ended = true;
                    break;
                }
                if (d.action == runtime::PolicyAction::Continue)
                    break;
                if (doBackup(d.reason) != ActionStatus::Ok) {
                    period_ended = true;
                    break;
                }
                if (d.action == runtime::PolicyAction::BackupAndSleep) {
                    sup.hibernate();
                    period_ended = true;
                    break;
                }
                if (++guard > 8)
                    panic("policy demands backups without making "
                          "progress");
            }
            if (period_ended)
                break;

            // Execute one instruction and pay for it.
            const arch::StepResult step = cpu_.step();
            bool ok = false;
            const double spent =
                consumeTracked(step.energy, step.cycles, ok);
            periodEnergyConsumed += spent;
            stats.meter.addUncommitted(step.cycles, spent);
            cyclesSinceBackup += step.cycles;
            if (!ok) {
                handlePowerFailure();
                break;
            }
            pol.afterStep(cpu_, step);

            if (step.checkpointRequested) {
                const auto d = pol.onCheckpointOp(view());
                if (chargeMonitorOverhead(d) != ActionStatus::Ok)
                    break;
                if (d.action != runtime::PolicyAction::Continue) {
                    if (doBackup(d.reason) != ActionStatus::Ok)
                        break;
                    if (d.action ==
                        runtime::PolicyAction::BackupAndSleep) {
                        sup.hibernate();
                        break;
                    }
                }
            }

            if (step.halted) {
                // Commit the final state; on failure the next period
                // re-executes from the last checkpoint.
                if (doBackup(arch::BackupTrigger::None) ==
                    ActionStatus::Ok) {
                    stats.finished = true;
                }
                break;
            }
        }
        stats.periodEnergy.add(periodEnergyConsumed);
        stats.periodProgressCycles.add(static_cast<double>(
            stats.meter.cycles(energy::Phase::Progress) -
            progress_cycles_at_start));
        if (periodEnergyConsumed > 0.0) {
            stats.periodProgress.add(
                (stats.meter.energy(energy::Phase::Progress) -
                 progress_energy_at_start) /
                periodEnergyConsumed);
        }
    }
    return stats;
}

std::uint32_t
Simulator::resultWord(std::uint64_t addr)
{
    mem::MemAccessResult cost;
    return mem_.load32(addr, &cost);
}

GoldenResult
runGolden(const arch::Program &program, const SimConfig &config,
          const std::vector<std::uint64_t> &result_addrs,
          std::uint64_t max_instructions)
{
    mem::AddressSpace memory(config.sramBytes, config.nvmBytes,
                             config.nvmTech);
    arch::Cpu cpu(program, memory, config.costs);
    cpu.applyMemInits();
    cpu.reset();

    GoldenResult g;
    while (!cpu.halted()) {
        if (g.instructions >= max_instructions)
            fatalf("runGolden: program '", program.name,
                   "' exceeded ", max_instructions, " instructions");
        const auto step = cpu.step();
        ++g.instructions;
        g.cycles += step.cycles;
        g.energy += step.energy;
    }
    g.halted = true;
    for (const auto addr : result_addrs) {
        mem::MemAccessResult cost;
        g.resultWords.push_back(memory.load32(addr, &cost));
    }
    return g;
}

} // namespace eh::sim
