#include "sim/simulator.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "fault/injector.hh"
#include "obs/trace.hh"
#include "util/crc.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace eh::sim {

namespace {

/** Process-wide Auto fallback, settable from a CLI (--engine). */
std::atomic<ExecEngine> defaultEngine{ExecEngine::Auto};

/** Magic word marking a valid checkpoint slot header. */
constexpr std::uint32_t checkpointMagic = 0xE4C0FFEE;

// Slot layout (offsets from the slot base; header 16 bytes total):
//   +0  magic   +4  crc32 of [+8, slotBytes)   +8  payload length
//   +12 sequence number   +16 arch state   +16+arch  volatile payload
constexpr std::uint64_t slotCrcOffset = 4;
constexpr std::uint64_t slotLenOffset = 8;
constexpr std::uint64_t slotSeqOffset = 12;
constexpr std::uint64_t slotBodyOffset = 8; ///< CRC covers from here on

} // namespace

const char *
execEngineName(ExecEngine engine)
{
    switch (engine) {
      case ExecEngine::Auto:
        return "auto";
      case ExecEngine::Scalar:
        return "scalar";
      case ExecEngine::Block:
        return "block";
    }
    return "unknown";
}

ExecEngine
parseExecEngine(const std::string &name)
{
    if (name == "auto")
        return ExecEngine::Auto;
    if (name == "scalar")
        return ExecEngine::Scalar;
    if (name == "block")
        return ExecEngine::Block;
    fatalf("unknown execution engine '", name,
           "' (expected auto, scalar or block)");
}

void
setDefaultExecEngine(ExecEngine engine)
{
    defaultEngine.store(engine, std::memory_order_relaxed);
}

ExecEngine
resolveExecEngine(ExecEngine configured)
{
    if (configured != ExecEngine::Auto)
        return configured;
    if (const char *env = std::getenv("EH_EXEC_ENGINE")) {
        const ExecEngine e = parseExecEngine(env);
        if (e != ExecEngine::Auto)
            return e;
    }
    const ExecEngine def = defaultEngine.load(std::memory_order_relaxed);
    return def == ExecEngine::Auto ? ExecEngine::Block : def;
}

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Finished:
        return "finished";
      case Outcome::GaveUp:
        return "gave-up";
      case Outcome::Starved:
        return "starved";
      case Outcome::Livelock:
        return "livelock";
      case Outcome::Fault:
        return "fault";
    }
    return "unknown";
}

double
SimStats::measuredProgress() const
{
    const double total = meter.totalEnergy();
    if (total <= 0.0)
        return 0.0;
    return meter.energy(energy::Phase::Progress) / total;
}

core::ObservedBehavior
SimStats::observe(const SimConfig &config,
                  std::uint64_t charged_arch_bytes) const
{
    core::ObservedBehavior o;
    o.name = workload + "/" + policy;
    o.energyPerPeriod = periodEnergy.count() ? periodEnergy.mean() : 0.0;

    // Prefer the measured execution energy per committed cycle; fall back
    // to the configured base rate when nothing committed.
    const auto prog_cycles = meter.cycles(energy::Phase::Progress);
    o.execEnergy = prog_cycles
                       ? meter.energy(energy::Phase::Progress) /
                             static_cast<double>(prog_cycles)
                       : config.costs.execEnergyPerCycle;
    o.chargeEnergy = 0.0; // caller overrides for harvesting supplies

    o.meanBackupPeriod = tauB.count() ? tauB.mean() : 1.0;
    // Dead cycles per period, in energy-equivalent terms: execution lost
    // to power failures plus backups that browned out before committing
    // (both are spent without being saved — exactly the model's e_D).
    const double dead_equivalent_energy =
        meter.energy(energy::Phase::Dead) + failedBackupEnergy;
    o.meanDeadCycles =
        periods > 0 && o.execEnergy > 0.0
            ? dead_equivalent_energy / static_cast<double>(periods) /
                  o.execEnergy
            : (tauD.count() ? tauD.mean() : 0.0);
    // alpha_B via ratio of means: the model prices a backup at
    // Omega * (A_B + alpha_B * tauB_mean), so alpha_B must satisfy that
    // identity for the *mean* backup. (A mean of per-backup ratios
    // explodes when a policy occasionally backs up in quick succession.)
    const double mean_backup_bytes =
        backupBytes.count() ? backupBytes.mean() : 0.0;
    o.meanAppStateRate =
        o.meanBackupPeriod > 0.0
            ? std::max(0.0, (mean_backup_bytes -
                             static_cast<double>(charged_arch_bytes)) /
                               o.meanBackupPeriod)
            : 0.0;
    o.archStateBytes = static_cast<double>(charged_arch_bytes);
    o.restoreStateBytes = restoreBytes.count() ? restoreBytes.mean()
                                               : o.archStateBytes;

    const auto costs = mem::defaultCosts(config.nvmTech);
    o.backupCost = costs.writeEnergyPerByte;
    o.restoreCost = costs.readEnergyPerByte;
    o.backupBandwidth = costs.writeBandwidth;
    o.restoreBandwidth = costs.readBandwidth;
    o.measuredProgress = measuredProgress();
    return o;
}

std::string
SimStats::summary() const
{
    std::ostringstream oss;
    oss << workload << " under " << policy << ": " << periods
        << " periods, " << backups << " backups, " << restores
        << " restores, " << powerFailures << " power failures"
        << " (outcome: " << outcomeName(outcome)
        << (gaveUp ? ", GAVE UP: restart bound hit" : "") << ")"
        << "\n"
        << "  faults: injected " << injectedPowerFailures
        << " power failures + " << injectedBitFlips
        << " bit flips; detected " << corruptionsDetected
        << " corruptions -> " << slotFallbacks << " slot fallbacks, "
        << restartsFromScratch << " restarts from scratch, "
        << transientRestoreFaults << " transient restore faults\n"
        << "  progress " << measuredProgress() * 100.0 << "%"
        << ", mean tau_B " << (tauB.count() ? tauB.mean() : 0.0)
        << ", mean tau_D " << (tauD.count() ? tauD.mean() : 0.0)
        << ", mean alpha_B " << (alphaB.count() ? alphaB.mean() : 0.0)
        << "\n";
    if (!triggers.empty()) {
        oss << "  backup triggers:";
        for (const auto &[trigger, count] : triggers)
            oss << ' ' << arch::backupTriggerName(trigger) << '='
                << count;
        oss << "\n";
    }
    oss << meter.report();
    return oss.str();
}

Simulator::Simulator(const arch::Program &program,
                     runtime::BackupPolicy &policy,
                     energy::EnergySupply &supply, const SimConfig &config)
    : prog(program), pol(policy), sup(supply), cfg(config),
      mem_(config.sramBytes, config.nvmBytes, config.nvmTech),
      cpu_(program, mem_, config.costs),
      engine_(resolveExecEngine(config.executionEngine))
{
    // Validate the whole configuration up front with actionable fatal()
    // messages, instead of tripping a panic() (or worse, silent
    // out-of-range arithmetic) deep inside run().
    if (cfg.sramUsedBytes > cfg.sramBytes)
        fatalf("Simulator: payload region (", cfg.sramUsedBytes,
               ") exceeds SRAM (", cfg.sramBytes, ")");
    if (cfg.maxActivePeriods == 0)
        fatal("Simulator: maxActivePeriods must be > 0");
    if (cfg.maxInstructionsPerPeriod == 0)
        fatal("Simulator: maxInstructionsPerPeriod must be > 0");
    if (cfg.enableNvmCache) {
        const auto &g = cfg.cacheGeometry;
        if (g.totalBytes == 0 || g.associativity == 0 ||
            g.blockBytes == 0) {
            fatalf("Simulator: cache geometry must be nonzero (size ",
                   g.totalBytes, ", ways ", g.associativity, ", block ",
                   g.blockBytes, ")");
        }
        if (g.totalBytes > cfg.nvmBytes)
            fatalf("Simulator: NVM cache (", g.totalBytes,
                   " bytes) larger than the NVM region it fronts (",
                   cfg.nvmBytes, " bytes)");
    }
    // Checkpoint region: header (magic, CRC, length, sequence) + arch
    // state + payload capacity, double-buffered, plus a selector word at
    // the very top of NVM. The workload needs nonzero NVM below it.
    slotBytes =
        checkpointSlotBytes(arch::Cpu::archStateBytes, cfg.sramUsedBytes);
    const std::uint64_t region = 2 * slotBytes + 16;
    if (region + 1024 > cfg.nvmBytes)
        fatalf("Simulator: NVM (", cfg.nvmBytes,
               " bytes) leaves no workload space under the checkpoint "
               "region (", region, " bytes + selector); need at least ",
               region + 1024, " bytes of NVM");
    selectorAddr = cfg.nvmBytes - 8;
    slot0Addr = cfg.nvmBytes - 16 - 2 * slotBytes;
    if (cfg.enableNvmCache)
        mem_.attachNvmCache(cfg.cacheGeometry);
}

void
Simulator::attachFaultInjector(fault::FaultInjector *injector)
{
    inj = injector;
    if (inj)
        inj->noteCheckpointRegion(slot0Addr, slotBytes, selectorAddr);
}

runtime::SupplyView
Simulator::view() const
{
    return {sup.storedEnergy(), sup.periodBudget()};
}

void
Simulator::traceFlushChunk(const char *fate)
{
    const std::uint64_t total = chunkExecCycles + chunkMonCycles;
    if (traceTrack == 0 || total == 0)
        return;
    obs::trace().spanTicks(
        traceTrack, obs::Category::Sim, fate, chunkStart, total,
        {{"cycles", static_cast<double>(chunkExecCycles)},
         {"energy", chunkExecEnergy},
         {"monitor_cycles", static_cast<double>(chunkMonCycles)},
         {"monitor_energy", chunkMonEnergy}});
    chunkExecCycles = 0;
    chunkMonCycles = 0;
    chunkExecEnergy = 0.0;
    chunkMonEnergy = 0.0;
    chunkStart = vnow;
}

void
Simulator::tracePhaseSpan(const char *name, std::uint64_t cycles,
                          double energy, std::uint64_t bytes)
{
    if (traceTrack == 0 || cycles == 0)
        return;
    // Callers advance vnow past the phase first; the span ends at vnow.
    obs::trace().spanTicks(traceTrack, obs::Category::Sim, name,
                           vnow - cycles, cycles,
                           {{"cycles", static_cast<double>(cycles)},
                            {"energy", energy},
                            {"bytes", static_cast<double>(bytes)}});
    if (chunkExecCycles + chunkMonCycles == 0)
        chunkStart = vnow;
}

void
Simulator::handlePowerFailure()
{
    if (traceTrack != 0) {
        traceFlushChunk("dead");
        obs::trace().instantTicks(
            traceTrack, obs::Category::Sim, "power-failure", vnow,
            {{"uncommitted_cycles",
              static_cast<double>(stats.meter.uncommittedCycles())}});
    }
    stats.tauD.add(static_cast<double>(stats.meter.uncommittedCycles()));
    stats.meter.discard();
    ++stats.powerFailures;
    cpu_.powerFail();
    mem_.powerFail();
    pol.onPowerFail();
}

double
Simulator::consumeTracked(double demand, std::uint64_t cycles, bool &ok)
{
    const double before = sup.storedEnergy();
    ok = sup.consume(demand, cycles);
    if (ok)
        return demand;
    return std::max(0.0, before - sup.storedEnergy());
}

Simulator::ActionStatus
Simulator::chargeMonitorOverhead(const runtime::PolicyDecision &d)
{
    if (d.monitorCycles == 0 && d.monitorEnergy == 0.0)
        return ActionStatus::Ok;
    const std::uint64_t cycles = std::max<std::uint64_t>(d.monitorCycles, 1);
    bool ok = false;
    const double spent = consumeTracked(d.monitorEnergy, cycles, ok);
    periodEnergyConsumed += spent;
    stats.meter.add(energy::Phase::Monitor, cycles, spent);
    if (traceTrack != 0) {
        if (chunkExecCycles + chunkMonCycles == 0)
            chunkStart = vnow;
        chunkMonCycles += cycles;
        chunkMonEnergy += spent;
        vnow += cycles;
    }
    if (!ok) {
        handlePowerFailure();
        return ActionStatus::BrownOut;
    }
    return ActionStatus::Ok;
}

std::vector<std::uint8_t>
Simulator::buildSlotImage(std::uint32_t payload_len, std::uint32_t seq)
{
    std::vector<std::uint8_t> image(checkpointSlotHeaderBytes +
                                    arch::Cpu::archStateBytes +
                                    payload_len);
    auto put32 = [&](std::uint64_t off, std::uint32_t v) {
        std::memcpy(image.data() + off, &v, 4);
    };
    put32(0, checkpointMagic);
    put32(slotLenOffset, payload_len);
    put32(slotSeqOffset, seq);
    cpu_.saveArchState(image.data() + checkpointSlotHeaderBytes);
    if (payload_len > 0) {
        mem_.sram().read(0,
                         image.data() + checkpointSlotHeaderBytes +
                             arch::Cpu::archStateBytes,
                         payload_len);
    }
    put32(slotCrcOffset, crc32(image.data() + slotBodyOffset,
                               image.size() - slotBodyOffset));
    return image;
}

bool
Simulator::slotValid(std::uint32_t slot) const
{
    const std::uint64_t base = slot0Addr + (slot - 1) * slotBytes;
    if (mem_.nvm().load32(base) != checkpointMagic)
        return false;
    const std::uint32_t payload_len = mem_.nvm().load32(base + slotLenOffset);
    if (payload_len > cfg.sramUsedBytes)
        return false; // length field itself corrupted
    const std::uint64_t body_len = checkpointSlotHeaderBytes -
                                   slotBodyOffset +
                                   arch::Cpu::archStateBytes + payload_len;
    std::vector<std::uint8_t> body(body_len);
    mem_.nvm().read(base + slotBodyOffset, body.data(), body.size());
    return crc32(body.data(), body.size()) ==
           mem_.nvm().load32(base + slotCrcOffset);
}

std::uint32_t
Simulator::slotSeq(std::uint32_t slot) const
{
    return mem_.nvm().load32(slot0Addr + (slot - 1) * slotBytes +
                             slotSeqOffset);
}

std::uint32_t
Simulator::newestValidSlot() const
{
    const bool v1 = slotValid(1);
    const bool v2 = slotValid(2);
    if (v1 && v2) {
        // Sequence numbers differ by exactly 1 between the two slots, so
        // wraparound-safe "newer" is the signed difference's sign.
        const std::int32_t d =
            static_cast<std::int32_t>(slotSeq(2) - slotSeq(1));
        return d > 0 ? 2 : 1;
    }
    if (v1)
        return 1;
    if (v2)
        return 2;
    return 0;
}

Simulator::ActionStatus
Simulator::doBackup(arch::BackupTrigger reason)
{
    const std::uint64_t attempt = backupAttempts++;
    const std::uint64_t arch_bytes = pol.chargedArchBytes();
    std::uint64_t app_bytes = pol.chargedAppBackupBytes();
    if (mem_.hasNvmCache()) {
        // A mixed-volatility backup must also flush the cache's dirty
        // blocks to NVM, at block granularity (Section VI-A).
        app_bytes += mem_.drainCache().bytesBlock;
    }
    const std::uint64_t charged = arch_bytes + app_bytes;
    const auto wcost = mem_.nvm().writeCost(charged);
    const std::uint64_t cycles = std::max<std::uint64_t>(wcost.cycles, 1);

    const std::uint32_t target = activeSlot == 1 ? 2 : 1;
    const std::uint64_t base = slot0Addr + (target - 1) * slotBytes;
    const std::uint32_t payload_len =
        pol.savesVolatilePayload()
            ? static_cast<std::uint32_t>(cfg.sramUsedBytes)
            : 0;

    // Injected power failure partway through the slot write: pay for the
    // cycles that ran, tear the inactive slot's image at the matching
    // byte offset, and die. The active slot is untouched — this is the
    // exact hazard double-buffering exists to survive.
    if (inj) {
        if (const auto fail_cycle = inj->backupFailure(attempt, cycles)) {
            const double frac = static_cast<double>(*fail_cycle) /
                                static_cast<double>(cycles);
            const std::uint64_t ran =
                std::max<std::uint64_t>(*fail_cycle, 1);
            bool ok = false;
            const double spent =
                consumeTracked(wcost.energy * frac, ran, ok);
            periodEnergyConsumed += spent;
            stats.meter.add(energy::Phase::Backup, ran, spent);
            ++stats.failedBackups;
            stats.failedBackupEnergy += spent;
            if (traceTrack != 0) {
                vnow += ran;
                tracePhaseSpan("backup-failed", ran, spent, charged);
                obs::trace().instantTicks(traceTrack,
                                          obs::Category::Fault,
                                          "fault:backup", vnow);
            }

            const auto image = buildSlotImage(payload_len, backupSeq + 1);
            const auto torn = static_cast<std::size_t>(
                frac * static_cast<double>(image.size()));
            if (torn > 0)
                mem_.nvm().write(base, image.data(), torn);
            handlePowerFailure(); // old checkpoint slot stays valid
            return ActionStatus::BrownOut;
        }
    }

    bool ok = false;
    const double spent = consumeTracked(wcost.energy, cycles, ok);
    periodEnergyConsumed += spent;
    stats.meter.add(energy::Phase::Backup, cycles, spent);
    if (traceTrack != 0) {
        vnow += cycles;
        if (!ok)
            tracePhaseSpan("backup-failed", cycles, spent, charged);
    }
    if (!ok) {
        ++stats.failedBackups;
        stats.failedBackupEnergy += spent;
        // The brown-out landed at some point of the slot write; tear the
        // inactive slot proportionally to the energy that actually went
        // in. The committed slot stays intact either way.
        const auto image = buildSlotImage(payload_len, backupSeq + 1);
        const auto torn = static_cast<std::size_t>(
            wcost.energy > 0.0
                ? (spent / wcost.energy) * static_cast<double>(image.size())
                : 0.0);
        if (torn > 0)
            mem_.nvm().write(base, image.data(),
                             std::min(torn, image.size()));
        handlePowerFailure();
        return ActionStatus::BrownOut;
    }

    // Physically materialize the checkpoint in the inactive slot, then
    // flip the selector (atomic single-word commit).
    const auto image = buildSlotImage(payload_len, backupSeq + 1);
    mem_.nvm().write(base, image.data(), image.size());

    if (inj) {
        // Power failure exactly at the selector flip: the slot is fully
        // written but the commit point itself is interrupted. The word
        // either keeps its old value or is torn into garbage.
        const auto flip = inj->selectorFlipFailure();
        if (flip != fault::SelectorFlipFault::None) {
            if (flip == fault::SelectorFlipFault::TornWrite)
                mem_.nvm().store32(selectorAddr,
                                   inj->tornSelectorValue());
            ++stats.failedBackups;
            if (traceTrack != 0) {
                tracePhaseSpan("backup-failed", cycles, spent, charged);
                obs::trace().instantTicks(traceTrack,
                                          obs::Category::Fault,
                                          "fault:selector", vnow);
            }
            handlePowerFailure();
            return ActionStatus::BrownOut;
        }
    }

    mem_.nvm().store32(selectorAddr, target);
    activeSlot = target;
    ++backupSeq;

    if (inj) {
        inj->corruptAfterBackup(mem_.nvm(), target);
        inj->applyWearFaults(mem_.nvm());
    }

    ++stats.backups;
    ++stats.triggers[reason];
    if (cyclesSinceBackup > 0) {
        stats.tauB.add(static_cast<double>(cyclesSinceBackup));
        stats.alphaB.add(static_cast<double>(app_bytes) /
                         static_cast<double>(cyclesSinceBackup));
    }
    stats.backupBytes.add(static_cast<double>(charged));
    stats.meter.commit();
    if (traceTrack != 0) {
        // Execution since the previous commit point survives: flush it
        // as "progress", then lay the backup span after it.
        traceFlushChunk("progress");
        tracePhaseSpan("backup", cycles, spent, charged);
    }
    cyclesSinceBackup = 0;
    pol.onBackupCommitted(view());
    return ActionStatus::Ok;
}

void
Simulator::restartFromScratch()
{
    // Last resort: a clean, *counted* restart from program start,
    // modeled as a reflash + first boot. The *whole* NVM array is wiped
    // back to zeros before the program image re-applies its initial
    // data: init records only cover explicitly initialized bytes, and
    // implicitly-zero regions the interrupted execution mutated in
    // place (NVM-data policies write there directly) would otherwise
    // leak stale state into the restarted run — a silent-wrong-answer
    // hazard the torture suite actually caught. Wiping also clears both
    // checkpoint slots and the selector word.
    ++stats.restartsFromScratch;
    if (traceTrack != 0)
        obs::trace().instantTicks(traceTrack, obs::Category::Sim,
                                  "restart-from-scratch", vnow);
    mem_.nvm().wipe();
    activeSlot = 0;
    cpu_.reset();
    cpu_.applyMemInits();
}

Simulator::ActionStatus
Simulator::doRestore()
{
    // Transient read faults (injected) abandon the attempt and retry a
    // bounded number of times without a power cycle; a device whose
    // reads never settle gives up the period like a brown-out.
    for (std::uint64_t attempt = 0; attempt <= cfg.restoreRetryLimit;
         ++attempt) {
        if (inj && inj->transientRestoreFault()) {
            ++stats.transientRestoreFaults;
            if (traceTrack != 0)
                obs::trace().instantTicks(traceTrack,
                                          obs::Category::Fault,
                                          "fault:restore-transient",
                                          vnow);
            pol.onRestoreFailed();
            continue;
        }
        return restoreAttempt();
    }
    ++stats.failedRestores;
    handlePowerFailure();
    return ActionStatus::BrownOut;
}

Simulator::ActionStatus
Simulator::restoreAttempt()
{
    // The selector word is the authoritative (nonvolatile) record — but
    // it may lie: a torn commit leaves garbage, a bit error can redirect
    // it, and the slot it designates may itself fail its CRC. Recovery
    // ladder (docs/FAULTS.md): designated slot -> other slot (only where
    // replay from an older checkpoint is sound) -> restart from scratch.
    const std::uint32_t selector = mem_.nvm().load32(selectorAddr);
    if (selector == 0 && newestValidSlot() == 0) {
        // True first boot (no checkpoint ever committed): start from the
        // program image, re-applying initial data — a reboot
        // re-initializes volatile data from the (nonvolatile) program
        // image at no modeled cost.
        activeSlot = 0;
        cpu_.reset();
        cpu_.applyMemInits();
        return ActionStatus::Ok;
    }

    if (selector == 1 || selector == 2) {
        if (slotValid(selector))
            return restoreFromSlot(selector, false, selector);
        // The designated slot is corrupt. Falling back to the *older*
        // slot replays committed work; that is only sound when the
        // checkpoint captures all mutable state (volatile-payload
        // policies — replay is then bit-identical). Policies whose
        // application state lives in NVM would replay against mutated
        // data, so they restart instead.
        ++stats.corruptionsDetected;
        if (traceTrack != 0)
            obs::trace().instantTicks(traceTrack, obs::Category::Fault,
                                      "checkpoint-corrupt", vnow);
        pol.onRestoreFailed();
        const std::uint32_t other = selector == 1 ? 2 : 1;
        if (pol.savesVolatilePayload() && slotValid(other)) {
            ++stats.slotFallbacks;
            return restoreFromSlot(other, true, selector);
        }
    } else {
        // Corrupt selector: garbage from a torn commit flip or a bit
        // error — including an error that zeroed it, which is why a
        // "first boot" selector with a surviving valid slot lands here
        // instead of silently replaying from program start. Restoring
        // the newest valid slot is sound only if it is the *frontier*
        // checkpoint (sequence >= newest written): a torn flip leaves
        // the fully-written newest slot, a post-commit bit error leaves
        // the newest committed one. If the newest valid slot is older
        // than that — the frontier slot was itself corrupted — falling
        // back to it replays committed work, which NVM-data policies
        // cannot survive (their one-generation re-execution guarantee
        // does not cover older checkpoints); they restart instead.
        ++stats.corruptionsDetected;
        if (traceTrack != 0)
            obs::trace().instantTicks(traceTrack, obs::Category::Fault,
                                      "checkpoint-corrupt", vnow);
        pol.onRestoreFailed();
        const std::uint32_t newest = newestValidSlot();
        if (newest != 0 && (pol.savesVolatilePayload() ||
                            slotSeq(newest) >= backupSeq)) {
            ++stats.slotFallbacks;
            return restoreFromSlot(newest, true, selector);
        }
    }

    if (stats.restartsFromScratch >= cfg.maxRestartsFromScratch) {
        warn("simulator: checkpoint recovery exceeded ",
             cfg.maxRestartsFromScratch,
             " restarts from scratch; giving up");
        stats.gaveUp = true;
        return ActionStatus::BrownOut;
    }
    restartFromScratch();
    return ActionStatus::Ok;
}

Simulator::ActionStatus
Simulator::restoreFromSlot(std::uint32_t slot, bool fallback,
                           std::uint32_t selector_was)
{
    const std::uint64_t base = slot0Addr + (slot - 1) * slotBytes;
    const std::uint32_t payload_len =
        mem_.nvm().load32(base + slotLenOffset);

    const std::uint64_t charged = pol.chargedArchBytes() + payload_len;
    const auto rcost = mem_.nvm().readCost(charged);
    const std::uint64_t cycles = std::max<std::uint64_t>(rcost.cycles, 1);

    // Injected power failure partway through the restore: pay for the
    // cycles that ran, then die. Volatile state was mid-load anyway, so
    // nothing needs tearing — the next period restores afresh.
    if (inj) {
        if (const auto fail_cycle = inj->restoreFailure(cycles)) {
            const double frac = static_cast<double>(*fail_cycle) /
                                static_cast<double>(cycles);
            const std::uint64_t ran =
                std::max<std::uint64_t>(*fail_cycle, 1);
            bool ok = false;
            const double spent =
                consumeTracked(rcost.energy * frac, ran, ok);
            periodEnergyConsumed += spent;
            stats.meter.add(energy::Phase::Restore, ran, spent);
            ++stats.failedRestores;
            if (traceTrack != 0) {
                vnow += ran;
                tracePhaseSpan("restore-failed", ran, spent, charged);
                obs::trace().instantTicks(traceTrack,
                                          obs::Category::Fault,
                                          "fault:restore", vnow);
            }
            handlePowerFailure();
            return ActionStatus::BrownOut;
        }
    }

    bool ok = false;
    const double spent = consumeTracked(rcost.energy, cycles, ok);
    periodEnergyConsumed += spent;
    stats.meter.add(energy::Phase::Restore, cycles, spent);
    if (traceTrack != 0) {
        vnow += cycles;
        tracePhaseSpan(ok ? "restore" : "restore-failed", cycles, spent,
                       charged);
    }
    if (!ok) {
        ++stats.failedRestores;
        handlePowerFailure();
        return ActionStatus::BrownOut;
    }

    std::uint8_t arch_buf[arch::Cpu::archStateBytes];
    mem_.nvm().read(base + checkpointSlotHeaderBytes, arch_buf,
                    sizeof(arch_buf));
    cpu_.loadArchState(arch_buf);
    if (payload_len > 0) {
        std::vector<std::uint8_t> payload(payload_len);
        mem_.nvm().read(base + checkpointSlotHeaderBytes +
                            sizeof(arch_buf),
                        payload.data(), payload.size());
        mem_.sram().write(0, payload.data(), payload.size());
    }
    activeSlot = slot;
    // Keep the sequence frontier in step with what was restored: a
    // torn-flip slot carries backupSeq + 1, and the next commit must
    // not reuse a sequence number a live slot already claims (a tie
    // would make newestValidSlot() ambiguous).
    backupSeq = std::max(backupSeq,
                         mem_.nvm().load32(base + slotSeqOffset));
    // Heal the selector so the recovered slot is found directly next
    // time (a fallback or a torn selector left it wrong).
    if (fallback || selector_was != slot)
        mem_.nvm().store32(selectorAddr, slot);
    ++stats.restores;
    stats.restoreBytes.add(static_cast<double>(charged));
    return ActionStatus::Ok;
}

Simulator::PeriodStatus
Simulator::consultBeforeStep(const arch::MemPeek &peek)
{
    int guard = 0;
    for (;;) {
        const auto d = pol.beforeStep(cpu_, peek, view());
        if (chargeMonitorOverhead(d) != ActionStatus::Ok)
            return PeriodStatus::Ended;
        if (d.action == runtime::PolicyAction::Continue)
            return PeriodStatus::Running;
        if (doBackup(d.reason) != ActionStatus::Ok)
            return PeriodStatus::Ended;
        if (d.action == runtime::PolicyAction::BackupAndSleep) {
            sup.hibernate();
            return PeriodStatus::Ended;
        }
        if (++guard > 8)
            panic("policy demands backups without making progress");
    }
}

bool
Simulator::injectorFailsHere()
{
    // Forced power failure at this instruction boundary (the plan's
    // chosen cycle or k-th instruction was reached).
    if (!inj || !inj->failBeforeInstruction(lifetimeInstructions,
                                            lifetimeActiveCycles)) {
        return false;
    }
    if (traceTrack != 0)
        obs::trace().instantTicks(traceTrack, obs::Category::Fault,
                                  "fault:power", vnow);
    handlePowerFailure();
    return true;
}

Simulator::PeriodStatus
Simulator::handleCheckpointOp()
{
    const auto d = pol.onCheckpointOp(view());
    if (chargeMonitorOverhead(d) != ActionStatus::Ok)
        return PeriodStatus::Ended;
    if (d.action != runtime::PolicyAction::Continue) {
        if (doBackup(d.reason) != ActionStatus::Ok)
            return PeriodStatus::Ended;
        if (d.action == runtime::PolicyAction::BackupAndSleep) {
            sup.hibernate();
            return PeriodStatus::Ended;
        }
    }
    return PeriodStatus::Running;
}

void
Simulator::handleHalt()
{
    // Commit the final state; on failure the next period re-executes
    // from the last checkpoint.
    if (doBackup(arch::BackupTrigger::None) == ActionStatus::Ok)
        stats.finished = true;
}

Simulator::PeriodStatus
Simulator::execInstruction()
{
    // Execute one instruction and pay for it.
    const arch::StepResult step = cpu_.step();
    ++lifetimeInstructions;
    lifetimeActiveCycles += step.cycles;
    bool ok = false;
    const double spent = consumeTracked(step.energy, step.cycles, ok);
    periodEnergyConsumed += spent;
    stats.meter.addUncommitted(step.cycles, spent);
    cyclesSinceBackup += step.cycles;
    if (traceTrack != 0) {
        if (chunkExecCycles + chunkMonCycles == 0)
            chunkStart = vnow;
        chunkExecCycles += step.cycles;
        chunkExecEnergy += spent;
        vnow += step.cycles;
    }
    if (!ok) {
        handlePowerFailure();
        return PeriodStatus::Ended;
    }
    pol.afterStep(cpu_, step);

    if (step.checkpointRequested &&
        handleCheckpointOp() == PeriodStatus::Ended) {
        return PeriodStatus::Ended;
    }

    if (step.halted) {
        handleHalt();
        return PeriodStatus::Ended;
    }
    return PeriodStatus::Running;
}

void
Simulator::runPeriodScalar()
{
    std::uint64_t instrs = 0;
    for (;;) {
        if (++instrs > cfg.maxInstructionsPerPeriod) {
            panicf("simulator: period exceeded ",
                   cfg.maxInstructionsPerPeriod,
                   " instructions — runaway program or supply");
        }

        // Pre-step policy consultation (may demand backups).
        const arch::MemPeek peek = cpu_.peek();
        if (consultBeforeStep(peek) == PeriodStatus::Ended)
            return;
        if (injectorFailsHere())
            return;
        if (execInstruction() == PeriodStatus::Ended)
            return;
    }
}

SimStats
Simulator::run()
{
    stats = SimStats{};
    stats.workload = prog.name;
    stats.policy = pol.name();
    lifetimeInstructions = 0;
    lifetimeActiveCycles = 0;
    backupAttempts = 0;
    cpu_.applyMemInits();

    // One virtual trace track per (workload, policy) timeline; 0 when
    // the "sim" category is off, which short-circuits every emission.
    traceTrack =
        obs::traceEnabled(obs::Category::Sim)
            ? obs::trace().virtualTrack("sim:" + prog.name + "/" +
                                        pol.name())
            : 0;
    vnow = 0;
    chunkStart = 0;
    chunkExecCycles = 0;
    chunkMonCycles = 0;
    chunkExecEnergy = 0.0;
    chunkMonEnergy = 0.0;
    // The per-period span wraps restore/progress/backup/dead children;
    // the exporter nests by containment, so emitting it last is fine.
    const auto trace_period = [this](std::uint64_t start_tick,
                                     std::uint64_t charge_cycles) {
        if (traceTrack == 0 || vnow <= start_tick)
            return;
        obs::trace().spanTicks(
            traceTrack, obs::Category::Sim, "period", start_tick,
            vnow - start_tick,
            {{"period", static_cast<double>(stats.periods)},
             {"charge_cycles", static_cast<double>(charge_cycles)},
             {"energy", periodEnergyConsumed}});
    };

    bool starved = false;
    bool livelocked = false;
    // Consecutive active periods that committed zero Progress-phase
    // cycles — the signature of a dead-region configuration whose
    // backup energy exceeds what a period can supply. Reaching
    // cfg.livelockPeriodLimit classifies the run as Livelock and stops
    // instead of burning the remaining maxActivePeriods budget.
    std::uint64_t zero_progress_streak = 0;
    const auto note_zero_progress_period = [&] {
        if (cfg.livelockPeriodLimit == 0)
            return false;
        return ++zero_progress_streak >= cfg.livelockPeriodLimit;
    };

    while (!stats.finished && !stats.gaveUp &&
           stats.periods < cfg.maxActivePeriods) {
        const std::uint64_t charged =
            sup.chargeUntilReady(cfg.maxChargeCyclesPerPeriod);
        if (charged == energy::chargeFailed) {
            warn("simulator: supply starved during charging; stopping");
            starved = true;
            break;
        }
        stats.chargeCycles.add(static_cast<double>(charged));
        ++stats.periods;
        periodEnergyConsumed = 0.0;
        const std::uint64_t period_start_tick = vnow;
        const auto progress_cycles_at_start =
            stats.meter.cycles(energy::Phase::Progress);
        const auto progress_energy_at_start =
            stats.meter.energy(energy::Phase::Progress);

        if (doRestore() != ActionStatus::Ok) {
            stats.periodEnergy.add(periodEnergyConsumed);
            trace_period(period_start_tick, charged);
            // A period that died in restore committed nothing.
            if (note_zero_progress_period()) {
                livelocked = true;
                break;
            }
            continue; // died during restore; retry next period
        }
        pol.onRestore();
        cyclesSinceBackup = 0;

        if (engine_ == ExecEngine::Block)
            runPeriodBlock();
        else
            runPeriodScalar();
        stats.periodEnergy.add(periodEnergyConsumed);
        trace_period(period_start_tick, charged);
        const std::uint64_t committed_cycles =
            stats.meter.cycles(energy::Phase::Progress) -
            progress_cycles_at_start;
        stats.periodProgressCycles.add(
            static_cast<double>(committed_cycles));
        if (periodEnergyConsumed > 0.0) {
            stats.periodProgress.add(
                (stats.meter.energy(energy::Phase::Progress) -
                 progress_energy_at_start) /
                periodEnergyConsumed);
        }
        if (inj)
            inj->applyWearFaults(mem_.nvm());
        if (committed_cycles > 0) {
            zero_progress_streak = 0;
        } else if (!stats.finished && note_zero_progress_period()) {
            livelocked = true;
            break;
        }
    }
    if (inj) {
        stats.injectedPowerFailures = inj->counters().powerFailures();
        stats.injectedBitFlips = inj->counters().bitFlips();
    }
    if (stats.finished)
        stats.outcome = Outcome::Finished;
    else if (starved)
        stats.outcome = Outcome::Starved;
    else if (livelocked)
        stats.outcome = Outcome::Livelock;
    else
        stats.outcome = Outcome::GaveUp; // restart bound or period cap
    if (traceTrack != 0) {
        traceFlushChunk("dead"); // anything left never committed
        obs::trace().instantTicks(
            traceTrack, obs::Category::Sim, outcomeName(stats.outcome),
            vnow, {{"periods", static_cast<double>(stats.periods)}});
    }
    return stats;
}

std::uint32_t
Simulator::resultWord(std::uint64_t addr)
{
    mem::MemAccessResult cost;
    return mem_.load32(addr, &cost);
}

GoldenResult
runGolden(const arch::Program &program, const SimConfig &config,
          const std::vector<std::uint64_t> &result_addrs,
          std::uint64_t max_instructions)
{
    mem::AddressSpace memory(config.sramBytes, config.nvmBytes,
                             config.nvmTech);
    arch::Cpu cpu(program, memory, config.costs);
    cpu.applyMemInits();
    cpu.reset();

    GoldenResult g;
    while (!cpu.halted()) {
        if (g.instructions >= max_instructions)
            fatalf("runGolden: program '", program.name,
                   "' exceeded ", max_instructions, " instructions");
        const auto step = cpu.step();
        ++g.instructions;
        g.cycles += step.cycles;
        g.energy += step.energy;
    }
    g.halted = true;
    for (const auto addr : result_addrs) {
        mem::MemAccessResult cost;
        g.resultWords.push_back(memory.load32(addr, &cost));
    }
    return g;
}

} // namespace eh::sim
