/**
 * @file
 * Intermittent-execution simulator. Orchestrates the charging/active
 * alternation of an energy-harvesting device (Section II): charge until
 * the supply can power on, restore the last checkpoint, execute under a
 * backup policy until the supply browns out, classify the energy spent
 * per phase, and repeat until the program completes (its HALT committed)
 * or a period cap is hit.
 *
 * Checkpoints are double-buffered in a reserved region at the top of
 * nonvolatile memory: a backup writes the inactive slot and then flips a
 * selector word, so a power failure mid-backup leaves the previous
 * checkpoint intact (the consistency hazard of [42]). Every slot carries
 * a CRC-32 and a sequence number, so a restore *detects* a torn write or
 * an NVM bit error and recovers — falling back to the other slot where
 * that is sound, restarting from program start as a last resort — rather
 * than resuming from garbage (see docs/FAULTS.md for the full ladder).
 *
 * An optional fault::FaultInjector forces power failures at adversarial
 * points (a chosen cycle, the k-th instruction, mid-backup, mid-restore,
 * exactly at the selector flip) and injects NVM bit errors.
 */

#ifndef EH_SIM_SIMULATOR_HH
#define EH_SIM_SIMULATOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/cpu.hh"
#include "arch/isa.hh"
#include "core/calibration.hh"
#include "energy/meter.hh"
#include "energy/supply.hh"
#include "mem/address_space.hh"
#include "runtime/policy.hh"
#include "util/stats.hh"

namespace eh::fault {
class FaultInjector;
}

namespace eh::sim {

/**
 * Bytes of metadata at the head of each checkpoint slot: magic word,
 * CRC-32 of the slot body, payload length, sequence number (4 each).
 */
constexpr std::uint64_t checkpointSlotHeaderBytes = 16;

/** Size of one checkpoint slot for a given volatile-payload capacity. */
constexpr std::uint64_t
checkpointSlotBytes(std::size_t arch_state_bytes,
                    std::size_t sram_used_bytes)
{
    return checkpointSlotHeaderBytes + arch_state_bytes + sram_used_bytes;
}

/**
 * Which execution engine run() uses (docs/PERFORMANCE.md). Both produce
 * bit-identical SimStats; Scalar is the per-instruction reference
 * oracle, Block the pre-decoded basic-block fast path.
 */
enum class ExecEngine
{
    Auto,   ///< EH_EXEC_ENGINE env var, then process default, then Block
    Scalar, ///< exact per-instruction reference loop
    Block,  ///< basic-block fast path (default)
};

/** Stable lowercase name of an engine ("auto", "scalar", "block"). */
const char *execEngineName(ExecEngine engine);

/** Parse an engine name; fatal on anything else. */
ExecEngine parseExecEngine(const std::string &name);

/**
 * Process-wide default used when a SimConfig says Auto and the
 * EH_EXEC_ENGINE environment variable is unset (CLI --engine flag).
 * Auto (the initial value) means Block.
 */
void setDefaultExecEngine(ExecEngine engine);

/**
 * Resolve Auto to a concrete engine: an explicit @p configured choice
 * wins, then EH_EXEC_ENGINE, then setDefaultExecEngine(), then Block.
 */
ExecEngine resolveExecEngine(ExecEngine configured);

/** Platform and run-control configuration. */
struct SimConfig
{
    std::size_t sramBytes = 8192;          ///< volatile memory size
    std::size_t nvmBytes = 256 * 1024;     ///< nonvolatile memory size
    mem::NvmTech nvmTech = mem::NvmTech::Fram;
    arch::CostModel costs = arch::CostModel::msp430();

    /**
     * Volatile payload region [0, sramUsedBytes): everything a
     * volatile-data policy must copy at each backup (workload data +
     * stack). Must not exceed sramBytes.
     */
    std::size_t sramUsedBytes = 512;

    /**
     * Interpose a volatile write-back cache on the NVM region (the
     * mixed-volatility platform of Section VI-A). Each backup must then
     * also flush the dirty blocks, charged at block granularity on top
     * of the policy's own bytes; a power failure loses the cache.
     */
    bool enableNvmCache = false;
    mem::CacheGeometry cacheGeometry{1024, 4, 16};

    std::uint64_t maxActivePeriods = 100000;
    std::uint64_t maxChargeCyclesPerPeriod = 2'000'000'000ull;
    std::uint64_t maxInstructionsPerPeriod = 200'000'000ull;

    /**
     * Recovery bounds (see docs/FAULTS.md): how many restarts from
     * program start the run tolerates before giving up, and how many
     * times one restore retries through transient read faults.
     */
    std::uint64_t maxRestartsFromScratch = 64;
    std::uint64_t restoreRetryLimit = 4;

    /**
     * Fail-fast livelock detector (docs/ROBUSTNESS.md): after this many
     * consecutive active periods committing zero Progress-phase cycles,
     * the run terminates with Outcome::Livelock instead of grinding to
     * maxActivePeriods. Dead-region cells (backup energy exceeds the
     * period budget) hit this in exactly the limit. 0 disables.
     */
    std::uint64_t livelockPeriodLimit = 256;

    /**
     * Execution engine (docs/PERFORMANCE.md). Auto resolves through
     * EH_EXEC_ENGINE and the process default; both engines produce
     * bit-identical statistics, so this only trades simulation speed.
     */
    ExecEngine executionEngine = ExecEngine::Auto;
};

/**
 * How a simulation run ended — the classification layer a design-space
 * campaign records for every cell, failure regions included (see
 * docs/ROBUSTNESS.md).
 */
enum class Outcome
{
    Finished, ///< HALT committed: the program completed
    GaveUp,   ///< a patience bound hit (restart-from-scratch or period cap)
    Starved,  ///< the supply never reached the power-on threshold
    Livelock, ///< zero committed progress for livelockPeriodLimit periods
    Fault,    ///< reserved: harness-level evaluator fault (never set here)
};

/** Stable lowercase name of an Outcome ("finished", "livelock", ...). */
const char *outcomeName(Outcome outcome);

/** Aggregate statistics of one simulation run. */
struct SimStats
{
    std::string workload;
    std::string policy;

    std::uint64_t periods = 0;       ///< active periods started
    std::uint64_t backups = 0;       ///< committed backups
    std::uint64_t restores = 0;      ///< restores performed
    std::uint64_t powerFailures = 0; ///< brown-outs
    std::uint64_t failedBackups = 0; ///< backups aborted by brown-out
    std::uint64_t failedRestores = 0;///< restores aborted by brown-out
    bool finished = false;           ///< HALT committed
    bool gaveUp = false;             ///< restart-from-scratch bound hit

    /**
     * Structured run classification. finished/gaveUp remain as the
     * legacy booleans; outcome is the authoritative taxonomy (GaveUp
     * additionally covers a run that exhausted maxActivePeriods while
     * still making progress).
     */
    Outcome outcome = Outcome::GaveUp;

    // Fault-injection and recovery accounting (docs/FAULTS.md).
    std::uint64_t corruptionsDetected = 0;  ///< slots/selector failing checks
    std::uint64_t slotFallbacks = 0;        ///< restores from the older slot
    std::uint64_t restartsFromScratch = 0;  ///< last-resort cold restarts
    std::uint64_t transientRestoreFaults = 0; ///< retried restore attempts
    std::uint64_t injectedPowerFailures = 0;  ///< forced by a FaultInjector
    std::uint64_t injectedBitFlips = 0;       ///< NVM bits the injector flipped

    energy::EnergyMeter meter;       ///< per-phase cycles and energy

    RunningStats tauB;        ///< active cycles between committed backups
    RunningStats tauD;        ///< dead cycles per power failure
    RunningStats alphaB;      ///< charged app bytes per backup / tau_B
    RunningStats backupBytes; ///< charged bytes per backup
    RunningStats restoreBytes;///< charged bytes per restore
    double failedBackupEnergy = 0.0; ///< energy sunk into aborted backups
    RunningStats chargeCycles;///< charging cycles per period
    RunningStats periodEnergy;///< energy consumed per active period
    RunningStats periodProgressCycles; ///< committed cycles per period
    RunningStats periodProgress;       ///< committed-energy share per period

    /** Backup counts by trigger cause. */
    std::map<arch::BackupTrigger, std::uint64_t> triggers;

    /**
     * Measured forward progress: fraction of all consumed energy spent
     * on committed execution — the quantity the EH model predicts.
     */
    double measuredProgress() const;

    /** Package the run as an EH-model observation (Section V bridge). */
    core::ObservedBehavior observe(const SimConfig &config,
                                   std::uint64_t charged_arch_bytes) const;

    /** Multi-line human-readable summary. */
    std::string summary() const;
};

/**
 * The simulator. Owns the memory map and CPU; the policy and supply are
 * borrowed so callers can inspect them afterwards.
 */
class Simulator
{
  public:
    /**
     * @param program Program to run (borrowed; must outlive run()).
     * @param policy  Backup policy (borrowed).
     * @param supply  Energy supply (borrowed).
     * @param config  Platform configuration.
     */
    Simulator(const arch::Program &program, runtime::BackupPolicy &policy,
              energy::EnergySupply &supply, const SimConfig &config);

    /**
     * Attach a fault injector (borrowed; nullptr detaches). The
     * injector is consulted at every injectable point of run() and
     * immediately learns the checkpoint-region geometry.
     */
    void attachFaultInjector(fault::FaultInjector *injector);

    /** Run to completion (HALT committed) or to the period cap. */
    SimStats run();

    /** Memory map (result inspection after run()). */
    mem::AddressSpace &memory() { return mem_; }

    /** CPU (inspection in tests). */
    const arch::Cpu &cpu() const { return cpu_; }

    /** Read a 32-bit result word from the memory map post-run. */
    std::uint32_t resultWord(std::uint64_t addr);

  private:
    /** Outcome of an in-period action that draws supply energy. */
    enum class ActionStatus { Ok, BrownOut };

    /** Whether the active period keeps executing after a step. */
    enum class PeriodStatus { Running, Ended };

    // --- Shared per-instruction protocol (both engines) -------------
    // The scalar loop is built verbatim from these helpers; the block
    // engine falls back to them at decision points and for memory,
    // checkpoint and halt instructions, so there is exactly one
    // implementation of the observable protocol.

    /** The beforeStep() guard loop (consult until Continue). */
    PeriodStatus consultBeforeStep(const arch::MemPeek &peek);

    /** Consult the fault injector; on fire, handle the power failure. */
    bool injectorFailsHere();

    /** Execute one instruction under the full exact protocol. */
    PeriodStatus execInstruction();

    /** The onCheckpointOp() consult-and-backup sequence. */
    PeriodStatus handleCheckpointOp();

    /** The HALT commit sequence. */
    void handleHalt();

    /** One active period, per-instruction reference loop. */
    void runPeriodScalar();

    /** One active period, basic-block fast path (sim/exec_engine.cc). */
    void runPeriodBlock();

    /** Block-engine body, devirtualized over the supply type. */
    template <typename SupplyT> void runPeriodBlockImpl(SupplyT &supply);

    ActionStatus doBackup(arch::BackupTrigger reason);
    ActionStatus doRestore();
    ActionStatus restoreAttempt();
    ActionStatus restoreFromSlot(std::uint32_t slot, bool fallback,
                                 std::uint32_t selector_was);
    ActionStatus chargeMonitorOverhead(const runtime::PolicyDecision &d);
    void handlePowerFailure();
    runtime::SupplyView view() const;

    /** Assemble the full image of the next checkpoint slot. */
    std::vector<std::uint8_t> buildSlotImage(std::uint32_t payload_len,
                                             std::uint32_t seq);

    /** Magic + CRC verification of one slot (1 or 2). */
    bool slotValid(std::uint32_t slot) const;

    /** Sequence number of a slot (caller guarantees slotValid()). */
    std::uint32_t slotSeq(std::uint32_t slot) const;

    /** Of the valid slots, the one with the newest sequence (0 = none). */
    std::uint32_t newestValidSlot() const;

    /** Cold restart: wipe the checkpoint region, reboot from the image. */
    void restartFromScratch();

    /**
     * Draw @p demand across @p cycles from the supply. On brown-out the
     * returned energy is what the supply actually had left (net of any
     * concurrent harvesting), so accounting never exceeds reality.
     */
    double consumeTracked(double demand, std::uint64_t cycles, bool &ok);

    const arch::Program &prog;
    runtime::BackupPolicy &pol;
    energy::EnergySupply &sup;
    SimConfig cfg;

    mem::AddressSpace mem_;
    arch::Cpu cpu_;
    SimStats stats;
    fault::FaultInjector *inj = nullptr; ///< optional, borrowed
    ExecEngine engine_;                  ///< resolved, never Auto

    // Checkpoint region bookkeeping (top of NVM).
    std::uint64_t slotBytes;       ///< size of one checkpoint slot
    std::uint64_t slot0Addr;       ///< NVM-relative address of slot 0
    std::uint64_t selectorAddr;    ///< NVM-relative selector word
    std::uint32_t activeSlot = 0;  ///< 0 = none yet, 1 or 2
    std::uint32_t backupSeq = 0;   ///< sequence of the newest written slot

    std::uint64_t cyclesSinceBackup = 0;
    double periodEnergyConsumed = 0.0;

    // Lifetime counters the fault injector aims at (re-execution included).
    std::uint64_t lifetimeInstructions = 0;
    std::uint64_t lifetimeActiveCycles = 0;
    std::uint64_t backupAttempts = 0;

    // --- Observability (docs/OBSERVABILITY.md) ----------------------
    // When the "sim" trace category is enabled, run() lays its phases
    // out on a virtual track whose clock is the simulated cycle count:
    // one span per period containing restore/backup spans and
    // progress/dead execution chunks, each carrying cycles and energy
    // as arguments. traceTrack == 0 (tracing off) short-circuits every
    // emission to a single branch.
    std::uint32_t traceTrack = 0;
    std::uint64_t vnow = 0;        ///< simulated-cycle trace clock
    std::uint64_t chunkStart = 0;  ///< first tick of the open exec chunk
    std::uint64_t chunkExecCycles = 0;
    double chunkExecEnergy = 0.0;
    std::uint64_t chunkMonCycles = 0;
    double chunkMonEnergy = 0.0;

    /** Emit the open execution chunk as @p fate ("progress"/"dead"). */
    void traceFlushChunk(const char *fate);

    /** Emit one backup/restore span of @p cycles ending at vnow. */
    void tracePhaseSpan(const char *name, std::uint64_t cycles,
                        double energy, std::uint64_t bytes);
};

/** Result of an uninterrupted reference execution. */
struct GoldenResult
{
    bool halted = false;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double energy = 0.0;
    std::vector<std::uint32_t> resultWords;
};

/**
 * Execute @p program to completion with unlimited energy (no backups, no
 * failures) and collect the words at @p result_addrs. The baseline
 * against which intermittent executions are checked for correctness.
 */
GoldenResult runGolden(const arch::Program &program,
                       const SimConfig &config,
                       const std::vector<std::uint64_t> &result_addrs,
                       std::uint64_t max_instructions = 500'000'000ull);

} // namespace eh::sim

#endif // EH_SIM_SIMULATOR_HH
