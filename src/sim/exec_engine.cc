/**
 * @file
 * Basic-block fast-path execution engine (docs/PERFORMANCE.md).
 *
 * The scalar engine consults the policy, the fault injector and the
 * supply once per instruction. This engine consults them once per
 * *decision point* instead, and between decision points executes
 * straight-line spans of pre-decoded instructions in a tight loop —
 * while preserving bit-identical results. The argument:
 *
 *  - A policy that clears PolicyCaps::needsPerInstructionHook promises
 *    that, within the horizon it reported at its last consultation,
 *    every beforeStep() would return Continue with no monitor
 *    overhead, so skipping those calls is unobservable. The quantum is
 *    clamped so execution stops at (or before) the first boundary
 *    where the horizon elapses; the policy is then re-consulted with
 *    state identical to the scalar run's (onBlockAdvance() delivered
 *    the batched counters first).
 *  - The quantum is also clamped to the fault injector's next pending
 *    trigger, so failBeforeInstruction() is consulted at exactly the
 *    instruction boundary where it would fire in the scalar run — a
 *    consultation that does not fire is a no-op, so the skipped
 *    intermediate consultations are unobservable too.
 *  - Per-instruction floating-point effects (supply draw, uncommitted
 *    meter, period energy) are kept per instruction in the same order
 *    as the interpreter, so every double is the same double. Only
 *    integer counters are batched.
 *  - Memory, checkpoint and halt instructions — and any instruction
 *    under a peek-consuming policy's gaze or a zero horizon — run
 *    through the exact same helper (execInstruction()) the scalar
 *    engine is built from. There is one implementation of the
 *    observable protocol, not two.
 */

#include <algorithm>
#include <type_traits>

#include "energy/supply.hh"
#include "fault/injector.hh"
#include "sim/simulator.hh"
#include "util/panic.hh"

namespace eh::sim {

void
Simulator::runPeriodBlock()
{
    if (pol.blockCaps().needsPerInstructionHook) {
        // The policy may act on any instruction: the exact
        // per-instruction loop *is* the contract.
        runPeriodScalar();
        return;
    }
    // Devirtualize the hot supply draw where the concrete type is
    // known; ConstantSupply::consume() is final and inline, so the
    // span loop pays no virtual dispatch per instruction.
    if (auto *constant = dynamic_cast<energy::ConstantSupply *>(&sup))
        runPeriodBlockImpl(*constant);
    else
        runPeriodBlockImpl(sup);
}

template <typename SupplyT>
void
Simulator::runPeriodBlockImpl(SupplyT &supply)
{
    const runtime::PolicyCaps caps = pol.blockCaps();
    const arch::DecodedProgram &dec = cpu_.dec;
    const arch::DecodedInsn *insns = dec.instructions().data();
    const std::uint64_t *cumC = dec.cycleSums().data();
    const std::uint64_t n = dec.size();
    const bool tracing = traceTrack != 0;

    std::uint64_t instrs = 0; // executed this period

    // Batched afterStep() substitute for non-memory instructions,
    // flushed before anything that can observe policy state.
    std::uint64_t advC = 0;
    std::uint64_t advI = 0;
    const auto flushAdv = [&] {
        if (advI == 0)
            return;
        pol.onBlockAdvance(advC, advI);
        advC = 0;
        advI = 0;
    };

    for (;;) {
        // ---- decision point ------------------------------------------
        flushAdv();
        if (instrs >= cfg.maxInstructionsPerPeriod) {
            // Same instant as the scalar engine: its attempt counter
            // trips *before* the policy consultation of instruction
            // maxInstructionsPerPeriod + 1.
            panicf("simulator: period exceeded ",
                   cfg.maxInstructionsPerPeriod,
                   " instructions — runaway program or supply");
        }
        const arch::MemPeek peek = cpu_.peek();
        if (consultBeforeStep(peek) == PeriodStatus::Ended)
            return;
        if (injectorFailsHere())
            return;

        if (caps.needsPeek && peek.isMem) {
            // Peek-consuming policies (Clank, Ratchet) get the full
            // exact protocol around every load/store.
            ++instrs;
            if (execInstruction() == PeriodStatus::Ended)
                return;
            continue;
        }

        // ---- quantum bounds ------------------------------------------
        const runtime::DecisionHorizon hz = pol.decisionHorizon();
        std::uint64_t limC = hz.cycles;
        std::uint64_t limI = std::min(
            hz.instructions, cfg.maxInstructionsPerPeriod - instrs);
        if (inj) {
            // Both triggers are strictly ahead of the counters here:
            // the consultation above just returned false.
            const std::uint64_t ni = inj->nextInstructionTrigger();
            if (ni != UINT64_MAX)
                limI = std::min(limI, ni - lifetimeInstructions);
            const std::uint64_t nc = inj->nextCycleTrigger();
            if (nc != UINT64_MAX)
                limC = std::min(limC, nc - lifetimeActiveCycles);
        }
        if (limC == 0 || limI == 0) {
            // Degenerate horizon: one exactly-emulated instruction
            // keeps progress guaranteed whatever the policy reports.
            ++instrs;
            if (execInstruction() == PeriodStatus::Ended)
                return;
            continue;
        }

        // ---- one quantum ---------------------------------------------
        const std::uint64_t baseI = instrs;
        const std::uint64_t baseC = lifetimeActiveCycles;
        while (instrs - baseI < limI &&
               lifetimeActiveCycles - baseC < limC) {
            const std::uint64_t pc = cpu_.pcValue;
            if (pc >= n || insns[pc].kind != arch::ExecKind::Straight) {
                if (pc < n && insns[pc].kind == arch::ExecKind::Mem &&
                    caps.needsPeek) {
                    break; // the decision point owns this access
                }
                // Memory, checkpoint, halt and out-of-range fetches all
                // run the exact path (which raises the canonical panic
                // for the latter). beforeStep() and the injector are
                // skippable here: the policy is quiet inside its
                // horizon and no injector trigger fits the quantum.
                const bool checkpoint =
                    pc < n &&
                    insns[pc].kind == arch::ExecKind::Checkpoint;
                flushAdv();
                ++instrs;
                if (execInstruction() == PeriodStatus::Ended)
                    return;
                if (checkpoint)
                    break; // backup may have reset the horizon
                continue;
            }

            // Straight-line span: clamp the instruction count against
            // the quantum bounds via the prefix sums, then execute the
            // whole run without re-checking limits per instruction.
            std::uint64_t m = insns[pc].spanEnd - pc;
            m = std::min(m, limI - (instrs - baseI));
            const std::uint64_t remC =
                limC - (lifetimeActiveCycles - baseC);
            if (remC < cumC[pc + m] - cumC[pc]) {
                // First j whose cumulative cycles reach remC — the
                // boundary where the scalar run would next consult.
                const std::uint64_t *stop = std::lower_bound(
                    cumC + pc + 1, cumC + pc + m + 1, cumC[pc] + remC);
                m = static_cast<std::uint64_t>(stop - (cumC + pc));
            }

            std::uint64_t p = pc;
            const std::uint64_t spanEnd = pc + m;
            bool transferred = false;
            for (; p < spanEnd; ++p) {
                const arch::DecodedInsn &d = insns[p];
                const arch::Instruction &in = d.in;
                std::uint64_t next_pc = p + 1;
                switch (d.cls) {
                  case arch::InstrClass::Branch:
                    if (arch::branchTaken(in.op, cpu_.regs[in.ra],
                                          cpu_.regs[in.rb])) {
                        next_pc = static_cast<std::uint64_t>(in.imm);
                    }
                    break;
                  case arch::InstrClass::Call:
                    if (in.op == arch::Opcode::Call) {
                        cpu_.regs[arch::LR] =
                            static_cast<std::uint32_t>(p + 1);
                        next_pc = static_cast<std::uint64_t>(in.imm);
                    } else { // Ret
                        next_pc = cpu_.regs[arch::LR];
                    }
                    break;
                  case arch::InstrClass::Sense:
                    cpu_.regs[in.rd] =
                        arch::Cpu::sensorValue(cpu_.regs[in.ra]);
                    break;
                  default: // Alu / Mul / Div
                    cpu_.regs[in.rd] = cpu_.aluOp(in);
                    break;
                }
                ++cpu_.executed;
                ++lifetimeInstructions;
                lifetimeActiveCycles += d.cycles;

                // Inline consumeTracked() against the devirtualized
                // supply: the same statements, the same doubles.
                const double before = supply.storedEnergy();
                const bool ok = supply.consume(d.energy, d.cycles);
                const double spent =
                    ok ? d.energy
                       : std::max(0.0, before - supply.storedEnergy());
                periodEnergyConsumed += spent;
                stats.meter.addUncommitted(d.cycles, spent);
                cyclesSinceBackup += d.cycles;
                if (tracing) {
                    if (chunkExecCycles + chunkMonCycles == 0)
                        chunkStart = vnow;
                    chunkExecCycles += d.cycles;
                    chunkExecEnergy += spent;
                    vnow += d.cycles;
                }
                ++instrs;
                if (!ok) {
                    // The scalar run skips the failing instruction's
                    // afterStep(); deliver only its predecessors.
                    flushAdv();
                    handlePowerFailure();
                    return;
                }
                advC += d.cycles;
                ++advI;
                if (next_pc != p + 1) {
                    // Taken branch / call / ret: spans only end in
                    // control transfers, so this is the last iteration.
                    cpu_.pcValue = next_pc;
                    transferred = true;
                    break;
                }
            }
            if (!transferred)
                cpu_.pcValue = p; // sequential fallthrough
        }
        // Quantum bound reached: back to the decision point.
    }
}

// The two instantiations run() can dispatch to.
template void
Simulator::runPeriodBlockImpl<energy::ConstantSupply>(
    energy::ConstantSupply &);
template void
Simulator::runPeriodBlockImpl<energy::EnergySupply>(energy::EnergySupply &);

} // namespace eh::sim
