#include "cli/options.hh"

#include <cstdlib>

#include "util/panic.hh"

namespace eh::cli {

Options
Options::parse(const std::vector<std::string> &args)
{
    Options o;
    std::size_t i = 0;
    if (!args.empty() && args[0].rfind("--", 0) != 0) {
        o.command = args[0];
        i = 1;
    }
    for (; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--", 0) != 0)
            fatalf("unexpected argument '", arg,
                   "' (flags use --name value)");
        if (i + 1 >= args.size())
            fatalf("flag '", arg, "' is missing its value");
        o.flags[arg.substr(2)] = args[i + 1];
        ++i;
    }
    return o;
}

bool
Options::has(const std::string &name) const
{
    const auto it = flags.find(name);
    if (it != flags.end())
        consumed[name] = true;
    return it != flags.end();
}

std::string
Options::get(const std::string &name, const std::string &fallback) const
{
    const auto it = flags.find(name);
    if (it == flags.end())
        return fallback;
    consumed[name] = true;
    return it->second;
}

double
Options::getDouble(const std::string &name, double fallback) const
{
    const auto it = flags.find(name);
    if (it == flags.end())
        return fallback;
    consumed[name] = true;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatalf("flag --", name, " expects a number, got '", it->second,
               "'");
    return value;
}

std::vector<std::string>
Options::unusedFlags() const
{
    std::vector<std::string> unused;
    for (const auto &[name, value] : flags) {
        (void)value;
        if (!consumed.count(name))
            unused.push_back(name);
    }
    return unused;
}

namespace {

/** Parse "12,400,9000" into cycle/instruction fault points. */
std::vector<std::uint64_t>
parsePointList(const Options &options, const std::string &flag)
{
    std::vector<std::uint64_t> points;
    const std::string raw = options.get(flag);
    std::size_t pos = 0;
    while (pos < raw.size()) {
        const std::size_t comma = raw.find(',', pos);
        const std::string item =
            raw.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        char *end = nullptr;
        const unsigned long long v = std::strtoull(item.c_str(), &end, 10);
        if (end == item.c_str() || *end != '\0')
            fatalf("flag --", flag, " expects comma-separated integers, "
                   "got '", raw, "'");
        points.push_back(v);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return points;
}

} // namespace

bool
hasFaultOptions(const Options &options)
{
    static const char *flags[] = {
        "fault-seed",          "fault-at-cycle",
        "fault-at-instr",      "fault-backup-prob",
        "fault-selector-prob", "fault-restore-prob",
        "fault-max",           "fault-ckpt-corrupt-prob",
        "fault-selector-corrupt-prob", "fault-wear-rate",
        "fault-max-bitflips",  "fault-transient-restore-prob",
    };
    for (const char *flag : flags) {
        if (options.has(flag))
            return true;
    }
    return false;
}

fault::FaultPlan
faultPlanFromOptions(const Options &options)
{
    fault::FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(
        options.getDouble("fault-seed", static_cast<double>(plan.seed)));
    if (options.has("fault-at-cycle"))
        plan.failAtCycle = parsePointList(options, "fault-at-cycle");
    if (options.has("fault-at-instr"))
        plan.failAtInstruction = parsePointList(options, "fault-at-instr");
    plan.backupFailProb = options.getDouble("fault-backup-prob", 0.0);
    plan.selectorFlipFailProb =
        options.getDouble("fault-selector-prob", 0.0);
    plan.restoreFailProb = options.getDouble("fault-restore-prob", 0.0);
    plan.maxForcedFailures = static_cast<std::uint64_t>(options.getDouble(
        "fault-max", static_cast<double>(plan.maxForcedFailures)));
    plan.checkpointCorruptionProb =
        options.getDouble("fault-ckpt-corrupt-prob", 0.0);
    plan.selectorCorruptionProb =
        options.getDouble("fault-selector-corrupt-prob", 0.0);
    plan.wearBitErrorRate = options.getDouble("fault-wear-rate", 0.0);
    plan.maxBitFlips = static_cast<std::uint64_t>(options.getDouble(
        "fault-max-bitflips", static_cast<double>(plan.maxBitFlips)));
    plan.transientRestoreFaultProb =
        options.getDouble("fault-transient-restore-prob", 0.0);
    return plan;
}

core::Params
paramsFromOptions(const Options &options)
{
    const std::string preset = options.get("preset", "illustrative");
    core::Params p;
    if (preset == "illustrative")
        p = core::illustrativeParams();
    else if (preset == "msp430")
        p = core::msp430Params(options.getDouble("period-s", 0.25));
    else if (preset == "cortexm0")
        p = core::cortexM0Params();
    else if (preset == "nvp")
        p = core::nvpParams();
    else
        fatalf("unknown preset '", preset,
               "' (illustrative | msp430 | cortexm0 | nvp)");

    p.energyBudget = options.getDouble("E", p.energyBudget);
    p.execEnergy = options.getDouble("eps", p.execEnergy);
    p.chargeEnergy = options.getDouble("epsC", p.chargeEnergy);
    p.backupPeriod = options.getDouble("tauB", p.backupPeriod);
    p.backupBandwidth = options.getDouble("sigmaB", p.backupBandwidth);
    p.backupCost = options.getDouble("OmegaB", p.backupCost);
    p.archStateBackup = options.getDouble("AB", p.archStateBackup);
    p.appStateRate = options.getDouble("alphaB", p.appStateRate);
    p.restoreBandwidth = options.getDouble("sigmaR", p.restoreBandwidth);
    p.restoreCost = options.getDouble("OmegaR", p.restoreCost);
    p.archStateRestore = options.getDouble("AR", p.archStateRestore);
    p.appRestoreRate = options.getDouble("alphaR", p.appRestoreRate);
    p.validate();
    return p;
}

} // namespace eh::cli
