#include "cli/options.hh"

#include <cstdlib>

#include "util/panic.hh"

namespace eh::cli {

Options
Options::parse(const std::vector<std::string> &args)
{
    Options o;
    std::size_t i = 0;
    if (!args.empty() && args[0].rfind("--", 0) != 0) {
        o.command = args[0];
        i = 1;
    }
    for (; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--", 0) != 0)
            fatalf("unexpected argument '", arg,
                   "' (flags use --name value)");
        if (i + 1 >= args.size())
            fatalf("flag '", arg, "' is missing its value");
        o.flags[arg.substr(2)] = args[i + 1];
        ++i;
    }
    return o;
}

bool
Options::has(const std::string &name) const
{
    const auto it = flags.find(name);
    if (it != flags.end())
        consumed[name] = true;
    return it != flags.end();
}

std::string
Options::get(const std::string &name, const std::string &fallback) const
{
    const auto it = flags.find(name);
    if (it == flags.end())
        return fallback;
    consumed[name] = true;
    return it->second;
}

double
Options::getDouble(const std::string &name, double fallback) const
{
    const auto it = flags.find(name);
    if (it == flags.end())
        return fallback;
    consumed[name] = true;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatalf("flag --", name, " expects a number, got '", it->second,
               "'");
    return value;
}

std::vector<std::string>
Options::unusedFlags() const
{
    std::vector<std::string> unused;
    for (const auto &[name, value] : flags) {
        (void)value;
        if (!consumed.count(name))
            unused.push_back(name);
    }
    return unused;
}

core::Params
paramsFromOptions(const Options &options)
{
    const std::string preset = options.get("preset", "illustrative");
    core::Params p;
    if (preset == "illustrative")
        p = core::illustrativeParams();
    else if (preset == "msp430")
        p = core::msp430Params(options.getDouble("period-s", 0.25));
    else if (preset == "cortexm0")
        p = core::cortexM0Params();
    else if (preset == "nvp")
        p = core::nvpParams();
    else
        fatalf("unknown preset '", preset,
               "' (illustrative | msp430 | cortexm0 | nvp)");

    p.energyBudget = options.getDouble("E", p.energyBudget);
    p.execEnergy = options.getDouble("eps", p.execEnergy);
    p.chargeEnergy = options.getDouble("epsC", p.chargeEnergy);
    p.backupPeriod = options.getDouble("tauB", p.backupPeriod);
    p.backupBandwidth = options.getDouble("sigmaB", p.backupBandwidth);
    p.backupCost = options.getDouble("OmegaB", p.backupCost);
    p.archStateBackup = options.getDouble("AB", p.archStateBackup);
    p.appStateRate = options.getDouble("alphaB", p.appStateRate);
    p.restoreBandwidth = options.getDouble("sigmaR", p.restoreBandwidth);
    p.restoreCost = options.getDouble("OmegaR", p.restoreCost);
    p.archStateRestore = options.getDouble("AR", p.archStateRestore);
    p.appRestoreRate = options.getDouble("alphaR", p.appRestoreRate);
    p.validate();
    return p;
}

} // namespace eh::cli
