/**
 * @file
 * Command-line option parsing for the eh_explore tool. Flags use
 * `--name value` syntax; model parameters follow Table I's notation
 * (--E, --eps, --tauB, --OmegaB, ...) on top of a device preset.
 * Parsing lives in the library so it is unit-testable.
 */

#ifndef EH_CLI_OPTIONS_HH
#define EH_CLI_OPTIONS_HH

#include <map>
#include <string>
#include <vector>

#include "core/params.hh"
#include "fault/plan.hh"

namespace eh::cli {

/** Parsed command line: one subcommand plus `--flag value` pairs. */
class Options
{
  public:
    /**
     * Parse argv (excluding argv[0]).
     * @throws FatalError on a flag without a value or an argument that
     *         is neither the first positional (subcommand) nor a flag.
     */
    static Options parse(const std::vector<std::string> &args);

    /** The leading positional argument; empty if none. */
    const std::string &subcommand() const { return command; }

    /** True when --name was supplied. */
    bool has(const std::string &name) const;

    /** String value of --name, or @p fallback. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /**
     * Numeric value of --name, or @p fallback.
     * @throws FatalError if the value does not parse as a double.
     */
    double getDouble(const std::string &name, double fallback) const;

    /** Flags that were supplied but never read (typo detection). */
    std::vector<std::string> unusedFlags() const;

  private:
    std::string command;
    std::map<std::string, std::string> flags;
    mutable std::map<std::string, bool> consumed;
};

/**
 * Build Table I parameters from options: start from --preset
 * (illustrative | msp430 | cortexm0 | nvp; default illustrative), then
 * apply any explicit overrides (--E, --eps, --epsC, --tauB, --sigmaB,
 * --OmegaB, --AB, --alphaB, --sigmaR, --OmegaR, --AR, --alphaR).
 * @throws FatalError on unknown presets or invalid final parameters.
 */
core::Params paramsFromOptions(const Options &options);

/**
 * Build a fault plan from `--fault-*` options (all optional; the default
 * plan injects nothing):
 *   --fault-seed N                 seed for every stochastic fault draw
 *   --fault-at-cycle C[,C...]      forced power failure at active cycle C
 *   --fault-at-instr K[,K...]      forced power failure before instr K
 *   --fault-backup-prob P          P(interrupt a backup mid-slot-write)
 *   --fault-selector-prob P        P(failure exactly at the selector flip)
 *   --fault-restore-prob P         P(interrupt a restore)
 *   --fault-max N                  cap on forced power failures
 *   --fault-ckpt-corrupt-prob P    P(bit flip in the slot just committed)
 *   --fault-selector-corrupt-prob P  P(bit flip in the selector word)
 *   --fault-wear-rate R            bit errors per NVM byte written
 *   --fault-max-bitflips N         cap on injected bit flips
 *   --fault-transient-restore-prob P  P(transient restore read fault)
 * @throws FatalError on unparsable numbers or out-of-range rates.
 */
fault::FaultPlan faultPlanFromOptions(const Options &options);

/** True when any --fault-* option was supplied. */
bool hasFaultOptions(const Options &options);

} // namespace eh::cli

#endif // EH_CLI_OPTIONS_HH
