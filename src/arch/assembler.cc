#include "arch/assembler.hh"

#include <cstring>

#include "util/panic.hh"

namespace eh::arch {

Assembler::Assembler(std::string program_name)
    : progName(std::move(program_name))
{
}

Assembler &
Assembler::label(const std::string &name)
{
    if (labels.count(name))
        fatalf("Assembler(", progName, "): duplicate label '", name, "'");
    labels.emplace(name, instrs.size());
    return *this;
}

Assembler &
Assembler::emit(Opcode op, std::uint8_t rd, std::uint8_t ra,
                std::uint8_t rb, std::int32_t imm)
{
    EH_ASSERT(rd < NumRegs && ra < NumRegs && rb < NumRegs,
              "register index out of range");
    instrs.push_back(Instruction{op, rd, ra, rb, imm});
    return *this;
}

Assembler &
Assembler::emitBranch(Opcode op, std::uint8_t ra, std::uint8_t rb,
                      const std::string &target)
{
    fixups.emplace_back(instrs.size(), target);
    return emit(op, 0, ra, rb, 0);
}

Assembler &Assembler::add(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::Add, rd, ra, rb); }
Assembler &Assembler::sub(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::Sub, rd, ra, rb); }
Assembler &Assembler::mul(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::Mul, rd, ra, rb); }
Assembler &Assembler::divu(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::Divu, rd, ra, rb); }
Assembler &Assembler::remu(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::Remu, rd, ra, rb); }
Assembler &Assembler::and_(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::And, rd, ra, rb); }
Assembler &Assembler::orr(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::Orr, rd, ra, rb); }
Assembler &Assembler::eor(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::Eor, rd, ra, rb); }
Assembler &Assembler::lsl(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::Lsl, rd, ra, rb); }
Assembler &Assembler::lsr(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::Lsr, rd, ra, rb); }
Assembler &Assembler::asr(Reg rd, Reg ra, Reg rb)
{ return emit(Opcode::Asr, rd, ra, rb); }

Assembler &Assembler::addi(Reg rd, Reg ra, std::int32_t imm)
{ return emit(Opcode::AddI, rd, ra, 0, imm); }
Assembler &Assembler::subi(Reg rd, Reg ra, std::int32_t imm)
{ return emit(Opcode::SubI, rd, ra, 0, imm); }
Assembler &Assembler::muli(Reg rd, Reg ra, std::int32_t imm)
{ return emit(Opcode::MulI, rd, ra, 0, imm); }
Assembler &Assembler::andi(Reg rd, Reg ra, std::int32_t imm)
{ return emit(Opcode::AndI, rd, ra, 0, imm); }
Assembler &Assembler::orri(Reg rd, Reg ra, std::int32_t imm)
{ return emit(Opcode::OrrI, rd, ra, 0, imm); }
Assembler &Assembler::eori(Reg rd, Reg ra, std::int32_t imm)
{ return emit(Opcode::EorI, rd, ra, 0, imm); }
Assembler &Assembler::lsli(Reg rd, Reg ra, std::int32_t imm)
{ return emit(Opcode::LslI, rd, ra, 0, imm); }
Assembler &Assembler::lsri(Reg rd, Reg ra, std::int32_t imm)
{ return emit(Opcode::LsrI, rd, ra, 0, imm); }
Assembler &Assembler::asri(Reg rd, Reg ra, std::int32_t imm)
{ return emit(Opcode::AsrI, rd, ra, 0, imm); }

Assembler &Assembler::mov(Reg rd, Reg ra)
{ return emit(Opcode::Mov, rd, ra); }
Assembler &Assembler::movi(Reg rd, std::int32_t imm)
{ return emit(Opcode::MovI, rd, 0, 0, imm); }

Assembler &Assembler::ldb(Reg rd, Reg ra, std::int32_t offset)
{ return emit(Opcode::Ldb, rd, ra, 0, offset); }
Assembler &Assembler::ldh(Reg rd, Reg ra, std::int32_t offset)
{ return emit(Opcode::Ldh, rd, ra, 0, offset); }
Assembler &Assembler::ldw(Reg rd, Reg ra, std::int32_t offset)
{ return emit(Opcode::Ldw, rd, ra, 0, offset); }
Assembler &Assembler::stb(Reg rb, Reg ra, std::int32_t offset)
{ return emit(Opcode::Stb, 0, ra, rb, offset); }
Assembler &Assembler::sth(Reg rb, Reg ra, std::int32_t offset)
{ return emit(Opcode::Sth, 0, ra, rb, offset); }
Assembler &Assembler::stw(Reg rb, Reg ra, std::int32_t offset)
{ return emit(Opcode::Stw, 0, ra, rb, offset); }

Assembler &Assembler::b(const std::string &target)
{ return emitBranch(Opcode::B, 0, 0, target); }
Assembler &Assembler::beq(Reg ra, Reg rb, const std::string &target)
{ return emitBranch(Opcode::Beq, ra, rb, target); }
Assembler &Assembler::bne(Reg ra, Reg rb, const std::string &target)
{ return emitBranch(Opcode::Bne, ra, rb, target); }
Assembler &Assembler::blt(Reg ra, Reg rb, const std::string &target)
{ return emitBranch(Opcode::Blt, ra, rb, target); }
Assembler &Assembler::bge(Reg ra, Reg rb, const std::string &target)
{ return emitBranch(Opcode::Bge, ra, rb, target); }
Assembler &Assembler::bltu(Reg ra, Reg rb, const std::string &target)
{ return emitBranch(Opcode::Bltu, ra, rb, target); }
Assembler &Assembler::bgeu(Reg ra, Reg rb, const std::string &target)
{ return emitBranch(Opcode::Bgeu, ra, rb, target); }
Assembler &Assembler::call(const std::string &target)
{ return emitBranch(Opcode::Call, 0, 0, target); }
Assembler &Assembler::ret()
{ return emit(Opcode::Ret); }

Assembler &Assembler::checkpoint()
{ return emit(Opcode::Checkpoint); }
Assembler &Assembler::sense(Reg rd, Reg ra)
{ return emit(Opcode::Sense, rd, ra); }
Assembler &Assembler::halt()
{ return emit(Opcode::Halt); }
Assembler &Assembler::nop()
{ return emit(Opcode::Nop); }

Assembler &
Assembler::initBytes(std::uint64_t addr, std::vector<std::uint8_t> bytes)
{
    inits.push_back({addr, std::move(bytes)});
    return *this;
}

Assembler &
Assembler::initWords(std::uint64_t addr,
                     const std::vector<std::uint32_t> &words)
{
    std::vector<std::uint8_t> bytes(words.size() * 4);
    std::memcpy(bytes.data(), words.data(), bytes.size());
    return initBytes(addr, std::move(bytes));
}

Program
Assembler::assemble() const
{
    Program prog;
    prog.name = progName;
    prog.code = instrs;
    prog.memInits = inits;
    for (const auto &[index, target] : fixups) {
        auto it = labels.find(target);
        if (it == labels.end())
            fatalf("Assembler(", progName, "): undefined label '", target,
                   "'");
        prog.code[index].imm = static_cast<std::int32_t>(it->second);
    }
    return prog;
}

} // namespace eh::arch
