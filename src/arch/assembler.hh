/**
 * @file
 * In-process assembler DSL for building Programs. Workloads are written
 * against this builder: each emit method appends one instruction, labels
 * name instruction positions, and branch/call targets given as labels are
 * resolved at assemble() time. Initial memory images (arrays, tables,
 * stacks) are declared with data helpers.
 */

#ifndef EH_ARCH_ASSEMBLER_HH
#define EH_ARCH_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/isa.hh"

namespace eh::arch {

/**
 * Builder for Program values. Methods return *this so instruction
 * sequences chain. Forward references to labels are permitted; all labels
 * must be defined by assemble() time.
 */
class Assembler
{
  public:
    /** @param program_name Name recorded on the produced Program. */
    explicit Assembler(std::string program_name);

    // --- Labels ---------------------------------------------------------

    /** Define @p name at the current instruction position. */
    Assembler &label(const std::string &name);

    // --- ALU ------------------------------------------------------------

    Assembler &add(Reg rd, Reg ra, Reg rb);
    Assembler &sub(Reg rd, Reg ra, Reg rb);
    Assembler &mul(Reg rd, Reg ra, Reg rb);
    Assembler &divu(Reg rd, Reg ra, Reg rb);
    Assembler &remu(Reg rd, Reg ra, Reg rb);
    Assembler &and_(Reg rd, Reg ra, Reg rb);
    Assembler &orr(Reg rd, Reg ra, Reg rb);
    Assembler &eor(Reg rd, Reg ra, Reg rb);
    Assembler &lsl(Reg rd, Reg ra, Reg rb);
    Assembler &lsr(Reg rd, Reg ra, Reg rb);
    Assembler &asr(Reg rd, Reg ra, Reg rb);

    Assembler &addi(Reg rd, Reg ra, std::int32_t imm);
    Assembler &subi(Reg rd, Reg ra, std::int32_t imm);
    Assembler &muli(Reg rd, Reg ra, std::int32_t imm);
    Assembler &andi(Reg rd, Reg ra, std::int32_t imm);
    Assembler &orri(Reg rd, Reg ra, std::int32_t imm);
    Assembler &eori(Reg rd, Reg ra, std::int32_t imm);
    Assembler &lsli(Reg rd, Reg ra, std::int32_t imm);
    Assembler &lsri(Reg rd, Reg ra, std::int32_t imm);
    Assembler &asri(Reg rd, Reg ra, std::int32_t imm);

    Assembler &mov(Reg rd, Reg ra);
    Assembler &movi(Reg rd, std::int32_t imm);

    // --- Memory ----------------------------------------------------------

    Assembler &ldb(Reg rd, Reg ra, std::int32_t offset = 0);
    Assembler &ldh(Reg rd, Reg ra, std::int32_t offset = 0);
    Assembler &ldw(Reg rd, Reg ra, std::int32_t offset = 0);
    Assembler &stb(Reg rb, Reg ra, std::int32_t offset = 0);
    Assembler &sth(Reg rb, Reg ra, std::int32_t offset = 0);
    Assembler &stw(Reg rb, Reg ra, std::int32_t offset = 0);

    // --- Control flow ----------------------------------------------------

    Assembler &b(const std::string &target);
    Assembler &beq(Reg ra, Reg rb, const std::string &target);
    Assembler &bne(Reg ra, Reg rb, const std::string &target);
    Assembler &blt(Reg ra, Reg rb, const std::string &target);
    Assembler &bge(Reg ra, Reg rb, const std::string &target);
    Assembler &bltu(Reg ra, Reg rb, const std::string &target);
    Assembler &bgeu(Reg ra, Reg rb, const std::string &target);
    Assembler &call(const std::string &target);
    Assembler &ret();

    // --- Intermittence & misc ---------------------------------------------

    Assembler &checkpoint();
    Assembler &sense(Reg rd, Reg ra);
    Assembler &halt();
    Assembler &nop();

    // --- Data images -------------------------------------------------------

    /** Declare raw initial bytes at an absolute address. */
    Assembler &initBytes(std::uint64_t addr,
                         std::vector<std::uint8_t> bytes);

    /** Declare initial little-endian 32-bit words at an address. */
    Assembler &initWords(std::uint64_t addr,
                         const std::vector<std::uint32_t> &words);

    // --- Finalize ------------------------------------------------------------

    /** Current instruction index (for computed targets in tests). */
    std::size_t here() const { return instrs.size(); }

    /**
     * Resolve labels and produce the Program.
     * @throws FatalError on undefined or duplicate labels.
     */
    Program assemble() const;

  private:
    Assembler &emit(Opcode op, std::uint8_t rd = 0, std::uint8_t ra = 0,
                    std::uint8_t rb = 0, std::int32_t imm = 0);
    Assembler &emitBranch(Opcode op, std::uint8_t ra, std::uint8_t rb,
                          const std::string &target);

    std::string progName;
    std::vector<Instruction> instrs;
    std::vector<std::pair<std::size_t, std::string>> fixups;
    std::unordered_map<std::string, std::size_t> labels;
    std::vector<Program::MemInit> inits;
};

} // namespace eh::arch

#endif // EH_ARCH_ASSEMBLER_HH
