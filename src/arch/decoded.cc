#include "arch/decoded.hh"

#include <algorithm>

#include "arch/cpu.hh"
#include "util/panic.hh"

namespace eh::arch {

std::uint32_t
accessBytes(Opcode op)
{
    switch (op) {
      case Opcode::Ldb:
      case Opcode::Stb:
        return 1;
      case Opcode::Ldh:
      case Opcode::Sth:
        return 2;
      default:
        return 4;
    }
}

namespace {

std::uint32_t
baseCycles(InstrClass cls, const CostModel &cost)
{
    switch (cls) {
      case InstrClass::Alu: return cost.aluCycles;
      case InstrClass::Mul: return cost.mulCycles;
      case InstrClass::Div: return cost.divCycles;
      case InstrClass::Load:
      case InstrClass::Store: return cost.memCycles;
      case InstrClass::Branch: return cost.branchCycles;
      case InstrClass::Call: return cost.callCycles;
      case InstrClass::Sense: return cost.senseCycles;
      case InstrClass::Checkpoint: return cost.checkpointCycles;
      case InstrClass::Halt: return cost.haltCycles;
    }
    panic("baseCycles: bad instruction class");
}

ExecKind
kindOf(InstrClass cls)
{
    switch (cls) {
      case InstrClass::Load:
      case InstrClass::Store:
        return ExecKind::Mem;
      case InstrClass::Checkpoint:
        return ExecKind::Checkpoint;
      case InstrClass::Halt:
        return ExecKind::Halt;
      default:
        return ExecKind::Straight;
    }
}

bool
transfersControl(InstrClass cls)
{
    return cls == InstrClass::Branch || cls == InstrClass::Call;
}

} // namespace

DecodedProgram::DecodedProgram(const Program &program,
                               const CostModel &costs)
{
    const std::size_t n = program.code.size();
    insn.resize(n);
    cumCycles.resize(n + 1, 0);
    cumEnergy.resize(n + 1, 0.0);

    for (std::size_t i = 0; i < n; ++i) {
        DecodedInsn &d = insn[i];
        d.in = program.code[i];
        d.cls = classify(d.in.op);
        d.kind = kindOf(d.cls);
        d.cycles = baseCycles(d.cls, costs);
        if (d.kind == ExecKind::Mem) {
            d.memBytes =
                static_cast<std::uint8_t>(accessBytes(d.in.op));
            d.isStore = (d.cls == InstrClass::Store);
            // Memory energy depends on the access (cache state, NVM
            // tech); it is resolved at execution with the interpreter's
            // exact expression. The prefix sums see only the base part.
            d.energy = costs.memEnergyPerCycle *
                       static_cast<double>(d.cycles);
        } else {
            // Exactly Cpu::classEnergy(cls, cycles): the same
            // rate-times-cycles product the interpreter computes.
            double rate = costs.execEnergyPerCycle;
            if (d.cls == InstrClass::Sense)
                rate = costs.senseEnergyPerCycle;
            d.energy = rate * static_cast<double>(d.cycles);
        }
        cumCycles[i + 1] = cumCycles[i] + d.cycles;
        cumEnergy[i + 1] = cumEnergy[i] + d.energy;
    }

    // Straight-line spans, computed back to front: a span runs through
    // consecutive Straight instructions and ends just after the first
    // control transfer (which may jump anywhere, so nothing sequential
    // follows it).
    for (std::size_t i = n; i-- > 0;) {
        DecodedInsn &d = insn[i];
        if (d.kind != ExecKind::Straight) {
            d.spanEnd = static_cast<std::uint32_t>(i);
            continue;
        }
        if (transfersControl(d.cls) || i + 1 == n ||
            insn[i + 1].kind != ExecKind::Straight) {
            d.spanEnd = static_cast<std::uint32_t>(i + 1);
        } else {
            d.spanEnd = insn[i + 1].spanEnd;
        }
    }

    // Classic basic blocks: leaders at the entry, at branch/call
    // targets, and after any block-ending instruction; blocks also end
    // at memory, checkpoint and halt instructions, which the block
    // engine must dispatch individually.
    std::vector<bool> leader(n, false);
    if (n > 0)
        leader[0] = true;
    for (std::size_t i = 0; i < n; ++i) {
        const DecodedInsn &d = insn[i];
        const bool ends_block =
            transfersControl(d.cls) || d.kind != ExecKind::Straight;
        if (ends_block && i + 1 < n)
            leader[i + 1] = true;
        if (transfersControl(d.cls) && d.in.op != Opcode::Ret) {
            const auto target = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(d.in.imm));
            if (target < n)
                leader[target] = true;
        }
    }
    for (std::size_t i = 0; i < n;) {
        std::size_t end = i + 1;
        if (transfersControl(insn[i].cls) ||
            insn[i].kind != ExecKind::Straight) {
            // single-instruction block (or the transfer ends it below)
        } else {
            while (end < n && !leader[end] &&
                   insn[end].kind == ExecKind::Straight) {
                if (transfersControl(insn[end].cls)) {
                    ++end;
                    break;
                }
                ++end;
            }
        }
        BasicBlock b;
        b.first = static_cast<std::uint32_t>(i);
        b.end = static_cast<std::uint32_t>(end);
        b.cycles = cumCycles[end] - cumCycles[i];
        b.energy = cumEnergy[end] - cumEnergy[i];
        blockTable.push_back(b);
        i = end;
    }
}

std::size_t
DecodedProgram::blockOf(std::uint64_t pc) const
{
    EH_ASSERT(pc < insn.size(), "blockOf: pc out of range");
    auto it = std::upper_bound(
        blockTable.begin(), blockTable.end(), pc,
        [](std::uint64_t p, const BasicBlock &b) { return p < b.end; });
    // upper_bound with this predicate finds the first block whose end
    // exceeds pc — exactly the covering block.
    EH_ASSERT(it != blockTable.end(), "blockOf: no covering block");
    return static_cast<std::size_t>(it - blockTable.begin());
}

} // namespace eh::arch
