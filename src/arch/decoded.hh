/**
 * @file
 * One-time program analysis backing the block execution engine
 * (docs/PERFORMANCE.md). A Program is decoded once into a flat array of
 * DecodedInsn — instruction class, memory-access width, base cycle count
 * and (for non-memory instructions) the exact energy the interpreter
 * would charge — so neither engine re-runs classify()/accessBytes() per
 * executed instruction. On top of the array the analysis derives:
 *
 *  - straight-line *spans*: maximal runs of non-memory, non-checkpoint,
 *    non-halt instructions ending at (and including) the first control
 *    transfer. Within a span the program counter advances sequentially,
 *    so the block engine can pre-clamp how many instructions fit a
 *    cycle/energy budget instead of testing limits per instruction;
 *  - per-program prefix sums of cycles and energy (valid across any
 *    sequential range, hence across any span), used for that clamping
 *    and for resolving how far a supply budget reaches into a span;
 *  - classic basic blocks (leaders at branch targets, boundaries at
 *    control transfers and at memory/checkpoint/halt instructions) for
 *    inspection, tests and reporting.
 *
 * The decoded costs are *identical* to what Cpu::step() charges — the
 * same rate-times-cycles products in the same order — which is what lets
 * the block engine promise bit-identical results to the scalar path.
 */

#ifndef EH_ARCH_DECODED_HH
#define EH_ARCH_DECODED_HH

#include <cstdint>
#include <vector>

#include "arch/isa.hh"

namespace eh::arch {

struct CostModel;

/** Access width in bytes of a load/store opcode (4 for non-memory). */
std::uint32_t accessBytes(Opcode op);

/** How the block engine must dispatch one instruction. */
enum class ExecKind : std::uint8_t
{
    Straight,   ///< ALU/branch/call/sense: executes without memory
    Mem,        ///< load or store: needs the AddressSpace (and a peek)
    Checkpoint, ///< triggers the policy's onCheckpointOp consultation
    Halt,       ///< ends the program
};

/** One pre-decoded instruction with its interpreter-identical costs. */
struct DecodedInsn
{
    Instruction in;                       ///< the instruction itself
    InstrClass cls = InstrClass::Alu;     ///< cached classify(in.op)
    ExecKind kind = ExecKind::Straight;   ///< engine dispatch kind
    std::uint8_t memBytes = 0;            ///< access width; 0 if not Mem
    bool isStore = false;                 ///< memory op writes
    std::uint32_t cycles = 0;             ///< base cycles (pre-access)
    double energy = 0.0;                  ///< full energy; 0.0 for Mem
    std::uint32_t spanEnd = 0;            ///< one past this span's last insn
};

/** One basic block: [first, end) plus its summed base costs. */
struct BasicBlock
{
    std::uint32_t first = 0;
    std::uint32_t end = 0;       ///< exclusive
    std::uint64_t cycles = 0;    ///< summed base cycles
    double energy = 0.0;         ///< summed pre-resolved energy
};

/** The flat decoded program (see file header). */
class DecodedProgram
{
  public:
    DecodedProgram(const Program &program, const CostModel &costs);

    /** Decoded instructions, index-aligned with Program::code. */
    const std::vector<DecodedInsn> &instructions() const { return insn; }

    /** Number of instructions. */
    std::size_t size() const { return insn.size(); }

    const DecodedInsn &at(std::uint64_t pc) const { return insn[pc]; }

    /**
     * cycleSums()[i] = base cycles of instructions [0, i). Meaningful
     * differences require the range to execute sequentially (any
     * sub-range of one span qualifies).
     */
    const std::vector<std::uint64_t> &cycleSums() const
    {
        return cumCycles;
    }

    /** energySums()[i] = pre-resolved energy of instructions [0, i). */
    const std::vector<double> &energySums() const { return cumEnergy; }

    /** Basic blocks in program order. */
    const std::vector<BasicBlock> &blocks() const { return blockTable; }

    /** Block index covering instruction @p pc. */
    std::size_t blockOf(std::uint64_t pc) const;

  private:
    std::vector<DecodedInsn> insn;
    std::vector<std::uint64_t> cumCycles; ///< size() + 1 entries
    std::vector<double> cumEnergy;        ///< size() + 1 entries
    std::vector<BasicBlock> blockTable;
};

} // namespace eh::arch

#endif // EH_ARCH_DECODED_HH
