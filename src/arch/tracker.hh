/**
 * @file
 * Clank-style idempotency tracker (Section V-B). Clank detects when a
 * store would break the idempotency of the code executed since the last
 * checkpoint — i.e., a store to a nonvolatile location that has been read
 * since that checkpoint (a WAR hazard) — and forces a backup *before* the
 * store commits, so that re-execution from the checkpoint observes the
 * same memory values.
 *
 * The tracker mirrors the paper's configuration: an 8-entry read-first
 * buffer, an 8-entry write-first buffer, and an 8000-cycle watchdog timer
 * that forces a backup when no violation occurs.
 *
 * Granularity: entries are 32-bit-word addresses. Sub-word stores do NOT
 * populate the write-first buffer (a later read of the word's other bytes
 * would otherwise be wrongly treated as reading-own-write); this is the
 * conservative-safe direction — it can only cause extra backups, never a
 * missed violation.
 */

#ifndef EH_ARCH_TRACKER_HH
#define EH_ARCH_TRACKER_HH

#include <cstdint>
#include <vector>

namespace eh::arch {

/** Why the tracker demands a backup. */
enum class BackupTrigger
{
    None,           ///< keep executing
    Violation,      ///< idempotency (WAR) violation: back up pre-store
    BufferOverflow, ///< tracking buffer full: cannot prove idempotency
    Watchdog        ///< watchdog period elapsed without a violation
};

/** Printable trigger name. */
const char *backupTriggerName(BackupTrigger trigger);

/** Counters accumulated by the tracker. */
struct TrackerStats
{
    std::uint64_t loadsObserved = 0;
    std::uint64_t storesObserved = 0;
    std::uint64_t violations = 0;
    std::uint64_t overflows = 0;
    std::uint64_t watchdogFirings = 0;
};

/**
 * Detection logic. The simulator consults onLoad/onStore with each
 * nonvolatile access *before* executing it, and advances the watchdog
 * with tick(). A non-None result obliges the caller to perform a backup
 * (and then reset()) before letting the access proceed.
 */
class IdempotencyTracker
{
  public:
    /**
     * @param read_entries     Read-first buffer capacity (> 0).
     * @param write_entries    Write-first buffer capacity (> 0).
     * @param watchdog_cycles  Cycles between forced backups (> 0).
     */
    IdempotencyTracker(std::size_t read_entries = 8,
                       std::size_t write_entries = 8,
                       std::uint64_t watchdog_cycles = 8000);

    /**
     * A load of @p bytes at @p addr (nonvolatile) is about to execute.
     * @return BufferOverflow if the read-first buffer cannot track it.
     */
    BackupTrigger onLoad(std::uint64_t addr, std::uint32_t bytes);

    /**
     * A store of @p bytes at @p addr (nonvolatile) is about to execute.
     * @return Violation if the target was read since the last backup;
     *         BufferOverflow if the write-first buffer cannot track it.
     */
    BackupTrigger onStore(std::uint64_t addr, std::uint32_t bytes);

    /**
     * Advance the watchdog by @p cycles.
     * @return Watchdog when the period has elapsed since the last reset.
     */
    BackupTrigger tick(std::uint64_t cycles);

    /** A backup committed: clear both buffers and restart the watchdog. */
    void reset();

    /** Counters so far. */
    const TrackerStats &stats() const { return counters; }

    /** Cycles since the last reset (watchdog position). */
    std::uint64_t cyclesSinceBackup() const { return sinceBackup; }

    /** Watchdog period in force. */
    std::uint64_t watchdogPeriod() const { return watchdog; }

    /** Change the watchdog period (takes effect immediately). */
    void setWatchdogPeriod(std::uint64_t cycles);

  private:
    static std::uint64_t firstWord(std::uint64_t addr);
    static std::uint64_t lastWord(std::uint64_t addr,
                                  std::uint32_t bytes);
    bool inBuffer(const std::vector<std::uint64_t> &buffer,
                  std::uint64_t word) const;

    std::size_t readCapacity;
    std::size_t writeCapacity;
    std::uint64_t watchdog;
    std::vector<std::uint64_t> readFirst;
    std::vector<std::uint64_t> writeFirst;
    std::uint64_t sinceBackup = 0;
    TrackerStats counters;
};

} // namespace eh::arch

#endif // EH_ARCH_TRACKER_HH
