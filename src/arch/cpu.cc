#include "arch/cpu.hh"

#include <cmath>
#include <cstring>

#include "util/panic.hh"

namespace eh::arch {

CostModel
CostModel::msp430()
{
    CostModel c;
    c.execEnergyPerCycle = 65.625; // 1.05 mW / 16 MHz in pJ
    c.memEnergyPerCycle = 75.0;    // 1.20 mW / 16 MHz in pJ
    c.senseEnergyPerCycle = 90.0;
    return c;
}

CostModel
CostModel::cortexM0()
{
    CostModel c;
    c.execEnergyPerCycle = 147.0; // ~49 uA/MHz at 3.0 V
    c.memEnergyPerCycle = 168.0;
    c.senseEnergyPerCycle = 190.0;
    c.mulCycles = 1; // M0+ single-cycle multiplier option
    c.divCycles = 17; // software divide
    return c;
}

Cpu::Cpu(const Program &program, mem::AddressSpace &memory,
         const CostModel &costs)
    : prog(program), mem(memory), cost(costs), dec(program, costs)
{
    if (prog.code.empty())
        fatalf("Cpu: program '", prog.name, "' has no instructions");
}

void
Cpu::applyMemInits()
{
    for (const auto &init : prog.memInits)
        mem.write(init.addr, init.bytes.data(), init.bytes.size());
}

void
Cpu::reset()
{
    regs.fill(0);
    pcValue = 0;
    isHalted = false;
    poisoned = false;
}

void
Cpu::setPc(std::uint64_t pc)
{
    pcValue = pc;
}

std::uint32_t
Cpu::reg(unsigned index) const
{
    EH_ASSERT(index < NumRegs, "register index out of range");
    return regs[index];
}

void
Cpu::setReg(unsigned index, std::uint32_t value)
{
    EH_ASSERT(index < NumRegs, "register index out of range");
    regs[index] = value;
}

MemPeek
Cpu::peek() const
{
    MemPeek p;
    if (isHalted || pcValue >= prog.code.size())
        return p;
    const DecodedInsn &d = dec.at(pcValue);
    p.op = d.in.op;
    if (d.kind != ExecKind::Mem)
        return p;
    p.isMem = true;
    p.isStore = d.isStore;
    p.addr = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(regs[d.in.ra]) + d.in.imm);
    p.bytes = d.memBytes;
    p.nonvolatile = mem.isNonvolatile(p.addr);
    return p;
}

double
Cpu::classEnergy(InstrClass cls, std::uint64_t cycles) const
{
    double rate;
    switch (cls) {
      case InstrClass::Load:
      case InstrClass::Store:
        rate = cost.memEnergyPerCycle;
        break;
      case InstrClass::Sense:
        rate = cost.senseEnergyPerCycle;
        break;
      default:
        rate = cost.execEnergyPerCycle;
        break;
    }
    return rate * static_cast<double>(cycles);
}

StepResult
Cpu::step()
{
    if (isHalted)
        panic("Cpu::step on a halted CPU");
    if (poisoned)
        panic("Cpu::step after power failure without a restore");
    if (pcValue >= prog.code.size())
        panicf("Cpu::step: pc ", pcValue, " out of range for program '",
               prog.name, "' (", prog.code.size(), " instructions)");

    const DecodedInsn &d = dec.at(pcValue);
    const Instruction &in = d.in;
    StepResult r;
    r.cls = d.cls;
    r.cycles = d.cycles;
    ++executed;

    std::uint64_t next_pc = pcValue + 1;
    switch (d.cls) {
      case InstrClass::Alu:
      case InstrClass::Mul:
      case InstrClass::Div:
        regs[in.rd] = aluOp(in);
        r.energy = d.energy;
        break;
      case InstrClass::Load: {
        r.isMem = true;
        r.memAddr = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(regs[in.ra]) + in.imm);
        r.memBytes = d.memBytes;
        std::uint32_t value = 0;
        const auto access = mem.read(r.memAddr, &value, r.memBytes);
        r.memNonvolatile = access.nonvolatile;
        r.cycles += access.cycles;
        regs[in.rd] = value;
        r.energy = classEnergy(d.cls, r.cycles) + access.energy;
        break;
      }
      case InstrClass::Store: {
        r.isMem = true;
        r.memIsStore = true;
        r.memAddr = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(regs[in.ra]) + in.imm);
        r.memBytes = d.memBytes;
        const std::uint32_t value = regs[in.rb];
        const auto access = mem.write(r.memAddr, &value, r.memBytes);
        r.memNonvolatile = access.nonvolatile;
        r.cycles += access.cycles;
        r.energy = classEnergy(d.cls, r.cycles) + access.energy;
        break;
      }
      case InstrClass::Branch:
        if (branchTaken(in.op, regs[in.ra], regs[in.rb]))
            next_pc = static_cast<std::uint64_t>(in.imm);
        r.energy = d.energy;
        break;
      case InstrClass::Call:
        if (in.op == Opcode::Call) {
            regs[LR] = static_cast<std::uint32_t>(pcValue + 1);
            next_pc = static_cast<std::uint64_t>(in.imm);
        } else { // Ret
            next_pc = regs[LR];
        }
        r.energy = d.energy;
        break;
      case InstrClass::Sense:
        regs[in.rd] = sensorValue(regs[in.ra]);
        r.energy = d.energy;
        break;
      case InstrClass::Checkpoint:
        r.checkpointRequested = true;
        r.energy = d.energy;
        break;
      case InstrClass::Halt:
        r.halted = true;
        isHalted = true;
        next_pc = pcValue; // stay put; the simulator stops stepping
        r.energy = d.energy;
        break;
    }

    pcValue = next_pc;
    return r;
}

void
Cpu::saveArchState(std::uint8_t *out) const
{
    std::memcpy(out, regs.data(), NumRegs * 4);
    const auto pc32 = static_cast<std::uint32_t>(pcValue);
    std::memcpy(out + NumRegs * 4, &pc32, 4);
}

void
Cpu::loadArchState(const std::uint8_t *in)
{
    std::memcpy(regs.data(), in, NumRegs * 4);
    std::uint32_t pc32;
    std::memcpy(&pc32, in + NumRegs * 4, 4);
    pcValue = pc32;
    poisoned = false;
    isHalted = false;
}

void
Cpu::powerFail()
{
    regs.fill(0xA5A5A5A5u);
    pcValue = UINT64_MAX;
    poisoned = true;
    isHalted = false;
}

std::uint32_t
Cpu::sensorValue(std::uint32_t index)
{
    // Slow triangular wave (period 256) plus hash noise, clamped to a
    // 10-bit ADC range. Pure function of the index: replayable.
    const std::uint32_t phase = index & 0xFF;
    const std::uint32_t tri =
        phase < 128 ? phase * 6 : (255 - phase) * 6; // 0..762
    std::uint32_t h = index * 0x9E3779B9u;
    h ^= h >> 16;
    h *= 0x85EBCA6Bu;
    h ^= h >> 13;
    const std::uint32_t noise = h % 61; // 0..60
    const std::uint32_t value = 130 + tri + noise;
    return value > 1023 ? 1023 : value;
}

} // namespace eh::arch
