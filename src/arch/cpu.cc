#include "arch/cpu.hh"

#include <cmath>
#include <cstring>

#include "util/panic.hh"

namespace eh::arch {

CostModel
CostModel::msp430()
{
    CostModel c;
    c.execEnergyPerCycle = 65.625; // 1.05 mW / 16 MHz in pJ
    c.memEnergyPerCycle = 75.0;    // 1.20 mW / 16 MHz in pJ
    c.senseEnergyPerCycle = 90.0;
    return c;
}

CostModel
CostModel::cortexM0()
{
    CostModel c;
    c.execEnergyPerCycle = 147.0; // ~49 uA/MHz at 3.0 V
    c.memEnergyPerCycle = 168.0;
    c.senseEnergyPerCycle = 190.0;
    c.mulCycles = 1; // M0+ single-cycle multiplier option
    c.divCycles = 17; // software divide
    return c;
}

Cpu::Cpu(const Program &program, mem::AddressSpace &memory,
         const CostModel &costs)
    : prog(program), mem(memory), cost(costs)
{
    if (prog.code.empty())
        fatalf("Cpu: program '", prog.name, "' has no instructions");
}

void
Cpu::applyMemInits()
{
    for (const auto &init : prog.memInits)
        mem.write(init.addr, init.bytes.data(), init.bytes.size());
}

void
Cpu::reset()
{
    regs.fill(0);
    pcValue = 0;
    isHalted = false;
    poisoned = false;
}

void
Cpu::setPc(std::uint64_t pc)
{
    pcValue = pc;
}

std::uint32_t
Cpu::reg(unsigned index) const
{
    EH_ASSERT(index < NumRegs, "register index out of range");
    return regs[index];
}

void
Cpu::setReg(unsigned index, std::uint32_t value)
{
    EH_ASSERT(index < NumRegs, "register index out of range");
    regs[index] = value;
}

namespace {

std::uint32_t
accessBytes(Opcode op)
{
    switch (op) {
      case Opcode::Ldb:
      case Opcode::Stb:
        return 1;
      case Opcode::Ldh:
      case Opcode::Sth:
        return 2;
      default:
        return 4;
    }
}

} // namespace

MemPeek
Cpu::peek() const
{
    MemPeek p;
    if (isHalted || pcValue >= prog.code.size())
        return p;
    const Instruction &in = prog.code[pcValue];
    p.op = in.op;
    const InstrClass cls = classify(in.op);
    if (cls != InstrClass::Load && cls != InstrClass::Store)
        return p;
    p.isMem = true;
    p.isStore = (cls == InstrClass::Store);
    p.addr = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(regs[in.ra]) + in.imm);
    p.bytes = accessBytes(in.op);
    p.nonvolatile = mem.isNonvolatile(p.addr);
    return p;
}

double
Cpu::classEnergy(InstrClass cls, std::uint64_t cycles) const
{
    double rate;
    switch (cls) {
      case InstrClass::Load:
      case InstrClass::Store:
        rate = cost.memEnergyPerCycle;
        break;
      case InstrClass::Sense:
        rate = cost.senseEnergyPerCycle;
        break;
      default:
        rate = cost.execEnergyPerCycle;
        break;
    }
    return rate * static_cast<double>(cycles);
}

std::uint32_t
Cpu::aluOp(const Instruction &in) const
{
    const std::uint32_t a = regs[in.ra];
    const std::uint32_t b = regs[in.rb];
    const auto imm = static_cast<std::uint32_t>(in.imm);
    switch (in.op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::Mul: return a * b;
      case Opcode::Divu: return b == 0 ? UINT32_MAX : a / b;
      case Opcode::Remu: return b == 0 ? a : a % b;
      case Opcode::And: return a & b;
      case Opcode::Orr: return a | b;
      case Opcode::Eor: return a ^ b;
      case Opcode::Lsl: return b >= 32 ? 0 : a << b;
      case Opcode::Lsr: return b >= 32 ? 0 : a >> b;
      case Opcode::Asr: {
        const auto sa = static_cast<std::int32_t>(a);
        const std::uint32_t sh = b >= 31 ? 31 : b;
        return static_cast<std::uint32_t>(sa >> sh);
      }
      case Opcode::AddI: return a + imm;
      case Opcode::SubI: return a - imm;
      case Opcode::MulI: return a * imm;
      case Opcode::AndI: return a & imm;
      case Opcode::OrrI: return a | imm;
      case Opcode::EorI: return a ^ imm;
      case Opcode::LslI: return imm >= 32 ? 0 : a << imm;
      case Opcode::LsrI: return imm >= 32 ? 0 : a >> imm;
      case Opcode::AsrI: {
        const auto sa = static_cast<std::int32_t>(a);
        const std::int32_t sh = in.imm >= 31 ? 31 : in.imm;
        return static_cast<std::uint32_t>(sa >> sh);
      }
      case Opcode::Mov: return a;
      case Opcode::MovI: return imm;
      case Opcode::Nop: return regs[in.rd];
      default:
        panic("aluOp called on non-ALU opcode");
    }
}

StepResult
Cpu::step()
{
    if (isHalted)
        panic("Cpu::step on a halted CPU");
    if (poisoned)
        panic("Cpu::step after power failure without a restore");
    if (pcValue >= prog.code.size())
        panicf("Cpu::step: pc ", pcValue, " out of range for program '",
               prog.name, "' (", prog.code.size(), " instructions)");

    const Instruction &in = prog.code[pcValue];
    const InstrClass cls = classify(in.op);
    StepResult r;
    r.cls = cls;
    ++executed;

    std::uint64_t next_pc = pcValue + 1;
    switch (cls) {
      case InstrClass::Alu:
        r.cycles = cost.aluCycles;
        regs[in.rd] = aluOp(in);
        break;
      case InstrClass::Mul:
        r.cycles = cost.mulCycles;
        regs[in.rd] = aluOp(in);
        break;
      case InstrClass::Div:
        r.cycles = cost.divCycles;
        regs[in.rd] = aluOp(in);
        break;
      case InstrClass::Load: {
        r.cycles = cost.memCycles;
        r.isMem = true;
        r.memAddr = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(regs[in.ra]) + in.imm);
        r.memBytes = accessBytes(in.op);
        std::uint32_t value = 0;
        const auto access = mem.read(r.memAddr, &value, r.memBytes);
        r.memNonvolatile = access.nonvolatile;
        r.cycles += access.cycles;
        regs[in.rd] = value;
        r.energy = classEnergy(cls, r.cycles) + access.energy;
        break;
      }
      case InstrClass::Store: {
        r.cycles = cost.memCycles;
        r.isMem = true;
        r.memIsStore = true;
        r.memAddr = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(regs[in.ra]) + in.imm);
        r.memBytes = accessBytes(in.op);
        const std::uint32_t value = regs[in.rb];
        const auto access = mem.write(r.memAddr, &value, r.memBytes);
        r.memNonvolatile = access.nonvolatile;
        r.cycles += access.cycles;
        r.energy = classEnergy(cls, r.cycles) + access.energy;
        break;
      }
      case InstrClass::Branch: {
        r.cycles = cost.branchCycles;
        const std::uint32_t a = regs[in.ra];
        const std::uint32_t b = regs[in.rb];
        const auto sa = static_cast<std::int32_t>(a);
        const auto sb = static_cast<std::int32_t>(b);
        bool taken = false;
        switch (in.op) {
          case Opcode::B: taken = true; break;
          case Opcode::Beq: taken = a == b; break;
          case Opcode::Bne: taken = a != b; break;
          case Opcode::Blt: taken = sa < sb; break;
          case Opcode::Bge: taken = sa >= sb; break;
          case Opcode::Bltu: taken = a < b; break;
          case Opcode::Bgeu: taken = a >= b; break;
          default: panic("bad branch opcode");
        }
        if (taken)
            next_pc = static_cast<std::uint64_t>(in.imm);
        break;
      }
      case InstrClass::Call:
        r.cycles = cost.callCycles;
        if (in.op == Opcode::Call) {
            regs[LR] = static_cast<std::uint32_t>(pcValue + 1);
            next_pc = static_cast<std::uint64_t>(in.imm);
        } else { // Ret
            next_pc = regs[LR];
        }
        break;
      case InstrClass::Sense:
        r.cycles = cost.senseCycles;
        regs[in.rd] = sensorValue(regs[in.ra]);
        break;
      case InstrClass::Checkpoint:
        r.cycles = cost.checkpointCycles;
        r.checkpointRequested = true;
        break;
      case InstrClass::Halt:
        r.cycles = cost.haltCycles;
        r.halted = true;
        isHalted = true;
        next_pc = pcValue; // stay put; the simulator stops stepping
        break;
    }

    if (r.energy == 0.0)
        r.energy = classEnergy(cls, r.cycles);
    pcValue = next_pc;
    return r;
}

void
Cpu::saveArchState(std::uint8_t *out) const
{
    std::memcpy(out, regs.data(), NumRegs * 4);
    const auto pc32 = static_cast<std::uint32_t>(pcValue);
    std::memcpy(out + NumRegs * 4, &pc32, 4);
}

void
Cpu::loadArchState(const std::uint8_t *in)
{
    std::memcpy(regs.data(), in, NumRegs * 4);
    std::uint32_t pc32;
    std::memcpy(&pc32, in + NumRegs * 4, 4);
    pcValue = pc32;
    poisoned = false;
    isHalted = false;
}

void
Cpu::powerFail()
{
    regs.fill(0xA5A5A5A5u);
    pcValue = UINT64_MAX;
    poisoned = true;
    isHalted = false;
}

std::uint32_t
Cpu::sensorValue(std::uint32_t index)
{
    // Slow triangular wave (period 256) plus hash noise, clamped to a
    // 10-bit ADC range. Pure function of the index: replayable.
    const std::uint32_t phase = index & 0xFF;
    const std::uint32_t tri =
        phase < 128 ? phase * 6 : (255 - phase) * 6; // 0..762
    std::uint32_t h = index * 0x9E3779B9u;
    h ^= h >> 16;
    h *= 0x85EBCA6Bu;
    h ^= h >> 13;
    const std::uint32_t noise = h % 61; // 0..60
    const std::uint32_t value = 130 + tri + noise;
    return value > 1023 ? 1023 : value;
}

} // namespace eh::arch
