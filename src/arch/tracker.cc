#include "arch/tracker.hh"

#include <algorithm>

#include "util/panic.hh"

namespace eh::arch {

const char *
backupTriggerName(BackupTrigger trigger)
{
    switch (trigger) {
      case BackupTrigger::None:
        return "none";
      case BackupTrigger::Violation:
        return "violation";
      case BackupTrigger::BufferOverflow:
        return "overflow";
      case BackupTrigger::Watchdog:
        return "watchdog";
    }
    panic("invalid backup trigger");
}

IdempotencyTracker::IdempotencyTracker(std::size_t read_entries,
                                       std::size_t write_entries,
                                       std::uint64_t watchdog_cycles)
    : readCapacity(read_entries), writeCapacity(write_entries),
      watchdog(watchdog_cycles)
{
    if (readCapacity == 0 || writeCapacity == 0)
        fatalf("IdempotencyTracker: buffer capacities must be > 0");
    if (watchdog == 0)
        fatalf("IdempotencyTracker: watchdog period must be > 0");
    readFirst.reserve(readCapacity);
    writeFirst.reserve(writeCapacity);
}

std::uint64_t
IdempotencyTracker::firstWord(std::uint64_t addr)
{
    return addr >> 2;
}

std::uint64_t
IdempotencyTracker::lastWord(std::uint64_t addr, std::uint32_t bytes)
{
    return (addr + (bytes ? bytes - 1 : 0)) >> 2;
}

bool
IdempotencyTracker::inBuffer(const std::vector<std::uint64_t> &buffer,
                             std::uint64_t word) const
{
    return std::find(buffer.begin(), buffer.end(), word) != buffer.end();
}

BackupTrigger
IdempotencyTracker::onLoad(std::uint64_t addr, std::uint32_t bytes)
{
    ++counters.loadsObserved;
    for (std::uint64_t w = firstWord(addr); w <= lastWord(addr, bytes);
         ++w) {
        // Reading data this region already wrote first is harmless:
        // re-execution will rewrite it before re-reading it.
        if (inBuffer(writeFirst, w) || inBuffer(readFirst, w))
            continue;
        if (readFirst.size() >= readCapacity) {
            ++counters.overflows;
            return BackupTrigger::BufferOverflow;
        }
        readFirst.push_back(w);
    }
    return BackupTrigger::None;
}

BackupTrigger
IdempotencyTracker::onStore(std::uint64_t addr, std::uint32_t bytes)
{
    ++counters.storesObserved;
    const bool whole_words = (addr % 4 == 0) && (bytes % 4 == 0);
    for (std::uint64_t w = firstWord(addr); w <= lastWord(addr, bytes);
         ++w) {
        if (inBuffer(readFirst, w)) {
            // WAR hazard: this store would make the region non-idempotent.
            ++counters.violations;
            return BackupTrigger::Violation;
        }
        if (inBuffer(writeFirst, w))
            continue;
        // Sub-word stores are not recorded as write-first: the word's
        // untouched bytes were not written, so a later read of them must
        // still count as read-first (conservative-safe).
        if (!whole_words)
            continue;
        if (writeFirst.size() >= writeCapacity) {
            ++counters.overflows;
            return BackupTrigger::BufferOverflow;
        }
        writeFirst.push_back(w);
    }
    return BackupTrigger::None;
}

BackupTrigger
IdempotencyTracker::tick(std::uint64_t cycles)
{
    sinceBackup += cycles;
    if (sinceBackup >= watchdog) {
        ++counters.watchdogFirings;
        return BackupTrigger::Watchdog;
    }
    return BackupTrigger::None;
}

void
IdempotencyTracker::reset()
{
    readFirst.clear();
    writeFirst.clear();
    sinceBackup = 0;
}

void
IdempotencyTracker::setWatchdogPeriod(std::uint64_t cycles)
{
    if (cycles == 0)
        fatalf("IdempotencyTracker: watchdog period must be > 0");
    watchdog = cycles;
}

} // namespace eh::arch
