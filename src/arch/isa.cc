#include "arch/isa.hh"

#include <sstream>

#include "util/panic.hh"

namespace eh::arch {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Divu: return "divu";
      case Opcode::Remu: return "remu";
      case Opcode::And: return "and";
      case Opcode::Orr: return "orr";
      case Opcode::Eor: return "eor";
      case Opcode::Lsl: return "lsl";
      case Opcode::Lsr: return "lsr";
      case Opcode::Asr: return "asr";
      case Opcode::AddI: return "addi";
      case Opcode::SubI: return "subi";
      case Opcode::MulI: return "muli";
      case Opcode::AndI: return "andi";
      case Opcode::OrrI: return "orri";
      case Opcode::EorI: return "eori";
      case Opcode::LslI: return "lsli";
      case Opcode::LsrI: return "lsri";
      case Opcode::AsrI: return "asri";
      case Opcode::Mov: return "mov";
      case Opcode::MovI: return "movi";
      case Opcode::Ldb: return "ldb";
      case Opcode::Ldh: return "ldh";
      case Opcode::Ldw: return "ldw";
      case Opcode::Stb: return "stb";
      case Opcode::Sth: return "sth";
      case Opcode::Stw: return "stw";
      case Opcode::B: return "b";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
      case Opcode::Bgeu: return "bgeu";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Checkpoint: return "checkpoint";
      case Opcode::Sense: return "sense";
      case Opcode::Halt: return "halt";
    }
    panic("invalid opcode");
}

InstrClass
classify(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Orr:
      case Opcode::Eor:
      case Opcode::Lsl:
      case Opcode::Lsr:
      case Opcode::Asr:
      case Opcode::AddI:
      case Opcode::SubI:
      case Opcode::AndI:
      case Opcode::OrrI:
      case Opcode::EorI:
      case Opcode::LslI:
      case Opcode::LsrI:
      case Opcode::AsrI:
      case Opcode::Mov:
      case Opcode::MovI:
        return InstrClass::Alu;
      case Opcode::Mul:
      case Opcode::MulI:
        return InstrClass::Mul;
      case Opcode::Divu:
      case Opcode::Remu:
        return InstrClass::Div;
      case Opcode::Ldb:
      case Opcode::Ldh:
      case Opcode::Ldw:
        return InstrClass::Load;
      case Opcode::Stb:
      case Opcode::Sth:
      case Opcode::Stw:
        return InstrClass::Store;
      case Opcode::B:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
        return InstrClass::Branch;
      case Opcode::Call:
      case Opcode::Ret:
        return InstrClass::Call;
      case Opcode::Checkpoint:
        return InstrClass::Checkpoint;
      case Opcode::Sense:
        return InstrClass::Sense;
      case Opcode::Halt:
        return InstrClass::Halt;
    }
    panic("invalid opcode");
}

std::string
disassemble(const Instruction &in)
{
    std::ostringstream oss;
    oss << opcodeName(in.op);
    auto reg = [](std::uint8_t r) {
        return "r" + std::to_string(static_cast<int>(r));
    };
    switch (in.op) {
      case Opcode::Nop:
      case Opcode::Ret:
      case Opcode::Checkpoint:
      case Opcode::Halt:
        break;
      case Opcode::Mov:
        oss << ' ' << reg(in.rd) << ", " << reg(in.ra);
        break;
      case Opcode::MovI:
        oss << ' ' << reg(in.rd) << ", " << in.imm;
        break;
      case Opcode::Sense:
        oss << ' ' << reg(in.rd) << ", " << reg(in.ra);
        break;
      case Opcode::Ldb:
      case Opcode::Ldh:
      case Opcode::Ldw:
        oss << ' ' << reg(in.rd) << ", [" << reg(in.ra) << " + "
            << in.imm << ']';
        break;
      case Opcode::Stb:
      case Opcode::Sth:
      case Opcode::Stw:
        oss << ' ' << reg(in.rb) << ", [" << reg(in.ra) << " + "
            << in.imm << ']';
        break;
      case Opcode::B:
      case Opcode::Call:
        oss << " -> " << in.imm;
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
        oss << ' ' << reg(in.ra) << ", " << reg(in.rb) << " -> "
            << in.imm;
        break;
      default: // register-register and register-immediate ALU forms
        switch (classify(in.op)) {
          case InstrClass::Alu:
          case InstrClass::Mul:
          case InstrClass::Div:
            // Immediate forms carry their operand in imm; the canonical
            // reg-reg forms use rb. The AsrI/LslI/etc. mnemonics already
            // distinguish them, so print whichever operand applies.
            oss << ' ' << reg(in.rd) << ", " << reg(in.ra) << ", ";
            if (in.op == Opcode::AddI || in.op == Opcode::SubI ||
                in.op == Opcode::MulI || in.op == Opcode::AndI ||
                in.op == Opcode::OrrI || in.op == Opcode::EorI ||
                in.op == Opcode::LslI || in.op == Opcode::LsrI ||
                in.op == Opcode::AsrI) {
                oss << in.imm;
            } else {
                oss << reg(in.rb);
            }
            break;
          default:
            panic("unhandled opcode in disassembler");
        }
    }
    return oss.str();
}

std::string
disassemble(const Program &program)
{
    std::ostringstream oss;
    oss << "; program '" << program.name << "', "
        << program.code.size() << " instructions\n";
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        oss << i << ":\t" << disassemble(program.code[i]) << '\n';
    }
    for (const auto &init : program.memInits) {
        oss << "; image: " << init.bytes.size() << " bytes at address "
            << init.addr << '\n';
    }
    return oss.str();
}

} // namespace eh::arch
