/**
 * @file
 * Interpreter core for the register machine. Executes one fully decoded
 * instruction per step(), charging cycles and energy per instruction
 * class (the paper's MSP430 measurements distinguish memory instructions
 * at 1.2 mW from everything else at 1.05 mW). Architectural state — the
 * register file and program counter — is volatile: a power failure
 * poisons it, and it must be re-loaded from a checkpoint before stepping
 * again, exactly the backup/restore discipline the EH model prices.
 */

#ifndef EH_ARCH_CPU_HH
#define EH_ARCH_CPU_HH

#include <array>
#include <cstdint>

#include "arch/decoded.hh"
#include "arch/isa.hh"
#include "mem/address_space.hh"
#include "util/panic.hh"

namespace eh::sim {
class Simulator;
}

namespace eh::arch {

/** Per-class cycle counts and per-cycle energies (model units, pJ). */
struct CostModel
{
    double execEnergyPerCycle = 65.625; ///< non-memory instructions
    double memEnergyPerCycle = 75.0;    ///< load/store instructions
    double senseEnergyPerCycle = 90.0;  ///< active sensor peripheral

    std::uint32_t aluCycles = 1;
    std::uint32_t mulCycles = 3;
    std::uint32_t divCycles = 12;
    std::uint32_t memCycles = 2;
    std::uint32_t branchCycles = 2;
    std::uint32_t callCycles = 3;
    std::uint32_t senseCycles = 8;
    std::uint32_t checkpointCycles = 1;
    std::uint32_t haltCycles = 1;

    /** MSP430FR5994-class costs at 16 MHz (paper Section V-A). */
    static CostModel msp430();

    /** Cortex-M0+-class costs (Clank platform, Section V-B). */
    static CostModel cortexM0();
};

/** What one executed instruction cost and touched. */
struct StepResult
{
    InstrClass cls = InstrClass::Alu;
    std::uint64_t cycles = 0;
    double energy = 0.0;
    bool isMem = false;
    bool memIsStore = false;
    bool memNonvolatile = false;
    std::uint64_t memAddr = 0;
    std::uint32_t memBytes = 0;
    bool checkpointRequested = false; ///< a CHECKPOINT op executed
    bool halted = false;              ///< a HALT op executed
};

/** Pre-execution view of the next instruction's memory behaviour. */
struct MemPeek
{
    bool isMem = false;
    bool isStore = false;
    std::uint64_t addr = 0;
    std::uint32_t bytes = 0;
    bool nonvolatile = false;
    Opcode op = Opcode::Nop;
};

/**
 * The register machine. Owns the architectural state; memory is external
 * (an AddressSpace reference) so backup policies and simulators can see
 * every access.
 */
class Cpu
{
  public:
    /** Serialized architectural state: 16 registers + PC, in bytes. */
    static constexpr std::size_t archStateBytes = NumRegs * 4 + 4;

    /**
     * @param program Code to execute (held by reference; must outlive
     *                the Cpu).
     * @param memory  Backing memory map.
     * @param costs   Cycle/energy cost model.
     */
    Cpu(const Program &program, mem::AddressSpace &memory,
        const CostModel &costs);

    /** Apply the program's initial memory images (done once, pre-run). */
    void applyMemInits();

    /** Reset architectural state to the program entry (pc 0, regs 0). */
    void reset();

    /** Current program counter (instruction index). */
    std::uint64_t pc() const { return pcValue; }

    /** Overwrite the program counter. */
    void setPc(std::uint64_t pc);

    /** Read register @p index. */
    std::uint32_t reg(unsigned index) const;

    /** Write register @p index. */
    void setReg(unsigned index, std::uint32_t value);

    /** True once a HALT instruction has executed. */
    bool halted() const { return isHalted; }

    /** Memory behaviour of the next instruction, without executing it. */
    MemPeek peek() const;

    /**
     * Execute the instruction at pc.
     * @throws PanicError if the CPU is halted or pc is out of range
     *         (indicates a simulator bug, e.g. a missing restore).
     */
    StepResult step();

    /** Lifetime executed-instruction count (includes re-execution). */
    std::uint64_t instructionsExecuted() const { return executed; }

    /** Serialize registers + pc into @p out (archStateBytes bytes). */
    void saveArchState(std::uint8_t *out) const;

    /** Load registers + pc from @p in (archStateBytes bytes). */
    void loadArchState(const std::uint8_t *in);

    /**
     * Power failure: poison all volatile architectural state. The next
     * step() without a loadArchState() panics by construction.
     */
    void powerFail();

    /**
     * Deterministic synthetic sensor: a pure function of the sample
     * index, so re-execution after a restore observes identical values.
     * Produces a plausible 10-bit ADC-style signal (slow wave + noise).
     */
    static std::uint32_t sensorValue(std::uint32_t index);

    /** Program under execution. */
    const Program &program() const { return prog; }

    /** Cost model in force. */
    const CostModel &costs() const { return cost; }

    /**
     * The one-time decode both engines execute from: peek() and step()
     * read cached class/width/cost here, and the block engine batches
     * whole spans of it (docs/PERFORMANCE.md).
     */
    const DecodedProgram &decoded() const { return dec; }

  private:
    // The block execution engine updates registers/pc/executed directly
    // while batching everything the interpreter loop would recompute.
    friend class eh::sim::Simulator;

    double classEnergy(InstrClass cls, std::uint64_t cycles) const;
    std::uint32_t aluOp(const Instruction &in) const;

    const Program &prog;
    mem::AddressSpace &mem;
    CostModel cost;
    DecodedProgram dec;
    std::array<std::uint32_t, NumRegs> regs{};
    std::uint64_t pcValue = 0;
    bool isHalted = false;
    bool poisoned = false;
    std::uint64_t executed = 0;
};

/** Branch-condition evaluation shared by step() and the block engine. */
inline bool
branchTaken(Opcode op, std::uint32_t a, std::uint32_t b)
{
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    switch (op) {
      case Opcode::B: return true;
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Blt: return sa < sb;
      case Opcode::Bge: return sa >= sb;
      case Opcode::Bltu: return a < b;
      case Opcode::Bgeu: return a >= b;
      default: panic("bad branch opcode");
    }
}

// Defined in the header so the per-instruction interpreter switch
// inlines into both engines' hot loops.
inline std::uint32_t
Cpu::aluOp(const Instruction &in) const
{
    const std::uint32_t a = regs[in.ra];
    const std::uint32_t b = regs[in.rb];
    const auto imm = static_cast<std::uint32_t>(in.imm);
    switch (in.op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::Mul: return a * b;
      case Opcode::Divu: return b == 0 ? UINT32_MAX : a / b;
      case Opcode::Remu: return b == 0 ? a : a % b;
      case Opcode::And: return a & b;
      case Opcode::Orr: return a | b;
      case Opcode::Eor: return a ^ b;
      case Opcode::Lsl: return b >= 32 ? 0 : a << b;
      case Opcode::Lsr: return b >= 32 ? 0 : a >> b;
      case Opcode::Asr: {
        const auto sa = static_cast<std::int32_t>(a);
        const std::uint32_t sh = b >= 31 ? 31 : b;
        return static_cast<std::uint32_t>(sa >> sh);
      }
      case Opcode::AddI: return a + imm;
      case Opcode::SubI: return a - imm;
      case Opcode::MulI: return a * imm;
      case Opcode::AndI: return a & imm;
      case Opcode::OrrI: return a | imm;
      case Opcode::EorI: return a ^ imm;
      case Opcode::LslI: return imm >= 32 ? 0 : a << imm;
      case Opcode::LsrI: return imm >= 32 ? 0 : a >> imm;
      case Opcode::AsrI: {
        const auto sa = static_cast<std::int32_t>(a);
        const std::int32_t sh = in.imm >= 31 ? 31 : in.imm;
        return static_cast<std::uint32_t>(sa >> sh);
      }
      case Opcode::Mov: return a;
      case Opcode::MovI: return imm;
      case Opcode::Nop: return regs[in.rd];
      default:
        panic("aluOp called on non-ALU opcode");
    }
}

} // namespace eh::arch

#endif // EH_ARCH_CPU_HH
