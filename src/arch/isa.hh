/**
 * @file
 * Instruction set of the repository's small load/store register machine.
 * The machine is deliberately Cortex-M0+/MSP430-flavoured: 16 x 32-bit
 * registers, simple ALU ops, byte/half/word memory accesses, and two
 * intermittent-computing primitives — CHECKPOINT (a program-induced backup
 * point, as used by Mementos checkpoints and DINO/Chain task boundaries)
 * and SENSE (a deterministic synthetic peripheral read).
 *
 * Instructions are stored decoded (one struct per instruction) and the
 * program counter indexes the instruction array; there is no binary
 * encoding because nothing in the paper depends on one.
 */

#ifndef EH_ARCH_ISA_HH
#define EH_ARCH_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eh::arch {

/** Register names. r13 = stack pointer, r14 = link register by ABI. */
enum Reg : std::uint8_t
{
    R0 = 0, R1, R2, R3, R4, R5, R6, R7,
    R8, R9, R10, R11, R12,
    SP = 13,
    LR = 14,
    R15 = 15,
    NumRegs = 16
};

/** Opcodes. Suffix I = immediate operand. */
enum class Opcode : std::uint8_t
{
    Nop,
    // ALU register-register: rd = ra OP rb
    Add, Sub, Mul, Divu, Remu, And, Orr, Eor, Lsl, Lsr, Asr,
    // ALU register-immediate: rd = ra OP imm
    AddI, SubI, MulI, AndI, OrrI, EorI, LslI, LsrI, AsrI,
    // Moves
    Mov,  ///< rd = ra
    MovI, ///< rd = imm (full 32-bit immediate)
    // Memory: rd/rb vs [ra + imm]
    Ldb, Ldh, Ldw, ///< load 1/2/4 bytes (zero-extended) into rd
    Stb, Sth, Stw, ///< store low 1/2/4 bytes of rb
    // Control flow; target = instruction index (via imm)
    B,                        ///< unconditional
    Beq, Bne, Blt, Bge, Bltu, Bgeu, ///< compare ra, rb
    Call, ///< LR = pc + 1; pc = target
    Ret,  ///< pc = LR
    // Intermittent-computing primitives
    Checkpoint, ///< program-induced backup point (Mementos / DINO)
    Sense,      ///< rd = synthetic sensor sample indexed by ra
    Halt
};

/** Printable opcode mnemonic. */
const char *opcodeName(Opcode op);

/** Coarse instruction classes used for cost accounting. */
enum class InstrClass
{
    Alu,
    Mul,
    Div,
    Load,
    Store,
    Branch,
    Call,
    Sense,
    Checkpoint,
    Halt
};

/** Classify an opcode for cost purposes. */
InstrClass classify(Opcode op);

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    std::uint8_t rd = 0;
    std::uint8_t ra = 0;
    std::uint8_t rb = 0;
    std::int32_t imm = 0; ///< immediate operand or branch target index
};

/**
 * A complete executable image: code plus initial memory contents applied
 * once before the first active period (initialization is assumed to be
 * programmed into the device, not paid for at runtime).
 */
struct Program
{
    std::string name;
    std::vector<Instruction> code;

    /** One initial-memory region. */
    struct MemInit
    {
        std::uint64_t addr;
        std::vector<std::uint8_t> bytes;
    };
    std::vector<MemInit> memInits;

    /** Number of instructions. */
    std::size_t size() const { return code.size(); }
};

/** Render one instruction as assembly-like text ("add r3, r1, r2"). */
std::string disassemble(const Instruction &instruction);

/**
 * Render a whole program as an indexed listing (one instruction per
 * line, prefixed with its instruction index so branch targets can be
 * followed), plus a summary of its initial memory images.
 */
std::string disassemble(const Program &program);

} // namespace eh::arch

#endif // EH_ARCH_ISA_HH
