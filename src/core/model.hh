/**
 * @file
 * The EH model proper (Section III): forward-progress estimation for
 * intermittent processor architectures from the energy balance
 *
 *     E = e_P + n_B * e_B + e_D + e_R                      (Equation 1)
 *
 * The implementation exposes both the paper's closed forms (Equations 8 and
 * 12) and a general solver that accepts an arbitrary dead-cycle count
 * tau_D, which yields the best-case / worst-case progress bounds of
 * Section IV-A2 and the calibrated predictions of Section V.
 */

#ifndef EH_CORE_MODEL_HH
#define EH_CORE_MODEL_HH

#include "core/params.hh"

namespace eh::core {

/** How the model chooses the dead-cycle count tau_D (Equation 6). */
enum class DeadCycleMode
{
    Average,  ///< tau_D = tau_B / 2 (Equation 6; used by Equation 8)
    BestCase, ///< tau_D = 0 (a backup lands exactly at period end)
    WorstCase ///< tau_D = tau_B (period ends just before the next backup)
};

/**
 * Full per-active-period energy decomposition produced by the model.
 * All energies are in the same units as Params::energyBudget.
 */
struct EnergyBreakdown
{
    double progressCycles; ///< tau_P — cycles of forward progress
    double deadCycles;     ///< tau_D used for this evaluation
    double backupCount;    ///< n_B = tau_P / tau_B (continuous)
    double progressEnergy; ///< e_P (net of charging, Equation 2)
    double backupEnergy;   ///< n_B * e_B total (Equation 4)
    double deadEnergy;     ///< e_D (Equation 5)
    double restoreEnergy;  ///< e_R (Equation 7)
    double progress;       ///< p = epsilon * tau_P / E

    /**
     * Residual of Equation 1: E - (e_P + n_B e_B + e_D + e_R). Zero (to
     * rounding) whenever progress is positive; may be positive when the
     * period is infeasible (tau_P clamped at zero).
     */
    double residual;
};

/**
 * Evaluates the EH model for a parameter set. The object is cheap to copy
 * and stateless beyond its Params; all queries are const.
 */
class Model
{
  public:
    /**
     * @param params Validated on construction.
     * @throws FatalError if params violate Table I domains.
     */
    explicit Model(const Params &params);

    /** The parameters this model instance evaluates. */
    const Params &params() const { return p_; }

    // --- Component energies (Section III) -----------------------------

    /**
     * Effective backup cost per byte: Omega_B - epsilon_C / sigma_B.
     * Charging during a backup's duration offsets part of its cost
     * (Equation 4).
     */
    double effectiveBackupCostPerByte() const;

    /** Effective restore cost per byte: Omega_R - epsilon_C / sigma_R. */
    double effectiveRestoreCostPerByte() const;

    /** e_B — energy of one backup at the configured tau_B (Equation 4). */
    double backupEnergyPerBackup() const;

    /** e_B for an explicit backup period (used by sweeps). */
    double backupEnergyPerBackup(double tau_b) const;

    /** e_D — dead energy for a given dead-cycle count (Equation 5). */
    double deadEnergy(double tau_d) const;

    /** e_R — restore energy for a given dead-cycle count (Equation 7). */
    double restoreEnergy(double tau_d) const;

    // --- Forward progress ----------------------------------------------

    /**
     * tau_P — cycles of forward progress for an explicit tau_D, obtained
     * by solving Equation 1. Clamped at zero when the period's one-time
     * costs already exceed E (all execution is dead).
     */
    double progressCycles(double tau_d) const;

    /**
     * p — fraction of E spent on forward progress for an explicit tau_D.
     * Equals Equation 8 when tau_d = tau_B / 2. May exceed 1 when
     * charging during the active period adds energy beyond E.
     */
    double progressAt(double tau_d) const;

    /** p under a dead-cycle mode (Equation 6 / Section IV-A2 bounds). */
    double progress(DeadCycleMode mode = DeadCycleMode::Average) const;

    /**
     * p for a single-backup architecture (Equation 12): exactly one
     * backup of architectural state triggered just before power loss
     * (tau_B = tau_P, tau_D = 0), as in Hibernus-style designs.
     */
    double singleBackupProgress() const;

    /**
     * Full energy decomposition for a dead-cycle mode; the breakdown's
     * residual documents Equation 1's balance.
     */
    EnergyBreakdown breakdown(DeadCycleMode mode =
                                  DeadCycleMode::Average) const;

    /** Breakdown at an explicit tau_D. */
    EnergyBreakdown breakdownAt(double tau_d) const;

    /**
     * Convenience: re-evaluate with a different backup period, leaving all
     * other parameters unchanged.
     */
    Model withBackupPeriod(double tau_b) const;

    /** Convenience: re-evaluate with a different application-state rate. */
    Model withAppStateRate(double alpha_b) const;

  private:
    Params p_;
};

} // namespace eh::core

#endif // EH_CORE_MODEL_HH
