/**
 * @file
 * Wall-clock extensions of the EH model. Equation 8 scores the *active*
 * period in isolation; deployments also care about the charging phases
 * between periods (Figure 1's charge/active alternation) — how long a
 * fixed amount of work takes end to end, and what fraction of wall-clock
 * time the device is doing useful work. These routines combine the
 * model's per-period progress with a harvest-rate description of the
 * charging phase.
 */

#ifndef EH_CORE_THROUGHPUT_HH
#define EH_CORE_THROUGHPUT_HH

#include "core/model.hh"
#include "core/params.hh"

namespace eh::core {

/** Wall-clock estimate for completing a fixed amount of work. */
struct CompletionEstimate
{
    double progressPerPeriod;  ///< useful cycles committed per period
    double activePerPeriod;    ///< active cycles per period
    double chargePerPeriod;    ///< charging cycles per period
    double periods;            ///< periods needed (continuous)
    double totalCycles;        ///< wall-clock cycles, charge + active
    double throughput;         ///< useful cycles per wall-clock cycle
    double activeDutyCycle;    ///< active / (active + charging) time
};

/**
 * Estimate wall-clock completion of @p work_cycles of useful execution.
 *
 * @param params             Model parameters (average-case dead cycles).
 * @param work_cycles        Useful cycles the application needs (> 0).
 * @param harvest_per_cycle  Energy harvested per cycle while the device
 *                           is off and recharging (> 0); the charging
 *                           phase refills E at this rate.
 */
CompletionEstimate estimateCompletion(const Params &params,
                                      double work_cycles,
                                      double harvest_per_cycle);

/**
 * The backup period minimizing wall-clock completion time. With a fixed
 * refill budget this coincides with the progress optimum of Equation 9:
 * wasted active energy must be re-harvested, so maximizing p minimizes
 * both periods and recharge time. Exposed separately (computed
 * numerically on estimateCompletion) so the equivalence is checkable
 * rather than assumed.
 */
double completionOptimalBackupPeriod(const Params &params,
                                     double work_cycles,
                                     double harvest_per_cycle);

/**
 * Section IV-A2, Spendthrift-style speculation: a perfect speculative
 * scheduler invokes its last backup exactly at period end (tau_D = 0).
 * The headroom — best-case minus average-case progress — bounds what any
 * speculation mechanism can gain at this tau_B.
 */
double speculationHeadroom(const Params &params);

/**
 * The knee of the speculation-headroom curve: headroom grows with tau_B
 * (longer periods risk more dead execution for a non-speculative system)
 * and saturates once the average case is fully infeasible. Returns the
 * smallest tau_B achieving @p knee_fraction of the saturated headroom —
 * past this point, stretching the backup period buys a speculator
 * nothing further.
 */
double speculationSweetSpot(const Params &params, double lo = 1.0,
                            double hi = 1e7,
                            double knee_fraction = 0.95);

} // namespace eh::core

#endif // EH_CORE_THROUGHPUT_HH
