#include "core/optimum.hh"

#include <cmath>

#include "util/panic.hh"

namespace eh::core {

namespace {

/**
 * The two cost aggregates that appear throughout Section IV:
 * k = Omega_B * A_B (compulsory energy per backup) and
 * m = Omega_B * alpha_B + epsilon (energy proportional to work done since
 * the last backup).
 */
struct CostRatio
{
    double k;
    double m;
};

CostRatio
costRatio(const Params &p)
{
    return {p.backupCost * p.archStateBackup,
            p.backupCost * p.appStateRate + p.execEnergy};
}

/**
 * Shared closed-form shape of Equations 9, 10 and 16:
 *   scale * (k/m) * (sqrt(factor * (E/eps) * (m/k) + 1) - 1)
 */
double
closedFormPeriod(const Params &p, double scale, double factor)
{
    p.validate();
    const auto [k, m] = costRatio(p);
    EH_ASSERT(m > 0.0, "proportional cost must be positive");
    if (k <= 0.0) {
        // No compulsory per-backup cost: progress is monotonically
        // non-increasing in tau_B (Figure 3), so back up as often as
        // possible.
        return 0.0;
    }
    const double ratio = p.energyBudget / p.execEnergy * m / k;
    return scale * (k / m) * (std::sqrt(factor * ratio + 1.0) - 1.0);
}

} // namespace

double
optimalBackupPeriod(const Params &params)
{
    return closedFormPeriod(params, 1.0, 2.0);
}

double
worstCaseOptimalBackupPeriod(const Params &params)
{
    return closedFormPeriod(params, 1.0, 1.0);
}

double
bitPrecisionOptimalPeriod(const Params &params)
{
    return closedFormPeriod(params, 1.5, 16.0 / 9.0);
}

double
breakEvenBackupPeriod(double energy_budget, double backup_energy,
                      double restore_energy, double exec_energy)
{
    EH_ASSERT(energy_budget > 0.0, "break-even requires E > 0");
    EH_ASSERT(exec_energy > 0.0, "break-even requires epsilon > 0");
    return 2.0 / 3.0 *
           (energy_budget - backup_energy - restore_energy) / exec_energy;
}

double
breakEvenBackupPeriodFixedPoint(const Params &params)
{
    params.validate();
    Model model(params);
    double tau = params.backupPeriod;
    for (int iter = 0; iter < 200; ++iter) {
        const double e_b = model.backupEnergyPerBackup(tau);
        const double e_r = model.restoreEnergy(tau / 2.0);
        const double next = breakEvenBackupPeriod(
            params.energyBudget, e_b, e_r, params.execEnergy);
        if (next <= 0.0)
            return 0.0;
        if (std::abs(next - tau) <= 1e-9 * std::max(1.0, tau))
            return next;
        tau = next;
    }
    return tau; // converged close enough for all practical parameters
}

double
goldenSectionMaximize(const std::function<double(double)> &f, double lo,
                      double hi, double tol)
{
    EH_ASSERT(lo < hi, "golden section needs lo < hi");
    constexpr double inv_phi = 0.6180339887498949;
    double a = lo, b = hi;
    double x1 = b - inv_phi * (b - a);
    double x2 = a + inv_phi * (b - a);
    double f1 = f(x1), f2 = f(x2);
    while (b - a > tol) {
        if (f1 < f2) {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + inv_phi * (b - a);
            f2 = f(x2);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - inv_phi * (b - a);
            f1 = f(x1);
        }
    }
    return (a + b) / 2.0;
}

double
numericOptimalBackupPeriod(const Params &params, DeadCycleMode mode,
                           double lo, double hi)
{
    params.validate();
    EH_ASSERT(lo > 0.0 && hi > lo, "invalid search bracket");
    Model base(params);
    auto objective = [&](double log_tau) {
        return base.withBackupPeriod(std::exp(log_tau)).progress(mode);
    };
    const double log_opt = goldenSectionMaximize(
        objective, std::log(lo), std::log(hi), 1e-12);
    return std::exp(log_opt);
}

double
numericDerivative(const std::function<double(double)> &f, double x,
                  double h)
{
    EH_ASSERT(h > 0.0, "derivative step must be positive");
    return (f(x + h) - f(x - h)) / (2.0 * h);
}

namespace {

/**
 * Numerator N and denominator D of Equation 8 at the average dead-cycle
 * count. Returns {N, D}; N <= 0 means the period makes no progress.
 */
std::pair<double, double>
equation8Terms(const Params &p)
{
    Model model(p);
    const double tau_d = p.backupPeriod / 2.0;
    const double n = 1.0 -
                     model.deadEnergy(tau_d) / p.energyBudget -
                     model.restoreEnergy(tau_d) / p.energyBudget;
    const double eps_net = p.execEnergy - p.chargeEnergy;
    const double charge_factor = 1.0 - p.chargeEnergy / p.execEnergy;
    const double d =
        (1.0 + model.backupEnergyPerBackup() / (eps_net * p.backupPeriod)) *
        charge_factor;
    return {n, d};
}

} // namespace

double
progressPerBackupEnergy(const Params &params)
{
    params.validate();
    const auto [n, d] = equation8Terms(params);
    if (n <= 0.0)
        return 0.0; // progress is pinned at zero; no marginal benefit
    const double eps_net = params.execEnergy - params.chargeEnergy;
    const double charge_factor =
        1.0 - params.chargeEnergy / params.execEnergy;
    return -n * charge_factor / (eps_net * params.backupPeriod * d * d);
}

double
progressPerRestoreEnergy(const Params &params)
{
    params.validate();
    const auto [n, d] = equation8Terms(params);
    if (n <= 0.0)
        return 0.0;
    return -1.0 / (params.energyBudget * d);
}

} // namespace eh::core
