/**
 * @file
 * Single-backup monitoring overhead (Section IV-B). Hibernus-class
 * systems watch the supply with an ADC to time their one backup; the
 * paper notes this monitoring can cost up to 40% of the energy budget.
 * Equation 12 omits that cost; these routines extend it so architects
 * can trade monitoring frequency (risk of missing the dip) against its
 * energy overhead.
 */

#ifndef EH_CORE_MONITORING_HH
#define EH_CORE_MONITORING_HH

#include "core/params.hh"

namespace eh::core {

/** Supply-monitoring (ADC) configuration of a single-backup system. */
struct MonitorConfig
{
    /** Cycles between supply checks. Must be > 0. */
    double checkPeriod = 64.0;
    /** Energy per check (same units as Params energies). Must be >= 0. */
    double checkEnergy = 0.0;

    /** @throws FatalError on domain violations. */
    void validate() const;
};

/**
 * Equation 12 extended with monitoring: every checkPeriod cycles of
 * execution also costs checkEnergy of ADC sampling, which inflates the
 * effective per-cycle burn rate. Returns the forward-progress fraction.
 */
double singleBackupProgressWithMonitoring(const Params &params,
                                          const MonitorConfig &monitor);

/**
 * Fraction of the energy budget consumed by monitoring alone under the
 * same assumptions — the number the paper quotes "up to 40%" for.
 */
double monitoringOverheadShare(const Params &params,
                               const MonitorConfig &monitor);

/**
 * The slowest (largest-period) monitoring rate that still leaves
 * @p reserve_fraction of the budget when the dip is detected, assuming
 * detection can lag the true threshold crossing by one full check
 * period. Cheaper checks allow denser monitoring; the returned period
 * balances the lag risk against the Section IV-B overhead.
 *
 * @param reserve_fraction Fraction of E that must remain for the backup
 *                         itself (in (0, 1)).
 */
double maxSafeMonitorPeriod(const Params &params,
                            double reserve_fraction);

} // namespace eh::core

#endif // EH_CORE_MONITORING_HH
