#include "core/model.hh"

#include <algorithm>
#include <cmath>

#include "util/panic.hh"

namespace eh::core {

Model::Model(const Params &params) : p_(params)
{
    p_.validate();
}

double
Model::effectiveBackupCostPerByte() const
{
    return p_.backupCost - p_.chargeEnergy / p_.backupBandwidth;
}

double
Model::effectiveRestoreCostPerByte() const
{
    return p_.restoreCost - p_.chargeEnergy / p_.restoreBandwidth;
}

double
Model::backupEnergyPerBackup() const
{
    return backupEnergyPerBackup(p_.backupPeriod);
}

double
Model::backupEnergyPerBackup(double tau_b) const
{
    EH_ASSERT(tau_b > 0.0, "backup period must be positive");
    return effectiveBackupCostPerByte() *
           (p_.archStateBackup + p_.appStateRate * tau_b);
}

double
Model::deadEnergy(double tau_d) const
{
    EH_ASSERT(tau_d >= 0.0, "dead cycles cannot be negative");
    return (p_.execEnergy - p_.chargeEnergy) * tau_d;
}

double
Model::restoreEnergy(double tau_d) const
{
    EH_ASSERT(tau_d >= 0.0, "dead cycles cannot be negative");
    return effectiveRestoreCostPerByte() *
           (p_.archStateRestore + p_.appRestoreRate * tau_d);
}

double
Model::progressCycles(double tau_d) const
{
    // Solve Equation 1 for tau_P with n_B = tau_P / tau_B:
    //   E - e_D - e_R = (eps - epsC) tau_P + (tau_P / tau_B) e_B
    const double available =
        p_.energyBudget - deadEnergy(tau_d) - restoreEnergy(tau_d);
    if (available <= 0.0)
        return 0.0;
    const double per_cycle = (p_.execEnergy - p_.chargeEnergy) +
                             backupEnergyPerBackup() / p_.backupPeriod;
    EH_ASSERT(per_cycle > 0.0,
              "net per-cycle consumption must be positive for a finite "
              "active period");
    return available / per_cycle;
}

double
Model::progressAt(double tau_d) const
{
    return p_.execEnergy * progressCycles(tau_d) / p_.energyBudget;
}

double
Model::progress(DeadCycleMode mode) const
{
    switch (mode) {
      case DeadCycleMode::Average:
        return progressAt(p_.backupPeriod / 2.0);
      case DeadCycleMode::BestCase:
        return progressAt(0.0);
      case DeadCycleMode::WorstCase:
        return progressAt(p_.backupPeriod);
    }
    panic("unreachable dead-cycle mode");
}

double
Model::singleBackupProgress() const
{
    // Equation 12: tau_B = tau_P and tau_D = 0. The single backup saves
    // the fixed architectural state once plus application state accrued
    // over the whole period.
    const double eff_b = effectiveBackupCostPerByte();
    const double e_r = restoreEnergy(0.0);
    const double available =
        p_.energyBudget - eff_b * p_.archStateBackup - e_r;
    if (available <= 0.0)
        return 0.0;
    const double per_cycle = (p_.execEnergy - p_.chargeEnergy) +
                             eff_b * p_.appStateRate;
    EH_ASSERT(per_cycle > 0.0,
              "net per-cycle consumption must be positive");
    const double tau_p = available / per_cycle;
    return p_.execEnergy * tau_p / p_.energyBudget;
}

EnergyBreakdown
Model::breakdown(DeadCycleMode mode) const
{
    switch (mode) {
      case DeadCycleMode::Average:
        return breakdownAt(p_.backupPeriod / 2.0);
      case DeadCycleMode::BestCase:
        return breakdownAt(0.0);
      case DeadCycleMode::WorstCase:
        return breakdownAt(p_.backupPeriod);
    }
    panic("unreachable dead-cycle mode");
}

EnergyBreakdown
Model::breakdownAt(double tau_d) const
{
    EnergyBreakdown b;
    b.deadCycles = tau_d;
    b.progressCycles = progressCycles(tau_d);
    b.backupCount = b.progressCycles / p_.backupPeriod;
    b.progressEnergy =
        (p_.execEnergy - p_.chargeEnergy) * b.progressCycles;
    b.backupEnergy = b.backupCount * backupEnergyPerBackup();
    b.deadEnergy = deadEnergy(tau_d);
    b.restoreEnergy = restoreEnergy(tau_d);
    if (b.progressCycles == 0.0) {
        // Infeasible period: the one-time costs exceed E, so the period
        // spends what it actually has — the restore first, the rest on
        // execution that is never saved. Clamp to the physical budget.
        b.restoreEnergy = std::min(b.restoreEnergy, p_.energyBudget);
        b.deadEnergy = std::min(b.deadEnergy,
                                p_.energyBudget - b.restoreEnergy);
    }
    b.progress = p_.execEnergy * b.progressCycles / p_.energyBudget;
    b.residual = p_.energyBudget - (b.progressEnergy + b.backupEnergy +
                                    b.deadEnergy + b.restoreEnergy);
    return b;
}

Model
Model::withBackupPeriod(double tau_b) const
{
    Params q = p_;
    q.backupPeriod = tau_b;
    return Model(q);
}

Model
Model::withAppStateRate(double alpha_b) const
{
    Params q = p_;
    q.appStateRate = alpha_b;
    return Model(q);
}

} // namespace eh::core
