/**
 * @file
 * Dead-cycle variability analysis (Section IV-A2). The model's
 * Equation 6 treats tau_D as uniform on [0, tau_B] and uses its mean;
 * designers who care about tail latency need the whole distribution.
 * Because progress is non-increasing and piecewise-affine in tau_D, the
 * distribution of p follows directly from the uniform tau_D: quantiles
 * map through progressAt, and the expectation is exact by integration.
 *
 * A subtlety this module makes visible: when part of the tau_D range is
 * infeasible (progress clamped at zero), the expectation over the
 * distribution no longer equals the paper's p(tau_B / 2) average-case
 * shortcut — the shortcut is exact only while the whole range stays
 * feasible.
 */

#ifndef EH_CORE_VARIABILITY_HH
#define EH_CORE_VARIABILITY_HH

#include "core/params.hh"

namespace eh::core {

/**
 * The @p confidence -quantile of forward progress under tau_D ~
 * U[0, tau_B]: the progress level achieved in at least that fraction of
 * active periods. confidence = 0 gives the best case, 1 the worst case,
 * 0.5 the median.
 */
double progressQuantile(const Params &params, double confidence);

/**
 * Exact expectation of progress over tau_D ~ U[0, tau_B] (composite
 * Simpson integration; exact-by-affinity while the whole range is
 * feasible). Equals Equation 8's average case whenever p(tau_B) > 0.
 */
double expectedProgressUniformDead(const Params &params);

/**
 * Tail progress for design-for-tail-latency: the progress guaranteed in
 * @p confidence of periods (e.g. 0.95 -> 95th-percentile-worst). Alias
 * of progressQuantile with the argument convention architects use.
 */
double tailProgress(const Params &params, double confidence);

/**
 * Fraction of active periods that make zero progress (the tau_D region
 * where one-time costs already exceed E). Zero for feasible designs;
 * grows as tau_B stretches past the supply.
 */
double infeasiblePeriodFraction(const Params &params);

} // namespace eh::core

#endif // EH_CORE_VARIABILITY_HH
