#include "core/calibration.hh"

#include <cmath>

#include "core/model.hh"
#include "util/panic.hh"

namespace eh::core {

Params
observedToParams(const ObservedBehavior &obs)
{
    if (!(obs.energyPerPeriod > 0.0))
        fatalf("observedToParams: energy per period must be > 0 for '",
               obs.name, "'");
    if (!(obs.execEnergy > 0.0))
        fatalf("observedToParams: execution energy must be > 0 for '",
               obs.name, "'");
    if (!(obs.meanBackupPeriod > 0.0))
        fatalf("observedToParams: mean backup period must be > 0 for '",
               obs.name, "'");

    Params p;
    p.energyBudget = obs.energyPerPeriod;
    p.execEnergy = obs.execEnergy;
    p.chargeEnergy = obs.chargeEnergy;
    p.backupPeriod = obs.meanBackupPeriod;
    p.backupBandwidth = obs.backupBandwidth;
    p.backupCost = obs.backupCost;
    p.archStateBackup = obs.archStateBytes;
    p.appStateRate = obs.meanAppStateRate;
    p.restoreBandwidth = obs.restoreBandwidth;
    p.restoreCost = obs.restoreCost;
    p.archStateRestore = obs.restoreStateBytes > 0.0
                             ? obs.restoreStateBytes
                             : obs.archStateBytes;
    p.appRestoreRate = 0.0;
    p.validate();
    return p;
}

CalibratedPrediction
predictFromObservation(const ObservedBehavior &obs)
{
    CalibratedPrediction out;
    out.params = observedToParams(obs);
    Model model(out.params);
    // Dead time cannot exceed the whole period; otherwise take the
    // observation as-is (energy-equivalent dead cycles may exceed the
    // mean backup spacing when aborted backups dominate).
    const double tau_d =
        std::min(obs.meanDeadCycles,
                 obs.energyPerPeriod / obs.execEnergy);
    out.predictedProgress = model.progressAt(tau_d);
    out.measuredProgress = obs.measuredProgress;
    out.relativeError =
        obs.measuredProgress > 0.0
            ? std::abs(out.predictedProgress - obs.measuredProgress) /
                  obs.measuredProgress
            : 0.0;
    return out;
}

} // namespace eh::core
