/**
 * @file
 * Parameter-sweep utilities for design-space exploration: linear and
 * logarithmic axes, one-dimensional sweeps and two-dimensional grids over
 * arbitrary objective functions of the model.
 */

#ifndef EH_CORE_SWEEP_HH
#define EH_CORE_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

namespace eh::core {

/** n evenly spaced values from lo to hi inclusive (n >= 2, or n == 1 → lo). */
std::vector<double> linspace(double lo, double hi, std::size_t n);

/**
 * n multiplicatively spaced values from lo to hi inclusive; requires
 * lo > 0 and hi > lo.
 */
std::vector<double> logspace(double lo, double hi, std::size_t n);

/** One sample of a 1-D sweep. */
struct SweepPoint
{
    double x;     ///< swept parameter value
    double value; ///< objective at x
};

/** Result of a 1-D sweep plus its argmax. */
struct SweepResult
{
    std::vector<SweepPoint> points;
    double bestX = 0.0;
    double bestValue = 0.0;

    /** Values as a plain series (same order as points). */
    std::vector<double> values() const;

    /** Abscissas as a plain series. */
    std::vector<double> xs() const;
};

/**
 * Evaluate objective at each abscissa; records the argmax alongside the
 * full series.
 */
SweepResult sweep1D(const std::vector<double> &xs,
                    const std::function<double(double)> &objective);

/** One cell of a 2-D grid sweep. */
struct GridPoint
{
    double x;
    double y;
    double value;
};

/** Result of a 2-D sweep: row-major cells plus argmax. */
struct GridResult
{
    std::vector<double> xs;
    std::vector<double> ys;
    std::vector<GridPoint> cells; ///< size xs.size() * ys.size(), x-major
    double bestX = 0.0;
    double bestY = 0.0;
    double bestValue = 0.0;

    /** Cell lookup by axis index. */
    const GridPoint &at(std::size_t xi, std::size_t yi) const;
};

/** Evaluate objective over the full cartesian grid xs × ys. */
GridResult sweep2D(const std::vector<double> &xs,
                   const std::vector<double> &ys,
                   const std::function<double(double, double)> &objective);

} // namespace eh::core

#endif // EH_CORE_SWEEP_HH
