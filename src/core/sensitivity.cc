#include "core/sensitivity.hh"

#include <cmath>

#include "util/panic.hh"

namespace eh::core {

namespace {

/** Fraction of tau_B that is dead under each DeadCycleMode. */
double
deadFraction(DeadCycleMode mode)
{
    switch (mode) {
      case DeadCycleMode::Average:
        return 0.5;
      case DeadCycleMode::BestCase:
        return 0.0;
      case DeadCycleMode::WorstCase:
        return 1.0;
    }
    panic("unreachable dead-cycle mode");
}

/**
 * The closed form is exact only when charging and restore overheads are
 * absent, matching the paper's Section VI-C derivation setting.
 */
bool
closedFormApplies(const Params &p)
{
    const bool no_charge = p.chargeEnergy == 0.0;
    const bool no_restore =
        p.restoreCost == 0.0 ||
        (p.archStateRestore == 0.0 && p.appRestoreRate == 0.0);
    return no_charge && no_restore;
}

/**
 * Closed-form dp/dalpha_B with tau_D = c * tau_B:
 *   p = (1 - c eps x / E) * eps x / (k + m x),
 *   dp/dalpha_B = -Omega_B eps x^2 (1 - c eps x / E) / (k + m x)^2
 * where x = tau_B, k = Omega_B A_B, m = Omega_B alpha_B + eps.
 */
double
closedFormDpDalpha(const Params &p, double c)
{
    const double x = p.backupPeriod;
    const double k = p.backupCost * p.archStateBackup;
    const double m = p.backupCost * p.appStateRate + p.execEnergy;
    const double live =
        1.0 - c * p.execEnergy * x / p.energyBudget;
    if (live <= 0.0)
        return 0.0; // progress pinned at zero
    const double denom = k + m * x;
    return -p.backupCost * p.execEnergy * x * x * live / (denom * denom);
}

} // namespace

double
numericProgressPerAppStateRate(const Params &params, DeadCycleMode mode)
{
    params.validate();
    const double h =
        std::max(1e-9, 1e-6 * std::max(params.appStateRate, 1e-3));
    Params hi = params, lo = params;
    hi.appStateRate += h;
    lo.appStateRate = std::max(0.0, lo.appStateRate - h);
    const double span = hi.appStateRate - lo.appStateRate;
    return (Model(hi).progress(mode) - Model(lo).progress(mode)) / span;
}

double
numericProgressPerArchState(const Params &params, DeadCycleMode mode)
{
    params.validate();
    const double h =
        std::max(1e-9, 1e-6 * std::max(params.archStateBackup, 1e-3));
    Params hi = params, lo = params;
    hi.archStateBackup += h;
    lo.archStateBackup = std::max(0.0, lo.archStateBackup - h);
    const double span = hi.archStateBackup - lo.archStateBackup;
    return (Model(hi).progress(mode) - Model(lo).progress(mode)) / span;
}

double
progressPerAppStateRate(const Params &params, DeadCycleMode mode)
{
    params.validate();
    if (closedFormApplies(params))
        return closedFormDpDalpha(params, deadFraction(mode));
    return numericProgressPerAppStateRate(params, mode);
}

double
progressPerArchState(const Params &params, DeadCycleMode mode)
{
    params.validate();
    if (closedFormApplies(params))
        return closedFormDpDalpha(params, deadFraction(mode)) /
               params.backupPeriod;
    return numericProgressPerArchState(params, mode);
}

BitReductionResult
reducedPrecisionGain(const Params &params, int word_bits, int bits_removed,
                     DeadCycleMode mode)
{
    params.validate();
    if (word_bits <= 0)
        fatalf("reducedPrecisionGain: word_bits must be > 0, got ",
               word_bits);
    if (bits_removed < 0 || bits_removed > word_bits)
        fatalf("reducedPrecisionGain: bits_removed must be in [0, ",
               word_bits, "], got ", bits_removed);

    BitReductionResult r;
    r.oldAppStateRate = params.appStateRate;
    r.newAppStateRate =
        params.appStateRate *
        (1.0 - static_cast<double>(bits_removed) /
                   static_cast<double>(word_bits));
    Model base(params);
    r.oldProgress = base.progress(mode);
    r.newProgress = base.withAppStateRate(r.newAppStateRate).progress(mode);
    r.gain = r.newProgress - r.oldProgress;
    return r;
}

} // namespace eh::core
