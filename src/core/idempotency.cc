#include "core/idempotency.hh"

#include <cmath>

#include "core/optimum.hh"
#include "util/panic.hh"

namespace eh::core {

double
violationStoreInterval(double buffer_slots, double array_elems,
                       double writeback_slots)
{
    if (!(array_elems > 0.0))
        fatalf("violationStoreInterval: array must be non-empty, got ",
               array_elems);
    if (buffer_slots < array_elems)
        fatalf("violationStoreInterval: buffer (", buffer_slots,
               ") cannot be smaller than the array (", array_elems, ")");
    if (writeback_slots < 0.0)
        fatalf("violationStoreInterval: write-back depth must be >= 0");
    // N - n + 1 stores between violations (Section VI-B), extended by the
    // write-back buffer depth per footnote 4.
    return buffer_slots - array_elems + 1.0 + writeback_slots;
}

double
violationCycleInterval(double buffer_slots, double array_elems,
                       double store_period, double writeback_slots)
{
    if (!(store_period > 0.0))
        fatalf("violationCycleInterval: store period must be > 0, got ",
               store_period);
    return violationStoreInterval(buffer_slots, array_elems,
                                  writeback_slots) *
           store_period;
}

double
optimalCircularBufferSize(double array_elems, double store_period,
                          double optimal_period, double writeback_slots)
{
    if (!(array_elems > 0.0))
        fatalf("optimalCircularBufferSize: array must be non-empty");
    if (!(store_period > 0.0))
        fatalf("optimalCircularBufferSize: store period must be > 0");
    if (optimal_period < 0.0)
        fatalf("optimalCircularBufferSize: optimal period must be >= 0");
    if (writeback_slots < 0.0)
        fatalf("optimalCircularBufferSize: write-back depth must be >= 0");
    // Equation 15: (N - n + 1 + w) * tau_store = tau_B,opt.
    const double n_opt =
        optimal_period / store_period + array_elems - 1.0 -
        writeback_slots;
    // A buffer can never be smaller than the array it holds.
    return std::max(n_opt, array_elems);
}

std::size_t
recommendedBufferSlots(const Params &params, double array_elems,
                       double store_period, double writeback_slots)
{
    const double tau_opt = optimalBackupPeriod(params);
    const double exact = optimalCircularBufferSize(
        array_elems, store_period, tau_opt, writeback_slots);
    // Round up to a power of two so circular indexing is a cheap mask
    // (footnote 3 of the paper).
    std::size_t slots = 1;
    while (static_cast<double>(slots) < exact)
        slots <<= 1;
    return slots;
}

} // namespace eh::core
