#include "core/locality.hh"

#include "util/panic.hh"

namespace eh::core {

void
LocalityParams::validate() const
{
    if (!(blockBytes > 0.0))
        fatalf("LocalityParams: block size must be > 0, got ", blockBytes);
    if (!(loadBytes > 0.0) || loadBytes > blockBytes)
        fatalf("LocalityParams: load width must be in (0, block], got ",
               loadBytes);
    if (!(storeBytes > 0.0) || storeBytes > blockBytes)
        fatalf("LocalityParams: store width must be in (0, block], got ",
               storeBytes);
    if (loadRate < 0.0)
        fatalf("LocalityParams: load rate must be >= 0, got ", loadRate);
    if (!(loadBandwidth > 0.0))
        fatalf("LocalityParams: load bandwidth must be > 0, got ",
               loadBandwidth);
    if (appStateRate < 0.0)
        fatalf("LocalityParams: app state rate must be >= 0, got ",
               appStateRate);
    if (!(backupBandwidth > 0.0))
        fatalf("LocalityParams: backup bandwidth must be > 0, got ",
               backupBandwidth);
    if (progressCycles < 0.0)
        fatalf("LocalityParams: progress cycles must be >= 0, got ",
               progressCycles);
    if (!(backupPeriod > 0.0))
        fatalf("LocalityParams: backup period must be > 0, got ",
               backupPeriod);
    if (backupCount < 0.0)
        fatalf("LocalityParams: backup count must be >= 0, got ",
               backupCount);
}

double
loadMajorOverStoreMajorRatio(const LocalityParams &lp)
{
    lp.validate();
    const double block_per_store = lp.blockBytes / lp.storeBytes;
    const double block_per_load = lp.blockBytes / lp.loadBytes;
    const double backup_bytes =
        lp.backupCount * lp.appStateRate * lp.backupPeriod;

    // Equation 13. Load-major: every load hits after the first in a block
    // (footprint alpha_load * tau_P), but each store dirties a whole block
    // so backup traffic inflates by beta_block / beta_store. Store-major is
    // the mirror image.
    const double load_major =
        lp.loadRate * lp.progressCycles / lp.loadBandwidth +
        block_per_store * backup_bytes / lp.backupBandwidth;
    const double store_major =
        block_per_load * lp.loadRate * lp.progressCycles /
            lp.loadBandwidth +
        backup_bytes / lp.backupBandwidth;
    EH_ASSERT(store_major > 0.0,
              "store-major overhead must be positive; check rates");
    return load_major / store_major;
}

double
dirtyToLoadFootprintRatio(const LocalityParams &lp)
{
    lp.validate();
    const double store_blocks =
        lp.appStateRate * (lp.blockBytes / lp.storeBytes - 1.0);
    const double load_blocks =
        lp.loadRate * (lp.blockBytes / lp.loadBytes - 1.0);
    if (load_blocks <= 0.0) {
        // No load-footprint inflation to recover: store-major can only win
        // on backup traffic, which the caller should treat as +infinity.
        return store_blocks > 0.0 ? 1e300 : 0.0;
    }
    return store_blocks / load_blocks;
}

bool
storeMajorWins(const LocalityParams &lp)
{
    // Equation 14.
    return dirtyToLoadFootprintRatio(lp) >
           lp.backupBandwidth / lp.loadBandwidth;
}

} // namespace eh::core
