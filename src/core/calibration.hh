/**
 * @file
 * Bridge between substrate measurements and the analytical model
 * (Section V). A simulator (or hardware harness) observes how a workload
 * behaved — mean time between backups, mean dead cycles, mean application
 * state per cycle, per-period energy — and calibration turns those
 * observations into a Params instance plus a model prediction that can be
 * compared against the measured forward progress (Figure 6).
 */

#ifndef EH_CORE_CALIBRATION_HH
#define EH_CORE_CALIBRATION_HH

#include <string>

#include "core/params.hh"

namespace eh::core {

/**
 * What a substrate actually measured for one workload/architecture pair.
 * Produced by eh::sim::SimStats::observe(); consumed here so that the core
 * library stays independent of the simulator.
 */
struct ObservedBehavior
{
    std::string name;            ///< workload or experiment label
    /** Mean energy consumed per active period. When produced by a
     * simulator this already includes any energy harvested *during* the
     * period, so chargeEnergy should then stay 0 — setting both
     * double-counts the charging. Use a nonzero chargeEnergy only when
     * energyPerPeriod is the initial capacitor budget alone. */
    double energyPerPeriod = 0;
    double execEnergy = 0;       ///< epsilon used by the platform
    double chargeEnergy = 0;     ///< epsilon_C during active periods
    double meanBackupPeriod = 0; ///< observed mean tau_B (cycles)
    double meanDeadCycles = 0;   ///< observed mean tau_D (cycles)
    double meanAppStateRate = 0; ///< observed alpha_B (bytes/cycle)
    double archStateBytes = 0;   ///< A_B charged per backup
    /** Bytes charged per restore (A_R); 0 = same as archStateBytes.
     * Policies that restore a volatile payload (Mementos, DINO,
     * Hibernus) report arch + payload here. */
    double restoreStateBytes = 0;
    double backupCost = 0;       ///< Omega_B of the NVM used
    double restoreCost = 0;      ///< Omega_R of the NVM used
    double backupBandwidth = 1;  ///< sigma_B
    double restoreBandwidth = 1; ///< sigma_R
    double measuredProgress = 0; ///< measured p, for error reporting
};

/** A calibrated prediction next to the measurement it explains. */
struct CalibratedPrediction
{
    Params params;            ///< model inputs derived from observation
    double predictedProgress; ///< p from the model at the observed tau_D
    double measuredProgress;  ///< p the substrate measured
    double relativeError;     ///< |pred - meas| / meas (0 if meas == 0)
};

/** Build Table I parameters from an observation. */
Params observedToParams(const ObservedBehavior &obs);

/**
 * Model prediction using the observed dead-cycle count rather than the
 * tau_B/2 average — this is how Section V scores the model against
 * hardware.
 */
CalibratedPrediction predictFromObservation(const ObservedBehavior &obs);

} // namespace eh::core

#endif // EH_CORE_CALIBRATION_HH
