/**
 * @file
 * Closed-form optima of the EH model (Section IV) and numeric optimizers
 * that cross-check them on the general solver:
 *
 *  - Equation 9:  tau_B,opt      — optimal backup period, average tau_D
 *  - Equation 10: tau_B,opt(wc)  — optimal backup period, worst-case tau_D
 *  - Equation 11: tau_B,be       — backup/restore break-even period
 *  - Equation 16: tau_B,bit      — period maximizing |dp/dalpha_B|
 *
 * The closed forms are exact under the paper's derivation assumptions
 * (no charging, no restore overhead); the numeric routines handle the
 * fully general parameterization.
 */

#ifndef EH_CORE_OPTIMUM_HH
#define EH_CORE_OPTIMUM_HH

#include <functional>

#include "core/model.hh"
#include "core/params.hh"

namespace eh::core {

/**
 * Equation 9: the backup period that maximizes average-case forward
 * progress.
 *
 * Derived assuming epsilon_C = 0 and Omega_R = 0; with those assumptions
 * it matches the numeric argmax of Model::progress exactly (see the
 * property tests). Returns 0 when A_B = 0: with no compulsory per-backup
 * cost, progress is monotonically non-increasing in tau_B and backing up
 * as often as possible is optimal (Figure 3).
 */
double optimalBackupPeriod(const Params &params);

/**
 * Equation 10: the backup period that maximizes worst-case
 * (tau_D = tau_B) forward progress. Always strictly less than
 * optimalBackupPeriod for A_B > 0 (Section IV-A2).
 */
double worstCaseOptimalBackupPeriod(const Params &params);

/**
 * Equation 11: the break-even backup period at which reducing backup cost
 * and reducing restore cost yield equal marginal benefit
 * (dp/de_B = dp/de_R):
 *
 *     tau_B,be = (2/3) (E - e_B - e_R) / epsilon
 *
 * @param energy_budget   E
 * @param backup_energy   e_B (energy of one backup, treated as given)
 * @param restore_energy  e_R
 * @param exec_energy     epsilon
 */
double breakEvenBackupPeriod(double energy_budget, double backup_energy,
                             double restore_energy, double exec_energy);

/**
 * Self-consistent break-even period: Equation 11 treats e_B as a constant,
 * but e_B itself depends on tau_B (Equation 4). This iterates
 * tau -> (2/3)(E - e_B(tau) - e_R)/epsilon to a fixed point.
 */
double breakEvenBackupPeriodFixedPoint(const Params &params);

/**
 * Equation 16: the backup period at which reducing application-state
 * bit-precision gives the largest progress improvement per byte
 * (maximum |dp/dalpha_B|). Derived under the Equation 9 assumptions.
 * Returns 0 when A_B = 0.
 */
double bitPrecisionOptimalPeriod(const Params &params);

/**
 * Golden-section search for the maximum of a unimodal function on
 * [lo, hi].
 *
 * @param f   Objective.
 * @param lo  Lower bound of the search bracket (> 0 for period searches).
 * @param hi  Upper bound.
 * @param tol Absolute x tolerance at which to stop.
 * @return Abscissa of the maximum.
 */
double goldenSectionMaximize(const std::function<double(double)> &f,
                             double lo, double hi, double tol = 1e-9);

/**
 * Numeric argmax of forward progress over tau_B in [lo, hi] using the
 * fully general model (any charging, restore and dead-cycle setting).
 * Used to validate Equations 9/10 and to optimize configurations outside
 * their assumptions.
 */
double numericOptimalBackupPeriod(const Params &params,
                                  DeadCycleMode mode, double lo = 1e-3,
                                  double hi = 1e9);

/**
 * Central-difference derivative of f at x with step h (Richardson-free;
 * adequate for the smooth rational functions of this model).
 */
double numericDerivative(const std::function<double(double)> &f, double x,
                         double h = 1e-6);

/**
 * dp/de_B: marginal progress per joule shaved off one backup, holding
 * tau_B fixed (Section IV-A3). Negative: cheaper backups help.
 */
double progressPerBackupEnergy(const Params &params);

/**
 * dp/de_R: marginal progress per joule shaved off the restore
 * (Section IV-A3). Negative: cheaper restores help.
 */
double progressPerRestoreEnergy(const Params &params);

} // namespace eh::core

#endif // EH_CORE_OPTIMUM_HH
