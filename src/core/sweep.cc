#include "core/sweep.hh"

#include <cmath>
#include <limits>

#include "util/panic.hh"

namespace eh::core {

std::vector<double>
linspace(double lo, double hi, std::size_t n)
{
    EH_ASSERT(n >= 1, "linspace needs at least one point");
    if (n == 1)
        return {lo};
    std::vector<double> xs(n);
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i)
        xs[i] = lo + step * static_cast<double>(i);
    xs.back() = hi; // exact endpoint despite rounding
    return xs;
}

std::vector<double>
logspace(double lo, double hi, std::size_t n)
{
    EH_ASSERT(lo > 0.0, "logspace needs lo > 0");
    EH_ASSERT(hi > lo, "logspace needs hi > lo");
    EH_ASSERT(n >= 1, "logspace needs at least one point");
    if (n == 1)
        return {lo};
    std::vector<double> xs(n);
    const double log_lo = std::log(lo);
    const double step = (std::log(hi) - log_lo) /
                        static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i)
        xs[i] = std::exp(log_lo + step * static_cast<double>(i));
    xs.back() = hi;
    return xs;
}

std::vector<double>
SweepResult::values() const
{
    std::vector<double> out;
    out.reserve(points.size());
    for (const auto &pt : points)
        out.push_back(pt.value);
    return out;
}

std::vector<double>
SweepResult::xs() const
{
    std::vector<double> out;
    out.reserve(points.size());
    for (const auto &pt : points)
        out.push_back(pt.x);
    return out;
}

SweepResult
sweep1D(const std::vector<double> &xs,
        const std::function<double(double)> &objective)
{
    EH_ASSERT(!xs.empty(), "sweep1D needs at least one abscissa");
    SweepResult result;
    result.points.reserve(xs.size());
    result.bestValue = -std::numeric_limits<double>::infinity();
    for (double x : xs) {
        const double v = objective(x);
        result.points.push_back({x, v});
        if (v > result.bestValue) {
            result.bestValue = v;
            result.bestX = x;
        }
    }
    return result;
}

const GridPoint &
GridResult::at(std::size_t xi, std::size_t yi) const
{
    EH_ASSERT(xi < xs.size() && yi < ys.size(),
              "grid index out of range");
    return cells[xi * ys.size() + yi];
}

GridResult
sweep2D(const std::vector<double> &xs, const std::vector<double> &ys,
        const std::function<double(double, double)> &objective)
{
    EH_ASSERT(!xs.empty() && !ys.empty(), "sweep2D needs non-empty axes");
    GridResult result;
    result.xs = xs;
    result.ys = ys;
    result.cells.reserve(xs.size() * ys.size());
    result.bestValue = -std::numeric_limits<double>::infinity();
    for (double x : xs) {
        for (double y : ys) {
            const double v = objective(x, y);
            result.cells.push_back({x, y, v});
            if (v > result.bestValue) {
                result.bestValue = v;
                result.bestX = x;
                result.bestY = y;
            }
        }
    }
    return result;
}

} // namespace eh::core
