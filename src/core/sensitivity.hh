/**
 * @file
 * Sensitivity analysis of forward progress to the model's state-size
 * parameters (Section VI-C, reduced bit-precision backups):
 *
 *  - dp/dalpha_B: marginal progress per byte/cycle of application state
 *  - dp/dA_B:     marginal progress per byte of architectural state
 *
 * The paper's key structural result — reducing application state always
 * helps at least as much as reducing architectural state for
 * tau_B >= 1 — follows from dp/dalpha_B = tau_B * dp/dA_B, which the
 * property tests verify.
 */

#ifndef EH_CORE_SENSITIVITY_HH
#define EH_CORE_SENSITIVITY_HH

#include "core/model.hh"
#include "core/params.hh"

namespace eh::core {

/**
 * dp/dalpha_B — marginal forward progress per unit of application-state
 * rate. Uses the closed form when the configuration matches the paper's
 * derivation assumptions (no charging, no restore overhead) and falls back
 * to a central finite difference on the general model otherwise.
 * Negative whenever progress is positive: more state to save hurts.
 */
double progressPerAppStateRate(const Params &params,
                               DeadCycleMode mode = DeadCycleMode::Average);

/**
 * dp/dA_B — marginal forward progress per byte of architectural state.
 * Equal to progressPerAppStateRate / tau_B under the closed form.
 */
double progressPerArchState(const Params &params,
                            DeadCycleMode mode = DeadCycleMode::Average);

/**
 * Always-numeric variant of progressPerAppStateRate (central difference on
 * Model::progress); exercised by tests to validate the closed form.
 */
double numericProgressPerAppStateRate(
    const Params &params, DeadCycleMode mode = DeadCycleMode::Average);

/** Always-numeric variant of progressPerArchState. */
double numericProgressPerArchState(
    const Params &params, DeadCycleMode mode = DeadCycleMode::Average);

/** Outcome of shaving bits off backed-up application data words. */
struct BitReductionResult
{
    double oldAppStateRate; ///< alpha_B before reduction
    double newAppStateRate; ///< alpha_B after reduction
    double oldProgress;     ///< p with the original precision
    double newProgress;     ///< p with the reduced precision
    double gain;            ///< newProgress - oldProgress (>= 0)
};

/**
 * Exact progress gain from storing application words with fewer bits
 * (Section VI-C). Data that needed word_bits per word is backed up with
 * bits_removed fewer bits, scaling alpha_B by (1 - bits_removed /
 * word_bits). The caller is responsible for judging application error.
 *
 * @param word_bits    Original word width (> 0).
 * @param bits_removed Bits dropped per word (in [0, word_bits]).
 */
BitReductionResult
reducedPrecisionGain(const Params &params, int word_bits, int bits_removed,
                     DeadCycleMode mode = DeadCycleMode::Average);

} // namespace eh::core

#endif // EH_CORE_SENSITIVITY_HH
