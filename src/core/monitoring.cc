#include "core/monitoring.hh"

#include "core/model.hh"
#include "util/panic.hh"

namespace eh::core {

void
MonitorConfig::validate() const
{
    if (!(checkPeriod > 0.0))
        fatalf("MonitorConfig: check period must be > 0, got ",
               checkPeriod);
    if (checkEnergy < 0.0)
        fatalf("MonitorConfig: check energy must be >= 0, got ",
               checkEnergy);
}

double
singleBackupProgressWithMonitoring(const Params &params,
                                   const MonitorConfig &monitor)
{
    params.validate();
    monitor.validate();
    // Monitoring adds checkEnergy / checkPeriod to every executed
    // cycle's burn rate; the energy balance of Equation 12 becomes
    //   E = (eps_net + m) tau_P + eff_B (A_B + alpha_B tau_P) + e_R
    // with m the per-cycle monitoring rate.
    const double monitor_rate = monitor.checkEnergy / monitor.checkPeriod;
    Model model(params);
    const double eff_b = model.effectiveBackupCostPerByte();
    const double e_r = model.restoreEnergy(0.0);
    const double available =
        params.energyBudget - eff_b * params.archStateBackup - e_r;
    if (available <= 0.0)
        return 0.0;
    const double per_cycle = (params.execEnergy - params.chargeEnergy) +
                             monitor_rate +
                             eff_b * params.appStateRate;
    EH_ASSERT(per_cycle > 0.0, "net per-cycle consumption must be "
                               "positive");
    const double tau_p = available / per_cycle;
    return params.execEnergy * tau_p / params.energyBudget;
}

double
monitoringOverheadShare(const Params &params,
                        const MonitorConfig &monitor)
{
    params.validate();
    monitor.validate();
    const double monitor_rate = monitor.checkEnergy / monitor.checkPeriod;
    Model model(params);
    const double eff_b = model.effectiveBackupCostPerByte();
    const double e_r = model.restoreEnergy(0.0);
    const double available =
        params.energyBudget - eff_b * params.archStateBackup - e_r;
    if (available <= 0.0)
        return 0.0;
    const double per_cycle = (params.execEnergy - params.chargeEnergy) +
                             monitor_rate +
                             eff_b * params.appStateRate;
    const double tau_p = available / per_cycle;
    return monitor_rate * tau_p / params.energyBudget;
}

double
maxSafeMonitorPeriod(const Params &params, double reserve_fraction)
{
    params.validate();
    if (!(reserve_fraction > 0.0) || reserve_fraction >= 1.0)
        fatalf("maxSafeMonitorPeriod: reserve fraction must be in "
               "(0, 1), got ",
               reserve_fraction);
    // One missed check period burns (eps - eps_C) * period of energy
    // past the threshold; the period may be at most large enough that
    // this overshoot still leaves the reserve intact. Budgeting half
    // the reserve for overshoot:
    const double overshoot_budget =
        0.5 * reserve_fraction * params.energyBudget;
    return overshoot_budget / (params.execEnergy - params.chargeEnergy);
}

} // namespace eh::core
