#include "core/variability.hh"

#include <algorithm>

#include "core/model.hh"
#include "util/panic.hh"

namespace eh::core {

double
progressQuantile(const Params &params, double confidence)
{
    params.validate();
    if (confidence < 0.0 || confidence > 1.0)
        fatalf("progressQuantile: confidence must be in [0, 1], got ",
               confidence);
    // p is non-increasing in tau_D, so the progress achieved in at
    // least `confidence` of periods corresponds to
    // tau_D = confidence * tau_B.
    return Model(params).progressAt(confidence * params.backupPeriod);
}

double
expectedProgressUniformDead(const Params &params)
{
    params.validate();
    Model model(params);
    // Composite Simpson over tau_D in [0, tau_B]. p is piecewise affine
    // with a single clamp point, so a moderately fine grid is exact to
    // rounding.
    constexpr int intervals = 512; // even
    const double h = params.backupPeriod / intervals;
    double sum = model.progressAt(0.0) +
                 model.progressAt(params.backupPeriod);
    for (int i = 1; i < intervals; ++i) {
        const double weight = (i % 2 == 1) ? 4.0 : 2.0;
        sum += weight * model.progressAt(i * h);
    }
    return sum * h / 3.0 / params.backupPeriod;
}

double
tailProgress(const Params &params, double confidence)
{
    return progressQuantile(params, confidence);
}

double
infeasiblePeriodFraction(const Params &params)
{
    params.validate();
    Model model(params);
    if (model.progressAt(params.backupPeriod) > 0.0)
        return 0.0; // worst case still feasible
    if (model.progressAt(0.0) <= 0.0)
        return 1.0; // even the best case makes no progress
    // Bisect for the clamp point tau_D* where progress reaches zero.
    double lo = 0.0, hi = params.backupPeriod;
    for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (model.progressAt(mid) > 0.0)
            lo = mid;
        else
            hi = mid;
    }
    return 1.0 - lo / params.backupPeriod;
}

} // namespace eh::core
