#include "core/throughput.hh"

#include <cmath>
#include <limits>

#include "core/optimum.hh"
#include "util/panic.hh"

namespace eh::core {

CompletionEstimate
estimateCompletion(const Params &params, double work_cycles,
                   double harvest_per_cycle)
{
    params.validate();
    if (!(work_cycles > 0.0))
        fatalf("estimateCompletion: work must be > 0 cycles, got ",
               work_cycles);
    if (!(harvest_per_cycle > 0.0))
        fatalf("estimateCompletion: harvest rate must be > 0, got ",
               harvest_per_cycle);

    Model model(params);
    const auto b = model.breakdown();

    CompletionEstimate est;
    est.progressPerPeriod = b.progressCycles;
    if (est.progressPerPeriod <= 0.0) {
        // Infeasible configuration: no forward progress, ever.
        est.activePerPeriod = 0.0;
        est.chargePerPeriod = 0.0;
        est.periods = std::numeric_limits<double>::infinity();
        est.totalCycles = est.periods;
        est.throughput = 0.0;
        est.activeDutyCycle = 0.0;
        return est;
    }

    // Active time: progress + dead cycles + time spent moving backup and
    // restore bytes through the NVM interface.
    const double backup_cycles =
        b.backupCount *
        (params.archStateBackup +
         params.appStateRate * params.backupPeriod) /
        params.backupBandwidth;
    const double restore_cycles =
        (params.archStateRestore +
         params.appRestoreRate * b.deadCycles) /
        params.restoreBandwidth;
    est.activePerPeriod = b.progressCycles + b.deadCycles +
                          backup_cycles + restore_cycles;

    // Charging: refill everything the period consumed. Net refill is E
    // (the budget) — in-period harvesting is already inside the model's
    // epsilon_C accounting.
    est.chargePerPeriod = params.energyBudget / harvest_per_cycle;

    est.periods = work_cycles / est.progressPerPeriod;
    est.totalCycles =
        est.periods * (est.activePerPeriod + est.chargePerPeriod);
    est.throughput = work_cycles / est.totalCycles;
    est.activeDutyCycle = est.activePerPeriod /
                          (est.activePerPeriod + est.chargePerPeriod);
    return est;
}

double
completionOptimalBackupPeriod(const Params &params, double work_cycles,
                              double harvest_per_cycle)
{
    params.validate();
    auto objective = [&](double log_tau) {
        Params p = params;
        p.backupPeriod = std::exp(log_tau);
        const auto est =
            estimateCompletion(p, work_cycles, harvest_per_cycle);
        return -est.totalCycles; // maximize the negation
    };
    const double log_opt = goldenSectionMaximize(
        objective, std::log(1e-2), std::log(1e8), 1e-10);
    return std::exp(log_opt);
}

double
speculationHeadroom(const Params &params)
{
    Model model(params);
    return model.progress(DeadCycleMode::BestCase) -
           model.progress(DeadCycleMode::Average);
}

double
speculationSweetSpot(const Params &params, double lo, double hi,
                     double knee_fraction)
{
    params.validate();
    EH_ASSERT(lo > 0.0 && hi > lo, "invalid search bracket");
    EH_ASSERT(knee_fraction > 0.0 && knee_fraction < 1.0,
              "knee fraction must be in (0, 1)");
    auto headroom_at = [&](double tau) {
        Params p = params;
        p.backupPeriod = tau;
        return speculationHeadroom(p);
    };
    const double saturated = headroom_at(hi);
    const double target = knee_fraction * saturated;
    // Headroom is monotone non-decreasing in tau_B, so bisect for the
    // first period reaching the target.
    double a = lo, b = hi;
    for (int iter = 0; iter < 200 && (b - a) > 1e-9 * b; ++iter) {
        const double mid = std::sqrt(a * b); // log-space midpoint
        if (headroom_at(mid) >= target)
            b = mid;
        else
            a = mid;
    }
    return b;
}

} // namespace eh::core
