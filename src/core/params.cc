#include "core/params.hh"

#include <sstream>

#include "util/panic.hh"

namespace eh::core {

void
Params::validate() const
{
    if (!(energyBudget > 0.0))
        fatalf("Params: energy supply E must be > 0, got ", energyBudget);
    if (!(execEnergy > 0.0))
        fatalf("Params: execution energy must be > 0, got ", execEnergy);
    if (chargeEnergy < 0.0)
        fatalf("Params: charging energy must be >= 0, got ", chargeEnergy);
    if (chargeEnergy >= execEnergy) {
        fatalf("Params: charging energy (", chargeEnergy,
               ") must be below execution energy (", execEnergy,
               "); the model diverges otherwise (Section III)");
    }
    if (!(backupPeriod > 0.0))
        fatalf("Params: backup period tau_B must be > 0, got ",
               backupPeriod);
    if (!(backupBandwidth > 0.0))
        fatalf("Params: backup bandwidth sigma_B must be > 0, got ",
               backupBandwidth);
    if (backupCost < 0.0)
        fatalf("Params: backup cost Omega_B must be >= 0, got ",
               backupCost);
    if (archStateBackup < 0.0)
        fatalf("Params: architectural backup state A_B must be >= 0, got ",
               archStateBackup);
    if (appStateRate < 0.0)
        fatalf("Params: application state rate alpha_B must be >= 0, got ",
               appStateRate);
    if (!(restoreBandwidth > 0.0))
        fatalf("Params: restore bandwidth sigma_R must be > 0, got ",
               restoreBandwidth);
    if (restoreCost < 0.0)
        fatalf("Params: restore cost Omega_R must be >= 0, got ",
               restoreCost);
    if (archStateRestore < 0.0)
        fatalf("Params: architectural restore state A_R must be >= 0, got ",
               archStateRestore);
    if (appRestoreRate < 0.0)
        fatalf("Params: restore rate alpha_R must be >= 0, got ",
               appRestoreRate);
}

bool
Params::valid() const
{
    try {
        validate();
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

std::string
Params::describe() const
{
    std::ostringstream oss;
    oss << "E=" << energyBudget
        << " eps=" << execEnergy
        << " epsC=" << chargeEnergy
        << " tauB=" << backupPeriod
        << " sigmaB=" << backupBandwidth
        << " OmegaB=" << backupCost
        << " A_B=" << archStateBackup
        << " alphaB=" << appStateRate
        << " sigmaR=" << restoreBandwidth
        << " OmegaR=" << restoreCost
        << " A_R=" << archStateRestore
        << " alphaR=" << appRestoreRate;
    return oss.str();
}

Params
illustrativeParams()
{
    Params p;
    p.energyBudget = 100.0;
    p.execEnergy = 1.0;
    p.chargeEnergy = 0.0;
    p.backupPeriod = 10.0;
    p.backupBandwidth = 1.0;
    p.backupCost = 1.0;
    p.archStateBackup = 1.0;
    p.appStateRate = 0.1;
    p.restoreBandwidth = 1.0;
    p.restoreCost = 0.0;
    p.archStateRestore = 0.0;
    p.appRestoreRate = 0.0;
    return p;
}

Params
msp430Params(double active_period_seconds)
{
    // 16 MHz clock. Baseline instruction power 1.05 mW and load/store
    // power 1.2 mW are the paper's EnergyTrace measurements (Section V-A).
    // Energies are expressed in picojoules.
    constexpr double clock_hz = 16.0e6;
    constexpr double exec_pj_per_cycle = 1.05e-3 / clock_hz * 1e12; // 65.6
    constexpr double mem_pj_per_cycle = 1.2e-3 / clock_hz * 1e12;   // 75.0

    Params p;
    p.energyBudget = exec_pj_per_cycle * clock_hz * active_period_seconds;
    p.execEnergy = exec_pj_per_cycle;
    p.chargeEnergy = 0.0;
    // FRAM copy loop: 2 cycles per 16-bit word at >= 16 MHz means one byte
    // per cycle of backup bandwidth (Section III).
    p.backupBandwidth = 1.0;
    p.restoreBandwidth = 1.0;
    // A backup spends load/store power for its whole duration, so the
    // per-byte cost is one memory cycle's energy.
    p.backupCost = mem_pj_per_cycle;
    p.restoreCost = mem_pj_per_cycle;
    // PC + SR + 12 general registers, 4 bytes each on FR59xx ~ 48 bytes.
    p.archStateBackup = 48.0;
    p.archStateRestore = 48.0;
    p.appStateRate = 0.1; // paper's Section V-A setting
    p.appRestoreRate = 0.0;
    p.backupPeriod = 16000.0; // 1 ms default; swept by the experiments
    return p;
}

Params
cortexM0Params()
{
    // STM32L0-class Cortex-M0+: ~49 uA/MHz at 3.0 V -> ~147 pJ/cycle.
    Params p;
    p.execEnergy = 147.0;
    p.chargeEnergy = 0.0;
    p.energyBudget = p.execEnergy * 100000.0; // 100k-cycle active period
    p.backupBandwidth = 1.0;
    p.restoreBandwidth = 1.0;
    p.backupCost = 300.0;  // FRAM-class write, ~2x execution per byte
    p.restoreCost = 200.0; // reads cheaper than writes
    p.archStateBackup = 80.0;  // 20 x 32-bit registers (Clank, Section V-B)
    p.archStateRestore = 80.0;
    p.appStateRate = 0.16; // MiBench average from Figure 10
    p.appRestoreRate = 0.0;
    p.backupPeriod = 8000.0; // Clank watchdog default
    return p;
}

Params
nvpParams()
{
    // Nonvolatile processor backing up every cycle: only the program
    // counter is compulsory; dirty-register tracking makes architectural
    // state nearly free (Section IV-A1).
    Params p;
    p.execEnergy = 147.0;
    p.chargeEnergy = 0.0;
    p.energyBudget = p.execEnergy * 100000.0;
    p.backupPeriod = 1.0;
    p.backupBandwidth = 4.0; // wide on-chip path to NV flip-flops
    p.backupCost = 50.0;
    p.archStateBackup = 4.0; // program counter only
    p.archStateRestore = 4.0;
    p.appStateRate = 0.16;
    p.appRestoreRate = 0.0;
    p.restoreBandwidth = 4.0;
    p.restoreCost = 30.0;
    return p;
}

} // namespace eh::core
