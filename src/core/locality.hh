/**
 * @file
 * Store-major locality case study (Section VI-A, Equations 13–14).
 *
 * On intermittent architectures with volatile caches, dirty blocks must be
 * flushed to nonvolatile memory on every backup, so store locality — not
 * load locality — can dominate. These routines quantify when reordering a
 * loop nest from load-major to store-major order pays off.
 */

#ifndef EH_CORE_LOCALITY_HH
#define EH_CORE_LOCALITY_HH

namespace eh::core {

/** Inputs of the Section VI-A analysis. */
struct LocalityParams
{
    /** beta_block — cache block size in bytes. Must be > 0. */
    double blockBytes = 16.0;
    /** beta_load — bytes read per load instruction. (0, blockBytes]. */
    double loadBytes = 4.0;
    /** beta_store — bytes written per store instruction. (0, blockBytes]. */
    double storeBytes = 4.0;
    /** alpha_load — average bytes loaded per cycle by the application. */
    double loadRate = 0.1;
    /** sigma_load — NVM read bandwidth in bytes/cycle. Must be > 0. */
    double loadBandwidth = 1.0;
    /** alpha_B — dirty application state per cycle (store-major case). */
    double appStateRate = 0.1;
    /** sigma_B — NVM backup bandwidth in bytes/cycle. Must be > 0. */
    double backupBandwidth = 1.0;
    /** tau_P — forward-progress cycles in the period considered. */
    double progressCycles = 10000.0;
    /** tau_B — cycles between backups. Must be > 0. */
    double backupPeriod = 1000.0;
    /** n_B — number of backups in the period considered. */
    double backupCount = 10.0;

    /** @throws FatalError on any domain violation. */
    void validate() const;
};

/**
 * Equation 13: ratio of memory-overhead cycles with load-major ordering to
 * store-major ordering. Values above 1 mean store-major wins.
 */
double loadMajorOverStoreMajorRatio(const LocalityParams &lp);

/**
 * Left-hand side of Equation 14: the ratio of unique dirty blocks backed
 * up to unique blocks loaded. Store-major ordering improves performance
 * when this exceeds backupBandwidth / loadBandwidth.
 */
double dirtyToLoadFootprintRatio(const LocalityParams &lp);

/**
 * Equation 14 as a predicate: should the programmer transform the loop to
 * store-major order?
 */
bool storeMajorWins(const LocalityParams &lp);

} // namespace eh::core

#endif // EH_CORE_LOCALITY_HH
