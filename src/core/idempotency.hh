/**
 * @file
 * Circular-buffer idempotency tuning (Section VI-B, Equation 15).
 *
 * On Clank-style architectures, backups are triggered by idempotency
 * violations (a store to a location read since the last backup). Storing
 * program arrays in circular buffers postpones those violations: with a
 * buffer of N slots holding an n-element array, a violation occurs only
 * every N - n + 1 stores (plus the write-back buffer depth w). These
 * routines size the buffer so the violation interval matches the model's
 * optimal backup period.
 */

#ifndef EH_CORE_IDEMPOTENCY_HH
#define EH_CORE_IDEMPOTENCY_HH

#include <cstddef>

#include "core/params.hh"

namespace eh::core {

/**
 * Average number of stores to the array between idempotency violations for
 * a circular buffer of @p buffer_slots holding an @p array_elems -element
 * array, with a @p writeback_slots -deep write-back buffer (footnote 4).
 * buffer_slots == array_elems is the conventional (unbuffered) case.
 */
double violationStoreInterval(double buffer_slots, double array_elems,
                              double writeback_slots = 0.0);

/**
 * Cycles between idempotency violations given the average cycles between
 * store instructions (tau_store, obtained by profiling).
 */
double violationCycleInterval(double buffer_slots, double array_elems,
                              double store_period,
                              double writeback_slots = 0.0);

/**
 * Equation 15 solved for N: the circular-buffer size whose violation
 * interval equals tau_B,opt:
 *
 *     N_opt = tau_B,opt / tau_store + n - 1 - w
 *
 * The result is continuous; callers typically round up to a power of two
 * so the modulo indexing stays cheap (footnote 3).
 *
 * @param array_elems     n — logical array length.
 * @param store_period    tau_store — average cycles between stores (> 0).
 * @param optimal_period  tau_B,opt from optimalBackupPeriod().
 * @param writeback_slots w — Clank write-back buffer depth.
 */
double optimalCircularBufferSize(double array_elems, double store_period,
                                 double optimal_period,
                                 double writeback_slots = 0.0);

/**
 * Convenience: compute tau_B,opt from @p params (Equation 9) and size the
 * buffer in one step, rounded up to the next power of two.
 */
std::size_t recommendedBufferSlots(const Params &params,
                                   double array_elems, double store_period,
                                   double writeback_slots = 0.0);

} // namespace eh::core

#endif // EH_CORE_IDEMPOTENCY_HH
