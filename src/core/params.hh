/**
 * @file
 * EH model input parameters (Table I of the paper). A Params value fully
 * describes one intermittent-architecture configuration: its per-active-
 * period energy supply, execution and charging energy rates, and the cost
 * structure of its backup and restore mechanisms.
 */

#ifndef EH_CORE_PARAMS_HH
#define EH_CORE_PARAMS_HH

#include <string>

namespace eh::core {

/**
 * Input parameters of the EH model, mirroring Table I.
 *
 * Units are deliberately abstract (joules, cycles, bytes): the model only
 * depends on ratios such as epsilon/E and Omega/epsilon, so any consistent
 * unit system works. The presets below give concrete device-calibrated
 * instances.
 */
struct Params
{
    // --- General parameters -------------------------------------------
    /** E — energy supply per active period (joules). Must be > 0. */
    double energyBudget = 100.0;
    /** epsilon — execution energy per cycle (joules/cycle). Must be > 0. */
    double execEnergy = 1.0;
    /** epsilon_C — charging energy gained per cycle. Must be in
     * [0, execEnergy): the model diverges as charging approaches the
     * consumption rate (Section III). */
    double chargeEnergy = 0.0;

    // --- Backup parameters --------------------------------------------
    /** tau_B — cycles between backups. Must be > 0. */
    double backupPeriod = 100.0;
    /** sigma_B — nonvolatile memory backup bandwidth (bytes/cycle).
     * Must be > 0. */
    double backupBandwidth = 1.0;
    /** Omega_B — backup energy cost (joules/byte). Must be >= 0. */
    double backupCost = 1.0;
    /** A_B — architectural state saved per backup (bytes). >= 0. */
    double archStateBackup = 1.0;
    /** alpha_B — application state accrued per cycle (bytes/cycle) that
     * each backup must additionally save. >= 0. */
    double appStateRate = 0.1;

    // --- Restore parameters -------------------------------------------
    /** sigma_R — nonvolatile memory restore bandwidth (bytes/cycle).
     * Must be > 0. */
    double restoreBandwidth = 1.0;
    /** Omega_R — restore energy cost (joules/byte). >= 0. */
    double restoreCost = 0.0;
    /** A_R — architectural state restored at each active-period start
     * (bytes). >= 0. */
    double archStateRestore = 0.0;
    /** alpha_R — cleanup cost per dead cycle of the previous period
     * (bytes/cycle). >= 0. */
    double appRestoreRate = 0.0;

    /**
     * Check every Table I domain constraint.
     * @throws FatalError naming the first violated constraint.
     */
    void validate() const;

    /** True iff validate() would succeed. */
    bool valid() const;

    /** One-line human-readable rendering of all twelve parameters. */
    std::string describe() const;
};

/**
 * Illustrative configuration used for the paper's Figures 2–4:
 * E = 100, epsilon = 1, A_B = 1, alpha_B = 0.1, Omega_B = 1,
 * no charging, no restore cost.
 */
Params illustrativeParams();

/**
 * MSP430FR5994-class configuration at 16 MHz, calibrated from the paper's
 * Section V-A measurements: 1.05 mW baseline execution (65.6 pJ/cycle),
 * FRAM backups at 2 cycles per 16-bit word (sigma = 1 byte/cycle).
 * Energies are expressed in picojoules so magnitudes stay near unity.
 */
Params msp430Params(double active_period_seconds = 0.25);

/**
 * ARM Cortex-M0+-class configuration used for the Clank experiments:
 * ~147 pJ/cycle execution, 20 x 32-bit registers (80 B) of architectural
 * state per backup and restore, 8000-cycle default watchdog period.
 */
Params cortexM0Params();

/**
 * Nonvolatile-processor configuration: backup every cycle (tau_B = 1) with
 * near-zero architectural state (dirty-register tracking), as discussed for
 * NVP designs in Sections II and IV-A1.
 */
Params nvpParams();

} // namespace eh::core

#endif // EH_CORE_PARAMS_HH
