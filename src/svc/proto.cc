#include "svc/proto.hh"

#include "svc/chaos.hh"
#include "util/crc.hh"
#include "util/fsio.hh"
#include "util/panic.hh"

namespace eh::svc {

namespace {

/** Append a length-prefixed string. */
void
putString(std::string &out, const std::string &s)
{
    putLe32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

/**
 * Read a length-prefixed string. The claimed length is checked against
 * the bytes actually remaining, so a corrupt length cannot trigger a
 * huge allocation or an out-of-bounds read.
 */
bool
getString(const std::string &in, std::size_t &at, std::string &s)
{
    std::uint32_t len = 0;
    if (!getLe32(in, at, len))
        return false;
    if (len > in.size() - at)
        return false;
    s.assign(in, at, len);
    at += len;
    return true;
}

void
putResult(std::string &out, const WireResult &r)
{
    putLe32(out, r.status);
    putString(out, r.error);
    putLe32(out, static_cast<std::uint32_t>(r.fields.size()));
    for (const auto &[key, value] : r.fields) {
        putString(out, key);
        putString(out, value);
    }
}

bool
getResult(const std::string &in, std::size_t &at, WireResult &r)
{
    std::uint32_t nFields = 0;
    if (!getLe32(in, at, r.status) || !getString(in, at, r.error) ||
        !getLe32(in, at, nFields)) {
        return false;
    }
    // Every field consumes at least its two length prefixes, so a
    // claimed count beyond the remaining bytes is rejected before the
    // loop rather than after a few billion iterations.
    if (nFields > in.size() - at)
        return false;
    r.fields.clear();
    for (std::uint32_t i = 0; i < nFields; ++i) {
        std::string key, value;
        if (!getString(in, at, key) || !getString(in, at, value))
            return false;
        r.fields.emplace_back(std::move(key), std::move(value));
    }
    return true;
}

} // namespace

WireResult
toWire(const explore::JobResult &result)
{
    WireResult wire;
    wire.status = static_cast<std::uint32_t>(result.status());
    wire.error = result.error();
    for (const auto &[key, value] : result.fields())
        wire.fields.emplace_back(key, value);
    return wire;
}

explore::JobResult
fromWire(const WireResult &wire)
{
    explore::JobResult result;
    for (const auto &[key, value] : wire.fields)
        result.set(key, value);
    const auto status =
        wire.status <= static_cast<std::uint32_t>(
                           explore::JobStatus::Quarantined)
            ? static_cast<explore::JobStatus>(wire.status)
            : explore::JobStatus::Failed;
    result.setStatus(status, wire.error);
    return result;
}

const char *
rejectCodeName(RejectCode code)
{
    switch (code) {
      case RejectCode::VersionMismatch:
        return "version-mismatch";
      case RejectCode::BadRole:
        return "bad-role";
      case RejectCode::Malformed:
        return "malformed";
      case RejectCode::Draining:
        return "draining";
    }
    return "unknown";
}

std::string
encodePayload(const Message &msg)
{
    std::string out;
    putLe32(out, static_cast<std::uint32_t>(msg.type));
    switch (msg.type) {
      case MsgType::Hello:
        putLe32(out, msg.version);
        putLe32(out, msg.role);
        putLe64(out, msg.pid);
        break;
      case MsgType::HelloAck:
        putLe32(out, msg.version);
        putLe64(out, msg.pid);
        break;
      case MsgType::Reject:
        putLe32(out, msg.code);
        putString(out, msg.text);
        break;
      case MsgType::SubmitBatch:
        putString(out, msg.text); // store name
        putLe64(out, msg.seed);
        putLe32(out, msg.maxAttempts);
        putLe32(out, msg.retryFailed);
        putLe32(out, msg.fresh);
        putLe32(out, msg.quarantineAfter);
        putLe32(out, static_cast<std::uint32_t>(msg.jobs.size()));
        for (const JobRef &job : msg.jobs) {
            putString(out, job.canonical);
            putLe64(out, job.hash);
        }
        break;
      case MsgType::SubmitAck:
        putLe64(out, msg.batchId);
        putLe32(out, msg.count);
        putString(out, msg.text); // store path
        break;
      case MsgType::LeaseRequest:
        putLe32(out, msg.count);
        break;
      case MsgType::LeaseGrant:
        putLe32(out, static_cast<std::uint32_t>(msg.jobs.size()));
        for (const JobRef &job : msg.jobs) {
            putLe64(out, job.leaseId);
            putLe64(out, job.seed);
            putString(out, job.canonical);
        }
        break;
      case MsgType::Result:
        putLe64(out, msg.leaseId);
        putResult(out, msg.result);
        break;
      case MsgType::ClientResult:
        putLe64(out, msg.batchId);
        putLe32(out, msg.index);
        putLe32(out, msg.cached);
        putResult(out, msg.result);
        break;
      case MsgType::Heartbeat:
        putLe64(out, msg.pid);
        break;
      case MsgType::Drain:
      case MsgType::DrainAck:
      case MsgType::Ping:
        break; // no body
      case MsgType::Stats:
        putString(out, msg.text);
        break;
    }
    return out;
}

bool
decodePayload(const std::string &payload, Message &out)
{
    std::size_t at = 0;
    std::uint32_t rawType = 0;
    if (!getLe32(payload, at, rawType))
        return false;
    if (rawType < static_cast<std::uint32_t>(MsgType::Hello) ||
        rawType > static_cast<std::uint32_t>(MsgType::Stats)) {
        return false;
    }
    Message msg;
    msg.type = static_cast<MsgType>(rawType);
    bool ok = true;
    switch (msg.type) {
      case MsgType::Hello:
        ok = getLe32(payload, at, msg.version) &&
             getLe32(payload, at, msg.role) &&
             getLe64(payload, at, msg.pid) &&
             msg.role <= static_cast<std::uint32_t>(PeerRole::Admin);
        break;
      case MsgType::HelloAck:
        ok = getLe32(payload, at, msg.version) &&
             getLe64(payload, at, msg.pid);
        break;
      case MsgType::Reject:
        ok = getLe32(payload, at, msg.code) &&
             getString(payload, at, msg.text);
        break;
      case MsgType::SubmitBatch: {
        std::uint32_t nJobs = 0;
        ok = getString(payload, at, msg.text) &&
             getLe64(payload, at, msg.seed) &&
             getLe32(payload, at, msg.maxAttempts) &&
             getLe32(payload, at, msg.retryFailed) &&
             getLe32(payload, at, msg.fresh) &&
             getLe32(payload, at, msg.quarantineAfter) &&
             getLe32(payload, at, nJobs) &&
             nJobs <= payload.size() - at;
        for (std::uint32_t i = 0; ok && i < nJobs; ++i) {
            JobRef job;
            ok = getString(payload, at, job.canonical) &&
                 getLe64(payload, at, job.hash);
            if (ok)
                msg.jobs.push_back(std::move(job));
        }
        break;
      }
      case MsgType::SubmitAck:
        ok = getLe64(payload, at, msg.batchId) &&
             getLe32(payload, at, msg.count) &&
             getString(payload, at, msg.text);
        break;
      case MsgType::LeaseRequest:
        ok = getLe32(payload, at, msg.count);
        break;
      case MsgType::LeaseGrant: {
        std::uint32_t nJobs = 0;
        ok = getLe32(payload, at, nJobs) &&
             nJobs <= payload.size() - at;
        for (std::uint32_t i = 0; ok && i < nJobs; ++i) {
            JobRef job;
            ok = getLe64(payload, at, job.leaseId) &&
                 getLe64(payload, at, job.seed) &&
                 getString(payload, at, job.canonical);
            if (ok)
                msg.jobs.push_back(std::move(job));
        }
        break;
      }
      case MsgType::Result:
        ok = getLe64(payload, at, msg.leaseId) &&
             getResult(payload, at, msg.result);
        break;
      case MsgType::ClientResult:
        ok = getLe64(payload, at, msg.batchId) &&
             getLe32(payload, at, msg.index) &&
             getLe32(payload, at, msg.cached) &&
             getResult(payload, at, msg.result);
        break;
      case MsgType::Heartbeat:
        ok = getLe64(payload, at, msg.pid);
        break;
      case MsgType::Drain:
      case MsgType::DrainAck:
      case MsgType::Ping:
        break;
      case MsgType::Stats:
        ok = getString(payload, at, msg.text);
        break;
    }
    // Reject trailing bytes: a frame either is exactly one message or
    // it is damage (and damage must never half-decode).
    if (!ok || at != payload.size())
        return false;
    out = std::move(msg);
    return true;
}

std::string
encodeFrame(const Message &msg)
{
    const std::string payload = encodePayload(msg);
    EH_ASSERT(payload.size() <= maxFramePayloadBytes,
              "oversized service frame");
    std::string frame;
    frame.reserve(frameHeaderBytes + payload.size());
    putLe32(frame, frameMagic);
    putLe32(frame, static_cast<std::uint32_t>(payload.size()));
    putLe32(frame, crc32(payload.data(), payload.size()));
    frame += payload;
    return frame;
}

void
FrameReader::feed(const char *data, std::size_t len)
{
    if (damaged)
        return; // the connection is doomed; don't accumulate garbage
    buf.append(data, len);
    // Reclaim the consumed prefix once it dominates the buffer, so a
    // long-lived connection doesn't grow its buffer without bound.
    if (at > 4096 && at > buf.size() / 2) {
        buf.erase(0, at);
        at = 0;
    }
}

FrameReader::Status
FrameReader::next(std::string &payload, std::string *why)
{
    if (damaged) {
        if (why)
            *why = reason;
        return Status::Corrupt;
    }
    if (buf.size() - at < frameHeaderBytes)
        return Status::NeedMore;
    std::size_t cursor = at;
    std::uint32_t magic = 0, length = 0, crc = 0;
    (void)getLe32(buf, cursor, magic);
    (void)getLe32(buf, cursor, length);
    (void)getLe32(buf, cursor, crc);
    if (magic != frameMagic) {
        damaged = true;
        reason = "bad frame magic";
    } else if (length > maxFramePayloadBytes) {
        damaged = true;
        reason = "frame length exceeds limit";
    }
    if (damaged) {
        if (why)
            *why = reason;
        return Status::Corrupt;
    }
    if (buf.size() - cursor < length)
        return Status::NeedMore;
    if (crc32(buf.data() + cursor, length) != crc) {
        damaged = true;
        reason = "frame CRC mismatch";
        if (why)
            *why = reason;
        return Status::Corrupt;
    }
    payload.assign(buf, cursor, length);
    at = cursor + length;
    // Chaos: counted per decoded frame, so `crash=proto.frame.decoded@k`
    // kills the armed process right after its k-th complete frame —
    // between a message landing and the code above it reacting.
    chaos::point(sites::protoFrame);
    return Status::Frame;
}

} // namespace eh::svc
