/**
 * @file
 * Client side of the exploration service (docs/SERVICE.md): submit a
 * batch of cells to a broker and stream the outcomes back, plus the
 * campaign-level wrapper used by `eh_explore campaign --remote` and
 * the admin verbs (`eh_explored ping|drain`).
 *
 * runCampaign() is the service-mode twin of Campaign::run(): same
 * submission-order results, same cache/quarantine semantics (enforced
 * broker-side), same CampaignReport accounting — so a campaign's CSV
 * is byte-identical whether it ran in-process or through a broker.
 */

#ifndef EH_SVC_CLIENT_HH
#define EH_SVC_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "explore/campaign.hh"
#include "explore/job.hh"
#include "svc/net.hh"

namespace eh::svc {

/** One batch submission's parameters (campaign-config subset). */
struct BatchOptions
{
    std::string name = "campaign"; ///< store name on the broker
    std::uint64_t seed = 1;
    unsigned maxAttempts = 2;
    bool retryFailed = false;
    bool fresh = false;
    unsigned quarantineAfter = 3;
};

/** A connected campaign client. */
class Client
{
  public:
    /**
     * Connect to the broker at @p socketPath and shake hands.
     * @throws ConnectionError / HandshakeError (docs/ROBUSTNESS.md).
     */
    explicit Client(const std::string &socketPath,
                    int timeout_ms = 5000);

    /**
     * Submit @p specs as one batch. Returns the number of outcomes the
     * broker will stream back (== specs.size()).
     * @throws ConnectionError when the broker refuses or disappears.
     */
    std::size_t submit(const BatchOptions &options,
                       const std::vector<explore::JobSpec> &specs);

    /** Broker-side store path, known after submit(). */
    const std::string &storePath() const { return ackStorePath; }

    /** One streamed outcome. */
    struct Outcome
    {
        std::uint32_t index = 0; ///< submission index within the batch
        bool cached = false;     ///< served from the store (or a twin)
        explore::JobResult result;
    };

    /**
     * Receive the next outcome. Returns false once every submitted
     * cell's outcome has been received.
     * @throws ConnectionError when the stream dies mid-batch.
     */
    bool nextOutcome(Outcome &out);

  private:
    FrameConn conn;
    std::uint64_t batchId = 0;
    std::size_t expected = 0;
    std::size_t received = 0;
    std::string ackStorePath;
};

/** Everything a remote campaign run produced. */
struct RemoteRun
{
    std::vector<explore::JobResult> results; ///< submission order
    explore::CampaignReport report;
};

/**
 * Run @p specs against the broker at @p config.remoteSocket (the
 * service-mode twin of Campaign::run(); see the file comment).
 * config.jobs/jobTimeoutSeconds/cacheDir are broker-side concerns and
 * ignored here; a nonzero jobTimeoutSeconds warns once.
 */
RemoteRun runCampaign(const explore::CampaignConfig &config,
                      const std::vector<explore::JobSpec> &specs);

/** Admin: fetch the broker's stats JSON. */
std::string pingBroker(const std::string &socketPath,
                       int timeout_ms = 5000);

/** Admin: ask the broker to finish pending work and exit. */
void drainBroker(const std::string &socketPath,
                 int timeout_ms = 60000);

} // namespace eh::svc

#endif // EH_SVC_CLIENT_HH
