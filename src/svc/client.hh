/**
 * @file
 * Client side of the exploration service (docs/SERVICE.md): submit a
 * batch of cells to a broker and stream the outcomes back, plus the
 * campaign-level wrapper used by `eh_explore campaign --remote` and
 * the admin verbs (`eh_explored ping|drain`).
 *
 * runCampaign() is the service-mode twin of Campaign::run(): same
 * submission-order results, same cache/quarantine semantics (enforced
 * broker-side), same CampaignReport accounting — so a campaign's CSV
 * is byte-identical whether it ran in-process or through a broker.
 *
 * Session resume: the client rides out broker death. When the
 * connection dies mid-batch, nextOutcome() reconnects with capped
 * exponential backoff plus deterministic jitter and resubmits *only
 * the still-unresolved cells*. The retry is idempotent by
 * construction — completed cells are durable in the broker's segment
 * store (served back as hits), and cells still executing dedup against
 * the restarted broker's in-flight table by content hash — so a
 * `kill -9` of the broker plus a restart yields the same results, in
 * the same submission order, byte for byte (proved by
 * tests/test_svc.cc and scripts/chaos_harness.sh).
 */

#ifndef EH_SVC_CLIENT_HH
#define EH_SVC_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "explore/campaign.hh"
#include "explore/job.hh"
#include "svc/net.hh"

namespace eh::svc {

/** One batch submission's parameters (campaign-config subset). */
struct BatchOptions
{
    std::string name = "campaign"; ///< store name on the broker
    std::uint64_t seed = 1;
    unsigned maxAttempts = 2;
    bool retryFailed = false;
    bool fresh = false;
    unsigned quarantineAfter = 3;
};

/** Connection + session-resume knobs. */
struct ClientConfig
{
    /** Broker socket to connect to. */
    std::string socketPath;

    /** Per-connect timeout (covers a broker's startup window). */
    int connectTimeoutMs = 5000;

    /**
     * Reconnect attempts per outage before giving up with
     * ConnectionError; 0 restores the legacy die-on-disconnect
     * behaviour. Attempt k waits backoffBaseMs·2^k (capped at
     * backoffCapMs) plus a deterministic jitter seeded from the batch
     * (seed, name, outage, attempt) — reproducible in tests, yet two
     * campaigns never hammer a restarting broker in lockstep.
     */
    unsigned resumeAttempts = 8;
    unsigned backoffBaseMs = 50;
    unsigned backoffCapMs = 2000;
};

/**
 * Pure backoff schedule for client resume attempt @p attempt (0-based)
 * of outage number @p outage: capped exponential plus deterministic
 * jitter in [0, backoffBaseMs). Exposed so tests pin the schedule.
 */
unsigned clientResumeDelayMs(const ClientConfig &cfg,
                             std::uint64_t sessionSeed,
                             unsigned outage, unsigned attempt);

/** A connected campaign client (one batch session; see file comment). */
class Client
{
  public:
    /**
     * Connect to the broker at @p socketPath and shake hands, with
     * default resume behaviour.
     * @throws ConnectionError / HandshakeError (docs/ROBUSTNESS.md).
     */
    explicit Client(const std::string &socketPath,
                    int timeout_ms = 5000);

    /** Same, with explicit connection/resume configuration. */
    explicit Client(ClientConfig config);

    /**
     * Submit @p specs as one batch. Returns the number of outcomes the
     * broker will stream back (== specs.size()). The specs' canonical
     * forms are retained for session resume.
     * @throws ConnectionError when the broker refuses or disappears
     *         and the resume budget is exhausted.
     */
    std::size_t submit(const BatchOptions &options,
                       const std::vector<explore::JobSpec> &specs);

    /** Broker-side store path, known after submit(). */
    const std::string &storePath() const { return ackStorePath; }

    /** One streamed outcome. */
    struct Outcome
    {
        std::uint32_t index = 0; ///< submission index within the batch
        bool cached = false;     ///< served from the store (or a twin)
        explore::JobResult result;
    };

    /**
     * Receive the next outcome (indices refer to the original
     * submission order, across any resumes). Returns false once every
     * submitted cell's outcome has been received.
     * @throws ConnectionError when the stream dies mid-batch and
     *         cannot be resumed within the configured budget.
     */
    bool nextOutcome(Outcome &out);

    /** Completed reconnect-and-resubmit cycles so far. */
    unsigned resumes() const { return resumeCount; }

  private:
    void connectAndShake();
    /** (Re)submit the unresolved cells. False = stream died again. */
    bool submitUnresolved();
    /** Reconnect + resubmit with backoff; throws when exhausted. */
    void resume();

    ClientConfig cfg;
    FrameConn conn;
    BatchOptions opts;
    std::vector<JobRef> refs;        ///< original submission order
    std::vector<bool> resolved;      ///< per original index
    std::vector<std::uint32_t> map;  ///< batch index → original index
    std::uint64_t batchId = 0;
    std::uint64_t sessionSeed = 0;   ///< jitter stream identity
    std::size_t expected = 0;
    std::size_t received = 0;
    unsigned resumeCount = 0;
    std::string ackStorePath;
};

/** Everything a remote campaign run produced. */
struct RemoteRun
{
    std::vector<explore::JobResult> results; ///< submission order
    explore::CampaignReport report;
    unsigned resumes = 0; ///< broker outages ridden out mid-batch
};

/**
 * Run @p specs against the broker at @p config.remoteSocket (the
 * service-mode twin of Campaign::run(); see the file comment).
 * config.jobs/jobTimeoutSeconds/cacheDir are broker-side concerns and
 * ignored here; a nonzero jobTimeoutSeconds warns once.
 * config.remoteResumeAttempts bounds the per-outage reconnect budget.
 */
RemoteRun runCampaign(const explore::CampaignConfig &config,
                      const std::vector<explore::JobSpec> &specs);

/** Admin: fetch the broker's stats JSON. */
std::string pingBroker(const std::string &socketPath,
                       int timeout_ms = 5000);

/** Admin: ask the broker to finish pending work and exit. */
void drainBroker(const std::string &socketPath,
                 int timeout_ms = 60000);

} // namespace eh::svc

#endif // EH_SVC_CLIENT_HH
