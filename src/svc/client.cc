#include "svc/client.hh"

#include <chrono>
#include <cstdio>
#include <thread>

#ifdef _WIN32
#define EH_STDERR_IS_TTY() false
#else
#include <unistd.h>
#define EH_STDERR_IS_TTY() (isatty(2) != 0)
#endif

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "svc/chaos.hh"
#include "util/hash.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace eh::svc {

unsigned
clientResumeDelayMs(const ClientConfig &cfg, std::uint64_t sessionSeed,
                    unsigned outage, unsigned attempt)
{
    const unsigned base = cfg.backoffBaseMs > 0 ? cfg.backoffBaseMs : 1;
    std::uint64_t expo = base;
    for (unsigned k = 0; k < attempt && expo < cfg.backoffCapMs; ++k)
        expo <<= 1;
    if (expo > cfg.backoffCapMs)
        expo = cfg.backoffCapMs;
    const std::uint64_t jitter =
        hashMix(sessionSeed ^
                ((static_cast<std::uint64_t>(outage) << 32) |
                 (attempt + 1u))) %
        base;
    return static_cast<unsigned>(expo + jitter);
}

Client::Client(const std::string &socketPath, int timeout_ms)
{
    cfg.socketPath = socketPath;
    cfg.connectTimeoutMs = timeout_ms;
    connectAndShake();
}

Client::Client(ClientConfig config) : cfg(std::move(config))
{
    connectAndShake();
}

void
Client::connectAndShake()
{
    conn.connect(cfg.socketPath, cfg.connectTimeoutMs);
    conn.handshake(PeerRole::Client);
}

std::size_t
Client::submit(const BatchOptions &options,
               const std::vector<explore::JobSpec> &specs)
{
    EH_ASSERT(expected == 0, "Client::submit may be called once");
    opts = options;
    refs.reserve(specs.size());
    for (const explore::JobSpec &spec : specs) {
        JobRef ref;
        ref.canonical = spec.canonical();
        ref.hash = spec.hash();
        refs.push_back(std::move(ref));
    }
    expected = refs.size();
    resolved.assign(expected, false);
    // Jitter stream identity: stable for a given (seed, name) batch, so
    // a test rerun reproduces the exact resume schedule, but distinct
    // campaigns spread out.
    sessionSeed = hashMix(opts.seed ^ contentHash(opts.name));
    if (!submitUnresolved())
        resume(); // resubmits (the whole batch — nothing resolved yet)
    obs::metrics().counter("svc.client.batches").add(1);
    return expected;
}

bool
Client::submitUnresolved()
{
    Message msg;
    msg.type = MsgType::SubmitBatch;
    msg.text = opts.name;
    msg.seed = opts.seed;
    msg.maxAttempts = opts.maxAttempts;
    msg.retryFailed = opts.retryFailed ? 1 : 0;
    msg.fresh = opts.fresh ? 1 : 0;
    msg.quarantineAfter = opts.quarantineAfter;
    map.clear();
    for (std::size_t i = 0; i < refs.size(); ++i) {
        if (resolved[i])
            continue;
        msg.jobs.push_back(refs[i]);
        map.push_back(static_cast<std::uint32_t>(i));
    }
    Message reply;
    if (!conn.send(msg))
        return false;
    chaos::point(sites::clientSubmitSent);
    if (!conn.recv(reply))
        return false;
    if (reply.type == MsgType::Reject) {
        throw ConnectionError(detail::concat(
            "fatal: broker rejected the batch (",
            rejectCodeName(static_cast<RejectCode>(reply.code)),
            "): ", reply.text));
    }
    if (reply.type != MsgType::SubmitAck) {
        throw ConnectionError(
            "fatal: broker sent an unexpected reply to SubmitBatch");
    }
    EH_ASSERT(reply.count == map.size(),
              "broker acknowledged a different cell count than "
              "submitted");
    batchId = reply.batchId;
    if (ackStorePath.empty())
        ackStorePath = reply.text;
    return true;
}

void
Client::resume()
{
    conn.close();
    if (cfg.resumeAttempts == 0) {
        throw ConnectionError(detail::concat(
            "fatal: lost the broker with ", expected - received, " of ",
            expected, " outcomes still pending (resume disabled)"));
    }
    const unsigned outage = resumeCount;
    for (unsigned attempt = 0; attempt < cfg.resumeAttempts; ++attempt) {
        const unsigned delay =
            clientResumeDelayMs(cfg, sessionSeed, outage, attempt);
        warn("svc: broker connection lost with ", expected - received,
             " outcome(s) pending; resuming in ", delay, " ms (attempt ",
             attempt + 1, "/", cfg.resumeAttempts, ")");
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        try {
            connectAndShake();
        } catch (const HandshakeError &) {
            throw; // permanent: a different protocol answered
        } catch (const ConnectionError &) {
            continue; // broker still down / mid-restart
        }
        chaos::point(sites::clientResume);
        if (!submitUnresolved()) {
            conn.close(); // died again mid-resubmit; burn an attempt
            continue;
        }
        ++resumeCount;
        obs::metrics().counter("svc.client.resumes").add(1);
        inform("svc: session resumed; resubmitted ", map.size(),
               " unresolved cell(s)");
        return;
    }
    throw ConnectionError(detail::concat(
        "fatal: lost the broker with ", expected - received, " of ",
        expected, " outcomes still pending; gave up after ",
        cfg.resumeAttempts, " resume attempt(s)"));
}

bool
Client::nextOutcome(Outcome &out)
{
    while (received < expected) {
        Message msg;
        if (!conn.recv(msg)) {
            resume(); // throws once the budget is exhausted
            continue;
        }
        if (msg.type != MsgType::ClientResult || msg.batchId != batchId)
            continue; // stray frame for another subscription
        if (msg.index >= map.size())
            continue; // out-of-range index from a confused peer
        const std::uint32_t original = map[msg.index];
        if (resolved[original])
            continue; // duplicate across a resume; first answer stands
        resolved[original] = true;
        ++received;
        chaos::point(sites::clientOutcomeRecv);
        out.index = original;
        out.cached = msg.cached != 0;
        out.result = fromWire(msg.result);
        obs::metrics().counter("svc.client.results").add(1);
        return true;
    }
    return false;
}

RemoteRun
runCampaign(const explore::CampaignConfig &config,
            const std::vector<explore::JobSpec> &specs)
{
    using Clock = std::chrono::steady_clock;
    EH_ASSERT(!config.remoteSocket.empty(),
              "runCampaign needs CampaignConfig::remoteSocket");
    if (config.jobTimeoutSeconds > 0.0) {
        warn("svc: --job-timeout is not enforced in service mode; the "
             "broker's heartbeat/crash detection applies instead");
    }
    const bool traced = obs::traceEnabled(obs::Category::Service);
    const std::uint64_t t0 = traced ? obs::trace().nowNanos() : 0;

    ClientConfig clientCfg;
    clientCfg.socketPath = config.remoteSocket;
    clientCfg.resumeAttempts = config.remoteResumeAttempts;
    Client client(clientCfg);
    BatchOptions options;
    options.name = config.name;
    options.seed = config.seed;
    options.maxAttempts = config.maxAttempts;
    options.retryFailed = config.retryFailed;
    options.fresh = config.fresh;
    options.quarantineAfter = config.quarantineAfter;

    const auto start = Clock::now();
    const std::size_t total = client.submit(options, specs);

    RemoteRun run;
    run.results.resize(total);
    const bool liveProgress = config.progress && EH_STDERR_IS_TTY() &&
                              logLevel() <= LogLevel::Info;
    Clock::time_point lastPrint = Clock::now();
    std::size_t finished = 0, hits = 0;
    std::size_t freshQuarantined = 0;
    Client::Outcome outcome;
    while (client.nextOutcome(outcome)) {
        EH_ASSERT(outcome.index < total, "outcome index out of range");
        if (outcome.cached)
            ++hits;
        else if (outcome.result.status() ==
                 explore::JobStatus::Quarantined)
            ++freshQuarantined;
        run.results[outcome.index] = std::move(outcome.result);
        ++finished;
        if (!liveProgress)
            continue;
        const auto now = Clock::now();
        const bool last = finished == total;
        if (!last && now - lastPrint < std::chrono::milliseconds(250))
            continue;
        lastPrint = now;
        const double elapsed =
            std::chrono::duration<double>(now - start).count();
        const double rate =
            elapsed > 0.0 ? static_cast<double>(finished) / elapsed
                          : 0.0;
        const double eta =
            rate > 0.0 ? static_cast<double>(total - finished) / rate
                       : 0.0;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "[%s] %zu/%zu jobs (%zu cached) eta %.1fs",
                      config.name.c_str(), finished, total, hits, eta);
        statusLine(line, last);
    }
    run.resumes = client.resumes();

    explore::CampaignReport &report = run.report;
    report.total = total;
    report.cacheHits = hits;
    // Mirrors in-process accounting: "executed" counts cells that went
    // through an evaluator, which excludes store/in-flight hits and
    // fresh quarantine skips.
    report.executed = total - hits - freshQuarantined;
    report.elapsedSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    report.cachePath = client.storePath();
    for (const explore::JobResult &r : run.results) {
        switch (r.status()) {
          case explore::JobStatus::Ok:
            break;
          case explore::JobStatus::Failed:
            ++report.failed;
            break;
          case explore::JobStatus::Timeout:
            ++report.timedOut;
            break;
          case explore::JobStatus::Quarantined:
            ++report.quarantined;
            break;
        }
    }

    // Same campaign.* metric names as the in-process engine, so
    // dashboards don't care which mode produced a run.
    auto &reg = obs::metrics();
    reg.counter("campaign.jobs").add(report.total);
    reg.counter("campaign.executed").add(report.executed);
    reg.counter("campaign.cache_hits").add(report.cacheHits);
    reg.counter("campaign.failed").add(report.failed);
    reg.counter("campaign.timed_out").add(report.timedOut);
    reg.counter("campaign.quarantined").add(report.quarantined);
    auto &resultBytes = reg.histogram("campaign.result_bytes");
    for (const explore::JobResult &r : run.results) {
        std::uint64_t bytes = 0;
        for (const auto &[key, value] : r.fields())
            bytes += key.size() + value.size();
        resultBytes.add(bytes);
    }
    reg.gauge("campaign.elapsed_seconds").add(report.elapsedSeconds);
    if (traced) {
        obs::trace().span(obs::Category::Service, "remote-campaign", t0,
                          obs::trace().nowNanos() - t0,
                          {{"jobs", static_cast<double>(total)},
                           {"cached", static_cast<double>(hits)}});
    }
    return run;
}

std::string
pingBroker(const std::string &socketPath, int timeout_ms)
{
    FrameConn conn;
    conn.connect(socketPath, timeout_ms);
    conn.handshake(PeerRole::Admin);
    Message ping;
    ping.type = MsgType::Ping;
    Message reply;
    if (!conn.send(ping) || !conn.recv(reply, timeout_ms) ||
        reply.type != MsgType::Stats) {
        throw ConnectionError(
            "fatal: broker did not answer the ping");
    }
    return reply.text;
}

void
drainBroker(const std::string &socketPath, int timeout_ms)
{
    FrameConn conn;
    conn.connect(socketPath, timeout_ms);
    conn.handshake(PeerRole::Admin);
    Message drain;
    drain.type = MsgType::Drain;
    if (!conn.send(drain)) {
        throw ConnectionError(
            "fatal: connection died while requesting a drain");
    }
    Message reply;
    for (;;) {
        if (!conn.recv(reply, timeout_ms)) {
            throw ConnectionError(
                "fatal: broker did not acknowledge the drain");
        }
        if (reply.type == MsgType::DrainAck)
            return;
    }
}

} // namespace eh::svc
