#include "svc/client.hh"

#include <chrono>
#include <cstdio>

#ifdef _WIN32
#define EH_STDERR_IS_TTY() false
#else
#include <unistd.h>
#define EH_STDERR_IS_TTY() (isatty(2) != 0)
#endif

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace eh::svc {

Client::Client(const std::string &socketPath, int timeout_ms)
{
    conn.connect(socketPath, timeout_ms);
    conn.handshake(PeerRole::Client);
}

std::size_t
Client::submit(const BatchOptions &options,
               const std::vector<explore::JobSpec> &specs)
{
    EH_ASSERT(expected == 0, "Client::submit may be called once");
    Message msg;
    msg.type = MsgType::SubmitBatch;
    msg.text = options.name;
    msg.seed = options.seed;
    msg.maxAttempts = options.maxAttempts;
    msg.retryFailed = options.retryFailed ? 1 : 0;
    msg.fresh = options.fresh ? 1 : 0;
    msg.quarantineAfter = options.quarantineAfter;
    msg.jobs.reserve(specs.size());
    for (const explore::JobSpec &spec : specs) {
        JobRef ref;
        ref.canonical = spec.canonical();
        ref.hash = spec.hash();
        msg.jobs.push_back(std::move(ref));
    }
    Message reply;
    if (!conn.send(msg) || !conn.recv(reply)) {
        throw ConnectionError(
            "fatal: connection to the broker died during batch "
            "submission");
    }
    if (reply.type == MsgType::Reject) {
        throw ConnectionError(detail::concat(
            "fatal: broker rejected the batch (",
            rejectCodeName(static_cast<RejectCode>(reply.code)),
            "): ", reply.text));
    }
    if (reply.type != MsgType::SubmitAck) {
        throw ConnectionError(
            "fatal: broker sent an unexpected reply to SubmitBatch");
    }
    batchId = reply.batchId;
    expected = reply.count;
    ackStorePath = reply.text;
    obs::metrics().counter("svc.client.batches").add(1);
    return expected;
}

bool
Client::nextOutcome(Outcome &out)
{
    while (received < expected) {
        Message msg;
        if (!conn.recv(msg)) {
            throw ConnectionError(detail::concat(
                "fatal: lost the broker with ", expected - received,
                " of ", expected, " outcomes still pending"));
        }
        if (msg.type != MsgType::ClientResult || msg.batchId != batchId)
            continue; // stray frame for another subscription
        ++received;
        out.index = msg.index;
        out.cached = msg.cached != 0;
        out.result = fromWire(msg.result);
        obs::metrics().counter("svc.client.results").add(1);
        return true;
    }
    return false;
}

RemoteRun
runCampaign(const explore::CampaignConfig &config,
            const std::vector<explore::JobSpec> &specs)
{
    using Clock = std::chrono::steady_clock;
    EH_ASSERT(!config.remoteSocket.empty(),
              "runCampaign needs CampaignConfig::remoteSocket");
    if (config.jobTimeoutSeconds > 0.0) {
        warn("svc: --job-timeout is not enforced in service mode; the "
             "broker's heartbeat/crash detection applies instead");
    }
    const bool traced = obs::traceEnabled(obs::Category::Service);
    const std::uint64_t t0 = traced ? obs::trace().nowNanos() : 0;

    Client client(config.remoteSocket);
    BatchOptions options;
    options.name = config.name;
    options.seed = config.seed;
    options.maxAttempts = config.maxAttempts;
    options.retryFailed = config.retryFailed;
    options.fresh = config.fresh;
    options.quarantineAfter = config.quarantineAfter;

    const auto start = Clock::now();
    const std::size_t total = client.submit(options, specs);

    RemoteRun run;
    run.results.resize(total);
    const bool liveProgress = config.progress && EH_STDERR_IS_TTY() &&
                              logLevel() <= LogLevel::Info;
    Clock::time_point lastPrint = Clock::now();
    std::size_t finished = 0, hits = 0;
    std::size_t freshQuarantined = 0;
    Client::Outcome outcome;
    while (client.nextOutcome(outcome)) {
        EH_ASSERT(outcome.index < total, "outcome index out of range");
        if (outcome.cached)
            ++hits;
        else if (outcome.result.status() ==
                 explore::JobStatus::Quarantined)
            ++freshQuarantined;
        run.results[outcome.index] = std::move(outcome.result);
        ++finished;
        if (!liveProgress)
            continue;
        const auto now = Clock::now();
        const bool last = finished == total;
        if (!last && now - lastPrint < std::chrono::milliseconds(250))
            continue;
        lastPrint = now;
        const double elapsed =
            std::chrono::duration<double>(now - start).count();
        const double rate =
            elapsed > 0.0 ? static_cast<double>(finished) / elapsed
                          : 0.0;
        const double eta =
            rate > 0.0 ? static_cast<double>(total - finished) / rate
                       : 0.0;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "[%s] %zu/%zu jobs (%zu cached) eta %.1fs",
                      config.name.c_str(), finished, total, hits, eta);
        statusLine(line, last);
    }

    explore::CampaignReport &report = run.report;
    report.total = total;
    report.cacheHits = hits;
    // Mirrors in-process accounting: "executed" counts cells that went
    // through an evaluator, which excludes store/in-flight hits and
    // fresh quarantine skips.
    report.executed = total - hits - freshQuarantined;
    report.elapsedSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    report.cachePath = client.storePath();
    for (const explore::JobResult &r : run.results) {
        switch (r.status()) {
          case explore::JobStatus::Ok:
            break;
          case explore::JobStatus::Failed:
            ++report.failed;
            break;
          case explore::JobStatus::Timeout:
            ++report.timedOut;
            break;
          case explore::JobStatus::Quarantined:
            ++report.quarantined;
            break;
        }
    }

    // Same campaign.* metric names as the in-process engine, so
    // dashboards don't care which mode produced a run.
    auto &reg = obs::metrics();
    reg.counter("campaign.jobs").add(report.total);
    reg.counter("campaign.executed").add(report.executed);
    reg.counter("campaign.cache_hits").add(report.cacheHits);
    reg.counter("campaign.failed").add(report.failed);
    reg.counter("campaign.timed_out").add(report.timedOut);
    reg.counter("campaign.quarantined").add(report.quarantined);
    auto &resultBytes = reg.histogram("campaign.result_bytes");
    for (const explore::JobResult &r : run.results) {
        std::uint64_t bytes = 0;
        for (const auto &[key, value] : r.fields())
            bytes += key.size() + value.size();
        resultBytes.add(bytes);
    }
    reg.gauge("campaign.elapsed_seconds").add(report.elapsedSeconds);
    if (traced) {
        obs::trace().span(obs::Category::Service, "remote-campaign", t0,
                          obs::trace().nowNanos() - t0,
                          {{"jobs", static_cast<double>(total)},
                           {"cached", static_cast<double>(hits)}});
    }
    return run;
}

std::string
pingBroker(const std::string &socketPath, int timeout_ms)
{
    FrameConn conn;
    conn.connect(socketPath, timeout_ms);
    conn.handshake(PeerRole::Admin);
    Message ping;
    ping.type = MsgType::Ping;
    Message reply;
    if (!conn.send(ping) || !conn.recv(reply, timeout_ms) ||
        reply.type != MsgType::Stats) {
        throw ConnectionError(
            "fatal: broker did not answer the ping");
    }
    return reply.text;
}

void
drainBroker(const std::string &socketPath, int timeout_ms)
{
    FrameConn conn;
    conn.connect(socketPath, timeout_ms);
    conn.handshake(PeerRole::Admin);
    Message drain;
    drain.type = MsgType::Drain;
    if (!conn.send(drain)) {
        throw ConnectionError(
            "fatal: connection died while requesting a drain");
    }
    Message reply;
    for (;;) {
        if (!conn.recv(reply, timeout_ms)) {
            throw ConnectionError(
                "fatal: broker did not acknowledge the drain");
        }
        if (reply.type == MsgType::DrainAck)
            return;
    }
}

} // namespace eh::svc
