#include "svc/chaos.hh"

namespace eh::svc {

namespace {

constexpr const char *allSites[] = {
    sites::netSend,
    sites::netRecv,
    sites::protoFrame,
    sites::clientSubmitSent,
    sites::clientOutcomeRecv,
    sites::clientResume,
    sites::brokerSubmitAck,
    sites::brokerLeaseGrant,
    sites::brokerResultRecv,
    sites::brokerResultPersisted,
    sites::workerLeaseRecv,
    sites::workerResultSend,
    sites::storeAppend,
};

} // namespace

const char *const *
chaosSites(std::size_t &count)
{
    count = sizeof(allSites) / sizeof(allSites[0]);
    return allSites;
}

} // namespace eh::svc
