/**
 * @file
 * Child-process supervision for `eh_explored serve` (docs/SERVICE.md,
 * docs/ROBUSTNESS.md): fork named children, reap them with waitpid
 * instead of SIG_IGN'ing SIGCHLD, and respawn crashed ones under an
 * explicit budget with exponential backoff. A child that exits cleanly
 * (status 0) is *done* — only abnormal deaths (non-zero exit, signals,
 * kill -9) are respawned, and never once the supervisor is draining.
 *
 * The supervisor is single-threaded and poll-driven: the owner calls
 * poll() periodically; nothing happens from signal context. It reaps
 * with waitpid(-1, …), so it expects to own every child of the calling
 * process — the eh_explored serve process is exactly that shape.
 */

#ifndef EH_SVC_SUPERVISE_HH
#define EH_SVC_SUPERVISE_HH

#include <chrono>
#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace eh::svc {

/** Supervision knobs. */
struct SupervisorConfig
{
    /**
     * Abnormal deaths one child survives before the supervisor gives
     * up on it (the child stays down, siblings keep running). The
     * budget is per child and never replenishes — a worker crashing on
     * every lease must not flap forever.
     */
    unsigned respawnLimit = 5;

    /** Respawn k waits backoffBaseMs·2^k, capped at backoffCapMs. */
    unsigned backoffBaseMs = 100;
    unsigned backoffCapMs = 5000;
};

/**
 * Pure backoff schedule before respawn number @p respawns (0-based).
 * Exposed so tests pin the schedule.
 */
unsigned supervisorRespawnDelayMs(const SupervisorConfig &cfg,
                                  unsigned respawns);

/** Forks, reaps, and respawns a set of named children. */
class Supervisor
{
  public:
    /**
     * Runs in the forked child; its return value becomes the child's
     * exit status. The child never returns to the caller's stack —
     * it _exit()s, skipping the parent's atexit machinery.
     */
    using ChildMain = std::function<int()>;

    explicit Supervisor(SupervisorConfig config = {});

    /**
     * Fork a child named @p name running @p main. With @p respawn, an
     * abnormal death is respawned per the budget; without, any death
     * is final. Returns the child's stable slot index.
     * @throws FatalError when fork(2) fails at first spawn.
     */
    std::size_t spawn(std::string name, ChildMain main, bool respawn);

    /**
     * Reap every dead child (waitpid WNOHANG), schedule/execute due
     * respawns, and return the number of children still live or
     * pending a respawn — 0 means the flock is finished. Call from
     * the owning loop, not from a signal handler.
     */
    std::size_t poll();

    /** Stop respawning; running children are left alone. */
    void drain() { drainMode = true; }
    bool draining() const { return drainMode; }

    /** Signal every live child (e.g. SIGTERM on shutdown). */
    void signalAll(int signo);

    /** One child's state, for status displays and tests. */
    struct ChildView
    {
        std::string name;
        pid_t pid = -1;      ///< last known pid (-1 before first fork)
        bool alive = false;
        unsigned respawns = 0; ///< budget consumed so far
        bool gaveUp = false;   ///< budget exhausted; stays down
        int lastStatus = 0;    ///< raw waitpid status of the last death
    };
    std::vector<ChildView> children() const;

    /** Live children right now (no respawn accounting). */
    std::size_t alive() const;

  private:
    struct Child
    {
        std::string name;
        ChildMain main;
        pid_t pid = -1;
        bool respawnable = false;
        bool alive = false;
        bool pendingRespawn = false;
        bool gaveUp = false;
        unsigned respawns = 0;
        int lastStatus = 0;
        std::chrono::steady_clock::time_point dueAt{};
    };

    void forkChild(Child &child);

    SupervisorConfig cfg;
    std::vector<Child> kids;
    bool drainMode = false;
};

} // namespace eh::svc

#endif // EH_SVC_SUPERVISE_HH
