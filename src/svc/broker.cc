#include "svc/broker.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "explore/cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "svc/chaos.hh"
#include "svc/net.hh"
#include "svc/proto.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace eh::svc {

namespace {

using Clock = std::chrono::steady_clock;

/** One connected peer. */
struct Conn
{
    int fd = -1;
    enum State { Pending, Client, Worker, Admin } state = Pending;
    FrameReader reader;
    std::string outBuf;
    Clock::time_point lastSeen;
    std::uint64_t peerPid = 0;
    unsigned leaseWants = 0;       ///< outstanding lease capacity
    std::set<std::uint64_t> held;  ///< leaseIds this worker holds
    bool awaitingDrain = false;    ///< owed a DrainAck
    bool closeAfterFlush = false;  ///< close once outBuf drains
    /**
     * Stream is dead (send failed); the serve loop closes it at the end
     * of the round. Deferred so sendMsg() can never mutate the
     * connection tables out from under a caller iterating them
     * (pump(), handleSubmit(), closeConn() itself).
     */
    bool broken = false;
};

/** One campaign awaiting a cell's outcome. */
struct Waiter
{
    int fd = -1;
    std::uint64_t batchId = 0;
    std::uint32_t index = 0;
    bool joined = false; ///< piggy-backed on an in-flight twin
};

/** One cell that needs (or is undergoing) execution. */
struct JobEntry
{
    std::string store;     ///< store name (openStore key)
    std::string canonical; ///< wire-form spec
    std::uint64_t hash = 0;
    std::uint64_t seed = 0;
    unsigned maxAttempts = 1;  ///< evaluator-attempt budget
    unsigned evalAttempts = 0; ///< failures reported so far
    unsigned crashes = 0;      ///< workers that died holding it
    bool leased = false;
    int workerFd = -1;
    std::vector<Waiter> waiters;
};

/** Lazily opened store + quarantine pair, one per store name. */
struct StoreCtx
{
    std::unique_ptr<explore::ResultCache> cache;
    std::unique_ptr<explore::QuarantineLog> quarantine;
    unsigned quarantineLimit = 0;
};

/** Store-name hygiene: it becomes a path component under cacheDir. */
bool
validStoreName(const std::string &name)
{
    if (name.empty() || name.size() > 128 || name[0] == '.')
        return false;
    for (const char ch : name) {
        const bool ok = (ch >= 'a' && ch <= 'z') ||
                        (ch >= 'A' && ch <= 'Z') ||
                        (ch >= '0' && ch <= '9') || ch == '.' ||
                        ch == '_' || ch == '-';
        if (!ok)
            return false;
    }
    return true;
}

const char *
rpcName(MsgType type)
{
    switch (type) {
      case MsgType::Hello:
        return "rpc:hello";
      case MsgType::SubmitBatch:
        return "rpc:submit-batch";
      case MsgType::LeaseRequest:
        return "rpc:lease-request";
      case MsgType::Result:
        return "rpc:result";
      case MsgType::Heartbeat:
        return "rpc:heartbeat";
      case MsgType::Drain:
        return "rpc:drain";
      case MsgType::Ping:
        return "rpc:ping";
      default:
        return "rpc:other";
    }
}

void
bump(const char *name, std::uint64_t &local)
{
    ++local;
    obs::metrics().counter(name).add(1);
}

} // namespace

/** All mutable broker state, confined to the run() thread. */
struct Broker::Impl
{
    std::string cacheDir;
    std::uint64_t nextBatchId = 1;
    std::uint64_t nextLeaseId = 1;
    std::map<int, Conn> conns;
    std::vector<int> workerFds; ///< join order; shard index space
    std::map<std::string, JobEntry> jobs; ///< key: store|canonical|seed
    std::map<std::uint64_t, std::string> leases; ///< leaseId → job key
    std::map<int, std::deque<std::string>> queues; ///< workerFd → keys
    std::deque<std::string> unassigned; ///< pending keys, no worker yet
    std::map<std::string, StoreCtx> stores;
    bool draining = false;
    bool drainNotified = false;
    Clock::time_point drainDeadline;

    static std::string jobKey(const std::string &store,
                              const std::string &canonical,
                              std::uint64_t seed)
    {
        return detail::concat(store, '\x1f', canonical, '\x1f', seed);
    }
};

Broker::Broker(BrokerConfig config) : cfg(std::move(config))
{
    EH_ASSERT(!cfg.socketPath.empty(), "broker needs a socket path");
    im = new Impl;
    im->cacheDir = cfg.cacheDir.empty() ? explore::defaultCacheDir()
                                        : cfg.cacheDir;
    int pipeFds[2];
    if (::pipe(pipeFds) != 0) {
        delete im;
        im = nullptr;
        throw ConnectionError(detail::concat(
            "fatal: cannot create broker wake pipe: ",
            std::strerror(errno)));
    }
    wakeRead = pipeFds[0];
    wakeWrite = pipeFds[1];
    ::fcntl(wakeRead, F_SETFL, O_NONBLOCK);
    ::fcntl(wakeWrite, F_SETFL, O_NONBLOCK);
    ::fcntl(wakeRead, F_SETFD, FD_CLOEXEC);
    ::fcntl(wakeWrite, F_SETFD, FD_CLOEXEC);
    try {
        listenFd = listenUnix(cfg.socketPath);
    } catch (...) {
        ::close(wakeRead);
        ::close(wakeWrite);
        delete im;
        im = nullptr;
        throw;
    }
}

Broker::~Broker()
{
    if (!im)
        return;
    for (auto &[fd, conn] : im->conns)
        ::close(fd);
    if (listenFd >= 0)
        ::close(listenFd);
    ::close(wakeRead);
    ::close(wakeWrite);
    ::unlink(cfg.socketPath.c_str());
    delete im;
}

void
Broker::requestStop()
{
    stopFlag.store(true, std::memory_order_release);
    const char byte = 1;
    // Async-signal-safe: one write, result deliberately ignored (a full
    // pipe already guarantees a pending wake-up).
    [[maybe_unused]] const ssize_t n = ::write(wakeWrite, &byte, 1);
}

void
Broker::requestDrain()
{
    drainFlag.store(true, std::memory_order_release);
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakeWrite, &byte, 1);
}

std::string
Broker::statsJson() const
{
    std::size_t pendingJobs = im->unassigned.size();
    for (const auto &[fd, queue] : im->queues)
        pendingJobs += queue.size();
    std::size_t clients = 0;
    for (const auto &[fd, conn] : im->conns)
        clients += conn.state == Conn::Client ? 1 : 0;
    std::ostringstream oss;
    oss << "{"
        << "\"workers\":" << im->workerFds.size() << ","
        << "\"clients\":" << clients << ","
        << "\"pending_jobs\":" << pendingJobs << ","
        << "\"leased_jobs\":" << im->leases.size() << ","
        << "\"open_stores\":" << im->stores.size() << ","
        << "\"draining\":" << (im->draining ? "true" : "false") << ","
        << "\"connects\":" << stats.connects << ","
        << "\"disconnects\":" << stats.disconnects << ","
        << "\"batches\":" << stats.batches << ","
        << "\"jobs_submitted\":" << stats.jobsSubmitted << ","
        << "\"store_hits\":" << stats.storeHits << ","
        << "\"inflight_hits\":" << stats.inflightHits << ","
        << "\"quarantine_skips\":" << stats.quarantineSkips << ","
        << "\"leases\":" << stats.leases << ","
        << "\"results\":" << stats.results << ","
        << "\"eval_failures\":" << stats.evalFailures << ","
        << "\"retries\":" << stats.retries << ","
        << "\"redispatches\":" << stats.redispatches << ","
        << "\"worker_crashes\":" << stats.workerCrashes << ","
        << "\"frame_errors\":" << stats.frameErrors << "}";
    return oss.str();
}

namespace {

/** run()-scoped engine: Impl plus the transient polling machinery. */
class BrokerLoop
{
  public:
    BrokerLoop(Broker::Impl &im_, BrokerCounters &stats_,
               const BrokerConfig &cfg_, int listenFd_, int wakeRead_,
               std::atomic<bool> &stopFlag_,
               std::atomic<bool> &drainFlag_)
        : im(im_), stats(stats_), cfg(cfg_), listenFd(listenFd_),
          wakeRead(wakeRead_), stopFlag(stopFlag_),
          drainFlag(drainFlag_)
    {
    }

    /** Renders the Stats reply (bound to Broker::statsJson). */
    std::function<std::string()> renderStats;

    void serve();

  private:
    Broker::Impl &im;
    BrokerCounters &stats;
    const BrokerConfig &cfg;
    int listenFd;
    int wakeRead;
    std::atomic<bool> &stopFlag;
    std::atomic<bool> &drainFlag;

    void acceptPeers();
    void handleReadable(int fd);
    void dispatch(int fd, const Message &msg);
    void handleHello(int fd, const Message &msg);
    void handleSubmit(int fd, const Message &msg);
    void handleResult(int fd, const Message &msg);
    void reject(int fd, RejectCode code, const std::string &text);
    void sendMsg(int fd, const Message &msg);
    void flushOut(int fd);
    void closeConn(int fd, const std::string &why);
    void enqueue(const std::string &key, std::uint64_t hash,
                 bool front = false);
    void reshard();
    void pump();
    void finishJob(const std::string &key, JobEntry &entry,
                   const explore::JobResult &verdict, bool recordStrike);
    void notifyWaiters(const JobEntry &entry,
                       const explore::JobResult &verdict);
    StoreCtx &openStore(const std::string &name, unsigned quarantineAfter);
    void checkHeartbeats(Clock::time_point now);
    void maybeFinishDrain(Clock::time_point now);
};

void
BrokerLoop::serve()
{
    std::vector<pollfd> pfds;
    std::vector<int> roundFds;
    while (true) {
        if (stopFlag.load(std::memory_order_acquire))
            break;
        pfds.clear();
        roundFds.clear();
        pfds.push_back({wakeRead, POLLIN, 0});
        pfds.push_back({listenFd, POLLIN, 0});
        for (auto &[fd, conn] : im.conns) {
            short events = POLLIN;
            if (!conn.outBuf.empty())
                events |= POLLOUT;
            pfds.push_back({fd, events, 0});
            roundFds.push_back(fd);
        }
        const int pr =
            ::poll(pfds.data(), pfds.size(), 200 /* ms */);
        if (pr < 0 && errno != EINTR) {
            throw ConnectionError(detail::concat(
                "fatal: broker poll failed: ", std::strerror(errno)));
        }
        const auto now = Clock::now();
        if (pfds[0].revents & POLLIN) {
            char sink[64];
            while (::read(wakeRead, sink, sizeof(sink)) > 0) {
            }
        }
        if (stopFlag.load(std::memory_order_acquire))
            break;
        if (drainFlag.load(std::memory_order_acquire) &&
            !im.draining) {
            // Signal-driven twin of the admin Drain message: finish
            // pending leases, reject new batches, then exit run().
            im.draining = true;
            inform("svc: graceful drain requested; finishing ",
                   im.jobs.size(), " pending cell(s)");
        }
        if (pfds[1].revents & POLLIN)
            acceptPeers();
        for (std::size_t k = 0; k < roundFds.size(); ++k) {
            const int fd = roundFds[k];
            const short revents = pfds[k + 2].revents;
            if (revents == 0 || im.conns.find(fd) == im.conns.end())
                continue;
            if (revents & POLLIN)
                handleReadable(fd);
            auto it = im.conns.find(fd);
            if (it == im.conns.end())
                continue;
            if (revents & POLLOUT)
                flushOut(fd);
            it = im.conns.find(fd);
            if (it == im.conns.end())
                continue;
            if ((revents & (POLLERR | POLLHUP | POLLNVAL)) &&
                !(revents & POLLIN))
                closeConn(fd, "peer hung up");
        }
        // Reap connections whose sends failed mid-round (flushOut only
        // marks them; see Conn::broken).
        for (;;) {
            int brokenFd = -1;
            for (const auto &[fd, conn] : im.conns) {
                if (conn.broken) {
                    brokenFd = fd;
                    break;
                }
            }
            if (brokenFd < 0)
                break;
            closeConn(brokenFd, "send failed");
        }
        checkHeartbeats(now);
        maybeFinishDrain(now);
        if (im.drainNotified) {
            bool flushed = true;
            for (const auto &[fd, conn] : im.conns)
                flushed = flushed && conn.outBuf.empty();
            if (flushed || now >= im.drainDeadline)
                break;
        }
    }
}

void
BrokerLoop::acceptPeers()
{
    for (;;) {
        const int fd = ::accept4(listenFd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or transient accept error: next round
        }
        Conn conn;
        conn.fd = fd;
        conn.lastSeen = Clock::now();
        im.conns.emplace(fd, std::move(conn));
    }
}

void
BrokerLoop::handleReadable(int fd)
{
    auto it = im.conns.find(fd);
    if (it == im.conns.end())
        return;
    Conn &conn = it->second;
    bool sawEof = false;
    char chunk[65536];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            conn.reader.feed(chunk, static_cast<std::size_t>(n));
            conn.lastSeen = Clock::now();
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        sawEof = true; // EOF or hard error: peer is gone
        break;
    }
    // Drain complete frames before acting on EOF, so a worker's final
    // Result sent just before a clean exit still lands.
    std::string payload, why;
    for (;;) {
        auto cit = im.conns.find(fd);
        if (cit == im.conns.end())
            return; // dispatch closed the connection
        if (cit->second.broken)
            break; // stream died mid-dispatch; serve loop reaps it
        const auto st = cit->second.reader.next(payload, &why);
        if (st == FrameReader::Status::NeedMore)
            break;
        if (st == FrameReader::Status::Corrupt) {
            bump("svc.broker.frame_errors", stats.frameErrors);
            closeConn(fd, detail::concat("corrupt frame (", why, ")"));
            return;
        }
        Message msg;
        if (!decodePayload(payload, msg)) {
            bump("svc.broker.frame_errors", stats.frameErrors);
            closeConn(fd, "undecodable message payload");
            return;
        }
        dispatch(fd, msg);
    }
    if (sawEof && im.conns.find(fd) != im.conns.end())
        closeConn(fd, "connection closed by peer");
}

void
BrokerLoop::dispatch(int fd, const Message &msg)
{
    const bool traced = obs::traceEnabled(obs::Category::Service);
    const std::uint64_t t0 = traced ? obs::trace().nowNanos() : 0;
    Conn &conn = im.conns[fd];
    switch (conn.state) {
      case Conn::Pending:
        if (msg.type == MsgType::Hello)
            handleHello(fd, msg);
        else
            reject(fd, RejectCode::BadRole,
                   "expected Hello before any other message");
        break;
      case Conn::Client:
        if (msg.type == MsgType::SubmitBatch)
            handleSubmit(fd, msg);
        else if (msg.type == MsgType::Ping)
            sendMsg(fd, [&] {
                Message reply;
                reply.type = MsgType::Stats;
                reply.text = renderStats();
                return reply;
            }());
        else if (msg.type == MsgType::Drain) {
            im.draining = true;
            conn.awaitingDrain = true;
        } else
            reject(fd, RejectCode::BadRole,
                   "message not valid for a client connection");
        break;
      case Conn::Worker:
        if (msg.type == MsgType::LeaseRequest) {
            conn.leaseWants =
                std::min(conn.leaseWants + msg.count, 64u);
            pump();
        } else if (msg.type == MsgType::Result)
            handleResult(fd, msg);
        else if (msg.type == MsgType::Heartbeat) {
            // liveness only; lastSeen was updated by the read itself
        } else
            reject(fd, RejectCode::BadRole,
                   "message not valid for a worker connection");
        break;
      case Conn::Admin:
        if (msg.type == MsgType::Ping)
            sendMsg(fd, [&] {
                Message reply;
                reply.type = MsgType::Stats;
                reply.text = renderStats();
                return reply;
            }());
        else if (msg.type == MsgType::Drain) {
            im.draining = true;
            conn.awaitingDrain = true;
        } else
            reject(fd, RejectCode::BadRole,
                   "message not valid for an admin connection");
        break;
    }
    if (traced) {
        obs::trace().span(obs::Category::Service, rpcName(msg.type), t0,
                          obs::trace().nowNanos() - t0,
                          {{"fd", static_cast<double>(fd)}});
    }
}

void
BrokerLoop::handleHello(int fd, const Message &msg)
{
    Conn &conn = im.conns[fd];
    if (msg.version != protocolVersion) {
        reject(fd, RejectCode::VersionMismatch,
               detail::concat("broker speaks protocol v", protocolVersion,
                              ", peer sent v", msg.version));
        return;
    }
    conn.peerPid = msg.pid;
    switch (static_cast<PeerRole>(msg.role)) {
      case PeerRole::Client:
        conn.state = Conn::Client;
        break;
      case PeerRole::Worker:
        conn.state = Conn::Worker;
        im.workerFds.push_back(fd);
        reshard();
        break;
      case PeerRole::Admin:
        conn.state = Conn::Admin;
        break;
    }
    bump("svc.broker.connects", stats.connects);
    debug("svc: peer fd=", fd, " pid=", msg.pid, " joined as ",
          conn.state == Conn::Worker
              ? "worker"
              : (conn.state == Conn::Client ? "client" : "admin"));
    Message ack;
    ack.type = MsgType::HelloAck;
    ack.version = protocolVersion;
    ack.pid = static_cast<std::uint64_t>(::getpid());
    sendMsg(fd, ack);
    if (conn.state == Conn::Worker)
        pump();
}

StoreCtx &
BrokerLoop::openStore(const std::string &name, unsigned quarantineAfter)
{
    auto it = im.stores.find(name);
    if (it == im.stores.end()) {
        StoreCtx ctx;
        ctx.cache = std::make_unique<explore::ResultCache>(
            im.cacheDir, name, false, cfg.cacheFsync);
        ctx.quarantine = std::make_unique<explore::QuarantineLog>(
            im.cacheDir, name, quarantineAfter);
        ctx.quarantineLimit = quarantineAfter;
        inform("svc: opened store '", name, "' (",
               ctx.cache->loadedRecords(), " records) at ",
               ctx.cache->path());
        it = im.stores.emplace(name, std::move(ctx)).first;
    } else if (it->second.quarantineLimit != quarantineAfter) {
        // A later batch asked for a different strike limit; re-read the
        // strike file under the new limit so poisoned() matches what an
        // in-process campaign with that config would decide.
        it->second.quarantine =
            std::make_unique<explore::QuarantineLog>(im.cacheDir, name,
                                                     quarantineAfter);
        it->second.quarantineLimit = quarantineAfter;
    }
    return it->second;
}

void
BrokerLoop::handleSubmit(int fd, const Message &msg)
{
    if (im.draining) {
        reject(fd, RejectCode::Draining,
               "broker is draining and accepts no new batches");
        return;
    }
    if (!validStoreName(msg.text)) {
        reject(fd, RejectCode::Malformed,
               detail::concat("invalid store name '", msg.text, "'"));
        return;
    }
    // Reject before touching any state: every canonical string must
    // parse, round-trip, and match its claimed content hash.
    for (const JobRef &job : msg.jobs) {
        explore::JobSpec spec;
        if (!explore::JobSpec::fromCanonical(job.canonical, spec) ||
            spec.hash() != job.hash) {
            reject(fd, RejectCode::Malformed,
                   "job spec failed canonical round-trip or hash check");
            return;
        }
    }
    StoreCtx *store = nullptr;
    try {
        store = &openStore(msg.text, msg.quarantineAfter);
    } catch (const std::exception &e) {
        reject(fd, RejectCode::Malformed,
               detail::concat("cannot open store: ", e.what()));
        return;
    }
    const std::uint64_t batchId = im.nextBatchId++;
    bump("svc.broker.batches", stats.batches);
    Message ack;
    ack.type = MsgType::SubmitAck;
    ack.batchId = batchId;
    ack.count = static_cast<std::uint32_t>(msg.jobs.size());
    ack.text = store->cache->path();
    sendMsg(fd, ack);
    chaos::point(sites::brokerSubmitAck);

    const bool retryFailed = msg.retryFailed != 0;
    const unsigned maxAttempts = msg.maxAttempts > 0 ? msg.maxAttempts : 1;
    for (std::uint32_t i = 0; i < msg.jobs.size(); ++i) {
        const JobRef &job = msg.jobs[i];
        explore::JobResult cached;
        const bool hit =
            msg.fresh == 0 &&
            store->cache->segments().lookup(job.canonical, job.hash,
                                            msg.seed, cached);
        Message out;
        out.type = MsgType::ClientResult;
        out.batchId = batchId;
        out.index = i;
        if (hit && (cached.ok() || !retryFailed)) {
            // Failure records are results too — mirror of the
            // in-process resume semantics in explore/campaign.cc.
            out.cached = 1;
            out.result = toWire(cached);
            // Count before delivering: a client that has seen this
            // outcome must also see the counter (tests snapshot the
            // counters as soon as their campaign returns).
            bump("svc.broker.store_hits", stats.storeHits);
            sendMsg(fd, out);
            continue;
        }
        if (!retryFailed &&
            store->quarantine->poisonedCanonical(job.canonical)) {
            const explore::JobResult verdict =
                explore::JobResult::failure(
                    explore::JobStatus::Quarantined,
                    detail::concat(
                        "skipped after ",
                        store->quarantine->strikesCanonical(
                            job.canonical),
                        " recorded failures; rerun with "
                        "--retry-failed to attempt it again"));
            if (!hit) {
                store->cache->segments().append(
                    {job.canonical, job.hash, msg.seed, verdict});
            }
            out.cached = 0;
            out.result = toWire(verdict);
            bump("svc.broker.quarantine_skips", stats.quarantineSkips);
            sendMsg(fd, out);
            continue;
        }
        const std::string key =
            Broker::Impl::jobKey(msg.text, job.canonical, msg.seed);
        auto jit = im.jobs.find(key);
        if (jit != im.jobs.end()) {
            // A twin cell is already queued or running (typically for a
            // concurrent campaign): share its execution.
            jit->second.waiters.push_back({fd, batchId, i, true});
            bump("svc.broker.inflight_hits", stats.inflightHits);
            continue;
        }
        JobEntry entry;
        entry.store = msg.text;
        entry.canonical = job.canonical;
        entry.hash = job.hash;
        entry.seed = msg.seed;
        entry.maxAttempts = maxAttempts;
        entry.waiters.push_back({fd, batchId, i, false});
        im.jobs.emplace(key, std::move(entry));
        enqueue(key, job.hash);
        bump("svc.broker.jobs", stats.jobsSubmitted);
    }
    pump();
}

void
BrokerLoop::handleResult(int fd, const Message &msg)
{
    Conn &conn = im.conns[fd];
    auto lit = im.leases.find(msg.leaseId);
    if (lit == im.leases.end() ||
        conn.held.find(msg.leaseId) == conn.held.end()) {
        return; // stale lease (e.g. re-dispatched after a false death)
    }
    chaos::point(sites::brokerResultRecv);
    const std::string key = lit->second;
    im.leases.erase(lit);
    conn.held.erase(msg.leaseId);
    auto jit = im.jobs.find(key);
    if (jit == im.jobs.end())
        return;
    JobEntry &entry = jit->second;
    entry.leased = false;
    entry.workerFd = -1;
    bump("svc.broker.results", stats.results);
    explore::JobResult verdict = fromWire(msg.result);
    if (verdict.status() == explore::JobStatus::Failed) {
        ++entry.evalAttempts;
        bump("svc.broker.eval_failures", stats.evalFailures);
        if (entry.evalAttempts < entry.maxAttempts) {
            // Budget left: re-queue, front of the shard, no backoff —
            // the next attempt lands in a (possibly different) fresh
            // process, which is what the in-process backoff bought.
            bump("svc.broker.retries", stats.retries);
            enqueue(key, entry.hash, /*front=*/true);
            pump();
            return;
        }
        finishJob(key, entry, verdict, /*recordStrike=*/true);
        return;
    }
    finishJob(key, entry, verdict, /*recordStrike=*/false);
}

void
BrokerLoop::finishJob(const std::string &key, JobEntry &entry,
                      const explore::JobResult &verdict,
                      bool recordStrike)
{
    auto sit = im.stores.find(entry.store);
    EH_ASSERT(sit != im.stores.end(), "job finished for unopened store");
    if (recordStrike)
        sit->second.quarantine->recordFailureCanonical(entry.canonical);
    sit->second.cache->segments().append(
        {entry.canonical, entry.hash, entry.seed, verdict});
    // The gap this site arms is the interesting one: the record is
    // durable but no waiter has heard — recovery must serve it as a
    // store hit after resume, never re-execute it.
    chaos::point(sites::brokerResultPersisted);
    notifyWaiters(entry, verdict);
    im.jobs.erase(key);
}

void
BrokerLoop::notifyWaiters(const JobEntry &entry,
                          const explore::JobResult &verdict)
{
    const WireResult wire = toWire(verdict);
    for (const Waiter &waiter : entry.waiters) {
        if (im.conns.find(waiter.fd) == im.conns.end())
            continue; // campaign went away; the record is on disk
        Message out;
        out.type = MsgType::ClientResult;
        out.batchId = waiter.batchId;
        out.index = waiter.index;
        out.cached = waiter.joined ? 1 : 0;
        out.result = wire;
        sendMsg(waiter.fd, out);
    }
}

void
BrokerLoop::enqueue(const std::string &key, std::uint64_t hash,
                    bool front)
{
    if (im.workerFds.empty()) {
        if (front)
            im.unassigned.push_front(key);
        else
            im.unassigned.push_back(key);
        return;
    }
    const int fd = im.workerFds[hash % im.workerFds.size()];
    if (front)
        im.queues[fd].push_front(key);
    else
        im.queues[fd].push_back(key);
}

void
BrokerLoop::reshard()
{
    std::deque<std::string> pending;
    for (const int fd : im.workerFds) {
        auto qit = im.queues.find(fd);
        if (qit == im.queues.end())
            continue;
        for (std::string &key : qit->second)
            pending.push_back(std::move(key));
        qit->second.clear();
    }
    for (std::string &key : im.unassigned)
        pending.push_back(std::move(key));
    im.unassigned.clear();
    // Drop queues of departed workers (their contents were either moved
    // above or re-queued by closeConn before the membership change).
    for (auto qit = im.queues.begin(); qit != im.queues.end();) {
        if (std::find(im.workerFds.begin(), im.workerFds.end(),
                      qit->first) == im.workerFds.end())
            qit = im.queues.erase(qit);
        else
            ++qit;
    }
    for (const std::string &key : pending) {
        auto jit = im.jobs.find(key);
        if (jit != im.jobs.end())
            enqueue(key, jit->second.hash);
    }
}

void
BrokerLoop::pump()
{
    for (const int fd : im.workerFds) {
        auto cit = im.conns.find(fd);
        if (cit == im.conns.end())
            continue;
        Conn &worker = cit->second;
        auto &queue = im.queues[fd];
        while (worker.leaseWants > 0 && !queue.empty()) {
            const std::string key = queue.front();
            queue.pop_front();
            auto jit = im.jobs.find(key);
            if (jit == im.jobs.end())
                continue; // finished while queued (shouldn't happen)
            JobEntry &entry = jit->second;
            if (entry.leased)
                continue;
            const std::uint64_t leaseId = im.nextLeaseId++;
            entry.leased = true;
            entry.workerFd = fd;
            im.leases.emplace(leaseId, key);
            worker.held.insert(leaseId);
            --worker.leaseWants;
            Message grant;
            grant.type = MsgType::LeaseGrant;
            JobRef ref;
            ref.leaseId = leaseId;
            ref.seed = entry.seed;
            ref.canonical = entry.canonical;
            grant.jobs.push_back(std::move(ref));
            sendMsg(fd, grant);
            chaos::point(sites::brokerLeaseGrant);
            bump("svc.broker.leases", stats.leases);
        }
    }
}

void
BrokerLoop::reject(int fd, RejectCode code, const std::string &text)
{
    warn("svc: rejecting fd=", fd, " (", rejectCodeName(code),
         "): ", text);
    Message msg;
    msg.type = MsgType::Reject;
    msg.code = static_cast<std::uint32_t>(code);
    msg.text = text;
    // Flag first: flushOut checks closeAfterFlush once the buffer
    // drains, which may happen synchronously inside sendMsg.
    auto it = im.conns.find(fd);
    if (it != im.conns.end())
        it->second.closeAfterFlush = true;
    sendMsg(fd, msg);
}

void
BrokerLoop::sendMsg(int fd, const Message &msg)
{
    auto it = im.conns.find(fd);
    if (it == im.conns.end() || it->second.broken)
        return;
    it->second.outBuf += encodeFrame(msg);
    flushOut(fd);
}

void
BrokerLoop::flushOut(int fd)
{
    auto it = im.conns.find(fd);
    if (it == im.conns.end() || it->second.broken)
        return;
    Conn &conn = it->second;
    while (!conn.outBuf.empty()) {
        const ssize_t n =
            ::send(fd, conn.outBuf.data(), conn.outBuf.size(),
                   MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
            conn.outBuf.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // POLLOUT will drive the rest
        // Never closeConn() here: flushOut runs inside loops over the
        // connection tables. Mark and let the serve loop reap.
        conn.outBuf.clear();
        conn.broken = true;
        return;
    }
    if (conn.closeAfterFlush)
        conn.broken = true;
}

void
BrokerLoop::closeConn(int fd, const std::string &why)
{
    auto it = im.conns.find(fd);
    if (it == im.conns.end())
        return;
    Conn conn = std::move(it->second);
    im.conns.erase(it);
    ::close(fd);
    bump("svc.broker.disconnects", stats.disconnects);
    if (conn.state == Conn::Worker) {
        if (!conn.held.empty())
            bump("svc.broker.worker_crashes", stats.workerCrashes);
        warn("svc: worker pid=", conn.peerPid, " gone (", why, "), ",
             conn.held.size(), " lease(s) to re-dispatch");
        for (const std::uint64_t leaseId : conn.held) {
            auto lit = im.leases.find(leaseId);
            if (lit == im.leases.end())
                continue;
            const std::string key = lit->second;
            im.leases.erase(lit);
            auto jit = im.jobs.find(key);
            if (jit == im.jobs.end())
                continue;
            JobEntry &entry = jit->second;
            entry.leased = false;
            entry.workerFd = -1;
            ++entry.crashes;
            if (entry.crashes > cfg.redispatchLimit) {
                // A cell that keeps killing workers is poison: record
                // it as Failed and feed the quarantine ladder, exactly
                // like an evaluator that threw out of retries.
                const explore::JobResult verdict =
                    explore::JobResult::failure(
                        explore::JobStatus::Failed,
                        detail::concat(
                            "worker process died while evaluating "
                            "this cell (",
                            entry.crashes, " crashes)"));
                finishJob(key, entry, verdict, /*recordStrike=*/true);
                continue;
            }
            bump("svc.broker.redispatches", stats.redispatches);
            im.unassigned.push_front(key);
        }
        im.workerFds.erase(std::remove(im.workerFds.begin(),
                                       im.workerFds.end(), fd),
                           im.workerFds.end());
        auto qit = im.queues.find(fd);
        if (qit != im.queues.end()) {
            for (std::string &key : qit->second)
                im.unassigned.push_back(std::move(key));
            im.queues.erase(qit);
        }
        reshard();
        pump();
    } else if (conn.state == Conn::Client) {
        // Forget its waiters; in-flight cells still finish and persist,
        // so the campaign's re-run resumes from the store.
        for (auto &[key, entry] : im.jobs) {
            entry.waiters.erase(
                std::remove_if(entry.waiters.begin(),
                               entry.waiters.end(),
                               [fd](const Waiter &w) {
                                   return w.fd == fd;
                               }),
                entry.waiters.end());
        }
        debug("svc: client fd=", fd, " gone (", why, ")");
    }
}

void
BrokerLoop::checkHeartbeats(Clock::time_point now)
{
    const auto limit =
        std::chrono::milliseconds(cfg.heartbeatTimeoutMs);
    std::vector<int> dead;
    for (const auto &[fd, conn] : im.conns) {
        if (conn.state == Conn::Worker && now - conn.lastSeen > limit)
            dead.push_back(fd);
    }
    for (const int fd : dead)
        closeConn(fd, "heartbeat timeout");
}

void
BrokerLoop::maybeFinishDrain(Clock::time_point now)
{
    if (!im.draining || im.drainNotified || !im.jobs.empty())
        return;
    im.drainNotified = true;
    im.drainDeadline = now + std::chrono::seconds(2);
    Message drain;
    drain.type = MsgType::Drain;
    Message ack;
    ack.type = MsgType::DrainAck;
    std::vector<int> fds;
    for (const auto &[fd, conn] : im.conns)
        fds.push_back(fd);
    for (const int fd : fds) {
        auto it = im.conns.find(fd);
        if (it == im.conns.end())
            continue;
        if (it->second.state == Conn::Worker)
            sendMsg(fd, drain);
        else if (it->second.awaitingDrain)
            sendMsg(fd, ack);
    }
    inform("svc: drained; shutting down");
}

} // namespace

std::uint64_t
Broker::run()
{
    inform("svc: broker pid=", ::getpid(), " listening on ",
           cfg.socketPath, " (store dir ", im->cacheDir, ")");
    BrokerLoop loop(*im, stats, cfg, listenFd, wakeRead, stopFlag,
                    drainFlag);
    loop.renderStats = [this] { return statsJson(); };
    loop.serve();
    // Seal and close every open store before the fds go away.
    im->stores.clear();
    return stats.results;
}

} // namespace eh::svc
