/**
 * @file
 * Wire protocol of the sharded exploration service (docs/SERVICE.md).
 * Every message travels as one length-prefixed, CRC-32-framed binary
 * frame over a Unix-domain stream socket:
 *
 *   [magic "EHS1" u32le][payload length u32le][payload CRC-32 u32le]
 *   [payload bytes]
 *
 * and the payload is `[type u32le][type-specific body]` built from the
 * same little-endian codecs the durable result store uses (util/fsio).
 * The framing discipline mirrors explore/store.hh: a frame is either
 * accepted whole — magic, bounded length, and CRC all verified — or the
 * connection is declared corrupt and torn down. Unlike an append-only
 * segment file there is no resynchronization on a stream socket: bytes
 * after a damaged frame have no trustworthy alignment, so FrameReader
 * goes sticky-corrupt instead of guessing. Decoders are pure and
 * total: any byte string either decodes to a validated message or is
 * rejected, never undefined behaviour — the protocol fuzz suite
 * (tests/test_svc.cc) holds them to that at every truncation offset and
 * single-bit flip.
 */

#ifndef EH_SVC_PROTO_HH
#define EH_SVC_PROTO_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "explore/job.hh"

namespace eh::svc {

/** Protocol version; peers with different versions refuse the hello. */
constexpr std::uint32_t protocolVersion = 1;

/** Frame magic "EHS1" (little-endian u32) preceding every message. */
constexpr std::uint32_t frameMagic = 0x31534845u;

/** Bytes of frame header: magic, payload length, payload CRC-32. */
constexpr std::size_t frameHeaderBytes = 12;

/** Upper bound on one frame's payload (corrupt-length guard). */
constexpr std::size_t maxFramePayloadBytes = 16u << 20;

/** Message types (the u32 leading every payload). */
enum class MsgType : std::uint32_t
{
    Hello = 1,    ///< peer → broker: version, role, pid
    HelloAck,     ///< broker → peer: version accepted
    Reject,       ///< broker → peer: refusal (code + text), then close
    SubmitBatch,  ///< client → broker: store name, seed, flags, jobs
    SubmitAck,    ///< broker → client: batch id + store path
    LeaseRequest, ///< worker → broker: ready for up to `count` jobs
    LeaseGrant,   ///< broker → worker: leased jobs (leaseId, spec, seed)
    Result,       ///< worker → broker: one lease's outcome
    ClientResult, ///< broker → client: one submitted cell's outcome
    Heartbeat,    ///< worker → broker: liveness (no reply)
    Drain,        ///< admin → broker: finish pending work, then exit;
                  ///< broker → worker: exit now
    DrainAck,     ///< broker → admin: drained and about to exit
    Ping,         ///< admin → broker: health probe
    Stats,        ///< broker → admin: counters as a JSON object
};

/** Reject codes. */
enum class RejectCode : std::uint32_t
{
    VersionMismatch = 1, ///< peer speaks a different protocolVersion
    BadRole = 2,         ///< message invalid for the peer's role/state
    Malformed = 3,       ///< structurally valid frame, senseless content
    Draining = 4,        ///< broker no longer accepts new batches
};

/** Stable lowercase name of a reject code (diagnostics). */
const char *rejectCodeName(RejectCode code);

/** Peer roles declared in Hello. */
enum class PeerRole : std::uint32_t
{
    Client = 0,
    Worker = 1,
    Admin = 2,
};

/** One job reference, reused by SubmitBatch and LeaseGrant. */
struct JobRef
{
    std::string canonical;     ///< canonical JobSpec string
    std::uint64_t hash = 0;    ///< content hash (SubmitBatch; verified)
    std::uint64_t seed = 0;    ///< campaign seed (LeaseGrant)
    std::uint64_t leaseId = 0; ///< lease handle (LeaseGrant)
};

/** Result fields + containment status, as carried on the wire. */
struct WireResult
{
    std::uint32_t status = 0; ///< JobStatus as its stable integer
    std::string error;        ///< diagnostic for non-Ok statuses
    std::vector<std::pair<std::string, std::string>> fields;
};

/**
 * One protocol message: a type tag plus the union of per-type fields
 * (only the fields the type's codec reads/writes are meaningful — see
 * docs/SERVICE.md for each message's exact body layout). A flat struct
 * keeps the codec table-driven and the fuzz surface in one place.
 */
struct Message
{
    MsgType type = MsgType::Hello;

    // Hello / HelloAck
    std::uint32_t version = 0;
    std::uint32_t role = 0;
    std::uint64_t pid = 0; ///< also: Heartbeat

    // Reject
    std::uint32_t code = 0;

    // Reject text / Stats JSON / SubmitBatch store name /
    // SubmitAck store path
    std::string text;

    // SubmitBatch / SubmitAck / ClientResult
    std::uint64_t batchId = 0;
    std::uint64_t seed = 0;
    std::uint32_t maxAttempts = 0;
    std::uint32_t retryFailed = 0;
    std::uint32_t fresh = 0; ///< ignore existing store records
    std::uint32_t quarantineAfter = 0;

    // SubmitBatch / LeaseGrant
    std::vector<JobRef> jobs;

    // LeaseRequest (jobs wanted) — also echoed in SubmitAck (total)
    std::uint32_t count = 0;

    // Result
    std::uint64_t leaseId = 0;

    // ClientResult
    std::uint32_t index = 0;
    std::uint32_t cached = 0;

    // Result / ClientResult
    WireResult result;
};

/** JobResult → wire form (status integer, error, ordered fields). */
WireResult toWire(const explore::JobResult &result);

/**
 * Wire form → JobResult. Field order is preserved byte-for-byte — the
 * campaign CSV's bit-identity across in-process and service execution
 * rests on it. An out-of-range status decays to Failed.
 */
explore::JobResult fromWire(const WireResult &wire);

/** Serialize @p msg's payload (no frame header). */
std::string encodePayload(const Message &msg);

/**
 * Decode one payload. Returns false on any malformation: unknown type,
 * truncated field, oversized claimed length, or trailing bytes. Never
 * throws, never reads out of bounds.
 */
bool decodePayload(const std::string &payload, Message &out);

/** Full frame bytes for @p msg: header (magic, length, CRC) + payload. */
std::string encodeFrame(const Message &msg);

/**
 * Incremental frame extractor for one stream connection. Feed bytes as
 * they arrive; next() yields complete, CRC-verified payloads. Any
 * damage — wrong magic, oversized length, CRC mismatch — flips the
 * reader into a sticky Corrupt state: on a stream there is no safe
 * resynchronization point, so the owning connection must be closed.
 */
class FrameReader
{
  public:
    enum class Status
    {
        NeedMore, ///< no complete frame buffered yet
        Frame,    ///< one payload extracted into the out-parameter
        Corrupt,  ///< stream damaged; discard the connection
    };

    /** Append @p len raw bytes from the peer. */
    void feed(const char *data, std::size_t len);

    /**
     * Extract the next payload. @p why (optional) receives a diagnostic
     * when the return value is Corrupt.
     */
    Status next(std::string &payload, std::string *why = nullptr);

    /** True once the stream has been declared corrupt. */
    bool corrupt() const { return damaged; }

    /** Bytes buffered but not yet consumed. */
    std::size_t buffered() const { return buf.size() - at; }

  private:
    std::string buf;
    std::size_t at = 0; ///< consumed prefix of buf
    bool damaged = false;
    std::string reason;
};

} // namespace eh::svc

#endif // EH_SVC_PROTO_HH
