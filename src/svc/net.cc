#include "svc/net.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "svc/chaos.hh"
#include "util/panic.hh"

namespace eh::svc {

namespace {

/** Fill a sockaddr_un; throws on an over-long path. */
sockaddr_un
unixAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw ConnectionError(detail::concat(
            "fatal: socket path '", path, "' exceeds the ",
            sizeof(addr.sun_path) - 1, "-byte sun_path limit"));
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

bool
socketHasListener(const std::string &path)
{
    const sockaddr_un addr = unixAddr(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        throw ConnectionError(detail::concat(
            "fatal: cannot create probe socket: ",
            std::strerror(errno)));
    }
    const bool alive =
        ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) == 0;
    ::close(fd);
    return alive;
}

int
listenUnix(const std::string &path)
{
    const sockaddr_un addr = unixAddr(path);
    // Takeover guard: a socket file with a live listener behind it
    // belongs to a running broker — binding here would silently steal
    // every future connect from it. Probe first; only a dead socket
    // (connect refused: the old owner is gone but its file remains)
    // may be unlinked and reused.
    if (socketHasListener(path)) {
        throw SocketBusyError(detail::concat(
            "fatal: a live broker already listens on '", path,
            "'; refusing to take over its socket (stop it first, or "
            "use a different --socket path)"));
    }
    // Non-blocking: the broker's accept loop drains until EAGAIN and
    // must never block the poll loop inside accept4().
    const int fd = ::socket(
        AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd < 0) {
        throw ConnectionError(detail::concat(
            "fatal: cannot create socket: ", std::strerror(errno)));
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        throw ConnectionError(detail::concat(
            "fatal: cannot listen on '", path,
            "': ", std::strerror(err)));
    }
    return fd;
}

int
connectUnix(const std::string &path, int timeout_ms)
{
    const sockaddr_un addr = unixAddr(path);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
    int lastErr = 0;
    do {
        const int fd =
            ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            throw ConnectionError(detail::concat(
                "fatal: cannot create socket: ",
                std::strerror(errno)));
        }
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            return fd;
        }
        lastErr = errno;
        ::close(fd);
        // The broker may still be binding (ENOENT) or draining its
        // accept backlog (ECONNREFUSED); anything else is permanent.
        if (lastErr != ENOENT && lastErr != ECONNREFUSED)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    } while (std::chrono::steady_clock::now() < deadline);
    throw ConnectionError(detail::concat(
        "fatal: cannot connect to broker at '", path,
        "': ", std::strerror(lastErr),
        " (is eh_explored serve running?)"));
}

bool
sendAll(int fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        // Chaos: counted site (crash= here dies mid-frame, leaving a
        // truncated frame on the wire), short-write clamping, and
        // simulated EINTR storms exercise the partial-send loop.
        chaos::point(sites::netSend);
        if (chaos::spuriousEintr(sites::netSend))
            continue;
        const std::size_t want =
            chaos::clampIo(sites::netSend, bytes.size() - sent);
        // MSG_NOSIGNAL: a peer that died mid-send must surface as EPIPE,
        // not kill the process with SIGPIPE.
        const ssize_t n =
            ::send(fd, bytes.data() + sent, want, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

FrameConn::~FrameConn()
{
    close();
}

FrameConn::FrameConn(FrameConn &&other) noexcept
    : fd(other.fd), reader(std::move(other.reader))
{
    other.fd = -1;
}

FrameConn &
FrameConn::operator=(FrameConn &&other) noexcept
{
    if (this != &other) {
        close();
        fd = other.fd;
        reader = std::move(other.reader);
        other.fd = -1;
    }
    return *this;
}

void
FrameConn::connect(const std::string &path, int timeout_ms)
{
    close();
    fd = connectUnix(path, timeout_ms);
    reader = FrameReader();
}

void
FrameConn::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
FrameConn::send(const Message &msg)
{
    if (fd < 0)
        return false;
    if (!sendAll(fd, encodeFrame(msg))) {
        close();
        return false;
    }
    return true;
}

bool
FrameConn::recv(Message &out, int timeout_ms, bool *timed_out)
{
    if (timed_out)
        *timed_out = false;
    if (fd < 0)
        return false;
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
        std::string payload;
        switch (reader.next(payload)) {
          case FrameReader::Status::Frame:
            if (decodePayload(payload, out))
                return true;
            close(); // structurally framed garbage: drop the stream
            return false;
          case FrameReader::Status::Corrupt:
            close();
            return false;
          case FrameReader::Status::NeedMore:
            break;
        }
        int wait = -1;
        if (timeout_ms >= 0) {
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            wait = timeout_ms - static_cast<int>(elapsed);
            if (wait <= 0) {
                if (timed_out)
                    *timed_out = true;
                return false;
            }
        }
        pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, wait);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            close();
            return false;
        }
        if (pr == 0) {
            if (timed_out)
                *timed_out = true;
            return false;
        }
        // Chaos: counted site (crash= here dies with bytes readable
        // but unconsumed), plus short-read clamping and simulated
        // EINTR storms exercising the reassembly loop.
        chaos::point(sites::netRecv);
        if (chaos::spuriousEintr(sites::netRecv))
            continue;
        char chunk[4096];
        const ssize_t n = ::read(
            fd, chunk, chaos::clampIo(sites::netRecv, sizeof(chunk)));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) { // EOF or error: the peer is gone
            close();
            return false;
        }
        reader.feed(chunk, static_cast<std::size_t>(n));
    }
}

void
FrameConn::handshake(PeerRole role)
{
    Message hello;
    hello.type = MsgType::Hello;
    hello.version = protocolVersion;
    hello.role = static_cast<std::uint32_t>(role);
    hello.pid = static_cast<std::uint64_t>(::getpid());
    Message reply;
    if (!send(hello) || !recv(reply, 10000)) {
        throw ConnectionError(
            "fatal: connection lost during the service handshake");
    }
    if (reply.type == MsgType::Reject) {
        throw HandshakeError(detail::concat(
            "fatal: broker rejected the handshake (",
            rejectCodeName(static_cast<RejectCode>(reply.code)),
            "): ", reply.text));
    }
    if (reply.type != MsgType::HelloAck ||
        reply.version != protocolVersion) {
        throw HandshakeError(detail::concat(
            "fatal: protocol version mismatch (peer v", reply.version,
            ", this build v", protocolVersion, ")"));
    }
}

} // namespace eh::svc
