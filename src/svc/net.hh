/**
 * @file
 * Unix-domain-socket plumbing for the exploration service
 * (docs/SERVICE.md): listen/connect helpers plus FrameConn, a blocking
 * framed connection that sends and receives whole protocol messages
 * (svc/proto.hh). The broker keeps its own non-blocking event loop and
 * uses only the raw helpers; worker, client and admin tools talk
 * through FrameConn.
 *
 * Error discipline: connectivity problems throw eh::ConnectionError and
 * refused handshakes throw eh::HandshakeError, which runMain() maps to
 * their own exit codes (docs/ROBUSTNESS.md).
 */

#ifndef EH_SVC_NET_HH
#define EH_SVC_NET_HH

#include <string>

#include "svc/proto.hh"

namespace eh::svc {

/**
 * True when a live listener answers a connect() probe at @p path.
 * Distinguishes a running broker (probe succeeds) from a stale socket
 * file left by a killed one (ECONNREFUSED) or no socket at all.
 * @throws ConnectionError when the probe socket cannot be created.
 */
bool socketHasListener(const std::string &path);

/**
 * Create, bind and listen on a Unix-domain stream socket at @p path.
 * The path is probed first: a *live* broker there is never hijacked —
 * only a stale socket file (its owner is dead, so connects are
 * refused) is unlinked before binding, making broker restarts safe
 * and double-starts loud.
 * @throws SocketBusyError when a live broker already owns @p path
 *         (exit code 5, docs/ROBUSTNESS.md).
 * @throws ConnectionError on socket/bind/listen failure or an
 *         over-long path (sun_path limit).
 */
int listenUnix(const std::string &path);

/**
 * Connect to the Unix-domain socket at @p path, retrying for up to
 * @p timeout_ms (covers the broker's startup window). Returns the
 * connected fd with SIGPIPE-safe send semantics.
 * @throws ConnectionError when the deadline expires.
 */
int connectUnix(const std::string &path, int timeout_ms = 5000);

/** Write all of @p bytes to @p fd (EINTR/partial-write safe). */
bool sendAll(int fd, const std::string &bytes);

/**
 * One blocking framed connection. Not thread-safe per operation class:
 * concurrent senders must hold their own lock (the worker's heartbeat
 * thread does); recv() must stay on one thread.
 */
class FrameConn
{
  public:
    FrameConn() = default;
    /** Adopt a connected fd (takes ownership). */
    explicit FrameConn(int fd_) : fd(fd_) {}
    ~FrameConn();
    FrameConn(const FrameConn &) = delete;
    FrameConn &operator=(const FrameConn &) = delete;
    FrameConn(FrameConn &&other) noexcept;
    FrameConn &operator=(FrameConn &&other) noexcept;

    /** Connect to @p path (see connectUnix). */
    void connect(const std::string &path, int timeout_ms = 5000);

    /** True while the socket is open and the stream is intact. */
    bool open() const { return fd >= 0; }

    /** Close the socket (idempotent). */
    void close();

    /** Send one message. Returns false on a broken connection. */
    bool send(const Message &msg);

    /**
     * Receive the next message, blocking up to @p timeout_ms
     * (-1 = forever). Returns false on timeout, EOF, a corrupt frame,
     * or an undecodable payload — all of which also close the
     * connection except the plain timeout. @p timed_out distinguishes
     * "nothing arrived" from "the stream died".
     */
    bool recv(Message &out, int timeout_ms = -1,
              bool *timed_out = nullptr);

    /**
     * Hello/HelloAck handshake as @p role.
     * @throws HandshakeError on a Reject reply or version mismatch.
     * @throws ConnectionError when the stream dies mid-handshake.
     */
    void handshake(PeerRole role);

    /** Raw fd (tests). */
    int rawFd() const { return fd; }

  private:
    int fd = -1;
    FrameReader reader;
};

} // namespace eh::svc

#endif // EH_SVC_NET_HH
