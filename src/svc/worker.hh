/**
 * @file
 * The exploration worker (docs/SERVICE.md): connects to the broker,
 * leases one cell at a time, evaluates it with the job's deterministic
 * RNG sub-stream — `Rng(seed).split(spec.hash())`, byte-identical to
 * an in-process campaign worker — and reports the outcome. A heartbeat
 * thread keeps the broker's liveness clock ticking while a long cell
 * evaluates. Evaluator exceptions are contained into Failed results
 * exactly like explore/campaign.cc does; retry budgeting lives in the
 * broker, so a worker runs each lease exactly once.
 */

#ifndef EH_SVC_WORKER_HH
#define EH_SVC_WORKER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "explore/job.hh"
#include "util/random.hh"

namespace eh::svc {

/** Worker tuning knobs. */
struct WorkerConfig
{
    /** Broker socket to connect to. */
    std::string socketPath;

    /** Heartbeat period; keep well under the broker's timeout. */
    unsigned heartbeatMs = 500;

    /**
     * Reconnect attempts after a lost broker connection before run()
     * gives up with ConnectionError. The wait before attempt k is
     * exponential — reconnectBackoffMs << k, capped at
     * reconnectBackoffMaxMs — plus a deterministic jitter derived from
     * (id, k), so a fleet of workers orphaned by one broker crash
     * fans its reconnects out instead of stampeding the fresh broker
     * in lockstep (see workerReconnectDelayMs).
     */
    unsigned reconnectAttempts = 5;
    unsigned reconnectBackoffMs = 200;
    unsigned reconnectBackoffMaxMs = 5000;

    /**
     * Stable worker identity, used only to seed the reconnect jitter.
     * Supervised workers get their spawn index; hand-started workers
     * may leave 0 (they still back off exponentially, just with the
     * same jitter stream). Deterministic by design — tests reproduce
     * the exact schedule.
     */
    std::uint64_t id = 0;
};

/**
 * Backoff before reconnect attempt @p attempt (0-based): capped
 * exponential on cfg.reconnectBackoffMs plus a deterministic jitter in
 * [0, reconnectBackoffMs) seeded from (cfg.id, attempt). Pure —
 * exposed so tests can pin the schedule.
 */
unsigned workerReconnectDelayMs(const WorkerConfig &cfg,
                                unsigned attempt);

/** One worker process's engine. */
class Worker
{
  public:
    using Evaluator =
        std::function<explore::JobResult(const explore::JobSpec &,
                                         Rng &rng)>;

    /**
     * @param eval evaluator for leased cells; defaults to the standard
     *        task registry (explore::evaluateJob) when empty.
     */
    explicit Worker(WorkerConfig config, Evaluator eval = {});

    /**
     * Serve leases until the broker drains (returns the number of
     * cells evaluated) or requestStop() is called.
     * @throws ConnectionError when the broker stays unreachable past
     *         the reconnect budget.
     * @throws HandshakeError on a protocol version mismatch.
     */
    std::uint64_t run();

    /** Ask run() to return at the next loop turn (tests, signals). */
    void requestStop() { stopFlag.store(true); }

  private:
    WorkerConfig cfg;
    Evaluator evaluator;
    std::atomic<bool> stopFlag{false};
};

} // namespace eh::svc

#endif // EH_SVC_WORKER_HH
