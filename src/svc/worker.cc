#include "svc/worker.hh"

#include <chrono>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "explore/tasks.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "svc/net.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace eh::svc {

Worker::Worker(WorkerConfig config, Evaluator eval)
    : cfg(std::move(config)), evaluator(std::move(eval))
{
    if (!evaluator)
        evaluator = [](const explore::JobSpec &spec, Rng &rng) {
            return explore::evaluateJob(spec, rng);
        };
}

namespace {

/** Evaluate one leased cell, containing every evaluator exception. */
explore::JobResult
evaluateLease(const Worker::Evaluator &eval, const JobRef &lease)
{
    explore::JobSpec spec;
    if (!explore::JobSpec::fromCanonical(lease.canonical, spec)) {
        return explore::JobResult::failure(
            explore::JobStatus::Failed,
            "leased job spec failed the canonical round-trip check");
    }
    // The job's whole entropy budget: campaign seed + job hash, the
    // exact stream an in-process campaign worker would derive
    // (explore/campaign.cc) — results must not depend on which process
    // evaluates the cell.
    Rng rng = Rng(lease.seed).split(spec.hash());
    try {
        return eval(spec, rng);
    } catch (const std::exception &e) {
        return explore::JobResult::failure(explore::JobStatus::Failed,
                                           e.what());
    } catch (...) {
        return explore::JobResult::failure(
            explore::JobStatus::Failed,
            "evaluator threw a non-standard exception");
    }
}

} // namespace

std::uint64_t
Worker::run()
{
    std::uint64_t evaluated = 0;
    unsigned reconnectsLeft = cfg.reconnectAttempts;
    while (!stopFlag.load(std::memory_order_acquire)) {
        FrameConn conn;
        conn.connect(cfg.socketPath);
        conn.handshake(PeerRole::Worker); // throws on version mismatch
        obs::metrics().counter("svc.worker.connects").add(1);
        inform("svc: worker pid=", ::getpid(), " connected to ",
               cfg.socketPath);

        // The heartbeat thread shares the connection with the main
        // loop's sends; recv stays on this thread only (net.hh).
        std::mutex sendMutex;
        std::atomic<bool> heartbeatStop{false};
        std::thread heartbeat([&] {
            Message beat;
            beat.type = MsgType::Heartbeat;
            beat.pid = static_cast<std::uint64_t>(::getpid());
            while (!heartbeatStop.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(cfg.heartbeatMs));
                std::lock_guard<std::mutex> lock(sendMutex);
                if (!conn.open())
                    return;
                (void)conn.send(beat); // a dead stream surfaces in recv
            }
        });
        const auto stopHeartbeat = [&] {
            heartbeatStop.store(true, std::memory_order_release);
            heartbeat.join();
        };

        bool wantLease = true;
        bool drained = false;
        while (!stopFlag.load(std::memory_order_acquire)) {
            if (wantLease) {
                Message request;
                request.type = MsgType::LeaseRequest;
                request.count = 1;
                std::lock_guard<std::mutex> lock(sendMutex);
                if (!conn.send(request))
                    break;
                wantLease = false;
            }
            Message msg;
            bool timedOut = false;
            if (!conn.recv(msg, 250, &timedOut)) {
                if (timedOut)
                    continue; // keep waiting; the lease request stands
                break;        // stream died: reconnect below
            }
            if (msg.type == MsgType::Drain) {
                drained = true;
                break;
            }
            if (msg.type != MsgType::LeaseGrant)
                continue; // e.g. a stray Stats; harmless
            for (const JobRef &lease : msg.jobs) {
                const bool traced =
                    obs::traceEnabled(obs::Category::Service);
                const std::uint64_t t0 =
                    traced ? obs::trace().nowNanos() : 0;
                const explore::JobResult outcome =
                    evaluateLease(evaluator, lease);
                if (traced) {
                    obs::trace().span(
                        obs::Category::Service, "worker:evaluate", t0,
                        obs::trace().nowNanos() - t0,
                        {{"ok", outcome.ok() ? 1.0 : 0.0}});
                }
                ++evaluated;
                obs::metrics().counter("svc.worker.evaluated").add(1);
                if (!outcome.ok()) {
                    obs::metrics()
                        .counter("svc.worker.failures")
                        .add(1);
                }
                Message report;
                report.type = MsgType::Result;
                report.leaseId = lease.leaseId;
                report.result = toWire(outcome);
                std::lock_guard<std::mutex> lock(sendMutex);
                if (!conn.send(report))
                    break;
            }
            if (!conn.open())
                break;
            wantLease = true;
            reconnectsLeft = cfg.reconnectAttempts; // healthy again
        }
        stopHeartbeat();
        {
            std::lock_guard<std::mutex> lock(sendMutex);
            conn.close();
        }
        if (drained || stopFlag.load(std::memory_order_acquire)) {
            inform("svc: worker pid=", ::getpid(), " drained after ",
                   evaluated, " evaluation(s)");
            return evaluated;
        }
        if (reconnectsLeft == 0) {
            throw ConnectionError(detail::concat(
                "fatal: lost the broker at '", cfg.socketPath,
                "' and exhausted ", cfg.reconnectAttempts,
                " reconnect attempts"));
        }
        --reconnectsLeft;
        obs::metrics().counter("svc.worker.reconnects").add(1);
        warn("svc: broker connection lost; reconnecting (",
             reconnectsLeft, " attempt(s) left)");
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg.reconnectBackoffMs));
    }
    return evaluated;
}

} // namespace eh::svc
