#include "svc/worker.hh"

#include <chrono>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "explore/tasks.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "svc/chaos.hh"
#include "svc/net.hh"
#include "util/hash.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace eh::svc {

unsigned
workerReconnectDelayMs(const WorkerConfig &cfg, unsigned attempt)
{
    const unsigned base = cfg.reconnectBackoffMs > 0
                              ? cfg.reconnectBackoffMs
                              : 1;
    // Cap the shift before shifting: 2^31 ms would overflow long
    // before the cap could clamp it.
    std::uint64_t expo = base;
    for (unsigned k = 0; k < attempt && expo < cfg.reconnectBackoffMaxMs;
         ++k) {
        expo <<= 1;
    }
    if (expo > cfg.reconnectBackoffMaxMs)
        expo = cfg.reconnectBackoffMaxMs;
    // Deterministic jitter: same (id, attempt) → same wait, but two
    // workers with different ids never share a schedule, which is the
    // whole point — no thundering herd on the respawned broker.
    const std::uint64_t jitter =
        hashMix(cfg.id * 0x9e3779b97f4a7c15ull ^ (attempt + 1)) % base;
    return static_cast<unsigned>(expo + jitter);
}

Worker::Worker(WorkerConfig config, Evaluator eval)
    : cfg(std::move(config)), evaluator(std::move(eval))
{
    if (!evaluator)
        evaluator = [](const explore::JobSpec &spec, Rng &rng) {
            return explore::evaluateJob(spec, rng);
        };
}

namespace {

/** Evaluate one leased cell, containing every evaluator exception. */
explore::JobResult
evaluateLease(const Worker::Evaluator &eval, const JobRef &lease)
{
    explore::JobSpec spec;
    if (!explore::JobSpec::fromCanonical(lease.canonical, spec)) {
        return explore::JobResult::failure(
            explore::JobStatus::Failed,
            "leased job spec failed the canonical round-trip check");
    }
    // The job's whole entropy budget: campaign seed + job hash, the
    // exact stream an in-process campaign worker would derive
    // (explore/campaign.cc) — results must not depend on which process
    // evaluates the cell.
    Rng rng = Rng(lease.seed).split(spec.hash());
    try {
        return eval(spec, rng);
    } catch (const std::exception &e) {
        return explore::JobResult::failure(explore::JobStatus::Failed,
                                           e.what());
    } catch (...) {
        return explore::JobResult::failure(
            explore::JobStatus::Failed,
            "evaluator threw a non-standard exception");
    }
}

} // namespace

std::uint64_t
Worker::run()
{
    std::uint64_t evaluated = 0;
    unsigned failedAttempts = 0;
    while (!stopFlag.load(std::memory_order_acquire)) {
        FrameConn conn;
        try {
            conn.connect(cfg.socketPath);
            conn.handshake(PeerRole::Worker); // HandshakeError is
                                              // permanent: propagate
        } catch (const HandshakeError &) {
            throw;
        } catch (const ConnectionError &) {
            // The broker is down or mid-restart: one failed attempt,
            // backed off below exactly like a connection lost
            // mid-stream, instead of dying on the spot.
            if (failedAttempts >= cfg.reconnectAttempts) {
                throw ConnectionError(detail::concat(
                    "fatal: lost the broker at '", cfg.socketPath,
                    "' and exhausted ", cfg.reconnectAttempts,
                    " reconnect attempts"));
            }
            obs::metrics().counter("svc.worker.reconnects").add(1);
            const unsigned delay =
                workerReconnectDelayMs(cfg, failedAttempts);
            warn("svc: broker unreachable; retrying in ", delay,
                 " ms (attempt ", failedAttempts + 1, "/",
                 cfg.reconnectAttempts, ")");
            ++failedAttempts;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
            continue;
        }
        obs::metrics().counter("svc.worker.connects").add(1);
        inform("svc: worker pid=", ::getpid(), " connected to ",
               cfg.socketPath);

        // The heartbeat thread shares the connection with the main
        // loop's sends; recv stays on this thread only (net.hh).
        std::mutex sendMutex;
        std::atomic<bool> heartbeatStop{false};
        std::thread heartbeat([&] {
            Message beat;
            beat.type = MsgType::Heartbeat;
            beat.pid = static_cast<std::uint64_t>(::getpid());
            while (!heartbeatStop.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(cfg.heartbeatMs));
                std::lock_guard<std::mutex> lock(sendMutex);
                if (!conn.open())
                    return;
                (void)conn.send(beat); // a dead stream surfaces in recv
            }
        });
        const auto stopHeartbeat = [&] {
            heartbeatStop.store(true, std::memory_order_release);
            heartbeat.join();
        };

        bool wantLease = true;
        bool drained = false;
        while (!stopFlag.load(std::memory_order_acquire)) {
            if (wantLease) {
                Message request;
                request.type = MsgType::LeaseRequest;
                request.count = 1;
                std::lock_guard<std::mutex> lock(sendMutex);
                if (!conn.send(request))
                    break;
                wantLease = false;
            }
            Message msg;
            bool timedOut = false;
            if (!conn.recv(msg, 250, &timedOut)) {
                if (timedOut)
                    continue; // keep waiting; the lease request stands
                break;        // stream died: reconnect below
            }
            if (msg.type == MsgType::Drain) {
                drained = true;
                break;
            }
            if (msg.type != MsgType::LeaseGrant)
                continue; // e.g. a stray Stats; harmless
            chaos::point(sites::workerLeaseRecv);
            for (const JobRef &lease : msg.jobs) {
                const bool traced =
                    obs::traceEnabled(obs::Category::Service);
                const std::uint64_t t0 =
                    traced ? obs::trace().nowNanos() : 0;
                const explore::JobResult outcome =
                    evaluateLease(evaluator, lease);
                if (traced) {
                    obs::trace().span(
                        obs::Category::Service, "worker:evaluate", t0,
                        obs::trace().nowNanos() - t0,
                        {{"ok", outcome.ok() ? 1.0 : 0.0}});
                }
                ++evaluated;
                obs::metrics().counter("svc.worker.evaluated").add(1);
                if (!outcome.ok()) {
                    obs::metrics()
                        .counter("svc.worker.failures")
                        .add(1);
                }
                Message report;
                report.type = MsgType::Result;
                report.leaseId = lease.leaseId;
                report.result = toWire(outcome);
                chaos::point(sites::workerResultSend);
                std::lock_guard<std::mutex> lock(sendMutex);
                if (!conn.send(report))
                    break;
            }
            if (!conn.open())
                break;
            wantLease = true;
            failedAttempts = 0; // healthy again: full budget restored
        }
        stopHeartbeat();
        {
            std::lock_guard<std::mutex> lock(sendMutex);
            conn.close();
        }
        if (drained || stopFlag.load(std::memory_order_acquire)) {
            inform("svc: worker pid=", ::getpid(), " drained after ",
                   evaluated, " evaluation(s)");
            return evaluated;
        }
        if (failedAttempts >= cfg.reconnectAttempts) {
            throw ConnectionError(detail::concat(
                "fatal: lost the broker at '", cfg.socketPath,
                "' and exhausted ", cfg.reconnectAttempts,
                " reconnect attempts"));
        }
        const unsigned delay =
            workerReconnectDelayMs(cfg, failedAttempts);
        obs::metrics().counter("svc.worker.reconnects").add(1);
        warn("svc: broker connection lost; reconnecting in ", delay,
             " ms (attempt ", failedAttempts + 1, "/",
             cfg.reconnectAttempts, ")");
        ++failedAttempts;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay));
    }
    return evaluated;
}

} // namespace eh::svc
