/**
 * @file
 * The exploration service's chaos-site registry (docs/SERVICE.md).
 * The generic fault-injection engine lives in util/chaos.hh — this
 * header names every site the service stack instruments, so the chaos
 * harness (scripts/chaos_harness.sh), `eh_explored chaos-sites`, and
 * the docs all agree on one list.
 *
 * Site naming: `<who>.<operation>[.<moment>]`, where `who` is the role
 * whose process hits the site. Arming `crash=broker.result.recv@3` in
 * a broker's environment kills that broker the third time it receives
 * a worker result; the same spec in a client's environment does
 * nothing, because client code never hits broker sites. The shared
 * `net.*` / `proto.*` sites fire in whichever process performs the
 * I/O, so they crash "whoever you armed" mid-frame.
 */

#ifndef EH_SVC_CHAOS_HH
#define EH_SVC_CHAOS_HH

#include <cstddef>

#include "util/chaos.hh"

namespace eh::svc::sites {

// Shared wire plumbing (fires in the process doing the I/O).
constexpr const char *netSend = "net.send";
constexpr const char *netRecv = "net.recv";
constexpr const char *protoFrame = "proto.frame.decoded";

// Client (eh_explore campaign --remote).
constexpr const char *clientSubmitSent = "client.submit.sent";
constexpr const char *clientOutcomeRecv = "client.outcome.recv";
constexpr const char *clientResume = "client.resume";

// Broker (eh_explored serve).
constexpr const char *brokerSubmitAck = "broker.submit.ack";
constexpr const char *brokerLeaseGrant = "broker.lease.grant";
constexpr const char *brokerResultRecv = "broker.result.recv";
constexpr const char *brokerResultPersisted =
    "broker.result.persisted";

// Worker (eh_explored worker).
constexpr const char *workerLeaseRecv = "worker.lease.recv";
constexpr const char *workerResultSend = "worker.result.send";

// Durable store append path (fires in whichever process appends —
// the broker in service mode, the campaign process in-process).
constexpr const char *storeAppend = "store.append";

} // namespace eh::svc::sites

namespace eh::svc {

/** Every registered site name, for `eh_explored chaos-sites`. */
const char *const *chaosSites(std::size_t &count);

} // namespace eh::svc

#endif // EH_SVC_CHAOS_HH
