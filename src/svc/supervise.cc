#include "svc/supervise.hh"

#include <csignal>

#include <sys/wait.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace eh::svc {

unsigned
supervisorRespawnDelayMs(const SupervisorConfig &cfg, unsigned respawns)
{
    const unsigned base = cfg.backoffBaseMs > 0 ? cfg.backoffBaseMs : 1;
    std::uint64_t delay = base;
    for (unsigned k = 0; k < respawns && delay < cfg.backoffCapMs; ++k)
        delay <<= 1;
    if (delay > cfg.backoffCapMs)
        delay = cfg.backoffCapMs;
    return static_cast<unsigned>(delay);
}

Supervisor::Supervisor(SupervisorConfig config) : cfg(config) {}

void
Supervisor::forkChild(Child &child)
{
    const pid_t pid = ::fork();
    if (pid < 0) {
        if (child.respawns == 0) {
            fatalf("fork failed while spawning '", child.name, "'");
        }
        // A respawn fork can fail transiently (EAGAIN under pressure);
        // leave it pending and let the next poll() retry after backoff.
        child.pendingRespawn = true;
        child.dueAt = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(
                          supervisorRespawnDelayMs(cfg, child.respawns));
        warn("svc: fork failed respawning '", child.name,
             "'; will retry");
        return;
    }
    if (pid == 0) {
        // The parent's handlers (drain-on-SIGTERM etc.) must not leak
        // into the child — it gets the defaults back and decides for
        // itself. SIGPIPE stays ignored: every child talks sockets.
        std::signal(SIGINT, SIG_DFL);
        std::signal(SIGTERM, SIG_DFL);
        std::signal(SIGCHLD, SIG_DFL);
        std::signal(SIGPIPE, SIG_IGN);
        int rc = exitInternalError;
        try {
            rc = child.main();
        } catch (const std::exception &e) {
            // Minimal reporting; the supervisor sees the exit status.
            warn("svc: child '", child.name, "' died on exception: ",
                 e.what());
        } catch (...) {
        }
        ::_exit(rc);
    }
    child.pid = pid;
    child.alive = true;
    child.pendingRespawn = false;
}

std::size_t
Supervisor::spawn(std::string name, ChildMain main, bool respawn)
{
    Child child;
    child.name = std::move(name);
    child.main = std::move(main);
    child.respawnable = respawn;
    kids.push_back(std::move(child));
    forkChild(kids.back());
    return kids.size() - 1;
}

std::size_t
Supervisor::poll()
{
    // Reap everything that died since the last poll.
    for (;;) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0)
            break;
        for (Child &child : kids) {
            if (!child.alive || child.pid != pid)
                continue;
            child.alive = false;
            child.lastStatus = status;
            const bool clean =
                WIFEXITED(status) && WEXITSTATUS(status) == 0;
            if (clean) {
                inform("svc: child '", child.name, "' (pid ", pid,
                       ") exited cleanly");
                break; // done, never respawned
            }
            obs::metrics().counter("svc.supervisor.deaths").add(1);
            if (!child.respawnable || drainMode) {
                warn("svc: child '", child.name, "' (pid ", pid,
                     ") died (status ", status, "); not respawning");
                break;
            }
            if (child.respawns >= cfg.respawnLimit) {
                child.gaveUp = true;
                warn("svc: child '", child.name, "' (pid ", pid,
                     ") died (status ", status, ") and exhausted its ",
                     cfg.respawnLimit, " respawn(s); giving up on it");
                break;
            }
            const unsigned delay =
                supervisorRespawnDelayMs(cfg, child.respawns);
            child.pendingRespawn = true;
            child.dueAt = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(delay);
            warn("svc: child '", child.name, "' (pid ", pid,
                 ") died (status ", status, "); respawn ",
                 child.respawns + 1, "/", cfg.respawnLimit, " in ",
                 delay, " ms");
            break;
        }
    }

    // Execute respawns whose backoff has elapsed.
    const auto now = std::chrono::steady_clock::now();
    std::size_t busy = 0;
    for (Child &child : kids) {
        if (child.pendingRespawn && !drainMode && now >= child.dueAt) {
            ++child.respawns;
            obs::metrics().counter("svc.supervisor.respawns").add(1);
            forkChild(child);
        }
        if (drainMode)
            child.pendingRespawn = false;
        if (child.alive || child.pendingRespawn)
            ++busy;
    }
    return busy;
}

void
Supervisor::signalAll(int signo)
{
    for (const Child &child : kids) {
        if (child.alive && child.pid > 0)
            ::kill(child.pid, signo);
    }
}

std::vector<Supervisor::ChildView>
Supervisor::children() const
{
    std::vector<ChildView> out;
    out.reserve(kids.size());
    for (const Child &child : kids) {
        ChildView view;
        view.name = child.name;
        view.pid = child.pid;
        view.alive = child.alive;
        view.respawns = child.respawns;
        view.gaveUp = child.gaveUp;
        view.lastStatus = child.lastStatus;
        out.push_back(std::move(view));
    }
    return out;
}

std::size_t
Supervisor::alive() const
{
    std::size_t n = 0;
    for (const Child &child : kids)
        n += child.alive ? 1 : 0;
    return n;
}

} // namespace eh::svc
