/**
 * @file
 * The exploration broker (docs/SERVICE.md): a long-running process that
 * owns the durable result store as its single writer and shards
 * campaign cells across worker processes. Clients submit whole batches;
 * the broker serves cached cells from the store, deduplicates cells
 * already in flight (so two concurrent campaigns share one execution),
 * leases the rest to workers by content hash, and streams every
 * outcome back in the client's submission indices.
 *
 * Failure model: a worker that dies (socket EOF, or silence past the
 * heartbeat timeout) has its leased cells re-dispatched to surviving
 * workers; a cell whose workers keep dying is recorded as Failed and
 * feeds the same quarantine strike ladder an in-process campaign uses.
 * Evaluator failures reported by workers consume the batch's
 * maxAttempts budget exactly like in-process retries (minus the
 * backoff pause — a re-dispatch already lands in a fresh process).
 *
 * Concurrency model: one thread, one poll() loop. The broker never
 * blocks on a peer — reads are non-blocking, writes buffer and drain
 * on POLLOUT — so a stalled client cannot wedge the service.
 * requestStop() is async-signal-safe (it writes one byte to a
 * self-pipe), so SIGTERM handlers may call it directly.
 */

#ifndef EH_SVC_BROKER_HH
#define EH_SVC_BROKER_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace eh::svc {

/** Broker tuning knobs. */
struct BrokerConfig
{
    /** Unix-domain socket path to listen on. */
    std::string socketPath;

    /** Store directory; empty = explore::defaultCacheDir(). */
    std::string cacheDir;

    /** fsync policy forwarded to the result store (see ResultCache). */
    int cacheFsync = -1;

    /**
     * A worker silent for longer than this is declared dead and its
     * leases re-dispatched. Socket EOF (a kill -9) is detected
     * immediately regardless; the timeout catches hangs.
     */
    unsigned heartbeatTimeoutMs = 5000;

    /**
     * Worker crashes one cell survives before the broker records it as
     * Failed — a budget separate from the batch's evaluator-attempt
     * budget, so a crashed worker does not eat a campaign's retries.
     */
    unsigned redispatchLimit = 3;
};

/** Event counters, exported by Ping→Stats and `eh_explored ping`. */
struct BrokerCounters
{
    std::uint64_t connects = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t batches = 0;
    std::uint64_t jobsSubmitted = 0;  ///< cells that needed execution
    std::uint64_t storeHits = 0;      ///< cells served from the store
    std::uint64_t inflightHits = 0;   ///< cells joined to a running twin
    std::uint64_t quarantineSkips = 0;
    std::uint64_t leases = 0;
    std::uint64_t results = 0;
    std::uint64_t evalFailures = 0;
    std::uint64_t retries = 0;        ///< evaluator-failure re-queues
    std::uint64_t redispatches = 0;   ///< crash-driven re-queues
    std::uint64_t workerCrashes = 0;
    std::uint64_t frameErrors = 0;
};

/** The exploration service broker. See the file comment. */
class Broker
{
  public:
    /**
     * Bind the listen socket (unlinking any stale socket file) and
     * resolve the store directory. Does not accept yet — run() does.
     * @throws ConnectionError when the socket cannot be bound.
     */
    explicit Broker(BrokerConfig config);
    ~Broker();
    Broker(const Broker &) = delete;
    Broker &operator=(const Broker &) = delete;

    /**
     * Serve until requestStop() or a completed drain. Returns the
     * number of job results brokered. All store I/O happens on this
     * thread — the single-writer invariant of docs/STORAGE.md holds
     * process-wide because only the broker process opens the store.
     */
    std::uint64_t run();

    /** Async-signal-safe stop request (self-pipe write). */
    void requestStop();

    /**
     * Async-signal-safe graceful-drain request (atomic flag + self-pipe
     * write): the broker finishes every pending lease, rejects new
     * batches, notifies workers, then run() returns — the same path an
     * admin `Drain` message takes. SIGTERM handlers call this first and
     * escalate to requestStop() on a second signal.
     */
    void requestDrain();

    /** Counters snapshot. Call from the run() thread or after run(). */
    const BrokerCounters &counters() const { return stats; }

    /** Counters + queue state as one JSON object (Ping reply). */
    std::string statsJson() const;

    /** Resolved listen-socket path. */
    const std::string &socketPath() const { return cfg.socketPath; }

    /** Opaque run()-thread state (defined in broker.cc). */
    struct Impl;

  private:
    BrokerConfig cfg;
    BrokerCounters stats;
    Impl *im = nullptr;
    int listenFd = -1;
    int wakeRead = -1;
    int wakeWrite = -1;
    std::atomic<bool> stopFlag{false};
    std::atomic<bool> drainFlag{false};
};

} // namespace eh::svc

#endif // EH_SVC_BROKER_HH
