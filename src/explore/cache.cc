#include "explore/cache.hh"

#include <cstdlib>
#include <filesystem>
#include <mutex>

#include "obs/trace.hh"
#include "util/hash.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace eh::explore {

namespace {

/** JSON string escaping for the subset the cache emits (raw bytes). */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    for (char c : raw) {
        const auto u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (u < 0x20) {
            static const char digits[] = "0123456789abcdef";
            out += "\\u00";
            out += digits[(u >> 4) & 0xf];
            out += digits[u & 0xf];
        } else {
            out += c;
        }
    }
    return out;
}

/** Cursor over one JSON line; fail-and-stop parsing. */
struct Cursor
{
    const std::string &text;
    std::size_t at = 0;

    bool
    literal(const char *expect)
    {
        const std::size_t n = std::char_traits<char>::length(expect);
        if (text.compare(at, n, expect) != 0)
            return false;
        at += n;
        return true;
    }

    bool
    quotedString(std::string &out)
    {
        out.clear();
        if (at >= text.size() || text[at] != '"')
            return false;
        ++at;
        while (at < text.size()) {
            const char c = text[at];
            if (c == '"') {
                ++at;
                return true;
            }
            if (c == '\\') {
                if (at + 1 >= text.size())
                    return false;
                const char esc = text[at + 1];
                if (esc == '"' || esc == '\\' || esc == '/') {
                    out += esc;
                    at += 2;
                } else if (esc == 'n') {
                    out += '\n';
                    at += 2;
                } else if (esc == 't') {
                    out += '\t';
                    at += 2;
                } else if (esc == 'r') {
                    out += '\r';
                    at += 2;
                } else if (esc == 'u') {
                    if (at + 6 > text.size())
                        return false;
                    unsigned v = 0;
                    for (std::size_t k = at + 2; k < at + 6; ++k) {
                        const char h = text[k];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    // The encoder only emits \u00XX (raw bytes).
                    if (v > 0xff)
                        return false;
                    out += static_cast<char>(v);
                    at += 6;
                } else {
                    return false;
                }
            } else {
                out += c;
                ++at;
            }
        }
        return false; // unterminated string (torn line)
    }
};

} // namespace

std::string
defaultCacheDir()
{
    static std::once_flag once;
    static std::string dir;
    std::call_once(once, [] {
        const char *env = std::getenv("EH_RESULTS_DIR");
        dir = (env ? std::string(env) : std::string("results")) +
              "/cache";
        std::filesystem::create_directories(dir);
    });
    return dir;
}

std::string
ResultCache::encodeRecord(const JobSpec &spec, std::uint64_t seed,
                          const JobResult &result)
{
    std::string line = "{\"v\":";
    line += std::to_string(cacheSchemaVersion);
    line += ",\"hash\":\"";
    line += hashHex(spec.hash());
    line += "\",\"seed\":\"";
    line += std::to_string(seed);
    line += "\",\"spec\":\"";
    line += jsonEscape(spec.canonical());
    line += "\",\"status\":\"";
    line += jobStatusName(result.status());
    line += "\",\"error\":\"";
    line += jsonEscape(result.error());
    line += "\",\"fields\":{";
    bool first = true;
    for (const auto &[k, v] : result.fields()) {
        if (!first)
            line += ',';
        first = false;
        line += '"';
        line += jsonEscape(k);
        line += "\":\"";
        line += jsonEscape(v);
        line += '"';
    }
    line += "}}";
    return line;
}

bool
ResultCache::decodeRecord(const std::string &line,
                          std::string &canonical_out,
                          std::uint64_t &hash_out,
                          std::uint64_t &seed_out, JobResult &result_out)
{
    Cursor c{line};
    const std::string prefix =
        "{\"v\":" + std::to_string(cacheSchemaVersion) + ",\"hash\":";
    if (!c.literal(prefix.c_str()))
        return false;
    std::string hex;
    if (!c.quotedString(hex) || !parseHashHex(hex, hash_out))
        return false;
    std::string seed_text;
    if (!c.literal(",\"seed\":") || !c.quotedString(seed_text))
        return false;
    if (seed_text.empty() ||
        seed_text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    seed_out = std::strtoull(seed_text.c_str(), nullptr, 10);
    if (!c.literal(",\"spec\":") || !c.quotedString(canonical_out))
        return false;
    std::string status_text, error_text;
    if (!c.literal(",\"status\":") || !c.quotedString(status_text))
        return false;
    JobStatus status = JobStatus::Ok;
    if (!parseJobStatus(status_text, status))
        return false;
    if (!c.literal(",\"error\":") || !c.quotedString(error_text))
        return false;
    if (!c.literal(",\"fields\":{"))
        return false;
    JobResult decoded;
    decoded.setStatus(status, error_text);
    if (c.at < line.size() && line[c.at] == '}') {
        ++c.at;
    } else {
        for (;;) {
            std::string key, value;
            if (!c.quotedString(key) || !c.literal(":") ||
                !c.quotedString(value)) {
                return false;
            }
            decoded.set(key, value);
            if (c.at < line.size() && line[c.at] == ',') {
                ++c.at;
                continue;
            }
            if (c.at < line.size() && line[c.at] == '}') {
                ++c.at;
                break;
            }
            return false; // torn mid-object
        }
    }
    if (!c.literal("}"))
        return false;
    if (c.at < line.size() && line[c.at] == '\r')
        ++c.at;
    if (c.at != line.size())
        return false; // trailing bytes — treat the line as corrupt
    result_out = decoded;
    return true;
}

int
ResultCache::recordSchemaVersion(const std::string &line)
{
    Cursor c{line};
    if (!c.literal("{\"v\":"))
        return -1;
    const std::size_t begin = c.at;
    while (c.at < line.size() && line[c.at] >= '0' && line[c.at] <= '9')
        ++c.at;
    if (c.at == begin || c.at >= line.size() || line[c.at] != ',')
        return -1;
    return static_cast<int>(
        std::strtol(line.c_str() + begin, nullptr, 10));
}

ResultCache::ResultCache() = default;

ResultCache::ResultCache(const std::string &dir, const std::string &name,
                         bool fresh)
{
    if (dir.empty())
        return;
    std::filesystem::create_directories(dir);
    filePath = dir + "/" + name + ".jsonl";
    loadExisting(filePath, fresh);
    appender.open(filePath, std::ios::app);
    if (!appender)
        fatalf("cannot open result cache '", filePath, "' for append");
}

void
ResultCache::loadExisting(const std::string &file, bool fresh)
{
    std::ifstream in(file);
    if (!in)
        return;
    std::string line;
    std::size_t lineno = 0;
    bool warned_stale = false;
    while (std::getline(in, line)) {
        ++lineno;
        std::string canonical;
        std::uint64_t hash = 0, seed = 0;
        JobResult result;
        if (!decodeRecord(line, canonical, hash, seed, result)) {
            // Distinguish a *stale layout* (a well-formed record of
            // another schema version, which must never be silently
            // dropped or half-decoded) from a torn/corrupt line (the
            // signature of a killed run, safe to skip).
            const int v = recordSchemaVersion(line);
            if (v >= 0 && v != cacheSchemaVersion) {
                if (!fresh) {
                    fatalf("result cache '", file, "' line ", lineno,
                           " uses record schema v", v,
                           " but this build reads v", cacheSchemaVersion,
                           "; delete the file or rerun with --fresh 1");
                }
                if (!warned_stale) {
                    warn("result cache '", file, "' holds schema-v", v,
                         " records (this build writes v",
                         cacheSchemaVersion, "); ignoring them");
                    warned_stale = true;
                }
            }
            continue; // torn/corrupt line (crashed run) — ignore
        }
        ++loaded;
        if (!fresh)
            entries.insert({hash, Entry{canonical, seed, result}});
    }
    if (fresh)
        loaded = 0;
}

bool
ResultCache::lookup(const JobSpec &spec, std::uint64_t seed,
                    JobResult &out) const
{
    const std::uint64_t h = spec.hash();
    const std::string canonical = spec.canonical();
    bool found = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto [lo, hi] = entries.equal_range(h);
        for (auto it = lo; it != hi; ++it) {
            if (it->second.seed == seed &&
                it->second.canonical == canonical) {
                out = it->second.result;
                found = true;
                break;
            }
        }
    }
    if (obs::traceEnabled(obs::Category::Cache)) {
        obs::trace().instant(obs::Category::Cache,
                             found ? "cache:lookup-hit"
                                   : "cache:lookup-miss");
    }
    return found;
}

void
ResultCache::store(const JobSpec &spec, std::uint64_t seed,
                   const JobResult &result)
{
    const std::uint64_t h = spec.hash();
    if (obs::traceEnabled(obs::Category::Cache))
        obs::trace().instant(obs::Category::Cache, "cache:store");
    std::lock_guard<std::mutex> lock(mutex);
    entries.insert({h, Entry{spec.canonical(), seed, result}});
    if (appender.is_open()) {
        appender << encodeRecord(spec, seed, result) << '\n';
        appender.flush();
    }
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

QuarantineLog::QuarantineLog() = default;

QuarantineLog::QuarantineLog(const std::string &dir,
                             const std::string &name,
                             unsigned strike_limit)
    : limit(strike_limit)
{
    if (dir.empty() || strike_limit == 0) {
        limit = 0;
        return;
    }
    std::filesystem::create_directories(dir);
    filePath = dir + "/" + name + ".quarantine";
    // One canonical spec per line; canonical strings are newline-free
    // by construction (the escaping in JobSpec::canonical()), so the
    // file needs no quoting of its own. A torn final line counts as a
    // strike for whatever prefix survived — harmless, since no real
    // cell has that canonical form.
    std::ifstream in(filePath);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty())
            ++counts[line];
    }
    appender.open(filePath, std::ios::app);
    if (!appender)
        fatalf("cannot open quarantine log '", filePath,
               "' for append");
}

unsigned
QuarantineLog::strikes(const JobSpec &spec) const
{
    if (limit == 0)
        return 0;
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = counts.find(spec.canonical());
    return it == counts.end() ? 0 : it->second;
}

bool
QuarantineLog::poisoned(const JobSpec &spec) const
{
    return limit != 0 && strikes(spec) >= limit;
}

void
QuarantineLog::recordFailure(const JobSpec &spec)
{
    if (limit == 0)
        return;
    const std::string canonical = spec.canonical();
    std::lock_guard<std::mutex> lock(mutex);
    ++counts[canonical];
    if (appender.is_open()) {
        appender << canonical << '\n';
        appender.flush();
    }
}

std::size_t
QuarantineLog::poisonedCount() const
{
    if (limit == 0)
        return 0;
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t n = 0;
    for (const auto &[canonical, strikes] : counts)
        n += strikes >= limit ? 1 : 0;
    return n;
}

} // namespace eh::explore
