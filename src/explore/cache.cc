#include "explore/cache.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/crc.hh"
#include "util/fsio.hh"
#include "util/hash.hh"
#include "util/log.hh"
#include "util/panic.hh"

namespace eh::explore {

namespace {

/** JSON string escaping for the subset the cache emits (raw bytes). */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    for (char c : raw) {
        const auto u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (u < 0x20) {
            static const char digits[] = "0123456789abcdef";
            out += "\\u00";
            out += digits[(u >> 4) & 0xf];
            out += digits[u & 0xf];
        } else {
            out += c;
        }
    }
    return out;
}

/** Cursor over one JSON line; fail-and-stop parsing. */
struct Cursor
{
    const std::string &text;
    std::size_t at = 0;

    bool
    literal(const char *expect)
    {
        const std::size_t n = std::char_traits<char>::length(expect);
        if (text.compare(at, n, expect) != 0)
            return false;
        at += n;
        return true;
    }

    bool
    quotedString(std::string &out)
    {
        out.clear();
        if (at >= text.size() || text[at] != '"')
            return false;
        ++at;
        while (at < text.size()) {
            const char c = text[at];
            if (c == '"') {
                ++at;
                return true;
            }
            if (c == '\\') {
                if (at + 1 >= text.size())
                    return false;
                const char esc = text[at + 1];
                if (esc == '"' || esc == '\\' || esc == '/') {
                    out += esc;
                    at += 2;
                } else if (esc == 'n') {
                    out += '\n';
                    at += 2;
                } else if (esc == 't') {
                    out += '\t';
                    at += 2;
                } else if (esc == 'r') {
                    out += '\r';
                    at += 2;
                } else if (esc == 'u') {
                    if (at + 6 > text.size())
                        return false;
                    unsigned v = 0;
                    for (std::size_t k = at + 2; k < at + 6; ++k) {
                        const char h = text[k];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    // The encoder only emits \u00XX (raw bytes).
                    if (v > 0xff)
                        return false;
                    out += static_cast<char>(v);
                    at += 6;
                } else {
                    return false;
                }
            } else {
                out += c;
                ++at;
            }
        }
        return false; // unterminated string (torn line)
    }
};

/** Parse a non-negative decimal env value; false on garbage. */
bool
parseEnvUint(const char *text, std::uint64_t &out)
{
    if (!text || !*text)
        return false;
    std::uint64_t v = 0;
    for (const char *p = text; *p; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(*p - '0');
    }
    out = v;
    return true;
}

} // namespace

std::string
defaultCacheDir()
{
    static std::once_flag once;
    static std::string dir;
    std::call_once(once, [] {
        const char *env = std::getenv("EH_RESULTS_DIR");
        dir = (env ? std::string(env) : std::string("results")) +
              "/cache";
        std::filesystem::create_directories(dir);
    });
    return dir;
}

std::string
ResultCache::encodeRecordRaw(const std::string &canonical,
                             std::uint64_t hash, std::uint64_t seed,
                             const JobResult &result)
{
    std::string line = "{\"v\":";
    line += std::to_string(cacheSchemaVersion);
    line += ",\"hash\":\"";
    line += hashHex(hash);
    line += "\",\"seed\":\"";
    line += std::to_string(seed);
    line += "\",\"spec\":\"";
    line += jsonEscape(canonical);
    line += "\",\"status\":\"";
    line += jobStatusName(result.status());
    line += "\",\"error\":\"";
    line += jsonEscape(result.error());
    line += "\",\"fields\":{";
    bool first = true;
    for (const auto &[k, v] : result.fields()) {
        if (!first)
            line += ',';
        first = false;
        line += '"';
        line += jsonEscape(k);
        line += "\":\"";
        line += jsonEscape(v);
        line += '"';
    }
    line += "}}";
    return line;
}

std::string
ResultCache::encodeRecord(const JobSpec &spec, std::uint64_t seed,
                          const JobResult &result)
{
    return encodeRecordRaw(spec.canonical(), spec.hash(), seed, result);
}

bool
ResultCache::decodeRecord(const std::string &line,
                          std::string &canonical_out,
                          std::uint64_t &hash_out,
                          std::uint64_t &seed_out, JobResult &result_out)
{
    Cursor c{line};
    const std::string prefix =
        "{\"v\":" + std::to_string(cacheSchemaVersion) + ",\"hash\":";
    if (!c.literal(prefix.c_str()))
        return false;
    std::string hex;
    if (!c.quotedString(hex) || !parseHashHex(hex, hash_out))
        return false;
    std::string seed_text;
    if (!c.literal(",\"seed\":") || !c.quotedString(seed_text))
        return false;
    if (seed_text.empty() ||
        seed_text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    seed_out = std::strtoull(seed_text.c_str(), nullptr, 10);
    if (!c.literal(",\"spec\":") || !c.quotedString(canonical_out))
        return false;
    std::string status_text, error_text;
    if (!c.literal(",\"status\":") || !c.quotedString(status_text))
        return false;
    JobStatus status = JobStatus::Ok;
    if (!parseJobStatus(status_text, status))
        return false;
    if (!c.literal(",\"error\":") || !c.quotedString(error_text))
        return false;
    if (!c.literal(",\"fields\":{"))
        return false;
    JobResult decoded;
    decoded.setStatus(status, error_text);
    if (c.at < line.size() && line[c.at] == '}') {
        ++c.at;
    } else {
        for (;;) {
            std::string key, value;
            if (!c.quotedString(key) || !c.literal(":") ||
                !c.quotedString(value)) {
                return false;
            }
            decoded.set(key, value);
            if (c.at < line.size() && line[c.at] == ',') {
                ++c.at;
                continue;
            }
            if (c.at < line.size() && line[c.at] == '}') {
                ++c.at;
                break;
            }
            return false; // torn mid-object
        }
    }
    if (!c.literal("}"))
        return false;
    if (c.at < line.size() && line[c.at] == '\r')
        ++c.at;
    if (c.at != line.size())
        return false; // trailing bytes — treat the line as corrupt
    result_out = decoded;
    return true;
}

int
ResultCache::recordSchemaVersion(const std::string &line)
{
    Cursor c{line};
    if (!c.literal("{\"v\":"))
        return -1;
    const std::size_t begin = c.at;
    while (c.at < line.size() && line[c.at] >= '0' && line[c.at] <= '9')
        ++c.at;
    if (c.at == begin || c.at >= line.size() || line[c.at] != ',')
        return -1;
    return static_cast<int>(
        std::strtol(line.c_str() + begin, nullptr, 10));
}

ResultCache::ResultCache()
    : segStore(std::make_unique<SegmentStore>())
{
}

ResultCache::ResultCache(const std::string &dir, const std::string &name,
                         bool fresh, int fsync_every)
{
    if (dir.empty()) {
        segStore = std::make_unique<SegmentStore>();
        return;
    }
    std::filesystem::create_directories(dir);
    filePath = dir + "/" + name + ".ehc";

    StoreConfig cfg;
    cfg.serveExisting = !fresh;
    std::uint64_t v = 0;
    if (fsync_every >= 0) {
        cfg.fsyncEvery = static_cast<unsigned>(fsync_every);
    } else if (const char *env = std::getenv("EH_CACHE_FSYNC")) {
        if (parseEnvUint(env, v))
            cfg.fsyncEvery = static_cast<unsigned>(v);
        else
            warn("ignoring unparsable EH_CACHE_FSYNC='", env, "'");
    }
    if (const char *env = std::getenv("EH_CACHE_SEGMENT_BYTES")) {
        if (parseEnvUint(env, v) && v > 0)
            cfg.maxSegmentBytes = static_cast<std::size_t>(v);
        else
            warn("ignoring unparsable EH_CACHE_SEGMENT_BYTES='", env,
                 "'");
    }
    segStore = std::make_unique<SegmentStore>(filePath, cfg);
    loaded = segStore->openStats().records;

    const std::string legacy = dir + "/" + name + ".jsonl";
    if (!fresh) {
        migrateLegacy(legacy);
    } else if (std::filesystem::exists(legacy)) {
        inform("result cache: legacy store '", legacy,
               "' left in place (fresh run); it migrates on the next "
               "non-fresh open");
    }
}

void
ResultCache::migrateLegacy(const std::string &legacy_path)
{
    std::ifstream in(legacy_path);
    if (!in)
        return;

    // Pass 1: decode every line before appending anything, so a stale
    // schema aborts with nothing half-migrated.
    std::vector<StoreRecord> records;
    std::string line;
    std::size_t lineno = 0, torn = 0;
    while (std::getline(in, line)) {
        ++lineno;
        StoreRecord rec;
        if (decodeRecord(line, rec.canonical, rec.hash, rec.seed,
                         rec.result)) {
            records.push_back(std::move(rec));
            continue;
        }
        // Distinguish a *stale layout* (a well-formed record of
        // another schema version, which must never be silently dropped
        // or half-decoded) from a torn/corrupt line (the signature of
        // a killed run, safe to skip).
        const int v = recordSchemaVersion(line);
        if (v >= 0 && v != cacheSchemaVersion) {
            fatalf("result cache '", legacy_path, "' line ", lineno,
                   " uses record schema v", v, " but this build reads v",
                   cacheSchemaVersion,
                   "; delete the file or rerun with --fresh 1");
        }
        ++torn; // torn/corrupt line (crashed run) — ignore
    }
    in.close();

    // Pass 2: append what the store does not already hold. A crash
    // mid-migration leaves the JSONL in place; the next open skips the
    // records that already landed, so migration is idempotent.
    for (const auto &rec : records) {
        JobResult existing;
        if (segStore->lookup(rec.canonical, rec.hash, rec.seed,
                             existing)) {
            continue;
        }
        segStore->append(rec);
        ++migrated;
    }
    segStore->flush(true);

    // The rename is the commit point: once the `.jsonl` is gone, opens
    // stop re-reading it. The data is preserved, not deleted.
    std::error_code ec;
    std::filesystem::rename(legacy_path, legacy_path + ".migrated", ec);
    if (ec) {
        warn("result cache: cannot rename migrated store '",
             legacy_path, "'; it will be re-checked on the next open");
    } else {
        fsyncDir(std::filesystem::path(legacy_path)
                     .parent_path()
                     .string());
    }

    if (torn > 0) {
        warn("result cache '", legacy_path, "': skipped ", torn,
             " torn/corrupt line", torn == 1 ? "" : "s",
             " during migration");
    }
    if (migrated > 0 || records.size() > 0) {
        inform("result cache: migrated ", migrated, " of ",
               records.size(), " legacy record",
               records.size() == 1 ? "" : "s", " from '", legacy_path,
               "' into '", filePath, "'");
        obs::metrics().counter("cache.migrated_records").add(migrated);
    }
    loaded += migrated;
}

bool
ResultCache::lookup(const JobSpec &spec, std::uint64_t seed,
                    JobResult &out) const
{
    const bool found =
        segStore->lookup(spec.canonical(), spec.hash(), seed, out);
    if (obs::traceEnabled(obs::Category::Cache)) {
        obs::trace().instant(obs::Category::Cache,
                             found ? "cache:lookup-hit"
                                   : "cache:lookup-miss");
    }
    return found;
}

void
ResultCache::store(const JobSpec &spec, std::uint64_t seed,
                   const JobResult &result)
{
    if (obs::traceEnabled(obs::Category::Cache))
        obs::trace().instant(obs::Category::Cache, "cache:store");
    StoreRecord rec;
    rec.canonical = spec.canonical();
    rec.hash = spec.hash();
    rec.seed = seed;
    rec.result = result;
    segStore->append(rec);
}

std::size_t
ResultCache::size() const
{
    return segStore->servedRecords();
}

namespace {

/** 8-hex-digit CRC-32 of a canonical spec (quarantine line framing). */
std::string
quarantineCrc(const std::string &canonical)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x",
                  crc32(canonical.data(), canonical.size()));
    return buf;
}

} // namespace

QuarantineLog::QuarantineLog() = default;

QuarantineLog::QuarantineLog(const std::string &dir,
                             const std::string &name,
                             unsigned strike_limit)
    : limit(strike_limit)
{
    if (dir.empty() || strike_limit == 0) {
        limit = 0;
        return;
    }
    std::filesystem::create_directories(dir);
    filePath = dir + "/" + name + ".quarantine";
    // One cell per line. This build writes CRC-framed lines
    // (`q2 <crc32hex> <canonical>`) so a torn tail or flipped bits are
    // *detected* and skipped instead of miscounting strikes against a
    // phantom cell; bare canonical lines from older builds still count.
    std::ifstream in(filePath);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line.compare(0, 2, "q2") == 0 &&
            (line.size() == 2 || line[2] == ' ')) {
            // Framed line: "q2 " + 8 hex digits + " " + canonical.
            if (line.size() > 12 && line[11] == ' ') {
                const std::string canonical = line.substr(12);
                if (!canonical.empty() &&
                    line.compare(3, 8, quarantineCrc(canonical)) == 0) {
                    ++counts[canonical];
                    continue;
                }
            }
            ++skipped; // torn or corrupt framed line
            continue;
        }
        ++counts[line]; // legacy unframed line
    }
    if (skipped > 0) {
        warn("quarantine log '", filePath, "': skipped ", skipped,
             " torn/corrupt line", skipped == 1 ? "" : "s",
             " (not counted as strikes)");
    }
    appender.open(filePath, std::ios::app);
    if (!appender)
        fatalf("cannot open quarantine log '", filePath,
               "' for append");
}

unsigned
QuarantineLog::strikes(const JobSpec &spec) const
{
    return strikesCanonical(spec.canonical());
}

bool
QuarantineLog::poisoned(const JobSpec &spec) const
{
    return poisonedCanonical(spec.canonical());
}

void
QuarantineLog::recordFailure(const JobSpec &spec)
{
    recordFailureCanonical(spec.canonical());
}

unsigned
QuarantineLog::strikesCanonical(const std::string &canonical) const
{
    if (limit == 0)
        return 0;
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = counts.find(canonical);
    return it == counts.end() ? 0 : it->second;
}

bool
QuarantineLog::poisonedCanonical(const std::string &canonical) const
{
    return limit != 0 && strikesCanonical(canonical) >= limit;
}

void
QuarantineLog::recordFailureCanonical(const std::string &canonical)
{
    if (limit == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex);
    ++counts[canonical];
    if (appender.is_open()) {
        appender << "q2 " << quarantineCrc(canonical) << ' '
                 << canonical << '\n';
        appender.flush();
    }
}

std::size_t
QuarantineLog::poisonedCount() const
{
    if (limit == 0)
        return 0;
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t n = 0;
    for (const auto &[canonical, strikes] : counts)
        n += strikes >= limit ? 1 : 0;
    return n;
}

} // namespace eh::explore
