#include "explore/campaign.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <sstream>

#ifdef _WIN32
#define EH_STDERR_IS_TTY() false
#else
#include <unistd.h>
#define EH_STDERR_IS_TTY() (isatty(2) != 0)
#endif

#include "util/table.hh"

namespace eh::explore {

double
CampaignReport::utilization() const
{
    if (elapsedSeconds <= 0.0 || workers.empty())
        return 0.0;
    const double capacity =
        elapsedSeconds * static_cast<double>(workers.size());
    return capacity > 0.0 ? busySeconds / capacity : 0.0;
}

std::string
CampaignReport::summary() const
{
    std::ostringstream oss;
    oss << total << " jobs: " << executed << " executed, " << cacheHits
        << " cached, " << Table::num(elapsedSeconds, 2) << " s on "
        << workers.size() << " worker"
        << (workers.size() == 1 ? "" : "s") << " ("
        << Table::pct(utilization()) << " busy";
    std::uint64_t steals = 0;
    for (const auto &w : workers)
        steals += w.steals;
    oss << ", " << steals << " steal" << (steals == 1 ? "" : "s") << ")";
    if (!cachePath.empty())
        oss << "; cache: " << cachePath;
    return oss.str();
}

Campaign::Campaign(CampaignConfig config) : cfg(std::move(config)) {}

void
Campaign::add(JobSpec spec)
{
    specs.push_back(std::move(spec));
}

std::vector<JobResult>
Campaign::run(const Evaluator &eval)
{
    using Clock = std::chrono::steady_clock;

    ResultCache cache =
        cfg.cache ? ResultCache(cfg.cacheDir.empty() ? defaultCacheDir()
                                                     : cfg.cacheDir,
                                cfg.name, cfg.fresh)
                  : ResultCache();

    std::vector<JobResult> results(specs.size());
    std::atomic<std::size_t> done{0}, executed{0}, hits{0};
    std::atomic<std::uint64_t> busyNanos{0};
    std::mutex progressMutex;
    Clock::time_point lastPrint = Clock::now();
    const bool liveProgress = cfg.progress && EH_STDERR_IS_TTY();

    const Rng master(cfg.seed);
    const auto start = Clock::now();

    ThreadPool pool(cfg.jobs);
    pool.forEach(specs.size(), [&](std::size_t i) {
        const JobSpec &spec = specs[i];
        JobResult result;
        if (cache.lookup(spec, cfg.seed, result)) {
            hits.fetch_add(1, std::memory_order_relaxed);
        } else {
            // The job's whole entropy budget: campaign seed + job hash.
            // Independent of worker, steal pattern, and sibling jobs.
            Rng rng = master.split(spec.hash());
            const auto t0 = Clock::now();
            result = eval(spec, rng);
            busyNanos.fetch_add(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - t0)
                        .count()),
                std::memory_order_relaxed);
            cache.store(spec, cfg.seed, result);
            executed.fetch_add(1, std::memory_order_relaxed);
        }
        results[i] = std::move(result);
        const std::size_t finished =
            done.fetch_add(1, std::memory_order_relaxed) + 1;

        if (!liveProgress)
            return;
        std::lock_guard<std::mutex> lock(progressMutex);
        const auto now = Clock::now();
        const bool last = finished == specs.size();
        if (!last && now - lastPrint < std::chrono::milliseconds(250))
            return;
        lastPrint = now;
        const double elapsed =
            std::chrono::duration<double>(now - start).count();
        const double rate =
            elapsed > 0.0 ? static_cast<double>(finished) / elapsed : 0.0;
        const double eta =
            rate > 0.0
                ? static_cast<double>(specs.size() - finished) / rate
                : 0.0;
        std::fprintf(stderr,
                     "\r[%s] %zu/%zu jobs (%zu cached) eta %.1fs   %s",
                     cfg.name.c_str(), finished, specs.size(),
                     hits.load(std::memory_order_relaxed), eta,
                     last ? "\n" : "");
        std::fflush(stderr);
    });

    lastReport = CampaignReport{};
    lastReport.total = specs.size();
    lastReport.executed = executed.load();
    lastReport.cacheHits = hits.load();
    lastReport.elapsedSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    lastReport.busySeconds =
        static_cast<double>(busyNanos.load()) * 1e-9;
    lastReport.workers = pool.workerStats();
    lastReport.cachePath = cache.path();
    return results;
}

} // namespace eh::explore
