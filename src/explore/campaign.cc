#include "explore/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#ifdef _WIN32
#define EH_STDERR_IS_TTY() false
#else
#include <unistd.h>
#define EH_STDERR_IS_TTY() (isatty(2) != 0)
#endif

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/log.hh"
#include "util/panic.hh"
#include "util/table.hh"

namespace eh::explore {

double
CampaignReport::utilization() const
{
    if (elapsedSeconds <= 0.0 || workers.empty())
        return 0.0;
    const double capacity =
        elapsedSeconds * static_cast<double>(workers.size());
    return capacity > 0.0 ? busySeconds / capacity : 0.0;
}

std::string
CampaignReport::summary() const
{
    std::ostringstream oss;
    oss << total << " jobs: " << executed << " executed, " << cacheHits
        << " cached, ";
    if (failures() > 0) {
        oss << failed << " failed, " << timedOut << " timed out, "
            << quarantined << " quarantined, ";
    }
    oss << Table::num(elapsedSeconds, 2) << " s on "
        << workers.size() << " worker"
        << (workers.size() == 1 ? "" : "s") << " ("
        << Table::pct(utilization()) << " busy";
    std::uint64_t steals = 0;
    for (const auto &w : workers)
        steals += w.steals;
    oss << ", " << steals << " steal" << (steals == 1 ? "" : "s") << ")";
    if (!cachePath.empty())
        oss << "; cache: " << cachePath;
    return oss.str();
}

Campaign::Campaign(CampaignConfig config) : cfg(std::move(config)) {}

void
Campaign::add(JobSpec spec)
{
    specs.push_back(std::move(spec));
}

namespace {

/** Lifecycle of one grid cell, shared between worker and watchdog. */
enum CellPhase : int {
    CellIdle = 0,    ///< not yet picked up (or served from cache)
    CellRunning = 1, ///< an evaluator attempt is in flight
    CellDone = 2,    ///< the worker claimed the cell's outcome
    CellTimedOut = 3 ///< the watchdog claimed the cell's outcome
};

/**
 * Worker/watchdog rendezvous for one cell. The phase is claimed by
 * compare-exchange (Running→Done by the worker, Running→TimedOut by the
 * watchdog), so exactly one side ever writes the cell's result.
 */
struct CellState
{
    std::atomic<int> phase{CellIdle};
    std::atomic<std::int64_t> startNanos{0}; ///< steady-clock epoch ns
};

std::int64_t
nanosSinceEpoch(std::chrono::steady_clock::time_point t)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
}

} // namespace

std::vector<JobResult>
Campaign::run(const Evaluator &eval)
{
    using Clock = std::chrono::steady_clock;

    const std::string dir =
        cfg.cache
            ? (cfg.cacheDir.empty() ? defaultCacheDir() : cfg.cacheDir)
            : std::string();
    ResultCache cache = cfg.cache
                            ? ResultCache(dir, cfg.name, cfg.fresh,
                                          cfg.cacheFsync)
                            : ResultCache();
    QuarantineLog quarantine =
        cfg.cache ? QuarantineLog(dir, cfg.name, cfg.quarantineAfter)
                  : QuarantineLog();

    std::vector<JobResult> results(specs.size());
    std::vector<double> cellSeconds(specs.size(), 0.0);
    std::atomic<std::size_t> done{0}, executed{0}, hits{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> busyNanos{0};
    std::mutex progressMutex;
    Clock::time_point lastPrint = Clock::now();
    // Progress rendering goes through eh::statusLine(), so --quiet (log
    // level above Info) silences it along with every other status line.
    const bool liveProgress = cfg.progress && EH_STDERR_IS_TTY() &&
                              logLevel() <= LogLevel::Info;
    const unsigned attempts = cfg.maxAttempts > 0 ? cfg.maxAttempts : 1;

    const Rng master(cfg.seed);
    const auto start = Clock::now();

    // Deadline watchdog: scans the cell states and classifies any
    // overdue Running cell as Timeout, writing its record immediately so
    // the rest of the batch drains and a crash right after still leaves
    // the verdict on disk. The straggling worker loses the phase
    // compare-exchange and discards its eventual result.
    std::unique_ptr<CellState[]> cells(new CellState[specs.size()]);
    std::atomic<bool> watchdogStop{false};
    std::thread watchdog;
    if (cfg.jobTimeoutSeconds > 0.0 && !specs.empty()) {
        watchdog = std::thread([&] {
            const auto deadline = std::chrono::nanoseconds(
                static_cast<std::int64_t>(cfg.jobTimeoutSeconds * 1e9));
            while (!watchdogStop.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                const std::int64_t now =
                    nanosSinceEpoch(Clock::now());
                for (std::size_t i = 0; i < specs.size(); ++i) {
                    CellState &cell = cells[i];
                    if (cell.phase.load(std::memory_order_acquire) !=
                        CellRunning) {
                        continue;
                    }
                    const std::int64_t began =
                        cell.startNanos.load(std::memory_order_relaxed);
                    if (now - began < deadline.count())
                        continue;
                    int expected = CellRunning;
                    if (!cell.phase.compare_exchange_strong(
                            expected, CellTimedOut,
                            std::memory_order_acq_rel)) {
                        continue; // worker finished just in time
                    }
                    if (obs::traceEnabled(obs::Category::Campaign)) {
                        obs::trace().instant(
                            obs::Category::Campaign, "job-timeout",
                            {{"index", static_cast<double>(i)}});
                    }
                    JobResult verdict = JobResult::failure(
                        JobStatus::Timeout,
                        detail::concat("exceeded the ",
                                       cfg.jobTimeoutSeconds,
                                       " s wall-clock deadline"));
                    cache.store(specs[i], cfg.seed, verdict);
                    quarantine.recordFailure(specs[i]);
                    results[i] = std::move(verdict);
                }
            }
        });
    }

    ThreadPool pool(cfg.jobs);
    pool.forEach(specs.size(), [&](std::size_t i) {
        const JobSpec &spec = specs[i];
        JobResult result;
        JobResult cached;
        const bool hit = cache.lookup(spec, cfg.seed, cached);
        if (hit && (cached.ok() || !cfg.retryFailed)) {
            // Failure records are results too: resume must not grind
            // through known-bad cells again unless explicitly asked.
            result = std::move(cached);
            hits.fetch_add(1, std::memory_order_relaxed);
            if (obs::traceEnabled(obs::Category::Cache)) {
                obs::trace().instant(
                    obs::Category::Cache, "cache:hit",
                    {{"index", static_cast<double>(i)}});
            }
        } else if (!cfg.retryFailed && quarantine.poisoned(spec)) {
            result = JobResult::failure(
                JobStatus::Quarantined,
                detail::concat("skipped after ", quarantine.strikes(spec),
                               " recorded failures; rerun with "
                               "--retry-failed to attempt it again"));
            if (!hit)
                cache.store(spec, cfg.seed, result);
            if (obs::traceEnabled(obs::Category::Campaign)) {
                obs::trace().instant(
                    obs::Category::Campaign, "quarantine-skip",
                    {{"index", static_cast<double>(i)}});
            }
        } else {
            CellState &cell = cells[i];
            // Per-kind span name, interned once per executed job; the
            // span itself is recorded after the attempt loop so retries
            // stay inside it.
            const bool traceJobs =
                obs::traceEnabled(obs::Category::Campaign);
            const char *jobName =
                traceJobs ? obs::trace().intern("job:" + spec.kind())
                          : nullptr;
            const std::uint64_t traceStart =
                traceJobs ? obs::trace().nowNanos() : 0;
            const auto t0 = Clock::now();
            cell.startNanos.store(nanosSinceEpoch(t0),
                                  std::memory_order_relaxed);
            cell.phase.store(CellRunning, std::memory_order_release);
            bool ok = false;
            std::string error;
            unsigned attemptsUsed = 0;
            for (unsigned attempt = 0; attempt < attempts && !ok;
                 ++attempt) {
                ++attemptsUsed;
                if (attempt > 0) {
                    if (obs::traceEnabled(obs::Category::Campaign)) {
                        obs::trace().instant(
                            obs::Category::Campaign, "retry",
                            {{"index", static_cast<double>(i)},
                             {"attempt", static_cast<double>(attempt)}});
                    }
                    const unsigned shift =
                        attempt - 1 < 6 ? attempt - 1 : 6;
                    const unsigned pause = std::min(
                        cfg.retryBackoffMs << shift, 1000u);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(pause));
                }
                if (cell.phase.load(std::memory_order_acquire) ==
                    CellTimedOut) {
                    break; // the watchdog already ruled on this cell
                }
                // The job's whole entropy budget: campaign seed + job
                // hash. Recreated per attempt so retries replay the
                // exact same stream — independent of worker, steal
                // pattern, and sibling jobs.
                Rng rng = master.split(spec.hash());
                try {
                    result = eval(spec, rng);
                    ok = true;
                } catch (const std::exception &e) {
                    error = e.what();
                } catch (...) {
                    error = "evaluator threw a non-standard exception";
                }
            }
            const double seconds =
                std::chrono::duration<double>(Clock::now() - t0)
                    .count();
            busyNanos.fetch_add(
                static_cast<std::uint64_t>(seconds * 1e9),
                std::memory_order_relaxed);
            executed.fetch_add(1, std::memory_order_relaxed);
            if (attemptsUsed > 1)
                retries.fetch_add(attemptsUsed - 1,
                                  std::memory_order_relaxed);
            if (traceJobs) {
                obs::trace().span(
                    obs::Category::Campaign, jobName, traceStart,
                    obs::trace().nowNanos() - traceStart,
                    {{"index", static_cast<double>(i)},
                     {"attempts", static_cast<double>(attemptsUsed)},
                     {"ok", ok ? 1.0 : 0.0}});
            }
            int expected = CellRunning;
            if (!cell.phase.compare_exchange_strong(
                    expected, CellDone, std::memory_order_acq_rel)) {
                // Timed out: the watchdog wrote the cell's record while
                // we were still grinding. Drop our late result.
                if (obs::traceEnabled(obs::Category::Campaign)) {
                    obs::trace().instant(
                        obs::Category::Campaign, "late-result-dropped",
                        {{"index", static_cast<double>(i)}});
                }
                done.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            cellSeconds[i] = seconds;
            if (!ok) {
                result = JobResult::failure(JobStatus::Failed, error);
                quarantine.recordFailure(spec);
            }
            cache.store(spec, cfg.seed, result);
        }
        results[i] = std::move(result);
        const std::size_t finished =
            done.fetch_add(1, std::memory_order_relaxed) + 1;

        if (!liveProgress)
            return;
        std::lock_guard<std::mutex> lock(progressMutex);
        const auto now = Clock::now();
        const bool last = finished == specs.size();
        if (!last && now - lastPrint < std::chrono::milliseconds(250))
            return;
        lastPrint = now;
        const double elapsed =
            std::chrono::duration<double>(now - start).count();
        const double rate =
            elapsed > 0.0 ? static_cast<double>(finished) / elapsed : 0.0;
        const double eta =
            rate > 0.0
                ? static_cast<double>(specs.size() - finished) / rate
                : 0.0;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "[%s] %zu/%zu jobs (%zu cached) eta %.1fs",
                      cfg.name.c_str(), finished, specs.size(),
                      hits.load(std::memory_order_relaxed), eta);
        statusLine(line, last);
    });

    if (watchdog.joinable()) {
        watchdogStop.store(true, std::memory_order_release);
        watchdog.join();
    }

    lastReport = CampaignReport{};
    lastReport.total = specs.size();
    lastReport.executed = executed.load();
    lastReport.cacheHits = hits.load();
    lastReport.elapsedSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    lastReport.busySeconds =
        static_cast<double>(busyNanos.load()) * 1e-9;
    lastReport.workers = pool.workerStats();
    lastReport.cachePath = cache.path();
    lastReport.quarantinePath = quarantine.path();
    for (const JobResult &r : results) {
        switch (r.status()) {
          case JobStatus::Ok:
            break;
          case JobStatus::Failed:
            ++lastReport.failed;
            break;
          case JobStatus::Timeout:
            ++lastReport.timedOut;
            break;
          case JobStatus::Quarantined:
            ++lastReport.quarantined;
            break;
        }
    }
    for (std::size_t i = 0; i < cellSeconds.size(); ++i) {
        if (cellSeconds[i] > 0.0)
            lastReport.slowest.push_back({i, cellSeconds[i]});
    }
    std::sort(lastReport.slowest.begin(), lastReport.slowest.end(),
              [](const CampaignReport::SlowCell &a,
                 const CampaignReport::SlowCell &b) {
                  return a.seconds > b.seconds;
              });
    if (lastReport.slowest.size() > 5)
        lastReport.slowest.resize(5);

    // Metrics (docs/OBSERVABILITY.md). Counters and histograms carry
    // only scheduling-independent quantities, so the deterministic
    // snapshot is byte-identical at any --jobs value; wall times and
    // steal counts go into gauges, which that snapshot omits. The
    // histogram fills from the submission-ordered result vector, not
    // from the workers, for the same reason.
    auto &reg = obs::metrics();
    reg.counter("campaign.jobs").add(lastReport.total);
    reg.counter("campaign.executed").add(lastReport.executed);
    reg.counter("campaign.cache_hits").add(lastReport.cacheHits);
    reg.counter("campaign.failed").add(lastReport.failed);
    reg.counter("campaign.timed_out").add(lastReport.timedOut);
    reg.counter("campaign.quarantined").add(lastReport.quarantined);
    reg.counter("campaign.retries").add(retries.load());
    auto &resultBytes = reg.histogram("campaign.result_bytes");
    for (const JobResult &r : results) {
        std::uint64_t bytes = 0;
        for (const auto &[key, value] : r.fields())
            bytes += key.size() + value.size();
        resultBytes.add(bytes);
    }
    std::uint64_t steals = 0;
    for (const auto &w : lastReport.workers)
        steals += w.steals;
    reg.gauge("campaign.elapsed_seconds").add(lastReport.elapsedSeconds);
    reg.gauge("campaign.busy_seconds").add(lastReport.busySeconds);
    reg.gauge("pool.steals").add(static_cast<double>(steals));
    return results;
}

} // namespace eh::explore
