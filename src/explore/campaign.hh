/**
 * @file
 * Campaign = an ordered grid of JobSpecs + the machinery to evaluate it:
 * work-stealing parallel execution, content-addressed result caching,
 * deterministic per-job RNG sub-streams, and progress/ETA reporting.
 *
 * Results come back in submission order regardless of worker count or
 * steal pattern, and each job's randomness is derived from the campaign
 * seed and the job's content hash alone — so a campaign's output is
 * bit-identical at --jobs 1 and --jobs 16, and a re-run after a crash
 * or a parameter tweak executes only the cells not already on disk.
 */

#ifndef EH_EXPLORE_CAMPAIGN_HH
#define EH_EXPLORE_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explore/cache.hh"
#include "explore/job.hh"
#include "explore/threadpool.hh"
#include "util/random.hh"

namespace eh::explore {

/** Knobs shared by every campaign run. */
struct CampaignConfig
{
    /** Cache-store name and progress tag. */
    std::string name = "campaign";

    /** Worker threads; 0 = --jobs/EH_JOBS/hardware default. */
    unsigned jobs = 0;

    /** Master seed; every job draws from split(seed, jobHash). */
    std::uint64_t seed = 1;

    /** Cache directory; empty = defaultCacheDir(). */
    std::string cacheDir;

    /** Disable the on-disk store entirely (memory-only run). */
    bool cache = true;

    /** Ignore existing on-disk records (still appends new ones). */
    bool fresh = false;

    /** Emit progress/ETA lines to stderr while running. */
    bool progress = true;
};

/** What one run() did, for reporting and assertions. */
struct CampaignReport
{
    std::size_t total = 0;     ///< jobs submitted
    std::size_t executed = 0;  ///< jobs actually evaluated
    std::size_t cacheHits = 0; ///< jobs served from the result cache
    double elapsedSeconds = 0.0;
    double busySeconds = 0.0;  ///< summed evaluator wall time
    std::vector<WorkerStats> workers;
    std::string cachePath;     ///< backing store ("" when disabled)

    /** Mean fraction of worker wall-time spent inside evaluators. */
    double utilization() const;

    /** One-line human-readable summary. */
    std::string summary() const;
};

/**
 * Evaluate one job. The Rng is the job's private sub-stream — the only
 * sanctioned randomness source, so results cannot depend on scheduling.
 */
using Evaluator = std::function<JobResult(const JobSpec &, Rng &rng)>;

/** An ordered grid of jobs plus the engine to evaluate it. */
class Campaign
{
  public:
    explicit Campaign(CampaignConfig config = {});

    /** Append one job; results preserve this submission order. */
    void add(JobSpec spec);

    /** Jobs submitted so far. */
    std::size_t size() const { return specs.size(); }

    /** Submitted specs, in order. */
    const std::vector<JobSpec> &jobs() const { return specs; }

    /**
     * Evaluate every job (cache first, then @p eval on a worker) and
     * return the results in submission order. May be called once per
     * Campaign. Exceptions from evaluators propagate after the grid
     * drains.
     */
    std::vector<JobResult> run(const Evaluator &eval);

    /** Statistics of the completed run(). */
    const CampaignReport &report() const { return lastReport; }

  private:
    CampaignConfig cfg;
    std::vector<JobSpec> specs;
    CampaignReport lastReport;
};

} // namespace eh::explore

#endif // EH_EXPLORE_CAMPAIGN_HH
