/**
 * @file
 * Campaign = an ordered grid of JobSpecs + the machinery to evaluate it:
 * work-stealing parallel execution, content-addressed result caching,
 * deterministic per-job RNG sub-streams, and progress/ETA reporting.
 *
 * Results come back in submission order regardless of worker count or
 * steal pattern, and each job's randomness is derived from the campaign
 * seed and the job's content hash alone — so a campaign's output is
 * bit-identical at --jobs 1 and --jobs 16, and a re-run after a crash
 * or a parameter tweak executes only the cells not already on disk.
 */

#ifndef EH_EXPLORE_CAMPAIGN_HH
#define EH_EXPLORE_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explore/cache.hh"
#include "explore/job.hh"
#include "explore/threadpool.hh"
#include "util/random.hh"

namespace eh::explore {

/** Knobs shared by every campaign run. */
struct CampaignConfig
{
    /** Cache-store name and progress tag. */
    std::string name = "campaign";

    /** Worker threads; 0 = --jobs/EH_JOBS/hardware default. */
    unsigned jobs = 0;

    /** Master seed; every job draws from split(seed, jobHash). */
    std::uint64_t seed = 1;

    /** Cache directory; empty = defaultCacheDir(). */
    std::string cacheDir;

    /** Disable the on-disk store entirely (memory-only run). */
    bool cache = true;

    /** Ignore existing on-disk records (still appends new ones). */
    bool fresh = false;

    /**
     * fsync the store's active segment every N appends; 0 defers fsync
     * to segment seal and close; -1 reads $EH_CACHE_FSYNC. Appends go
     * through write(2) either way, so acknowledged records survive a
     * process kill; this bounds the *power-loss* window.
     */
    int cacheFsync = -1;

    /** Emit progress/ETA lines to stderr while running. */
    bool progress = true;

    // --- Fault containment (docs/ROBUSTNESS.md) ---------------------

    /**
     * Total evaluator attempts per cell (floored at 1). A throwing
     * evaluator is retried with capped exponential backoff; only after
     * the last attempt is the cell recorded as Failed.
     */
    unsigned maxAttempts = 2;

    /**
     * Backoff before the first retry, doubled per further retry and
     * capped at 1000 ms. Transient faults (filesystem hiccups, memory
     * pressure) get breathing room; deterministic faults just fail
     * again quickly.
     */
    unsigned retryBackoffMs = 25;

    /**
     * Per-cell wall-clock deadline in seconds; 0 disables the
     * watchdog. An overdue cell is classified Timeout immediately (its
     * record is written and the batch keeps draining); the straggling
     * evaluation is discarded when it eventually returns.
     */
    double jobTimeoutSeconds = 0.0;

    /**
     * Re-execute cells whose cached record is Failed/Timeout/
     * Quarantined, and ignore the quarantine list. Without this, resume
     * serves failure records from the cache like any other result.
     */
    bool retryFailed = false;

    /**
     * Final (post-retry) failures a cell accumulates — across campaign
     * runs, via the persisted quarantine file — before it is skipped as
     * known poison. 0 disables quarantine entirely.
     */
    unsigned quarantineAfter = 3;

    // --- Service mode (docs/SERVICE.md) -----------------------------

    /**
     * When non-empty, the campaign runs through the exploration broker
     * listening on this Unix-socket path (svc::runCampaign) instead of
     * in-process; the broker owns the store and the worker processes.
     * Results are byte-identical either way. jobs, cacheDir, cache and
     * jobTimeoutSeconds are broker-side concerns ignored in this mode.
     */
    std::string remoteSocket;

    /**
     * Remote mode only: reconnect attempts per broker outage before the
     * client gives up mid-batch (svc::ClientConfig::resumeAttempts).
     * 0 dies on the first disconnect. `--remote-retries` on the CLI.
     */
    unsigned remoteResumeAttempts = 8;
};

/** What one run() did, for reporting and assertions. */
struct CampaignReport
{
    std::size_t total = 0;     ///< jobs submitted
    std::size_t executed = 0;  ///< jobs actually evaluated
    std::size_t cacheHits = 0; ///< jobs served from the result cache
    std::size_t failed = 0;    ///< cells Failed (evaluator threw out of retries)
    std::size_t timedOut = 0;  ///< cells the deadline watchdog classified
    std::size_t quarantined = 0; ///< known-poison cells skipped
    double elapsedSeconds = 0.0;
    double busySeconds = 0.0;  ///< summed evaluator wall time
    std::vector<WorkerStats> workers;
    std::string cachePath;      ///< backing store ("" when disabled)
    std::string quarantinePath; ///< strike list ("" when disabled)

    /** One freshly-executed cell's wall time, for the health report. */
    struct SlowCell
    {
        std::size_t index = 0; ///< submission-order index into jobs()
        double seconds = 0.0;
    };

    /** Slowest executed cells this run, descending (at most five). */
    std::vector<SlowCell> slowest;

    /** Cells that did not produce an Ok result. */
    std::size_t failures() const
    {
        return failed + timedOut + quarantined;
    }

    /** Mean fraction of worker wall-time spent inside evaluators. */
    double utilization() const;

    /** One-line human-readable summary. */
    std::string summary() const;
};

/**
 * Evaluate one job. The Rng is the job's private sub-stream — the only
 * sanctioned randomness source, so results cannot depend on scheduling.
 */
using Evaluator = std::function<JobResult(const JobSpec &, Rng &rng)>;

/** An ordered grid of jobs plus the engine to evaluate it. */
class Campaign
{
  public:
    explicit Campaign(CampaignConfig config = {});

    /** Append one job; results preserve this submission order. */
    void add(JobSpec spec);

    /** Jobs submitted so far. */
    std::size_t size() const { return specs.size(); }

    /** Submitted specs, in order. */
    const std::vector<JobSpec> &jobs() const { return specs; }

    /**
     * Evaluate every job (cache first, then @p eval on a worker) and
     * return the results in submission order. May be called once per
     * Campaign. Evaluator exceptions are contained per cell: a throwing
     * cell is retried per CampaignConfig, then recorded as a Failed
     * result (with its message) rather than aborting the batch, so one
     * poisoned corner of a grid cannot take down an overnight sweep.
     * Only infrastructure errors (cache I/O, schema mismatch) still
     * propagate.
     */
    std::vector<JobResult> run(const Evaluator &eval);

    /** Statistics of the completed run(). */
    const CampaignReport &report() const { return lastReport; }

  private:
    CampaignConfig cfg;
    std::vector<JobSpec> specs;
    CampaignReport lastReport;
};

} // namespace eh::explore

#endif // EH_EXPLORE_CAMPAIGN_HH
