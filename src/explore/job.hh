/**
 * @file
 * The exploration engine's job model. A JobSpec is a complete, declarative
 * description of one cell of a design-space campaign — which task kind to
 * run (validation, clank characterization, fault sweep point, ...), every
 * parameter it needs, and the seed stream it draws randomness from. Specs
 * have a canonical serialization and a stable 64-bit content hash, so the
 * same cell always maps to the same cache entry and the same RNG
 * sub-stream regardless of submission order, thread count, or process
 * lifetime (see docs/EXPLORE.md).
 */

#ifndef EH_EXPLORE_JOB_HH
#define EH_EXPLORE_JOB_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace eh::explore {

/**
 * One unit of campaign work: a task kind plus an ordered set of named
 * parameters. Parameters are kept sorted by key so that logically equal
 * specs serialize — and therefore hash — identically no matter the
 * order set() calls were made in.
 */
class JobSpec
{
  public:
    JobSpec() = default;
    explicit JobSpec(std::string kind_) : taskKind(std::move(kind_)) {}

    /** Task kind dispatched on by the evaluator ("validation", ...). */
    const std::string &kind() const { return taskKind; }

    /** Set (or overwrite) one named parameter. Returns *this. */
    JobSpec &set(const std::string &key, const std::string &value);

    /** Convenience overloads for numeric parameters. */
    JobSpec &set(const std::string &key, double value);
    JobSpec &set(const std::string &key, std::uint64_t value);
    JobSpec &set(const std::string &key, int value);

    /** True when @p key was set. */
    bool has(const std::string &key) const;

    /** String value of @p key, or @p fallback when absent. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /**
     * Numeric value of @p key, or @p fallback when absent.
     * @throws FatalError when the stored value does not parse.
     */
    double getDouble(const std::string &key, double fallback) const;

    /** All parameters, sorted by key. */
    const std::vector<std::pair<std::string, std::string>> &
    params() const
    {
        return kv;
    }

    /**
     * Canonical serialization: `kind|k1=v1|k2=v2|...` with keys sorted
     * and `%`, `|`, `=` and newline percent-escaped. This string — not
     * any in-memory layout — defines job identity.
     */
    std::string canonical() const;

    /**
     * Parse a canonical() string back into a spec (the exploration
     * service ships specs over the wire in canonical form,
     * docs/SERVICE.md). Returns false on malformed input: a bad
     * percent-escape, a segment without '=', or a string that does not
     * round-trip byte-identically through canonical() — the round-trip
     * check makes acceptance imply identical hash and cache identity.
     */
    static bool fromCanonical(const std::string &text, JobSpec &out);

    /** Stable 64-bit content hash of canonical(). */
    std::uint64_t hash() const;

  private:
    std::string taskKind;
    std::vector<std::pair<std::string, std::string>> kv;
};

/**
 * Containment status of one evaluated job (docs/ROBUSTNESS.md). Ok is
 * the only status carrying evaluator-produced fields; the others record
 * why a cell has no physics result while letting the campaign complete.
 */
enum class JobStatus
{
    Ok,          ///< evaluator returned normally
    Failed,      ///< evaluator threw on every attempt
    Timeout,     ///< wall-clock deadline exceeded (watchdog classified)
    Quarantined, ///< known-poison cell skipped without executing
};

/** Stable lowercase name ("ok", "failed", "timeout", "quarantined"). */
const char *jobStatusName(JobStatus status);

/** Parse a jobStatusName() string; returns false on unknown input. */
bool parseJobStatus(const std::string &name, JobStatus &out);

/**
 * The outcome of one evaluated job: named fields in the order the
 * evaluator produced them, plus a containment status and error string.
 * Values are stored as strings; numeric fields use round-trip ("%.17g")
 * formatting so a result read back from the on-disk cache is
 * bit-identical to the freshly computed one.
 */
class JobResult
{
  public:
    /** Append one field (last write wins on duplicate names). */
    JobResult &set(const std::string &key, const std::string &value);

    /** Append one numeric field with round-trip formatting. */
    JobResult &set(const std::string &key, double value);
    JobResult &set(const std::string &key, std::uint64_t value);
    JobResult &set(const std::string &key, bool value);

    /** True when @p key is present. */
    bool has(const std::string &key) const;

    /** String value of @p key; empty string when absent. */
    std::string str(const std::string &key) const;

    /**
     * Numeric value of @p key.
     * @throws FatalError when absent or unparsable — a result schema
     *         mismatch, e.g. a stale cache entry from an older binary.
     */
    double num(const std::string &key) const;

    /** Unsigned integer value of @p key (same error behaviour). */
    std::uint64_t uint(const std::string &key) const;

    /** Fields in insertion order. */
    const std::vector<std::pair<std::string, std::string>> &
    fields() const
    {
        return kv;
    }

    /** Containment status (JobStatus::Ok unless the cell failed). */
    JobStatus status() const { return runStatus; }

    /** True when the evaluator produced this result normally. */
    bool ok() const { return runStatus == JobStatus::Ok; }

    /** Diagnostic for non-Ok statuses; empty for Ok results. */
    const std::string &error() const { return errorText; }

    /** Set the containment status (and diagnostic). Returns *this. */
    JobResult &setStatus(JobStatus status, const std::string &error = "");

    /** Build a non-Ok result in one expression. */
    static JobResult failure(JobStatus status, const std::string &error);

  private:
    std::vector<std::pair<std::string, std::string>> kv;
    JobStatus runStatus = JobStatus::Ok;
    std::string errorText;
};

/** Round-trip ("%.17g") rendering used for all numeric result fields. */
std::string formatRoundTrip(double value);

} // namespace eh::explore

#endif // EH_EXPLORE_JOB_HH
