#include "explore/tasks.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "arch/cpu.hh"
#include "core/model.hh"
#include "core/optimum.hh"
#include "core/params.hh"
#include "energy/supply.hh"
#include "energy/trace.hh"
#include "energy/transducer.hh"
#include "fault/injector.hh"
#include "runtime/clank.hh"
#include "runtime/dino.hh"
#include "runtime/hibernus.hh"
#include "runtime/hibernus_pp.hh"
#include "runtime/mementos.hh"
#include "runtime/nvp.hh"
#include "runtime/ratchet.hh"
#include "sim/simulator.hh"
#include "util/panic.hh"
#include "workloads/workload.hh"

namespace eh::explore {

namespace {

/** Build the volatile-platform policy used by the validation runs. */
std::unique_ptr<runtime::BackupPolicy>
makeValidationPolicy(const std::string &name, std::size_t sram_used,
                     double budget)
{
    if (name == "hibernus") {
        runtime::HibernusConfig c;
        c.sramUsedBytes = sram_used;
        const double backup_energy =
            (static_cast<double>(sram_used) + 68.0) * 75.0;
        c.backupThreshold =
            std::clamp(2.0 * backup_energy / budget, 0.15, 0.85);
        return std::make_unique<runtime::Hibernus>(c);
    }
    if (name == "hibernus++") {
        runtime::HibernusPPConfig c;
        c.sramUsedBytes = sram_used;
        (void)budget; // the whole point: no platform-specific tuning
        return std::make_unique<runtime::HibernusPP>(c);
    }
    if (name == "mementos") {
        runtime::MementosConfig c;
        c.sramUsedBytes = sram_used;
        c.backupThreshold = 0.5;
        return std::make_unique<runtime::Mementos>(c);
    }
    if (name == "dino") {
        runtime::DinoConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::Dino>(c);
    }
    fatalf("unknown validation policy '", name, "'");
}

/** Build the nonvolatile-data policy used by the fault/wear sweeps. */
std::unique_ptr<runtime::BackupPolicy>
makeNvPolicy(const std::string &name, std::size_t sram_used)
{
    if (name == "dino") {
        runtime::DinoConfig c;
        c.sramUsedBytes = sram_used;
        return std::make_unique<runtime::Dino>(c);
    }
    if (name == "clank")
        return std::make_unique<runtime::Clank>(runtime::ClankConfig{});
    if (name == "ratchet")
        return std::make_unique<runtime::Ratchet>(
            runtime::RatchetConfig{});
    if (name == "nvp")
        return std::make_unique<runtime::Nvp>(runtime::NvpConfig{1, 4});
    fatalf("unknown nonvolatile policy '", name, "'");
}

/** Apply a named Table I parameter override (the CLI's sweep names). */
void
applyModelParam(core::Params &p, const std::string &name, double value)
{
    if (name == "tauB")
        p.backupPeriod = value;
    else if (name == "E")
        p.energyBudget = value;
    else if (name == "eps")
        p.execEnergy = value;
    else if (name == "epsC")
        p.chargeEnergy = value;
    else if (name == "sigmaB")
        p.backupBandwidth = value;
    else if (name == "OmegaB")
        p.backupCost = value;
    else if (name == "AB")
        p.archStateBackup = value;
    else if (name == "alphaB")
        p.appStateRate = value;
    else if (name == "sigmaR")
        p.restoreBandwidth = value;
    else if (name == "OmegaR")
        p.restoreCost = value;
    else if (name == "AR")
        p.archStateRestore = value;
    else if (name == "alphaR")
        p.appRestoreRate = value;
    else
        fatalf("unknown model parameter '", name, "'");
}

/**
 * True when any comma-separated substring in environment variable
 * @p env_name occurs in @p canonical. Drives the test-only fault hooks.
 */
bool
envListMatches(const char *env_name, const std::string &canonical)
{
    const char *env = std::getenv(env_name);
    if (!env || !*env)
        return false;
    const std::string list(env);
    std::size_t at = 0;
    for (;;) {
        const std::size_t comma = list.find(',', at);
        const std::string needle =
            comma == std::string::npos ? list.substr(at)
                                       : list.substr(at, comma - at);
        if (!needle.empty() &&
            canonical.find(needle) != std::string::npos) {
            return true;
        }
        if (comma == std::string::npos)
            return false;
        at = comma + 1;
    }
}

JobResult
packValidation(const ValidationRun &r)
{
    return JobResult()
        .set("workload", r.workload)
        .set("policy", r.policy)
        .set("measured", r.measuredProgress)
        .set("predicted", r.predictedProgress)
        .set("rel_error", r.relativeError)
        .set("tau_b", r.meanTauB)
        .set("tau_d", r.meanTauD)
        .set("alpha_b", r.meanAlphaB)
        .set("tau_b_opt", r.optimalTauB)
        .set("finished", r.finished)
        .set("outcome", r.outcome);
}

JobResult
packClank(const ClankCharacterization &r)
{
    return JobResult()
        .set("workload", r.workload)
        .set("trace", r.trace)
        .set("tau_b_mean", r.tauBMean)
        .set("tau_b_sem", r.tauBSem)
        .set("tau_d_mean", r.tauDMean)
        .set("tau_d_sem", r.tauDSem)
        .set("alpha_b_mean", r.alphaBMean)
        .set("backups", r.backups)
        .set("violations", r.violations)
        .set("watchdogs", r.watchdogs)
        .set("overflows", r.overflows)
        .set("finished", r.finished)
        .set("outcome", r.outcome);
}

JobResult
packFault(const FaultRun &r)
{
    return JobResult()
        .set("finished", r.finished)
        .set("correct", r.correct)
        .set("progress", r.progress)
        .set("corruptions", r.corruptionsDetected)
        .set("fallbacks", r.slotFallbacks)
        .set("restarts", r.restartsFromScratch)
        .set("bit_flips", r.bitFlips)
        .set("outcome", r.outcome);
}

JobResult
packWear(const WearRun &r)
{
    return JobResult()
        .set("bytes", r.totalWritten)
        .set("bytes_per_cycle", r.bytesPerCommittedInstr)
        .set("progress", r.progress)
        .set("finished", r.finished)
        .set("outcome", r.outcome);
}

} // namespace

ValidationRun
runValidation(const std::string &workload, const std::string &policy,
              double periods_budget_divisor)
{
    const auto layout = workloads::volatileLayout();
    const auto w = workloads::makeWorkload(workload, layout);

    sim::SimConfig cfg;
    cfg.sramUsedBytes = w.sramUsedBytes;
    cfg.maxActivePeriods = 60000;

    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    // The floor keeps several backup+restore round trips per period so
    // single-backup systems retain useful headroom after their snapshot.
    const double round_trip =
        (static_cast<double>(cfg.sramUsedBytes) + 68.0) * 75.0;
    const double floor_budget = 6.0 * round_trip;
    const double budget =
        std::max(floor_budget, golden.energy / periods_budget_divisor);

    energy::ConstantSupply supply(budget);
    auto pol = makeValidationPolicy(policy, cfg.sramUsedBytes, budget);
    sim::Simulator simulator(w.program, *pol, supply, cfg);
    const auto stats = simulator.run();

    ValidationRun out;
    out.workload = workload;
    out.policy = policy;
    out.finished = stats.finished;
    out.outcome = sim::outcomeName(stats.outcome);
    out.measuredProgress = stats.measuredProgress();
    out.meanTauB = stats.tauB.count() ? stats.tauB.mean() : 0.0;
    out.meanTauD = stats.tauD.count() ? stats.tauD.mean() : 0.0;
    out.meanAlphaB = stats.alphaB.count() ? stats.alphaB.mean() : 0.0;

    auto obs = stats.observe(cfg, arch::Cpu::archStateBytes);
    if (policy == "hibernus") {
        // Single-backup system: charged per backup is the full SRAM
        // payload, best-case dead cycles (Section IV-B).
        obs.meanAppStateRate = 0.0;
        obs.archStateBytes = static_cast<double>(cfg.sramUsedBytes) + 68.0;
    }
    const auto pred = core::predictFromObservation(obs);
    out.predictedProgress = pred.predictedProgress;
    out.relativeError = pred.relativeError;
    out.optimalTauB = core::optimalBackupPeriod(pred.params);
    return out;
}

std::vector<std::string>
traceNames()
{
    return {"rf-spiky", "rf-ramp", "rf-multipeak"};
}

ClankCharacterization
runClank(const std::string &workload, int trace_index,
         std::uint64_t watchdog_cycles)
{
    EH_ASSERT(trace_index >= 0 && trace_index < 3,
              "trace index must be 0..2");
    const auto layout = workloads::nonvolatileLayout();
    const auto w = workloads::makeWorkload(workload, layout);

    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.costs = arch::CostModel::cortexM0();
    cfg.maxActivePeriods = 30000;

    // Harvested supply: traces scaled so an active period holds roughly
    // 30-60k cycles — several watchdog periods — and recharging takes a
    // realistic multiple of the active time.
    auto traces = energy::makePaperTraces(0xE40 + trace_index,
                                          30'000'000);
    energy::Transducer tx(0.6, 3000.0, 16.0e6);
    energy::Capacitor cap(0.68e-6, 3.6, 3.0, 2.2);
    energy::HarvestingSupply supply(std::move(traces[trace_index]), tx,
                                    cap);

    runtime::ClankConfig cc;
    cc.watchdogCycles = watchdog_cycles;
    runtime::Clank policy(cc);

    sim::Simulator simulator(w.program, policy, supply, cfg);
    const auto stats = simulator.run();

    ClankCharacterization out;
    out.workload = workload;
    out.trace = traceNames()[static_cast<std::size_t>(trace_index)];
    out.finished = stats.finished;
    out.outcome = sim::outcomeName(stats.outcome);
    out.tauBMean = stats.tauB.count() ? stats.tauB.mean() : 0.0;
    out.tauBSem = stats.tauB.sem();
    out.tauDMean = stats.tauD.count() ? stats.tauD.mean() : 0.0;
    out.tauDSem = stats.tauD.sem();
    out.alphaBMean = stats.alphaB.count() ? stats.alphaB.mean() : 0.0;
    out.backups = stats.backups;
    const auto &ts = policy.tracker().stats();
    out.violations = ts.violations;
    out.watchdogs = ts.watchdogFirings;
    out.overflows = ts.overflows;
    return out;
}

FaultRun
runFaultPoint(const std::string &workload, const std::string &policy,
              double rate, std::uint64_t plan_seed)
{
    const bool vol = policy == "dino";
    const auto w = workloads::makeWorkload(
        workload, vol ? workloads::volatileLayout()
                      : workloads::nonvolatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = vol ? w.sramUsedBytes : 64;
    cfg.maxActivePeriods = 60000;
    const auto golden = sim::runGolden(w.program, cfg, w.resultAddrs);
    const double budget =
        std::max(vol ? 2.0e6 : 1.0e6, golden.energy / 5.0);

    fault::FaultPlan plan;
    plan.seed = plan_seed;
    plan.wearBitErrorRate = rate;
    // Targeted corruption scales with the same rate so the
    // checkpoint-integrity path is exercised proportionally.
    plan.checkpointCorruptionProb = std::min(0.9, rate * 1.0e5);
    plan.selectorCorruptionProb = std::min(0.5, rate * 3.0e4);
    plan.maxBitFlips = 1ull << 40;

    // The fault ablation runs NVP with 4-entry buffers (vs 1 elsewhere).
    std::unique_ptr<runtime::BackupPolicy> pol;
    if (policy == "nvp")
        pol = std::make_unique<runtime::Nvp>(runtime::NvpConfig{4, 4});
    else
        pol = makeNvPolicy(policy, cfg.sramUsedBytes);
    energy::ConstantSupply supply(budget);
    fault::FaultInjector injector(plan);
    sim::Simulator s(w.program, *pol, supply, cfg);
    s.attachFaultInjector(&injector);
    const auto stats = s.run();

    FaultRun out;
    out.finished = stats.finished;
    out.outcome = sim::outcomeName(stats.outcome);
    if (stats.finished) {
        bool exact = true;
        for (std::size_t i = 0; i < w.resultAddrs.size(); ++i)
            exact &= s.resultWord(w.resultAddrs[i]) == w.expected[i];
        out.correct = exact;
    }
    out.progress = stats.measuredProgress();
    out.corruptionsDetected = stats.corruptionsDetected;
    out.slotFallbacks = stats.slotFallbacks;
    out.restartsFromScratch = stats.restartsFromScratch;
    out.bitFlips = stats.injectedBitFlips;
    return out;
}

WearRun
runWearPoint(const std::string &workload, const std::string &policy)
{
    const auto w = workloads::makeWorkload(
        workload, workloads::nonvolatileLayout());
    sim::SimConfig cfg;
    cfg.sramUsedBytes = 64;
    cfg.costs = arch::CostModel::cortexM0();
    cfg.maxActivePeriods = 60000;
    energy::ConstantSupply supply(147.0 * 50000.0);
    auto pol = makeNvPolicy(policy, cfg.sramUsedBytes);
    sim::Simulator s(w.program, *pol, supply, cfg);
    const auto stats = s.run();
    const auto committed = stats.meter.cycles(energy::Phase::Progress);

    WearRun r;
    r.totalWritten = s.memory().nvm().bytesWritten();
    r.bytesPerCommittedInstr =
        committed ? static_cast<double>(r.totalWritten) /
                        static_cast<double>(committed)
                  : 0.0;
    r.progress = stats.measuredProgress();
    r.finished = stats.finished;
    r.outcome = sim::outcomeName(stats.outcome);
    return r;
}

JobResult
evaluateJob(const JobSpec &spec, Rng &rng)
{
    // Test-only fault hooks, used by the campaign containment tests and
    // CI's campaign-resilience job to manufacture poisoned grids without
    // bespoke evaluators: cells whose canonical spec matches a
    // comma-separated substring in EH_TEST_POISON_CELLS throw, cells
    // matching EH_TEST_HANG_CELLS stall past any sane per-job deadline.
    const std::string canonical = spec.canonical();
    if (envListMatches("EH_TEST_POISON_CELLS", canonical))
        fatalf("cell poisoned via EH_TEST_POISON_CELLS: ", canonical);
    if (envListMatches("EH_TEST_HANG_CELLS", canonical))
        std::this_thread::sleep_for(std::chrono::milliseconds(2000));

    const std::string &kind = spec.kind();
    if (kind == "validation") {
        return packValidation(runValidation(
            spec.get("workload"), spec.get("policy"),
            spec.getDouble("divisor", 6.0)));
    }
    if (kind == "clank") {
        return packClank(runClank(
            spec.get("workload"),
            static_cast<int>(spec.getDouble("trace", 0.0)),
            static_cast<std::uint64_t>(
                spec.getDouble("watchdog", 8000.0))));
    }
    if (kind == "fault") {
        // The plan seed is the first draw of this job's sub-stream —
        // deterministic for the (campaign seed, spec) pair, replacing
        // the old ad-hoc `base + i * prime` seeding.
        return packFault(runFaultPoint(spec.get("workload"),
                                       spec.get("policy"),
                                       spec.getDouble("rate", 0.0),
                                       rng.next()));
    }
    if (kind == "wear") {
        return packWear(
            runWearPoint(spec.get("workload"), spec.get("policy")));
    }
    if (kind == "model") {
        const std::string preset = spec.get("preset", "illustrative");
        core::Params p;
        if (preset == "illustrative")
            p = core::illustrativeParams();
        else if (preset == "msp430")
            p = core::msp430Params(spec.getDouble("period-s", 0.25));
        else if (preset == "cortexm0")
            p = core::cortexM0Params();
        else if (preset == "nvp")
            p = core::nvpParams();
        else
            fatalf("unknown preset '", preset, "'");
        for (const auto &[key, value] : spec.params()) {
            if (key == "preset" || key == "period-s" || key == "cell")
                continue;
            applyModelParam(p, key, spec.getDouble(key, 0.0));
        }
        p.validate();
        core::Model m(p);
        return JobResult()
            .set("avg", m.progress())
            .set("best", m.progress(core::DeadCycleMode::BestCase))
            .set("worst", m.progress(core::DeadCycleMode::WorstCase));
    }
    fatalf("unknown job kind '", kind, "'");
}

} // namespace eh::explore
