/**
 * @file
 * Work-stealing thread pool for exploration campaigns. Each worker owns
 * a deque of task indices: it pops from the back of its own deque (hot,
 * cache-friendly) and steals from the front of a victim's when it runs
 * dry, so a handful of slow simulations cannot strand the rest of the
 * grid behind them. Campaign jobs are pure functions of their spec, so
 * execution order — and therefore stealing — never affects results.
 *
 * The worker count comes from, in priority order: the explicit
 * constructor argument (the CLI's --jobs), the EH_JOBS environment
 * variable, and std::thread::hardware_concurrency().
 */

#ifndef EH_EXPLORE_THREADPOOL_HH
#define EH_EXPLORE_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eh::explore {

/** Per-worker execution counters, reported with campaign progress. */
struct WorkerStats
{
    std::uint64_t executed = 0; ///< tasks run by this worker
    std::uint64_t steals = 0;   ///< tasks taken from another worker's deque
    std::uint64_t errors = 0;   ///< tasks that threw on this worker
};

/**
 * Fixed-size pool executing batches of indexed tasks. Threads are
 * spawned once in the constructor and parked between batches.
 */
class ThreadPool
{
  public:
    /**
     * @param jobs Worker count; 0 means defaultJobs(). Clamped to ≥ 1.
     */
    explicit ThreadPool(unsigned jobs = 0);

    /** Joins all workers. Outstanding batches must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Resolve the default worker count: EH_JOBS when set to a positive
     * integer, else hardware_concurrency(), floored at 1.
     */
    static unsigned defaultJobs();

    /** Number of workers in this pool. */
    unsigned workers() const { return workerCount; }

    /**
     * Run body(i) for every i in [0, count) and block until all
     * complete. Tasks are dealt round-robin across the worker deques;
     * idle workers steal. The first exception a task throws is captured
     * and rethrown here after the batch drains (remaining tasks still
     * run — campaign results must stay index-addressable). When more
     * than one task threw, the rethrown FatalError carries the first
     * message plus the suppressed-error count; per-worker counts land
     * in WorkerStats::errors either way.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &body);

    /** Per-worker counters for the most recent / current batch epoch. */
    std::vector<WorkerStats> workerStats() const;

  private:
    struct Worker
    {
        mutable std::mutex mutex;
        std::deque<std::size_t> tasks;
        WorkerStats stats;
    };

    void workerLoop(unsigned id);

    /** Pop from own back, else steal from a victim's front. */
    bool takeTask(unsigned id, std::size_t &task);

    unsigned workerCount;
    std::vector<std::unique_ptr<Worker>> perWorker;
    std::vector<std::thread> threads;

    std::mutex batchMutex;
    std::condition_variable batchStart;
    std::condition_variable batchDone;
    std::uint64_t epoch = 0;             ///< bumped per forEach batch
    unsigned activeWorkers = 0;          ///< workers inside the batch loop
    bool shuttingDown = false;
    std::atomic<std::size_t> remaining{0};
    const std::function<void(std::size_t)> *batchBody = nullptr;

    std::mutex errorMutex;
    std::exception_ptr firstError;
    std::size_t errorCount = 0; ///< total throwing tasks this batch
};

} // namespace eh::explore

#endif // EH_EXPLORE_THREADPOOL_HH
