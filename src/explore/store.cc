#include "explore/store.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "obs/metrics.hh"
#include "util/chaos.hh"
#include "util/crc.hh"
#include "util/fsio.hh"
#include "util/log.hh"
#include "util/panic.hh"

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace eh::explore {

namespace fs = std::filesystem;

namespace {

constexpr std::uint8_t payloadVersion = 1;

/** Append a length-prefixed string. */
void
putStr(std::string &out, const std::string &s)
{
    putLe32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

/** Read a length-prefixed string; false when the bytes run out. */
bool
getStr(const std::string &in, std::size_t &at, std::string &out)
{
    std::uint32_t len = 0;
    if (!getLe32(in, at, len))
        return false;
    if (len > in.size() - at)
        return false;
    out.assign(in, at, len);
    at += len;
    return true;
}

/** Streaming CRC-32 of a whole file. */
bool
fileCrcOf(const std::string &path, std::uint32_t &crc_out,
          std::uint64_t &size_out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char buf[1 << 16];
    std::uint32_t crc = crc32Init();
    std::uint64_t size = 0;
    while (in) {
        in.read(buf, sizeof(buf));
        const std::streamsize got = in.gcount();
        if (got <= 0)
            break;
        crc = crc32Update(crc, buf, static_cast<std::size_t>(got));
        size += static_cast<std::uint64_t>(got);
    }
    crc_out = crc32Final(crc);
    size_out = size;
    return true;
}

/** POSIX-or-fallback unbuffered append handle operations. */
int
fileOpenAppend(const std::string &path)
{
#ifndef _WIN32
    return ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
#else
    (void)path;
    return -1;
#endif
}

/**
 * Write all of @p len bytes; on failure @p errnoOut holds the errno
 * (0 when the platform has no append path at all).
 */
bool
fileWriteAll(int fd, const char *data, std::size_t len, int &errnoOut)
{
    errnoOut = 0;
#ifndef _WIN32
    // Chaos (docs/SERVICE.md): an armed `enospc=store.append@n` makes
    // the n-th append fail exactly like a full disk would.
    if (chaos::failPoint("store.append", errnoOut))
        return false;
    std::size_t done = 0;
    while (done < len) {
        const ::ssize_t n = ::write(fd, data + done, len - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            errnoOut = errno;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
#else
    (void)fd;
    (void)data;
    (void)len;
    return false;
#endif
}

void
fileClose(int fd)
{
#ifndef _WIN32
    if (fd >= 0)
        ::close(fd);
#else
    (void)fd;
#endif
}

/** The store's only composite identity key (canonical, seed). */
using LiveKey = std::pair<std::string, std::uint64_t>;

} // namespace

std::string
SegmentStore::segmentName(std::uint32_t id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "seg-%06u.ehseg", id);
    return buf;
}

std::string
SegmentStore::indexName(std::uint32_t id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "seg-%06u.ehidx", id);
    return buf;
}

std::string
SegmentStore::segmentPath(std::uint32_t id) const
{
    return root + "/" + segmentName(id);
}

std::string
SegmentStore::indexPath(std::uint32_t id) const
{
    return root + "/" + indexName(id);
}

std::string
SegmentStore::encodePayload(const StoreRecord &record)
{
    std::string p;
    p += static_cast<char>(payloadVersion);
    p += static_cast<char>(static_cast<int>(record.result.status()));
    putLe64(p, record.hash);
    putLe64(p, record.seed);
    putStr(p, record.canonical);
    putStr(p, record.result.error());
    const auto &fields = record.result.fields();
    putLe32(p, static_cast<std::uint32_t>(fields.size()));
    for (const auto &[key, value] : fields) {
        putStr(p, key);
        putStr(p, value);
    }
    return p;
}

bool
SegmentStore::decodePayload(const std::string &payload, StoreRecord &out)
{
    std::size_t at = 0;
    if (payload.size() < 2)
        return false;
    const auto version = static_cast<std::uint8_t>(payload[at++]);
    const auto status = static_cast<std::uint8_t>(payload[at++]);
    if (version != payloadVersion || status > 3)
        return false;
    StoreRecord rec;
    if (!getLe64(payload, at, rec.hash) ||
        !getLe64(payload, at, rec.seed))
        return false;
    std::string error;
    if (!getStr(payload, at, rec.canonical) ||
        !getStr(payload, at, error))
        return false;
    std::uint32_t nfields = 0;
    if (!getLe32(payload, at, nfields))
        return false;
    JobResult result;
    result.setStatus(static_cast<JobStatus>(status), error);
    for (std::uint32_t k = 0; k < nfields; ++k) {
        std::string key, value;
        if (!getStr(payload, at, key) || !getStr(payload, at, value))
            return false;
        result.set(key, value);
    }
    if (at != payload.size())
        return false; // trailing bytes — treat the frame as corrupt
    rec.result = std::move(result);
    out = std::move(rec);
    return true;
}

std::string
SegmentStore::encodeFrame(const StoreRecord &record)
{
    const std::string payload = encodePayload(record);
    std::string frame;
    frame.reserve(storeFrameHeaderBytes + payload.size());
    putLe32(frame, storeFrameMagic);
    putLe32(frame, static_cast<std::uint32_t>(payload.size()));
    putLe32(frame, crc32(payload.data(), payload.size()));
    frame += payload;
    return frame;
}

void
SegmentStore::scanFrames(
    const std::string &bytes,
    const std::function<void(std::uint64_t, std::uint32_t,
                             const StoreRecord &)> &onRecord,
    const std::function<void(std::uint64_t, std::uint64_t,
                             const std::string &)> &onCorruption)
{
    static const char magicBytes[4] = {'E', 'H', 'F', '1'};
    const std::size_t n = bytes.size();
    const std::size_t npos = std::string::npos;

    auto findMagic = [&](std::size_t from) -> std::size_t {
        while (from + 4 <= n) {
            const void *p = std::memchr(bytes.data() + from, 'E',
                                        n - from - 3);
            if (!p)
                return npos;
            const auto pos = static_cast<std::size_t>(
                static_cast<const char *>(p) - bytes.data());
            if (std::memcmp(bytes.data() + pos, magicBytes, 4) == 0)
                return pos;
            from = pos + 1;
        }
        return npos;
    };

    std::size_t corruptStart = npos;
    auto flushCorrupt = [&](std::size_t end) {
        if (corruptStart == npos)
            return;
        onCorruption(corruptStart, end - corruptStart,
                     end == n ? "torn tail or trailing garbage"
                              : "corrupt frame bytes");
        corruptStart = npos;
    };

    std::size_t at = 0;
    while (at < n) {
        bool ok = false;
        if (at + storeFrameHeaderBytes <= n) {
            std::size_t p = at;
            std::uint32_t magic = 0, len = 0, crc = 0;
            getLe32(bytes, p, magic);
            getLe32(bytes, p, len);
            getLe32(bytes, p, crc);
            if (magic == storeFrameMagic &&
                len <= storeMaxPayloadBytes && len <= n - p) {
                const std::uint32_t got = crc32(bytes.data() + p, len);
                if (got == crc) {
                    StoreRecord rec;
                    if (decodePayload(bytes.substr(p, len), rec)) {
                        flushCorrupt(at);
                        onRecord(at,
                                 static_cast<std::uint32_t>(
                                     storeFrameHeaderBytes + len),
                                 rec);
                        at = p + len;
                        ok = true;
                    }
                }
            }
        }
        if (ok)
            continue;
        // Damage at `at`: remember where it began, then resynchronize
        // on the next frame magic. Everything skipped is quarantined,
        // never deleted — the bytes stay on disk until a compaction.
        if (corruptStart == npos)
            corruptStart = at;
        const std::size_t next = findMagic(at + 1);
        if (next == npos) {
            flushCorrupt(n);
            break;
        }
        at = next;
    }
    flushCorrupt(n);
}

SegmentStore::SegmentStore() = default;

SegmentStore::SegmentStore(const std::string &dir, StoreConfig cfg)
    : root(dir), config(cfg)
{
    if (root.empty())
        return; // memory-only
    openOnDisk(cfg);
}

SegmentStore::~SegmentStore()
{
    std::lock_guard<std::mutex> lock(mutex);
    if (activeFd >= 0) {
        fsyncFd(activeFd);
        fileClose(activeFd);
        activeFd = -1;
    }
#ifndef _WIN32
    if (lockFd >= 0) {
        ::flock(lockFd, LOCK_UN);
        fileClose(lockFd);
        lockFd = -1;
    }
#endif
}

void
SegmentStore::lockStore(bool shared)
{
#ifndef _WIN32
    const std::string path = root + "/LOCK";
    lockFd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
    if (lockFd < 0)
        fatalf("cannot create store lock '", path, "'");
    const int mode = (shared ? LOCK_SH : LOCK_EX) | LOCK_NB;
    if (::flock(lockFd, mode) != 0) {
        fileClose(lockFd);
        lockFd = -1;
        obs::metrics().counter("store.lock_contention").add(1);
        fatalf("result store '", root,
               "' is locked by another process; concurrent campaigns "
               "must not share one store (use distinct --cache-dir or "
               "wait for the other run to finish)");
    }
#else
    (void)shared;
#endif
}

std::vector<SegmentStore::SegmentInfo>
SegmentStore::listSegments() const
{
    std::vector<SegmentInfo> segs;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(root, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() != std::strlen("seg-000000.ehseg") ||
            name.compare(0, 4, "seg-") != 0 ||
            name.compare(10, 6, ".ehseg") != 0) {
            continue;
        }
        std::uint32_t id = 0;
        bool digits = true;
        for (int k = 4; k < 10; ++k) {
            const char c = name[static_cast<std::size_t>(k)];
            digits = digits && c >= '0' && c <= '9';
            id = id * 10 + static_cast<std::uint32_t>(c - '0');
        }
        if (!digits || id == 0)
            continue;
        std::error_code sec;
        const auto size = fs::file_size(entry.path(), sec);
        segs.push_back({id, sec ? 0 : size});
    }
    std::sort(segs.begin(), segs.end(),
              [](const SegmentInfo &a, const SegmentInfo &b) {
                  return a.id < b.id;
              });
    return segs;
}

void
SegmentStore::registerSlot(std::uint64_t hash, Slot slot)
{
    auto &vec = byHash[hash];
    if (slot.loaded) {
        // Newest wins: a re-executed cell (e.g. --retry-failed after a
        // Timeout record) replaces its predecessor in place.
        for (auto it = vec.rbegin(); it != vec.rend(); ++it) {
            if (it->loaded && it->seed == slot.seed &&
                it->canonical == slot.canonical) {
                *it = std::move(slot);
                return;
            }
        }
    }
    vec.push_back(std::move(slot));
}

bool
SegmentStore::loadViaIndex(const SegmentInfo &seg)
{
    std::string idx;
    if (!readFileBytes(indexPath(seg.id), idx))
        return false;
    if (idx.size() < 4)
        return false;
    // Self-check first: the trailing CRC covers everything before it.
    std::size_t at = idx.size() - 4;
    std::uint32_t selfCrc = 0;
    getLe32(idx, at, selfCrc);
    if (crc32(idx.data(), idx.size() - 4) != selfCrc)
        return false;
    at = 0;
    std::uint32_t magic = 0, version = 0, segId = 0, segCrc = 0,
                  count = 0;
    std::uint64_t segBytes = 0;
    if (!getLe32(idx, at, magic) || !getLe32(idx, at, version) ||
        !getLe32(idx, at, segId) || !getLe64(idx, at, segBytes) ||
        !getLe32(idx, at, segCrc) || !getLe32(idx, at, count)) {
        return false;
    }
    if (magic != storeIndexMagic || version != 1 || segId != seg.id ||
        segBytes != seg.bytes) {
        return false;
    }
    // One raw byte pass over the segment — no frame parsing, no
    // allocation per record — is what makes indexed warm loads fast.
    std::uint32_t fileCrc = 0;
    std::uint64_t fileSize = 0;
    if (!fileCrcOf(segmentPath(seg.id), fileCrc, fileSize) ||
        fileSize != segBytes || fileCrc != segCrc) {
        return false;
    }
    struct Entry
    {
        std::uint64_t hash, seed, offset;
        std::uint32_t len;
    };
    std::vector<Entry> entries;
    entries.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
        Entry e{};
        if (!getLe64(idx, at, e.hash) || !getLe64(idx, at, e.seed) ||
            !getLe64(idx, at, e.offset) || !getLe32(idx, at, e.len)) {
            return false;
        }
        if (e.offset + e.len > segBytes)
            return false;
        entries.push_back(e);
    }
    if (at != idx.size() - 4)
        return false;
    if (config.serveExisting) {
        for (const Entry &e : entries) {
            Slot slot;
            slot.seed = e.seed;
            slot.segment = seg.id;
            slot.offset = e.offset;
            slot.frameLen = e.len;
            registerSlot(e.hash, std::move(slot));
        }
        opened.records += entries.size();
    }
    ++opened.indexedSegments;
    return true;
}

void
SegmentStore::scanSegmentFile(const SegmentInfo &seg, bool registerSlots)
{
    std::string bytes;
    if (!readFileBytes(segmentPath(seg.id), bytes))
        return;
    std::size_t events = 0;
    std::uint64_t badBytes = 0;
    scanFrames(
        bytes,
        [&](std::uint64_t, std::uint32_t, const StoreRecord &rec) {
            if (!registerSlots)
                return;
            Slot slot;
            slot.seed = rec.seed;
            slot.loaded = true;
            slot.canonical = rec.canonical;
            slot.result = rec.result;
            registerSlot(rec.hash, std::move(slot));
            ++opened.records;
        },
        [&](std::uint64_t, std::uint64_t count, const std::string &) {
            ++events;
            badBytes += count;
        });
    if (events > 0) {
        opened.corruptionEvents += events;
        opened.corruptBytes += badBytes;
        obs::metrics().counter("store.frames_quarantined").add(events);
        warn("result store '", root, "': segment ",
             segmentName(seg.id), " holds ", events,
             " corrupt byte range", events == 1 ? "" : "s", " (",
             badBytes, " bytes) — quarantined, intact records still "
             "served; run `eh_cachectl fsck` to inspect or repair");
    }
}

void
SegmentStore::openActive(std::uint32_t id, std::uint64_t existingBytes)
{
    const std::string path = segmentPath(id);
    activeFd = fileOpenAppend(path);
    if (activeFd < 0)
        fatalf("cannot open store segment '", path, "' for append");
    activeId = id;
    activeBytes = existingBytes;
    appendsSinceSync = 0;
}

void
SegmentStore::openOnDisk(StoreConfig cfg)
{
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec)
        fatalf("cannot create store directory '", root, "'");
    lockStore(cfg.readOnly);

    if (!cfg.readOnly) {
        // A crash can leave write-to-temp leftovers; they were never
        // published (no rename), so they hold no live data.
        for (const auto &entry : fs::directory_iterator(root, ec)) {
            const std::string name = entry.path().filename().string();
            if (name.size() > 4 &&
                name.compare(name.size() - 4, 4, ".tmp") == 0) {
                fs::remove(entry.path(), ec);
            }
        }
    }

    const auto segs = listSegments();
    opened.segments = segs.size();
    const std::uint32_t maxId = segs.empty() ? 0 : segs.back().id;
    nextId = maxId + 1;

    for (const auto &seg : segs) {
        opened.bytes += seg.bytes;
        const bool last = seg.id == maxId;
        if (loadViaIndex(seg))
            continue; // sealed and indexed (even when last)
        if (last) {
            // The active segment: scan it and keep appending to it.
            scanSegmentFile(seg, cfg.serveExisting);
            if (!cfg.readOnly) {
                // Appending would invalidate a stale sidecar; drop it
                // (the seal or next compaction rewrites it).
                fs::remove(indexPath(seg.id), ec);
                openActive(seg.id, seg.bytes);
            }
        } else {
            // Sealed but unindexed (crash between publish steps):
            // scan now, heal the sidecar so the next open is fast.
            scanSegmentFile(seg, cfg.serveExisting);
            if (!cfg.readOnly)
                writeIndexFor(seg.id);
        }
    }
    obs::metrics().counter("store.records_loaded").add(opened.records);
}

bool
SegmentStore::readFrame(const Slot &slot, StoreRecord &out) const
{
    std::ifstream in(segmentPath(slot.segment), std::ios::binary);
    if (!in)
        return false;
    in.seekg(static_cast<std::streamoff>(slot.offset));
    std::string frame(slot.frameLen, '\0');
    in.read(frame.data(), static_cast<std::streamsize>(slot.frameLen));
    if (in.gcount() != static_cast<std::streamsize>(slot.frameLen))
        return false;
    std::size_t at = 0;
    std::uint32_t magic = 0, len = 0, crc = 0;
    if (!getLe32(frame, at, magic) || !getLe32(frame, at, len) ||
        !getLe32(frame, at, crc)) {
        return false;
    }
    if (magic != storeFrameMagic ||
        len != slot.frameLen - storeFrameHeaderBytes) {
        return false;
    }
    if (crc32(frame.data() + at, len) != crc)
        return false;
    return decodePayload(frame.substr(at, len), out);
}

bool
SegmentStore::lookup(const std::string &canonical, std::uint64_t hash,
                     std::uint64_t seed, JobResult &out) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = byHash.find(hash);
    if (it == byHash.end())
        return false;
    auto &vec = it->second;
    for (auto r = vec.rbegin(); r != vec.rend(); ++r) {
        Slot &slot = *r;
        if (slot.seed != seed || slot.dead)
            continue;
        if (!slot.loaded) {
            StoreRecord rec;
            if (!readFrame(slot, rec)) {
                slot.dead = true;
                warn("result store '", root, "': indexed record at ",
                     segmentName(slot.segment), "+", slot.offset,
                     " failed its CRC on read; treating as a miss");
                continue;
            }
            slot.loaded = true;
            slot.canonical = std::move(rec.canonical);
            slot.result = std::move(rec.result);
        }
        if (slot.canonical == canonical) {
            out = slot.result;
            return true;
        }
    }
    return false;
}

void
SegmentStore::append(const StoreRecord &record)
{
    std::lock_guard<std::mutex> lock(mutex);
    appendLocked(record);
}

void
SegmentStore::appendLocked(const StoreRecord &record)
{
    if (enabled()) {
        if (config.readOnly)
            fatalf("result store '", root, "' is open read-only");
        if (activeFd < 0) {
            activeId = nextId++;
            openActive(activeId, 0);
            fsyncDir(root); // make the new segment's name durable
        }
        const std::string frame = encodeFrame(record);
        int err = 0;
        if (!fileWriteAll(activeFd, frame.data(), frame.size(),
                          err)) {
            obs::metrics().counter("store.append_errors").add(1);
            if (err == ENOSPC || err == EDQUOT) {
                // Name the problem now, while the failing path and the
                // shortfall are known — not later, when scan-resync
                // quarantines the torn tail this write left behind.
                throw StoreError(detail::concat(
                    "fatal: cannot append to store segment '",
                    segmentPath(activeId), "': ",
                    std::strerror(err), " (", frame.size(),
                    " more bytes needed; free space or move the "
                    "store, then rerun — acknowledged records are "
                    "intact and a torn tail is quarantined on the "
                    "next open)"));
            }
            fatalf("append to store segment '", segmentPath(activeId),
                   "' failed: ",
                   err != 0 ? std::strerror(err) : "unknown error");
        }
        activeBytes += frame.size();
        ++appendsSinceSync;
        if (config.fsyncEvery > 0 &&
            appendsSinceSync >= config.fsyncEvery) {
            fsyncFd(activeFd);
            appendsSinceSync = 0;
        }
    }
    Slot slot;
    slot.seed = record.seed;
    slot.loaded = true;
    slot.canonical = record.canonical;
    slot.result = record.result;
    registerSlot(record.hash, std::move(slot));
    if (enabled() && activeBytes >= config.maxSegmentBytes)
        sealLocked();
}

void
SegmentStore::flush(bool sync)
{
    std::lock_guard<std::mutex> lock(mutex);
    flushLocked(sync);
}

void
SegmentStore::flushLocked(bool sync)
{
    // Appends go through write(2) — there is no user-space buffer to
    // flush; only the page-cache fsync is meaningful.
    if (sync && activeFd >= 0) {
        fsyncFd(activeFd);
        appendsSinceSync = 0;
    }
}

void
SegmentStore::seal()
{
    std::lock_guard<std::mutex> lock(mutex);
    sealLocked();
}

void
SegmentStore::sealLocked()
{
    if (activeFd < 0)
        return;
    fsyncFd(activeFd);
    fileClose(activeFd);
    activeFd = -1;
    writeIndexFor(activeId);
    obs::metrics().counter("store.segments_sealed").add(1);
    activeId = 0;
    activeBytes = 0;
    appendsSinceSync = 0;
}

void
SegmentStore::writeIndexFor(std::uint32_t id)
{
    // Build the sidecar from what is actually on disk — the index must
    // describe the file it sits next to, bit for bit.
    std::string bytes;
    if (!readFileBytes(segmentPath(id), bytes))
        return;
    std::string entries;
    std::uint32_t count = 0;
    scanFrames(
        bytes,
        [&](std::uint64_t offset, std::uint32_t frameLen,
            const StoreRecord &rec) {
            putLe64(entries, rec.hash);
            putLe64(entries, rec.seed);
            putLe64(entries, offset);
            putLe32(entries, frameLen);
            ++count;
        },
        [](std::uint64_t, std::uint64_t, const std::string &) {});
    std::string idx;
    putLe32(idx, storeIndexMagic);
    putLe32(idx, 1); // index version
    putLe32(idx, id);
    putLe64(idx, bytes.size());
    putLe32(idx, crc32(bytes.data(), bytes.size()));
    putLe32(idx, count);
    idx += entries;
    putLe32(idx, crc32(idx.data(), idx.size()));
    writeFileAtomic(indexPath(id), idx);
}

std::size_t
SegmentStore::servedRecords() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t n = 0;
    for (const auto &[hash, vec] : byHash)
        n += vec.size();
    return n;
}

void
SegmentStore::collectLive(std::vector<StoreRecord> &live,
                          std::size_t *framesSeen,
                          std::size_t *corruptionEvents) const
{
    std::map<LiveKey, std::size_t> where;
    for (const auto &seg : listSegments()) {
        std::string bytes;
        if (!readFileBytes(segmentPath(seg.id), bytes))
            continue;
        scanFrames(
            bytes,
            [&](std::uint64_t, std::uint32_t, const StoreRecord &rec) {
                if (framesSeen)
                    ++*framesSeen;
                const LiveKey key{rec.canonical, rec.seed};
                const auto it = where.find(key);
                if (it != where.end()) {
                    live[it->second] = rec; // newest wins, stable slot
                } else {
                    where.emplace(key, live.size());
                    live.push_back(rec);
                }
            },
            [&](std::uint64_t, std::uint64_t, const std::string &) {
                if (corruptionEvents)
                    ++*corruptionEvents;
            });
    }
}

void
SegmentStore::forEachLive(
    const std::function<void(const StoreRecord &)> &fn) const
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<StoreRecord> live;
    collectLive(live, nullptr, nullptr);
    for (const auto &rec : live)
        fn(rec);
}

CompactionReport
SegmentStore::compact()
{
    std::lock_guard<std::mutex> lock(mutex);
    return compactLocked();
}

CompactionReport
SegmentStore::compactLocked()
{
    CompactionReport report;
    if (!enabled())
        return report;
    if (config.readOnly)
        fatalf("cannot compact read-only store '", root, "'");

    // Quiesce the active segment so the scan sees complete bytes.
    if (activeFd >= 0) {
        fsyncFd(activeFd);
        fileClose(activeFd);
        activeFd = -1;
        activeId = 0;
        activeBytes = 0;
    }

    const auto before = listSegments();
    report.segmentsBefore = before.size();
    for (const auto &seg : before)
        report.bytesBefore += seg.bytes;

    std::vector<StoreRecord> live;
    collectLive(live, &report.framesBefore, &report.corruptionEvents);
    report.recordsAfter = live.size();

    const std::uint32_t newId =
        before.empty() ? nextId : before.back().id + 1;

    // Publish protocol: write everything to a temp file, fsync it,
    // atomically rename it into place, fsync the directory — and only
    // then delete the inputs. A crash at any point leaves a store that
    // reopens to the same live record set (duplicate frames between
    // old and new segments are resolved newest-wins).
    const std::string tmp = root + "/compact.tmp";
    {
#ifndef _WIN32
        const int fd = ::open(tmp.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd < 0)
            fatalf("cannot create '", tmp, "'");
        for (const auto &rec : live) {
            const std::string frame = encodeFrame(rec);
            int err = 0;
            if (!fileWriteAll(fd, frame.data(), frame.size(), err)) {
                fileClose(fd);
                fatalf("short write to '", tmp, "': ",
                       err != 0 ? std::strerror(err)
                                : "unknown error");
            }
        }
        if (!fsyncFd(fd)) {
            fileClose(fd);
            fatalf("fsync of '", tmp, "' failed");
        }
        fileClose(fd);
#else
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        for (const auto &rec : live)
            out << encodeFrame(rec);
        if (!out)
            fatalf("short write to '", tmp, "'");
#endif
    }
    std::error_code ec;
    fs::rename(tmp, segmentPath(newId), ec);
    if (ec)
        fatalf("cannot publish compacted segment '",
               segmentPath(newId), "'");
    fsyncDir(root);
    writeIndexFor(newId);

    for (const auto &seg : before) {
        fs::remove(segmentPath(seg.id), ec);
        fs::remove(indexPath(seg.id), ec);
    }
    fsyncDir(root);

    std::error_code sec;
    report.segmentsAfter = 1;
    report.bytesAfter = fs::file_size(segmentPath(newId), sec);

    // The lazy slots pointed into deleted segments; re-register the
    // live set (all decoded already) in place of the whole map.
    byHash.clear();
    for (const auto &rec : live) {
        Slot slot;
        slot.seed = rec.seed;
        slot.loaded = true;
        slot.canonical = rec.canonical;
        slot.result = rec.result;
        registerSlot(rec.hash, std::move(slot));
    }
    nextId = newId + 1;

    auto &reg = obs::metrics();
    reg.counter("store.compactions").add(1);
    if (report.bytesBefore > report.bytesAfter) {
        reg.counter("store.bytes_reclaimed")
            .add(report.bytesBefore - report.bytesAfter);
    }
    return report;
}

FsckReport
SegmentStore::fsck(bool repair)
{
    std::lock_guard<std::mutex> lock(mutex);
    FsckReport report;
    if (!enabled())
        return report;
    if (repair && config.readOnly)
        fatalf("cannot repair read-only store '", root, "'");

    if (activeFd >= 0)
        flushLocked(true);

    const auto segs = listSegments();
    report.segments = segs.size();
    const std::uint32_t maxId = segs.empty() ? 0 : segs.back().id;
    std::map<LiveKey, bool> seen;
    std::vector<std::pair<std::uint32_t, std::string>> segBytes;

    for (const auto &seg : segs) {
        std::string bytes;
        if (!readFileBytes(segmentPath(seg.id), bytes)) {
            report.findings.push_back(
                {seg.id, 0, seg.bytes, "unreadable segment"});
            continue;
        }
        scanFrames(
            bytes,
            [&](std::uint64_t, std::uint32_t, const StoreRecord &rec) {
                ++report.intactFrames;
                seen[{rec.canonical, rec.seed}] = true;
            },
            [&](std::uint64_t offset, std::uint64_t count,
                const std::string &reason) {
                report.findings.push_back(
                    {seg.id, offset, count, reason});
            });
        // Sidecar audit: every sealed (non-final) segment must carry an
        // index that matches its bytes; the final segment may be active
        // (no index yet), but a *present* index must still match.
        const bool hasIndex = fs::exists(indexPath(seg.id));
        if (hasIndex || seg.id != maxId || activeFd < 0) {
            // Validate by attempting an index load with registration
            // disabled — reuse the strict reader.
            StoreConfig saved = config;
            config.serveExisting = false;
            const std::size_t indexedBefore = opened.indexedSegments;
            const bool valid = hasIndex && loadViaIndex(seg);
            opened.indexedSegments = indexedBefore;
            config = saved;
            if (!valid && (hasIndex || seg.id != maxId))
                ++report.staleIndexes;
        }
        if (repair)
            segBytes.emplace_back(seg.id, std::move(bytes));
    }
    report.liveRecords = seen.size();

    if (repair && (!report.findings.empty() || report.staleIndexes > 0)) {
        // Preserve the corrupt bytes as evidence files before the
        // compaction rewrites the segments without them.
        for (const auto &finding : report.findings) {
            const auto it = std::find_if(
                segBytes.begin(), segBytes.end(),
                [&](const auto &p) { return p.first == finding.segment; });
            if (it == segBytes.end())
                continue;
            char name[64];
            std::snprintf(name, sizeof(name),
                          "quarantine-seg%06u-%012llu.bin",
                          finding.segment,
                          static_cast<unsigned long long>(
                              finding.offset));
            writeFileAtomic(
                root + "/" + name,
                it->second.substr(
                    static_cast<std::size_t>(finding.offset),
                    static_cast<std::size_t>(finding.bytes)));
            ++report.quarantinedFiles;
        }
        compactLocked();
        report.repaired = true;
    }
    return report;
}

} // namespace eh::explore
