#include "explore/threadpool.hh"

#include <cstdlib>

#include "obs/trace.hh"
#include "util/panic.hh"

namespace eh::explore {

unsigned
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("EH_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned jobs)
    : workerCount(jobs > 0 ? jobs : defaultJobs())
{
    perWorker.reserve(workerCount);
    for (unsigned i = 0; i < workerCount; ++i)
        perWorker.push_back(std::make_unique<Worker>());
    threads.reserve(workerCount);
    for (unsigned i = 0; i < workerCount; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(batchMutex);
        shuttingDown = true;
    }
    batchStart.notify_all();
    for (auto &t : threads)
        t.join();
}

void
ThreadPool::forEach(std::size_t count,
                    const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(errorMutex);
        firstError = nullptr;
        errorCount = 0;
    }
    std::unique_lock<std::mutex> lock(batchMutex);
    // Entry barrier: a worker that woke up late for the *previous*
    // epoch may still be scanning the deques with that epoch's (now
    // cleared) body pointer; wait for every such straggler to park
    // before dealing new tasks it could otherwise steal.
    batchDone.wait(lock, [this] { return activeWorkers == 0; });
    // Deal tasks round-robin; workers are parked, so their deques are
    // safe to fill, but take the per-worker locks anyway to publish the
    // writes to the stealing loops.
    for (unsigned w = 0; w < workerCount; ++w) {
        std::lock_guard<std::mutex> wlock(perWorker[w]->mutex);
        perWorker[w]->stats = WorkerStats{};
        for (std::size_t i = w; i < count; i += workerCount)
            perWorker[w]->tasks.push_back(i);
    }
    remaining.store(count, std::memory_order_release);
    batchBody = &body;
    ++epoch;
    batchStart.notify_all();
    // Wait for the tasks to drain AND every participating worker to
    // park: a lagging worker must never see the next batch's deques
    // while still holding this batch's body pointer.
    batchDone.wait(lock, [this] {
        return remaining.load(std::memory_order_acquire) == 0 &&
               activeWorkers == 0;
    });
    batchBody = nullptr;

    std::exception_ptr err;
    std::size_t errors = 0;
    {
        std::lock_guard<std::mutex> elock(errorMutex);
        err = firstError;
        errors = errorCount;
    }
    if (!err)
        return;
    if (errors <= 1)
        std::rethrow_exception(err);
    // Several tasks threw; the caller sees the first error verbatim
    // plus an honest count of the rest instead of silent swallowing.
    try {
        std::rethrow_exception(err);
    } catch (const std::exception &e) {
        throw FatalError(detail::concat(
            e.what(), " (+", errors - 1, " more task error",
            errors == 2 ? "" : "s", " suppressed)"));
    } catch (...) {
        throw FatalError(detail::concat(
            "task threw a non-standard exception (+", errors - 1,
            " more task error", errors == 2 ? "" : "s", " suppressed)"));
    }
}

bool
ThreadPool::takeTask(unsigned id, std::size_t &task)
{
    Worker &own = *perWorker[id];
    {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = own.tasks.back();
            own.tasks.pop_back();
            ++own.stats.executed;
            return true;
        }
    }
    // Own deque dry: steal the oldest task from the first victim that
    // has one, scanning from our right-hand neighbour for fairness. At
    // most one deque mutex is held at a time (the own-stats update below
    // re-locks after the victim lock is released) so steal chains cannot
    // deadlock on lock order.
    for (unsigned step = 1; step < workerCount; ++step) {
        Worker &victim = *perWorker[(id + step) % workerCount];
        bool stolen = false;
        {
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = victim.tasks.front();
                victim.tasks.pop_front();
                stolen = true;
            }
        }
        if (stolen) {
            {
                std::lock_guard<std::mutex> lock(own.mutex);
                ++own.stats.executed;
                ++own.stats.steals;
            }
            if (obs::traceEnabled(obs::Category::Pool)) {
                obs::trace().instant(
                    obs::Category::Pool, "steal",
                    {{"task", static_cast<double>(task)},
                     {"victim", static_cast<double>(
                                    (id + step) % workerCount)}});
            }
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned id)
{
    // Name the wall track up front so a trace enabled mid-run still
    // shows "worker-N" rows (registering is idempotent and cheap).
    obs::trace().setThreadName("worker-" + std::to_string(id));
    std::uint64_t seenEpoch = 0;
    for (;;) {
        const std::function<void(std::size_t)> *body = nullptr;
        {
            std::unique_lock<std::mutex> lock(batchMutex);
            batchStart.wait(lock, [this, seenEpoch] {
                return shuttingDown || epoch != seenEpoch;
            });
            if (shuttingDown)
                return;
            seenEpoch = epoch;
            body = batchBody;
            ++activeWorkers;
        }
        // Tasks are only enqueued before the epoch bump, so once every
        // deque reads empty this worker is done with the batch.
        std::size_t task = 0;
        while (takeTask(id, task)) {
            try {
                (*body)(task);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> elock(errorMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                    ++errorCount;
                }
                std::lock_guard<std::mutex> wlock(perWorker[id]->mutex);
                ++perWorker[id]->stats.errors;
            }
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
        {
            std::lock_guard<std::mutex> lock(batchMutex);
            if (--activeWorkers == 0)
                batchDone.notify_all();
        }
    }
}

std::vector<WorkerStats>
ThreadPool::workerStats() const
{
    std::vector<WorkerStats> out;
    out.reserve(workerCount);
    for (const auto &w : perWorker) {
        std::lock_guard<std::mutex> lock(w->mutex);
        out.push_back(w->stats);
    }
    return out;
}

} // namespace eh::explore
