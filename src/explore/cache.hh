/**
 * @file
 * Content-addressed result cache for exploration campaigns. Every
 * evaluated job is stored in memory and appended to the durable
 * segmented result store (explore/store.hh, docs/STORAGE.md) keyed by
 * the job's content hash, canonical spec string, and the campaign seed
 * it ran under. Re-running a campaign after a crash, or after editing
 * one corner of the grid, therefore only executes the cells whose specs
 * actually changed: everything else is served from disk. Corruption
 * anywhere in the store — a torn tail from a killed run, flipped bits,
 * foreign garbage — is quarantined frame-by-frame on load, so a crashed
 * campaign always resumes cleanly and intact records are never lost.
 *
 * Stores written by older builds as `<name>.jsonl` are migrated into
 * the segmented format transparently on first open (the JSONL file is
 * kept, renamed to `<name>.jsonl.migrated`). `eh_cachectl` converts in
 * both directions explicitly.
 */

#ifndef EH_EXPLORE_CACHE_HH
#define EH_EXPLORE_CACHE_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "explore/job.hh"
#include "explore/store.hh"

namespace eh::explore {

/**
 * Default cache directory: $EH_RESULTS_DIR/cache (or results/cache),
 * created on first use. Safe to call from multiple threads.
 */
std::string defaultCacheDir();

/**
 * The JSONL record layout version this build reads (during migration
 * and `eh_cachectl import-jsonl`) and writes (`export-jsonl`). A legacy
 * store whose records carry a different version is rejected at load
 * with a clear message (delete the file or pass fresh=true) instead of
 * being silently decoded through a stale layout.
 */
constexpr int cacheSchemaVersion = 2;

/**
 * Campaign-facing facade over the segmented result store. Thread-safe:
 * lookups and inserts may come from any campaign worker.
 */
class ResultCache
{
  public:
    /**
     * Open (or create) the store at @p dir/@p name.ehc/ and register
     * every intact record. A legacy @p dir/@p name.jsonl store is
     * migrated in (then renamed `.jsonl.migrated`) unless @p fresh. An
     * empty @p dir disables persistence (memory-only cache). @p fresh
     * ignores existing records (they are preserved on disk; new results
     * are still appended).
     * @param fsync_every fsync the active segment every N appends; 0
     *        defers fsync to seal/close; -1 reads $EH_CACHE_FSYNC
     *        (default 0). Acknowledged records survive a process kill
     *        either way; this bounds the *power-loss* window.
     */
    ResultCache(const std::string &dir, const std::string &name,
                bool fresh = false, int fsync_every = -1);

    /** Memory-only cache (no directory, nothing persisted). */
    ResultCache();

    /**
     * Look up @p spec as evaluated under campaign @p seed. Returns true
     * and fills @p out on a hit. A hash collision with a different
     * canonical spec counts as a miss, and so does a record written
     * under a different campaign seed — stochastic jobs draw their
     * randomness from (seed, spec), so the seed is part of identity.
     */
    bool lookup(const JobSpec &spec, std::uint64_t seed,
                JobResult &out) const;

    /** Insert (and persist, when enabled) the result of @p spec. */
    void store(const JobSpec &spec, std::uint64_t seed,
               const JobResult &result);

    /** Records loaded from disk at construction (incl. migrated). */
    std::size_t loadedRecords() const { return loaded; }

    /** Legacy JSONL records migrated into the store at construction. */
    std::size_t migratedRecords() const { return migrated; }

    /** Record slots currently held in memory. */
    std::size_t size() const;

    /** Store directory (`<dir>/<name>.ehc`); empty for memory-only. */
    const std::string &path() const { return filePath; }

    /** The backing segmented store (tools, tests). */
    SegmentStore &segments() { return *segStore; }
    const SegmentStore &segments() const { return *segStore; }

    /**
     * Serialize one record as a v2 JSON line (the legacy/interchange
     * format read by migration and written by `export-jsonl`).
     */
    static std::string encodeRecord(const JobSpec &spec,
                                    std::uint64_t seed,
                                    const JobResult &result);

    /** Same, from raw record parts (no JobSpec reconstruction). */
    static std::string encodeRecordRaw(const std::string &canonical,
                                       std::uint64_t hash,
                                       std::uint64_t seed,
                                       const JobResult &result);

    /**
     * Parse one JSONL line. Returns false on malformed/torn input.
     * @param canonical_out canonical spec string of the record
     * @param hash_out      content hash of the record
     * @param seed_out      campaign seed the record was computed under
     * @param result_out    decoded result fields
     */
    static bool decodeRecord(const std::string &line,
                             std::string &canonical_out,
                             std::uint64_t &hash_out,
                             std::uint64_t &seed_out,
                             JobResult &result_out);

    /**
     * Schema version claimed by one JSONL line, or -1 when the line is
     * not even the prefix of a record (torn tail, foreign garbage).
     * Used to distinguish "corrupt, skip" from "stale layout, reject".
     */
    static int recordSchemaVersion(const std::string &line);

  private:
    void migrateLegacy(const std::string &legacy_path);

    std::unique_ptr<SegmentStore> segStore;
    std::string filePath;
    std::size_t loaded = 0;
    std::size_t migrated = 0;
};

/**
 * Persisted strike list for repeatedly failing cells. Every final
 * (post-retry) job failure or timeout appends one line — the cell's
 * canonical spec, CRC-framed (`q2 <crc32> <canonical>`) — to
 * `<dir>/<name>.quarantine`; a cell whose accumulated strike count
 * reaches the limit is *poisoned* and skipped by subsequent campaigns
 * (status Quarantined) unless they opt into retrying failures. Keyed by
 * spec alone, not seed: a cell that crashes the evaluator is
 * overwhelmingly a deterministic property of its parameters.
 *
 * Loading verifies each framed line's CRC, so a torn tail or corrupt
 * bytes are skipped with a counted warning instead of miscounting
 * strikes against a phantom cell. Unframed lines from older builds
 * still count (backward compatible). Thread-safe.
 */
class QuarantineLog
{
  public:
    /** Disabled log: nothing is poisoned, failures are not recorded. */
    QuarantineLog();

    /**
     * Open (or create) `<dir>/<name>.quarantine` and load the strike
     * counts. An empty @p dir or a zero @p strike_limit disables the
     * log entirely.
     */
    QuarantineLog(const std::string &dir, const std::string &name,
                  unsigned strike_limit);

    /** Strikes recorded against @p spec across all campaigns so far. */
    unsigned strikes(const JobSpec &spec) const;

    /** True when @p spec has reached the strike limit. */
    bool poisoned(const JobSpec &spec) const;

    /** Record one final failure of @p spec (appends + counts). */
    void recordFailure(const JobSpec &spec);

    /**
     * Canonical-string variants of strikes/poisoned/recordFailure for
     * callers that hold specs in wire form (the exploration broker,
     * docs/SERVICE.md) — identical semantics, no JobSpec rebuild.
     */
    unsigned strikesCanonical(const std::string &canonical) const;
    bool poisonedCanonical(const std::string &canonical) const;
    void recordFailureCanonical(const std::string &canonical);

    /** Strike limit (0 = disabled). */
    unsigned strikeLimit() const { return limit; }

    /** Cells currently at or past the limit. */
    std::size_t poisonedCount() const;

    /** Corrupt/torn lines skipped (not counted as strikes) at load. */
    std::size_t skippedLines() const { return skipped; }

    /** Full path of the backing file; empty when disabled. */
    const std::string &path() const { return filePath; }

  private:
    mutable std::mutex mutex;
    std::unordered_map<std::string, unsigned> counts;
    std::ofstream appender;
    std::string filePath;
    unsigned limit = 0;
    std::size_t skipped = 0;
};

} // namespace eh::explore

#endif // EH_EXPLORE_CACHE_HH
