/**
 * @file
 * The exploration engine's built-in task kinds: the simulated-hardware
 * validation runs (Figs 5–7), the Clank characterizations (Figs 8–9),
 * fault-tolerance sweep points, NVM-wear points, and pure analytic
 * EH-model evaluations. This is the physics that used to live in
 * bench/support.cc, hoisted into the library so benches, tests and the
 * eh_explore CLI all evaluate grid cells through one engine.
 *
 * Each kind is exposed two ways: a typed entry point (runValidation,
 * runClank, ...) for direct calls, and the evaluateJob() dispatcher that
 * maps a JobSpec onto the same code for campaign execution.
 */

#ifndef EH_EXPLORE_TASKS_HH
#define EH_EXPLORE_TASKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "explore/job.hh"
#include "util/random.hh"

namespace eh::explore {

/** Outcome of one workload/policy validation run (Figs 6–7). */
struct ValidationRun
{
    std::string workload;
    std::string policy;
    double measuredProgress = 0.0;
    double predictedProgress = 0.0;
    double relativeError = 0.0;
    double meanTauB = 0.0;
    double meanTauD = 0.0;
    double meanAlphaB = 0.0;
    double optimalTauB = 0.0; ///< Equation 9 at the calibrated params
    bool finished = false;
    std::string outcome;      ///< sim::outcomeName() classification
};

/**
 * Run one Table II workload under a named policy ("hibernus",
 * "hibernus++", "mementos", "dino") on the simulated MSP430-class
 * platform, then calibrate the EH model from the observed behaviour and
 * score the prediction (the Section V-A methodology).
 *
 * @param periods_budget_divisor The period budget is the uninterrupted
 *        run's energy divided by this, floored at a viable minimum.
 */
ValidationRun runValidation(const std::string &workload,
                            const std::string &policy,
                            double periods_budget_divisor = 6.0);

/** One benchmark's Clank characterization on one voltage trace. */
struct ClankCharacterization
{
    std::string workload;
    std::string trace;
    double tauBMean = 0.0;
    double tauBSem = 0.0;
    double tauDMean = 0.0;
    double tauDSem = 0.0;
    double alphaBMean = 0.0;
    std::uint64_t backups = 0;
    std::uint64_t violations = 0;
    std::uint64_t watchdogs = 0;
    std::uint64_t overflows = 0;
    bool finished = false;
    std::string outcome; ///< sim::outcomeName() classification
};

/**
 * Run one MiBench-like workload under Clank on a harvested supply driven
 * by @p trace_index (0 = spiky, 1 = ramp, 2 = multi-peak; the Section
 * V-B setup: 8-entry buffers, 8000-cycle watchdog, Cortex-M0+ costs).
 */
ClankCharacterization runClank(const std::string &workload,
                               int trace_index,
                               std::uint64_t watchdog_cycles = 8000);

/** Names of the three synthetic RF traces, in index order. */
std::vector<std::string> traceNames();

/** One seeded fault-injection run of a workload/policy cell. */
struct FaultRun
{
    bool finished = false;
    bool correct = false; ///< finished with exact reference results
    double progress = 0.0;
    std::uint64_t corruptionsDetected = 0;
    std::uint64_t slotFallbacks = 0;
    std::uint64_t restartsFromScratch = 0;
    std::uint64_t bitFlips = 0;
    std::string outcome; ///< sim::outcomeName() classification
};

/**
 * Run @p workload under @p policy ("dino", "clank", "nvp") with
 * wear-driven NVM bit errors at @p rate (plus proportional targeted
 * checkpoint/selector corruption, as in the fault-tolerance ablation).
 * All stochastic fault draws derive from @p plan_seed.
 */
FaultRun runFaultPoint(const std::string &workload,
                       const std::string &policy, double rate,
                       std::uint64_t plan_seed);

/** NVM write traffic of one workload/policy cell (wear ablation). */
struct WearRun
{
    double bytesPerCommittedInstr = 0.0;
    double progress = 0.0;
    std::uint64_t totalWritten = 0;
    bool finished = false;
    std::string outcome; ///< sim::outcomeName() classification
};

/** Run @p workload under @p policy ("clank", "ratchet", "nvp"). */
WearRun runWearPoint(const std::string &workload,
                     const std::string &policy);

/**
 * Evaluate one campaign job. Dispatches on spec.kind():
 *
 *  - "validation": workload, policy, [divisor]
 *  - "clank":      workload, trace, [watchdog]
 *  - "fault":      workload, policy, rate, cell (the seed sub-stream
 *                  index; the plan seed is drawn from @p rng)
 *  - "wear":       workload, policy
 *  - "model":      [preset] plus any Table I override (tauB, E, eps,
 *                  epsC, sigmaB, OmegaB, AB, alphaB, sigmaR, OmegaR,
 *                  AR, alphaR) — analytic, no simulation
 *
 * @throws FatalError on an unknown kind or missing parameter.
 */
JobResult evaluateJob(const JobSpec &spec, Rng &rng);

} // namespace eh::explore

#endif // EH_EXPLORE_TASKS_HH
