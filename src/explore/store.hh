/**
 * @file
 * Durable segmented result store for exploration campaigns — the
 * storage layer the sharded exploration service will sit on
 * (docs/STORAGE.md). Results are CRC-32-framed binary records appended
 * to size-bounded segment files inside a `<name>.ehc/` directory; a
 * sealed segment gets a sidecar hash index so warm loads register its
 * records without re-parsing every frame. The design applies the same
 * crash-consistency discipline as the NVM checkpoint slots in
 * `src/fault/`:
 *
 *  - every frame carries a CRC over its payload, so corruption anywhere
 *    (torn tail, flipped bits mid-file, foreign garbage) is *detected*
 *    and the scanner resynchronizes on the next frame magic — bad bytes
 *    are quarantined (counted, skippable, recoverable by `eh_cachectl`),
 *    never silently decoded and never taken down with the good ones;
 *  - appends go through write(2) with an explicit fsync policy
 *    (EH_CACHE_FSYNC), so an acknowledged record survives kill -9 and
 *    the power-loss window is bounded;
 *  - segment seals and compaction output commit via write-to-temp +
 *    fsync + atomic rename, so a crash leaves either the old state or
 *    the complete new state;
 *  - a LOCK file (flock) makes two processes sharing one store fail
 *    loudly instead of interleaving appends.
 *
 * Compaction merges all segments into one, drops superseded duplicates
 * (newest record wins) and corrupt bytes, and is idempotent: re-running
 * it — or crashing anywhere inside it — never loses a live record.
 */

#ifndef EH_EXPLORE_STORE_HH
#define EH_EXPLORE_STORE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "explore/job.hh"
#include "util/panic.hh"

namespace eh::explore {

/**
 * The store's append path hit an I/O error it can name precisely —
 * today ENOSPC/EDQUOT on the active segment. Thrown instead of the
 * generic fatal so callers (the broker, campaign drivers) and users
 * see *which* file needs *how many* bytes at the moment of failure,
 * not a scan-resync surprise on the next open. Derives FatalError, so
 * the uniform exit-code policy (docs/ROBUSTNESS.md) still applies.
 */
class StoreError : public FatalError
{
  public:
    explicit StoreError(const std::string &msg) : FatalError(msg) {}
};

/** Frame magic "EHF1" (little-endian u32) preceding every record. */
constexpr std::uint32_t storeFrameMagic = 0x31464845u;

/** Index sidecar magic "EHI1". */
constexpr std::uint32_t storeIndexMagic = 0x31494845u;

/** Bytes of frame header: magic, payload length, payload CRC-32. */
constexpr std::size_t storeFrameHeaderBytes = 12;

/** Upper bound on one frame's payload (corrupt-length guard). */
constexpr std::size_t storeMaxPayloadBytes = 64u << 20;

/** One stored result record. */
struct StoreRecord
{
    std::string canonical;  ///< canonical JobSpec string (identity)
    std::uint64_t hash = 0; ///< content hash of canonical
    std::uint64_t seed = 0; ///< campaign seed the result ran under
    JobResult result;
};

/** Store tuning knobs (see docs/STORAGE.md). */
struct StoreConfig
{
    /** Seal the active segment once it exceeds this many bytes. */
    std::size_t maxSegmentBytes = 8u << 20;

    /**
     * fsync the active segment every N appends; 0 defers fsync to seal
     * and close. Acknowledged records survive a process kill either
     * way (appends use write(2), not user-space buffering); this knob
     * bounds the *power-loss* window.
     */
    unsigned fsyncEvery = 0;

    /** Open without an appender and take a shared (not exclusive) lock. */
    bool readOnly = false;

    /** When false, existing records are not registered (fresh runs). */
    bool serveExisting = true;
};

/** What open() found on disk. */
struct StoreOpenStats
{
    std::size_t segments = 0;
    std::size_t records = 0;         ///< record slots registered
    std::uint64_t bytes = 0;         ///< total segment bytes
    std::size_t corruptionEvents = 0;///< quarantined byte ranges
    std::uint64_t corruptBytes = 0;
    std::size_t indexedSegments = 0; ///< loaded via sidecar index
};

/** Outcome of one compaction pass. */
struct CompactionReport
{
    std::size_t segmentsBefore = 0, segmentsAfter = 0;
    std::uint64_t bytesBefore = 0, bytesAfter = 0;
    std::size_t framesBefore = 0, recordsAfter = 0;
    std::size_t corruptionEvents = 0;
};

/** One corrupt byte range found by fsck (or the open scan). */
struct StoreFinding
{
    std::uint32_t segment = 0;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::string reason;
};

/** Deep-scan verification report. */
struct FsckReport
{
    std::size_t segments = 0;
    std::size_t intactFrames = 0;
    std::size_t liveRecords = 0;      ///< after newest-wins dedup
    std::vector<StoreFinding> findings;
    std::size_t staleIndexes = 0;     ///< sealed segments whose sidecar
                                      ///< is missing or mismatching
    std::size_t quarantinedFiles = 0; ///< written by repair
    bool repaired = false;

    /** No corruption and every sealed segment correctly indexed. */
    bool clean() const { return findings.empty() && staleIndexes == 0; }
};

/**
 * The segmented store. An empty directory path constructs a memory-only
 * store (nothing persisted, no locking) with the same lookup/append
 * semantics. Thread-safe; one mutex serializes map and file access.
 */
class SegmentStore
{
  public:
    /** Memory-only store. */
    SegmentStore();

    /**
     * Open (or create) the store directory at @p dir (conventionally
     * `<cache-dir>/<name>.ehc`). Registers every intact record from
     * every segment — via the sidecar index where one is valid, by
     * frame scan otherwise — and quarantines (skips + counts) corrupt
     * byte ranges.
     * @throws FatalError when another process holds the store lock, or
     *         on unrecoverable I/O errors.
     */
    explicit SegmentStore(const std::string &dir, StoreConfig cfg = {});

    ~SegmentStore();
    SegmentStore(const SegmentStore &) = delete;
    SegmentStore &operator=(const SegmentStore &) = delete;

    /** True when backed by disk. */
    bool enabled() const { return !root.empty(); }

    /** Store directory; empty for memory-only stores. */
    const std::string &path() const { return root; }

    /**
     * Find the newest record matching (canonical, hash, seed). Lazy
     * (index-registered) candidates are read from disk on first touch
     * and kept decoded.
     */
    bool lookup(const std::string &canonical, std::uint64_t hash,
                std::uint64_t seed, JobResult &out) const;

    /** Append one record (durable per the fsync policy) and serve it. */
    void append(const StoreRecord &record);

    /** Force the active segment's bytes to disk (fsync when @p sync). */
    void flush(bool sync);

    /**
     * Seal the active segment: fsync it, publish its sidecar index via
     * atomic rename, and direct future appends to a new segment. No-op
     * without an active segment.
     */
    void seal();

    /**
     * Merge every segment into one compacted, indexed segment, dropping
     * superseded duplicates (newest wins) and corrupt bytes. Crash-safe
     * and idempotent: the compacted segment is published by atomic
     * rename *before* the inputs are deleted, and reopening mid-crash
     * state converges to the same live set.
     */
    CompactionReport compact();

    /**
     * Deep-scan every segment frame-by-frame and verify sidecar
     * indexes. With @p repair: save corrupt byte ranges as
     * `quarantine-*.bin` evidence files, then compact (which drops the
     * bad bytes and rebuilds indexes).
     */
    FsckReport fsck(bool repair);

    /**
     * Visit the live records (newest-wins deduped, in stable
     * first-occurrence order) by scanning the segments on disk.
     */
    void forEachLive(
        const std::function<void(const StoreRecord &)> &fn) const;

    /** Slots registered at open (0 after a fresh open). */
    const StoreOpenStats &openStats() const { return opened; }

    /** Record slots currently served (open + appends; dupes possible). */
    std::size_t servedRecords() const;

    // --- Format helpers (tests, tools, the crash harness) ------------

    /** Serialize one record payload (no frame header). */
    static std::string encodePayload(const StoreRecord &record);

    /** Parse one payload; false on malformed/unknown-version input. */
    static bool decodePayload(const std::string &payload,
                              StoreRecord &out);

    /** Full frame bytes: header (magic, length, CRC) + payload. */
    static std::string encodeFrame(const StoreRecord &record);

    /**
     * Walk @p bytes as a segment: @p onRecord for each intact frame,
     * @p onCorruption for each quarantined byte range. Resynchronizes
     * on the next frame magic after any damage.
     */
    static void scanFrames(
        const std::string &bytes,
        const std::function<void(std::uint64_t offset,
                                 std::uint32_t frameLen,
                                 const StoreRecord &)> &onRecord,
        const std::function<void(std::uint64_t offset,
                                 std::uint64_t count,
                                 const std::string &reason)>
            &onCorruption);

    /** Segment / index sidecar file name for @p id ("seg-000001.…"). */
    static std::string segmentName(std::uint32_t id);
    static std::string indexName(std::uint32_t id);

  private:
    struct Slot
    {
        std::uint64_t seed = 0;
        bool loaded = false;
        bool dead = false;        ///< lazy slot that failed to read
        std::string canonical;    ///< loaded only
        JobResult result;         ///< loaded only
        std::uint32_t segment = 0;///< lazy only
        std::uint64_t offset = 0; ///< lazy only
        std::uint32_t frameLen = 0;
    };

    struct SegmentInfo
    {
        std::uint32_t id = 0;
        std::uint64_t bytes = 0;
    };

    void openOnDisk(StoreConfig cfg);
    void lockStore(bool shared);
    std::vector<SegmentInfo> listSegments() const;
    bool loadViaIndex(const SegmentInfo &seg);
    void scanSegmentFile(const SegmentInfo &seg, bool registerSlots);
    void registerSlot(std::uint64_t hash, Slot slot);
    void openActive(std::uint32_t id, std::uint64_t existingBytes);
    void appendLocked(const StoreRecord &record);
    void flushLocked(bool sync);
    void sealLocked();
    bool readFrame(const Slot &slot, StoreRecord &out) const;
    std::string segmentPath(std::uint32_t id) const;
    std::string indexPath(std::uint32_t id) const;
    void writeIndexFor(std::uint32_t id);
    CompactionReport compactLocked();
    void collectLive(std::vector<StoreRecord> &live,
                     std::size_t *framesSeen,
                     std::size_t *corruptionEvents) const;

    mutable std::mutex mutex;
    std::string root; ///< store directory; empty = memory-only
    StoreConfig config;
    StoreOpenStats opened;

    mutable std::unordered_map<std::uint64_t, std::vector<Slot>> byHash;

    int lockFd = -1;
    int activeFd = -1;
    std::uint32_t activeId = 0; ///< 0 = no active segment
    std::uint64_t activeBytes = 0;
    unsigned appendsSinceSync = 0;
    std::uint32_t nextId = 1;
};

} // namespace eh::explore

#endif // EH_EXPLORE_STORE_HH
