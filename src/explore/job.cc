#include "explore/job.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/hash.hh"
#include "util/panic.hh"

namespace eh::explore {

namespace {

/** Percent-escape the canonical-form metacharacters. */
std::string
escapeCanonical(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        if (c == '%' || c == '|' || c == '=' || c == '\n') {
            static const char digits[] = "0123456789abcdef";
            out += '%';
            out += digits[(static_cast<unsigned char>(c) >> 4) & 0xf];
            out += digits[static_cast<unsigned char>(c) & 0xf];
        } else {
            out += c;
        }
    }
    return out;
}

/** Undo escapeCanonical(); false on a malformed %xx escape. */
bool
unescapeCanonical(const std::string &raw, std::string &out)
{
    out.clear();
    out.reserve(raw.size());
    auto hexVal = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1; // escapeCanonical emits lowercase only
    };
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i] != '%') {
            out += raw[i];
            continue;
        }
        if (i + 2 >= raw.size())
            return false;
        const int hi = hexVal(raw[i + 1]);
        const int lo = hexVal(raw[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
    }
    return true;
}

double
parseDoubleField(const std::string &context, const std::string &key,
                 const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatalf(context, " field '", key, "' is not numeric: '", value,
               "'");
    return v;
}

} // namespace

std::string
formatRoundTrip(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

JobSpec &
JobSpec::set(const std::string &key, const std::string &value)
{
    const auto at = std::lower_bound(
        kv.begin(), kv.end(), key,
        [](const auto &entry, const std::string &k) {
            return entry.first < k;
        });
    if (at != kv.end() && at->first == key)
        at->second = value;
    else
        kv.insert(at, {key, value});
    return *this;
}

JobSpec &
JobSpec::set(const std::string &key, double value)
{
    return set(key, formatRoundTrip(value));
}

JobSpec &
JobSpec::set(const std::string &key, std::uint64_t value)
{
    return set(key, std::to_string(value));
}

JobSpec &
JobSpec::set(const std::string &key, int value)
{
    return set(key, std::to_string(value));
}

bool
JobSpec::has(const std::string &key) const
{
    return std::any_of(kv.begin(), kv.end(), [&](const auto &entry) {
        return entry.first == key;
    });
}

std::string
JobSpec::get(const std::string &key, const std::string &fallback) const
{
    for (const auto &[k, v] : kv) {
        if (k == key)
            return v;
    }
    return fallback;
}

double
JobSpec::getDouble(const std::string &key, double fallback) const
{
    if (!has(key))
        return fallback;
    return parseDoubleField("job spec", key, get(key));
}

std::string
JobSpec::canonical() const
{
    std::string out = escapeCanonical(taskKind);
    for (const auto &[k, v] : kv) {
        out += '|';
        out += escapeCanonical(k);
        out += '=';
        out += escapeCanonical(v);
    }
    return out;
}

bool
JobSpec::fromCanonical(const std::string &text, JobSpec &out)
{
    JobSpec spec;
    std::size_t start = 0;
    bool first = true;
    while (start <= text.size()) {
        const std::size_t bar = text.find('|', start);
        const std::string segment =
            text.substr(start, bar == std::string::npos
                                   ? std::string::npos
                                   : bar - start);
        if (first) {
            if (!unescapeCanonical(segment, spec.taskKind))
                return false;
            first = false;
        } else {
            const std::size_t eq = segment.find('=');
            if (eq == std::string::npos)
                return false;
            std::string key, value;
            if (!unescapeCanonical(segment.substr(0, eq), key) ||
                !unescapeCanonical(segment.substr(eq + 1), value)) {
                return false;
            }
            spec.set(key, value);
        }
        if (bar == std::string::npos)
            break;
        start = bar + 1;
    }
    // Round-trip check: only accept strings that *are* the canonical
    // form of the decoded spec (sorted keys, minimal escapes). Anything
    // else would alias a different cache identity than its bytes claim.
    if (spec.canonical() != text)
        return false;
    out = std::move(spec);
    return true;
}

std::uint64_t
JobSpec::hash() const
{
    return contentHash(canonical());
}

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::Failed:
        return "failed";
      case JobStatus::Timeout:
        return "timeout";
      case JobStatus::Quarantined:
        return "quarantined";
    }
    return "unknown";
}

bool
parseJobStatus(const std::string &name, JobStatus &out)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Failed,
                        JobStatus::Timeout, JobStatus::Quarantined}) {
        if (name == jobStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

JobResult &
JobResult::setStatus(JobStatus status, const std::string &error)
{
    runStatus = status;
    errorText = error;
    return *this;
}

JobResult
JobResult::failure(JobStatus status, const std::string &error)
{
    return JobResult().setStatus(status, error);
}

JobResult &
JobResult::set(const std::string &key, const std::string &value)
{
    for (auto &[k, v] : kv) {
        if (k == key) {
            v = value;
            return *this;
        }
    }
    kv.emplace_back(key, value);
    return *this;
}

JobResult &
JobResult::set(const std::string &key, double value)
{
    return set(key, formatRoundTrip(value));
}

JobResult &
JobResult::set(const std::string &key, std::uint64_t value)
{
    return set(key, std::to_string(value));
}

JobResult &
JobResult::set(const std::string &key, bool value)
{
    return set(key, std::string(value ? "1" : "0"));
}

bool
JobResult::has(const std::string &key) const
{
    return std::any_of(kv.begin(), kv.end(), [&](const auto &entry) {
        return entry.first == key;
    });
}

std::string
JobResult::str(const std::string &key) const
{
    for (const auto &[k, v] : kv) {
        if (k == key)
            return v;
    }
    return "";
}

double
JobResult::num(const std::string &key) const
{
    if (!has(key))
        fatalf("job result is missing field '", key,
               "' (stale cache entry? delete results/cache and re-run)");
    return parseDoubleField("job result", key, str(key));
}

std::uint64_t
JobResult::uint(const std::string &key) const
{
    if (!has(key))
        fatalf("job result is missing field '", key,
               "' (stale cache entry? delete results/cache and re-run)");
    const std::string value = str(key);
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatalf("job result field '", key, "' is not an integer: '",
               value, "'");
    return v;
}

} // namespace eh::explore
