/**
 * @file
 * The six Table II benchmarks used for the paper's hardware validation
 * (Section V-A), plus the Figure 5 counter program. Each factory builds
 * the assembly program and runs a C++ mirror of the same algorithm to
 * fill Workload::expected, so every run — including intermittent runs —
 * is checkable end to end.
 */

#include <algorithm>
#include <cstdint>

#include "arch/assembler.hh"
#include "arch/cpu.hh"
#include "workloads/detail.hh"
#include "workloads/workload.hh"

namespace eh::workloads {

using arch::Assembler;
using arch::Reg;

namespace {

/** Shorthand: sensor sample k as the CPU will see it. */
std::uint32_t
sensor(std::uint32_t k)
{
    return arch::Cpu::sensorValue(k);
}

} // namespace

// --------------------------------------------------------------------------
// RSA: square-and-multiply modular exponentiation, c_i = m_i^17 mod 3233.
// Checkpoint at each message boundary (a natural task granularity).
// --------------------------------------------------------------------------

Workload
makeRsa(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kMessages = 480;
    constexpr std::uint32_t kModulus = 3233; // 61 * 53
    constexpr std::uint32_t kExponent = 17;

    const auto messages =
        detail::pseudoWords(0x45A001, kMessages, kModulus - 2);
    const std::uint64_t m_base = layout.dataBase;
    const std::uint64_t out_base = layout.dataBase + kMessages * 4;

    // C++ mirror.
    std::uint32_t checksum = 0;
    for (std::uint32_t i = 0; i < kMessages; ++i) {
        std::uint32_t base = messages[i] % kModulus;
        std::uint32_t result = 1;
        std::uint32_t exp = kExponent;
        while (exp) {
            if (exp & 1)
                result = result * base % kModulus;
            base = base * base % kModulus;
            exp >>= 1;
        }
        checksum += result * (i + 1);
    }

    Assembler a("rsa");
    a.initWords(m_base, messages);
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)                                  // i
        .movi(Reg::R11, 0)                                 // checksum
        .movi(Reg::R2, static_cast<std::int32_t>(m_base))  // &m
        .movi(Reg::R3, static_cast<std::int32_t>(out_base))// &out
        .movi(Reg::R4, kMessages)
        .movi(Reg::R5, kModulus);
    a.label("outer")
        .bgeu(Reg::R1, Reg::R4, "done")
        .lsli(Reg::R10, Reg::R1, 2)
        .add(Reg::R10, Reg::R2, Reg::R10)
        .ldw(Reg::R7, Reg::R10, 0)        // m_i
        .remu(Reg::R7, Reg::R7, Reg::R5)  // base = m mod n
        .movi(Reg::R8, 1)                 // result
        .movi(Reg::R9, kExponent);        // exp
    a.label("modloop")
        .beq(Reg::R9, Reg::R0, "modexit")
        .andi(Reg::R12, Reg::R9, 1)
        .beq(Reg::R12, Reg::R0, "skipmul")
        .mul(Reg::R8, Reg::R8, Reg::R7)
        .remu(Reg::R8, Reg::R8, Reg::R5);
    a.label("skipmul")
        .mul(Reg::R7, Reg::R7, Reg::R7)
        .remu(Reg::R7, Reg::R7, Reg::R5)
        .lsri(Reg::R9, Reg::R9, 1)
        .b("modloop");
    a.label("modexit")
        .lsli(Reg::R10, Reg::R1, 2)
        .add(Reg::R10, Reg::R3, Reg::R10)
        .stw(Reg::R8, Reg::R10, 0)        // out[i] = c_i
        .addi(Reg::R12, Reg::R1, 1)
        .mul(Reg::R10, Reg::R8, Reg::R12)
        .add(Reg::R11, Reg::R11, Reg::R10) // checksum += c_i * (i+1)
        .checkpoint()
        .addi(Reg::R1, Reg::R1, 1)
        .b("outer");
    a.label("done")
        .movi(Reg::R10, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R11, Reg::R10, 0)
        .halt();

    Workload w;
    w.name = "rsa";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase};
    w.expected = {checksum};
    return w;
}

// --------------------------------------------------------------------------
// CRC: table-driven CRC-32 over 256 bytes; checkpoint every 32 bytes.
// --------------------------------------------------------------------------

Workload
makeCrc(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kLen = 4096;
    const auto table = detail::crc32Table();
    const auto input = detail::pseudoBytes(0xC4C001, kLen);
    const std::uint64_t table_base = layout.dataBase;
    const std::uint64_t buf_base = layout.dataBase + 1024;

    // C++ mirror.
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::uint8_t b : input)
        crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
    crc ^= 0xFFFFFFFFu;

    Assembler a("crc");
    a.initWords(table_base, table);
    a.initBytes(buf_base, input);
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)
        .movi(Reg::R2, static_cast<std::int32_t>(table_base))
        .movi(Reg::R3, static_cast<std::int32_t>(buf_base))
        .movi(Reg::R4, kLen)
        .movi(Reg::R5, -1); // crc = 0xFFFFFFFF
    a.label("loop")
        .bgeu(Reg::R1, Reg::R4, "done")
        .add(Reg::R8, Reg::R3, Reg::R1)
        .ldb(Reg::R6, Reg::R8, 0)
        .eor(Reg::R7, Reg::R5, Reg::R6)
        .andi(Reg::R7, Reg::R7, 255)
        .lsli(Reg::R7, Reg::R7, 2)
        .add(Reg::R7, Reg::R2, Reg::R7)
        .ldw(Reg::R7, Reg::R7, 0)
        .lsri(Reg::R5, Reg::R5, 8)
        .eor(Reg::R5, Reg::R5, Reg::R7)
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R8, Reg::R1, 31)
        .bne(Reg::R8, Reg::R0, "loop")
        .checkpoint()
        .b("loop");
    a.label("done")
        .eori(Reg::R5, Reg::R5, -1)
        .movi(Reg::R8, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R5, Reg::R8, 0)
        .halt();

    Workload w;
    w.name = "crc";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase};
    w.expected = {crc};
    return w;
}

// --------------------------------------------------------------------------
// SENSE: running statistics (sum, sum of squares, min, max) over 256 ADC
// samples; checkpoint every 16 samples.
// --------------------------------------------------------------------------

Workload
makeSense(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kSamples = 4096;

    // C++ mirror.
    std::uint32_t sum = 0, sumsq = 0;
    std::uint32_t mn = 0x7FFFFFFFu, mx = 0;
    for (std::uint32_t i = 0; i < kSamples; ++i) {
        const std::uint32_t s = sensor(i);
        sum += s;
        sumsq += s * s;
        mn = std::min(mn, s);
        mx = std::max(mx, s);
    }

    Assembler a("sense");
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)
        .movi(Reg::R2, 0)              // sum
        .movi(Reg::R3, 0)              // sumsq
        .movi(Reg::R4, 0x7FFFFFFF)     // min
        .movi(Reg::R5, 0)              // max
        .movi(Reg::R8, kSamples);
    a.label("loop")
        .bgeu(Reg::R1, Reg::R8, "done")
        .sense(Reg::R6, Reg::R1)
        .add(Reg::R2, Reg::R2, Reg::R6)
        .mul(Reg::R7, Reg::R6, Reg::R6)
        .add(Reg::R3, Reg::R3, Reg::R7)
        .bgeu(Reg::R6, Reg::R4, "skipmin")
        .mov(Reg::R4, Reg::R6);
    a.label("skipmin")
        .bgeu(Reg::R5, Reg::R6, "skipmax")
        .mov(Reg::R5, Reg::R6);
    a.label("skipmax")
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R7, Reg::R1, 15)
        .bne(Reg::R7, Reg::R0, "loop")
        .checkpoint()
        .b("loop");
    a.label("done")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R2, Reg::R9, 0)
        .stw(Reg::R3, Reg::R9, 4)
        .stw(Reg::R4, Reg::R9, 8)
        .stw(Reg::R5, Reg::R9, 12)
        .halt();

    Workload w;
    w.name = "sense";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4,
                     layout.resultBase + 8, layout.resultBase + 12};
    w.expected = {sum, sumsq, mn, mx};
    return w;
}

// --------------------------------------------------------------------------
// AR: activity recognition — per 16-sample window compute magnitude and
// jerk features, classify into 4 classes, histogram the labels.
// Checkpoint per window (variable work per checkpoint, like DINO tasks).
// --------------------------------------------------------------------------

Workload
makeAr(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kWindows = 256;
    constexpr std::uint32_t kWinLen = 16;
    constexpr std::uint32_t kMagThresh = 9600;
    constexpr std::uint32_t kJerkThresh = 640;
    const std::uint64_t hist_base = layout.dataBase;

    // C++ mirror.
    std::uint32_t hist[4] = {0, 0, 0, 0};
    for (std::uint32_t wi = 0; wi < kWindows; ++wi) {
        std::uint32_t mag = 0, jerk = 0, prev = 0;
        for (std::uint32_t k = 0; k < kWinLen; ++k) {
            const std::uint32_t s = sensor(wi * kWinLen + k);
            mag += s;
            jerk += s >= prev ? s - prev : prev - s;
            prev = s;
        }
        std::uint32_t cls = 0;
        if (mag > kMagThresh)
            cls += 1;
        if (jerk > kJerkThresh)
            cls += 2;
        ++hist[cls];
    }

    Assembler a("ar");
    a.initWords(hist_base, {0, 0, 0, 0});
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0) // window
        .movi(Reg::R9, static_cast<std::int32_t>(hist_base))
        .movi(Reg::R11, kWindows)
        .movi(Reg::R12, kWinLen);
    a.label("wloop")
        .bgeu(Reg::R1, Reg::R11, "done")
        .movi(Reg::R3, 0)  // mag
        .movi(Reg::R4, 0)  // jerk
        .movi(Reg::R5, 0)  // prev
        .movi(Reg::R2, 0); // k
    a.label("sloop")
        .bgeu(Reg::R2, Reg::R12, "wdone")
        .mul(Reg::R7, Reg::R1, Reg::R12)
        .add(Reg::R7, Reg::R7, Reg::R2)
        .sense(Reg::R6, Reg::R7)
        .add(Reg::R3, Reg::R3, Reg::R6)
        .bgeu(Reg::R6, Reg::R5, "pos")
        .sub(Reg::R7, Reg::R5, Reg::R6)
        .b("acc");
    a.label("pos")
        .sub(Reg::R7, Reg::R6, Reg::R5);
    a.label("acc")
        .add(Reg::R4, Reg::R4, Reg::R7)
        .mov(Reg::R5, Reg::R6)
        .addi(Reg::R2, Reg::R2, 1)
        .b("sloop");
    a.label("wdone")
        .movi(Reg::R10, 0)
        .movi(Reg::R7, kMagThresh)
        .bgeu(Reg::R7, Reg::R3, "c1")
        .addi(Reg::R10, Reg::R10, 1);
    a.label("c1")
        .movi(Reg::R7, kJerkThresh)
        .bgeu(Reg::R7, Reg::R4, "c2")
        .addi(Reg::R10, Reg::R10, 2);
    a.label("c2")
        .lsli(Reg::R7, Reg::R10, 2)
        .add(Reg::R7, Reg::R9, Reg::R7)
        .ldw(Reg::R8, Reg::R7, 0)
        .addi(Reg::R8, Reg::R8, 1)
        .stw(Reg::R8, Reg::R7, 0)
        .checkpoint()
        .addi(Reg::R1, Reg::R1, 1)
        .b("wloop");
    a.label("done")
        .movi(Reg::R10, static_cast<std::int32_t>(layout.resultBase))
        .ldw(Reg::R7, Reg::R9, 0)
        .stw(Reg::R7, Reg::R10, 0)
        .ldw(Reg::R7, Reg::R9, 4)
        .stw(Reg::R7, Reg::R10, 4)
        .ldw(Reg::R7, Reg::R9, 8)
        .stw(Reg::R7, Reg::R10, 8)
        .ldw(Reg::R7, Reg::R9, 12)
        .stw(Reg::R7, Reg::R10, 12)
        .halt();

    Workload w;
    w.name = "ar";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4,
                     layout.resultBase + 8, layout.resultBase + 12};
    w.expected = {hist[0], hist[1], hist[2], hist[3]};
    return w;
}

// --------------------------------------------------------------------------
// MIDI: note-event detection over an audio-derived stream; events are
// appended to a log buffer. Checkpoint every 16 samples.
// --------------------------------------------------------------------------

Workload
makeMidi(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kSamples = 4000;
    constexpr std::uint32_t kDelta = 4;
    // The event log is a 128-entry ring (real loggers bound their RAM).
    const std::uint64_t out_base = layout.scratchBase;

    // C++ mirror.
    std::uint32_t last = 255, count = 0, checksum = 0;
    for (std::uint32_t i = 0; i < kSamples; ++i) {
        const std::uint32_t note = sensor(i) >> 3;
        const std::uint32_t d = note >= last ? note - last : last - note;
        if (d >= kDelta) {
            ++count;
            last = note;
            checksum += note * count;
        }
    }

    Assembler a("midi");
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)   // i
        .movi(Reg::R2, 255) // last note (sentinel)
        .movi(Reg::R3, 0)   // event count j
        .movi(Reg::R4, static_cast<std::int32_t>(out_base))
        .movi(Reg::R9, kSamples)
        .movi(Reg::R10, 0); // checksum
    a.label("loop")
        .bgeu(Reg::R1, Reg::R9, "done")
        .sense(Reg::R5, Reg::R1)
        .lsri(Reg::R6, Reg::R5, 3)
        .bgeu(Reg::R6, Reg::R2, "m1")
        .sub(Reg::R7, Reg::R2, Reg::R6)
        .b("m2");
    a.label("m1")
        .sub(Reg::R7, Reg::R6, Reg::R2);
    a.label("m2")
        .movi(Reg::R8, kDelta)
        .bltu(Reg::R7, Reg::R8, "skip")
        .andi(Reg::R8, Reg::R3, 127) // ring slot
        .lsli(Reg::R8, Reg::R8, 3)
        .add(Reg::R8, Reg::R4, Reg::R8)
        .stw(Reg::R1, Reg::R8, 0) // event time
        .stw(Reg::R6, Reg::R8, 4) // event note
        .addi(Reg::R3, Reg::R3, 1)
        .mov(Reg::R2, Reg::R6)
        .mul(Reg::R7, Reg::R6, Reg::R3)
        .add(Reg::R10, Reg::R10, Reg::R7);
    a.label("skip")
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R7, Reg::R1, 15)
        .bne(Reg::R7, Reg::R0, "loop")
        .checkpoint()
        .b("loop");
    a.label("done")
        .movi(Reg::R8, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R3, Reg::R8, 0)
        .stw(Reg::R10, Reg::R8, 4)
        .halt();

    Workload w;
    w.name = "midi";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4};
    w.expected = {count, checksum};
    return w;
}

// --------------------------------------------------------------------------
// DS: key-value histogram data logger — hash sensor readings into 64
// buckets; every 64 samples scan the table into a running log sum.
// Checkpoint per batch.
// --------------------------------------------------------------------------

Workload
makeDs(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kSamples = 2048;
    constexpr std::uint32_t kBuckets = 64;
    constexpr std::uint32_t kHashMul = 2654435761u;
    const std::uint64_t hist_base = layout.dataBase;

    // C++ mirror.
    std::uint32_t hist[kBuckets] = {};
    std::uint32_t logsum = 0;
    for (std::uint32_t i = 0; i < kSamples; ++i) {
        const std::uint32_t key = (sensor(i) * kHashMul) >> 26;
        ++hist[key];
        if ((i + 1) % kBuckets == 0) {
            for (std::uint32_t k = 0; k < kBuckets; ++k)
                logsum += hist[k];
        }
    }
    std::uint32_t checksum = 0;
    for (std::uint32_t k = 0; k < kBuckets; ++k)
        checksum += hist[k] * (k + 1);

    Assembler a("ds");
    a.initWords(hist_base,
                std::vector<std::uint32_t>(kBuckets, 0));
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)
        .movi(Reg::R2, static_cast<std::int32_t>(hist_base))
        .movi(Reg::R6, kSamples)
        .movi(Reg::R7, 0)  // logsum
        .movi(Reg::R11, static_cast<std::int32_t>(kHashMul))
        .movi(Reg::R12, kBuckets);
    a.label("loop")
        .bgeu(Reg::R1, Reg::R6, "done")
        .sense(Reg::R3, Reg::R1)
        .mul(Reg::R4, Reg::R3, Reg::R11)
        .lsri(Reg::R4, Reg::R4, 26)
        .lsli(Reg::R4, Reg::R4, 2)
        .add(Reg::R4, Reg::R2, Reg::R4)
        .ldw(Reg::R5, Reg::R4, 0)
        .addi(Reg::R5, Reg::R5, 1)
        .stw(Reg::R5, Reg::R4, 0)
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R5, Reg::R1, kBuckets - 1)
        .bne(Reg::R5, Reg::R0, "loop")
        .movi(Reg::R9, 0);
    a.label("scan")
        .bgeu(Reg::R9, Reg::R12, "scand")
        .lsli(Reg::R8, Reg::R9, 2)
        .add(Reg::R8, Reg::R2, Reg::R8)
        .ldw(Reg::R8, Reg::R8, 0)
        .add(Reg::R7, Reg::R7, Reg::R8)
        .addi(Reg::R9, Reg::R9, 1)
        .b("scan");
    a.label("scand")
        .checkpoint()
        .b("loop");
    a.label("done")
        .movi(Reg::R3, 0) // checksum
        .movi(Reg::R9, 0);
    a.label("csum")
        .bgeu(Reg::R9, Reg::R12, "csumd")
        .lsli(Reg::R8, Reg::R9, 2)
        .add(Reg::R8, Reg::R2, Reg::R8)
        .ldw(Reg::R8, Reg::R8, 0)
        .addi(Reg::R5, Reg::R9, 1)
        .mul(Reg::R8, Reg::R8, Reg::R5)
        .add(Reg::R3, Reg::R3, Reg::R8)
        .addi(Reg::R9, Reg::R9, 1)
        .b("csum");
    a.label("csumd")
        .movi(Reg::R8, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R3, Reg::R8, 0)
        .stw(Reg::R7, Reg::R8, 4)
        .halt();

    Workload w;
    w.name = "ds";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4};
    w.expected = {checksum, logsum};
    return w;
}

// --------------------------------------------------------------------------
// counter: the Figure 5 validation program — an endless increment loop
// with a small circular store pattern. Never halts; runs are bounded by
// the simulator's active-period cap.
// --------------------------------------------------------------------------

Workload
makeCounter(const WorkloadLayout &layout)
{
    Assembler a("counter");
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)
        .movi(Reg::R2, static_cast<std::int32_t>(layout.dataBase));
    a.label("loop")
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R3, Reg::R1, 3)
        .lsli(Reg::R3, Reg::R3, 2)
        .add(Reg::R3, Reg::R2, Reg::R3)
        .stw(Reg::R1, Reg::R3, 0)
        .b("loop");

    Workload w;
    w.name = "counter";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    return w;
}

} // namespace eh::workloads
