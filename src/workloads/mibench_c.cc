/**
 * @file
 * MiBench-like kernels, batch C: adpcm, lzfx, patricia and susan. lzfx's
 * store-per-iteration hash-table updates reproduce the very frequent
 * Clank backups the paper observes for it (Figure 8); susan is the
 * workload behind the bit-precision case study (Figure 11).
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "arch/assembler.hh"
#include "arch/cpu.hh"
#include "workloads/detail.hh"
#include "workloads/workload.hh"

namespace eh::workloads {

using arch::Assembler;
using arch::Reg;

// --------------------------------------------------------------------------
// adpcm: IMA ADPCM encoder over 256 synthetic PCM samples. Delta codes
// are written out one per sample; predictor/index state clamps follow
// the reference algorithm.
// --------------------------------------------------------------------------

Workload
makeAdpcm(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kSamples = 1024;
    static const std::uint32_t kStepTable[89] = {
        7,     8,     9,     10,    11,    12,    13,    14,    16,
        17,    19,    21,    23,    25,    28,    31,    34,    37,
        41,    45,    50,    55,    60,    66,    73,    80,    88,
        97,    107,   118,   130,   143,   157,   173,   190,   209,
        230,   253,   279,   307,   337,   371,   408,   449,   494,
        544,   598,   658,   724,   796,   876,   963,   1060,  1166,
        1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,
        3024,  3327,  3660,  4026,  4428,  4871,  5358,  5894,  6484,
        7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899, 15289,
        16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};
    static const std::int32_t kIndexTable[16] = {
        -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};

    // PCM input derived from the deterministic sensor wave, stored as
    // 16-bit halfwords (the natural PCM width) and sign-extended by the
    // program on load.
    std::vector<std::int32_t> pcm(kSamples);
    std::vector<std::uint8_t> pcm_image(kSamples * 2);
    for (std::uint32_t i = 0; i < kSamples; ++i) {
        const std::int32_t s =
            (static_cast<std::int32_t>(arch::Cpu::sensorValue(i)) - 512) *
            24;
        pcm[i] = s;
        const auto half = static_cast<std::uint16_t>(s);
        pcm_image[2 * i] = static_cast<std::uint8_t>(half);
        pcm_image[2 * i + 1] = static_cast<std::uint8_t>(half >> 8);
    }

    // C++ mirror.
    std::int32_t predictor = 0;
    std::int32_t index = 0;
    std::uint32_t checksum = 0;
    for (std::uint32_t i = 0; i < kSamples; ++i) {
        const std::int32_t sample = pcm[i];
        std::int32_t diff = sample - predictor;
        std::uint32_t delta = 0;
        if (diff < 0) {
            delta = 8;
            diff = -diff;
        }
        const auto step = static_cast<std::int32_t>(kStepTable[index]);
        std::int32_t vpdiff = step >> 3;
        if (diff >= step) {
            delta |= 4;
            diff -= step;
            vpdiff += step;
        }
        if (diff >= step >> 1) {
            delta |= 2;
            diff -= step >> 1;
            vpdiff += step >> 1;
        }
        if (diff >= step >> 2) {
            delta |= 1;
            vpdiff += step >> 2;
        }
        if (delta & 8)
            predictor -= vpdiff;
        else
            predictor += vpdiff;
        predictor = std::clamp(predictor, -32768, 32767);
        index += kIndexTable[delta];
        index = std::clamp(index, 0, 88);
        checksum += delta * (i + 1);
    }

    const std::uint64_t pcm_base = layout.dataBase;
    const std::uint64_t step_base = layout.scratchBase;
    const std::uint64_t idx_base = layout.scratchBase + 89 * 4 + 4;
    const std::uint64_t out_base = layout.scratchBase + 512;

    std::vector<std::uint32_t> idx_words(16);
    for (int i = 0; i < 16; ++i)
        idx_words[i] = static_cast<std::uint32_t>(kIndexTable[i]);

    Assembler a("adpcm");
    a.initBytes(pcm_base, pcm_image);
    a.initWords(step_base,
                std::vector<std::uint32_t>(kStepTable, kStepTable + 89));
    a.initWords(idx_base, idx_words);
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)   // i
        .movi(Reg::R2, 0)   // predictor
        .movi(Reg::R3, 0)   // index
        .movi(Reg::R12, 0); // checksum
    a.label("loop")
        .movi(Reg::R7, kSamples)
        .bgeu(Reg::R1, Reg::R7, "done")
        // diff = pcm[i] - predictor; sign bit into delta (R5)
        .lsli(Reg::R4, Reg::R1, 1)
        .movi(Reg::R7, static_cast<std::int32_t>(pcm_base))
        .add(Reg::R4, Reg::R7, Reg::R4)
        .ldh(Reg::R4, Reg::R4, 0)
        .lsli(Reg::R4, Reg::R4, 16) // sign-extend the 16-bit sample
        .asri(Reg::R4, Reg::R4, 16)
        .sub(Reg::R4, Reg::R4, Reg::R2) // diff
        .movi(Reg::R5, 0)
        .bge(Reg::R4, Reg::R0, "possd")
        .movi(Reg::R5, 8)
        .sub(Reg::R4, Reg::R0, Reg::R4); // diff = -diff
    a.label("possd")
        // step = stepTable[index] -> R6; vpdiff = step>>3 -> R8
        .lsli(Reg::R6, Reg::R3, 2)
        .movi(Reg::R7, static_cast<std::int32_t>(step_base))
        .add(Reg::R6, Reg::R7, Reg::R6)
        .ldw(Reg::R6, Reg::R6, 0)
        .asri(Reg::R8, Reg::R6, 3)
        // quantize
        .blt(Reg::R4, Reg::R6, "b2")
        .orri(Reg::R5, Reg::R5, 4)
        .sub(Reg::R4, Reg::R4, Reg::R6)
        .add(Reg::R8, Reg::R8, Reg::R6);
    a.label("b2")
        .asri(Reg::R9, Reg::R6, 1)
        .blt(Reg::R4, Reg::R9, "b1")
        .orri(Reg::R5, Reg::R5, 2)
        .sub(Reg::R4, Reg::R4, Reg::R9)
        .add(Reg::R8, Reg::R8, Reg::R9);
    a.label("b1")
        .asri(Reg::R9, Reg::R6, 2)
        .blt(Reg::R4, Reg::R9, "bdone")
        .orri(Reg::R5, Reg::R5, 1)
        .add(Reg::R8, Reg::R8, Reg::R9);
    a.label("bdone")
        // predictor +/-= vpdiff, then clamp to [-32768, 32767]
        .andi(Reg::R9, Reg::R5, 8)
        .beq(Reg::R9, Reg::R0, "plus")
        .sub(Reg::R2, Reg::R2, Reg::R8)
        .b("clamp");
    a.label("plus")
        .add(Reg::R2, Reg::R2, Reg::R8);
    a.label("clamp")
        .movi(Reg::R9, 32767)
        .blt(Reg::R2, Reg::R9, "cl1")
        .mov(Reg::R2, Reg::R9);
    a.label("cl1")
        .movi(Reg::R9, -32768)
        .bge(Reg::R2, Reg::R9, "cl2")
        .mov(Reg::R2, Reg::R9);
    a.label("cl2")
        // index += indexTable[delta]; clamp to [0, 88]
        .lsli(Reg::R9, Reg::R5, 2)
        .movi(Reg::R7, static_cast<std::int32_t>(idx_base))
        .add(Reg::R9, Reg::R7, Reg::R9)
        .ldw(Reg::R9, Reg::R9, 0)
        .add(Reg::R3, Reg::R3, Reg::R9)
        .bge(Reg::R3, Reg::R0, "ix1")
        .movi(Reg::R3, 0);
    a.label("ix1")
        .movi(Reg::R9, 88)
        .blt(Reg::R3, Reg::R9, "ix2")
        .mov(Reg::R3, Reg::R9);
    a.label("ix2")
        // out[i] = delta; checksum += delta * (i+1)
        .movi(Reg::R7, static_cast<std::int32_t>(out_base))
        .add(Reg::R7, Reg::R7, Reg::R1)
        .stb(Reg::R5, Reg::R7, 0)
        .addi(Reg::R9, Reg::R1, 1)
        .mul(Reg::R7, Reg::R5, Reg::R9)
        .add(Reg::R12, Reg::R12, Reg::R7)
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R7, Reg::R1, 31)
        .bne(Reg::R7, Reg::R0, "loop")
        .checkpoint()
        .b("loop");
    a.label("done")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R12, Reg::R9, 0)
        .stw(Reg::R2, Reg::R9, 4)
        .stw(Reg::R3, Reg::R9, 8)
        .halt();

    Workload w;
    w.name = "adpcm";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4,
                     layout.resultBase + 8};
    w.expected = {checksum, static_cast<std::uint32_t>(predictor),
                  static_cast<std::uint32_t>(index)};
    return w;
}

// --------------------------------------------------------------------------
// lzfx: LZF-style compressor. A 64-entry position hash table is updated
// on *every* input position — the highest store rate in the suite, which
// is exactly why lzfx backs up most frequently on Clank (Figure 8).
// --------------------------------------------------------------------------

Workload
makeLzfx(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kLen = 2048;
    constexpr std::uint32_t kHashMul = 2654435761u;
    constexpr std::uint32_t kMaxMatch = 8;

    // Compressible input: a 64-byte motif tiled with sparse mutations.
    auto motif = detail::pseudoBytes(0x12F001, 64);
    std::vector<std::uint8_t> input(kLen);
    for (std::uint32_t i = 0; i < kLen; ++i)
        input[i] = motif[i % 64];
    const auto muts = detail::pseudoWords(0x12F002, 160);
    for (std::uint32_t m = 0; m < 160; ++m)
        input[muts[m] % kLen] ^= static_cast<std::uint8_t>(m + 1);

    // C++ mirror.
    std::uint32_t htab[64];
    std::fill(std::begin(htab), std::end(htab), 0xFFFFFFFFu);
    std::vector<std::uint8_t> out;
    {
        std::uint32_t i = 0;
        while (i + 2 < kLen) {
            const std::uint32_t h =
                ((static_cast<std::uint32_t>(input[i]) << 8 |
                  input[i + 1]) *
                 kHashMul) >>
                26;
            const std::uint32_t ref = htab[h];
            htab[h] = i;
            bool matched = false;
            if (ref != 0xFFFFFFFFu && ref < i && i - ref < 256 &&
                input[ref] == input[i] && input[ref + 1] == input[i + 1] &&
                input[ref + 2] == input[i + 2]) {
                std::uint32_t len = 3;
                while (len < kMaxMatch && i + len < kLen &&
                       input[ref + len] == input[i + len])
                    ++len;
                out.push_back(
                    static_cast<std::uint8_t>(0x80u | len));
                out.push_back(static_cast<std::uint8_t>(i - ref));
                i += len;
                matched = true;
            }
            if (!matched) {
                out.push_back(input[i]);
                ++i;
            }
        }
        while (i < kLen) {
            out.push_back(input[i]);
            ++i;
        }
    }
    std::uint32_t checksum = 0;
    for (std::uint32_t k = 0; k < out.size(); ++k)
        checksum += static_cast<std::uint32_t>(out[k]) * (k + 1);
    const auto out_len = static_cast<std::uint32_t>(out.size());

    const std::uint64_t in_base = layout.dataBase;
    const std::uint64_t htab_base = layout.scratchBase;
    const std::uint64_t out_base = layout.scratchBase + 64 * 4;

    Assembler a("lzfx");
    a.initBytes(in_base, input);
    a.initWords(htab_base, std::vector<std::uint32_t>(64, 0xFFFFFFFFu));
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)  // i
        .movi(Reg::R2, 0)  // o (output length)
        .movi(Reg::R3, 0)  // iterations since the last checkpoint
        .movi(Reg::R11, static_cast<std::int32_t>(in_base))
        .movi(Reg::R12, static_cast<std::int32_t>(out_base));
    a.label("loop")
        // Checkpoint every 24 loop iterations. (Keying checkpoints off
        // the *output* length would let runs of 2-byte match emits skip
        // every multiple-of-32 boundary, starving Mementos/DINO of
        // commit points for longer than an active period.)
        .movi(Reg::R4, 24)
        .bltu(Reg::R3, Reg::R4, "nockpt")
        .checkpoint()
        .movi(Reg::R3, 0);
    a.label("nockpt")
        .addi(Reg::R3, Reg::R3, 1)
        .addi(Reg::R4, Reg::R1, 2)
        .movi(Reg::R5, kLen)
        .bgeu(Reg::R4, Reg::R5, "tail")
        // h = ((b[i]<<8 | b[i+1]) * kHashMul) >> 26
        .add(Reg::R10, Reg::R11, Reg::R1)
        .ldb(Reg::R4, Reg::R10, 0)
        .lsli(Reg::R4, Reg::R4, 8)
        .ldb(Reg::R5, Reg::R10, 1)
        .orr(Reg::R4, Reg::R4, Reg::R5)
        .movi(Reg::R5, static_cast<std::int32_t>(kHashMul))
        .mul(Reg::R4, Reg::R4, Reg::R5)
        .lsri(Reg::R4, Reg::R4, 26)
        // ref = htab[h]; htab[h] = i (store on EVERY position)
        .lsli(Reg::R4, Reg::R4, 2)
        .movi(Reg::R5, static_cast<std::int32_t>(htab_base))
        .add(Reg::R4, Reg::R5, Reg::R4)
        .ldw(Reg::R5, Reg::R4, 0) // ref
        .stw(Reg::R1, Reg::R4, 0)
        // match candidate? ref < i && i - ref < 256 (0xFFFFFFFF fails <)
        .bgeu(Reg::R5, Reg::R1, "literal")
        .sub(Reg::R6, Reg::R1, Reg::R5) // dist
        .movi(Reg::R7, 256)
        .bgeu(Reg::R6, Reg::R7, "literal")
        // verify 3 bytes
        .add(Reg::R7, Reg::R11, Reg::R5) // &b[ref]
        .add(Reg::R8, Reg::R11, Reg::R1) // &b[i]
        .ldb(Reg::R9, Reg::R7, 0)
        .ldb(Reg::R10, Reg::R8, 0)
        .bne(Reg::R9, Reg::R10, "literal")
        .ldb(Reg::R9, Reg::R7, 1)
        .ldb(Reg::R10, Reg::R8, 1)
        .bne(Reg::R9, Reg::R10, "literal")
        .ldb(Reg::R9, Reg::R7, 2)
        .ldb(Reg::R10, Reg::R8, 2)
        .bne(Reg::R9, Reg::R10, "literal")
        // extend match length in R4 (reuse), up to kMaxMatch
        .movi(Reg::R4, 3);
    a.label("extend")
        .movi(Reg::R9, kMaxMatch)
        .bgeu(Reg::R4, Reg::R9, "emit")
        .add(Reg::R9, Reg::R1, Reg::R4)
        .movi(Reg::R10, kLen)
        .bgeu(Reg::R9, Reg::R10, "emit")
        .add(Reg::R9, Reg::R7, Reg::R4)
        .ldb(Reg::R9, Reg::R9, 0)
        .add(Reg::R10, Reg::R8, Reg::R4)
        .ldb(Reg::R10, Reg::R10, 0)
        .bne(Reg::R9, Reg::R10, "emit")
        .addi(Reg::R4, Reg::R4, 1)
        .b("extend");
    a.label("emit")
        // out[o++] = 0x80 | len; out[o++] = dist
        .orri(Reg::R9, Reg::R4, 0x80)
        .add(Reg::R10, Reg::R12, Reg::R2)
        .stb(Reg::R9, Reg::R10, 0)
        .addi(Reg::R2, Reg::R2, 1)
        .add(Reg::R10, Reg::R12, Reg::R2)
        .stb(Reg::R6, Reg::R10, 0)
        .addi(Reg::R2, Reg::R2, 1)
        .add(Reg::R1, Reg::R1, Reg::R4) // i += len
        .b("loop");
    a.label("literal")
        .add(Reg::R9, Reg::R11, Reg::R1)
        .ldb(Reg::R9, Reg::R9, 0)
        .add(Reg::R10, Reg::R12, Reg::R2)
        .stb(Reg::R9, Reg::R10, 0)
        .addi(Reg::R2, Reg::R2, 1)
        .addi(Reg::R1, Reg::R1, 1)
        .b("loop");
    a.label("tail")
        .movi(Reg::R4, kLen)
        .bgeu(Reg::R1, Reg::R4, "lzdone")
        .add(Reg::R9, Reg::R11, Reg::R1)
        .ldb(Reg::R9, Reg::R9, 0)
        .add(Reg::R10, Reg::R12, Reg::R2)
        .stb(Reg::R9, Reg::R10, 0)
        .addi(Reg::R2, Reg::R2, 1)
        .addi(Reg::R1, Reg::R1, 1)
        .b("tail");
    a.label("lzdone")
        // checksum over output bytes
        .movi(Reg::R1, 0)
        .movi(Reg::R3, 0);
    a.label("lcs")
        .bgeu(Reg::R1, Reg::R2, "lcsd")
        .add(Reg::R9, Reg::R12, Reg::R1)
        .ldb(Reg::R9, Reg::R9, 0)
        .addi(Reg::R10, Reg::R1, 1)
        .mul(Reg::R9, Reg::R9, Reg::R10)
        .add(Reg::R3, Reg::R3, Reg::R9)
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R9, Reg::R1, 63)
        .bne(Reg::R9, Reg::R0, "lcs")
        .checkpoint()
        .b("lcs");
    a.label("lcsd")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R2, Reg::R9, 0)
        .stw(Reg::R3, Reg::R9, 4)
        .halt();

    Workload w;
    w.name = "lzfx";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4};
    w.expected = {out_len, checksum};
    return w;
}

// --------------------------------------------------------------------------
// patricia: binary-trie (simplified PATRICIA analogue) insert of 64 keys
// followed by 64 probes — pointer-chasing loads with occasional node
// allocations.
// --------------------------------------------------------------------------

Workload
makePatricia(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kKeys = 256;
    const auto keys = detail::pseudoWords(0x9A7001, kKeys);
    auto probes = detail::pseudoWords(0x9A7002, kKeys);
    for (std::uint32_t k = 0; k < kKeys / 2; ++k)
        probes[k] = keys[k * 2]; // half the probes are guaranteed hits

    // C++ mirror. Node: {key, left, right}; index 0 is the root; link 0
    // means null (the root is never a child).
    struct Node
    {
        std::uint32_t key, left, right;
    };
    std::vector<Node> nodes;
    nodes.reserve(kKeys);
    auto insert = [&nodes](std::uint32_t key) {
        if (nodes.empty()) {
            nodes.push_back({key, 0, 0});
            return;
        }
        std::uint32_t cur = 0;
        for (int bit = 31; bit >= 0; --bit) {
            if (nodes[cur].key == key)
                return;
            const bool right = (key >> bit) & 1;
            const std::uint32_t next =
                right ? nodes[cur].right : nodes[cur].left;
            if (next == 0) {
                const auto idx =
                    static_cast<std::uint32_t>(nodes.size());
                nodes.push_back({key, 0, 0});
                if (right)
                    nodes[cur].right = idx;
                else
                    nodes[cur].left = idx;
                return;
            }
            cur = next;
        }
    };
    auto lookup = [&nodes](std::uint32_t key) {
        if (nodes.empty())
            return false;
        std::uint32_t cur = 0;
        for (int bit = 31; bit >= 0; --bit) {
            if (nodes[cur].key == key)
                return true;
            const bool right = (key >> bit) & 1;
            const std::uint32_t next =
                right ? nodes[cur].right : nodes[cur].left;
            if (next == 0)
                return false;
            cur = next;
        }
        return false; // depth exhausted — matches the assembly's walk
    };
    for (std::uint32_t k = 0; k < kKeys; ++k)
        insert(keys[k]);
    std::uint32_t hits = 0;
    for (std::uint32_t k = 0; k < kKeys; ++k)
        hits += lookup(probes[k]) ? 1 : 0;
    const auto node_count = static_cast<std::uint32_t>(nodes.size());

    const std::uint64_t keys_base = layout.dataBase;
    const std::uint64_t probes_base = layout.dataBase + kKeys * 4;
    const std::uint64_t nodes_base = layout.scratchBase;

    // Assembly registers: R1 = loop index, R2 = node count, R3 = key,
    // R4 = cur, R5 = bit, R6..R10 = scratch, R11 = hits.
    Assembler a("patricia");
    a.initWords(keys_base, keys);
    a.initWords(probes_base, probes);
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)
        .movi(Reg::R2, 0)
        .movi(Reg::R11, 0)
        .movi(Reg::R12, static_cast<std::int32_t>(nodes_base));
    // ---- insert phase ----
    a.label("iloop")
        .movi(Reg::R7, kKeys)
        .bgeu(Reg::R1, Reg::R7, "lphase")
        .lsli(Reg::R3, Reg::R1, 2)
        .movi(Reg::R7, static_cast<std::int32_t>(keys_base))
        .add(Reg::R3, Reg::R7, Reg::R3)
        .ldw(Reg::R3, Reg::R3, 0) // key
        // empty trie: create the root
        .bne(Reg::R2, Reg::R0, "walk")
        .stw(Reg::R3, Reg::R12, 0)
        .stw(Reg::R0, Reg::R12, 4)
        .stw(Reg::R0, Reg::R12, 8)
        .movi(Reg::R2, 1)
        .b("inext");
    a.label("walk")
        .movi(Reg::R4, 0)   // cur
        .movi(Reg::R5, 31); // bit
    a.label("wstep")
        // node address = nodes_base + cur*12
        .muli(Reg::R6, Reg::R4, 12)
        .add(Reg::R6, Reg::R12, Reg::R6)
        .ldw(Reg::R7, Reg::R6, 0) // node.key
        .beq(Reg::R7, Reg::R3, "inext")
        // dir = (key >> bit) & 1; link offset = 4 + dir*4
        .lsr(Reg::R8, Reg::R3, Reg::R5)
        .andi(Reg::R8, Reg::R8, 1)
        .lsli(Reg::R8, Reg::R8, 2)
        .addi(Reg::R8, Reg::R8, 4)
        .add(Reg::R9, Reg::R6, Reg::R8)
        .ldw(Reg::R10, Reg::R9, 0) // next
        .bne(Reg::R10, Reg::R0, "descend")
        // allocate node[count] = {key, 0, 0}; link it
        .muli(Reg::R10, Reg::R2, 12)
        .add(Reg::R10, Reg::R12, Reg::R10)
        .stw(Reg::R3, Reg::R10, 0)
        .stw(Reg::R0, Reg::R10, 4)
        .stw(Reg::R0, Reg::R10, 8)
        .stw(Reg::R2, Reg::R9, 0)
        .addi(Reg::R2, Reg::R2, 1)
        .b("inext");
    a.label("descend")
        .mov(Reg::R4, Reg::R10)
        .beq(Reg::R5, Reg::R0, "inext") // bit exhausted (can't happen
        .subi(Reg::R5, Reg::R5, 1)      // for distinct keys)
        .b("wstep");
    a.label("inext")
        .checkpoint()
        .addi(Reg::R1, Reg::R1, 1)
        .b("iloop");
    // ---- lookup phase ----
    a.label("lphase")
        .movi(Reg::R1, 0);
    a.label("lloop")
        .movi(Reg::R7, kKeys)
        .bgeu(Reg::R1, Reg::R7, "pdone")
        .lsli(Reg::R3, Reg::R1, 2)
        .movi(Reg::R7, static_cast<std::int32_t>(probes_base))
        .add(Reg::R3, Reg::R7, Reg::R3)
        .ldw(Reg::R3, Reg::R3, 0)
        .movi(Reg::R4, 0)
        .movi(Reg::R5, 31);
    a.label("lstep")
        .muli(Reg::R6, Reg::R4, 12)
        .add(Reg::R6, Reg::R12, Reg::R6)
        .ldw(Reg::R7, Reg::R6, 0)
        .beq(Reg::R7, Reg::R3, "lhit")
        .lsr(Reg::R8, Reg::R3, Reg::R5)
        .andi(Reg::R8, Reg::R8, 1)
        .lsli(Reg::R8, Reg::R8, 2)
        .addi(Reg::R8, Reg::R8, 4)
        .add(Reg::R9, Reg::R6, Reg::R8)
        .ldw(Reg::R10, Reg::R9, 0)
        .beq(Reg::R10, Reg::R0, "lnext") // miss
        .mov(Reg::R4, Reg::R10)
        .beq(Reg::R5, Reg::R0, "lnext")
        .subi(Reg::R5, Reg::R5, 1)
        .b("lstep");
    a.label("lhit")
        .addi(Reg::R11, Reg::R11, 1);
    a.label("lnext")
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R7, Reg::R1, 15)
        .bne(Reg::R7, Reg::R0, "lloop")
        .checkpoint()
        .b("lloop");
    a.label("pdone")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R2, Reg::R9, 0)
        .stw(Reg::R11, Reg::R9, 4)
        .halt();

    Workload w;
    w.name = "patricia";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4};
    w.expected = {node_count, hits};
    return w;
}

// --------------------------------------------------------------------------
// susan: thresholded 3x3 smoothing over a 32x32 image — the image-
// processing workload used for the bit-precision case study (Figure 11).
// --------------------------------------------------------------------------

Workload
makeSusan(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kDim = 32;
    constexpr std::uint32_t kOut = kDim - 2;
    constexpr std::uint32_t kThresh = 20;
    const auto img = detail::pseudoBytes(0x5U + 0x5A5001, kDim * kDim);

    // C++ mirror.
    std::vector<std::uint8_t> out(kOut * kOut);
    for (std::uint32_t y = 1; y + 1 < kDim; ++y) {
        for (std::uint32_t x = 1; x + 1 < kDim; ++x) {
            const std::uint32_t c = img[y * kDim + x];
            std::uint32_t sum = 0, cnt = 0;
            for (std::uint32_t ky = 0; ky < 3; ++ky) {
                for (std::uint32_t kx = 0; kx < 3; ++kx) {
                    const std::uint32_t p =
                        img[(y + ky - 1) * kDim + (x + kx - 1)];
                    const std::uint32_t d = p >= c ? p - c : c - p;
                    if (d <= kThresh) {
                        sum += p;
                        ++cnt;
                    }
                }
            }
            out[(y - 1) * kOut + (x - 1)] =
                static_cast<std::uint8_t>(sum / cnt);
        }
    }
    std::uint32_t checksum = 0;
    for (std::uint32_t k = 0; k < out.size(); ++k)
        checksum += static_cast<std::uint32_t>(out[k]) * (k + 1);

    const std::uint64_t img_base = layout.dataBase;
    const std::uint64_t out_base = layout.scratchBase;

    // Registers: R1=y, R2=x, R3=c, R4=sum, R5=cnt, R6=ky, R7=kx,
    // R8..R10 scratch, R11=&img, R12=&out.
    Assembler a("susan");
    a.initBytes(img_base, img);
    a.movi(Reg::R0, 0)
        .movi(Reg::R11, static_cast<std::int32_t>(img_base))
        .movi(Reg::R12, static_cast<std::int32_t>(out_base))
        .movi(Reg::R1, 1);
    a.label("yloop")
        .movi(Reg::R8, kDim - 1)
        .bgeu(Reg::R1, Reg::R8, "sdone")
        .movi(Reg::R2, 1);
    a.label("xloop")
        .movi(Reg::R8, kDim - 1)
        .bgeu(Reg::R2, Reg::R8, "ynext")
        // c = img[y*32 + x]
        .lsli(Reg::R8, Reg::R1, 5)
        .add(Reg::R8, Reg::R8, Reg::R2)
        .add(Reg::R8, Reg::R11, Reg::R8)
        .ldb(Reg::R3, Reg::R8, 0)
        .movi(Reg::R4, 0)
        .movi(Reg::R5, 0)
        .movi(Reg::R6, 0);
    a.label("kyloop")
        .movi(Reg::R8, 3)
        .bgeu(Reg::R6, Reg::R8, "store")
        .movi(Reg::R7, 0);
    a.label("kxloop")
        .movi(Reg::R8, 3)
        .bgeu(Reg::R7, Reg::R8, "kynext")
        // p = img[(y+ky-1)*32 + (x+kx-1)]
        .add(Reg::R8, Reg::R1, Reg::R6)
        .subi(Reg::R8, Reg::R8, 1)
        .lsli(Reg::R8, Reg::R8, 5)
        .add(Reg::R8, Reg::R8, Reg::R2)
        .add(Reg::R8, Reg::R8, Reg::R7)
        .subi(Reg::R8, Reg::R8, 1)
        .add(Reg::R8, Reg::R11, Reg::R8)
        .ldb(Reg::R9, Reg::R8, 0)
        // d = |p - c|
        .bgeu(Reg::R9, Reg::R3, "dpos")
        .sub(Reg::R10, Reg::R3, Reg::R9)
        .b("dtest");
    a.label("dpos")
        .sub(Reg::R10, Reg::R9, Reg::R3);
    a.label("dtest")
        .movi(Reg::R8, kThresh + 1)
        .bgeu(Reg::R10, Reg::R8, "kxnext")
        .add(Reg::R4, Reg::R4, Reg::R9)
        .addi(Reg::R5, Reg::R5, 1);
    a.label("kxnext")
        .addi(Reg::R7, Reg::R7, 1)
        .b("kxloop");
    a.label("kynext")
        .addi(Reg::R6, Reg::R6, 1)
        .b("kyloop");
    a.label("store")
        .divu(Reg::R4, Reg::R4, Reg::R5)
        // out[(y-1)*30 + (x-1)]
        .subi(Reg::R8, Reg::R1, 1)
        .muli(Reg::R8, Reg::R8, kOut)
        .add(Reg::R8, Reg::R8, Reg::R2)
        .subi(Reg::R8, Reg::R8, 1)
        .add(Reg::R8, Reg::R12, Reg::R8)
        .stb(Reg::R4, Reg::R8, 0)
        .addi(Reg::R2, Reg::R2, 1)
        .b("xloop");
    a.label("ynext")
        .checkpoint()
        .addi(Reg::R1, Reg::R1, 1)
        .b("yloop");
    a.label("sdone")
        // checksum over the output image
        .movi(Reg::R1, 0)
        .movi(Reg::R2, 0)
        .movi(Reg::R3, kOut * kOut);
    a.label("scs")
        .bgeu(Reg::R1, Reg::R3, "scsd")
        .add(Reg::R8, Reg::R12, Reg::R1)
        .ldb(Reg::R9, Reg::R8, 0)
        .addi(Reg::R10, Reg::R1, 1)
        .mul(Reg::R9, Reg::R9, Reg::R10)
        .add(Reg::R2, Reg::R2, Reg::R9)
        .addi(Reg::R1, Reg::R1, 1)
        .b("scs");
    a.label("scsd")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R2, Reg::R9, 0)
        .halt();

    Workload w;
    w.name = "susan";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase};
    w.expected = {checksum};
    return w;
}

} // namespace eh::workloads
