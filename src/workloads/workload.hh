/**
 * @file
 * Workload definitions. A Workload bundles a Program with the metadata
 * the simulator and the experiments need: how much volatile memory it
 * uses (the backup payload for volatile-data policies), where its results
 * land in nonvolatile memory, and the expected result words computed by a
 * C++ reference implementation of the same algorithm — every workload is
 * therefore end-to-end checkable, including under intermittent execution.
 *
 * Two placements are supported, mirroring the paper's two platform
 * families: volatile layout (data + scratch in SRAM, as on the MSP430
 * systems of Section V-A) and nonvolatile layout (data in FRAM, as on the
 * Clank Cortex-M0+ of Section V-B).
 */

#ifndef EH_WORKLOADS_WORKLOAD_HH
#define EH_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/isa.hh"

namespace eh::workloads {

/** Where a workload's data, scratch and results are placed. */
struct WorkloadLayout
{
    std::uint64_t dataBase = 64;      ///< base of input/working arrays
    std::uint64_t scratchBase = 4096; ///< base of secondary arrays
    std::uint64_t resultBase = 0;     ///< result words (always in NVM)
    bool dataNonvolatile = false;     ///< data region lives in NVM
    std::size_t sramUsedBytes = 0;    ///< volatile payload to back up
};

/**
 * Volatile placement: data and scratch in SRAM, results in NVM.
 * @param sram_used  Volatile payload size (data + scratch must fit).
 * @param nvm_base   First NVM address of the platform (= SRAM size).
 */
WorkloadLayout volatileLayout(std::size_t sram_used = 6144,
                              std::uint64_t nvm_base = 8192);

/**
 * Nonvolatile placement: everything in NVM (Clank-style platform).
 * @param nvm_base First NVM address of the platform.
 */
WorkloadLayout nonvolatileLayout(std::uint64_t nvm_base = 8192);

/** A runnable, checkable benchmark. */
struct Workload
{
    std::string name;
    arch::Program program;
    std::size_t sramUsedBytes = 0;          ///< backup payload region
    std::vector<std::uint64_t> resultAddrs; ///< absolute result addresses
    std::vector<std::uint32_t> expected;    ///< reference result words
};

// --- Table II benchmarks (Section V-A hardware validation) -------------

/** RSA: square-and-multiply modular exponentiation over a message set. */
Workload makeRsa(const WorkloadLayout &layout);

/** CRC: table-driven CRC-32 over a data buffer. */
Workload makeCrc(const WorkloadLayout &layout);

/** SENSE: summary statistics over an ADC sample stream. */
Workload makeSense(const WorkloadLayout &layout);

/** AR: windowed-feature activity recognition over sensor data. */
Workload makeAr(const WorkloadLayout &layout);

/** MIDI: audio-derived event detection and logging. */
Workload makeMidi(const WorkloadLayout &layout);

/** DS: key-value histogram data logger. */
Workload makeDs(const WorkloadLayout &layout);

// --- MiBench-like suite (Section V-B Clank characterization) -----------

/** bitcount: population counts via two methods. */
Workload makeBitcount(const WorkloadLayout &layout);

/** qsort: iterative quicksort with an explicit index stack. */
Workload makeQsort(const WorkloadLayout &layout);

/** basicmath: integer square roots and GCDs. */
Workload makeBasicmath(const WorkloadLayout &layout);

/** stringsearch: naive substring search over generated text. */
Workload makeStringsearch(const WorkloadLayout &layout);

/** dijkstra: single-source shortest paths on a dense graph. */
Workload makeDijkstra(const WorkloadLayout &layout);

/** fft: in-place fixed-point radix-2 FFT. */
Workload makeFft(const WorkloadLayout &layout);

/** sha: SHA-1 compression over a two-block message. */
Workload makeSha(const WorkloadLayout &layout);

/** adpcm: IMA ADPCM encoding of a synthetic waveform. */
Workload makeAdpcm(const WorkloadLayout &layout);

/** lzfx: LZF-style compression with a position hash table. */
Workload makeLzfx(const WorkloadLayout &layout);

/** patricia: binary-trie insert and lookup. */
Workload makePatricia(const WorkloadLayout &layout);

/** susan: thresholded 3x3 image smoothing. */
Workload makeSusan(const WorkloadLayout &layout);

/** rijndael: AES-128 CBC encryption (FIPS-197, byte-oriented). */
Workload makeRijndael(const WorkloadLayout &layout);

/** jpeg: separable fixed-point 8x8 forward DCT over a 32x32 image. */
Workload makeJpeg(const WorkloadLayout &layout);

// --- Synthetic ----------------------------------------------------------

/**
 * counter: the Figure 5 hardware-validation program — an infinite
 * increment loop with periodic stores; never halts (the experiment is
 * bounded by active periods, not completion).
 */
Workload makeCounter(const WorkloadLayout &layout);

// --- Registry -------------------------------------------------------------

/** Names of the Table II benchmarks, in paper order. */
std::vector<std::string> tableIINames();

/** Names of the MiBench-like suite. */
std::vector<std::string> mibenchNames();

/**
 * Factory by name.
 * @throws FatalError for unknown names.
 */
Workload makeWorkload(const std::string &name,
                      const WorkloadLayout &layout);

} // namespace eh::workloads

#endif // EH_WORKLOADS_WORKLOAD_HH
