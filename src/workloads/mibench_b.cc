/**
 * @file
 * MiBench-like kernels, batch B: dijkstra, fft and sha. These are the
 * pointer/array-update heavy kernels whose read-then-write patterns
 * drive Clank's idempotency violations (Section V-B).
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "arch/assembler.hh"
#include "workloads/detail.hh"
#include "workloads/workload.hh"

namespace eh::workloads {

using arch::Assembler;
using arch::Reg;

// --------------------------------------------------------------------------
// dijkstra: O(V^2) single-source shortest paths over a dense 16-node
// graph. dist[] is repeatedly read and overwritten — a classic WAR
// pattern.
// --------------------------------------------------------------------------

Workload
makeDijkstra(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kV = 16;
    constexpr std::uint32_t kSources = 8;
    constexpr std::uint32_t kInf = 0x3FFFFFFF;
    // Dense weight matrix: weight 1..63, ~25% of edges absent (0),
    // diagonal 0.
    auto raw = detail::pseudoWords(0xD10001, kV * kV, 256);
    std::vector<std::uint32_t> adj(kV * kV);
    for (std::uint32_t r = 0; r < kV; ++r) {
        for (std::uint32_t c = 0; c < kV; ++c) {
            const std::uint32_t v = raw[r * kV + c];
            adj[r * kV + c] = (r == c || v < 64) ? 0 : v % 63 + 1;
        }
    }
    const std::uint64_t adj_base = layout.dataBase;
    const std::uint64_t dist_base = layout.scratchBase;
    const std::uint64_t vis_base = layout.scratchBase + kV * 4;
    const std::uint64_t src_slot = layout.scratchBase + kV * 8;

    // C++ mirror: shortest paths from each of kSources sources, with the
    // per-source distance checksums accumulated.
    std::uint32_t checksum = 0;
    for (std::uint32_t source = 0; source < kSources; ++source) {
        std::uint32_t dist[kV], visited[kV] = {};
        for (std::uint32_t k = 0; k < kV; ++k)
            dist[k] = kInf;
        dist[source] = 0;
        for (std::uint32_t iter = 0; iter < kV; ++iter) {
            std::uint32_t best = kInf, u = kV;
            for (std::uint32_t k = 0; k < kV; ++k) {
                if (!visited[k] && dist[k] < best) {
                    best = dist[k];
                    u = k;
                }
            }
            if (u == kV)
                break;
            visited[u] = 1;
            for (std::uint32_t k = 0; k < kV; ++k) {
                const std::uint32_t wgt = adj[u * kV + k];
                if (!visited[k] && wgt && best + wgt < dist[k])
                    dist[k] = best + wgt;
            }
        }
        for (std::uint32_t k = 0; k < kV; ++k)
            checksum += dist[k] * (k + 1);
    }

    // Registers: R0 zero, R1 loop index, R2 running checksum, R3 = kV,
    // R4 best, R5 u, R6 k, R7-R10 scratch, R11 &dist, R12 &visited. The
    // source counter lives in memory (src_slot).
    Assembler a("dijkstra");
    a.initWords(adj_base, adj);
    a.initWords(src_slot, {0});
    a.movi(Reg::R0, 0)
        .movi(Reg::R2, 0)
        .movi(Reg::R3, kV)
        .movi(Reg::R11, static_cast<std::int32_t>(dist_base))
        .movi(Reg::R12, static_cast<std::int32_t>(vis_base));
    a.label("srcloop")
        .movi(Reg::R8, static_cast<std::int32_t>(src_slot))
        .ldw(Reg::R7, Reg::R8, 0)
        .movi(Reg::R9, kSources)
        .bgeu(Reg::R7, Reg::R9, "alldone")
        // init dist = INF, visited = 0
        .movi(Reg::R1, 0);
    a.label("init")
        .bgeu(Reg::R1, Reg::R3, "initd")
        .lsli(Reg::R4, Reg::R1, 2)
        .add(Reg::R5, Reg::R11, Reg::R4)
        .movi(Reg::R9, kInf)
        .stw(Reg::R9, Reg::R5, 0)
        .add(Reg::R5, Reg::R12, Reg::R4)
        .stw(Reg::R0, Reg::R5, 0)
        .addi(Reg::R1, Reg::R1, 1)
        .b("init");
    a.label("initd")
        // dist[source] = 0
        .lsli(Reg::R7, Reg::R7, 2)
        .add(Reg::R7, Reg::R11, Reg::R7)
        .stw(Reg::R0, Reg::R7, 0)
        .checkpoint()
        .movi(Reg::R1, 0); // iteration
    a.label("outer")
        .bgeu(Reg::R1, Reg::R3, "ddone")
        // find the unvisited node with minimum distance
        .movi(Reg::R4, kInf) // best
        .movi(Reg::R5, kV)   // u = sentinel
        .movi(Reg::R6, 0);   // k
    a.label("find")
        .bgeu(Reg::R6, Reg::R3, "foundd")
        .lsli(Reg::R7, Reg::R6, 2)
        .add(Reg::R8, Reg::R12, Reg::R7)
        .ldw(Reg::R8, Reg::R8, 0)
        .bne(Reg::R8, Reg::R0, "fskip")
        .add(Reg::R8, Reg::R11, Reg::R7)
        .ldw(Reg::R8, Reg::R8, 0)
        .bgeu(Reg::R8, Reg::R4, "fskip")
        .mov(Reg::R4, Reg::R8)
        .mov(Reg::R5, Reg::R6);
    a.label("fskip")
        .addi(Reg::R6, Reg::R6, 1)
        .b("find");
    a.label("foundd")
        .beq(Reg::R5, Reg::R3, "ddone") // no reachable node left
        // visited[u] = 1
        .lsli(Reg::R7, Reg::R5, 2)
        .add(Reg::R7, Reg::R12, Reg::R7)
        .movi(Reg::R8, 1)
        .stw(Reg::R8, Reg::R7, 0)
        // relax neighbours of u
        .movi(Reg::R6, 0);
    a.label("relax")
        .bgeu(Reg::R6, Reg::R3, "relaxd")
        .lsli(Reg::R7, Reg::R6, 2)
        .add(Reg::R8, Reg::R12, Reg::R7)
        .ldw(Reg::R8, Reg::R8, 0)
        .bne(Reg::R8, Reg::R0, "rskip")
        // w = adj[u*kV + k]
        .lsli(Reg::R8, Reg::R5, 4) // u * 16
        .add(Reg::R8, Reg::R8, Reg::R6)
        .lsli(Reg::R8, Reg::R8, 2)
        .movi(Reg::R9, static_cast<std::int32_t>(adj_base))
        .add(Reg::R8, Reg::R9, Reg::R8)
        .ldw(Reg::R8, Reg::R8, 0)
        .beq(Reg::R8, Reg::R0, "rskip")
        .add(Reg::R8, Reg::R4, Reg::R8) // nd = best + w
        .add(Reg::R9, Reg::R11, Reg::R7)
        .ldw(Reg::R10, Reg::R9, 0)      // dist[k]
        .bgeu(Reg::R8, Reg::R10, "rskip")
        .stw(Reg::R8, Reg::R9, 0);
    a.label("rskip")
        .addi(Reg::R6, Reg::R6, 1)
        .b("relax");
    a.label("relaxd")
        .checkpoint()
        .addi(Reg::R1, Reg::R1, 1)
        .b("outer");
    a.label("ddone")
        // checksum += sum dist[k] * (k+1)
        .movi(Reg::R1, 0);
    a.label("csum")
        .bgeu(Reg::R1, Reg::R3, "csumd")
        .lsli(Reg::R7, Reg::R1, 2)
        .add(Reg::R7, Reg::R11, Reg::R7)
        .ldw(Reg::R8, Reg::R7, 0)
        .addi(Reg::R9, Reg::R1, 1)
        .mul(Reg::R8, Reg::R8, Reg::R9)
        .add(Reg::R2, Reg::R2, Reg::R8)
        .addi(Reg::R1, Reg::R1, 1)
        .b("csum");
    a.label("csumd")
        // next source
        .movi(Reg::R8, static_cast<std::int32_t>(src_slot))
        .ldw(Reg::R7, Reg::R8, 0)
        .addi(Reg::R7, Reg::R7, 1)
        .stw(Reg::R7, Reg::R8, 0)
        .checkpoint()
        .b("srcloop");
    a.label("alldone")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R2, Reg::R9, 0)
        .halt();

    Workload w;
    w.name = "dijkstra";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase};
    w.expected = {checksum};
    return w;
}

// --------------------------------------------------------------------------
// fft: in-place 64-point radix-2 fixed-point (Q12) FFT. Heavy in-place
// butterfly updates (read a[], write a[]) make it violation-dense.
// --------------------------------------------------------------------------

namespace {

/** Exactly the arithmetic the assembly performs: 32-bit wrap, asr 12. */
std::int32_t
q12mul(std::int32_t x, std::int32_t y)
{
    const auto wrapped = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(x) * static_cast<std::uint32_t>(y));
    return wrapped >> 12; // arithmetic shift, matching asri
}

} // namespace

Workload
makeFft(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kN = 256;
    constexpr std::uint32_t kLogN = 8;

    // Input: Q12-ish samples in [-1024, 1023]; imaginary part zero.
    const auto raw = detail::pseudoWords(0xFF7001, kN, 2048);
    std::vector<std::int32_t> re(kN), im(kN, 0);
    for (std::uint32_t k = 0; k < kN; ++k)
        re[k] = static_cast<std::int32_t>(raw[k]) - 1024;

    // Twiddle tables (Q12) and bit-reversal permutation, baked as data.
    std::vector<std::uint32_t> tw_re(kN / 2), tw_im(kN / 2);
    for (std::uint32_t j = 0; j < kN / 2; ++j) {
        const double ang = -2.0 * M_PI * j / kN;
        tw_re[j] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(std::lround(std::cos(ang) * 4096)));
        tw_im[j] = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(std::lround(std::sin(ang) * 4096)));
    }
    std::vector<std::uint32_t> rev(kN);
    for (std::uint32_t k = 0; k < kN; ++k) {
        std::uint32_t r = 0;
        for (std::uint32_t b = 0; b < kLogN; ++b)
            if (k & (1u << b))
                r |= 1u << (kLogN - 1 - b);
        rev[k] = r;
    }

    // C++ mirror (identical integer ops).
    {
        std::vector<std::int32_t> r2(re), i2(im);
        for (std::uint32_t k = 0; k < kN; ++k) {
            re[rev[k]] = r2[k];
            im[rev[k]] = i2[k];
        }
        for (std::uint32_t len = 2; len <= kN; len <<= 1) {
            const std::uint32_t half = len / 2;
            const std::uint32_t step = kN / len;
            for (std::uint32_t i = 0; i < kN; i += len) {
                for (std::uint32_t j = 0; j < half; ++j) {
                    const auto wr = static_cast<std::int32_t>(
                        tw_re[j * step]);
                    const auto wi = static_cast<std::int32_t>(
                        tw_im[j * step]);
                    const std::uint32_t p = i + j, q = i + j + half;
                    const std::int32_t tr =
                        q12mul(wr, re[q]) - q12mul(wi, im[q]);
                    const std::int32_t ti =
                        q12mul(wr, im[q]) + q12mul(wi, re[q]);
                    re[q] = re[p] - tr;
                    im[q] = im[p] - ti;
                    re[p] = re[p] + tr;
                    im[p] = im[p] + ti;
                }
            }
        }
    }
    std::uint32_t checksum = 0;
    for (std::uint32_t k = 0; k < kN; ++k) {
        checksum += static_cast<std::uint32_t>(re[k]) * (2 * k + 1) +
                    static_cast<std::uint32_t>(im[k]) * (2 * k + 2);
    }

    // Memory layout: re[64], im[64] at dataBase; tables at scratch.
    const std::uint64_t re_base = layout.dataBase;
    const std::uint64_t im_base = layout.dataBase + kN * 4;
    const std::uint64_t twr_base = layout.scratchBase;
    const std::uint64_t twi_base = layout.scratchBase + kN * 2;
    const std::uint64_t rev_base = layout.scratchBase + kN * 4;

    // The program writes the bit-reversed input itself (from a pristine
    // copy), so re-execution stays correct: src arrays are read-only.
    const std::uint64_t src_base = layout.scratchBase + kN * 8;
    std::vector<std::uint32_t> src_re(kN);
    for (std::uint32_t k = 0; k < kN; ++k)
        src_re[k] = raw[k] - 1024; // same values as the mirror's input

    Assembler a("fft");
    a.initWords(twr_base, tw_re);
    a.initWords(twi_base, tw_im);
    a.initWords(rev_base, rev);
    a.initWords(src_base, src_re);
    a.movi(Reg::R0, 0)
        // Bit-reversal scatter: re[rev[k]] = src[k]; im[rev[k]] = 0.
        .movi(Reg::R1, 0)
        .movi(Reg::R2, kN);
    a.label("scatter")
        .bgeu(Reg::R1, Reg::R2, "scatterd")
        .lsli(Reg::R3, Reg::R1, 2)
        .movi(Reg::R4, static_cast<std::int32_t>(rev_base))
        .add(Reg::R4, Reg::R4, Reg::R3)
        .ldw(Reg::R4, Reg::R4, 0) // rev[k]
        .movi(Reg::R5, static_cast<std::int32_t>(src_base))
        .add(Reg::R5, Reg::R5, Reg::R3)
        .ldw(Reg::R5, Reg::R5, 0) // src[k]
        .lsli(Reg::R4, Reg::R4, 2)
        .movi(Reg::R6, static_cast<std::int32_t>(re_base))
        .add(Reg::R6, Reg::R6, Reg::R4)
        .stw(Reg::R5, Reg::R6, 0)
        .movi(Reg::R6, static_cast<std::int32_t>(im_base))
        .add(Reg::R6, Reg::R6, Reg::R4)
        .stw(Reg::R0, Reg::R6, 0)
        .addi(Reg::R1, Reg::R1, 1)
        .b("scatter");
    a.label("scatterd")
        .checkpoint()
        // Butterfly stages. r1 = len.
        .movi(Reg::R1, 2);
    a.label("stage")
        .movi(Reg::R2, kN)
        .bltu(Reg::R2, Reg::R1, "fftdone") // len > N → done
        .movi(Reg::R3, 0);                 // i
    a.label("group")
        .movi(Reg::R2, kN)
        .bgeu(Reg::R3, Reg::R2, "staged")
        .movi(Reg::R4, 0); // j
    a.label("fly")
        .lsri(Reg::R5, Reg::R1, 1) // half = len/2
        .bgeu(Reg::R4, Reg::R5, "flyd")
        // tw index = j * (N/len); N/len = 64/len = (64 >> log2 len)...
        // computed as j * step where step = N/len via division.
        .movi(Reg::R6, kN)
        .divu(Reg::R6, Reg::R6, Reg::R1) // step
        .mul(Reg::R6, Reg::R4, Reg::R6)  // j*step
        .lsli(Reg::R6, Reg::R6, 2)
        .movi(Reg::R7, static_cast<std::int32_t>(twr_base))
        .add(Reg::R7, Reg::R7, Reg::R6)
        .ldw(Reg::R7, Reg::R7, 0) // wr
        .movi(Reg::R8, static_cast<std::int32_t>(twi_base))
        .add(Reg::R8, Reg::R8, Reg::R6)
        .ldw(Reg::R8, Reg::R8, 0) // wi
        // p = i + j; q = p + half  (byte offsets in R9/R10)
        .add(Reg::R9, Reg::R3, Reg::R4)
        .add(Reg::R10, Reg::R9, Reg::R5)
        .lsli(Reg::R9, Reg::R9, 2)
        .lsli(Reg::R10, Reg::R10, 2)
        // tr = (wr*re[q] >> 12) - (wi*im[q] >> 12) -> R11
        .movi(Reg::R6, static_cast<std::int32_t>(re_base))
        .add(Reg::R6, Reg::R6, Reg::R10)
        .ldw(Reg::R11, Reg::R6, 0) // re[q]
        .mul(Reg::R11, Reg::R7, Reg::R11)
        .asri(Reg::R11, Reg::R11, 12)
        .movi(Reg::R6, static_cast<std::int32_t>(im_base))
        .add(Reg::R6, Reg::R6, Reg::R10)
        .ldw(Reg::R12, Reg::R6, 0) // im[q]
        .mul(Reg::R6, Reg::R8, Reg::R12)
        .asri(Reg::R6, Reg::R6, 12)
        .sub(Reg::R11, Reg::R11, Reg::R6) // tr
        // ti = (wr*im[q] >> 12) + (wi*re[q] >> 12) -> R12
        .mul(Reg::R12, Reg::R7, Reg::R12)
        .asri(Reg::R12, Reg::R12, 12)
        .movi(Reg::R6, static_cast<std::int32_t>(re_base))
        .add(Reg::R6, Reg::R6, Reg::R10)
        .ldw(Reg::R6, Reg::R6, 0) // re[q] again
        .mul(Reg::R6, Reg::R8, Reg::R6)
        .asri(Reg::R6, Reg::R6, 12)
        .add(Reg::R12, Reg::R12, Reg::R6) // ti
        // re[q] = re[p] - tr; re[p] += tr
        .movi(Reg::R6, static_cast<std::int32_t>(re_base))
        .add(Reg::R7, Reg::R6, Reg::R9)
        .ldw(Reg::R8, Reg::R7, 0) // re[p]
        .add(Reg::R6, Reg::R6, Reg::R10)
        .sub(Reg::R7, Reg::R8, Reg::R11)
        .stw(Reg::R7, Reg::R6, 0) // re[q]
        .movi(Reg::R6, static_cast<std::int32_t>(re_base))
        .add(Reg::R6, Reg::R6, Reg::R9)
        .add(Reg::R8, Reg::R8, Reg::R11)
        .stw(Reg::R8, Reg::R6, 0) // re[p]
        // im[q] = im[p] - ti; im[p] += ti
        .movi(Reg::R6, static_cast<std::int32_t>(im_base))
        .add(Reg::R7, Reg::R6, Reg::R9)
        .ldw(Reg::R8, Reg::R7, 0) // im[p]
        .add(Reg::R6, Reg::R6, Reg::R10)
        .sub(Reg::R7, Reg::R8, Reg::R12)
        .stw(Reg::R7, Reg::R6, 0) // im[q]
        .movi(Reg::R6, static_cast<std::int32_t>(im_base))
        .add(Reg::R6, Reg::R6, Reg::R9)
        .add(Reg::R8, Reg::R8, Reg::R12)
        .stw(Reg::R8, Reg::R6, 0) // im[p]
        .addi(Reg::R4, Reg::R4, 1)
        .b("fly");
    a.label("flyd")
        .add(Reg::R3, Reg::R3, Reg::R1) // i += len
        .b("group");
    a.label("staged")
        .checkpoint()
        .lsli(Reg::R1, Reg::R1, 1) // len <<= 1
        .b("stage");
    a.label("fftdone")
        // checksum = sum re[k]*(2k+1) + im[k]*(2k+2)
        .movi(Reg::R1, 0)
        .movi(Reg::R2, 0)
        .movi(Reg::R3, kN);
    a.label("fcs")
        .bgeu(Reg::R1, Reg::R3, "fcsd")
        .lsli(Reg::R4, Reg::R1, 2)
        .movi(Reg::R5, static_cast<std::int32_t>(re_base))
        .add(Reg::R5, Reg::R5, Reg::R4)
        .ldw(Reg::R5, Reg::R5, 0)
        .lsli(Reg::R6, Reg::R1, 1)
        .addi(Reg::R7, Reg::R6, 1)
        .mul(Reg::R5, Reg::R5, Reg::R7)
        .add(Reg::R2, Reg::R2, Reg::R5)
        .movi(Reg::R5, static_cast<std::int32_t>(im_base))
        .add(Reg::R5, Reg::R5, Reg::R4)
        .ldw(Reg::R5, Reg::R5, 0)
        .addi(Reg::R7, Reg::R6, 2)
        .mul(Reg::R5, Reg::R5, Reg::R7)
        .add(Reg::R2, Reg::R2, Reg::R5)
        .addi(Reg::R1, Reg::R1, 1)
        .b("fcs");
    a.label("fcsd")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R2, Reg::R9, 0)
        .halt();

    Workload w;
    w.name = "fft";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase};
    w.expected = {checksum};
    return w;
}

// --------------------------------------------------------------------------
// sha: SHA-1 compression over a two-block (128-byte) baked message with
// the 80-entry W schedule materialized in memory.
// --------------------------------------------------------------------------

namespace {

std::uint32_t
rol(std::uint32_t x, unsigned n)
{
    return (x << n) | (x >> (32 - n));
}

} // namespace

Workload
makeSha(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kBlocks = 16;
    const auto message =
        detail::pseudoWords(0x5AA001, kBlocks * 16); // already "words"

    // C++ mirror: standard SHA-1 over the word message.
    std::uint32_t h[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                          0xC3D2E1F0};
    for (std::uint32_t blk = 0; blk < kBlocks; ++blk) {
        std::uint32_t wsched[80];
        for (int t = 0; t < 16; ++t)
            wsched[t] = message[blk * 16 + t];
        for (int t = 16; t < 80; ++t)
            wsched[t] = rol(wsched[t - 3] ^ wsched[t - 8] ^
                                wsched[t - 14] ^ wsched[t - 16],
                            1);
        std::uint32_t a_ = h[0], b_ = h[1], c_ = h[2], d_ = h[3],
                      e_ = h[4];
        for (int t = 0; t < 80; ++t) {
            std::uint32_t f, k;
            if (t < 20) {
                f = (b_ & c_) | (~b_ & d_);
                k = 0x5A827999;
            } else if (t < 40) {
                f = b_ ^ c_ ^ d_;
                k = 0x6ED9EBA1;
            } else if (t < 60) {
                f = (b_ & c_) | (b_ & d_) | (c_ & d_);
                k = 0x8F1BBCDC;
            } else {
                f = b_ ^ c_ ^ d_;
                k = 0xCA62C1D6;
            }
            const std::uint32_t tmp = rol(a_, 5) + f + e_ + k + wsched[t];
            e_ = d_;
            d_ = c_;
            c_ = rol(b_, 30);
            b_ = a_;
            a_ = tmp;
        }
        h[0] += a_;
        h[1] += b_;
        h[2] += c_;
        h[3] += d_;
        h[4] += e_;
    }

    const std::uint64_t msg_base = layout.dataBase;
    const std::uint64_t w_base = layout.scratchBase;        // W[80]
    const std::uint64_t h_base = layout.scratchBase + 400;  // h[5]

    Assembler a("sha");
    a.initWords(msg_base, message);
    a.initWords(h_base, {0x67452301, static_cast<std::uint32_t>(0xEFCDAB89),
                         static_cast<std::uint32_t>(0x98BADCFE),
                         0x10325476,
                         static_cast<std::uint32_t>(0xC3D2E1F0)});
    a.movi(Reg::R0, 0)
        .movi(Reg::R12, 0); // block index
    a.label("block")
        .movi(Reg::R7, kBlocks)
        .bgeu(Reg::R12, Reg::R7, "shad")
        // W[0..15] = message words of this block
        .movi(Reg::R6, 0);
    a.label("wcopy")
        .movi(Reg::R7, 16)
        .bgeu(Reg::R6, Reg::R7, "wexp")
        .lsli(Reg::R8, Reg::R12, 6) // blk * 64 bytes
        .lsli(Reg::R9, Reg::R6, 2)
        .add(Reg::R8, Reg::R8, Reg::R9)
        .movi(Reg::R10, static_cast<std::int32_t>(msg_base))
        .add(Reg::R8, Reg::R10, Reg::R8)
        .ldw(Reg::R8, Reg::R8, 0)
        .movi(Reg::R10, static_cast<std::int32_t>(w_base))
        .add(Reg::R9, Reg::R10, Reg::R9)
        .stw(Reg::R8, Reg::R9, 0)
        .addi(Reg::R6, Reg::R6, 1)
        .b("wcopy");
    a.label("wexp")
        // W[t] = rol1(W[t-3]^W[t-8]^W[t-14]^W[t-16]), t = 16..79
        .movi(Reg::R6, 16);
    a.label("wloop")
        .movi(Reg::R7, 80)
        .bgeu(Reg::R6, Reg::R7, "rounds")
        .movi(Reg::R10, static_cast<std::int32_t>(w_base))
        .lsli(Reg::R8, Reg::R6, 2)
        .add(Reg::R8, Reg::R10, Reg::R8) // &W[t]
        .ldw(Reg::R9, Reg::R8, -12)      // W[t-3]
        .ldw(Reg::R11, Reg::R8, -32)     // W[t-8]
        .eor(Reg::R9, Reg::R9, Reg::R11)
        .ldw(Reg::R11, Reg::R8, -56)     // W[t-14]
        .eor(Reg::R9, Reg::R9, Reg::R11)
        .ldw(Reg::R11, Reg::R8, -64)     // W[t-16]
        .eor(Reg::R9, Reg::R9, Reg::R11)
        .lsli(Reg::R11, Reg::R9, 1)
        .lsri(Reg::R9, Reg::R9, 31)
        .orr(Reg::R9, Reg::R9, Reg::R11) // rol1
        .stw(Reg::R9, Reg::R8, 0)
        .addi(Reg::R6, Reg::R6, 1)
        .b("wloop");
    a.label("rounds")
        .checkpoint()
        // load a..e from h[]
        .movi(Reg::R10, static_cast<std::int32_t>(h_base))
        .ldw(Reg::R1, Reg::R10, 0)  // a
        .ldw(Reg::R2, Reg::R10, 4)  // b
        .ldw(Reg::R3, Reg::R10, 8)  // c
        .ldw(Reg::R4, Reg::R10, 12) // d
        .ldw(Reg::R5, Reg::R10, 16) // e
        .movi(Reg::R6, 0);          // t
    a.label("round")
        .movi(Reg::R7, 80)
        .bgeu(Reg::R6, Reg::R7, "blockend")
        // f and k by quarter -> R8 (f), R9 (k)
        .movi(Reg::R7, 20)
        .bgeu(Reg::R6, Reg::R7, "q2")
        .and_(Reg::R8, Reg::R2, Reg::R3)
        .eori(Reg::R9, Reg::R2, -1)
        .and_(Reg::R9, Reg::R9, Reg::R4)
        .orr(Reg::R8, Reg::R8, Reg::R9)
        .movi(Reg::R9, 0x5A827999)
        .b("mix");
    a.label("q2")
        .movi(Reg::R7, 40)
        .bgeu(Reg::R6, Reg::R7, "q3")
        .eor(Reg::R8, Reg::R2, Reg::R3)
        .eor(Reg::R8, Reg::R8, Reg::R4)
        .movi(Reg::R9, 0x6ED9EBA1)
        .b("mix");
    a.label("q3")
        .movi(Reg::R7, 60)
        .bgeu(Reg::R6, Reg::R7, "q4")
        .and_(Reg::R8, Reg::R2, Reg::R3)
        .and_(Reg::R9, Reg::R2, Reg::R4)
        .orr(Reg::R8, Reg::R8, Reg::R9)
        .and_(Reg::R9, Reg::R3, Reg::R4)
        .orr(Reg::R8, Reg::R8, Reg::R9)
        .movi(Reg::R9, static_cast<std::int32_t>(0x8F1BBCDC))
        .b("mix");
    a.label("q4")
        .eor(Reg::R8, Reg::R2, Reg::R3)
        .eor(Reg::R8, Reg::R8, Reg::R4)
        .movi(Reg::R9, static_cast<std::int32_t>(0xCA62C1D6));
    a.label("mix")
        // tmp = rol5(a) + f + e + k + W[t]  -> R7
        .lsli(Reg::R7, Reg::R1, 5)
        .lsri(Reg::R11, Reg::R1, 27)
        .orr(Reg::R7, Reg::R7, Reg::R11)
        .add(Reg::R7, Reg::R7, Reg::R8)
        .add(Reg::R7, Reg::R7, Reg::R5)
        .add(Reg::R7, Reg::R7, Reg::R9)
        .movi(Reg::R10, static_cast<std::int32_t>(w_base))
        .lsli(Reg::R11, Reg::R6, 2)
        .add(Reg::R10, Reg::R10, Reg::R11)
        .ldw(Reg::R10, Reg::R10, 0)
        .add(Reg::R7, Reg::R7, Reg::R10)
        // rotate the working registers
        .mov(Reg::R5, Reg::R4)
        .mov(Reg::R4, Reg::R3)
        .lsli(Reg::R3, Reg::R2, 30)
        .lsri(Reg::R11, Reg::R2, 2)
        .orr(Reg::R3, Reg::R3, Reg::R11) // c = rol30(b)
        .mov(Reg::R2, Reg::R1)
        .mov(Reg::R1, Reg::R7)
        .addi(Reg::R6, Reg::R6, 1)
        .b("round");
    a.label("blockend")
        // h[i] += working registers
        .movi(Reg::R10, static_cast<std::int32_t>(h_base))
        .ldw(Reg::R7, Reg::R10, 0)
        .add(Reg::R7, Reg::R7, Reg::R1)
        .stw(Reg::R7, Reg::R10, 0)
        .ldw(Reg::R7, Reg::R10, 4)
        .add(Reg::R7, Reg::R7, Reg::R2)
        .stw(Reg::R7, Reg::R10, 4)
        .ldw(Reg::R7, Reg::R10, 8)
        .add(Reg::R7, Reg::R7, Reg::R3)
        .stw(Reg::R7, Reg::R10, 8)
        .ldw(Reg::R7, Reg::R10, 12)
        .add(Reg::R7, Reg::R7, Reg::R4)
        .stw(Reg::R7, Reg::R10, 12)
        .ldw(Reg::R7, Reg::R10, 16)
        .add(Reg::R7, Reg::R7, Reg::R5)
        .stw(Reg::R7, Reg::R10, 16)
        .checkpoint()
        .addi(Reg::R12, Reg::R12, 1)
        .b("block");
    a.label("shad")
        // copy h[0..4] to the result area
        .movi(Reg::R10, static_cast<std::int32_t>(h_base))
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .ldw(Reg::R7, Reg::R10, 0)
        .stw(Reg::R7, Reg::R9, 0)
        .ldw(Reg::R7, Reg::R10, 4)
        .stw(Reg::R7, Reg::R9, 4)
        .ldw(Reg::R7, Reg::R10, 8)
        .stw(Reg::R7, Reg::R9, 8)
        .ldw(Reg::R7, Reg::R10, 12)
        .stw(Reg::R7, Reg::R9, 12)
        .ldw(Reg::R7, Reg::R10, 16)
        .stw(Reg::R7, Reg::R9, 16)
        .halt();

    Workload w;
    w.name = "sha";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4,
                     layout.resultBase + 8, layout.resultBase + 12,
                     layout.resultBase + 16};
    w.expected = {h[0], h[1], h[2], h[3], h[4]};
    return w;
}

} // namespace eh::workloads
