#include "workloads/workload.hh"

#include "util/panic.hh"
#include "util/random.hh"
#include "workloads/detail.hh"

namespace eh::workloads {

WorkloadLayout
volatileLayout(std::size_t sram_used, std::uint64_t nvm_base)
{
    if (sram_used < 1024)
        fatalf("volatileLayout: payload region too small (", sram_used,
               " bytes); workloads need at least 1 KiB");
    WorkloadLayout l;
    l.dataBase = 64;
    l.scratchBase = sram_used / 2;
    l.resultBase = nvm_base + 16;
    l.dataNonvolatile = false;
    l.sramUsedBytes = sram_used;
    return l;
}

WorkloadLayout
nonvolatileLayout(std::uint64_t nvm_base)
{
    WorkloadLayout l;
    l.dataBase = nvm_base + 256;
    l.scratchBase = nvm_base + 16384;
    l.resultBase = nvm_base + 16;
    l.dataNonvolatile = true;
    l.sramUsedBytes = 0;
    return l;
}

std::vector<std::string>
tableIINames()
{
    return {"rsa", "crc", "sense", "ar", "midi", "ds"};
}

std::vector<std::string>
mibenchNames()
{
    return {"bitcount", "qsort", "basicmath", "stringsearch", "dijkstra",
            "fft", "sha", "adpcm", "lzfx", "patricia", "susan",
            "rijndael", "jpeg"};
}

Workload
makeWorkload(const std::string &name, const WorkloadLayout &layout)
{
    if (name == "rsa") return makeRsa(layout);
    if (name == "crc") return makeCrc(layout);
    if (name == "sense") return makeSense(layout);
    if (name == "ar") return makeAr(layout);
    if (name == "midi") return makeMidi(layout);
    if (name == "ds") return makeDs(layout);
    if (name == "bitcount") return makeBitcount(layout);
    if (name == "qsort") return makeQsort(layout);
    if (name == "basicmath") return makeBasicmath(layout);
    if (name == "stringsearch") return makeStringsearch(layout);
    if (name == "dijkstra") return makeDijkstra(layout);
    if (name == "fft") return makeFft(layout);
    if (name == "sha") return makeSha(layout);
    if (name == "adpcm") return makeAdpcm(layout);
    if (name == "lzfx") return makeLzfx(layout);
    if (name == "patricia") return makePatricia(layout);
    if (name == "susan") return makeSusan(layout);
    if (name == "rijndael") return makeRijndael(layout);
    if (name == "jpeg") return makeJpeg(layout);
    if (name == "counter") return makeCounter(layout);
    fatalf("makeWorkload: unknown workload '", name, "'");
}

namespace detail {

std::vector<std::uint32_t>
pseudoWords(std::uint64_t seed, std::size_t n, std::uint32_t modulo)
{
    Rng rng(seed);
    std::vector<std::uint32_t> out(n);
    for (auto &w : out) {
        w = static_cast<std::uint32_t>(rng.next());
        if (modulo)
            w %= modulo;
    }
    return out;
}

std::vector<std::uint8_t>
pseudoBytes(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<std::uint8_t> out(n);
    for (auto &b : out)
        b = static_cast<std::uint8_t>(rng.next());
    return out;
}

std::vector<std::uint8_t>
wordsToBytes(const std::vector<std::uint32_t> &words)
{
    std::vector<std::uint8_t> bytes(words.size() * 4);
    for (std::size_t i = 0; i < words.size(); ++i) {
        bytes[4 * i] = static_cast<std::uint8_t>(words[i]);
        bytes[4 * i + 1] = static_cast<std::uint8_t>(words[i] >> 8);
        bytes[4 * i + 2] = static_cast<std::uint8_t>(words[i] >> 16);
        bytes[4 * i + 3] = static_cast<std::uint8_t>(words[i] >> 24);
    }
    return bytes;
}

std::vector<std::uint32_t>
crc32Table()
{
    std::vector<std::uint32_t> table(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace detail

} // namespace eh::workloads
