/**
 * @file
 * Internal helpers shared by the workload factories: deterministic input
 * generation (so the assembly program and its C++ reference mirror see
 * identical data) and byte/word image packing for Program::memInits.
 */

#ifndef EH_WORKLOADS_DETAIL_HH
#define EH_WORKLOADS_DETAIL_HH

#include <cstdint>
#include <vector>

namespace eh::workloads::detail {

/** n pseudo-random words from @p seed; values in [0, modulo) if set. */
std::vector<std::uint32_t> pseudoWords(std::uint64_t seed, std::size_t n,
                                       std::uint32_t modulo = 0);

/** n pseudo-random bytes from @p seed. */
std::vector<std::uint8_t> pseudoBytes(std::uint64_t seed, std::size_t n);

/** Pack 32-bit words into a little-endian byte image. */
std::vector<std::uint8_t> wordsToBytes(
    const std::vector<std::uint32_t> &words);

/** Standard CRC-32 (reflected, poly 0xEDB88320) lookup table. */
std::vector<std::uint32_t> crc32Table();

/** The AES S-box (FIPS-197). */
const std::uint8_t *aesSbox();

/**
 * AES-128 key expansion: 16-byte key -> 176 bytes of round keys
 * (FIPS-197 section 5.2).
 */
std::vector<std::uint8_t> aes128ExpandKey(const std::uint8_t key[16]);

/**
 * Encrypt one 16-byte block in place with expanded round keys
 * (FIPS-197 section 5.1). This is the exact byte-oriented algorithm the
 * rijndael workload implements in assembly; the unit tests check it
 * against the FIPS-197 Appendix B vector.
 */
void aes128EncryptBlock(std::uint8_t state[16],
                        const std::uint8_t *round_keys);

} // namespace eh::workloads::detail

#endif // EH_WORKLOADS_DETAIL_HH
