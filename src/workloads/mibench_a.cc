/**
 * @file
 * MiBench-like kernels, batch A: bitcount, qsort, basicmath and
 * stringsearch (Section V-B Clank characterization). Each factory
 * includes a C++ mirror of the exact integer algorithm the assembly
 * implements.
 */

#include <algorithm>
#include <cstdint>

#include "arch/assembler.hh"
#include "workloads/detail.hh"
#include "workloads/workload.hh"

namespace eh::workloads {

using arch::Assembler;
using arch::Reg;

// --------------------------------------------------------------------------
// bitcount: population counts over 128 words, computed two ways
// (Kernighan clearing and bit-serial scan). The two counts must agree —
// a built-in self check.
// --------------------------------------------------------------------------

Workload
makeBitcount(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kWords = 128;
    const auto input = detail::pseudoWords(0xB17C001, kWords);
    const std::uint64_t base = layout.dataBase;

    // C++ mirror.
    std::uint32_t c1 = 0, c2 = 0;
    for (std::uint32_t x : input) {
        std::uint32_t v = x;
        while (v) {
            v &= v - 1;
            ++c1;
        }
        v = x;
        for (int k = 0; k < 32; ++k) {
            c2 += v & 1;
            v >>= 1;
        }
    }

    Assembler a("bitcount");
    a.initWords(base, input);
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0) // i
        .movi(Reg::R2, static_cast<std::int32_t>(base))
        .movi(Reg::R3, kWords)
        .movi(Reg::R5, 0)  // c1
        .movi(Reg::R6, 0); // c2
    a.label("loop")
        .bgeu(Reg::R1, Reg::R3, "done")
        .lsli(Reg::R9, Reg::R1, 2)
        .add(Reg::R9, Reg::R2, Reg::R9)
        .ldw(Reg::R4, Reg::R9, 0);
    a.label("kern")
        .beq(Reg::R4, Reg::R0, "kernd")
        .subi(Reg::R7, Reg::R4, 1)
        .and_(Reg::R4, Reg::R4, Reg::R7)
        .addi(Reg::R5, Reg::R5, 1)
        .b("kern");
    a.label("kernd")
        .ldw(Reg::R4, Reg::R9, 0) // reload x
        .movi(Reg::R8, 0);
    a.label("serial")
        .movi(Reg::R7, 32)
        .bgeu(Reg::R8, Reg::R7, "seriald")
        .andi(Reg::R7, Reg::R4, 1)
        .add(Reg::R6, Reg::R6, Reg::R7)
        .lsri(Reg::R4, Reg::R4, 1)
        .addi(Reg::R8, Reg::R8, 1)
        .b("serial");
    a.label("seriald")
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R7, Reg::R1, 15)
        .bne(Reg::R7, Reg::R0, "loop")
        .checkpoint()
        .b("loop");
    a.label("done")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R5, Reg::R9, 0)
        .stw(Reg::R6, Reg::R9, 4)
        .halt();

    Workload w;
    w.name = "bitcount";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4};
    w.expected = {c1, c2};
    return w;
}

// --------------------------------------------------------------------------
// qsort: iterative Lomuto quicksort of 64 words with an explicit index
// stack in memory — a heavy read-modify-write pattern (frequent
// idempotency violations on Clank).
// --------------------------------------------------------------------------

Workload
makeQsort(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kElems = 256;
    auto input = detail::pseudoWords(0x50C7001, kElems, 100000);
    const std::uint64_t arr_base = layout.dataBase;
    const std::uint64_t stk_base = layout.scratchBase;

    // C++ mirror: the checksum depends only on the sorted order.
    auto sorted = input;
    std::sort(sorted.begin(), sorted.end());
    std::uint32_t checksum = 0;
    for (std::uint32_t k = 0; k < kElems; ++k)
        checksum += sorted[k] * (k + 1);

    Assembler a("qsort");
    a.initWords(arr_base, input);
    a.movi(Reg::R0, 0)
        .movi(Reg::R2, static_cast<std::int32_t>(arr_base))
        .movi(Reg::R3, static_cast<std::int32_t>(stk_base))
        // push (0, kElems-1)
        .stw(Reg::R0, Reg::R3, 0)
        .movi(Reg::R9, kElems - 1)
        .stw(Reg::R9, Reg::R3, 4)
        .movi(Reg::R1, 2); // sp (in words)
    a.label("mloop")
        .beq(Reg::R1, Reg::R0, "sorted")
        // pop hi, then lo
        .subi(Reg::R1, Reg::R1, 1)
        .lsli(Reg::R9, Reg::R1, 2)
        .add(Reg::R9, Reg::R3, Reg::R9)
        .ldw(Reg::R5, Reg::R9, 0) // hi
        .subi(Reg::R1, Reg::R1, 1)
        .lsli(Reg::R9, Reg::R1, 2)
        .add(Reg::R9, Reg::R3, Reg::R9)
        .ldw(Reg::R4, Reg::R9, 0) // lo
        .bgeu(Reg::R4, Reg::R5, "mloop")
        // partition around pivot = a[hi]
        .lsli(Reg::R9, Reg::R5, 2)
        .add(Reg::R9, Reg::R2, Reg::R9)
        .ldw(Reg::R8, Reg::R9, 0)
        .mov(Reg::R6, Reg::R4)  // i
        .mov(Reg::R7, Reg::R4); // j
    a.label("ploop")
        .bgeu(Reg::R7, Reg::R5, "pdone")
        .lsli(Reg::R9, Reg::R7, 2)
        .add(Reg::R9, Reg::R2, Reg::R9)
        .ldw(Reg::R10, Reg::R9, 0) // a[j]
        .bltu(Reg::R8, Reg::R10, "noswap")
        // swap a[i] <-> a[j]
        .lsli(Reg::R11, Reg::R6, 2)
        .add(Reg::R11, Reg::R2, Reg::R11)
        .ldw(Reg::R12, Reg::R11, 0)
        .stw(Reg::R10, Reg::R11, 0)
        .stw(Reg::R12, Reg::R9, 0)
        .addi(Reg::R6, Reg::R6, 1);
    a.label("noswap")
        .addi(Reg::R7, Reg::R7, 1)
        .b("ploop");
    a.label("pdone")
        // swap a[i] <-> a[hi]
        .lsli(Reg::R9, Reg::R6, 2)
        .add(Reg::R9, Reg::R2, Reg::R9)
        .ldw(Reg::R10, Reg::R9, 0)
        .lsli(Reg::R11, Reg::R5, 2)
        .add(Reg::R11, Reg::R2, Reg::R11)
        .ldw(Reg::R12, Reg::R11, 0)
        .stw(Reg::R12, Reg::R9, 0)
        .stw(Reg::R10, Reg::R11, 0)
        // push (lo, i-1) when lo < i
        .bgeu(Reg::R4, Reg::R6, "nopush1")
        .lsli(Reg::R9, Reg::R1, 2)
        .add(Reg::R9, Reg::R3, Reg::R9)
        .stw(Reg::R4, Reg::R9, 0)
        .addi(Reg::R1, Reg::R1, 1)
        .subi(Reg::R10, Reg::R6, 1)
        .lsli(Reg::R9, Reg::R1, 2)
        .add(Reg::R9, Reg::R3, Reg::R9)
        .stw(Reg::R10, Reg::R9, 0)
        .addi(Reg::R1, Reg::R1, 1);
    a.label("nopush1")
        // push (i+1, hi) when i+1 < hi
        .addi(Reg::R10, Reg::R6, 1)
        .bgeu(Reg::R10, Reg::R5, "nopush2")
        .lsli(Reg::R9, Reg::R1, 2)
        .add(Reg::R9, Reg::R3, Reg::R9)
        .stw(Reg::R10, Reg::R9, 0)
        .addi(Reg::R1, Reg::R1, 1)
        .lsli(Reg::R9, Reg::R1, 2)
        .add(Reg::R9, Reg::R3, Reg::R9)
        .stw(Reg::R5, Reg::R9, 0)
        .addi(Reg::R1, Reg::R1, 1);
    a.label("nopush2")
        .checkpoint()
        .b("mloop");
    a.label("sorted")
        .movi(Reg::R4, 0) // k
        .movi(Reg::R5, 0) // checksum
        .movi(Reg::R6, kElems);
    a.label("qcs")
        .bgeu(Reg::R4, Reg::R6, "qcsd")
        .lsli(Reg::R9, Reg::R4, 2)
        .add(Reg::R9, Reg::R2, Reg::R9)
        .ldw(Reg::R10, Reg::R9, 0)
        .addi(Reg::R11, Reg::R4, 1)
        .mul(Reg::R10, Reg::R10, Reg::R11)
        .add(Reg::R5, Reg::R5, Reg::R10)
        .addi(Reg::R4, Reg::R4, 1)
        .b("qcs");
    a.label("qcsd")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R5, Reg::R9, 0)
        .halt();

    Workload w;
    w.name = "qsort";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase};
    w.expected = {checksum};
    return w;
}

// --------------------------------------------------------------------------
// basicmath: bit-by-bit integer square roots over 64 inputs plus Euclid
// GCDs over 32 pairs.
// --------------------------------------------------------------------------

Workload
makeBasicmath(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kRoots = 256;
    constexpr std::uint32_t kPairs = 128;
    const auto root_in = detail::pseudoWords(0xBA5E001, kRoots);
    const auto gcd_in =
        detail::pseudoWords(0xBA5E002, kPairs * 2, 1000000);
    const std::uint64_t root_base = layout.dataBase;
    const std::uint64_t gcd_base = layout.dataBase + kRoots * 4;

    // C++ mirror.
    auto isqrt = [](std::uint32_t x) {
        std::uint32_t res = 0;
        std::uint32_t bit = 1u << 30;
        while (bit > x)
            bit >>= 2;
        while (bit) {
            if (x >= res + bit) {
                x -= res + bit;
                res = (res >> 1) + bit;
            } else {
                res >>= 1;
            }
            bit >>= 2;
        }
        return res;
    };
    std::uint32_t sum_roots = 0;
    for (std::uint32_t x : root_in)
        sum_roots += isqrt(x);
    std::uint32_t sum_gcd = 0;
    for (std::uint32_t p = 0; p < kPairs; ++p) {
        std::uint32_t x = gcd_in[2 * p] + 1;
        std::uint32_t y = gcd_in[2 * p + 1] + 1;
        while (y) {
            const std::uint32_t t = x % y;
            x = y;
            y = t;
        }
        sum_gcd += x;
    }

    Assembler a("basicmath");
    a.initWords(root_base, root_in);
    a.initWords(gcd_base, gcd_in);
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0) // i
        .movi(Reg::R2, static_cast<std::int32_t>(root_base))
        .movi(Reg::R3, kRoots)
        .movi(Reg::R12, 0); // sum_roots
    // --- isqrt loop ---
    a.label("rloop")
        .bgeu(Reg::R1, Reg::R3, "rdone")
        .lsli(Reg::R9, Reg::R1, 2)
        .add(Reg::R9, Reg::R2, Reg::R9)
        .ldw(Reg::R4, Reg::R9, 0)  // x
        .movi(Reg::R5, 0)          // res
        .movi(Reg::R6, 1 << 30);   // bit
    a.label("bitdn")
        .bgeu(Reg::R4, Reg::R6, "sqloop")
        .lsri(Reg::R6, Reg::R6, 2)
        .beq(Reg::R6, Reg::R0, "sqdone")
        .b("bitdn");
    a.label("sqloop")
        .beq(Reg::R6, Reg::R0, "sqdone")
        .add(Reg::R7, Reg::R5, Reg::R6) // res + bit
        .bltu(Reg::R4, Reg::R7, "sqelse")
        .sub(Reg::R4, Reg::R4, Reg::R7)
        .lsri(Reg::R5, Reg::R5, 1)
        .add(Reg::R5, Reg::R5, Reg::R6)
        .b("sqnext");
    a.label("sqelse")
        .lsri(Reg::R5, Reg::R5, 1);
    a.label("sqnext")
        .lsri(Reg::R6, Reg::R6, 2)
        .b("sqloop");
    a.label("sqdone")
        .add(Reg::R12, Reg::R12, Reg::R5)
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R7, Reg::R1, 15)
        .bne(Reg::R7, Reg::R0, "rloop")
        .checkpoint()
        .b("rloop");
    // --- gcd loop ---
    a.label("rdone")
        .movi(Reg::R1, 0) // pair index
        .movi(Reg::R2, static_cast<std::int32_t>(gcd_base))
        .movi(Reg::R3, kPairs)
        .movi(Reg::R11, 0); // sum_gcd
    a.label("gloop")
        .bgeu(Reg::R1, Reg::R3, "gdone")
        .lsli(Reg::R9, Reg::R1, 3)
        .add(Reg::R9, Reg::R2, Reg::R9)
        .ldw(Reg::R4, Reg::R9, 0)
        .addi(Reg::R4, Reg::R4, 1) // x = in + 1 (avoid zero)
        .ldw(Reg::R5, Reg::R9, 4)
        .addi(Reg::R5, Reg::R5, 1); // y
    a.label("euclid")
        .beq(Reg::R5, Reg::R0, "euclidd")
        .remu(Reg::R7, Reg::R4, Reg::R5)
        .mov(Reg::R4, Reg::R5)
        .mov(Reg::R5, Reg::R7)
        .b("euclid");
    a.label("euclidd")
        .add(Reg::R11, Reg::R11, Reg::R4)
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R7, Reg::R1, 7)
        .bne(Reg::R7, Reg::R0, "gloop")
        .checkpoint()
        .b("gloop");
    a.label("gdone")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R12, Reg::R9, 0)
        .stw(Reg::R11, Reg::R9, 4)
        .halt();

    Workload w;
    w.name = "basicmath";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4};
    w.expected = {sum_roots, sum_gcd};
    return w;
}

// --------------------------------------------------------------------------
// stringsearch: naive substring search of an 8-byte pattern in 512 bytes
// of generated text (with planted occurrences).
// --------------------------------------------------------------------------

Workload
makeStringsearch(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kTextLen = 2048;
    constexpr std::uint32_t kPatLen = 8;
    auto text = detail::pseudoBytes(0x5EA4C4, kTextLen);
    const std::uint8_t pattern[kPatLen] = {'e', 'h', 'm', 'o',
                                           'd', 'e', 'l', '!'};
    // Plant occurrences so matches exist.
    for (std::uint32_t pos : {37u, 200u, 201u, 444u, 1023u, 1999u}) {
        for (std::uint32_t k = 0; k < kPatLen; ++k)
            text[pos + k] = pattern[k];
    }
    const std::uint64_t text_base = layout.dataBase;
    const std::uint64_t pat_base = layout.scratchBase;

    // C++ mirror.
    std::uint32_t matches = 0, first = kTextLen;
    for (std::uint32_t i = 0; i + kPatLen <= kTextLen; ++i) {
        std::uint32_t k = 0;
        while (k < kPatLen && text[i + k] == pattern[k])
            ++k;
        if (k == kPatLen) {
            ++matches;
            first = std::min(first, i);
        }
    }

    Assembler a("stringsearch");
    a.initBytes(text_base, text);
    a.initBytes(pat_base,
                std::vector<std::uint8_t>(pattern, pattern + kPatLen));
    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0) // i
        .movi(Reg::R2, static_cast<std::int32_t>(text_base))
        .movi(Reg::R3, static_cast<std::int32_t>(pat_base))
        .movi(Reg::R4, kTextLen - kPatLen + 1)
        .movi(Reg::R5, 0)          // matches
        .movi(Reg::R6, kTextLen)   // first (sentinel)
        .movi(Reg::R12, kPatLen);
    a.label("iloop")
        .bgeu(Reg::R1, Reg::R4, "done")
        .movi(Reg::R7, 0); // k
    a.label("kloop")
        .bgeu(Reg::R7, Reg::R12, "hit")
        .add(Reg::R8, Reg::R1, Reg::R7)
        .add(Reg::R8, Reg::R2, Reg::R8)
        .ldb(Reg::R9, Reg::R8, 0)
        .add(Reg::R10, Reg::R3, Reg::R7)
        .ldb(Reg::R10, Reg::R10, 0)
        .bne(Reg::R9, Reg::R10, "miss")
        .addi(Reg::R7, Reg::R7, 1)
        .b("kloop");
    a.label("hit")
        .addi(Reg::R5, Reg::R5, 1)
        .bltu(Reg::R1, Reg::R6, "sethit")
        .b("miss");
    a.label("sethit")
        .mov(Reg::R6, Reg::R1);
    a.label("miss")
        .addi(Reg::R1, Reg::R1, 1)
        .andi(Reg::R8, Reg::R1, 63)
        .bne(Reg::R8, Reg::R0, "iloop")
        .checkpoint()
        .b("iloop");
    a.label("done")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R5, Reg::R9, 0)
        .stw(Reg::R6, Reg::R9, 4)
        .halt();

    Workload w;
    w.name = "stringsearch";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase, layout.resultBase + 4};
    w.expected = {matches, first};
    return w;
}

} // namespace eh::workloads
