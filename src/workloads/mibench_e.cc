/**
 * @file
 * MiBench-like kernels, batch E: jpeg — the forward 8x8 DCT at the heart
 * of JPEG compression, as a separable fixed-point (Q12) transform over a
 * 32x32 image (16 blocks). The row pass writes an intermediate block
 * that the column pass reads back — a producer/consumer RMW pattern
 * distinct from the other kernels.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "arch/assembler.hh"
#include "workloads/detail.hh"
#include "workloads/workload.hh"

namespace eh::workloads {

using arch::Assembler;
using arch::Reg;

Workload
makeJpeg(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kDim = 32;          // image edge
    constexpr std::uint32_t kBlocks = (kDim / 8) * (kDim / 8);

    const auto image = detail::pseudoBytes(0x19E6001, kDim * kDim);

    // Orthonormal DCT-II basis in Q12:
    // C[u][x] = c(u) * cos((2x+1) u pi / 16), c(0)=sqrt(1/8), else 1/2.
    std::vector<std::uint32_t> basis(64);
    for (std::uint32_t u = 0; u < 8; ++u) {
        const double cu = u == 0 ? std::sqrt(1.0 / 8.0) : 0.5;
        for (std::uint32_t x = 0; x < 8; ++x) {
            const double val =
                cu * std::cos((2.0 * x + 1.0) * u * M_PI / 16.0);
            basis[u * 8 + x] = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(std::lround(val * 4096.0)));
        }
    }

    // C++ mirror with the exact integer arithmetic of the assembly.
    std::uint32_t checksum = 0;
    {
        for (std::uint32_t by = 0; by < kDim / 8; ++by) {
            for (std::uint32_t bx = 0; bx < kDim / 8; ++bx) {
                std::int32_t tmp[64];
                // Row pass: tmp[u][y] = (sum_x C[u][x]*(p(x,y)-128)) >> 8
                for (std::uint32_t u = 0; u < 8; ++u) {
                    for (std::uint32_t y = 0; y < 8; ++y) {
                        std::int32_t acc = 0;
                        for (std::uint32_t x = 0; x < 8; ++x) {
                            const std::int32_t pixel =
                                static_cast<std::int32_t>(
                                    image[(by * 8 + y) * kDim +
                                          bx * 8 + x]) -
                                128;
                            acc += static_cast<std::int32_t>(
                                       basis[u * 8 + x]) *
                                   pixel;
                        }
                        tmp[u * 8 + y] = acc >> 8;
                    }
                }
                // Column pass: coef[u][v] =
                //   (sum_y C[v][y] * tmp[u][y]) >> 16
                for (std::uint32_t u = 0; u < 8; ++u) {
                    for (std::uint32_t v = 0; v < 8; ++v) {
                        std::int32_t acc = 0;
                        for (std::uint32_t y = 0; y < 8; ++y) {
                            acc += static_cast<std::int32_t>(
                                       basis[v * 8 + y]) *
                                   tmp[u * 8 + y];
                        }
                        const std::int32_t coef = acc >> 16;
                        const std::uint32_t idx =
                            (by * (kDim / 8) + bx) * 64 + u * 8 + v;
                        checksum +=
                            static_cast<std::uint32_t>(coef) * (idx + 1);
                    }
                }
            }
        }
    }

    const auto img_base = static_cast<std::int32_t>(layout.dataBase);
    const auto basis_base =
        static_cast<std::int32_t>(layout.scratchBase);
    const auto tmp_base =
        static_cast<std::int32_t>(layout.scratchBase + 256);
    // Registers: R1 block, R2/R3 u/v-or-y loops, R4 inner index,
    // R5 accumulator, R6..R10 scratch, R11 checksum, R12 coef index.
    Assembler a("jpeg");
    a.initBytes(static_cast<std::uint64_t>(img_base), image);
    a.initWords(static_cast<std::uint64_t>(basis_base), basis);

    a.movi(Reg::R0, 0)
        .movi(Reg::R1, 0)   // block index
        .movi(Reg::R11, 0)  // checksum
        .movi(Reg::R12, 0); // linear coefficient index
    a.label("blk")
        .movi(Reg::R6, kBlocks)
        .bgeu(Reg::R1, Reg::R6, "jdone")
        // --- row pass: tmp[u*8+y] ---
        .movi(Reg::R2, 0); // u
    a.label("rowu")
        .movi(Reg::R6, 8)
        .bgeu(Reg::R2, Reg::R6, "colstart")
        .movi(Reg::R3, 0); // y
    a.label("rowy")
        .movi(Reg::R6, 8)
        .bgeu(Reg::R3, Reg::R6, "rownextu")
        .movi(Reg::R5, 0)  // acc
        .movi(Reg::R4, 0); // x
    a.label("rowx")
        .movi(Reg::R6, 8)
        .bgeu(Reg::R4, Reg::R6, "rowstore")
        // pixel address: ((by*8+y)*32 + bx*8 + x); with block index
        // b = by*4+bx: row = (b>>2)*8+y, col = (b&3)*8+x.
        .lsri(Reg::R6, Reg::R1, 2)
        .lsli(Reg::R6, Reg::R6, 3)
        .add(Reg::R6, Reg::R6, Reg::R3) // row
        .lsli(Reg::R6, Reg::R6, 5)     // row * 32
        .andi(Reg::R7, Reg::R1, 3)
        .lsli(Reg::R7, Reg::R7, 3)
        .add(Reg::R7, Reg::R7, Reg::R4) // col
        .add(Reg::R6, Reg::R6, Reg::R7)
        .movi(Reg::R7, img_base)
        .add(Reg::R6, Reg::R7, Reg::R6)
        .ldb(Reg::R6, Reg::R6, 0)
        .subi(Reg::R6, Reg::R6, 128) // centered pixel
        // basis C[u][x]
        .lsli(Reg::R7, Reg::R2, 3)
        .add(Reg::R7, Reg::R7, Reg::R4)
        .lsli(Reg::R7, Reg::R7, 2)
        .movi(Reg::R8, basis_base)
        .add(Reg::R7, Reg::R8, Reg::R7)
        .ldw(Reg::R7, Reg::R7, 0)
        .mul(Reg::R6, Reg::R6, Reg::R7)
        .add(Reg::R5, Reg::R5, Reg::R6)
        .addi(Reg::R4, Reg::R4, 1)
        .b("rowx");
    a.label("rowstore")
        .asri(Reg::R5, Reg::R5, 8)
        .lsli(Reg::R6, Reg::R2, 3)
        .add(Reg::R6, Reg::R6, Reg::R3)
        .lsli(Reg::R6, Reg::R6, 2)
        .movi(Reg::R7, tmp_base)
        .add(Reg::R6, Reg::R7, Reg::R6)
        .stw(Reg::R5, Reg::R6, 0)
        .addi(Reg::R3, Reg::R3, 1)
        .b("rowy");
    a.label("rownextu")
        .addi(Reg::R2, Reg::R2, 1)
        .b("rowu");
    // --- column pass: coef[u][v] from tmp ---
    a.label("colstart")
        .movi(Reg::R2, 0); // u
    a.label("colu")
        .movi(Reg::R6, 8)
        .bgeu(Reg::R2, Reg::R6, "blknext")
        .movi(Reg::R3, 0); // v
    a.label("colv")
        .movi(Reg::R6, 8)
        .bgeu(Reg::R3, Reg::R6, "colnextu")
        .movi(Reg::R5, 0)  // acc
        .movi(Reg::R4, 0); // y
    a.label("coly")
        .movi(Reg::R6, 8)
        .bgeu(Reg::R4, Reg::R6, "colemit")
        // tmp[u*8 + y]
        .lsli(Reg::R6, Reg::R2, 3)
        .add(Reg::R6, Reg::R6, Reg::R4)
        .lsli(Reg::R6, Reg::R6, 2)
        .movi(Reg::R7, tmp_base)
        .add(Reg::R6, Reg::R7, Reg::R6)
        .ldw(Reg::R6, Reg::R6, 0)
        // basis C[v][y]
        .lsli(Reg::R7, Reg::R3, 3)
        .add(Reg::R7, Reg::R7, Reg::R4)
        .lsli(Reg::R7, Reg::R7, 2)
        .movi(Reg::R8, basis_base)
        .add(Reg::R7, Reg::R8, Reg::R7)
        .ldw(Reg::R7, Reg::R7, 0)
        .mul(Reg::R6, Reg::R6, Reg::R7)
        .add(Reg::R5, Reg::R5, Reg::R6)
        .addi(Reg::R4, Reg::R4, 1)
        .b("coly");
    a.label("colemit")
        .asri(Reg::R5, Reg::R5, 16)
        // checksum += coef * (idx + 1); idx advances u-major per block
        .addi(Reg::R12, Reg::R12, 1)
        .mul(Reg::R5, Reg::R5, Reg::R12)
        .add(Reg::R11, Reg::R11, Reg::R5)
        .addi(Reg::R3, Reg::R3, 1)
        .b("colv");
    a.label("colnextu")
        .addi(Reg::R2, Reg::R2, 1)
        .b("colu");
    a.label("blknext")
        .checkpoint()
        .addi(Reg::R1, Reg::R1, 1)
        .b("blk");
    a.label("jdone")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R11, Reg::R9, 0)
        .halt();

    Workload w;
    w.name = "jpeg";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase};
    w.expected = {checksum};
    return w;
}

} // namespace eh::workloads
