/**
 * @file
 * MiBench-like kernels, batch D: rijndael — AES-128 encryption of eight
 * CBC-chained blocks, byte-oriented exactly as in FIPS-197 (S-box and
 * expanded round keys baked as data, as embedded deployments do). The
 * in-place state updates through SubBytes/ShiftRows/MixColumns are a
 * rich source of read-modify-write traffic for the Clank tracker.
 */

#include <cstdint>
#include <vector>

#include "arch/assembler.hh"
#include "workloads/detail.hh"
#include "workloads/workload.hh"

namespace eh::workloads {

using arch::Assembler;
using arch::Reg;

Workload
makeRijndael(const WorkloadLayout &layout)
{
    constexpr std::uint32_t kBlocks = 8;

    const auto key_bytes = detail::pseudoBytes(0xAE5001, 16);
    const auto input = detail::pseudoBytes(0xAE5002, kBlocks * 16);
    const auto round_keys = detail::aes128ExpandKey(key_bytes.data());
    const std::uint8_t *sbox = detail::aesSbox();

    // C++ mirror: CBC chaining with a zero IV.
    std::vector<std::uint8_t> out(kBlocks * 16);
    {
        std::uint8_t prev[16] = {};
        for (std::uint32_t b = 0; b < kBlocks; ++b) {
            std::uint8_t state[16];
            for (int i = 0; i < 16; ++i)
                state[i] = input[b * 16 + i] ^ prev[i];
            detail::aes128EncryptBlock(state, round_keys.data());
            for (int i = 0; i < 16; ++i) {
                out[b * 16 + i] = state[i];
                prev[i] = state[i];
            }
        }
    }
    std::uint32_t checksum = 0;
    for (std::uint32_t k = 0; k < out.size(); ++k)
        checksum += static_cast<std::uint32_t>(out[k]) * (k + 1);

    const auto in_base = static_cast<std::int32_t>(layout.dataBase);
    const auto out_base =
        static_cast<std::int32_t>(layout.dataBase + 512);
    const auto sbox_base = static_cast<std::int32_t>(layout.scratchBase);
    const auto rk_base =
        static_cast<std::int32_t>(layout.scratchBase + 256);
    const auto state_base =
        static_cast<std::int32_t>(layout.scratchBase + 448);
    const auto tmp_base =
        static_cast<std::int32_t>(layout.scratchBase + 464);

    // Register plan: R0 zero, R1 round, R2 loop index, R3..R9 scratch,
    // R10 block, R11/R12 scratch for xtime. LR used for one-level calls.
    Assembler a("rijndael");
    a.initBytes(static_cast<std::uint64_t>(sbox_base),
                std::vector<std::uint8_t>(sbox, sbox + 256));
    a.initBytes(static_cast<std::uint64_t>(rk_base), round_keys);
    a.initBytes(static_cast<std::uint64_t>(in_base), input);

    a.movi(Reg::R0, 0).movi(Reg::R10, 0);
    a.label("blk")
        .movi(Reg::R3, kBlocks)
        .bgeu(Reg::R10, Reg::R3, "aesdone")
        // state[i] = in[b*16+i] ^ (b ? out[(b-1)*16+i] : 0)
        .movi(Reg::R2, 0);
    a.label("ld")
        .movi(Reg::R3, 16)
        .bgeu(Reg::R2, Reg::R3, "ldd")
        .lsli(Reg::R4, Reg::R10, 4)
        .add(Reg::R4, Reg::R4, Reg::R2)
        .movi(Reg::R5, in_base)
        .add(Reg::R4, Reg::R5, Reg::R4)
        .ldb(Reg::R5, Reg::R4, 0)
        .beq(Reg::R10, Reg::R0, "noprev")
        .subi(Reg::R6, Reg::R10, 1)
        .lsli(Reg::R6, Reg::R6, 4)
        .add(Reg::R6, Reg::R6, Reg::R2)
        .movi(Reg::R7, out_base)
        .add(Reg::R6, Reg::R7, Reg::R6)
        .ldb(Reg::R6, Reg::R6, 0)
        .eor(Reg::R5, Reg::R5, Reg::R6);
    a.label("noprev")
        .movi(Reg::R7, state_base)
        .add(Reg::R6, Reg::R7, Reg::R2)
        .stb(Reg::R5, Reg::R6, 0)
        .addi(Reg::R2, Reg::R2, 1)
        .b("ld");
    a.label("ldd")
        .movi(Reg::R1, 0)
        .call("ark")
        .movi(Reg::R1, 1);
    a.label("rounds")
        .movi(Reg::R3, 10)
        .bgeu(Reg::R1, Reg::R3, "final")
        .call("sbs")
        .call("mxc")
        .call("ark")
        .addi(Reg::R1, Reg::R1, 1)
        .b("rounds");
    a.label("final")
        .call("sbs")
        .movi(Reg::R1, 10)
        .call("ark")
        // out[b*16 ..] = state (word copies)
        .movi(Reg::R2, 0);
    a.label("st")
        .movi(Reg::R3, 16)
        .bgeu(Reg::R2, Reg::R3, "std")
        .movi(Reg::R4, state_base)
        .add(Reg::R4, Reg::R4, Reg::R2)
        .ldw(Reg::R5, Reg::R4, 0)
        .lsli(Reg::R4, Reg::R10, 4)
        .add(Reg::R4, Reg::R4, Reg::R2)
        .movi(Reg::R6, out_base)
        .add(Reg::R4, Reg::R6, Reg::R4)
        .stw(Reg::R5, Reg::R4, 0)
        .addi(Reg::R2, Reg::R2, 4)
        .b("st");
    a.label("std")
        .checkpoint()
        .addi(Reg::R10, Reg::R10, 1)
        .b("blk");
    a.label("aesdone")
        // checksum over the ciphertext
        .movi(Reg::R1, 0)
        .movi(Reg::R2, 0)
        .movi(Reg::R3, kBlocks * 16);
    a.label("acs")
        .bgeu(Reg::R1, Reg::R3, "acsd")
        .movi(Reg::R4, out_base)
        .add(Reg::R4, Reg::R4, Reg::R1)
        .ldb(Reg::R5, Reg::R4, 0)
        .addi(Reg::R6, Reg::R1, 1)
        .mul(Reg::R5, Reg::R5, Reg::R6)
        .add(Reg::R2, Reg::R2, Reg::R5)
        .addi(Reg::R1, Reg::R1, 1)
        .b("acs");
    a.label("acsd")
        .movi(Reg::R9, static_cast<std::int32_t>(layout.resultBase))
        .stw(Reg::R2, Reg::R9, 0)
        .halt();

    // ---- subroutine: AddRoundKey (round in R1) ----
    a.label("ark")
        .movi(Reg::R2, 0);
    a.label("arkl")
        .movi(Reg::R3, 4)
        .bgeu(Reg::R2, Reg::R3, "arkd")
        .lsli(Reg::R4, Reg::R2, 2)
        .movi(Reg::R5, state_base)
        .add(Reg::R5, Reg::R5, Reg::R4)
        .ldw(Reg::R6, Reg::R5, 0)
        .lsli(Reg::R7, Reg::R1, 4)
        .add(Reg::R7, Reg::R7, Reg::R4)
        .movi(Reg::R8, rk_base)
        .add(Reg::R7, Reg::R8, Reg::R7)
        .ldw(Reg::R7, Reg::R7, 0)
        .eor(Reg::R6, Reg::R6, Reg::R7)
        .stw(Reg::R6, Reg::R5, 0)
        .addi(Reg::R2, Reg::R2, 1)
        .b("arkl");
    a.label("arkd")
        .ret();

    // ---- subroutine: SubBytes + ShiftRows into tmp, copy back ----
    a.label("sbs")
        .movi(Reg::R2, 0); // row
    a.label("sbr")
        .movi(Reg::R3, 4)
        .bgeu(Reg::R2, Reg::R3, "sbcopy")
        .movi(Reg::R4, 0); // col
    a.label("sbc")
        .movi(Reg::R3, 4)
        .bgeu(Reg::R4, Reg::R3, "sbrn")
        .add(Reg::R5, Reg::R4, Reg::R2)
        .andi(Reg::R5, Reg::R5, 3)
        .lsli(Reg::R5, Reg::R5, 2)
        .add(Reg::R5, Reg::R5, Reg::R2)
        .movi(Reg::R6, state_base)
        .add(Reg::R5, Reg::R6, Reg::R5)
        .ldb(Reg::R5, Reg::R5, 0)
        .movi(Reg::R6, sbox_base)
        .add(Reg::R5, Reg::R6, Reg::R5)
        .ldb(Reg::R5, Reg::R5, 0)
        .lsli(Reg::R6, Reg::R4, 2)
        .add(Reg::R6, Reg::R6, Reg::R2)
        .movi(Reg::R7, tmp_base)
        .add(Reg::R6, Reg::R7, Reg::R6)
        .stb(Reg::R5, Reg::R6, 0)
        .addi(Reg::R4, Reg::R4, 1)
        .b("sbc");
    a.label("sbrn")
        .addi(Reg::R2, Reg::R2, 1)
        .b("sbr");
    a.label("sbcopy")
        .movi(Reg::R2, 0);
    a.label("cpl")
        .movi(Reg::R3, 16)
        .bgeu(Reg::R2, Reg::R3, "cpd")
        .movi(Reg::R4, tmp_base)
        .add(Reg::R4, Reg::R4, Reg::R2)
        .ldw(Reg::R5, Reg::R4, 0)
        .movi(Reg::R4, state_base)
        .add(Reg::R4, Reg::R4, Reg::R2)
        .stw(Reg::R5, Reg::R4, 0)
        .addi(Reg::R2, Reg::R2, 4)
        .b("cpl");
    a.label("cpd")
        .ret();

    // ---- subroutine: MixColumns in place ----
    a.label("mxc")
        .movi(Reg::R2, 0); // column
    a.label("mxl")
        .movi(Reg::R3, 4)
        .bgeu(Reg::R2, Reg::R3, "mxd")
        .lsli(Reg::R9, Reg::R2, 2)
        .movi(Reg::R3, state_base)
        .add(Reg::R9, Reg::R3, Reg::R9) // &state[col*4]
        .ldb(Reg::R3, Reg::R9, 0)       // a0
        .ldb(Reg::R4, Reg::R9, 1)       // a1
        .ldb(Reg::R5, Reg::R9, 2)       // a2
        .ldb(Reg::R6, Reg::R9, 3)       // a3
        .eor(Reg::R7, Reg::R3, Reg::R4)
        .eor(Reg::R7, Reg::R7, Reg::R5)
        .eor(Reg::R7, Reg::R7, Reg::R6) // t
        // c0 = a0 ^ t ^ xtime(a0 ^ a1)
        .eor(Reg::R8, Reg::R3, Reg::R4)
        .lsli(Reg::R12, Reg::R8, 1)
        .andi(Reg::R11, Reg::R8, 128)
        .beq(Reg::R11, Reg::R0, "xt0")
        .eori(Reg::R12, Reg::R12, 0x1B);
    a.label("xt0")
        .andi(Reg::R12, Reg::R12, 255)
        .eor(Reg::R12, Reg::R12, Reg::R7)
        .eor(Reg::R12, Reg::R12, Reg::R3)
        .stb(Reg::R12, Reg::R9, 0)
        // c1 = a1 ^ t ^ xtime(a1 ^ a2)
        .eor(Reg::R8, Reg::R4, Reg::R5)
        .lsli(Reg::R12, Reg::R8, 1)
        .andi(Reg::R11, Reg::R8, 128)
        .beq(Reg::R11, Reg::R0, "xt1")
        .eori(Reg::R12, Reg::R12, 0x1B);
    a.label("xt1")
        .andi(Reg::R12, Reg::R12, 255)
        .eor(Reg::R12, Reg::R12, Reg::R7)
        .eor(Reg::R12, Reg::R12, Reg::R4)
        .stb(Reg::R12, Reg::R9, 1)
        // c2 = a2 ^ t ^ xtime(a2 ^ a3)
        .eor(Reg::R8, Reg::R5, Reg::R6)
        .lsli(Reg::R12, Reg::R8, 1)
        .andi(Reg::R11, Reg::R8, 128)
        .beq(Reg::R11, Reg::R0, "xt2")
        .eori(Reg::R12, Reg::R12, 0x1B);
    a.label("xt2")
        .andi(Reg::R12, Reg::R12, 255)
        .eor(Reg::R12, Reg::R12, Reg::R7)
        .eor(Reg::R12, Reg::R12, Reg::R5)
        .stb(Reg::R12, Reg::R9, 2)
        // c3 = a3 ^ t ^ xtime(a3 ^ a0)
        .eor(Reg::R8, Reg::R6, Reg::R3)
        .lsli(Reg::R12, Reg::R8, 1)
        .andi(Reg::R11, Reg::R8, 128)
        .beq(Reg::R11, Reg::R0, "xt3")
        .eori(Reg::R12, Reg::R12, 0x1B);
    a.label("xt3")
        .andi(Reg::R12, Reg::R12, 255)
        .eor(Reg::R12, Reg::R12, Reg::R7)
        .eor(Reg::R12, Reg::R12, Reg::R6)
        .stb(Reg::R12, Reg::R9, 3)
        .addi(Reg::R2, Reg::R2, 1)
        .b("mxl");
    a.label("mxd")
        .ret();

    Workload w;
    w.name = "rijndael";
    w.program = a.assemble();
    w.sramUsedBytes = layout.sramUsedBytes;
    w.resultAddrs = {layout.resultBase};
    w.expected = {checksum};
    return w;
}

} // namespace eh::workloads
