/**
 * @file
 * The fault injector: executes a FaultPlan against a running simulation.
 * The simulator consults it at every point the plan can strike — before
 * each instruction, inside each backup and restore, at the selector-word
 * flip, after each commit — and the injector answers deterministically
 * from the plan and its seeded Rng while tallying what it injected.
 *
 * The injector is deliberately mechanism-free: it decides *that* a fault
 * happens (and where, for bit flips); the simulator owns the physics of
 * what a torn slot write or a dropped selector flip leaves behind.
 */

#ifndef EH_FAULT_INJECTOR_HH
#define EH_FAULT_INJECTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/plan.hh"
#include "util/random.hh"

namespace eh::mem {
class Nvm;
}

namespace eh::fault {

/** Outcome of consulting the injector at the selector-word flip. */
enum class SelectorFlipFault
{
    None,       ///< the flip commits normally
    BeforeFlip, ///< power dies first; the old selector value persists
    TornWrite   ///< power dies mid-write; the word is left as garbage
};

/** Executes one FaultPlan against one simulation run (see file header). */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /**
     * The simulator reports its checkpoint geometry (NVM-relative
     * addresses) so targeted corruption knows where the slots live.
     */
    void noteCheckpointRegion(std::uint64_t slot0_addr,
                              std::uint64_t slot_bytes,
                              std::uint64_t selector_addr);

    /**
     * Should power fail before the instruction about to execute?
     * @param instruction Lifetime executed-instruction count so far.
     * @param active_cycle Lifetime active-cycle count so far.
     */
    bool failBeforeInstruction(std::uint64_t instruction,
                               std::uint64_t active_cycle);

    /**
     * Smallest pending failAtInstruction point, or UINT64_MAX when none
     * is pending (or forced failures are exhausted). The block engine
     * clamps its quanta so failBeforeInstruction() is consulted at
     * exactly this instruction.
     */
    std::uint64_t nextInstructionTrigger() const;

    /** Smallest pending failAtCycle point, or UINT64_MAX when none. */
    std::uint64_t nextCycleTrigger() const;

    /**
     * Should backup number @p backup_index (0-based attempt count),
     * which will take @p cycles cycles, be interrupted? Returns the
     * cycle offset in [0, cycles) at which power dies, or nullopt.
     */
    std::optional<std::uint64_t> backupFailure(std::uint64_t backup_index,
                                               std::uint64_t cycles);

    /** Consulted when a fully written slot is about to be committed. */
    SelectorFlipFault selectorFlipFailure();

    /** Garbage value a torn selector write leaves behind (never 0/1/2). */
    std::uint32_t tornSelectorValue();

    /**
     * Should this restore (taking @p cycles cycles) be interrupted by a
     * power failure? Returns the cycle offset at which power dies.
     */
    std::optional<std::uint64_t> restoreFailure(std::uint64_t cycles);

    /** Does this restore attempt fail transiently (retry, no reboot)? */
    bool transientRestoreFault();

    /**
     * A backup into @p slot (1 or 2) just committed: apply any targeted
     * checkpoint/selector corruption the plan calls for, directly into
     * @p nvm (NVM-relative addressing, uncharged — faults are free).
     */
    void corruptAfterBackup(mem::Nvm &nvm, std::uint32_t slot);

    /**
     * Apply wear-driven random bit errors: the plan's rate times the
     * bytes written to @p nvm since the last call gives the expected
     * number of flips, landed at uniform random bits of the array.
     */
    void applyWearFaults(mem::Nvm &nvm);

    /** Everything injected so far. */
    const FaultCounters &counters() const { return tally; }

    /** The plan being executed. */
    const FaultPlan &plan() const { return thePlan; }

  private:
    bool forcedFailuresExhausted() const;
    bool bitFlipBudgetExhausted() const;
    void flipBit(mem::Nvm &nvm, std::uint64_t addr, unsigned bit,
                 std::uint64_t &counter);

    FaultPlan thePlan;
    Rng rng;
    FaultCounters tally;

    std::vector<std::uint64_t> cyclePoints;       ///< sorted failAtCycle
    std::vector<std::uint64_t> instructionPoints; ///< sorted failAtInstruction
    std::size_t nextCyclePoint = 0;
    std::size_t nextInstructionPoint = 0;

    std::uint64_t slot0Addr = 0;
    std::uint64_t slotBytes = 0;
    std::uint64_t selectorAddr = 0;
    bool regionKnown = false;

    double pendingWearFlips = 0.0;
    std::uint64_t wearBytesSeen = 0;
};

} // namespace eh::fault

#endif // EH_FAULT_INJECTOR_HH
