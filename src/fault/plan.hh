/**
 * @file
 * Fault plans: a declarative, fully deterministic description of the
 * faults one simulation run must suffer. The intermittent-computing
 * literature is unambiguous that correctness must hold under power
 * failure at *every* program point (Surbatovich et al.) and that real
 * nonvolatile memories exhibit bit errors and wear (NORM); a FaultPlan
 * lets tests and benchmarks force exactly those conditions — a failure
 * at the worst cycle, a flipped bit in a checkpoint slot — instead of
 * waiting for a harvested supply to happen to brown out there.
 *
 * Everything stochastic is driven by the plan's seed through eh::Rng, so
 * a (plan, workload, policy, supply) tuple replays bit-identically.
 */

#ifndef EH_FAULT_PLAN_HH
#define EH_FAULT_PLAN_HH

#include <cstdint>
#include <vector>

namespace eh::fault {

/** Sentinel for "no index selected". */
constexpr std::uint64_t noIndex = UINT64_MAX;

/**
 * What to inject into one run. Default-constructed plans inject nothing;
 * each knob arms one fault class independently.
 */
struct FaultPlan
{
    /** Seed for every stochastic decision below. */
    std::uint64_t seed = 1;

    // ---- (a) forced power failures --------------------------------------

    /**
     * Kill power at the first instruction boundary at or after each of
     * these absolute active-cycle counts (summed over the whole run,
     * re-execution included). Unsorted is fine.
     */
    std::vector<std::uint64_t> failAtCycle;

    /**
     * Kill power immediately before the k-th executed instruction
     * (lifetime count, re-execution included), for each listed k.
     */
    std::vector<std::uint64_t> failAtInstruction;

    /**
     * Probability that any given backup is interrupted by a power
     * failure partway through writing its checkpoint slot (a torn slot
     * write — the Section II consistency hazard).
     */
    double backupFailProb = 0.0;

    /**
     * Deterministic variant of backupFailProb: interrupt backup number
     * failBackupIndex (0-based count of backup attempts) after exactly
     * failBackupAtCycle of its write cycles. Used to sweep a failure
     * across every cycle of one backup.
     */
    std::uint64_t failBackupIndex = noIndex;
    std::uint64_t failBackupAtCycle = 0;

    /**
     * Probability that a backup that survives the slot write dies
     * exactly at the selector-word flip. Half such deaths land before
     * the word is durable (old selector persists); the other half tear
     * the word into garbage, exercising the selector-recovery path.
     */
    double selectorFlipFailProb = 0.0;

    /** Probability that a restore is interrupted partway through. */
    double restoreFailProb = 0.0;

    /**
     * Stop injecting *forced power failures* (the four knobs above)
     * after this many, so plans terminate even under policies that back
     * up every instruction.
     */
    std::uint64_t maxForcedFailures = 16;

    // ---- (b) NVM bit errors ---------------------------------------------

    /**
     * Probability, per committed backup, that a bit of the just-written
     * checkpoint slot flips (targeted corruption — the case integrity
     * checking exists for).
     */
    double checkpointCorruptionProb = 0.0;

    /**
     * Probability, per committed backup, that a bit of the selector
     * word flips.
     */
    double selectorCorruptionProb = 0.0;

    /**
     * Random bit errors tied to wear: expected flips per byte written
     * to the NVM device (anywhere in the array, live data included —
     * these can legitimately corrupt results; the ablation harness
     * measures how gracefully policies degrade).
     */
    double wearBitErrorRate = 0.0;

    /** Cap on injected bit flips (targeted + wear-driven). */
    std::uint64_t maxBitFlips = 64;

    // ---- (c) transient restore faults -----------------------------------

    /**
     * Probability that a restore attempt fails transiently (a read
     * disturb / marginal sense): the attempt is abandoned and retried
     * without a power cycle.
     */
    double transientRestoreFaultProb = 0.0;
};

/** Tally of every fault actually injected, by class. */
struct FaultCounters
{
    std::uint64_t forcedPowerFailures = 0;   ///< at cycle/instruction points
    std::uint64_t backupInterrupts = 0;      ///< mid-slot-write failures
    std::uint64_t selectorFlipInterrupts = 0;///< failures at the flip itself
    std::uint64_t restoreInterrupts = 0;     ///< mid-restore failures
    std::uint64_t checkpointBitFlips = 0;    ///< targeted slot corruption
    std::uint64_t selectorCorruptions = 0;   ///< selector-word corruption
    std::uint64_t wearBitFlips = 0;          ///< rate-driven array corruption
    std::uint64_t transientRestoreFaults = 0;

    /** All injected power-failure faults. */
    std::uint64_t
    powerFailures() const
    {
        return forcedPowerFailures + backupInterrupts +
               selectorFlipInterrupts + restoreInterrupts;
    }

    /** All injected bit flips. */
    std::uint64_t
    bitFlips() const
    {
        return checkpointBitFlips + selectorCorruptions + wearBitFlips;
    }
};

} // namespace eh::fault

#endif // EH_FAULT_PLAN_HH
