#include "fault/injector.hh"

#include <algorithm>

#include "mem/nvm.hh"
#include "util/panic.hh"

namespace eh::fault {

namespace {

void
checkProb(double p, const char *what)
{
    if (!(p >= 0.0 && p <= 1.0))
        fatalf("FaultPlan: ", what, " must be a probability in [0, 1], "
               "got ", p);
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan)
    : thePlan(plan), rng(plan.seed),
      cyclePoints(plan.failAtCycle),
      instructionPoints(plan.failAtInstruction)
{
    checkProb(plan.backupFailProb, "backupFailProb");
    checkProb(plan.selectorFlipFailProb, "selectorFlipFailProb");
    checkProb(plan.restoreFailProb, "restoreFailProb");
    checkProb(plan.checkpointCorruptionProb, "checkpointCorruptionProb");
    checkProb(plan.selectorCorruptionProb, "selectorCorruptionProb");
    checkProb(plan.transientRestoreFaultProb, "transientRestoreFaultProb");
    if (plan.wearBitErrorRate < 0.0)
        fatalf("FaultPlan: wearBitErrorRate must be >= 0, got ",
               plan.wearBitErrorRate);
    std::sort(cyclePoints.begin(), cyclePoints.end());
    std::sort(instructionPoints.begin(), instructionPoints.end());
}

void
FaultInjector::noteCheckpointRegion(std::uint64_t slot0_addr,
                                    std::uint64_t slot_bytes,
                                    std::uint64_t selector_addr)
{
    slot0Addr = slot0_addr;
    slotBytes = slot_bytes;
    selectorAddr = selector_addr;
    regionKnown = true;
}

bool
FaultInjector::forcedFailuresExhausted() const
{
    return tally.powerFailures() >= thePlan.maxForcedFailures;
}

bool
FaultInjector::bitFlipBudgetExhausted() const
{
    return tally.bitFlips() >= thePlan.maxBitFlips;
}

bool
FaultInjector::failBeforeInstruction(std::uint64_t instruction,
                                     std::uint64_t active_cycle)
{
    if (forcedFailuresExhausted())
        return false;
    bool fire = false;
    // Consume every planned point this boundary has reached: several
    // points inside one instruction still cause only one failure.
    while (nextInstructionPoint < instructionPoints.size() &&
           instructionPoints[nextInstructionPoint] <= instruction) {
        ++nextInstructionPoint;
        fire = true;
    }
    while (nextCyclePoint < cyclePoints.size() &&
           cyclePoints[nextCyclePoint] <= active_cycle) {
        ++nextCyclePoint;
        fire = true;
    }
    if (fire)
        ++tally.forcedPowerFailures;
    return fire;
}

std::uint64_t
FaultInjector::nextInstructionTrigger() const
{
    if (forcedFailuresExhausted() ||
        nextInstructionPoint >= instructionPoints.size()) {
        return UINT64_MAX;
    }
    return instructionPoints[nextInstructionPoint];
}

std::uint64_t
FaultInjector::nextCycleTrigger() const
{
    if (forcedFailuresExhausted() || nextCyclePoint >= cyclePoints.size())
        return UINT64_MAX;
    return cyclePoints[nextCyclePoint];
}

std::optional<std::uint64_t>
FaultInjector::backupFailure(std::uint64_t backup_index,
                             std::uint64_t cycles)
{
    if (cycles == 0 || forcedFailuresExhausted())
        return std::nullopt;
    if (backup_index == thePlan.failBackupIndex) {
        ++tally.backupInterrupts;
        return std::min(thePlan.failBackupAtCycle, cycles - 1);
    }
    if (thePlan.backupFailProb > 0.0 &&
        rng.nextBool(thePlan.backupFailProb)) {
        ++tally.backupInterrupts;
        return rng.nextBelow(cycles);
    }
    return std::nullopt;
}

SelectorFlipFault
FaultInjector::selectorFlipFailure()
{
    if (thePlan.selectorFlipFailProb <= 0.0 || forcedFailuresExhausted())
        return SelectorFlipFault::None;
    if (!rng.nextBool(thePlan.selectorFlipFailProb))
        return SelectorFlipFault::None;
    ++tally.selectorFlipInterrupts;
    return rng.nextBool(0.5) ? SelectorFlipFault::TornWrite
                             : SelectorFlipFault::BeforeFlip;
}

std::uint32_t
FaultInjector::tornSelectorValue()
{
    // Any word that is not a valid slot designator (0 none, 1, 2).
    for (;;) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        if (v > 2)
            return v;
    }
}

std::optional<std::uint64_t>
FaultInjector::restoreFailure(std::uint64_t cycles)
{
    if (cycles == 0 || thePlan.restoreFailProb <= 0.0 ||
        forcedFailuresExhausted())
        return std::nullopt;
    if (!rng.nextBool(thePlan.restoreFailProb))
        return std::nullopt;
    ++tally.restoreInterrupts;
    return rng.nextBelow(cycles);
}

bool
FaultInjector::transientRestoreFault()
{
    if (thePlan.transientRestoreFaultProb <= 0.0)
        return false;
    if (!rng.nextBool(thePlan.transientRestoreFaultProb))
        return false;
    ++tally.transientRestoreFaults;
    return true;
}

void
FaultInjector::flipBit(mem::Nvm &nvm, std::uint64_t addr, unsigned bit,
                       std::uint64_t &counter)
{
    nvm.flipBit(addr, bit);
    ++counter;
}

void
FaultInjector::corruptAfterBackup(mem::Nvm &nvm, std::uint32_t slot)
{
    EH_ASSERT(regionKnown,
              "fault injector consulted before the checkpoint region "
              "was reported");
    EH_ASSERT(slot == 1 || slot == 2, "corruptAfterBackup: bad slot");
    if (thePlan.checkpointCorruptionProb > 0.0 &&
        !bitFlipBudgetExhausted() &&
        rng.nextBool(thePlan.checkpointCorruptionProb)) {
        const std::uint64_t base = slot0Addr + (slot - 1) * slotBytes;
        flipBit(nvm, base + rng.nextBelow(slotBytes),
                static_cast<unsigned>(rng.nextBelow(8)),
                tally.checkpointBitFlips);
    }
    if (thePlan.selectorCorruptionProb > 0.0 &&
        !bitFlipBudgetExhausted() &&
        rng.nextBool(thePlan.selectorCorruptionProb)) {
        flipBit(nvm, selectorAddr + rng.nextBelow(4),
                static_cast<unsigned>(rng.nextBelow(8)),
                tally.selectorCorruptions);
    }
}

void
FaultInjector::applyWearFaults(mem::Nvm &nvm)
{
    if (thePlan.wearBitErrorRate <= 0.0)
        return;
    const std::uint64_t written = nvm.bytesWritten();
    const std::uint64_t delta = written - wearBytesSeen;
    wearBytesSeen = written;
    pendingWearFlips +=
        thePlan.wearBitErrorRate * static_cast<double>(delta);
    while (pendingWearFlips >= 1.0 && !bitFlipBudgetExhausted()) {
        pendingWearFlips -= 1.0;
        flipBit(nvm, rng.nextBelow(nvm.size()),
                static_cast<unsigned>(rng.nextBelow(8)),
                tally.wearBitFlips);
    }
    // The fractional residue carries over to the next call, so the
    // long-run flip count matches rate * bytes exactly.
}

} // namespace eh::fault
