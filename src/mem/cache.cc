#include "mem/cache.hh"

#include <bit>

#include "util/panic.hh"

namespace eh::mem {

double
CacheStats::loadMissRatio() const
{
    return loads ? static_cast<double>(loadMisses) /
                       static_cast<double>(loads)
                 : 0.0;
}

double
CacheStats::storeMissRatio() const
{
    return stores ? static_cast<double>(storeMisses) /
                        static_cast<double>(stores)
                  : 0.0;
}

namespace {

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheGeometry &geometry) : geom(geometry)
{
    if (!isPow2(geom.totalBytes) || !isPow2(geom.associativity) ||
        !isPow2(geom.blockBytes)) {
        fatalf("Cache: size (", geom.totalBytes, "), associativity (",
               geom.associativity, ") and block (", geom.blockBytes,
               ") must all be powers of two");
    }
    if (geom.blockBytes > 64)
        fatalf("Cache: block size ", geom.blockBytes,
               " exceeds the 64-byte dirty-mask limit");
    const std::size_t blocks = geom.totalBytes / geom.blockBytes;
    if (blocks < geom.associativity)
        fatalf("Cache: fewer blocks (", blocks, ") than ways (",
               geom.associativity, ")");
    sets = blocks / geom.associativity;
    lines.assign(blocks, Line{});
}

std::size_t
Cache::popcount64(std::uint64_t mask)
{
    return static_cast<std::size_t>(std::popcount(mask));
}

Cache::Line &
Cache::findVictim(std::size_t set_index)
{
    Line *victim = nullptr;
    for (std::size_t w = 0; w < geom.associativity; ++w) {
        Line &line = lines[set_index * geom.associativity + w];
        if (!line.valid)
            return line;
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    return *victim;
}

bool
Cache::access(std::uint64_t addr, std::size_t bytes, bool is_store)
{
    return accessEx(addr, bytes, is_store).hit;
}

Cache::AccessOutcome
Cache::accessEx(std::uint64_t addr, std::size_t bytes, bool is_store)
{
    EH_ASSERT(bytes > 0, "access must touch at least one byte");
    const std::uint64_t block = addr / geom.blockBytes;
    const std::uint64_t offset = addr % geom.blockBytes;
    EH_ASSERT(offset + bytes <= geom.blockBytes,
              "access must not cross a cache-block boundary");
    const std::size_t set_index =
        static_cast<std::size_t>(block) & (sets - 1);
    const std::uint64_t tag = block / sets;

    ++clock;
    if (is_store)
        ++counters.stores;
    else
        ++counters.loads;

    const std::uint64_t span_mask =
        (bytes >= 64 ? ~0ull : ((1ull << bytes) - 1)) << offset;

    // Hit path.
    for (std::size_t w = 0; w < geom.associativity; ++w) {
        Line &line = lines[set_index * geom.associativity + w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = clock;
            if (is_store)
                line.dirtyMask |= span_mask;
            return {true, false};
        }
    }

    // Miss: allocate (write-allocate policy), evicting LRU.
    if (is_store)
        ++counters.storeMisses;
    else
        ++counters.loadMisses;
    Line &victim = findVictim(set_index);
    const bool evicted_dirty = victim.valid && victim.dirtyMask != 0;
    if (evicted_dirty)
        ++counters.writebacks;
    victim.valid = true;
    victim.tag = tag;
    victim.dirtyMask = is_store ? span_mask : 0;
    victim.lruStamp = clock;
    return {false, evicted_dirty};
}

FlushResult
Cache::flushDirty()
{
    FlushResult result{0, 0, 0};
    for (auto &line : lines) {
        if (line.valid && line.dirtyMask != 0) {
            ++result.blocks;
            result.bytesBlock += geom.blockBytes;
            result.bytesExact += popcount64(line.dirtyMask);
            line.dirtyMask = 0; // clean after the backup copy
        }
    }
    counters.backupFlushBlocks += result.blocks;
    counters.backupFlushBytesBlock += result.bytesBlock;
    counters.backupFlushBytesExact += result.bytesExact;
    return result;
}

void
Cache::invalidateAll()
{
    for (auto &line : lines) {
        line.valid = false;
        line.dirtyMask = 0;
    }
}

std::uint64_t
Cache::dirtyBlocks() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines)
        if (line.valid && line.dirtyMask != 0)
            ++n;
    return n;
}

} // namespace eh::mem
