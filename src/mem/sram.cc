#include "mem/sram.hh"

#include <algorithm>
#include <cstring>

#include "util/panic.hh"

namespace eh::mem {

Sram::Sram(std::size_t bytes) : data(bytes, 0)
{
    if (bytes == 0)
        fatalf("Sram: capacity must be > 0");
}

void
Sram::checkRange(std::uint64_t addr, std::size_t len) const
{
    if (addr + len > data.size() || addr + len < addr) {
        fatalf("Sram: access of ", len, " bytes at ", addr,
               " exceeds capacity ", data.size());
    }
}

void
Sram::read(std::uint64_t addr, void *out, std::size_t len) const
{
    checkRange(addr, len);
    std::memcpy(out, data.data() + addr, len);
}

void
Sram::write(std::uint64_t addr, const void *in, std::size_t len)
{
    checkRange(addr, len);
    std::memcpy(data.data() + addr, in, len);
}

std::uint32_t
Sram::load32(std::uint64_t addr) const
{
    checkRange(addr, 4);
    std::uint32_t v;
    std::memcpy(&v, data.data() + addr, 4);
    return v;
}

void
Sram::store32(std::uint64_t addr, std::uint32_t value)
{
    checkRange(addr, 4);
    std::memcpy(data.data() + addr, &value, 4);
}

void
Sram::powerFail()
{
    std::fill(data.begin(), data.end(), poisonByte);
    ++failures;
}

} // namespace eh::mem
