#include "mem/address_space.hh"

#include <algorithm>

#include "util/panic.hh"

namespace eh::mem {

AddressSpace::AddressSpace(std::size_t sram_bytes, std::size_t nvm_bytes,
                           NvmTech tech)
    : volatileBytes(sram_bytes),
      limitBytes(sram_bytes + nvm_bytes), volatileMem(sram_bytes),
      nonvolatileMem(nvm_bytes, tech)
{
}

std::uint64_t
AddressSpace::limit() const
{
    return limitBytes;
}

bool
AddressSpace::isNonvolatile(std::uint64_t addr) const
{
    if (addr >= limit())
        fatalf("AddressSpace: address ", addr, " beyond limit ", limit());
    return addr >= volatileBytes;
}

MemAccessResult
AddressSpace::cachedCost(std::uint64_t addr, std::size_t len,
                         bool is_store)
{
    // Clamp the span to its block (sub-block accesses never straddle in
    // practice; a straddling span is charged as one block access).
    const std::size_t block = nvCache->geometry().blockBytes;
    const std::uint64_t offset = addr % block;
    const std::size_t span = std::min(len, block - offset);
    const auto outcome = nvCache->accessEx(addr, span, is_store);
    MemAccessResult cost{0, 0.0, true};
    if (!outcome.hit) {
        const auto fill = nonvolatileMem.readCost(block);
        cost.cycles += fill.cycles;
        cost.energy += fill.energy;
    }
    if (outcome.evictedDirty) {
        const auto wb = nonvolatileMem.writeCost(block);
        cost.cycles += wb.cycles;
        cost.energy += wb.energy;
    }
    return cost;
}

MemAccessResult
AddressSpace::readSlow(std::uint64_t addr, void *out, std::size_t len)
{
    if (len == 0)
        return {0, 0.0, false};
    const bool nv_first = isNonvolatile(addr);
    const bool nv_last = isNonvolatile(addr + len - 1);
    if (nv_first != nv_last)
        fatalf("AddressSpace: read at ", addr, " straddles the "
               "volatile/nonvolatile boundary");
    if (nv_first) {
        if (nvCache) {
            // Data is always current in the backing NVM array; only the
            // cost model knows about the cache.
            const MemAccessResult cost = cachedCost(addr, len, false);
            nonvolatileMem.read(addr - volatileBytes, out, len);
            return cost;
        }
        const auto cost =
            nonvolatileMem.read(addr - volatileBytes, out, len);
        return {cost.cycles, cost.energy, true};
    }
    volatileMem.read(addr, out, len);
    return {0, 0.0, false};
}

MemAccessResult
AddressSpace::writeSlow(std::uint64_t addr, const void *in,
                        std::size_t len)
{
    if (len == 0)
        return {0, 0.0, false};
    const bool nv_first = isNonvolatile(addr);
    const bool nv_last = isNonvolatile(addr + len - 1);
    if (nv_first != nv_last)
        fatalf("AddressSpace: write at ", addr, " straddles the "
               "volatile/nonvolatile boundary");
    if (nv_first) {
        if (nvCache) {
            MemAccessResult cost = cachedCost(addr, len, true);
            nonvolatileMem.write(addr - volatileBytes, in, len);
            return cost;
        }
        const auto cost =
            nonvolatileMem.write(addr - volatileBytes, in, len);
        return {cost.cycles, cost.energy, true};
    }
    volatileMem.write(addr, in, len);
    return {0, 0.0, false};
}

void
AddressSpace::attachNvmCache(const CacheGeometry &geometry)
{
    nvCache.emplace(geometry);
}

Cache &
AddressSpace::nvmCache()
{
    EH_ASSERT(nvCache.has_value(), "no NVM cache attached");
    return *nvCache;
}

FlushResult
AddressSpace::drainCache()
{
    if (!nvCache)
        return {0, 0, 0};
    return nvCache->flushDirty();
}

std::uint32_t
AddressSpace::load32(std::uint64_t addr, MemAccessResult *cost)
{
    std::uint32_t v;
    const auto result = read(addr, &v, 4);
    if (cost)
        *cost = result;
    return v;
}

void
AddressSpace::store32(std::uint64_t addr, std::uint32_t value,
                      MemAccessResult *cost)
{
    const auto result = write(addr, &value, 4);
    if (cost)
        *cost = result;
}

void
AddressSpace::powerFail()
{
    volatileMem.powerFail();
    nonvolatileMem.powerFail();
    if (nvCache)
        nvCache->invalidateAll(); // the cache is volatile
}

} // namespace eh::mem
