#include "mem/nvm.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/panic.hh"

namespace eh::mem {

const char *
nvmTechName(NvmTech tech)
{
    switch (tech) {
      case NvmTech::Fram:
        return "FRAM";
      case NvmTech::Flash:
        return "Flash";
      case NvmTech::SttRam:
        return "STT-RAM";
      case NvmTech::ReRam:
        return "ReRAM";
    }
    panic("invalid NVM technology");
}

NvmCosts
defaultCosts(NvmTech tech)
{
    // Energies in pJ/byte; bandwidths in bytes/cycle. Chosen to preserve
    // the asymmetry ratios the paper's case studies depend on.
    switch (tech) {
      case NvmTech::Fram:
        return {75.0, 75.0, 1.0, 1.0};
      case NvmTech::Flash:
        return {40.0, 2000.0, 2.0, 0.05};
      case NvmTech::SttRam:
        return {50.0, 500.0, 2.0, 0.2}; // writes ~10x reads (Section VI-A)
      case NvmTech::ReRam:
        return {60.0, 240.0, 1.5, 0.5};
    }
    panic("invalid NVM technology");
}

Nvm::Nvm(std::size_t bytes, NvmTech tech)
    : data(bytes, 0), technology(tech), costTable(defaultCosts(tech))
{
    if (bytes == 0)
        fatalf("Nvm: capacity must be > 0");
}

void
Nvm::setCosts(const NvmCosts &costs)
{
    if (costs.readEnergyPerByte < 0.0 || costs.writeEnergyPerByte < 0.0)
        fatalf("Nvm: access energies must be >= 0");
    if (!(costs.readBandwidth > 0.0) || !(costs.writeBandwidth > 0.0))
        fatalf("Nvm: bandwidths must be > 0");
    costTable = costs;
}

void
Nvm::checkRange(std::uint64_t addr, std::size_t len,
                const char *what) const
{
    if (addr + len > data.size() || addr + len < addr) {
        fatalf("Nvm: ", what, " of ", len, " bytes at ", addr,
               " exceeds capacity ", data.size());
    }
}

AccessCost
Nvm::readCost(std::size_t len) const
{
    const auto bytes = static_cast<double>(len);
    return {static_cast<std::uint64_t>(
                std::ceil(bytes / costTable.readBandwidth)),
            bytes * costTable.readEnergyPerByte};
}

AccessCost
Nvm::writeCost(std::size_t len) const
{
    const auto bytes = static_cast<double>(len);
    return {static_cast<std::uint64_t>(
                std::ceil(bytes / costTable.writeBandwidth)),
            bytes * costTable.writeEnergyPerByte};
}

AccessCost
Nvm::read(std::uint64_t addr, void *out, std::size_t len) const
{
    checkRange(addr, len, "read");
    std::memcpy(out, data.data() + addr, len);
    readTotal += len;
    return readCost(len);
}

AccessCost
Nvm::write(std::uint64_t addr, const void *in, std::size_t len)
{
    checkRange(addr, len, "write");
    std::memcpy(data.data() + addr, in, len);
    writtenTotal += len;
    return writeCost(len);
}

void
Nvm::flipBit(std::uint64_t addr, unsigned bit)
{
    checkRange(addr, 1, "flipBit");
    if (bit > 7)
        fatalf("Nvm: flipBit bit index ", bit, " out of range");
    data[addr] ^= static_cast<std::uint8_t>(1u << bit);
    ++flippedTotal;
}

void
Nvm::wipe()
{
    std::fill(data.begin(), data.end(), 0);
}

std::uint32_t
Nvm::load32(std::uint64_t addr) const
{
    checkRange(addr, 4, "load32");
    std::uint32_t v;
    std::memcpy(&v, data.data() + addr, 4);
    readTotal += 4;
    return v;
}

void
Nvm::store32(std::uint64_t addr, std::uint32_t value)
{
    checkRange(addr, 4, "store32");
    std::memcpy(data.data() + addr, &value, 4);
    writtenTotal += 4;
}

} // namespace eh::mem
