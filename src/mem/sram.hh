/**
 * @file
 * Volatile on-chip memory. Contents are destroyed by power failures; the
 * model's whole problem statement follows from this (Section II). Lost
 * contents are poisoned rather than zeroed so that incorrect
 * use-after-power-loss is caught by tests instead of silently reading
 * zeros.
 */

#ifndef EH_MEM_SRAM_HH
#define EH_MEM_SRAM_HH

#include <cstdint>
#include <vector>

namespace eh::mem {

/** Byte-addressable volatile storage with power-failure semantics. */
class Sram
{
  public:
    /** Poison value written over all contents on power failure. */
    static constexpr std::uint8_t poisonByte = 0xA5;

    /** @param bytes Capacity (> 0). */
    explicit Sram(std::size_t bytes);

    /** Capacity in bytes. */
    std::size_t size() const { return data.size(); }

    /** Read @p len bytes at @p addr into @p out. */
    void read(std::uint64_t addr, void *out, std::size_t len) const;

    /** Write @p len bytes at @p addr from @p in. */
    void write(std::uint64_t addr, const void *in, std::size_t len);

    /** 32-bit convenience load (little-endian). */
    std::uint32_t load32(std::uint64_t addr) const;

    /** 32-bit convenience store (little-endian). */
    void store32(std::uint64_t addr, std::uint32_t value);

    /** Power failure: all contents are replaced with the poison byte. */
    void powerFail();

    /** Number of power failures this memory has suffered. */
    std::uint64_t powerFailures() const { return failures; }

  private:
    void checkRange(std::uint64_t addr, std::size_t len) const;

    std::vector<std::uint8_t> data;
    std::uint64_t failures = 0;
};

} // namespace eh::mem

#endif // EH_MEM_SRAM_HH
