/**
 * @file
 * Set-associative write-back cache with block-granularity dirty tracking,
 * modeling the volatile (or mixed-volatility) caches of Section VI-A. On a
 * backup, every dirty block must be flushed to nonvolatile memory; the
 * cache therefore also tracks the *byte*-granularity dirty footprint so
 * the block-vs-byte inflation factor (beta_block / beta_store) the paper
 * derives can be measured directly.
 */

#ifndef EH_MEM_CACHE_HH
#define EH_MEM_CACHE_HH

#include <cstdint>
#include <vector>

namespace eh::mem {

/** Cache shape. All three values must be powers of two. */
struct CacheGeometry
{
    std::size_t totalBytes = 1024;
    std::size_t associativity = 4;
    std::size_t blockBytes = 16;
};

/** Counters accumulated by the cache. */
struct CacheStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t writebacks = 0;          ///< dirty evictions
    std::uint64_t backupFlushBlocks = 0;   ///< dirty blocks flushed at backups
    std::uint64_t backupFlushBytesBlock = 0; ///< block-granularity bytes
    std::uint64_t backupFlushBytesExact = 0; ///< actually-dirty bytes

    /** Load miss ratio; 0 when no loads occurred. */
    double loadMissRatio() const;

    /** Store miss ratio; 0 when no stores occurred. */
    double storeMissRatio() const;
};

/** What a backup flush of all dirty blocks amounts to. */
struct FlushResult
{
    std::uint64_t blocks;       ///< dirty blocks written back
    std::uint64_t bytesBlock;   ///< bytes at block granularity
    std::uint64_t bytesExact;   ///< bytes at byte granularity
};

/**
 * LRU set-associative write-back cache over an abstract backing store.
 * The cache tracks tags and dirty bytes only (no data payload): the
 * simulators use it for traffic and footprint accounting, with payload
 * correctness handled by the memories themselves.
 */
class Cache
{
  public:
    /** @throws FatalError unless the geometry is power-of-two sized. */
    explicit Cache(const CacheGeometry &geometry);

    /** Outcome of one access (cost drivers for the caller). */
    struct AccessOutcome
    {
        bool hit;              ///< tag matched
        bool evictedDirty;     ///< a dirty block was written back
    };

    /**
     * Access one byte-span that fits inside a single block.
     * @param addr     Address of the access.
     * @param bytes    Span width (must not cross a block boundary).
     * @param is_store Store accesses mark dirty bytes.
     * @return true on hit.
     */
    bool access(std::uint64_t addr, std::size_t bytes, bool is_store);

    /** As access(), but also reports whether a dirty eviction occurred. */
    AccessOutcome accessEx(std::uint64_t addr, std::size_t bytes,
                           bool is_store);

    /**
     * Flush all dirty blocks (a backup). Clears dirty state, counts into
     * the stats, and reports the written footprint at both granularities.
     */
    FlushResult flushDirty();

    /** Drop all contents (power failure of a fully volatile cache). */
    void invalidateAll();

    /** Current number of dirty blocks. */
    std::uint64_t dirtyBlocks() const;

    /** Counters so far. */
    const CacheStats &stats() const { return counters; }

    /** Reset the counters (not the contents). */
    void clearStats() { counters = CacheStats{}; }

    /** Geometry in force. */
    const CacheGeometry &geometry() const { return geom; }

    /** Number of sets. */
    std::size_t numSets() const { return sets; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t dirtyMask = 0; ///< one bit per byte (block <= 64 B)
        std::uint64_t lruStamp = 0;
    };

    Line &findVictim(std::size_t set_index);
    static std::size_t popcount64(std::uint64_t mask);

    CacheGeometry geom;
    std::size_t sets;
    std::vector<Line> lines; ///< sets * associativity, set-major
    std::uint64_t clock = 0;
    CacheStats counters;
};

} // namespace eh::mem

#endif // EH_MEM_CACHE_HH
