/**
 * @file
 * Unbounded store queue tracking the unique bytes of application state
 * modified since the last backup. This is the instrument behind the
 * paper's alpha_B characterization (Section V-B, Figure 10): dividing the
 * unique dirty footprint by the cycles since the last backup yields the
 * application-state rate the EH model consumes.
 */

#ifndef EH_MEM_STORE_QUEUE_HH
#define EH_MEM_STORE_QUEUE_HH

#include <cstdint>
#include <unordered_set>

namespace eh::mem {

/**
 * Records the set of byte addresses written since the last clear(). The
 * queue is unbounded, matching the hypothetical mixed-volatility processor
 * the paper simulates; real designs would bound it and force a backup on
 * overflow, which callers can model by checking uniqueBytes() themselves.
 */
class StoreQueue
{
  public:
    /** Record a store of @p bytes at @p addr. */
    void recordStore(std::uint64_t addr, std::size_t bytes);

    /** Unique bytes dirtied since the last clear. */
    std::size_t uniqueBytes() const { return dirty.size(); }

    /** Total store instructions recorded since the last clear. */
    std::uint64_t storeCount() const { return stores; }

    /** Empty the queue (a backup committed the state). */
    void clear();

    /** Lifetime total of unique bytes across all backup intervals. */
    std::uint64_t lifetimeUniqueBytes() const { return lifetimeBytes; }

    /** True when no store has occurred since the last clear. */
    bool empty() const { return dirty.empty(); }

  private:
    std::unordered_set<std::uint64_t> dirty;
    std::uint64_t stores = 0;
    std::uint64_t lifetimeBytes = 0;
};

} // namespace eh::mem

#endif // EH_MEM_STORE_QUEUE_HH
