/**
 * @file
 * Nonvolatile memory models. The paper's design space spans FRAM, Flash,
 * STT-RAM and ReRAM backends whose asymmetric read/write costs set the EH
 * model's Omega_R / Omega_B and sigma_R / sigma_B parameters. This module
 * provides byte-addressable storage whose contents survive power failures
 * plus a per-technology cost table.
 */

#ifndef EH_MEM_NVM_HH
#define EH_MEM_NVM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eh::mem {

/** Nonvolatile technologies discussed in the paper (Sections II, VI-A). */
enum class NvmTech
{
    Fram,   ///< symmetric, fast (MSP430FR-class)
    Flash,  ///< cheap reads, very expensive block-erase writes
    SttRam, ///< writes ~10x read cost (Section VI-A)
    ReRam   ///< moderate asymmetry
};

/** Printable technology name. */
const char *nvmTechName(NvmTech tech);

/** Access cost structure of a technology, in model units (pJ, cycles). */
struct NvmCosts
{
    double readEnergyPerByte;   ///< Omega_R
    double writeEnergyPerByte;  ///< Omega_B
    double readBandwidth;       ///< sigma_R, bytes/cycle
    double writeBandwidth;      ///< sigma_B, bytes/cycle
};

/**
 * Default cost table. Values are representative magnitudes chosen so the
 * *ratios* the paper leans on hold: FRAM symmetric, Flash writes ~50x
 * reads, STT-RAM writes ~10x reads (Section VI-A cites 10x for STT-RAM).
 */
NvmCosts defaultCosts(NvmTech tech);

/** Cycles/energy charged by one memory transaction. */
struct AccessCost
{
    std::uint64_t cycles;
    double energy;
};

/**
 * Byte-addressable nonvolatile storage. Contents persist across
 * powerFail(); reads and writes report their energy/latency cost so the
 * caller can meter them.
 */
class Nvm
{
  public:
    /**
     * @param bytes Capacity (> 0).
     * @param tech  Technology selecting the default cost table.
     */
    Nvm(std::size_t bytes, NvmTech tech);

    /** Capacity in bytes. */
    std::size_t size() const { return data.size(); }

    /** Technology of this device. */
    NvmTech tech() const { return technology; }

    /** Cost table in force. */
    const NvmCosts &costs() const { return costTable; }

    /** Override the cost table (design-space exploration). */
    void setCosts(const NvmCosts &costs);

    /** Read @p len bytes at @p addr into @p out; returns the cost. */
    AccessCost read(std::uint64_t addr, void *out, std::size_t len) const;

    /** Write @p len bytes at @p addr from @p in; returns the cost. */
    AccessCost write(std::uint64_t addr, const void *in, std::size_t len);

    /** Cost of reading @p len bytes without performing the access. */
    AccessCost readCost(std::size_t len) const;

    /** Cost of writing @p len bytes without performing the access. */
    AccessCost writeCost(std::size_t len) const;

    /** 32-bit convenience load (little-endian). */
    std::uint32_t load32(std::uint64_t addr) const;

    /** 32-bit convenience store (little-endian). */
    void store32(std::uint64_t addr, std::uint32_t value);

    /** Power failure: nonvolatile contents are unaffected (by design). */
    void powerFail() {}

    /**
     * Fault injection: invert one stored bit in place. Unlike write(),
     * this charges nothing and does not count as wear — it models the
     * cell decaying, not the device being used. @p bit is 0..7.
     */
    void flipBit(std::uint64_t addr, unsigned bit);

    /**
     * Erase the whole array back to zeros, as a reprogramming tool
     * would. Charges nothing and does not count as wear — it models
     * recovery-by-reflash, not in-mission device use. Lifetime wear
     * counters are preserved.
     */
    void wipe();

    /** Total bytes written over the device's lifetime (wear statistics). */
    std::uint64_t bytesWritten() const { return writtenTotal; }

    /** Total bytes read over the device's lifetime. */
    std::uint64_t bytesRead() const { return readTotal; }

    /** Total bits inverted by flipBit() (injected-fault statistics). */
    std::uint64_t bitsFlipped() const { return flippedTotal; }

  private:
    void checkRange(std::uint64_t addr, std::size_t len,
                    const char *what) const;

    std::vector<std::uint8_t> data;
    NvmTech technology;
    NvmCosts costTable;
    mutable std::uint64_t readTotal = 0;
    std::uint64_t writtenTotal = 0;
    std::uint64_t flippedTotal = 0;
};

} // namespace eh::mem

#endif // EH_MEM_NVM_HH
