/**
 * @file
 * Flat address map combining volatile SRAM and nonvolatile memory, as on
 * the MSP430FR and Cortex-M0+ platforms the paper evaluates. The CPU
 * issues loads/stores against this map; the map dispatches by region and
 * reports each access's energy/latency cost plus whether it touched
 * nonvolatile state (which is what triggers idempotency tracking).
 */

#ifndef EH_MEM_ADDRESS_SPACE_HH
#define EH_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <optional>

#include "mem/cache.hh"
#include "mem/nvm.hh"
#include "mem/sram.hh"

namespace eh::mem {

/** Result of one CPU memory access. */
struct MemAccessResult
{
    std::uint64_t cycles;  ///< extra cycles beyond the base instruction
    double energy;         ///< extra energy beyond the base instruction
    bool nonvolatile;      ///< the access targeted NVM
};

/**
 * Two-region memory map:
 *   [0, sramBytes)                      — volatile SRAM
 *   [nvmBase, nvmBase + nvmBytes)       — nonvolatile memory
 * nvmBase defaults to sramBytes (contiguous regions).
 */
class AddressSpace
{
  public:
    /**
     * @param sram_bytes SRAM capacity (> 0).
     * @param nvm_bytes  NVM capacity (> 0).
     * @param tech       NVM technology.
     */
    AddressSpace(std::size_t sram_bytes, std::size_t nvm_bytes,
                 NvmTech tech = NvmTech::Fram);

    /** First NVM address. */
    std::uint64_t nvmBase() const { return volatileBytes; }

    /** One-past-last valid address. */
    std::uint64_t limit() const;

    /** True when addr lies in the nonvolatile region. */
    bool isNonvolatile(std::uint64_t addr) const;

    /**
     * Read @p len bytes; dispatches by region. The common cases — an
     * access entirely inside one region, no cache interposed on NVM —
     * dispatch inline; everything else (zero length, region straddles,
     * out-of-range fatals, cache cost modelling) takes the slow path.
     */
    MemAccessResult
    read(std::uint64_t addr, void *out, std::size_t len)
    {
        if (len != 0) {
            if (addr < volatileBytes) {
                if (len <= volatileBytes - addr) {
                    volatileMem.read(addr, out, len);
                    return {0, 0.0, false};
                }
            } else if (addr < limitBytes && len <= limitBytes - addr &&
                       !nvCache) {
                const auto cost =
                    nonvolatileMem.read(addr - volatileBytes, out, len);
                return {cost.cycles, cost.energy, true};
            }
        }
        return readSlow(addr, out, len);
    }

    /** Write @p len bytes; dispatches by region (see read()). */
    MemAccessResult
    write(std::uint64_t addr, const void *in, std::size_t len)
    {
        if (len != 0) {
            if (addr < volatileBytes) {
                if (len <= volatileBytes - addr) {
                    volatileMem.write(addr, in, len);
                    return {0, 0.0, false};
                }
            } else if (addr < limitBytes && len <= limitBytes - addr &&
                       !nvCache) {
                const auto cost =
                    nonvolatileMem.write(addr - volatileBytes, in, len);
                return {cost.cycles, cost.energy, true};
            }
        }
        return writeSlow(addr, in, len);
    }

    /** 32-bit load (must not straddle the region boundary). */
    std::uint32_t load32(std::uint64_t addr, MemAccessResult *cost);

    /** 32-bit store (must not straddle the region boundary). */
    void store32(std::uint64_t addr, std::uint32_t value,
                 MemAccessResult *cost);

    /** Power failure: SRAM poisons, NVM persists, the cache is lost. */
    void powerFail();

    /**
     * Interpose a volatile write-back cache on the nonvolatile region
     * (the mixed-volatility platform of Section VI-A). Hits cost
     * nothing extra; misses pay a block fill from NVM; dirty evictions
     * additionally pay a block write-back. Data writes remain
     * immediately visible in NVM (the cache models *cost*, not
     * coherence), which keeps intermittent re-execution semantics
     * unchanged. Call drainCache() at each backup to charge the dirty
     * flush the backup must perform.
     */
    void attachNvmCache(const CacheGeometry &geometry);

    /** True when a cache is interposed on the NVM region. */
    bool hasNvmCache() const { return nvCache.has_value(); }

    /** The interposed cache (must exist). */
    Cache &nvmCache();

    /**
     * Flush all dirty blocks for a backup and return the flush summary
     * (charge bytesBlock at NVM write cost). No-op result when no cache
     * is attached.
     */
    FlushResult drainCache();

    /** Underlying volatile memory (backup policies copy from it). */
    Sram &sram() { return volatileMem; }

    /** Underlying nonvolatile memory (backup policies copy into it). */
    Nvm &nvm() { return nonvolatileMem; }

    /** Const access to the nonvolatile memory. */
    const Nvm &nvm() const { return nonvolatileMem; }

  private:
    /** Cost of a cached NVM access (fills and write-backs per block). */
    MemAccessResult cachedCost(std::uint64_t addr, std::size_t len,
                               bool is_store);

    /** Full dispatch: straddle/range fatals, cache, zero length. */
    MemAccessResult readSlow(std::uint64_t addr, void *out,
                             std::size_t len);
    MemAccessResult writeSlow(std::uint64_t addr, const void *in,
                              std::size_t len);

    std::size_t volatileBytes;
    std::uint64_t limitBytes; ///< cached limit() (sizes never change)
    Sram volatileMem;
    Nvm nonvolatileMem;
    std::optional<Cache> nvCache;
};

} // namespace eh::mem

#endif // EH_MEM_ADDRESS_SPACE_HH
