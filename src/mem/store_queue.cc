#include "mem/store_queue.hh"

namespace eh::mem {

void
StoreQueue::recordStore(std::uint64_t addr, std::size_t bytes)
{
    ++stores;
    for (std::size_t i = 0; i < bytes; ++i)
        dirty.insert(addr + i);
}

void
StoreQueue::clear()
{
    lifetimeBytes += dirty.size();
    dirty.clear();
    stores = 0;
}

} // namespace eh::mem
