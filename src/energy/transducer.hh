/**
 * @file
 * Transducer model: converts the ambient source voltage of a VoltageTrace
 * into harvested energy per CPU cycle (the abstract device's front end in
 * Figure 1 of the paper).
 */

#ifndef EH_ENERGY_TRANSDUCER_HH
#define EH_ENERGY_TRANSDUCER_HH

namespace eh::energy {

/**
 * Matched-load harvesting front end: delivered power is
 * eta * V^2 / R_source, integrated over one CPU clock cycle and expressed
 * in the library's energy unit (picojoules by default).
 */
class Transducer
{
  public:
    /**
     * @param efficiency        Conversion efficiency eta in (0, 1].
     * @param source_resistance Source resistance in ohms (> 0).
     * @param clock_hz          CPU clock used to convert power to
     *                          energy-per-cycle (> 0).
     * @param unit_scale        Joules→model-unit factor (1e12 for pJ).
     */
    Transducer(double efficiency, double source_resistance,
               double clock_hz, double unit_scale = 1e12);

    /** Harvested energy (model units) in one cycle at source voltage v. */
    double energyPerCycle(double volts) const;

    /** Conversion efficiency eta. */
    double efficiency() const { return eta; }

    /** CPU clock frequency used for the per-cycle conversion. */
    double clockHz() const { return clock; }

  private:
    double eta;
    double resistance;
    double clock;
    double scale;
};

} // namespace eh::energy

#endif // EH_ENERGY_TRANSDUCER_HH
