/**
 * @file
 * Energy supplies as seen by the intermittent simulator. A supply mediates
 * the charging/active phase structure: the simulator asks it to charge
 * until the device may power on, then draws energy cycle by cycle until
 * the supply browns out.
 */

#ifndef EH_ENERGY_SUPPLY_HH
#define EH_ENERGY_SUPPLY_HH

#include <cstdint>
#include <memory>

#include "energy/capacitor.hh"
#include "energy/trace.hh"
#include "energy/transducer.hh"
#include "util/panic.hh"

namespace eh::energy {

/** Sentinel returned by chargeUntilReady when charging can never finish. */
constexpr std::uint64_t chargeFailed = UINT64_MAX;

/**
 * Abstract per-cycle energy source for the simulator.
 *
 * Contract: the simulator alternates chargeUntilReady() (device off) with
 * a run of consume() calls (device on) until consume() returns false —
 * the power failure that ends the active period.
 */
class EnergySupply
{
  public:
    virtual ~EnergySupply() = default;

    /**
     * Charge with the device off until it may power on.
     * @param max_cycles Give up after this many charging cycles.
     * @return Charging cycles spent, or chargeFailed if the threshold was
     *         not reached within max_cycles.
     */
    virtual std::uint64_t chargeUntilReady(std::uint64_t max_cycles) = 0;

    /**
     * Consume energy for an active step spanning @p cycles cycles
     * (harvesting concurrently where the supply supports it; the demand
     * is drawn evenly across the cycles).
     * @return false when the supply browned out during the step — the
     *         step's work is lost.
     */
    virtual bool consume(double demand, std::uint64_t cycles = 1) = 0;

    /** Energy currently stored (model units). */
    virtual double storedEnergy() const = 0;

    /**
     * Average energy harvested per active cycle — the model's epsilon_C.
     * Zero for supplies that do not charge while the device runs.
     */
    virtual double chargeRatePerCycle() const = 0;

    /**
     * Usable energy per active period (the model's E). For harvesting
     * supplies this is the V_on→V_off capacitor budget.
     */
    virtual double periodBudget() const = 0;

    /** Return to the initial (drained) state. */
    virtual void reset() = 0;

    /**
     * The device hibernates for the rest of this active period (Hibernus
     * after its single backup): remaining stored energy is forfeited.
     * Supplies whose next period is externally replenished may ignore it.
     */
    virtual void hibernate() {}
};

/**
 * Fixed-budget supply: every active period starts with exactly E and
 * nothing is harvested while running. This reproduces the model's
 * idealized setting and the paper's hardware experiments where the
 * active-period length is imposed externally.
 */
class ConstantSupply final : public EnergySupply
{
  public:
    /** @param period_energy E per active period (> 0). */
    explicit ConstantSupply(double period_energy);

    std::uint64_t chargeUntilReady(std::uint64_t max_cycles) override;

    // Inline: the block engine's span loop calls this per instruction
    // through a devirtualized reference (docs/PERFORMANCE.md).
    bool
    consume(double demand, std::uint64_t cycles = 1) override
    {
        (void)cycles; // no concurrent harvesting: count is irrelevant
        EH_ASSERT(demand >= 0.0, "demand must be non-negative");
        if (stored < demand) {
            stored = 0.0;
            return false;
        }
        stored -= demand;
        return true;
    }

    double storedEnergy() const override { return stored; }
    double chargeRatePerCycle() const override { return 0.0; }
    double periodBudget() const override { return budget; }
    void reset() override { stored = 0.0; }

  private:
    double budget;
    double stored = 0.0;
};

/**
 * Harvesting supply: a voltage trace drives a transducer charging a
 * capacitor with V_on/V_off thresholds. Time (the trace position) advances
 * during both charging and active cycles.
 */
class HarvestingSupply : public EnergySupply
{
  public:
    HarvestingSupply(VoltageTrace trace, Transducer transducer,
                     Capacitor capacitor);

    std::uint64_t chargeUntilReady(std::uint64_t max_cycles) override;
    bool consume(double demand, std::uint64_t cycles = 1) override;
    double storedEnergy() const override;
    double chargeRatePerCycle() const override;
    double periodBudget() const override;
    void reset() override;
    void hibernate() override;

    /** Absolute cycle position on the trace (test visibility). */
    std::uint64_t now() const { return cycle; }

    /** The trace driving this supply. */
    const VoltageTrace &trace() const { return source; }

  private:
    VoltageTrace source;
    Transducer converter;
    Capacitor store;
    std::uint64_t cycle = 0;
    // Running average of harvested energy per active cycle (epsilon_C).
    double harvestedActive = 0.0;
    std::uint64_t activeCycles = 0;
};

} // namespace eh::energy

#endif // EH_ENERGY_SUPPLY_HH
