#include "energy/transducer.hh"

#include "util/panic.hh"

namespace eh::energy {

Transducer::Transducer(double efficiency, double source_resistance,
                       double clock_hz, double unit_scale)
    : eta(efficiency), resistance(source_resistance), clock(clock_hz),
      scale(unit_scale)
{
    if (!(eta > 0.0) || eta > 1.0)
        fatalf("Transducer: efficiency must be in (0, 1], got ", eta);
    if (!(resistance > 0.0))
        fatalf("Transducer: source resistance must be > 0, got ",
               resistance);
    if (!(clock > 0.0))
        fatalf("Transducer: clock must be > 0, got ", clock);
    if (!(scale > 0.0))
        fatalf("Transducer: unit scale must be > 0, got ", scale);
}

double
Transducer::energyPerCycle(double volts) const
{
    if (volts < 0.0)
        fatalf("Transducer: voltage must be non-negative, got ", volts);
    const double watts = eta * volts * volts / resistance;
    return watts / clock * scale;
}

} // namespace eh::energy
