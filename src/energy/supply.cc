#include "energy/supply.hh"

#include "util/panic.hh"

namespace eh::energy {

ConstantSupply::ConstantSupply(double period_energy)
    : budget(period_energy)
{
    if (!(budget > 0.0))
        fatalf("ConstantSupply: period energy must be > 0, got ", budget);
}

std::uint64_t
ConstantSupply::chargeUntilReady(std::uint64_t max_cycles)
{
    (void)max_cycles; // instantaneous refill: the budget is externally set
    stored = budget;
    return 0;
}

HarvestingSupply::HarvestingSupply(VoltageTrace trace,
                                   Transducer transducer,
                                   Capacitor capacitor)
    : source(std::move(trace)), converter(transducer), store(capacitor)
{
}

std::uint64_t
HarvestingSupply::chargeUntilReady(std::uint64_t max_cycles)
{
    std::uint64_t spent = 0;
    while (!store.canTurnOn()) {
        if (spent >= max_cycles)
            return chargeFailed;
        store.charge(converter.energyPerCycle(source.voltageAt(cycle)));
        ++cycle;
        ++spent;
    }
    return spent;
}

bool
HarvestingSupply::consume(double demand, std::uint64_t cycles)
{
    EH_ASSERT(demand >= 0.0, "demand must be non-negative");
    EH_ASSERT(cycles > 0, "a step must span at least one cycle");
    const double per_cycle = demand / static_cast<double>(cycles);
    bool ok = true;
    for (std::uint64_t i = 0; i < cycles; ++i) {
        const double harvested =
            converter.energyPerCycle(source.voltageAt(cycle));
        ++cycle;
        store.charge(harvested);
        harvestedActive += harvested;
        ++activeCycles;
        if (!store.draw(per_cycle) || !store.alive())
            ok = false; // brown-out; finish advancing time, report failure
    }
    return ok;
}

double
HarvestingSupply::storedEnergy() const
{
    return store.storedEnergy();
}

double
HarvestingSupply::chargeRatePerCycle() const
{
    if (activeCycles == 0)
        return 0.0;
    return harvestedActive / static_cast<double>(activeCycles);
}

double
HarvestingSupply::periodBudget() const
{
    return store.usableBudget();
}

void
HarvestingSupply::hibernate()
{
    // Sleep current drains the capacitor below V_off well before the next
    // wake-up; approximate by forfeiting the remaining charge.
    store.drain();
}

void
HarvestingSupply::reset()
{
    store.drain();
    cycle = 0;
    harvestedActive = 0.0;
    activeCycles = 0;
}

} // namespace eh::energy
