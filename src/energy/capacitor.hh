/**
 * @file
 * Energy-storage capacitor with E = 1/2 C V^2 dynamics and the power-on /
 * power-off voltage thresholds that create the charging/active phase
 * alternation of intermittent execution (Section II).
 */

#ifndef EH_ENERGY_CAPACITOR_HH
#define EH_ENERGY_CAPACITOR_HH

namespace eh::energy {

/**
 * A capacitor tracked in energy space. Charging adds energy up to the
 * V_max ceiling; drawing removes it. The device may begin executing when
 * voltage reaches onThreshold and must stop when it falls below
 * offThreshold (brown-out).
 */
class Capacitor
{
  public:
    /**
     * @param farads       Capacitance (> 0).
     * @param v_max        Maximum (clamp) voltage (> 0).
     * @param v_on         Power-on threshold; in (v_off, v_max].
     * @param v_off        Brown-out threshold; in [0, v_on).
     * @param unit_scale   Joules→model-unit factor (1e12 for pJ).
     */
    Capacitor(double farads, double v_max, double v_on, double v_off,
              double unit_scale = 1e12);

    /** Add harvested energy (model units); clamps at the V_max ceiling. */
    void charge(double energy);

    /**
     * Draw energy for execution.
     * @return false if the stored energy is insufficient (the draw is
     *         applied down to zero and the device browns out).
     */
    bool draw(double energy);

    /** Stored energy in model units. */
    double storedEnergy() const { return stored; }

    /** Terminal voltage implied by the stored energy. */
    double voltage() const;

    /** True when voltage has reached the power-on threshold. */
    bool canTurnOn() const;

    /** True while voltage stays above the brown-out threshold. */
    bool alive() const;

    /** Energy between V_on and V_off: the usable budget E per period. */
    double usableBudget() const;

    /** Energy ceiling at V_max. */
    double capacityEnergy() const;

    /** Empty the capacitor (tests / experiment resets). */
    void drain() { stored = 0.0; }

  private:
    double energyAt(double volts) const;

    double capacitance;
    double vMax;
    double vOn;
    double vOff;
    double scale;
    double stored = 0.0;
};

} // namespace eh::energy

#endif // EH_ENERGY_CAPACITOR_HH
