#include "energy/meter.hh"

#include <sstream>

#include "util/panic.hh"

namespace eh::energy {

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Progress:
        return "progress";
      case Phase::Backup:
        return "backup";
      case Phase::Restore:
        return "restore";
      case Phase::Dead:
        return "dead";
      case Phase::Monitor:
        return "monitor";
      case Phase::NumPhases:
        break;
    }
    panic("invalid phase");
}

void
EnergyMeter::add(Phase phase, std::uint64_t cycles, double energy)
{
    EH_ASSERT(phase != Phase::NumPhases, "invalid phase");
    EH_ASSERT(energy >= 0.0, "phase energy must be non-negative");
    const auto idx = static_cast<std::size_t>(phase);
    cycleTally[idx] += cycles;
    energyTally[idx] += energy;
}

void
EnergyMeter::commit()
{
    add(Phase::Progress, pendingCycles, pendingEnergy);
    pendingCycles = 0;
    pendingEnergy = 0.0;
}

void
EnergyMeter::discard()
{
    add(Phase::Dead, pendingCycles, pendingEnergy);
    pendingCycles = 0;
    pendingEnergy = 0.0;
}

std::uint64_t
EnergyMeter::cycles(Phase phase) const
{
    EH_ASSERT(phase != Phase::NumPhases, "invalid phase");
    return cycleTally[static_cast<std::size_t>(phase)];
}

double
EnergyMeter::energy(Phase phase) const
{
    EH_ASSERT(phase != Phase::NumPhases, "invalid phase");
    return energyTally[static_cast<std::size_t>(phase)];
}

std::uint64_t
EnergyMeter::totalCycles() const
{
    std::uint64_t total = 0;
    for (auto c : cycleTally)
        total += c;
    return total;
}

double
EnergyMeter::totalEnergy() const
{
    double total = 0.0;
    for (auto e : energyTally)
        total += e;
    return total;
}

double
EnergyMeter::energyShare(Phase phase) const
{
    const double total = totalEnergy();
    if (total <= 0.0)
        return 0.0;
    return energy(phase) / total;
}

void
EnergyMeter::clear()
{
    cycleTally.fill(0);
    energyTally.fill(0.0);
    pendingCycles = 0;
    pendingEnergy = 0.0;
}

std::string
EnergyMeter::report() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < numPhases; ++i) {
        const auto phase = static_cast<Phase>(i);
        oss << phaseName(phase) << ": " << cycleTally[i] << " cycles, "
            << energyTally[i] << " energy ("
            << energyShare(phase) * 100.0 << "%)\n";
    }
    return oss.str();
}

} // namespace eh::energy
