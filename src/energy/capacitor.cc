#include "energy/capacitor.hh"

#include <algorithm>
#include <cmath>

#include "util/panic.hh"

namespace eh::energy {

Capacitor::Capacitor(double farads, double v_max, double v_on, double v_off,
                     double unit_scale)
    : capacitance(farads), vMax(v_max), vOn(v_on), vOff(v_off),
      scale(unit_scale)
{
    if (!(capacitance > 0.0))
        fatalf("Capacitor: capacitance must be > 0, got ", capacitance);
    if (!(vMax > 0.0))
        fatalf("Capacitor: V_max must be > 0, got ", vMax);
    if (!(v_on > v_off))
        fatalf("Capacitor: V_on (", v_on, ") must exceed V_off (", v_off,
               ")");
    if (v_on > v_max)
        fatalf("Capacitor: V_on (", v_on, ") cannot exceed V_max (", v_max,
               ")");
    if (v_off < 0.0)
        fatalf("Capacitor: V_off must be >= 0, got ", v_off);
    if (!(scale > 0.0))
        fatalf("Capacitor: unit scale must be > 0, got ", scale);
}

double
Capacitor::energyAt(double volts) const
{
    return 0.5 * capacitance * volts * volts * scale;
}

void
Capacitor::charge(double energy)
{
    EH_ASSERT(energy >= 0.0, "cannot charge with negative energy");
    stored = std::min(stored + energy, capacityEnergy());
}

bool
Capacitor::draw(double energy)
{
    EH_ASSERT(energy >= 0.0, "cannot draw negative energy");
    if (stored < energy) {
        stored = 0.0;
        return false;
    }
    stored -= energy;
    return true;
}

double
Capacitor::voltage() const
{
    return std::sqrt(2.0 * stored / scale / capacitance);
}

bool
Capacitor::canTurnOn() const
{
    return voltage() >= vOn;
}

bool
Capacitor::alive() const
{
    return voltage() > vOff;
}

double
Capacitor::usableBudget() const
{
    return energyAt(vOn) - energyAt(vOff);
}

double
Capacitor::capacityEnergy() const
{
    return energyAt(vMax);
}

} // namespace eh::energy
