#include "energy/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>

#include "util/panic.hh"

namespace eh::energy {

VoltageTrace::VoltageTrace(std::vector<double> samples,
                           std::uint64_t cycles_per_sample,
                           std::string name)
    : data(std::move(samples)), pitch(cycles_per_sample),
      label(std::move(name))
{
    if (data.empty())
        fatalf("VoltageTrace '", label, "': needs at least one sample");
    if (pitch == 0)
        fatalf("VoltageTrace '", label, "': pitch must be positive");
    for (double v : data) {
        if (v < 0.0)
            fatalf("VoltageTrace '", label,
                   "': voltages must be non-negative, got ", v);
    }
}

double
VoltageTrace::voltageAt(std::uint64_t cycle) const
{
    const std::uint64_t len = lengthCycles();
    const std::uint64_t t = cycle % len;
    const std::uint64_t idx = t / pitch;
    const double frac =
        static_cast<double>(t % pitch) / static_cast<double>(pitch);
    const double v0 = data[idx];
    const double v1 = data[(idx + 1) % data.size()];
    return v0 + (v1 - v0) * frac;
}

std::uint64_t
VoltageTrace::lengthCycles() const
{
    return pitch * static_cast<std::uint64_t>(data.size());
}

double
VoltageTrace::peakVoltage() const
{
    return *std::max_element(data.begin(), data.end());
}

double
VoltageTrace::troughVoltage() const
{
    return *std::min_element(data.begin(), data.end());
}

double
VoltageTrace::meanVoltage() const
{
    return std::accumulate(data.begin(), data.end(), 0.0) /
           static_cast<double>(data.size());
}

namespace {

std::size_t
sampleCount(std::uint64_t length_cycles, std::uint64_t pitch)
{
    EH_ASSERT(length_cycles >= pitch,
              "trace must span at least one sample pitch");
    return static_cast<std::size_t>(length_cycles / pitch);
}

/** Multiplicative jitter in [1-amount, 1+amount]. */
double
jitter(Rng &rng, double amount)
{
    return 1.0 + rng.nextDouble(-amount, amount);
}

} // namespace

VoltageTrace
makeSpikyTrace(Rng rng, std::uint64_t length_cycles,
               std::uint64_t cycles_per_sample)
{
    const std::size_t n = sampleCount(length_cycles, cycles_per_sample);
    std::vector<double> v(n, 0.0);
    // Two narrow Gaussian spikes centred at 1/4 and 3/4 of the trace,
    // peaking just above 5 V; troughs sit near 0 V with tiny noise.
    const double centres[2] = {0.25, 0.75};
    const double width = std::max(1.0, static_cast<double>(n) * 0.02);
    for (std::size_t i = 0; i < n; ++i) {
        double volts = rng.nextDouble(0.0, 0.08); // near-zero trough
        for (double c : centres) {
            const double d =
                (static_cast<double>(i) - c * static_cast<double>(n)) /
                width;
            volts += 5.4 * jitter(rng, 0.03) * std::exp(-d * d);
        }
        v[i] = volts;
    }
    return VoltageTrace(std::move(v), cycles_per_sample, "rf-spiky");
}

VoltageTrace
makeRampTrace(Rng rng, std::uint64_t length_cycles,
              std::uint64_t cycles_per_sample)
{
    const std::size_t n = sampleCount(length_cycles, cycles_per_sample);
    std::vector<double> v(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(n - 1 ? n - 1 : 1);
        v[i] = std::max(0.0, 2.5 * frac * jitter(rng, 0.02));
    }
    return VoltageTrace(std::move(v), cycles_per_sample, "rf-ramp");
}

VoltageTrace
makeMultiPeakTrace(Rng rng, std::uint64_t length_cycles,
                   std::uint64_t cycles_per_sample)
{
    const std::size_t n = sampleCount(length_cycles, cycles_per_sample);
    std::vector<double> v(n, 0.0);
    // Five peak/trough pairs: sinusoid between jittered extremes.
    const double periods = 5.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double phase = 2.0 * M_PI * periods * static_cast<double>(i) /
                             static_cast<double>(n);
        const double peak = 4.5 + rng.nextDouble(-1.0, 1.0);   // 3.5–5.5
        const double trough = 0.75 + rng.nextDouble(-0.75, 0.75); // 0–1.5
        const double mid = (peak + trough) / 2.0;
        const double amp = (peak - trough) / 2.0;
        v[i] = std::max(0.0, mid + amp * std::sin(phase));
    }
    return VoltageTrace(std::move(v), cycles_per_sample, "rf-multipeak");
}

VoltageTrace
makeConstantTrace(double volts, std::uint64_t length_cycles,
                  std::uint64_t cycles_per_sample)
{
    if (volts < 0.0)
        fatalf("makeConstantTrace: voltage must be non-negative");
    const std::size_t n = sampleCount(length_cycles, cycles_per_sample);
    return VoltageTrace(std::vector<double>(n, volts), cycles_per_sample,
                        "constant");
}

void
saveTraceCsv(const VoltageTrace &trace, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatalf("saveTraceCsv: cannot open '", path, "' for writing");
    out.precision(17); // lossless double round-trip
    out << "cycle,volts\n";
    const auto &samples = trace.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        out << i * trace.cyclesPerSample() << ','
            << samples[i] << '\n';
    }
    if (!out)
        fatalf("saveTraceCsv: write to '", path, "' failed");
}

VoltageTrace
loadTraceCsv(const std::string &path, const std::string &name)
{
    std::ifstream in(path);
    if (!in)
        fatalf("loadTraceCsv: cannot open '", path, "'");
    std::string line;
    if (!std::getline(in, line) || line.rfind("cycle", 0) != 0)
        fatalf("loadTraceCsv: '", path,
               "' lacks the 'cycle,volts' header");

    // Reject garbage before it can reach the supply model: every row
    // must carry a finite, non-negative voltage, and the cycle column
    // must be strictly monotonic with a constant pitch. Each diagnostic
    // names the offending line.
    std::vector<std::uint64_t> cycles;
    std::vector<double> volts;
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::uint64_t cycle;
        char comma;
        std::string vtok;
        // The voltage goes through strtod, not operator>>: the stream
        // extractor rejects "nan"/"inf" outright, which would misreport
        // non-finite samples as mere syntax errors.
        if (!(row >> cycle >> comma >> vtok) || comma != ',')
            fatalf("loadTraceCsv: malformed row at line ", line_no,
                   " of '", path, "': ", line);
        char *vend = nullptr;
        const double v = std::strtod(vtok.c_str(), &vend);
        if (vend == vtok.c_str() || *vend != '\0')
            fatalf("loadTraceCsv: malformed row at line ", line_no,
                   " of '", path, "': ", line);
        if (std::isnan(v) || std::isinf(v))
            fatalf("loadTraceCsv: non-finite voltage at line ", line_no,
                   " of '", path, "': ", line);
        if (v < 0.0)
            fatalf("loadTraceCsv: negative voltage at line ", line_no,
                   " of '", path, "': ", line);
        if (!cycles.empty() && cycle <= cycles.back())
            fatalf("loadTraceCsv: non-monotonic cycle at line ", line_no,
                   " of '", path, "': ", cycle, " after ", cycles.back());
        cycles.push_back(cycle);
        volts.push_back(v);
    }
    if (volts.empty())
        fatalf("loadTraceCsv: '", path, "' contains no samples");

    std::uint64_t pitch = 1;
    if (cycles.size() >= 2) {
        pitch = cycles[1] - cycles[0];
        for (std::size_t i = 1; i < cycles.size(); ++i) {
            if (cycles[i] - cycles[i - 1] != pitch)
                fatalf("loadTraceCsv: uneven sample spacing at line ",
                       i + 2, " of '", path, "'");
        }
    }
    return VoltageTrace(std::move(volts), pitch, name);
}

std::vector<VoltageTrace>
makePaperTraces(std::uint64_t seed, std::uint64_t length_cycles)
{
    Rng root(seed);
    std::vector<VoltageTrace> traces;
    traces.push_back(makeSpikyTrace(root.fork(1), length_cycles));
    traces.push_back(makeRampTrace(root.fork(2), length_cycles));
    traces.push_back(makeMultiPeakTrace(root.fork(3), length_cycles));
    return traces;
}

} // namespace eh::energy
