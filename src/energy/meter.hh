/**
 * @file
 * Per-phase cycle and energy accounting — the software analogue of the
 * paper's EnergyTrace + GPIO-pulse measurement harness (Section V-A). The
 * simulator classifies every active cycle as forward progress, backup,
 * restore, dead execution, or supply monitoring, exactly the split the EH
 * model reasons about.
 */

#ifndef EH_ENERGY_METER_HH
#define EH_ENERGY_METER_HH

#include <array>
#include <cstdint>
#include <string>

#include "util/panic.hh"

namespace eh::energy {

/** Execution phases distinguished by the EH model. */
enum class Phase : unsigned
{
    Progress = 0, ///< useful, committed execution (e_P)
    Backup,       ///< copying state to nonvolatile memory (e_B)
    Restore,      ///< reloading state after a power loss (e_R)
    Dead,         ///< execution lost to a power failure (e_D)
    Monitor,      ///< ADC checks / voltage monitoring (single-backup cost)
    NumPhases
};

/** Printable phase name. */
const char *phaseName(Phase phase);

/**
 * Tallies cycles and energy per phase. The simulator first accumulates
 * "uncommitted" progress; a backup commits it to Progress, a power failure
 * reclassifies it as Dead — mirroring the semantics that make re-executed
 * work wasteful (Section II).
 */
class EnergyMeter
{
  public:
    /** Record committed cycles/energy directly into a phase. */
    void add(Phase phase, std::uint64_t cycles, double energy);

    /**
     * Accumulate execution not yet saved by a backup. Inline: called
     * once per simulated instruction by both execution engines.
     */
    void
    addUncommitted(std::uint64_t cycles, double energy)
    {
        EH_ASSERT(energy >= 0.0,
                  "uncommitted energy must be non-negative");
        pendingCycles += cycles;
        pendingEnergy += energy;
    }

    /** A backup succeeded: uncommitted work becomes forward progress. */
    void commit();

    /** Power failed: uncommitted work becomes dead execution. */
    void discard();

    /** Cycles recorded in a phase (committed only). */
    std::uint64_t cycles(Phase phase) const;

    /** Energy recorded in a phase (committed only). */
    double energy(Phase phase) const;

    /** Pending uncommitted cycles. */
    std::uint64_t uncommittedCycles() const { return pendingCycles; }

    /** Pending uncommitted energy. */
    double uncommittedEnergy() const { return pendingEnergy; }

    /** Total committed cycles across phases. */
    std::uint64_t totalCycles() const;

    /** Total committed energy across phases. */
    double totalEnergy() const;

    /** Fraction of total energy spent in a phase; 0 when nothing ran. */
    double energyShare(Phase phase) const;

    /** Reset all tallies. */
    void clear();

    /** Multi-line human-readable report. */
    std::string report() const;

  private:
    static constexpr std::size_t numPhases =
        static_cast<std::size_t>(Phase::NumPhases);

    std::array<std::uint64_t, numPhases> cycleTally{};
    std::array<double, numPhases> energyTally{};
    std::uint64_t pendingCycles = 0;
    double pendingEnergy = 0.0;
};

} // namespace eh::energy

#endif // EH_ENERGY_METER_HH
