/**
 * @file
 * Harvested-source voltage traces. The paper characterizes Clank over
 * recorded RF voltage traces [43]; since those recordings are not
 * available, this module synthesizes traces with the three shapes the
 * paper describes in Section V-B:
 *
 *  1. two short spikes above 5 V with troughs near 0 V;
 *  2. a gradual ramp from ~0 V up to ~2.5 V;
 *  3. multiple peaks (3.5–5.5 V) and troughs (0–1.5 V).
 *
 * Traces are sampled on a fixed cycle grid and linearly interpolated; they
 * loop when read past the end, modeling a repetitive ambient source.
 */

#ifndef EH_ENERGY_TRACE_HH
#define EH_ENERGY_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"

namespace eh::energy {

/** A looping, linearly interpolated voltage-vs-cycle series. */
class VoltageTrace
{
  public:
    /**
     * @param samples Voltage samples (volts); must be non-empty and
     *                non-negative.
     * @param cycles_per_sample Grid pitch in CPU cycles; must be > 0.
     * @param name Label used in reports.
     */
    VoltageTrace(std::vector<double> samples,
                 std::uint64_t cycles_per_sample, std::string name);

    /** Interpolated voltage at an absolute cycle (loops past the end). */
    double voltageAt(std::uint64_t cycle) const;

    /** Trace length before looping, in cycles. */
    std::uint64_t lengthCycles() const;

    /** Label for reports. */
    const std::string &name() const { return label; }

    /** Largest sample in the trace. */
    double peakVoltage() const;

    /** Smallest sample in the trace. */
    double troughVoltage() const;

    /** Arithmetic mean of the samples. */
    double meanVoltage() const;

    /** Raw samples (for tests and CSV dumps). */
    const std::vector<double> &samples() const { return data; }

    /** Grid pitch in cycles. */
    std::uint64_t cyclesPerSample() const { return pitch; }

  private:
    std::vector<double> data;
    std::uint64_t pitch;
    std::string label;
};

/**
 * Trace shape 1: two short >5 V spikes separated by near-0 V troughs over
 * the trace length. Small multiplicative jitter keeps repeated periods
 * from being cycle-identical.
 */
VoltageTrace makeSpikyTrace(Rng rng, std::uint64_t length_cycles,
                            std::uint64_t cycles_per_sample = 1000);

/** Trace shape 2: gradual ramp from ~0 V to ~2.5 V. */
VoltageTrace makeRampTrace(Rng rng, std::uint64_t length_cycles,
                           std::uint64_t cycles_per_sample = 1000);

/**
 * Trace shape 3: multiple peaks between 3.5 and 5.5 V with troughs between
 * 0 and 1.5 V.
 */
VoltageTrace makeMultiPeakTrace(Rng rng, std::uint64_t length_cycles,
                                std::uint64_t cycles_per_sample = 1000);

/** Constant-voltage trace (useful for tests and steady sources). */
VoltageTrace makeConstantTrace(double volts, std::uint64_t length_cycles,
                               std::uint64_t cycles_per_sample = 1000);

/** All three paper trace shapes, in order, built from one seed. */
std::vector<VoltageTrace> makePaperTraces(std::uint64_t seed,
                                          std::uint64_t length_cycles);

/**
 * Write a trace as CSV (`cycle,volts` header, one sample per row) so it
 * can be plotted or exchanged with trace-capture tooling.
 * @throws FatalError if the file cannot be written.
 */
void saveTraceCsv(const VoltageTrace &trace, const std::string &path);

/**
 * Load a trace saved by saveTraceCsv (or recorded externally in the same
 * format). Sample pitch is inferred from the first two cycle stamps;
 * rows must be evenly spaced.
 * @throws FatalError on malformed files.
 */
VoltageTrace loadTraceCsv(const std::string &path,
                          const std::string &name = "loaded");

} // namespace eh::energy

#endif // EH_ENERGY_TRACE_HH
