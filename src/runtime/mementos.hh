/**
 * @file
 * Mementos-style multi-backup policy [43]. The compiler (here: the
 * workload author) inserts CHECKPOINT instructions at loop-iteration and
 * function boundaries. At each checkpoint the runtime samples the supply;
 * if the stored energy is below a threshold, it copies the used volatile
 * memory to nonvolatile storage. Between checkpoints nothing is saved, so
 * work past the last successful checkpoint is lost on a power failure.
 */

#ifndef EH_RUNTIME_MEMENTOS_HH
#define EH_RUNTIME_MEMENTOS_HH

#include "runtime/policy.hh"

namespace eh::runtime {

/** Configuration of the Mementos policy. */
struct MementosConfig
{
    /** Back up at a checkpoint when stored/budget is below this. */
    double backupThreshold = 0.5;
    /** Cycles the supply test at each checkpoint occupies. */
    std::uint64_t checkCycles = 4;
    /** Energy of the supply test at each checkpoint. */
    double checkEnergy = 400.0;
    /** Used SRAM bytes each backup must save. */
    std::uint64_t sramUsedBytes = 512;
};

/** Checkpoint-with-voltage-test policy. */
class Mementos : public BackupPolicy
{
  public:
    explicit Mementos(const MementosConfig &config);

    std::string name() const override { return "mementos"; }
    PolicyDecision beforeStep(const arch::Cpu &cpu,
                              const arch::MemPeek &peek,
                              const SupplyView &supply) override;
    void afterStep(const arch::Cpu &cpu,
                   const arch::StepResult &result) override;
    PolicyDecision onCheckpointOp(const SupplyView &supply) override;
    std::uint64_t chargedAppBackupBytes() const override;
    bool savesVolatilePayload() const override { return true; }
    void onBackupCommitted(const SupplyView &supply) override
    {
        (void)supply;
    }
    void onPowerFail() override {}
    void onRestore() override {}

    // Block-engine contract: Mementos acts only at CHECKPOINT
    // instructions, which always interrupt a block quantum, so every
    // hook between them is a no-op and the horizon is unbounded.
    PolicyCaps blockCaps() const override { return {false, false}; }

    /** Checkpoints reached (taken or skipped). */
    std::uint64_t checkpointsSeen() const { return seen; }

    /** Checkpoints at which a backup was actually taken. */
    std::uint64_t checkpointsTaken() const { return taken; }

  private:
    MementosConfig cfg;
    std::uint64_t seen = 0;
    std::uint64_t taken = 0;
};

} // namespace eh::runtime

#endif // EH_RUNTIME_MEMENTOS_HH
