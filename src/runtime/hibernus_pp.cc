#include "runtime/hibernus_pp.hh"

#include <algorithm>

#include "util/panic.hh"

namespace eh::runtime {

HibernusPP::HibernusPP(const HibernusPPConfig &config)
    : cfg(config), thresholdFraction(config.initialThreshold)
{
    if (cfg.initialThreshold <= 0.0 || cfg.initialThreshold >= 1.0)
        fatalf("HibernusPP: initial threshold must be in (0, 1), got ",
               cfg.initialThreshold);
    if (cfg.safetyMargin < 1.0)
        fatalf("HibernusPP: safety margin must be >= 1, got ",
               cfg.safetyMargin);
    if (cfg.minThreshold <= 0.0 ||
        cfg.minThreshold >= cfg.initialThreshold)
        fatalf("HibernusPP: minimum threshold must be in (0, initial), "
               "got ",
               cfg.minThreshold);
    if (cfg.monitorPeriod == 0)
        fatalf("HibernusPP: monitor period must be > 0");
    if (cfg.adaptRate <= 0.0 || cfg.adaptRate > 1.0)
        fatalf("HibernusPP: adapt rate must be in (0, 1], got ",
               cfg.adaptRate);
}

PolicyDecision
HibernusPP::beforeStep(const arch::Cpu &cpu, const arch::MemPeek &peek,
                       const SupplyView &supply)
{
    (void)cpu;
    (void)peek;
    PolicyDecision d;
    if (backedUpThisPeriod)
        return d;
    if (cyclesSinceCheck < cfg.monitorPeriod)
        return d;

    cyclesSinceCheck = 0;
    d.monitorCycles = cfg.adcCycles;
    d.monitorEnergy = cfg.adcEnergy;
    if (supply.fraction() < thresholdFraction) {
        d.action = PolicyAction::BackupAndSleep;
        backupInFlight = true;
        storedAtTrigger = supply.stored;
        lastBudget = supply.budget;
    }
    return d;
}

void
HibernusPP::afterStep(const arch::Cpu &cpu,
                      const arch::StepResult &result)
{
    (void)cpu;
    cyclesSinceCheck += result.cycles;
}

PolicyDecision
HibernusPP::onCheckpointOp(const SupplyView &supply)
{
    (void)supply;
    return {};
}

std::uint64_t
HibernusPP::chargedAppBackupBytes() const
{
    return cfg.sramUsedBytes;
}

void
HibernusPP::onBackupCommitted(const SupplyView &supply)
{
    backedUpThisPeriod = true;
    if (!backupInFlight || lastBudget <= 0.0)
        return;
    backupInFlight = false;

    // Measured backup cost: energy at the trigger minus what is left.
    const double measured_cost =
        std::max(0.0, storedAtTrigger - supply.stored);
    const double target = std::clamp(
        cfg.safetyMargin * measured_cost / lastBudget,
        cfg.minThreshold, 0.95);
    thresholdFraction += cfg.adaptRate * (target - thresholdFraction);
    ++adapted;
}

void
HibernusPP::onPowerFail()
{
    cyclesSinceCheck = 0;
    backedUpThisPeriod = false;
    if (backupInFlight) {
        // The backup itself browned out: the threshold was too low.
        backupInFlight = false;
        thresholdFraction = std::min(0.95, thresholdFraction * 2.0);
        ++adapted;
    }
}

void
HibernusPP::onRestore()
{
    cyclesSinceCheck = 0;
    backedUpThisPeriod = false;
    backupInFlight = false;
}

} // namespace eh::runtime
