#include "runtime/watchdog.hh"

#include "obs/trace.hh"
#include "util/panic.hh"

namespace eh::runtime {

Watchdog::Watchdog(const WatchdogConfig &config) : cfg(config)
{
    if (cfg.periodCycles == 0)
        fatalf("Watchdog: period must be > 0 cycles");
}

PolicyDecision
Watchdog::beforeStep(const arch::Cpu &cpu, const arch::MemPeek &peek,
                     const SupplyView &supply)
{
    (void)cpu;
    (void)peek;
    (void)supply;
    PolicyDecision d;
    if (sinceBackup >= cfg.periodCycles) {
        if (obs::traceEnabled(obs::Category::Policy)) {
            obs::trace().instant(
                obs::Category::Policy, "watchdog:period-backup",
                {{"cycles_since_backup",
                  static_cast<double>(sinceBackup)}});
        }
        d.action = PolicyAction::Backup;
        d.reason = arch::BackupTrigger::Watchdog;
    }
    return d;
}

void
Watchdog::afterStep(const arch::Cpu &cpu, const arch::StepResult &result)
{
    (void)cpu;
    sinceBackup += result.cycles;
    if (result.isMem && result.memIsStore && !result.memNonvolatile)
        dirty.recordStore(result.memAddr, result.memBytes);
}

PolicyDecision
Watchdog::onCheckpointOp(const SupplyView &supply)
{
    (void)supply;
    return {}; // the timer alone decides
}

std::uint64_t
Watchdog::chargedAppBackupBytes() const
{
    if (cfg.chargeDirtyBytesOnly)
        return dirty.uniqueBytes();
    return cfg.sramUsedBytes;
}

void
Watchdog::onBackupCommitted(const SupplyView &supply)
{
    (void)supply;
    sinceBackup = 0;
    dirty.clear();
}

void
Watchdog::onPowerFail()
{
    sinceBackup = 0;
    dirty.clear();
}

void
Watchdog::onRestore()
{
    sinceBackup = 0;
    dirty.clear();
}

void
Watchdog::setPeriod(std::uint64_t cycles)
{
    if (cycles == 0)
        fatalf("Watchdog: period must be > 0 cycles");
    cfg.periodCycles = cycles;
}

} // namespace eh::runtime
